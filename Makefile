.PHONY: all build test verify bench clean

all: build

build:
	dune build

test:
	dune runtest

verify:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
