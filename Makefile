.PHONY: all build test verify bench clean

all: build

build:
	dune build

test:
	dune runtest

verify:
	dune build && dune runtest

# Forward experiment names and flags: make bench ARGS="scaling --json out.json"
bench:
	dune exec bench/main.exe -- $(ARGS)

clean:
	dune clean
