.PHONY: all build test verify bench clean

all: build

build:
	dune build

# `make test` and `make verify` are aliases for `dune runtest`, the
# tier-1 gate (includes the fault-injection and transaction sweeps).
# CI runs the same command under `timeout-minutes`, so a hung sweep
# fails the build instead of stalling it; locally, `timeout 600 make
# test` gives the same guard.
test:
	dune runtest

verify:
	dune build && dune runtest

# Forward experiment names and flags: make bench ARGS="scaling --json out.json"
bench:
	dune exec bench/main.exe -- $(ARGS)

clean:
	dune clean
