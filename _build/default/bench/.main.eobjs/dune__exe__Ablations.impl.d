bench/ablations.ml: Dd_core Dd_fgraph Dd_inference Dd_kbc Dd_relational Dd_util Harness List Printf String
