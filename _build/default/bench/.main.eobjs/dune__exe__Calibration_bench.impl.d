bench/calibration_bench.ml: Dd_core Dd_inference Dd_kbc Dd_relational Dd_util Harness List
