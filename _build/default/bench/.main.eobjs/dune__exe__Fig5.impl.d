bench/fig5.ml: Dd_core Dd_fgraph Dd_inference Dd_util Dd_variational Harness List Option
