bench/fig_kbc.ml: Array Dd_core Dd_fgraph Dd_inference Dd_kbc Dd_relational Dd_util Dd_variational Harness List Printf String
