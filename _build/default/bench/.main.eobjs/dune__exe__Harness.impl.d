bench/harness.ml: Array Dd_fgraph Dd_inference Dd_util List Printf String
