bench/main.ml: Ablations Array Calibration_bench Dd_util Fig5 Fig_kbc Fig_learning Fig_semantics Harness List Micro Printf String Sys
