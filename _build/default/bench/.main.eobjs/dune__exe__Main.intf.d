bench/main.mli:
