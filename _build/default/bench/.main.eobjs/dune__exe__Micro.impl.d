bench/micro.ml: Analyze Array Bechamel Benchmark Dd_fgraph Dd_inference Dd_relational Dd_util Harness Hashtbl Instance List Measure Staged Test Time Toolkit
