(* Ablation benches for design choices DESIGN.md calls out:

   - weight tying (Section 2.3): tied per-feature weights vs one weight per
     rule (the plain-MLN encoding);
   - the cached Gibbs sampler vs the naive one (the DimmWitted-style kernel
     both inference phases sit on);
   - the greedy delta-first join order in staged incremental evaluation. *)

open Harness
module Corpus = Dd_kbc.Corpus
module Systems = Dd_kbc.Systems
module Pipeline = Dd_kbc.Pipeline
module Quality = Dd_kbc.Quality
module Program = Dd_core.Program
module Grounding = Dd_core.Grounding
module Database = Dd_relational.Database
module Graph = Dd_fgraph.Graph
module Semantics = Dd_fgraph.Semantics
module Voting = Dd_fgraph.Voting
module Gibbs = Dd_inference.Gibbs
module Fast_gibbs = Dd_inference.Fast_gibbs
module Learner = Dd_inference.Learner
module Prng = Dd_util.Prng
module Timer = Dd_util.Timer
module Table = Dd_util.Table

(* --- weight tying --------------------------------------------------------- *)

(* Replace every Tied-with-key weight by Tied [] (a single learnable weight
   per rule) — the encoding a plain MLN forces ("in standard MLNs, this
   would require one rule for each feature"). *)
let untie rule =
  match rule with
  | Program.Infer r -> (
    match r.Program.weight with
    | Program.Tied (_ :: _) -> Program.Infer { r with Program.weight = Program.Tied [] }
    | Program.Tied [] | Program.Fixed _ -> rule)
  | Program.Deterministic _ | Program.Supervise _ -> rule

let f1_of_program corpus program =
  let db = Database.create () in
  Corpus.load corpus db;
  let grounding = Grounding.ground db program in
  let g = Grounding.graph grounding in
  let rng = Prng.create 61 in
  Learner.train_cd ~options:{ Learner.default_cd with Learner.epochs = 40 } rng g;
  let marginals = Gibbs.marginals ~burn_in:30 rng g ~sweeps:400 in
  ( (Quality.evaluate grounding marginals ~truth:corpus.Corpus.truth).Quality.f1,
    (Grounding.stats grounding).Grounding.weights )

let ablation_tying ~full =
  section "Ablation: weight tying vs one-weight-per-rule (plain MLN encoding)";
  note
    "Tied weights give the classifier one parameter per feature value; the\n\
     untied variant collapses each rule to a single weight, which cannot\n\
     separate indicative from noisy phrases.";
  let table = Table.create [ "system"; "tied F1"; "tied #weights"; "untied F1"; "untied #weights" ] in
  let systems = if full then Systems.all else [ Systems.news; Systems.genomics ] in
  List.iter
    (fun config ->
      let config = { config with Corpus.docs = config.Corpus.docs * 2 } in
      let corpus = Corpus.generate config in
      let tied_program = Pipeline.full_program () in
      let untied_program =
        { tied_program with Program.rules = List.map untie tied_program.Program.rules }
      in
      let tied_f1, tied_weights = f1_of_program corpus tied_program in
      let untied_f1, untied_weights = f1_of_program corpus untied_program in
      Table.add_row table
        [
          config.Corpus.name;
          Table.cell_f tied_f1;
          string_of_int tied_weights;
          Table.cell_f untied_f1;
          string_of_int untied_weights;
        ])
    systems;
  Table.print table

(* --- sampler kernel -------------------------------------------------------- *)

let ablation_sampler ~full =
  section "Ablation: cached vs naive Gibbs kernel (seconds per 100 sweeps)";
  note
    "The cached sampler maintains satisfied-body counts so an update costs\n\
     O(bodies mentioning the variable); the naive kernel re-evaluates whole\n\
     factors.  The gap explodes on aggregation factors (the voting program,\n\
     one body per vote) and stays a constant factor on pairwise graphs.";
  let table = Table.create [ "graph"; "naive (s)"; "cached (s)"; "speedup" ] in
  let measure g =
    let naive =
      time_median ~repeats:1 (fun () ->
          let rng = Prng.create 71 in
          let a = Gibbs.init_assignment rng g in
          for _ = 1 to 100 do
            Gibbs.sweep rng g a
          done)
    in
    let cached =
      time_median ~repeats:1 (fun () ->
          let rng = Prng.create 71 in
          let t = Fast_gibbs.create rng g in
          for _ = 1 to 100 do
            Fast_gibbs.sweep rng t
          done)
    in
    (naive, cached)
  in
  let voting n =
    let cfg = { Voting.default with Voting.n_up = n / 2; n_down = n / 2 } in
    let g, _, _, _ = Voting.build cfg in
    g
  in
  let cases =
    [
      ("pairwise n=200", synthetic_graph (Prng.create 72) 200);
      ("voting n=200", voting 200);
      ("voting n=1000", voting 1000);
    ]
    @ (if full then [ ("voting n=5000", voting 5000) ] else [])
  in
  List.iter
    (fun (name, g) ->
      let naive, cached = measure g in
      Table.add_row table
        [ name; Table.cell_f naive; Table.cell_f cached; Table.cell_x (naive /. cached) ])
    cases;
  Table.print table

(* --- sample storage footprint (Section 3.2.2) -------------------------------- *)

let storage ~full =
  section "Storage: 100 bit-packed samples vs the factor graph (Section 3.2.2)";
  note
    "\"A single sample for one random variable only requires 1 bit of\n\
     storage ... 100 samples require less than 5%% of the space of the\n\
     original factor graph.\"  Sizes in bytes of the serialized graph vs\n\
     100 MCDB-style tuple bundles.";
  let table = Table.create [ "system"; "graph bytes"; "100 samples bytes"; "ratio" ] in
  List.iter
    (fun config ->
      let config =
        { config with Corpus.docs = config.Corpus.docs * (if full then 6 else 3) }
      in
      let corpus = Corpus.generate config in
      let db = Database.create () in
      Corpus.load corpus db;
      let grounding = Grounding.ground db (Pipeline.full_program ()) in
      let g = Grounding.graph grounding in
      let graph_bytes = String.length (Dd_fgraph.Serialize.to_string g) in
      let samples_bytes = 100 * Dd_util.Bitvec.byte_size (Dd_util.Bitvec.create (Graph.num_vars g)) in
      Table.add_row table
        [
          config.Corpus.name;
          string_of_int graph_bytes;
          string_of_int samples_bytes;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int samples_bytes /. float_of_int graph_bytes);
        ])
    Systems.all;
  Table.print table

let () =
  register "ablation_tying" "Ablation: weight tying" ablation_tying;
  register "ablation_sampler" "Ablation: Gibbs kernels" ablation_sampler;
  register "storage" "Sample-storage footprint" storage
