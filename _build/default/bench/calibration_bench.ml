(* Calibration of the produced marginals — the quality contract stated in
   the introduction: "if one examined all facts with probability 0.9, we
   would expect that approximately 90% of these facts would be correct." *)

open Harness
module Corpus = Dd_kbc.Corpus
module Systems = Dd_kbc.Systems
module Pipeline = Dd_kbc.Pipeline
module Calibration = Dd_kbc.Calibration
module Grounding = Dd_core.Grounding
module Database = Dd_relational.Database
module Learner = Dd_inference.Learner
module Gibbs = Dd_inference.Gibbs
module Prng = Dd_util.Prng
module Table = Dd_util.Table

let calibration ~full =
  section "Calibration: predicted probability vs empirical precision";
  note
    "Buckets of predicted marginals against the hidden KB.  A calibrated\n\
     system tracks the diagonal; the expected calibration error (ECE)\n\
     summarizes the gap.  At this scale the system is directionally\n\
     calibrated (precision rises monotonically with predicted probability)\n\
     but overconfident in the top bucket — contrastive-divergence learning\n\
     on a small, noisily supervised corpus overfits; the paper's 0.2B-\n\
     variable systems flatten this out.";
  let table = Table.create [ "system"; "extractions"; "ECE" ] in
  List.iter
    (fun config ->
      let config =
        { config with Corpus.docs = config.Corpus.docs * (if full then 6 else 3) }
      in
      let corpus = Corpus.generate config in
      let db = Database.create () in
      Corpus.load corpus db;
      let grounding = Grounding.ground db (Pipeline.full_program ()) in
      let g = Grounding.graph grounding in
      let rng = Prng.create 81 in
      Learner.train_cd ~options:{ Learner.default_cd with Learner.epochs = 50 } rng g;
      let marginals = Gibbs.marginals ~burn_in:50 rng g ~sweeps:600 in
      let report = Calibration.evaluate grounding marginals ~truth:corpus.Corpus.truth in
      Table.add_row table
        [
          config.Corpus.name;
          string_of_int report.Calibration.total;
          Table.cell_f report.Calibration.expected_calibration_error;
        ];
      if config.Corpus.name = "News" then begin
        note "\nNews bucket detail:";
        Table.print (Calibration.to_table report)
      end)
    (if full then Systems.all else [ Systems.news; Systems.paleontology ]);
  Table.print table

let () = register "calibration" "Calibration of marginals" calibration
