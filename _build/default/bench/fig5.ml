(* Figure 5: the materialization tradeoff space on synthetic factor graphs.
   (a) cost vs graph size, (b) inference cost vs acceptance rate,
   (c) inference cost vs sparsity of correlations. *)

open Harness
module Graph = Dd_fgraph.Graph
module Gibbs = Dd_inference.Gibbs
module Metropolis = Dd_inference.Metropolis
module Materialize = Dd_core.Materialize
module Approx = Dd_variational.Approx
module Prng = Dd_util.Prng
module Timer = Dd_util.Timer
module Table = Dd_util.Table

let samples_materialized = 200
let accepted_goal = 100

(* Inference time of the sampling approach: enough proposals for roughly
   [accepted_goal] accepted samples at the probed acceptance rate. *)
let sampling_inference_time rng change ~stored =
  let probe = Metropolis.acceptance_probe (Prng.copy rng) change ~stored ~probes:50 in
  let chain_length =
    int_of_float (ceil (float_of_int accepted_goal /. max 0.005 probe))
  in
  let result = ref None in
  let seconds =
    Timer.time_s (fun () -> result := Some (Metropolis.infer rng change ~stored ~chain_length))
  in
  (seconds, (Option.get !result).Metropolis.acceptance_rate)

let variational_inference_time rng ~approx ~change =
  Timer.time_s (fun () ->
      ignore (Materialize.variational_infer ~sweeps:accepted_goal ~burn_in:10 rng ~approx ~change))

let fig5a ~full =
  section "Figure 5(a): cost vs number of variables";
  note
    "Strawman materializes all 2^n worlds (infeasible past ~20 vars); sampling\n\
     and variational stay tractable.  Times in seconds; '-' = not applicable.";
  let sizes = if full then [ 2; 10; 17; 100; 1000; 10000 ] else [ 2; 10; 17; 100; 1000 ] in
  let variational_limit = if full then 400 else 200 in
  let mat = Table.create [ "n"; "straw mat"; "sample mat"; "var mat"; "straw inf"; "sample inf"; "var inf" ] in
  List.iter
    (fun n ->
      let rng = Prng.create (1000 + n) in
      let g = synthetic_graph rng n in
      (* Materialization. *)
      let strawman = ref None in
      let straw_mat =
        if n <= 17 then Some (Timer.time_s (fun () -> strawman := Some (Materialize.strawman g)))
        else None
      in
      let stored = ref [||] in
      let sample_mat =
        Timer.time_s (fun () ->
            stored := Gibbs.sample_worlds ~burn_in:10 rng g ~n:samples_materialized)
      in
      let approx = ref None in
      let var_mat =
        if n <= variational_limit then
          Some
            (Timer.time_s (fun () ->
                 approx := Some (fst (Approx.materialize ~lambda:0.1 rng g ~samples:!stored))))
        else None
      in
      (* Inference after a mild update. *)
      let change = perturb_weights rng g 0.05 in
      let straw_inf =
        Option.map
          (fun _ ->
            Timer.time_s (fun () ->
                ignore (Materialize.strawman_marginals (Option.get !strawman) change)))
          straw_mat
      in
      let sample_inf, _rate = sampling_inference_time rng change ~stored:!stored in
      let var_inf =
        Option.map (fun a -> variational_inference_time rng ~approx:a ~change) !approx
      in
      restore_weights g change;
      let cell = function Some t -> Table.cell_f t | None -> "-" in
      Table.add_row mat
        [
          string_of_int n;
          cell straw_mat;
          Table.cell_f sample_mat;
          cell var_mat;
          cell straw_inf;
          Table.cell_f sample_inf;
          cell var_inf;
        ])
    sizes;
  Table.print mat

let fig5b ~full =
  section "Figure 5(b): inference cost vs acceptance rate";
  note
    "Sampling dominates at high acceptance (stored samples are reused almost\n\
     for free) and loses at low acceptance, where the variational approach's\n\
     flat cost wins.";
  let n = if full then 200 else 100 in
  let rng = Prng.create 7 in
  let g = synthetic_graph rng n in
  let stored = Gibbs.sample_worlds ~burn_in:20 rng g ~n:(samples_materialized * 4) in
  let approx, _ = Approx.materialize ~lambda:0.1 rng g ~samples:stored in
  let table = Table.create [ "target accept"; "measured accept"; "sampling (s)"; "variational (s)" ] in
  List.iter
    (fun target ->
      let delta = calibrate_acceptance rng g ~stored ~target in
      let change = perturb_weights rng g delta in
      let sample_seconds, measured = sampling_inference_time rng change ~stored in
      let var_seconds = variational_inference_time rng ~approx ~change in
      restore_weights g change;
      Table.add_row table
        [
          Table.cell_f target;
          Table.cell_f measured;
          Table.cell_f sample_seconds;
          Table.cell_f var_seconds;
        ])
    [ 1.0; 0.5; 0.1; 0.01 ];
  Table.print table

let fig5c ~full =
  section "Figure 5(c): inference cost vs sparsity of correlations";
  note
    "Sparser correlations give the variational approach a smaller approximate\n\
     graph and proportionally faster inference; the sampling approach's cost\n\
     is driven by acceptance, not sparsity.";
  let n = if full then 200 else 100 in
  let table =
    Table.create [ "sparsity"; "approx factors"; "sampling (s)"; "variational (s)" ]
  in
  List.iter
    (fun sparsity ->
      let rng = Prng.create 13 in
      let g = synthetic_graph ~sparsity ~extra_per_var:3 rng n in
      let stored = Gibbs.sample_worlds ~burn_in:20 rng g ~n:(4 * samples_materialized) in
      let solver = { Dd_variational.Logdet.default with Dd_variational.Logdet.prune_below = 2e-3 } in
      let approx, stats = Approx.materialize ~lambda:0.005 ~solver rng g ~samples:stored in
      (* A moderate update so the sampling approach must do real work. *)
      let delta = calibrate_acceptance rng g ~stored ~target:0.2 in
      let change = perturb_weights rng g delta in
      let sample_seconds, _ = sampling_inference_time rng change ~stored in
      let var_seconds = variational_inference_time rng ~approx ~change in
      restore_weights g change;
      Table.add_row table
        [
          Table.cell_f sparsity;
          string_of_int stats.Approx.pairwise_factors;
          Table.cell_f sample_seconds;
          Table.cell_f var_seconds;
        ])
    [ 0.1; 0.2; 0.3; 0.4; 0.5; 1.0 ];
  Table.print table

let () =
  register "fig5a" "Figure 5(a): cost vs graph size" fig5a;
  register "fig5b" "Figure 5(b): cost vs acceptance rate" fig5b;
  register "fig5c" "Figure 5(c): cost vs sparsity" fig5c
