(* The KBC-system experiments of Section 4: corpus statistics (Figure 7),
   end-to-end Rerun vs Incremental (Figure 9), quality over time
   (Figure 10a), the optimizer lesion study (Figure 11), the decomposition
   lesion (Figure 14) and the materialization budget (Figure 15). *)

open Harness
module Corpus = Dd_kbc.Corpus
module Systems = Dd_kbc.Systems
module Pipeline = Dd_kbc.Pipeline
module Quality = Dd_kbc.Quality
module Snapshots = Dd_kbc.Snapshots
module Graph = Dd_fgraph.Graph
module Gibbs = Dd_inference.Gibbs
module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Materialize = Dd_core.Materialize
module Decompose = Dd_core.Decompose
module Approx = Dd_variational.Approx
module Database = Dd_relational.Database
module Prng = Dd_util.Prng
module Timer = Dd_util.Timer
module Table = Dd_util.Table

let scale config ~full =
  let factor = if full then 8 else 4 in
  {
    config with
    Corpus.docs = config.Corpus.docs * factor;
    entities = config.Corpus.entities * 2;
    truth_pairs_per_relation = config.Corpus.truth_pairs_per_relation * 2;
  }

let bench_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 2000;
    inference_chain = 500;
    burn_in = 30;
    lambda = 0.05;
    initial_learning_epochs = 60;
    incremental_learning_epochs = 20;
    incremental_learning_rate = 0.08;
    variational_var_limit = 900;
    acceptance_floor = 0.05;
  }

(* --- Figure 6: quality and factor count vs regularization ------------------- *)

let fig6 ~full =
  section "Figure 6: variational regularization sweep on News";
  note
    "Quality (F1 of variational inference) and size of the approximate\n\
     graph across lambda: the factor count falls by an order of magnitude\n\
     as lambda grows while quality stays in the paper's 'safe region' —\n\
     at our scale the unary moment matching carries the singleton\n\
     marginals, so even aggressive pruning costs little F1.";
  let config = scale Systems.news ~full in
  let corpus = Corpus.generate config in
  let db = Database.create () in
  Corpus.load corpus db;
  let grounding = Grounding.ground db (Pipeline.full_program ()) in
  let g = Grounding.graph grounding in
  let rng = Prng.create 29 in
  Dd_inference.Learner.train_cd
    ~options:{ Dd_inference.Learner.default_cd with Dd_inference.Learner.epochs = 40 }
    rng g;
  let samples = Gibbs.sample_worlds ~burn_in:30 rng g ~n:800 in
  let exactish = Gibbs.marginals ~burn_in:30 rng g ~sweeps:400 in
  let reference = Grounding.marginals_by_relation grounding exactish in
  let table = Table.create [ "lambda"; "pairwise factors"; "F1"; "diff>0.05 vs full" ] in
  List.iter
    (fun lambda ->
      let approx, stats = Approx.materialize ~lambda rng g ~samples in
      let marginals = Gibbs.marginals ~burn_in:30 rng approx ~sweeps:400 in
      let f1 =
        (Quality.evaluate grounding marginals ~truth:corpus.Corpus.truth).Quality.f1
      in
      let agreement =
        Quality.compare_marginals
          (Grounding.marginals_by_relation grounding marginals)
          reference
      in
      Table.add_row table
        [
          Table.cell_f lambda;
          string_of_int stats.Approx.pairwise_factors;
          Table.cell_f f1;
          Table.cell_f agreement.Quality.frac_diff_gt;
        ])
    [ 0.001; 0.01; 0.1; 1.0; 10.0 ];
  Table.print table

(* --- Figure 7: corpus and factor graph statistics -------------------------- *)

let fig7 ~full =
  section "Figure 7: statistics of the five KBC systems (scaled-down synthetic)";
  let table = Table.create [ "system"; "docs"; "rels"; "rules"; "vars"; "factors"; "evidence" ] in
  List.iter
    (fun config ->
      let config = scale config ~full in
      let corpus = Corpus.generate config in
      let db = Database.create () in
      Corpus.load corpus db;
      let grounding = Grounding.ground db (Pipeline.full_program ()) in
      let stats = Grounding.stats grounding in
      Table.add_row table
        [
          config.Corpus.name;
          string_of_int config.Corpus.docs;
          string_of_int config.Corpus.relations;
          "6";
          string_of_int stats.Grounding.variables;
          string_of_int stats.Grounding.factors;
          string_of_int stats.Grounding.evidence;
        ])
    Systems.all;
  Table.print table

(* --- Figure 9: Rerun vs Incremental per rule, all systems ------------------- *)

let fig9 ~full =
  section "Figure 9: end-to-end Rerun vs Incremental (inference + learning seconds)";
  note "One row per rule template; x = speedup of Incremental over Rerun.";
  List.iter
    (fun config ->
      let config = scale config ~full in
      let corpus = Corpus.generate config in
      let result = Snapshots.run ~options:bench_options corpus in
      Printf.printf "\n%s (graph: %d vars, %d factors; materialization %.2fs)\n"
        config.Corpus.name result.Snapshots.graph_vars result.Snapshots.graph_factors
        result.Snapshots.materialization_seconds;
      let table =
        Table.create [ "rule"; "rerun(s)"; "inc(s)"; "x"; "strategy"; "accept"; "diff>0.05" ]
      in
      List.iter
        (fun (row : Snapshots.row) ->
          Table.add_row table
            [
              Pipeline.rule_id_to_string row.Snapshots.rule;
              Table.cell_f row.Snapshots.rerun_seconds;
              Table.cell_f row.Snapshots.incremental_seconds;
              Table.cell_x row.Snapshots.speedup;
              row.Snapshots.strategy;
              (match row.Snapshots.acceptance with Some a -> Table.cell_f a | None -> "-");
              Table.cell_f row.Snapshots.agreement.Quality.frac_diff_gt;
            ])
        result.Snapshots.rows;
      Table.print table)
    Systems.all

(* --- Figure 10(a): quality vs cumulative time ------------------------------- *)

let fig10a ~full =
  section "Figure 10(a): F1 vs cumulative execution time on News (Rerun vs Incremental)";
  let config = scale Systems.news ~full in
  let corpus = Corpus.generate config in
  let result = Snapshots.run ~options:bench_options corpus in
  let table =
    Table.create
      [ "after rule"; "inc cumulative(s)"; "inc F1"; "rerun cumulative(s)"; "rerun F1" ]
  in
  let inc = ref result.Snapshots.materialization_seconds and rerun = ref 0.0 in
  List.iter
    (fun (row : Snapshots.row) ->
      inc := !inc +. row.Snapshots.incremental_seconds +. row.Snapshots.grounding_seconds;
      rerun := !rerun +. row.Snapshots.rerun_seconds;
      Table.add_row table
        [
          Pipeline.rule_id_to_string row.Snapshots.rule;
          Table.cell_f !inc;
          Table.cell_f row.Snapshots.f1_incremental;
          Table.cell_f !rerun;
          Table.cell_f row.Snapshots.f1_rerun;
        ])
    result.Snapshots.rows;
  Table.print table;
  note "(Incremental cumulative time includes its one-time materialization.)"

(* --- Figure 11: lesion study of the optimizer -------------------------------- *)

let fig11 ~full =
  section "Figure 11: lesion study on News (inference+learning seconds per rule)";
  note
    "All = full optimizer; NoSampling / NoVariational disable one\n\
     materialization strategy; NoWorkloadInfo uses sampling until samples run\n\
     out and then switches, ignoring the update's nature.";
  let config = scale Systems.news ~full in
  let corpus = Corpus.generate config in
  let variants =
    [
      ("All", bench_options);
      ("NoSampling", { bench_options with Engine.disable_sampling = true });
      ("NoVariational", { bench_options with Engine.disable_variational = true });
      ("NoWorkloadInfo", { bench_options with Engine.workload_aware = false });
    ]
  in
  let results =
    List.map
      (fun (name, options) ->
        (name, Snapshots.run ~options ~skip_rerun:true corpus))
      variants
  in
  let table =
    Table.create
      ("rule" :: List.map fst results)
  in
  List.iteri
    (fun idx rule_id ->
      Table.add_row table
        (Pipeline.rule_id_to_string rule_id
        :: List.map
             (fun (_, result) ->
               let row = List.nth result.Snapshots.rows idx in
               Table.cell_f row.Snapshots.incremental_seconds)
             results))
    Pipeline.all_rule_ids;
  Table.print table;
  let strategies (name, result) =
    Printf.sprintf "%s: %s" name
      (String.concat "," (List.map (fun (r : Snapshots.row) -> r.Snapshots.strategy) result.Snapshots.rows))
  in
  note "Strategies used per rule:";
  List.iter (fun variant -> note "  %s" (strategies variant)) results

(* --- Figure 14: decomposition lesion ------------------------------------------ *)

let project_samples samples mapping sub_vars =
  Array.map
    (fun world ->
      Array.init sub_vars (fun _ -> false)
      |> fun out ->
      Array.iteri (fun orig sub -> if sub >= 0 then out.(sub) <- world.(orig)) mapping;
      out)
    samples

let fig14 ~full =
  section "Figure 14: decomposition with inactive variables (variational materialization)";
  note
    "Interest area = one relation; inactive variables decompose into\n\
     conditionally independent groups, each materialized separately.\n\
     NoDecomposition runs the variational approach on the whole graph.";
  let config = scale Systems.news ~full in
  let corpus = Corpus.generate config in
  let db = Database.create () in
  Corpus.load corpus db;
  let grounding = Grounding.ground db (Pipeline.full_program ()) in
  let g = Grounding.graph grounding in
  let rng = Prng.create 31 in
  (* Initial weights + shared samples (both variants start from these). *)
  Dd_inference.Learner.train_cd
    ~options:{ Dd_inference.Learner.default_cd with Dd_inference.Learner.epochs = 15 }
    rng g;
  let samples = Gibbs.sample_worlds ~burn_in:30 rng g ~n:300 in
  (* Active variables: candidates of relation r0 (the analyst's focus). *)
  let active =
    List.filter_map
      (fun (tuple, var) ->
        match tuple.(0) with
        | Dd_relational.Value.Str "r0" -> Some var
        | _ -> None)
      (Grounding.vars_of_relation grounding Pipeline.query_relation)
  in
  let whole_seconds =
    time_median ~repeats:1 (fun () ->
        let approx, _ = Approx.materialize ~lambda:0.1 rng g ~samples in
        ignore (Gibbs.marginals ~burn_in:10 rng approx ~sweeps:100))
  in
  let groups = ref [] in
  let decomposed_seconds =
    time_median ~repeats:1 (fun () ->
        groups := Decompose.decompose g ~active;
        List.iter
          (fun group ->
            let sub, mapping = Decompose.group_subgraph g group in
            if Graph.num_vars sub > 1 then begin
              let sub_samples = project_samples samples mapping (Graph.num_vars sub) in
              let approx, _ = Approx.materialize ~lambda:0.1 rng sub ~samples:sub_samples in
              ignore (Gibbs.marginals ~burn_in:10 rng approx ~sweeps:100)
            end)
          !groups)
  in
  let table = Table.create [ "variant"; "groups"; "seconds" ] in
  Table.add_row table [ "All (decomposed)"; string_of_int (List.length !groups); Table.cell_f decomposed_seconds ];
  Table.add_row table [ "NoDecomposition"; "1"; Table.cell_f whole_seconds ];
  Table.print table;
  note "Whole-graph variables: %d; active (interest area): %d" (Graph.num_vars g)
    (List.length active)

(* --- Figure 15: samples materialized within a budget --------------------------- *)

let fig15 ~full =
  section "Figure 15: samples materialized within a fixed wall-clock budget";
  let budget = if full then 4.0 else 1.0 in
  note "Budget scaled from the paper's 8 hours to %.1fs per system." budget;
  let table = Table.create [ "system"; "vars"; "samples in budget" ] in
  List.iter
    (fun config ->
      let config = scale config ~full in
      let corpus = Corpus.generate config in
      let db = Database.create () in
      Corpus.load corpus db;
      let grounding = Grounding.ground db (Pipeline.full_program ()) in
      let g = Grounding.graph grounding in
      let rng = Prng.create 17 in
      let m = Materialize.materialize_within_budget rng g ~seconds:budget in
      Table.add_row table
        [
          config.Corpus.name;
          string_of_int (Graph.num_vars g);
          string_of_int (Array.length m.Materialize.samples);
        ])
    Systems.all;
  Table.print table

let () =
  register "fig6" "Figure 6: regularization sweep" fig6;
  register "fig7" "Figure 7: KBC system statistics" fig7;
  register "fig9" "Figure 9: Rerun vs Incremental" fig9;
  register "fig10a" "Figure 10(a): quality over time" fig10a;
  register "fig11" "Figure 11: optimizer lesion study" fig11;
  register "fig14" "Figure 14: decomposition lesion" fig14;
  register "fig15" "Figure 15: materialization budget" fig15
