(* Semantics experiments: extraction quality per counting semantics
   (Figure 10b) and Gibbs convergence speed on the voting program
   (Figures 12/13 and Appendix A). *)

open Harness
module Corpus = Dd_kbc.Corpus
module Systems = Dd_kbc.Systems
module Pipeline = Dd_kbc.Pipeline
module Quality = Dd_kbc.Quality
module Semantics = Dd_fgraph.Semantics
module Voting = Dd_fgraph.Voting
module Gibbs = Dd_inference.Gibbs
module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Database = Dd_relational.Database
module Learner = Dd_inference.Learner
module Prng = Dd_util.Prng
module Table = Dd_util.Table

(* --- Figure 10(b): quality of the three semantics ------------------------------ *)

let f1_with_semantics config semantics =
  let corpus = Corpus.generate config in
  let db = Database.create () in
  Corpus.load corpus db;
  let grounding = Grounding.ground db (Pipeline.full_program ~semantics ()) in
  let g = Grounding.graph grounding in
  let rng = Prng.create 23 in
  Learner.train_cd
    ~options:{ Learner.default_cd with Learner.epochs = 30 }
    rng g;
  let marginals = Gibbs.marginals ~burn_in:30 rng g ~sweeps:300 in
  (Quality.evaluate grounding marginals ~truth:corpus.Corpus.truth).Quality.f1

let fig10b ~full =
  section "Figure 10(b): extraction quality (F1) per counting semantics";
  note
    "Logical and Ratio semantics dampen repeated noisy groundings; Linear\n\
     is competitive only where raw counts carry signal.";
  let table = Table.create [ "system"; "linear"; "logical"; "ratio" ] in
  List.iter
    (fun config ->
      let config = if full then { config with Corpus.docs = config.Corpus.docs * 2 } else config in
      let scores = List.map (fun s -> f1_with_semantics config s) [ Semantics.Linear; Semantics.Logical; Semantics.Ratio ] in
      Table.add_row table (config.Corpus.name :: List.map Table.cell_f scores))
    Systems.all;
  Table.print table

(* --- Figure 13: Gibbs convergence on the voting program ------------------------- *)

let fig13 ~full =
  section "Figure 13: Gibbs sweeps to reach the exact marginal (voting program)";
  note
    "Sweeps until the running estimate of P(q) stays within 1%% of the\n\
     closed-form marginal.  Linear semantics mixes exponentially slowly as\n\
     votes grow; Logical and Ratio stay near-linear (Appendix A bounds).";
  let sizes = if full then [ 10; 100; 1000; 10000 ] else [ 10; 100; 1000 ] in
  let max_sweeps = if full then 200_000 else 60_000 in
  let table = Table.create [ "|U|+|D|"; "linear"; "logical"; "ratio" ] in
  List.iter
    (fun total ->
      let half = total / 2 in
      let sweeps_for semantics =
        (* Linear provably mixes in exponential time (Figure 12); cap its
           budget so the sweep over sizes stays affordable. *)
        let max_sweeps =
          if semantics = Semantics.Linear && total > 10 then max_sweeps / 4 else max_sweeps
        in
        let cfg =
          { Voting.default with Voting.n_up = half; n_down = half; rule_weight = 1.0; semantics }
        in
        let exact = Voting.exact_marginal_q cfg in
        let graph, q, _, _ = Voting.build cfg in
        match
          Dd_inference.Fast_gibbs.sweeps_to_converge ~tolerance:0.01 ~max_sweeps
            (Prng.create (41 + total)) graph ~target_var:q ~target_prob:exact
        with
        | Some sweeps -> string_of_int sweeps
        | None -> Printf.sprintf ">%d" max_sweeps
      in
      Table.add_row table
        [
          string_of_int total;
          sweeps_for Semantics.Linear;
          sweeps_for Semantics.Logical;
          sweeps_for Semantics.Ratio;
        ])
    sizes;
  Table.print table;
  note
    "(The linear column saturates quickly: with n up-votes the distribution\n\
     is so sharply peaked that the chain commits to one mode immediately —\n\
     near-instant 'convergence' to a degenerate marginal near 1 — while at\n\
     small n it must actually mix between modes.)"

let () =
  register "fig10b" "Figure 10(b): semantics quality" fig10b;
  register "fig13" "Figure 13: voting convergence" fig13
