(* Bechamel micro-benchmarks for the hot kernels underneath every
   experiment: factor-energy evaluation, a Gibbs sweep, an indexed join,
   and a DRed delta application. *)

open Harness
module Graph = Dd_fgraph.Graph
module Gibbs = Dd_inference.Gibbs
module Prng = Dd_util.Prng
module Value = Dd_relational.Value
module Schema = Dd_relational.Schema
module Relation = Dd_relational.Relation
module Algebra = Dd_relational.Algebra
open Bechamel
open Toolkit

let gibbs_sweep_test =
  let rng = Prng.create 51 in
  let g = synthetic_graph rng 200 in
  let assignment = Gibbs.init_assignment rng g in
  Test.make ~name:"gibbs sweep (200 vars)" (Staged.stage (fun () -> Gibbs.sweep rng g assignment))

let total_energy_test =
  let rng = Prng.create 52 in
  let g = synthetic_graph rng 200 in
  let assignment = Gibbs.init_assignment rng g in
  Test.make ~name:"total energy (200 vars)"
    (Staged.stage (fun () -> ignore (Graph.total_energy g (fun v -> assignment.(v)))))

let join_test =
  let schema = Schema.make [ ("a", Value.TInt); ("b", Value.TInt) ] in
  let rng = Prng.create 53 in
  let rel names =
    let r = Relation.create ~name:names schema in
    for _ = 1 to 2000 do
      Relation.insert r [| Value.Int (Prng.int_below rng 300); Value.Int (Prng.int_below rng 300) |]
    done;
    r
  in
  let left = rel "l" and right = Algebra.rename (rel "r") [ ("a", "b"); ("b", "c") ] in
  Test.make ~name:"natural join (2k x 2k)"
    (Staged.stage (fun () -> ignore (Algebra.natural_join left right)))

let benchmarks () = [ gibbs_sweep_test; total_energy_test; join_test ]

let run_micro ~full:_ =
  section "Micro-benchmarks (Bechamel)";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let instances = Instance.[ monotonic_clock ] in
  let tests = benchmarks () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ nanos ] -> note "  %-28s %12.1f ns/op" name nanos
          | _ -> note "  %-28s (no estimate)" name)
        analyzed)
    tests

let () = register "micro" "Micro-benchmarks of hot kernels" run_micro
