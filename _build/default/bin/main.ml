(* The deepdive CLI: parse a DDlog program, ground it over CSV base tables,
   learn weights, run inference and report marginal probabilities — the
   outer loop of Figure 1 driven from a shell. *)

module Program = Dd_core.Program
module Grounding = Dd_core.Grounding
module Engine = Dd_core.Engine
module Database = Dd_relational.Database
module Csv = Dd_relational.Csv
module Tuple = Dd_relational.Tuple
open Cmdliner

let read_program path =
  match Dd_ddlog.Parser.parse_file path with
  | Ok prog -> prog
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    exit 1

let load_data db (prog : Program.t) data_dir =
  List.iter
    (fun (name, schema) ->
      let rel =
        match Database.find_opt db name with
        | Some r -> r
        | None -> Database.create_table db name schema
      in
      let path = Filename.concat data_dir (name ^ ".csv") in
      if Sys.file_exists path then begin
        let rows = Csv.load_file rel path in
        Printf.printf "loaded %s: %d rows\n" name rows
      end)
    prog.Program.input_schemas

(* --- check ----------------------------------------------------------------- *)

let check_cmd =
  let program_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"DDlog program file")
  in
  let run program =
    let prog = read_program program in
    let n_det, n_sup, n_inf =
      List.fold_left
        (fun (d, s, i) -> function
          | Program.Deterministic _ -> (d + 1, s, i)
          | Program.Supervise _ -> (d, s + 1, i)
          | Program.Infer _ -> (d, s, i + 1))
        (0, 0, 0) prog.Program.rules
    in
    Printf.printf "%s: ok\n" program;
    Printf.printf "  input relations: %d\n" (List.length prog.Program.input_schemas);
    Printf.printf "  query relations: %s\n"
      (String.concat ", " (List.map fst prog.Program.query_relations));
    Printf.printf "  rules: %d deterministic, %d supervision, %d inference\n" n_det n_sup n_inf
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and validate a DDlog program")
    Term.(const run $ program_arg)

(* --- run ------------------------------------------------------------------- *)

let run_cmd =
  let program_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"DDlog program file")
  in
  let data_arg =
    Arg.(
      required
      & opt (some dir) None
      & info [ "data" ] ~docv:"DIR" ~doc:"Directory of <table>.csv files for input relations")
  in
  let sweeps_arg =
    Arg.(value & opt int 200 & info [ "sweeps" ] ~doc:"Gibbs sweeps for inference")
  in
  let epochs_arg =
    Arg.(value & opt int 30 & info [ "learn" ] ~doc:"Weight-learning epochs")
  in
  let top_arg =
    Arg.(value & opt int 20 & info [ "top" ] ~doc:"Print the top K extractions per relation")
  in
  let threshold_arg =
    Arg.(value & opt float 0.0 & info [ "threshold" ] ~doc:"Only print facts above this probability")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed") in
  let run program data sweeps epochs top threshold seed =
    let prog = read_program program in
    let db = Database.create () in
    load_data db prog data;
    let options =
      {
        Engine.default_options with
        Engine.inference_chain = sweeps;
        initial_learning_epochs = epochs;
        seed;
        with_variational = false;
      }
    in
    let engine = Engine.create ~options db prog in
    let stats = Grounding.stats (Engine.grounding engine) in
    Printf.printf "grounded: %d variables, %d factors, %d weights, %d evidence\n"
      stats.Grounding.variables stats.Grounding.factors stats.Grounding.weights
      stats.Grounding.evidence;
    let rng = Dd_util.Prng.create seed in
    let marginals =
      Dd_inference.Gibbs.marginals ~burn_in:20 rng (Engine.graph engine) ~sweeps
    in
    let by_rel = Grounding.marginals_by_relation (Engine.grounding engine) marginals in
    List.iter
      (fun (rel, _) ->
        Printf.printf "\n%s (top %d):\n" rel top;
        let rows =
          List.filter (fun (r, _, p) -> r = rel && p >= threshold) by_rel
          |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
        in
        List.iteri
          (fun idx (_, tuple, p) ->
            if idx < top then Printf.printf "  %.3f  %s\n" p (Tuple.to_string tuple))
          rows)
      prog.Program.query_relations
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Ground, learn and infer a DDlog program over CSV data")
    Term.(
      const run $ program_arg $ data_arg $ sweeps_arg $ epochs_arg $ top_arg $ threshold_arg
      $ seed_arg)

(* --- demo ------------------------------------------------------------------ *)

let demo_cmd =
  let docs_arg = Arg.(value & opt int 60 & info [ "docs" ] ~doc:"Synthetic documents") in
  let analyze_arg =
    Arg.(value & flag & info [ "analyze" ] ~doc:"Print error analysis and calibration reports")
  in
  let run docs analyze =
    let corpus =
      Dd_kbc.Corpus.generate { Dd_kbc.Systems.news with Dd_kbc.Corpus.docs; name = "Demo" }
    in
    print_endline (Dd_kbc.Corpus.statistics corpus);
    let result = Dd_kbc.Snapshots.run corpus in
    Printf.printf "graph: %d variables, %d factors; materialization %.2fs\n\n"
      result.Dd_kbc.Snapshots.graph_vars result.Dd_kbc.Snapshots.graph_factors
      result.Dd_kbc.Snapshots.materialization_seconds;
    let table =
      Dd_util.Table.create
        [ "rule"; "rerun(s)"; "incremental(s)"; "speedup"; "strategy"; "F1 inc"; "F1 rerun" ]
    in
    List.iter
      (fun (row : Dd_kbc.Snapshots.row) ->
        Dd_util.Table.add_row table
          [
            Dd_kbc.Pipeline.rule_id_to_string row.Dd_kbc.Snapshots.rule;
            Dd_util.Table.cell_f row.Dd_kbc.Snapshots.rerun_seconds;
            Dd_util.Table.cell_f row.Dd_kbc.Snapshots.incremental_seconds;
            Dd_util.Table.cell_x row.Dd_kbc.Snapshots.speedup;
            row.Dd_kbc.Snapshots.strategy;
            Dd_util.Table.cell_f row.Dd_kbc.Snapshots.f1_incremental;
            Dd_util.Table.cell_f row.Dd_kbc.Snapshots.f1_rerun;
          ])
      result.Dd_kbc.Snapshots.rows;
    Dd_util.Table.print table;
    if analyze then begin
      (* Re-run the final program once to get a grounding plus marginals for
         the error-analysis and calibration reports. *)
      print_endline "\n--- Error analysis (Section 2.2) ---";
      let db = Database.create () in
      Dd_kbc.Corpus.load corpus db;
      let grounding = Grounding.ground db (Dd_kbc.Pipeline.full_program ()) in
      let rng = Dd_util.Prng.create 5 in
      Dd_inference.Learner.train_cd
        ~options:{ Dd_inference.Learner.default_cd with Dd_inference.Learner.epochs = 40 }
        rng
        (Grounding.graph grounding);
      let marginals =
        Dd_inference.Gibbs.marginals ~burn_in:40 rng (Grounding.graph grounding) ~sweeps:500
      in
      Dd_kbc.Analysis.print
        (Dd_kbc.Analysis.analyze grounding marginals ~truth:corpus.Dd_kbc.Corpus.truth);
      print_endline "\n--- Calibration ---";
      let report =
        Dd_kbc.Calibration.evaluate grounding marginals ~truth:corpus.Dd_kbc.Corpus.truth
      in
      Dd_util.Table.print (Dd_kbc.Calibration.to_table report);
      Printf.printf "Expected calibration error: %.3f over %d predictions\n"
        report.Dd_kbc.Calibration.expected_calibration_error report.Dd_kbc.Calibration.total
    end
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Run the six-snapshot incremental development demo on a synthetic corpus")
    Term.(const run $ docs_arg $ analyze_arg)

let () =
  let info = Cmd.info "deepdive" ~version:"1.0.0" ~doc:"Incremental knowledge base construction" in
  exit (Cmd.eval (Cmd.group info [ check_cmd; run_cmd; demo_cmd ]))
