examples/drift_monitor.ml: Dd_inference Dd_kbc Dd_util List Printf
