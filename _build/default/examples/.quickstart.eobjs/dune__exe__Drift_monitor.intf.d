examples/drift_monitor.mli:
