examples/genomics_kbc.ml: Array Dd_core Dd_ddlog Dd_inference Dd_kbc Dd_relational Dd_util List Printf
