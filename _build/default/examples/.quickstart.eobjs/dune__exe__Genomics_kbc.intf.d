examples/genomics_kbc.mli:
