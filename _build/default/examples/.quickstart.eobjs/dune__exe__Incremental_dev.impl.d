examples/incremental_dev.ml: Dd_core Dd_kbc Dd_relational Dd_util Printf
