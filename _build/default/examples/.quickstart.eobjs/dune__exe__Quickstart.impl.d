examples/quickstart.ml: Array Dd_core Dd_ddlog Dd_inference Dd_relational Dd_util List Printf
