examples/quickstart.mli:
