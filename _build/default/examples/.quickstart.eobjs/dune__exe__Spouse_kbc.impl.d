examples/spouse_kbc.ml: Dd_kbc Dd_util List Printf
