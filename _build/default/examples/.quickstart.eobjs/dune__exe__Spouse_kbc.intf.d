examples/spouse_kbc.mli:
