examples/text_pipeline.mli:
