examples/voting_semantics.ml: Array Dd_fgraph Dd_inference Dd_util List
