examples/voting_semantics.mli:
