(* Incremental learning under concept drift (Appendix B.3/B.4).

   A spam classifier — the one-liner logistic regression of Example 2.6 —
   is trained over a chronological stream whose feature distribution shifts
   partway through.  Rerun trains from scratch on the 30% prefix;
   Incremental warmstarts from a model materialized on the 10% prefix.
   Even across the drift, warmstart reaches a low test loss in fewer
   epochs, though the gap narrows compared to the drift-free case.

   Run with: dune exec examples/drift_monitor.exe *)

module Drift = Dd_kbc.Drift
module Learner = Dd_inference.Learner
module Table = Dd_util.Table
module Prng = Dd_util.Prng

let epochs = 20

let trace ~name ~warm data test =
  let losses = ref [] in
  let rng = Prng.create 3 in
  let (_ : float array) =
    Learner.train_lr ~method_:Learner.Sgd ?warm ~epochs ~learning_rate:0.3 rng data
      ~on_epoch:(fun _ weights -> losses := Learner.lr_loss test weights :: !losses)
  in
  (name, List.rev !losses)

let run ~label drift_at =
  let stream = Drift.generate ~drift_at ~seed:21 () in
  (* Materialization-time model: trained on the early prefix. *)
  let early_model =
    Learner.train_lr ~method_:Learner.Sgd ~epochs:30 ~learning_rate:0.3 (Prng.create 2)
      stream.Drift.train_early
  in
  let runs =
    [
      trace ~name:"Rerun (cold)" ~warm:None stream.Drift.train_late stream.Drift.test;
      trace ~name:"Incremental (warmstart)" ~warm:(Some early_model) stream.Drift.train_late
        stream.Drift.test;
    ]
  in
  Printf.printf "%s\n" label;
  let table =
    Table.create ("epoch" :: List.map fst runs)
  in
  List.iteri
    (fun epoch _ ->
      if epoch mod 2 = 0 then
        Table.add_row table
          (string_of_int (epoch + 1)
          :: List.map (fun (_, losses) -> Table.cell_f (List.nth losses epoch)) runs))
    (List.init epochs (fun e -> e));
  Table.print table;
  print_newline ()

let () =
  run ~label:"No drift (distribution stable across the stream):" 0.0;
  run ~label:"Concept drift at 20% of the stream (training data straddles it):" 0.2;
  print_endline
    "Warmstart starts from a lower loss and converges in fewer epochs; under\n\
     drift both learners converge to the same loss and the warmstart head\n\
     start shrinks to roughly nothing — the Figure 17 observation that the\n\
     benefit of incremental learning is smaller, but a rerun gains little."
