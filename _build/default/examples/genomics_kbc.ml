(* A second domain: gene-disease association extraction — the shape of the
   paper's Genomics deployment (precise text, linguistically ambiguous
   relations).  Beyond the spouse examples this one shows:

   - two query relations in one program (associations and suppressions),
   - MAP inference (the single most likely knowledge base) next to
     marginals,
   - the error-analysis report driving the next development iteration.

   Run with: dune exec examples/genomics_kbc.exe *)

module Database = Dd_relational.Database
module Value = Dd_relational.Value
module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Nlp_load = Dd_kbc.Nlp_load
module Map_inference = Dd_inference.Map_inference

let abstracts =
  [
    (0, "BRCA1 is associated with breast cancer. TP53 mutations cause li fraumeni syndrome.");
    (1, "Overexpression of MDM2 suppresses TP53 in several tumors. \
         BRCA2 is associated with breast cancer.");
    (2, "Studies link APOE to alzheimer disease. HTT expansion causes huntington disease.");
    (3, "BRCA1 was mentioned alongside alzheimer disease with no causal finding. \
         MDM2 suppresses ARF in this pathway.");
    (4, "APOE is associated with alzheimer disease in both cohorts. \
         TP53 is associated with li fraumeni syndrome.");
  ]

let genes = [ "BRCA1"; "BRCA2"; "TP53"; "MDM2"; "APOE"; "HTT"; "ARF" ]

let diseases =
  [ "breast cancer"; "li fraumeni syndrome"; "alzheimer disease"; "huntington disease" ]

(* Incomplete curated KB (distant supervision). *)
let known_assoc =
  [ ("BRCA1", "breast cancer"); ("APOE", "alzheimer disease"); ("HTT", "huntington disease") ]

let known_suppresses = [ ("MDM2", "TP53") ]

let program_source =
  {|
  input sentence(doc int, sid int, phrase text, ctx text).
  input mention(sid int, mid text, name text, pos int).
  input el(name text, eid text).
  input known_assoc(g text, d text).
  input known_suppr(g text, d text).

  query assoc(m1 text, m2 text).
  query suppr(m1 text, m2 text).

  @cand
  pair(s, m1, m2) :- mention(s, m1, n1, 0), mention(s, m2, n2, 1).

  @assoc_fe
  assoc(m1, m2) :- pair(s, m1, m2), sentence(d, s, p, c)
    weight = w(p) semantics = ratio.

  @suppr_fe
  suppr(m1, m2) :- pair(s, m1, m2), sentence(d, s, p, c)
    weight = w(p) semantics = ratio.

  // The two relations are near-exclusive on the same mention pair.
  @exclusive
  assoc(m1, m2) :- suppr(m1, m2), pair(s, m1, m2)
    weight = -2.0 populate = false.

  @assoc_pos
  assoc_ev(m1, m2, true) :-
    pair(s, m1, m2), mention(s, m1, n1, 0), mention(s, m2, n2, 1),
    el(n1, e1), el(n2, e2), known_assoc(e1, e2).

  @suppr_pos
  suppr_ev(m1, m2, true) :-
    pair(s, m1, m2), mention(s, m1, n1, 0), mention(s, m2, n2, 1),
    el(n1, e1), el(n2, e2), known_suppr(e1, e2).

  // Known suppression pairs are negative evidence for association.
  @assoc_neg
  assoc_ev(m1, m2, false) :-
    pair(s, m1, m2), mention(s, m1, n1, 0), mention(s, m2, n2, 1),
    el(n1, e1), el(n2, e2), known_suppr(e1, e2).
|}

let () =
  let prog =
    match Dd_ddlog.Parser.parse program_source with
    | Ok p -> p
    | Error e -> failwith e
  in
  let db = Database.create () in
  let stats = Nlp_load.load_documents db ~entity_names:(genes @ diseases) abstracts in
  Printf.printf "NLP front: %d abstracts, %d sentences, %d mention pairs.\n\n"
    stats.Nlp_load.documents stats.Nlp_load.sentences stats.Nlp_load.pairs;
  List.iter
    (fun (name, schema) ->
      if not (Database.mem db name) then ignore (Database.create_table db name schema))
    prog.Dd_core.Program.input_schemas;
  let str = Value.str in
  List.iter (fun n -> Database.insert_rows db "el" [ [| str n; str n |] ]) (genes @ diseases);
  List.iter
    (fun (g, d) -> Database.insert_rows db "known_assoc" [ [| str g; str d |] ])
    known_assoc;
  List.iter
    (fun (g, d) -> Database.insert_rows db "known_suppr" [ [| str g; str d |] ])
    known_suppresses;
  let engine = Engine.create db prog in
  let gstats = Grounding.stats (Engine.grounding engine) in
  Printf.printf "Factor graph: %d variables, %d factors (%d weights).\n\n"
    gstats.Grounding.variables gstats.Grounding.factors gstats.Grounding.weights;
  let grounding = Engine.grounding engine in
  let rng = Dd_util.Prng.create 4 in
  let marginals = Dd_inference.Gibbs.marginals ~burn_in:50 rng (Engine.graph engine) ~sweeps:2500 in
  let name_of mid =
    let rel = Database.find db "mention" in
    let result = ref mid in
    Dd_relational.Relation.iter
      (fun t _ -> if Value.equal t.(1) (Value.Str mid) then result := Value.as_str t.(2))
      rel;
    !result
  in
  List.iter
    (fun relation ->
      Printf.printf "%s (marginal probability):\n" relation;
      Grounding.marginals_by_relation grounding marginals
      |> List.filter (fun (rel, _, _) -> rel = relation)
      |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
      |> List.iter (fun (_, tuple, p) ->
             Printf.printf "  %.3f  %s -- %s\n" p
               (name_of (Value.as_str tuple.(0)))
               (name_of (Value.as_str tuple.(1))));
      print_newline ())
    [ "assoc"; "suppr" ];
  (* The most probable knowledge base as a whole. *)
  let map = Map_inference.search ~sweeps:400 rng (Engine.graph engine) in
  let accepted =
    Grounding.marginals_by_relation grounding
      (Array.map (fun b -> if b then 1.0 else 0.0) map.Map_inference.assignment)
    |> List.filter (fun (_, _, p) -> p > 0.5)
  in
  Printf.printf "MAP knowledge base (%d facts, log-weight %.2f):\n"
    (List.length accepted) map.Map_inference.log_weight;
  List.iter
    (fun (rel, tuple, _) ->
      Printf.printf "  %s(%s, %s)\n" rel
        (name_of (Value.as_str tuple.(0)))
        (name_of (Value.as_str tuple.(1))))
    accepted
