(* Incremental grounding when new documents arrive (Section 3.1).

   KBC corpora grow: "new data sources arrive".  This example loads part of
   a corpus, grounds and materializes once, then feeds the remaining
   documents through DRed-based incremental grounding in batches.  Each
   delta — new candidates, new variables, new factors — is computed from
   the changed tuples alone, so it is far cheaper than re-evaluating every
   rule from scratch, and incremental inference absorbs it without
   re-running the full sampler.

   Run with: dune exec examples/incremental_dev.exe *)

module Corpus = Dd_kbc.Corpus
module Systems = Dd_kbc.Systems
module Pipeline = Dd_kbc.Pipeline
module Quality = Dd_kbc.Quality
module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Database = Dd_relational.Database
module Timer = Dd_util.Timer
module Table = Dd_util.Table

let initial_docs = 50
let batch = 20

let () =
  let config = { Systems.news with Corpus.docs = 130 } in
  let corpus = Corpus.generate config in
  print_endline (Corpus.statistics corpus);
  Printf.printf "Loading the first %d documents, then streaming the rest in batches of %d.\n\n"
    initial_docs batch;
  (* Program with features and supervision already in place. *)
  let program = Pipeline.full_program () in
  let db = Database.create () in
  Corpus.load corpus ~docs:initial_docs db;
  let engine = Engine.create db program in
  let stats0 = Grounding.stats (Engine.grounding engine) in
  Printf.printf "Initial graph: %d variables, %d factors.\n\n" stats0.Grounding.variables
    stats0.Grounding.factors;
  let table =
    Table.create
      [ "docs"; "ground(s)"; "rescratch-ground(s)"; "infer(s)"; "new vars"; "new factors"; "strategy"; "F1" ]
  in
  let doc = ref initial_docs in
  while !doc < config.Corpus.docs do
    let until_doc = min config.Corpus.docs (!doc + batch) in
    let delta = Corpus.doc_delta corpus ~from_doc:!doc ~until_doc in
    let report = Engine.apply_update engine (Grounding.data_update delta) in
    (* Baseline: how long does grounding the whole program from scratch on
       the grown corpus take? *)
    let rescratch_seconds =
      Timer.time_s (fun () ->
          let fresh_db = Database.create () in
          Corpus.load corpus ~docs:until_doc fresh_db;
          ignore (Grounding.ground fresh_db program))
    in
    let f1 =
      (Quality.evaluate (Engine.grounding engine) report.Engine.marginals
         ~truth:corpus.Corpus.truth)
        .Quality.f1
    in
    Table.add_row table
      [
        string_of_int until_doc;
        Table.cell_f report.Engine.grounding_seconds;
        Table.cell_f rescratch_seconds;
        Table.cell_f report.Engine.inference_seconds;
        string_of_int report.Engine.grounding.Grounding.new_vars;
        string_of_int report.Engine.grounding.Grounding.new_factors;
        Engine.strategy_used_to_string report.Engine.strategy;
        Table.cell_f f1;
      ];
    doc := until_doc
  done;
  Table.print table;
  let stats1 = Grounding.stats (Engine.grounding engine) in
  Printf.printf "\nFinal graph: %d variables, %d factors.\n" stats1.Grounding.variables
    stats1.Grounding.factors;
  print_endline
    "The incremental grounding column stays roughly proportional to the batch size\n\
     while grounding from scratch grows with the whole corpus."
