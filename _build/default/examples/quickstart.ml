(* Quickstart: the HasSpouse example of Section 2 of the paper, end to end.

   A tiny corpus of "news sentences" mentions pairs of people connected by a
   phrase.  The DDlog program below — written in the surface language and
   parsed by [Dd_ddlog.Parser] — generates candidate mention pairs (R1),
   declares a phrase classifier with tied weights (FE1), and distantly
   supervises it from a small list of known married couples (S1/S2).
   We ground it to a factor graph, learn the weights, run Gibbs sampling and
   print the marginal probability of every candidate.

   Run with: dune exec examples/quickstart.exe *)

module Database = Dd_relational.Database
module Value = Dd_relational.Value
module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding

let program_source =
  {|
  // Base tables: one sentence per row, two person mentions per sentence.
  input sentence(sid int, phrase text).
  input mention(sid int, mid text, name text, pos int).
  input el(name text, eid text).           // entity linking
  input married(e1 text, e2 text).         // incomplete KB: known couples
  input sibling(e1 text, e2 text).         // disjoint relation for negatives

  query has_spouse(m1 text, m2 text).

  // (R1) candidate generation: every mention pair in a sentence.
  @R1
  spouse_candidate(s, m1, m2) :-
    mention(s, m1, n1, 0), mention(s, m2, n2, 1).

  // (FE1) the phrase between the mentions is a feature with tied weights:
  // "declaring a classifier is a one-liner".
  @FE1
  has_spouse(m1, m2) :-
    spouse_candidate(s, m1, m2), sentence(s, p)
    weight = w(p) semantics = ratio.

  // (S1) distant supervision: mention pairs linking to a known couple are
  // positive evidence.
  @S1
  has_spouse_ev(m1, m2, true) :-
    spouse_candidate(s, m1, m2),
    mention(s, m1, n1, 0), mention(s, m2, n2, 1),
    el(n1, e1), el(n2, e2), married(e1, e2).

  // (S2) pairs known to be siblings are negative evidence.
  @S2
  has_spouse_ev(m1, m2, false) :-
    spouse_candidate(s, m1, m2),
    mention(s, m1, n1, 0), mention(s, m2, n2, 1),
    el(n1, e1), el(n2, e2), sibling(e1, e2).
|}

(* (sentence phrase, person at position 0, person at position 1) *)
let sentences =
  [
    ("and_his_wife", "Barack Obama", "Michelle Obama");
    ("and_his_wife", "George Bush", "Laura Bush");
    ("and_his_wife", "John Kennedy", "Jackie Kennedy");
    ("married_on_oct_3", "Barack Obama", "Michelle Obama");
    ("and_his_brother", "Barack Obama", "Malik Obama");
    ("and_his_brother", "John Kennedy", "Robert Kennedy");
    ("attended_dinner_with", "Barack Obama", "Angela Merkel");
    ("and_his_wife", "Franklin Roosevelt", "Eleanor Roosevelt");
    ("met_with", "George Bush", "Tony Blair");
    (* Unlabeled pairs the system must decide about: *)
    ("and_his_wife", "Harry Truman", "Bess Truman");
    ("and_his_brother", "Harry Truman", "Vivian Truman");
    ("attended_dinner_with", "Harry Truman", "Winston Churchill");
  ]

let known_married =
  [ ("Barack Obama", "Michelle Obama"); ("George Bush", "Laura Bush");
    ("John Kennedy", "Jackie Kennedy"); ("Franklin Roosevelt", "Eleanor Roosevelt") ]

let known_siblings =
  [ ("Barack Obama", "Malik Obama"); ("John Kennedy", "Robert Kennedy") ]

let () =
  let prog =
    match Dd_ddlog.Parser.parse program_source with
    | Ok p -> p
    | Error e -> failwith e
  in
  let db = Database.create () in
  List.iter
    (fun (name, schema) -> ignore (Database.create_table db name schema))
    prog.Dd_core.Program.input_schemas;
  let str = Value.str and int = Value.int in
  List.iteri
    (fun sid (phrase, p1, p2) ->
      Database.insert_rows db "sentence" [ [| int sid; str phrase |] ];
      Database.insert_rows db "mention"
        [
          [| int sid; str (Printf.sprintf "m%d_a" sid); str p1; int 0 |];
          [| int sid; str (Printf.sprintf "m%d_b" sid); str p2; int 1 |];
        ])
    sentences;
  (* Entity linking: names are their own entities here. *)
  let names =
    List.sort_uniq compare (List.concat_map (fun (_, a, b) -> [ a; b ]) sentences)
  in
  List.iter (fun n -> Database.insert_rows db "el" [ [| str n; str n |] ]) names;
  List.iter (fun (a, b) -> Database.insert_rows db "married" [ [| str a; str b |] ]) known_married;
  List.iter (fun (a, b) -> Database.insert_rows db "sibling" [ [| str a; str b |] ]) known_siblings;
  (* Ground, learn, infer. *)
  let engine = Engine.create db prog in
  let stats = Grounding.stats (Engine.grounding engine) in
  Printf.printf "Factor graph: %d variables, %d factors, %d weights, %d evidence variables\n\n"
    stats.Grounding.variables stats.Grounding.factors stats.Grounding.weights
    stats.Grounding.evidence;
  let rng = Dd_util.Prng.create 1 in
  let marginals = Dd_inference.Gibbs.marginals ~burn_in:50 rng (Engine.graph engine) ~sweeps:2000 in
  let name_of mid =
    (* Recover the mention's person name for display. *)
    let rel = Database.find db "mention" in
    let result = ref mid in
    Dd_relational.Relation.iter
      (fun t _ -> if Value.equal t.(1) (Value.Str mid) then result := Value.as_str t.(2))
      rel;
    !result
  in
  print_endline "P(has_spouse)  mention pair";
  Grounding.marginals_by_relation (Engine.grounding engine) marginals
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
  |> List.iter (fun (_, tuple, p) ->
         Printf.printf "  %.3f        %s -- %s\n" p
           (name_of (Value.as_str tuple.(0)))
           (name_of (Value.as_str tuple.(1))));
  print_newline ();
  print_endline
    "Expectation: the unlabeled Truman pairs follow their phrases — \"and_his_wife\"\n\
     scores high, \"and_his_brother\" low, \"attended_dinner_with\" uncertain."
