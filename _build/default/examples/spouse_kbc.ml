(* The full KBC development loop on a synthetic news corpus (Section 4.2).

   This is the engineering-in-the-loop workflow of Figure 1: start from a
   candidate-only program, then add rules one iteration at a time — error
   analysis (A1), shallow features (FE1), deeper features (FE2), a
   correlation rule (I1), then distant supervision (S1, S2) — and watch
   extraction quality climb while the incremental engine answers each
   iteration far faster than re-running from scratch.

   Run with: dune exec examples/spouse_kbc.exe *)

module Corpus = Dd_kbc.Corpus
module Systems = Dd_kbc.Systems
module Pipeline = Dd_kbc.Pipeline
module Snapshots = Dd_kbc.Snapshots
module Quality = Dd_kbc.Quality
module Table = Dd_util.Table

let () =
  let corpus = Corpus.generate Systems.news in
  print_endline (Corpus.statistics corpus);
  print_endline "Running the six-snapshot development sequence (Incremental vs Rerun)...\n";
  let result = Snapshots.run corpus in
  Printf.printf "Factor graph: %d variables, %d factors. One-time materialization: %.2fs\n\n"
    result.Snapshots.graph_vars result.Snapshots.graph_factors
    result.Snapshots.materialization_seconds;
  let table =
    Table.create
      [ "rule"; "rerun(s)"; "inc(s)"; "speedup"; "strategy"; "accept"; "F1 inc"; "F1 rerun"; "diff>0.05" ]
  in
  let cumulative_inc = ref result.Snapshots.materialization_seconds in
  let cumulative_rerun = ref 0.0 in
  List.iter
    (fun (row : Snapshots.row) ->
      cumulative_inc := !cumulative_inc +. row.Snapshots.incremental_seconds;
      cumulative_rerun := !cumulative_rerun +. row.Snapshots.rerun_seconds;
      Table.add_row table
        [
          Pipeline.rule_id_to_string row.Snapshots.rule;
          Table.cell_f row.Snapshots.rerun_seconds;
          Table.cell_f row.Snapshots.incremental_seconds;
          Table.cell_x row.Snapshots.speedup;
          row.Snapshots.strategy;
          (match row.Snapshots.acceptance with Some a -> Table.cell_f a | None -> "-");
          Table.cell_f row.Snapshots.f1_incremental;
          Table.cell_f row.Snapshots.f1_rerun;
          Table.cell_f row.Snapshots.agreement.Quality.frac_diff_gt;
        ])
    result.Snapshots.rows;
  Table.print table;
  Printf.printf
    "\nCumulative wait time for the developer: %.2fs incremental (incl. materialization) vs %.2fs rerun.\n"
    !cumulative_inc !cumulative_rerun;
  print_endline
    "The strategy column shows the Section 3.3 optimizer at work: analysis reuses\n\
     stored samples at 100% acceptance, feature rules ride the sampling approach,\n\
     and supervision switches to the variational approximation."
