(* The full NLP front of the pipeline on raw text (Figure 1, left to
   right): documents are tokenized, sentences split, mentions found with a
   dictionary matcher, and the phrase between each mention pair extracted
   as the classifier feature — then the same DDlog program as the
   quickstart grounds, learns from distant supervision, and infers.

   Run with: dune exec examples/text_pipeline.exe *)

module Database = Dd_relational.Database
module Value = Dd_relational.Value
module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Nlp_load = Dd_kbc.Nlp_load

let documents =
  [
    (0, "Barack Obama and his wife Michelle Obama attended the gala. \
         Laura Bush met with Angela Merkel in Berlin.");
    (1, "George Bush and his wife Laura Bush hosted the dinner. \
         John Kennedy and his brother Robert Kennedy debated policy.");
    (2, "Franklin Roosevelt and his wife Eleanor Roosevelt toured the site.");
    (3, "Harry Truman and his wife Bess Truman left early! \
         Harry Truman and his brother Vivian Truman stayed.");
    (4, "Angela Merkel spoke after Winston Churchill was quoted. \
         Barack Obama praised Michelle Obama warmly.");
  ]

let people =
  [
    "Barack Obama"; "Michelle Obama"; "George Bush"; "Laura Bush";
    "John Kennedy"; "Jackie Kennedy"; "Robert Kennedy"; "Franklin Roosevelt";
    "Eleanor Roosevelt"; "Harry Truman"; "Bess Truman"; "Vivian Truman";
    "Angela Merkel"; "Winston Churchill";
  ]

let known_married =
  [ ("Barack Obama", "Michelle Obama"); ("George Bush", "Laura Bush");
    ("Franklin Roosevelt", "Eleanor Roosevelt") ]

let known_siblings = [ ("John Kennedy", "Robert Kennedy") ]

let program_source =
  {|
  input sentence(doc int, sid int, phrase text, ctx text).
  input mention(sid int, mid text, name text, pos int).
  input el(name text, eid text).
  input married(e1 text, e2 text).
  input sibling(e1 text, e2 text).

  query has_spouse(m1 text, m2 text).

  @R1
  spouse_candidate(s, m1, m2) :- mention(s, m1, n1, 0), mention(s, m2, n2, 1).

  @FE1   // the phrase between the mentions, extracted by the NLP front
  has_spouse(m1, m2) :- spouse_candidate(s, m1, m2), sentence(d, s, p, c)
    weight = w(p) semantics = ratio.

  @FE2   // mention distance bucket as a secondary feature
  has_spouse(m1, m2) :- spouse_candidate(s, m1, m2), sentence(d, s, p, c)
    weight = w(c) semantics = ratio.

  @S1
  has_spouse_ev(m1, m2, true) :-
    spouse_candidate(s, m1, m2), mention(s, m1, n1, 0), mention(s, m2, n2, 1),
    el(n1, e1), el(n2, e2), married(e1, e2).

  @S2
  has_spouse_ev(m1, m2, false) :-
    spouse_candidate(s, m1, m2), mention(s, m1, n1, 0), mention(s, m2, n2, 1),
    el(n1, e1), el(n2, e2), sibling(e1, e2).
|}

let () =
  let prog =
    match Dd_ddlog.Parser.parse program_source with
    | Ok p -> p
    | Error e -> failwith e
  in
  let db = Database.create () in
  let stats = Nlp_load.load_documents db ~entity_names:people documents in
  Printf.printf
    "NLP front: %d documents, %d sentences, %d mentions, %d candidate pairs.\n\n"
    stats.Nlp_load.documents stats.Nlp_load.sentences stats.Nlp_load.mentions_found
    stats.Nlp_load.pairs;
  (* Entity linking and the incomplete KB. *)
  List.iter
    (fun (name, schema) ->
      if not (Database.mem db name) then ignore (Database.create_table db name schema))
    prog.Dd_core.Program.input_schemas;
  let str = Value.str in
  List.iter (fun n -> Database.insert_rows db "el" [ [| str n; str n |] ]) people;
  List.iter (fun (a, b) -> Database.insert_rows db "married" [ [| str a; str b |] ]) known_married;
  List.iter (fun (a, b) -> Database.insert_rows db "sibling" [ [| str a; str b |] ]) known_siblings;
  let engine = Engine.create db prog in
  let gstats = Grounding.stats (Engine.grounding engine) in
  Printf.printf "Factor graph: %d variables, %d factors, %d weights.\n\n"
    gstats.Grounding.variables gstats.Grounding.factors gstats.Grounding.weights;
  let rng = Dd_util.Prng.create 2 in
  let marginals =
    Dd_inference.Gibbs.marginals ~burn_in:50 rng (Engine.graph engine) ~sweeps:2000
  in
  let name_of mid =
    let rel = Database.find db "mention" in
    let result = ref mid in
    Dd_relational.Relation.iter
      (fun t _ -> if Value.equal t.(1) (Value.Str mid) then result := Value.as_str t.(2))
      rel;
    !result
  in
  print_endline "P(has_spouse)  pair";
  Grounding.marginals_by_relation (Engine.grounding engine) marginals
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
  |> List.iter (fun (_, tuple, p) ->
         Printf.printf "  %.3f        %s -- %s\n" p
           (name_of (Value.as_str tuple.(0)))
           (name_of (Value.as_str tuple.(1))));
  print_newline ();
  print_endline
    "The \"and his wife\" phrase feature learned from the distantly supervised\n\
     couples transfers to the unlabeled Truman pair; co-occurrence pairs like\n\
     (Laura Bush, Angela Merkel) stay uncertain and known siblings score low."
