(* Example 2.5 of the paper: the voting program and the three counting
   semantics (Figure 4).

   A single fact q() receives |Up| supporting and |Down| contradicting
   relation mentions.  The probability of q depends dramatically on the
   choice of g: with Linear semantics a 100-vote surplus out of a million
   pushes P(q) to 1; Ratio semantics keeps it near 0.5; Logical semantics
   ignores vote counts entirely.  We print the closed-form marginals and
   then show that Gibbs sampling agrees (and converges at very different
   speeds — the subject of Appendix A and Figure 13).

   Run with: dune exec examples/voting_semantics.exe *)

module Voting = Dd_fgraph.Voting
module Semantics = Dd_fgraph.Semantics
module Gibbs = Dd_inference.Gibbs
module Table = Dd_util.Table

let () =
  print_endline "Closed-form P(q) for the voting program (Example 2.5):\n";
  let table = Table.create [ "|Up|"; "|Down|"; "linear"; "ratio"; "logical" ] in
  List.iter
    (fun (up, down) ->
      let p semantics =
        Voting.exact_marginal_q
          { Voting.default with Voting.n_up = up; n_down = down; semantics }
      in
      Table.add_row table
        [
          string_of_int up;
          string_of_int down;
          Table.cell_f (p Semantics.Linear);
          Table.cell_f (p Semantics.Ratio);
          Table.cell_f (p Semantics.Logical);
        ])
    [ (5, 5); (20, 10); (100, 90); (1000, 900); (1000000, 999900) ];
  Table.print table;
  print_endline
    "\nLinear saturates on large counts; Ratio tracks the vote ratio; Logical\n\
     only asks whether any vote exists on each side.\n";
  (* Gibbs agreement and convergence speed. *)
  print_endline "Gibbs estimate vs closed form (30 up, 20 down, all vars free):\n";
  let table = Table.create [ "semantics"; "exact"; "gibbs"; "sweeps to 1%" ] in
  List.iter
    (fun semantics ->
      let cfg = { Voting.default with Voting.n_up = 30; n_down = 20; semantics } in
      let exact = Voting.exact_marginal_q cfg in
      let graph, q, _, _ = Voting.build cfg in
      let rng = Dd_util.Prng.create 7 in
      let marginals = Gibbs.marginals ~burn_in:100 rng graph ~sweeps:4000 in
      let sweeps =
        Gibbs.sweeps_to_converge (Dd_util.Prng.create 8) graph ~target_var:q
          ~target_prob:exact
      in
      Table.add_row table
        [
          Semantics.to_string semantics;
          Table.cell_f exact;
          Table.cell_f marginals.(q);
          (match sweeps with Some s -> string_of_int s | None -> ">100000");
        ])
    Semantics.all;
  Table.print table
