lib/core/decompose.ml: Array Dd_fgraph Dd_util Hashtbl Int List Option Set
