lib/core/decompose.mli: Dd_fgraph
