lib/core/engine.ml: Array Dd_fgraph Dd_inference Dd_relational Dd_util Grounding Hashtbl List Materialize Optimizer Option
