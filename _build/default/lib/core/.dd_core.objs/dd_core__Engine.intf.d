lib/core/engine.mli: Dd_fgraph Dd_relational Grounding Materialize Program
