lib/core/grounding.ml: Array Dd_datalog Dd_fgraph Dd_inference Dd_relational Dd_util Hashtbl List Logs Printf Program String
