lib/core/grounding.mli: Dd_datalog Dd_fgraph Dd_inference Dd_relational Program
