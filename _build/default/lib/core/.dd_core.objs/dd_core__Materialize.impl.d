lib/core/materialize.ml: Array Bytes Dd_fgraph Dd_inference Dd_util Dd_variational Fun Hashtbl List Printf String
