lib/core/materialize.mli: Dd_fgraph Dd_inference Dd_util Hashtbl
