lib/core/optimizer.ml: Dd_fgraph Dd_inference List
