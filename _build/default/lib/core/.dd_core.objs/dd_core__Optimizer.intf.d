lib/core/optimizer.mli: Dd_inference
