lib/core/program.ml: Array Dd_datalog Dd_fgraph Dd_relational List Printf Result
