lib/core/program.mli: Dd_datalog Dd_fgraph Dd_relational
