module Graph = Dd_fgraph.Graph
module Union_find = Dd_util.Union_find

type group = {
  inactive : Graph.var list;
  active : Graph.var list;
}

module ISet = Set.Make (Int)

let decompose g ~active =
  let n = Graph.num_vars g in
  let is_active = Array.make n false in
  List.iter (fun v -> if v < n then is_active.(v) <- true) active;
  (* Line 1: connected components of the graph with active vars removed. *)
  let uf = Union_find.create n in
  Graph.iter_factors
    (fun _ f ->
      let inactive_vars = List.filter (fun v -> not is_active.(v)) (Graph.vars_of_factor f) in
      match inactive_vars with
      | [] -> ()
      | first :: rest -> List.iter (fun v -> Union_find.union uf first v) rest)
    g;
  (* Line 2: per component, the active boundary (active vars co-occurring
     with a member in some factor). *)
  let boundaries : (int, ISet.t) Hashtbl.t = Hashtbl.create 16 in
  let members : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    if not is_active.(v) then begin
      let root = Union_find.find uf v in
      Hashtbl.replace members root (v :: (try Hashtbl.find members root with Not_found -> []))
    end
  done;
  Graph.iter_factors
    (fun _ f ->
      let vars = Graph.vars_of_factor f in
      let actives = List.filter (fun v -> is_active.(v)) vars in
      let inactives = List.filter (fun v -> not is_active.(v)) vars in
      match inactives with
      | [] -> ()
      | witness :: _ ->
        let root = Union_find.find uf witness in
        let existing = try Hashtbl.find boundaries root with Not_found -> ISet.empty in
        Hashtbl.replace boundaries root (List.fold_left (fun s a -> ISet.add a s) existing actives))
    g;
  let groups =
    Hashtbl.fold
      (fun root inactive acc ->
        let boundary =
          try ISet.elements (Hashtbl.find boundaries root) with Not_found -> []
        in
        (ISet.of_list boundary, inactive) :: acc)
      members []
  in
  (* Lines 4-6: greedily merge groups when one boundary subsumes the
     other. *)
  let merged = ref (List.map (fun (b, i) -> (b, i)) groups) in
  let progress = ref true in
  while !progress do
    progress := false;
    let rec try_merge acc = function
      | [] -> List.rev acc
      | (b1, i1) :: rest ->
        (* Merge only when one boundary subsumes the other AND they truly
           share active variables — merging boundary-disjoint groups would
           grow the materialization unit without saving anything. *)
        let subsumes (b2, _) =
          let u = ISet.union b1 b2 in
          ISet.cardinal u = max (ISet.cardinal b1) (ISet.cardinal b2)
          && not (ISet.is_empty (ISet.inter b1 b2))
        in
        (match List.partition subsumes rest with
        | [], rest -> try_merge ((b1, i1) :: acc) rest
        | (b2, i2) :: others, rest ->
          progress := true;
          try_merge acc (((ISet.union b1 b2, i1 @ i2) :: others) @ rest))
    in
    merged := try_merge [] !merged
  done;
  List.map (fun (b, i) -> { inactive = i; active = ISet.elements b }) !merged

let induced_subgraph g ~vars =
  let n = Graph.num_vars g in
  let mapping = Array.make n (-1) in
  let sub = Graph.create () in
  List.iter
    (fun v ->
      if v < n && mapping.(v) < 0 then
        mapping.(v) <- Graph.add_var ~evidence:(Graph.evidence_of g v) sub)
    vars;
  let weight_map = Hashtbl.create 16 in
  let import_weight w =
    match Hashtbl.find_opt weight_map w with
    | Some w' -> w'
    | None ->
      let w' = Graph.add_weight ~learnable:(Graph.weight_learnable g w) sub (Graph.weight_value g w) in
      Hashtbl.replace weight_map w w';
      w'
  in
  Graph.iter_factors
    (fun _ f ->
      let fvars = Graph.vars_of_factor f in
      if List.for_all (fun v -> mapping.(v) >= 0) fvars then begin
        let remap_literal (l : Graph.literal) = { l with Graph.var = mapping.(l.Graph.var) } in
        ignore
          (Graph.add_factor sub
             {
               Graph.head = Option.map (fun h -> mapping.(h)) f.Graph.head;
               bodies = Array.map (Array.map remap_literal) f.Graph.bodies;
               weight_id = import_weight f.Graph.weight_id;
               semantics = f.Graph.semantics;
             })
      end)
    g;
  (sub, mapping)

let group_subgraph g group =
  let vars = group.inactive @ group.active in
  let sub, mapping = induced_subgraph g ~vars in
  (* Boundary variables are conditioned on, not inferred. *)
  List.iter
    (fun v ->
      let v' = mapping.(v) in
      if v' >= 0 then
        match Graph.evidence_of sub v' with
        | Graph.Evidence _ -> ()
        | Graph.Query -> Graph.set_evidence sub v' (Graph.Evidence false))
    group.active;
  (sub, mapping)
