(** Factor-graph decomposition with inactive variables
    (Appendix B.1, Algorithm 2).

    When the developer declares an interest area, variables outside it are
    inactive.  Conditioned on the active variables, the inactive ones
    partition into independent components; each component plus its active
    boundary can be materialized separately, and smaller groups make every
    materialization strategy faster.  The greedy merge collapses a pair of
    groups whenever one group's active boundary contains the other's
    (|A1 u A2| = max(|A1|, |A2|)), avoiding re-materializing shared active
    variables. *)

module Graph = Dd_fgraph.Graph

type group = {
  inactive : Graph.var list;
  active : Graph.var list;  (** boundary: minimal conditioning set *)
}

val decompose : Graph.t -> active:Graph.var list -> group list
(** Algorithm 2.  Variables not listed in [active] are inactive. *)

val induced_subgraph : Graph.t -> vars:Graph.var list -> Graph.t * int array
(** [induced_subgraph g ~vars] builds the subgraph over [vars] containing
    every factor all of whose variables lie in [vars]; returns it with the
    mapping [old var -> new var] ([-1] for absent variables). *)

val group_subgraph : Graph.t -> group -> Graph.t * int array
(** Subgraph over a group's inactive plus boundary variables, with the
    boundary variables additionally clamped as evidence at [false] — they
    are conditioned on, not inferred, inside the group. *)
