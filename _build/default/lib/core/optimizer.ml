module Metropolis = Dd_inference.Metropolis
module Graph = Dd_fgraph.Graph

type strategy =
  | Sampling
  | Variational

type profile = {
  changes_structure : bool;
  modifies_evidence : bool;
  introduces_features : bool;
}

let profile_of_change (c : Metropolis.change) =
  let moved_learnable =
    List.exists
      (fun (w, old_value) ->
        Graph.weight_learnable c.Metropolis.graph w
        && Graph.weight_value c.Metropolis.graph w <> old_value)
      c.Metropolis.changed_weights
  in
  {
    changes_structure =
      c.Metropolis.new_factor_ids <> []
      || c.Metropolis.extended_factors <> []
      || c.Metropolis.new_vars <> [];
    modifies_evidence = c.Metropolis.evidence_changes <> [];
    introduces_features = moved_learnable;
  }

let choose p ~samples_exhausted =
  if samples_exhausted then Variational
  else if (not p.changes_structure) && not p.modifies_evidence then Sampling
  else if p.modifies_evidence then Variational
  else Sampling

let strategy_to_string = function
  | Sampling -> "sampling"
  | Variational -> "variational"
