(** The rule-based optimizer of Section 3.3.

    Neither materialization strategy dominates (Figure 5), so DeepDive
    materializes both and defers the choice to the inference phase, when the
    workload is observable.  The rules, in order:

    + if the update does not change the structure of the graph, choose the
      sampling approach;
    + if the update modifies the evidence, choose the variational approach;
    + if the update introduces new features, choose the sampling approach;
    + if we run out of samples, use the variational approach. *)

module Metropolis = Dd_inference.Metropolis

type strategy =
  | Sampling
  | Variational

type profile = {
  changes_structure : bool;  (** new variables, factors, or groundings *)
  modifies_evidence : bool;
  introduces_features : bool;  (** new or moved learnable weights *)
}

val profile_of_change : Metropolis.change -> profile

val choose : profile -> samples_exhausted:bool -> strategy

val strategy_to_string : strategy -> string
