module Ast = Dd_datalog.Ast
module Schema = Dd_relational.Schema
module Value = Dd_relational.Value

type weight_spec =
  | Fixed of float
  | Tied of Ast.term list

type inference_rule = {
  name : string;
  head : Ast.atom;
  body : Ast.literal list;
  guards : Ast.guard list;
  weight : weight_spec;
  semantics : Dd_fgraph.Semantics.t;
  populate_head : bool;
}

type rule =
  | Deterministic of string * Ast.rule
  | Supervise of string * Ast.rule
  | Infer of inference_rule

type t = {
  input_schemas : (string * Schema.t) list;
  query_relations : (string * Schema.t) list;
  rules : rule list;
}

let evidence_relation name = name ^ "_ev"

let evidence_schema schema =
  Schema.make
    (List.map (fun c -> (c.Schema.name, c.Schema.ty)) (Array.to_list (Schema.columns schema))
    @ [ ("label", Value.TBool) ])

let rule_name = function
  | Deterministic (name, _) -> name
  | Supervise (name, _) -> name
  | Infer r -> r.name

let candidate_rule (r : inference_rule) = Ast.rule ~guards:r.guards r.head r.body

let deterministic_program t =
  List.concat_map
    (function
      | Deterministic (_, rule) -> [ rule ]
      | Supervise (_, rule) -> [ rule ]
      | Infer r -> if r.populate_head then [ candidate_rule r ] else [])
    t.rules

let inference_rules t =
  List.filter_map (function Infer r -> Some r | Deterministic _ | Supervise _ -> None) t.rules

let supervision_rules t =
  List.filter_map
    (function Supervise (name, rule) -> Some (name, rule) | Deterministic _ | Infer _ -> None)
    t.rules

let is_query_relation t name = List.mem_assoc name t.query_relations

let query_schema t name = List.assoc name t.query_relations

let add_rules t rules = { t with rules = t.rules @ rules }

let validate t =
  let ( let* ) = Result.bind in
  let* () = Dd_datalog.Ast.check_program (deterministic_program t) in
  let check_rule acc rule =
    let* () = acc in
    match rule with
    | Deterministic _ -> Ok ()
    | Infer r ->
      if not (is_query_relation t r.head.Ast.pred) then
        Error
          (Printf.sprintf "inference rule %s: head %s is not a query relation" r.name
             r.head.Ast.pred)
      else begin
        (* Weight-key terms must be bound by the body. *)
        let bound = Ast.positive_body_vars (candidate_rule r) in
        let key_vars =
          match r.weight with
          | Fixed _ -> []
          | Tied terms -> List.concat_map Ast.term_vars terms
        in
        match List.find_opt (fun v -> not (List.mem v bound)) key_vars with
        | Some v ->
          Error (Printf.sprintf "inference rule %s: weight variable %s unbound" r.name v)
        | None -> Ok ()
      end
    | Supervise (name, rule) ->
      let head = rule.Ast.head.Ast.pred in
      let is_ev =
        List.exists
          (fun (q, _) -> evidence_relation q = head)
          t.query_relations
      in
      if is_ev then Ok ()
      else
        Error
          (Printf.sprintf
             "supervision rule %s: head %s is not the evidence relation of a query relation"
             name head)
  in
  List.fold_left check_rule (Ok ()) t.rules
