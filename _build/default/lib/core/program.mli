(** The DeepDive program model (Section 2 of the paper).

    A program is a set of schema declarations plus rules of four kinds,
    mirroring the paper's rule templates:

    - {b deterministic} rules — candidate generation and feature extraction
      (the "SQL queries with UDFs" of the paper), evaluated by the datalog
      engine and maintained incrementally with DRed;
    - {b supervision} rules — distant supervision populating the [_ev]
      evidence companion of a query relation with a boolean label;
    - {b inference} rules — weighted rules that ground factors, with weight
      tying ([weight = w(f)]), a choice of counting semantics, and optional
      fixed weights.

    Query relations are the relations whose tuples become random variables;
    they are populated by the heads of inference rules (and may also be
    declared with candidate contents). *)

module Ast = Dd_datalog.Ast
module Schema = Dd_relational.Schema
module Value = Dd_relational.Value

type weight_spec =
  | Fixed of float  (** rule-supplied constant weight *)
  | Tied of Ast.term list
      (** learnable weights, one per distinct value of the key terms —
          [Tied []] declares a single learnable weight for the rule *)

type inference_rule = {
  name : string;
  head : Ast.atom;
  body : Ast.literal list;
  guards : Ast.guard list;
  weight : weight_spec;
  semantics : Dd_fgraph.Semantics.t;
  populate_head : bool;
      (** when true (the default for classifier rules), the rule also acts
          as a candidate mapping: its head tuples are materialized and get
          variables.  Correlation rules over existing candidates (e.g. the
          symmetry rule I1) set it to false: groundings whose head or body
          candidates do not exist are silently dropped, exactly as in
          DeepDive where inference rules only connect existing candidate
          variables. *)
}

type rule =
  | Deterministic of string * Ast.rule  (** (name, rule) *)
  | Supervise of string * Ast.rule
      (** the rule's head must target an [_ev] relation whose last column
          is the boolean label *)
  | Infer of inference_rule

type t = {
  input_schemas : (string * Schema.t) list;  (** base tables *)
  query_relations : (string * Schema.t) list;
      (** relations whose tuples become random variables *)
  rules : rule list;
}

val evidence_relation : string -> string
(** Name of the evidence companion ([_ev] suffix). *)

val evidence_schema : Schema.t -> Schema.t
(** The query relation's schema extended with a [label : bool] column. *)

val rule_name : rule -> string

val deterministic_program : t -> Ast.program
(** The datalog program evaluated before grounding: all deterministic and
    supervision rules, plus one candidate-population rule per inference
    rule (the head must exist as a tuple for a variable to exist). *)

val inference_rules : t -> inference_rule list

val supervision_rules : t -> (string * Ast.rule) list

val is_query_relation : t -> string -> bool

val query_schema : t -> string -> Schema.t

val add_rules : t -> rule list -> t

val validate : t -> (unit, string) result
(** Safety of all rules; inference heads must target query relations;
    supervision heads must target evidence companions of query relations. *)
