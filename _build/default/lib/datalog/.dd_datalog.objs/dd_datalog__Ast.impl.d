lib/datalog/ast.ml: Dd_relational Format List Printf Result String
