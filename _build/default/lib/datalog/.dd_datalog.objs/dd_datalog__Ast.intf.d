lib/datalog/ast.mli: Dd_relational Format
