lib/datalog/dred.ml: Array Ast Dd_relational Engine Hashtbl List Logs Matcher Queue Result Stratify String Unix
