lib/datalog/dred.mli: Ast Dd_relational
