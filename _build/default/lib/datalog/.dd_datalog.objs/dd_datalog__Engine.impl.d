lib/datalog/engine.ml: Array Ast Dd_relational Hashtbl List Matcher Printf Stratify
