lib/datalog/engine.mli: Ast Dd_relational Stratify
