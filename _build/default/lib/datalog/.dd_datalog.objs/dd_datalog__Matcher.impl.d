lib/datalog/matcher.ml: Array Ast Dd_relational Hashtbl List String
