lib/datalog/matcher.mli: Ast Dd_relational
