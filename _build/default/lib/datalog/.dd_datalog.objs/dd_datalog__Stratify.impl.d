lib/datalog/stratify.ml: Ast Hashtbl List Set String
