module Value = Dd_relational.Value

type term =
  | Var of string
  | Const of Value.t

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom
  | Neg of atom

type guard =
  | Eq of term * term
  | Neq of term * term
  | Lt of term * term
  | Le of term * term

type rule = { head : atom; body : literal list; guards : guard list }

type program = rule list

let atom pred args = { pred; args }

let rule ?(guards = []) head body = { head; body; guards }

let atom_of_literal = function Pos a | Neg a -> a

let is_positive = function Pos _ -> true | Neg _ -> false

let term_vars = function Var v -> [ v ] | Const _ -> []

let atom_vars a = List.concat_map term_vars a.args

let guard_vars = function
  | Eq (a, b) | Neq (a, b) | Lt (a, b) | Le (a, b) -> term_vars a @ term_vars b

let dedup xs = List.sort_uniq String.compare xs

let rule_vars r =
  dedup
    (atom_vars r.head
    @ List.concat_map (fun l -> atom_vars (atom_of_literal l)) r.body
    @ List.concat_map guard_vars r.guards)

let positive_body_vars r =
  dedup
    (List.concat_map
       (function Pos a -> atom_vars a | Neg _ -> [])
       r.body)

let head_pred r = r.head.pred

let body_preds r = dedup (List.map (fun l -> (atom_of_literal l).pred) r.body)

let check_safety r =
  let bound = positive_body_vars r in
  let is_bound v = List.mem v bound in
  let check_vars what vs =
    match List.find_opt (fun v -> not (is_bound v)) vs with
    | None -> Ok ()
    | Some v ->
      Error
        (Printf.sprintf "unsafe rule for %s: %s variable %s not bound by a positive atom"
           r.head.pred what v)
  in
  let ( let* ) = Result.bind in
  let* () = check_vars "head" (atom_vars r.head) in
  let* () =
    check_vars "negated"
      (List.concat_map (function Neg a -> atom_vars a | Pos _ -> []) r.body)
  in
  check_vars "guard" (List.concat_map guard_vars r.guards)

let check_program p =
  List.fold_left
    (fun acc r -> match acc with Error _ -> acc | Ok () -> check_safety r)
    (Ok ()) p

let idb_preds p = dedup (List.map head_pred p)

let all_preds p = dedup (List.concat_map (fun r -> head_pred r :: body_preds r) p)

let pp_term fmt = function
  | Var v -> Format.pp_print_string fmt v
  | Const (Value.Str s) -> Format.fprintf fmt "%S" s
  | Const v -> Value.pp fmt v

let pp_atom fmt a =
  Format.fprintf fmt "%s(%a)" a.pred
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_term)
    a.args

let pp_literal fmt = function
  | Pos a -> pp_atom fmt a
  | Neg a -> Format.fprintf fmt "!%a" pp_atom a

let pp_guard fmt g =
  let op, a, b =
    match g with
    | Eq (a, b) -> ("=", a, b)
    | Neq (a, b) -> ("!=", a, b)
    | Lt (a, b) -> ("<", a, b)
    | Le (a, b) -> ("<=", a, b)
  in
  Format.fprintf fmt "%a %s %a" pp_term a op pp_term b

let pp_rule fmt r =
  let pp_sep f () = Format.fprintf f ", " in
  Format.fprintf fmt "%a :- %a" pp_atom r.head
    (Format.pp_print_list ~pp_sep pp_literal)
    r.body;
  if r.guards <> [] then
    Format.fprintf fmt ", %a" (Format.pp_print_list ~pp_sep pp_guard) r.guards;
  Format.fprintf fmt "."

let rule_to_string r = Format.asprintf "%a" pp_rule r
