(** Rule-body matching: the join machinery shared by full evaluation
    ({!Engine}) and incremental maintenance ({!Dred}).

    Matching proceeds literal-by-literal over a frontier of partial variable
    bindings; each positive literal is matched with a hash index built on
    its bound argument positions.  Negated literals and guards are deferred
    until their variables are bound (rule safety guarantees they eventually
    are).  Each body grounding contributes one derivation to its head tuple
    (body atoms contribute membership, not multiplicity), so the result
    carries the exact number of distinct groundings deriving each head
    tuple — the count DRed maintains and the quantity [n(gamma, I)] of the
    paper's Equation 1 needs at grounding time.  Explicit delta tuples do
    carry signed counts, which propagate multiplicatively so membership
    flips yield signed grounding deltas. *)

type lookup = string -> Dd_relational.Relation.t
(** Resolves a predicate name to its current contents; must return an empty
    relation for unknown predicates. *)

val eval_rule : lookup:lookup -> Ast.rule -> (Dd_relational.Tuple.t * int) list
(** All head tuples derivable by the rule, with derivation counts
    (multiplicity products over body matches). *)

val eval_rule_staged :
  before:lookup ->
  after:lookup ->
  delta_pos:int ->
  delta:(Dd_relational.Tuple.t * int) list ->
  Ast.rule ->
  (Dd_relational.Tuple.t * int) list
(** Semi-naive / delta-rule evaluation: the body literal at index
    [delta_pos] is matched against the explicit [delta] tuples (with signed
    counts), literals strictly before it resolve through [before] ("new"
    state) and literals strictly after it through [after] ("old" state).
    For a negated literal at [delta_pos], [delta] must hold membership
    flips: count [+1] for tuples that left the predicate, [-1] for tuples
    that entered it. *)

val eval_rule_bindings :
  lookup:lookup -> Ast.rule -> (string -> Dd_relational.Value.t option) list
(** Full body matches exposed as variable environments (used by grounding to
    extract feature values and variable columns); one entry per distinct
    grounding, counts ignored. *)

val eval_rule_bindings_staged :
  before:lookup ->
  after:lookup ->
  delta_pos:int ->
  delta:(Dd_relational.Tuple.t * int) list ->
  Ast.rule ->
  ((string -> Dd_relational.Value.t option) * int) list
(** Like {!eval_rule_staged} but exposing the full variable environment of
    each grounding together with its signed count — incremental grounding
    uses this to build or retract factor bodies. *)

val empty_relation : Dd_relational.Relation.t
(** A shared empty zero-arity relation, convenient for lookups of unknown
    predicates. *)
