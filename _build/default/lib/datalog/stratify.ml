type stratum = {
  preds : string list;
  rules : Ast.rule list;
  recursive : bool;
}

module SSet = Set.Make (String)

(* Dependency edges head -> body predicate (IDB only), with a flag marking
   whether any occurrence is negated. *)
let edges program =
  let idb = SSet.of_list (Ast.idb_preds program) in
  let table = Hashtbl.create 64 in
  List.iter
    (fun (r : Ast.rule) ->
      List.iter
        (fun lit ->
          let body = (Ast.atom_of_literal lit).Ast.pred in
          if SSet.mem body idb then begin
            let neg = not (Ast.is_positive lit) in
            let key = (Ast.head_pred r, body) in
            let prev = try Hashtbl.find table key with Not_found -> false in
            Hashtbl.replace table key (prev || neg)
          end)
        r.Ast.body)
    program;
  table

(* Tarjan's strongly-connected components over the predicate dependency
   graph; emitted in reverse topological order of the condensation (i.e.
   dependencies first), which is exactly bottom-up evaluation order. *)
let sccs preds successors =
  let index = Hashtbl.create 16 and lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) preds;
  (* Tarjan emits components in reverse topological order of the
     condensation when edges point from dependent to dependency; our
     successors point head -> body (dependency), so components come out
     dependents-first — reverse to evaluate dependencies first. *)
  List.rev !components

let stratify program =
  match Ast.check_program program with
  | Error e -> Error e
  | Ok () ->
    let preds = Ast.idb_preds program in
    let es = edges program in
    let successors v =
      Hashtbl.fold (fun (h, b) _ acc -> if h = v then b :: acc else acc) es []
    in
    let components = sccs preds successors in
    (* Negation inside a component would be unstratifiable. *)
    let bad =
      List.exists
        (fun comp ->
          let in_comp p = List.mem p comp in
          Hashtbl.fold
            (fun (h, b) neg acc -> acc || (neg && in_comp h && in_comp b))
            es false)
        components
    in
    if bad then Error "negation is not stratified"
    else begin
      let strata =
        List.map
          (fun comp ->
            let rules = List.filter (fun r -> List.mem (Ast.head_pred r) comp) program in
            let self_loop =
              List.exists
                (fun r -> List.exists (fun b -> List.mem b comp) (Ast.body_preds r))
                rules
            in
            { preds = comp; rules; recursive = List.length comp > 1 || self_loop })
          components
      in
      Ok (List.filter (fun s -> s.preds <> []) strata)
    end

let depends_on program pred =
  let rec walk seen frontier =
    match frontier with
    | [] -> seen
    | p :: rest ->
      if SSet.mem p seen then walk seen rest
      else begin
        let seen = SSet.add p seen in
        let next =
          List.concat_map
            (fun (r : Ast.rule) -> if Ast.head_pred r = p then Ast.body_preds r else [])
            program
        in
        walk seen (next @ rest)
      end
  in
  SSet.elements (walk SSet.empty [ pred ])

let affected_idb program changed =
  let changed_set = SSet.of_list changed in
  let rec fix acc =
    let next =
      List.fold_left
        (fun acc (r : Ast.rule) ->
          let touched = List.exists (fun b -> SSet.mem b acc) (Ast.body_preds r) in
          if touched then SSet.add (Ast.head_pred r) acc else acc)
        acc program
    in
    if SSet.equal next acc then acc else fix next
  in
  let final = fix changed_set in
  List.filter (fun p -> SSet.mem p final) (Ast.idb_preds program)
