(** Predicate dependency analysis and stratification.

    Negation must be stratified: no predicate may depend negatively on
    itself through a cycle.  Strata are evaluated bottom-up; within a
    stratum, recursion (through positive edges only) is allowed. *)

type stratum = {
  preds : string list;  (** predicates assigned to this stratum *)
  rules : Ast.rule list;  (** rules whose head is in [preds] *)
  recursive : bool;  (** whether some rule's body mentions a same-stratum predicate *)
}

val stratify : Ast.program -> (stratum list, string) result
(** Bottom-up strata; [Error] when negation is not stratifiable. *)

val depends_on : Ast.program -> string -> string list
(** [depends_on p pred] is the set of predicates reachable from [pred]
    through body dependencies (transitively), including [pred] itself. *)

val affected_idb : Ast.program -> string list -> string list
(** [affected_idb p changed] is the set of IDB predicates whose contents may
    change when the given (EDB or IDB) predicates change. *)
