lib/ddlog/lexer.ml: Buffer List Printf String
