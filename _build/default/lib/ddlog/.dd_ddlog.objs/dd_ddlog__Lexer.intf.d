lib/ddlog/lexer.mli:
