lib/ddlog/parser.ml: Dd_core Dd_datalog Dd_fgraph Dd_relational Lexer List Option Printf
