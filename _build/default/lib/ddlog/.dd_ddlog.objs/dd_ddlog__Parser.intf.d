lib/ddlog/parser.mli: Dd_core Lexer
