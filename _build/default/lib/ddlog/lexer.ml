type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | BOOL of bool
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | TURNSTILE
  | EQ
  | NEQ
  | LT
  | LE
  | BANG
  | AT
  | COLON
  | EOF

type position = { line : int; column : int }

exception Lex_error of string * position

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | BOOL b -> string_of_bool b
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | TURNSTILE -> ":-"
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | BANG -> "!"
  | AT -> "@"
  | COLON -> ":"
  | EOF -> "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let line = ref 1 and col = ref 1 in
  let pos () = { line = !line; column = !col } in
  let out = ref [] in
  let emit tok p = out := (tok, p) :: !out in
  let i = ref 0 in
  let advance () =
    (if !i < n then
       match input.[!i] with
       | '\n' ->
         incr line;
         col := 1
       | _ -> incr col);
    incr i
  in
  let peek k = if !i + k < n then Some input.[!i + k] else None in
  while !i < n do
    let p = pos () in
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' || c = '#' then begin
      while !i < n && input.[!i] <> '\n' do
        advance ()
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        advance ()
      done;
      let word = String.sub input start (!i - start) in
      match word with
      | "true" -> emit (BOOL true) p
      | "false" -> emit (BOOL false) p
      | _ -> emit (IDENT word) p
    end
    else if is_digit c || (c = '-' && (match peek 1 with Some d -> is_digit d | None -> false))
    then begin
      let start = !i in
      if c = '-' then advance ();
      while !i < n && is_digit input.[!i] do
        advance ()
      done;
      let is_float =
        !i < n && input.[!i] = '.'
        && match peek 1 with Some d -> is_digit d | None -> false
      in
      if is_float then begin
        advance ();
        while !i < n && is_digit input.[!i] do
          advance ()
        done;
        if !i < n && (input.[!i] = 'e' || input.[!i] = 'E') then begin
          advance ();
          if !i < n && (input.[!i] = '+' || input.[!i] = '-') then advance ();
          while !i < n && is_digit input.[!i] do
            advance ()
          done
        end;
        emit (FLOAT (float_of_string (String.sub input start (!i - start)))) p
      end
      else emit (INT (int_of_string (String.sub input start (!i - start)))) p
    end
    else begin
      match c with
      | '"' ->
        advance ();
        let buffer = Buffer.create 16 in
        let closed = ref false in
        while (not !closed) && !i < n do
          let ch = input.[!i] in
          if ch = '"' then begin
            closed := true;
            advance ()
          end
          else if ch = '\\' && peek 1 <> None then begin
            advance ();
            let esc = input.[!i] in
            Buffer.add_char buffer
              (match esc with 'n' -> '\n' | 't' -> '\t' | other -> other);
            advance ()
          end
          else begin
            Buffer.add_char buffer ch;
            advance ()
          end
        done;
        if not !closed then raise (Lex_error ("unterminated string", p));
        emit (STRING (Buffer.contents buffer)) p
      | '(' ->
        advance ();
        emit LPAREN p
      | ')' ->
        advance ();
        emit RPAREN p
      | ',' ->
        advance ();
        emit COMMA p
      | '.' ->
        advance ();
        emit DOT p
      | '@' ->
        advance ();
        emit AT p
      | '=' ->
        advance ();
        emit EQ p
      | ':' ->
        if peek 1 = Some '-' then begin
          advance ();
          advance ();
          emit TURNSTILE p
        end
        else begin
          advance ();
          emit COLON p
        end
      | '!' ->
        if peek 1 = Some '=' then begin
          advance ();
          advance ();
          emit NEQ p
        end
        else begin
          advance ();
          emit BANG p
        end
      | '<' ->
        if peek 1 = Some '=' then begin
          advance ();
          advance ();
          emit LE p
        end
        else begin
          advance ();
          emit LT p
        end
      | other -> raise (Lex_error (Printf.sprintf "unexpected character %c" other, p))
    end
  done;
  emit EOF (pos ());
  List.rev !out
