(** Lexer for the DDlog surface language. *)

type token =
  | IDENT of string  (** lowercase-led identifier *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | BOOL of bool
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | TURNSTILE  (** [:-] *)
  | EQ  (** [=] *)
  | NEQ  (** [!=] *)
  | LT
  | LE
  | BANG  (** [!] (negation) *)
  | AT  (** [@] (rule name annotation) *)
  | COLON
  | EOF

type position = { line : int; column : int }

exception Lex_error of string * position

val tokenize : string -> (token * position) list
(** Whole-input tokenization; [//] and [#] start line comments. *)

val token_to_string : token -> string
