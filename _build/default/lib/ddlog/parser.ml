module Ast = Dd_datalog.Ast
module Value = Dd_relational.Value
module Schema = Dd_relational.Schema
module Program = Dd_core.Program
module Semantics = Dd_fgraph.Semantics

exception Parse_error of string * Lexer.position

type state = { mutable tokens : (Lexer.token * Lexer.position) list }

let peek st =
  match st.tokens with
  | (tok, pos) :: _ -> (tok, pos)
  | [] -> (Lexer.EOF, { Lexer.line = 0; column = 0 })

let advance st =
  match st.tokens with
  | _ :: rest -> st.tokens <- rest
  | [] -> ()

let next st =
  let tok, pos = peek st in
  advance st;
  (tok, pos)

let fail pos message = raise (Parse_error (message, pos))

let expect st expected =
  let tok, pos = next st in
  if tok <> expected then
    fail pos
      (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string expected)
         (Lexer.token_to_string tok))

let expect_ident st =
  match next st with
  | Lexer.IDENT name, _ -> name
  | tok, pos -> fail pos ("expected identifier, found " ^ Lexer.token_to_string tok)

let parse_type st =
  let name = expect_ident st in
  match name with
  | "int" -> Value.TInt
  | "text" | "string" -> Value.TStr
  | "bool" -> Value.TBool
  | "float" | "real" -> Value.TFloat
  | other -> fail (snd (peek st)) ("unknown column type " ^ other)

let parse_schema_decl st =
  let name = expect_ident st in
  expect st Lexer.LPAREN;
  let columns = ref [] in
  let rec loop () =
    let col = expect_ident st in
    let ty = parse_type st in
    columns := (col, ty) :: !columns;
    match next st with
    | Lexer.COMMA, _ -> loop ()
    | Lexer.RPAREN, _ -> ()
    | tok, pos -> fail pos ("expected , or ) in schema, found " ^ Lexer.token_to_string tok)
  in
  loop ();
  expect st Lexer.DOT;
  (name, Schema.make (List.rev !columns))

let parse_term st =
  match next st with
  | Lexer.IDENT name, _ -> Ast.Var name
  | Lexer.INT i, _ -> Ast.Const (Value.Int i)
  | Lexer.FLOAT f, _ -> Ast.Const (Value.Float f)
  | Lexer.STRING s, _ -> Ast.Const (Value.Str s)
  | Lexer.BOOL b, _ -> Ast.Const (Value.Bool b)
  | tok, pos -> fail pos ("expected term, found " ^ Lexer.token_to_string tok)

let parse_atom st name =
  expect st Lexer.LPAREN;
  let args = ref [] in
  (match peek st with
  | Lexer.RPAREN, _ -> advance st
  | _ ->
    let rec loop () =
      args := parse_term st :: !args;
      match next st with
      | Lexer.COMMA, _ -> loop ()
      | Lexer.RPAREN, _ -> ()
      | tok, pos -> fail pos ("expected , or ) in atom, found " ^ Lexer.token_to_string tok)
    in
    loop ());
  Ast.atom name (List.rev !args)

type body_item =
  | Literal of Ast.literal
  | Guard of Ast.guard

(* A body item is a (possibly negated) atom, or a comparison guard between
   two terms. *)
let parse_body_item st =
  match peek st with
  | Lexer.BANG, _ ->
    advance st;
    let name = expect_ident st in
    Literal (Ast.Neg (parse_atom st name))
  | Lexer.IDENT name, _ -> (
    advance st;
    match peek st with
    | Lexer.LPAREN, _ -> Literal (Ast.Pos (parse_atom st name))
    | _ -> (
      let left = Ast.Var name in
      match next st with
      | Lexer.EQ, _ -> Guard (Ast.Eq (left, parse_term st))
      | Lexer.NEQ, _ -> Guard (Ast.Neq (left, parse_term st))
      | Lexer.LT, _ -> Guard (Ast.Lt (left, parse_term st))
      | Lexer.LE, _ -> Guard (Ast.Le (left, parse_term st))
      | tok, pos ->
        fail pos ("expected atom or comparison, found " ^ Lexer.token_to_string tok)))
  | _, pos ->
    let left = parse_term st in
    (match next st with
    | Lexer.EQ, _ -> Guard (Ast.Eq (left, parse_term st))
    | Lexer.NEQ, _ -> Guard (Ast.Neq (left, parse_term st))
    | Lexer.LT, _ -> Guard (Ast.Lt (left, parse_term st))
    | Lexer.LE, _ -> Guard (Ast.Le (left, parse_term st))
    | tok, _ -> fail pos ("expected comparison after constant, found " ^ Lexer.token_to_string tok))

type annotations = {
  weight : Program.weight_spec option;
  semantics : Semantics.t option;
  populate : bool;
}

let rec parse_annotations st acc =
  match peek st with
  | Lexer.IDENT "weight", _ ->
    advance st;
    expect st Lexer.EQ;
    let spec =
      match next st with
      | Lexer.FLOAT f, _ -> Program.Fixed f
      | Lexer.INT i, _ -> Program.Fixed (float_of_int i)
      | Lexer.IDENT "w", _ ->
        expect st Lexer.LPAREN;
        let terms = ref [] in
        (match peek st with
        | Lexer.RPAREN, _ -> advance st
        | _ ->
          let rec loop () =
            terms := parse_term st :: !terms;
            match next st with
            | Lexer.COMMA, _ -> loop ()
            | Lexer.RPAREN, _ -> ()
            | tok, pos ->
              fail pos ("expected , or ) in weight, found " ^ Lexer.token_to_string tok)
          in
          loop ());
        Program.Tied (List.rev !terms)
      | tok, pos ->
        fail pos ("expected weight value or w(...), found " ^ Lexer.token_to_string tok)
    in
    parse_annotations st { acc with weight = Some spec }
  | Lexer.IDENT "semantics", _ ->
    advance st;
    expect st Lexer.EQ;
    let name = expect_ident st in
    (match Semantics.of_string name with
    | Some s -> parse_annotations st { acc with semantics = Some s }
    | None -> fail (snd (peek st)) ("unknown semantics " ^ name))
  | Lexer.IDENT "populate", _ ->
    advance st;
    expect st Lexer.EQ;
    (match next st with
    | Lexer.BOOL b, _ -> parse_annotations st { acc with populate = b }
    | tok, pos -> fail pos ("expected true/false after populate =, found " ^ Lexer.token_to_string tok))
  | _ -> acc

type raw_rule = {
  rule_name : string option;
  head : Ast.atom;
  body : body_item list;
  annotations : annotations;
}

let parse_rule st rule_name =
  let head_name = expect_ident st in
  let head = parse_atom st head_name in
  let body = ref [] in
  (match peek st with
  | Lexer.TURNSTILE, _ ->
    advance st;
    let rec loop () =
      body := parse_body_item st :: !body;
      match peek st with
      | Lexer.COMMA, _ ->
        advance st;
        loop ()
      | _ -> ()
    in
    loop ()
  | _ -> ());
  let annotations = parse_annotations st { weight = None; semantics = None; populate = true } in
  expect st Lexer.DOT;
  { rule_name; head; body = List.rev !body; annotations }

let split_body items =
  List.fold_right
    (fun item (lits, guards) ->
      match item with
      | Literal l -> (l :: lits, guards)
      | Guard g -> (lits, g :: guards))
    items ([], [])

let classify query_relations counter raw =
  let lits, guards = split_body raw.body in
  let fresh_name kind =
    match raw.rule_name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "%s%d" kind !counter
  in
  let head_pred = raw.head.Ast.pred in
  let is_query = List.mem_assoc head_pred query_relations in
  let is_supervision =
    List.exists (fun (q, _) -> Program.evidence_relation q = head_pred) query_relations
  in
  let ast_rule = Ast.rule ~guards raw.head lits in
  if is_supervision then Program.Supervise (fresh_name "supervise", ast_rule)
  else
    match raw.annotations.weight with
    | Some weight when is_query ->
      Program.Infer
        {
          Program.name = fresh_name "infer";
          head = raw.head;
          body = lits;
          guards;
          weight;
          semantics = Option.value raw.annotations.semantics ~default:Semantics.Ratio;
          populate_head = raw.annotations.populate;
        }
    | Some _ ->
      invalid_arg
        (Printf.sprintf "rule for %s has a weight but %s is not a query relation" head_pred
           head_pred)
    | None -> Program.Deterministic (fresh_name "rule", ast_rule)

let parse_program st =
  let inputs = ref [] and queries = ref [] and raw_rules = ref [] in
  let rec loop () =
    match peek st with
    | Lexer.EOF, _ -> ()
    | Lexer.IDENT "input", _ ->
      advance st;
      inputs := parse_schema_decl st :: !inputs;
      loop ()
    | Lexer.IDENT "query", _ ->
      advance st;
      queries := parse_schema_decl st :: !queries;
      loop ()
    | Lexer.AT, _ ->
      advance st;
      let name = expect_ident st in
      raw_rules := parse_rule st (Some name) :: !raw_rules;
      loop ()
    | Lexer.IDENT _, _ ->
      raw_rules := parse_rule st None :: !raw_rules;
      loop ()
    | tok, pos -> fail pos ("unexpected token " ^ Lexer.token_to_string tok)
  in
  loop ();
  let query_relations = List.rev !queries in
  let counter = ref 0 in
  let rules = List.map (classify query_relations counter) (List.rev !raw_rules) in
  { Program.input_schemas = List.rev !inputs; query_relations; rules }

let parse source =
  match
    let st = { tokens = Lexer.tokenize source } in
    parse_program st
  with
  | prog -> (
    match Program.validate prog with
    | Ok () -> Ok prog
    | Error e -> Error e)
  | exception Parse_error (message, pos) ->
    Error (Printf.sprintf "parse error at line %d, column %d: %s" pos.Lexer.line pos.Lexer.column message)
  | exception Lexer.Lex_error (message, pos) ->
    Error (Printf.sprintf "lex error at line %d, column %d: %s" pos.Lexer.line pos.Lexer.column message)
  | exception Invalid_argument message -> Error message

let parse_exn source =
  match parse source with
  | Ok prog -> prog
  | Error e -> invalid_arg ("Ddlog.parse: " ^ e)

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  parse contents
