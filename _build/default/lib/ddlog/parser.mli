(** Parser for the DDlog surface language — the textual form of a DeepDive
    program (Section 2.2 of the paper), e.g.:

    {v
      input sentence(doc int, sid int, phrase text, ctx text).
      input mention(sid int, mid text, name text, pos int).
      query q(r text, m1 text, m2 text).

      cand(r, s, m1, m2) :-
        mention(s, m1, n1, 0), mention(s, m2, n2, 1),
        sentence(d, s, p, c), phrase_rel(p, r).

      @FE1
      q(r, m1, m2) :- cand(r, s, m1, m2), sentence(d, s, p, c)
        weight = w(r, p) semantics = ratio.

      @prior
      q(r, m1, m2) :- cand(r, s, m1, m2) weight = -0.5.

      @S1
      q_ev(r, m1, m2, true) :-
        cand(r, s, m1, m2), el(n1, e1), el(n2, e2), known(r, e1, e2).
    v}

    Bare identifiers in rule bodies are variables; quoted strings, numbers
    and booleans are constants.  A rule whose head is a [query] relation and
    carries a [weight] annotation is an inference rule ([weight = w(...)]
    declares tied learnable weights, a number a fixed weight); a rule
    targeting a query relation's [_ev] companion is a supervision rule;
    everything else is a deterministic candidate/feature rule. *)

exception Parse_error of string * Lexer.position

val parse : string -> (Dd_core.Program.t, string) result
(** Parse and validate a whole program source. *)

val parse_exn : string -> Dd_core.Program.t

val parse_file : string -> (Dd_core.Program.t, string) result
