lib/fgraph/exact.ml: Array Dd_util Graph List Printf
