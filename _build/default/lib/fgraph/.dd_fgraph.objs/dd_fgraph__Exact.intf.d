lib/fgraph/exact.mli: Graph
