lib/fgraph/graph.ml: Array List Semantics
