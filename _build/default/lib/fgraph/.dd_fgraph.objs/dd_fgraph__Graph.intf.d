lib/fgraph/graph.mli: Semantics
