lib/fgraph/semantics.ml: Format
