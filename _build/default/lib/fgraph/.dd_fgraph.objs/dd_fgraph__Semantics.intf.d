lib/fgraph/semantics.mli: Format
