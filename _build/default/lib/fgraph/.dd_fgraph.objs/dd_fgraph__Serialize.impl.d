lib/fgraph/serialize.ml: Array Buffer Fun Graph List Printf Semantics String
