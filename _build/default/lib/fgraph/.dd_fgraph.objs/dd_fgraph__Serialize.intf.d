lib/fgraph/serialize.mli: Graph
