lib/fgraph/voting.ml: Array Dd_util Graph Semantics
