lib/fgraph/voting.mli: Graph Semantics
