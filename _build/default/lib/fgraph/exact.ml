let max_enumerable = 25

let check_size g =
  let nq = List.length (Graph.query_vars g) in
  if nq > max_enumerable then
    invalid_arg
      (Printf.sprintf "Exact: %d query variables exceed the enumeration limit (%d)" nq
         max_enumerable)

let world_log_weight g assignment = Graph.total_energy g (fun v -> assignment.(v))

(* Iterate all assignments of the query variables. *)
let iter_worlds g f =
  check_size g;
  let qvars = Array.of_list (Graph.query_vars g) in
  let assignment = Graph.freeze_assignment g in
  let n = Array.length qvars in
  let total = 1 lsl n in
  for code = 0 to total - 1 do
    for i = 0 to n - 1 do
      assignment.(qvars.(i)) <- (code lsr i) land 1 = 1
    done;
    f assignment
  done

let log_partition g =
  let logs = ref [] in
  iter_worlds g (fun a -> logs := world_log_weight g a :: !logs);
  Dd_util.Stats.log_sum_exp (Array.of_list !logs)

let world_probability g assignment =
  exp (world_log_weight g assignment -. log_partition g)

let marginals g =
  let log_z = log_partition g in
  let n = Graph.num_vars g in
  let probs = Array.make n 0.0 in
  iter_worlds g (fun a ->
      let p = exp (world_log_weight g a -. log_z) in
      for v = 0 to n - 1 do
        if a.(v) then probs.(v) <- probs.(v) +. p
      done);
  probs

let enumerate g =
  let log_z = log_partition g in
  let out = ref [] in
  iter_worlds g (fun a -> out := (Array.copy a, exp (world_log_weight g a -. log_z)) :: !out);
  List.rev !out
