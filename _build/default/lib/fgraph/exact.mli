(** Exact inference by exhaustive enumeration of possible worlds.

    Exponential in the number of query variables, so usable only on small
    graphs — exactly the regime where the paper's "strawman" complete
    materialization lives, and the ground truth against which the samplers
    are tested. *)

val max_enumerable : int
(** Upper bound on the number of query variables accepted (25). *)

val log_partition : Graph.t -> float
(** Log of [Z = sum_I exp (W (F, I))] over worlds consistent with the
    evidence. *)

val world_log_weight : Graph.t -> bool array -> float
(** Unnormalized log-weight of one world (must set evidence correctly). *)

val world_probability : Graph.t -> bool array -> float

val marginals : Graph.t -> float array
(** Marginal probability of each variable being true; evidence variables
    report 0 or 1. *)

val enumerate : Graph.t -> (bool array * float) list
(** Every possible world (assignment over all variables, evidence fixed)
    with its normalized probability. *)
