type t =
  | Linear
  | Logical
  | Ratio

let g t n =
  match t with
  | Linear -> float_of_int n
  | Logical -> if n > 0 then 1.0 else 0.0
  | Ratio -> log (1.0 +. float_of_int n)

let all = [ Linear; Logical; Ratio ]

let to_string = function
  | Linear -> "linear"
  | Logical -> "logical"
  | Ratio -> "ratio"

let of_string = function
  | "linear" -> Some Linear
  | "logical" -> Some Logical
  | "ratio" -> Some Ratio
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)
