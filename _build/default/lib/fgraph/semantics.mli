(** The three grounding-count semantics of the paper (Figure 4).

    A rule's energy contribution in a possible world is
    [w * sign * g(n)] where [n] is the number of satisfied body groundings
    (Equation 1).  The choice of [g] — an instance of Jaynes' transformation
    groups — changes both extraction quality (up to 10% F1 in the paper) and
    Gibbs-sampling convergence speed (Appendix A). *)

type t =
  | Linear  (** [g n = n]: raw counts are meaningful *)
  | Logical  (** [g n = 1 if n > 0]: existence only *)
  | Ratio  (** [g n = log (1 + n)]: vote ratios matter *)

val g : t -> int -> float

val all : t list

val to_string : t -> string

val of_string : string -> t option

val pp : Format.formatter -> t -> unit
