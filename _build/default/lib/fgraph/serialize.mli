(** Factor-graph (de)serialization.

    DeepDive materializes the grounded factor graph as a file handed to the
    external sampler, and the incremental engine's materialization is an
    overnight artifact meant to be reused across sessions — both need a
    durable format.  This is a versioned, line-oriented text format:
    human-greppable, stable under appends, and independent of in-memory
    representation details.

    {v
      ddgraph 1
      vars <n>
      evidence <var> <0|1>          (one line per evidence variable)
      weight <value> <0|1>          (in weight-id order; flag = learnable)
      factor <head|-1> <weight_id> <semantics> <nbodies> | <nlits> <var> <0|1> ... | ...
      end
    v} *)

exception Format_error of string

val write : out_channel -> Graph.t -> unit

val read : in_channel -> Graph.t
(** Raises {!Format_error} on malformed input. *)

val save : string -> Graph.t -> unit
(** Write to a file path. *)

val load : string -> Graph.t

val to_string : Graph.t -> string

val of_string : string -> Graph.t
