type config = {
  n_up : int;
  n_down : int;
  rule_weight : float;
  unary_up : float;
  unary_down : float;
  semantics : Semantics.t;
}

let default =
  {
    n_up = 10;
    n_down = 10;
    rule_weight = 1.0;
    unary_up = 0.0;
    unary_down = 0.0;
    semantics = Semantics.Logical;
  }

let build cfg =
  let g = Graph.create () in
  let q = Graph.add_var g in
  let ups = Graph.add_vars g cfg.n_up in
  let downs = Graph.add_vars g cfg.n_down in
  let body_of v = [| Graph.{ var = v; negated = false } |] in
  let w_up = Graph.add_weight g cfg.rule_weight in
  let w_down = Graph.add_weight g (-.cfg.rule_weight) in
  if cfg.n_up > 0 then
    ignore
      (Graph.add_factor g
         {
           Graph.head = Some q;
           bodies = Array.map body_of ups;
           weight_id = w_up;
           semantics = cfg.semantics;
         });
  if cfg.n_down > 0 then
    ignore
      (Graph.add_factor g
         {
           Graph.head = Some q;
           bodies = Array.map body_of downs;
           weight_id = w_down;
           semantics = cfg.semantics;
         });
  if cfg.unary_up <> 0.0 then begin
    let w = Graph.add_weight g cfg.unary_up in
    Array.iter (fun v -> ignore (Graph.unary g ~weight:w v)) ups
  end;
  if cfg.unary_down <> 0.0 then begin
    let w = Graph.add_weight g cfg.unary_down in
    Array.iter (fun v -> ignore (Graph.unary g ~weight:w v)) downs
  end;
  (g, q, ups, downs)

(* Log-factorial with a memoized table. *)
let log_fact_table = ref [| 0.0 |]

let log_fact n =
  let table = !log_fact_table in
  if n < Array.length table then table.(n)
  else begin
    let grown = Array.make (n + 1) 0.0 in
    Array.blit table 0 grown 0 (Array.length table);
    for i = Array.length table to n do
      grown.(i) <- grown.(i - 1) +. log (float_of_int i)
    done;
    log_fact_table := grown;
    grown.(n)
  end

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else log_fact n -. log_fact k -. log_fact (n - k)

let exact_marginal_q cfg =
  (* Z(s) = sum_k sum_l C(nu,k) C(nd,l)
            exp (uu*k + ud*l + s*w*(g k - g l)), s in {+1,-1};
     the double sum separates into a product over the two sides. *)
  let side n unary sign_w =
    Array.init (n + 1) (fun k ->
        log_choose n k
        +. (unary *. float_of_int k)
        +. (sign_w *. Semantics.g cfg.semantics k))
    |> Dd_util.Stats.log_sum_exp
  in
  let w = cfg.rule_weight in
  let log_z_pos = side cfg.n_up cfg.unary_up w +. side cfg.n_down cfg.unary_down (-.w) in
  let log_z_neg = side cfg.n_up cfg.unary_up (-.w) +. side cfg.n_down cfg.unary_down w in
  let m = max log_z_pos log_z_neg in
  let zp = exp (log_z_pos -. m) and zn = exp (log_z_neg -. m) in
  zp /. (zp +. zn)
