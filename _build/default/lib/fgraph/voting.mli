(** The voting program of Example 2.5 and Appendix A.

    [q() :- Up(x) weight = w] and [q() :- Down(x) weight = -w], with
    optional per-variable unary weights.  The closed form of the marginal of
    [q] is computable by a counting argument, which lets the convergence
    experiments (Figure 13) measure distance from the true answer even with
    thousands of variables, where enumeration is hopeless. *)

type config = {
  n_up : int;
  n_down : int;
  rule_weight : float;  (** the [w] of the two rules *)
  unary_up : float;  (** unary weight on every Up variable *)
  unary_down : float;
  semantics : Semantics.t;
}

val default : config
(** 10 up, 10 down, weight 1, no unaries, logical semantics. *)

val build : config -> Graph.t * Graph.var * Graph.var array * Graph.var array
(** Construct the factor graph; returns [(graph, q, ups, downs)].  All
    variables are query variables. *)

val exact_marginal_q : config -> float
(** Closed-form [P(q = 1)] via the counting decomposition:
    worlds factor through [(#true ups, #true downs)], and binomial
    coefficients weight each count pair. *)

val log_choose : int -> int -> float
(** [log C(n, k)] via a log-factorial table. *)
