lib/inference/fast_gibbs.ml: Array Dd_fgraph Dd_util Gibbs Hashtbl List
