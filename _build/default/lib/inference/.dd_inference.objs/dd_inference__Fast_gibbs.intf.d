lib/inference/fast_gibbs.mli: Dd_fgraph Dd_util
