lib/inference/gibbs.ml: Array Dd_fgraph Dd_util List
