lib/inference/gibbs.mli: Dd_fgraph Dd_util
