lib/inference/learner.ml: Array Dd_fgraph Dd_util Gibbs Hashtbl List
