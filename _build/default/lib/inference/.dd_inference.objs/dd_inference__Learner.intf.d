lib/inference/learner.mli: Dd_fgraph Dd_util
