lib/inference/map_inference.ml: Array Dd_fgraph Dd_util Gibbs List
