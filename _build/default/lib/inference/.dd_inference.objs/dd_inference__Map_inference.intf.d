lib/inference/map_inference.mli: Dd_fgraph Dd_util
