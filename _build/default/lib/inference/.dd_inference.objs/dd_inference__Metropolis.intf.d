lib/inference/metropolis.mli: Dd_fgraph Dd_util
