module Graph = Dd_fgraph.Graph
module Semantics = Dd_fgraph.Semantics
module Prng = Dd_util.Prng
module Stats = Dd_util.Stats

(* One occurrence of a variable inside a factor body. *)
type occurrence = {
  factor : int;
  body : int;
  negated : bool;
}

type t = {
  graph : Graph.t;
  assignment : bool array;
  (* Per factor, per body: number of unsatisfied literals. *)
  unsat : int array array;
  (* Per factor: number of satisfied bodies (n of Equation 1). *)
  sat : int array;
  (* Per variable: body occurrences and factors where it is the head. *)
  occurrences : occurrence list array;
  head_of : int list array;
}

let assignment t = t.assignment

let create ?init rng g =
  let assignment = match init with Some a -> Array.copy a | None -> Gibbs.init_assignment rng g in
  let nvars = Graph.num_vars g in
  if Array.length assignment <> nvars then
    invalid_arg "Fast_gibbs.create: assignment size mismatch";
  let nfactors = Graph.num_factors g in
  let unsat = Array.make nfactors [||] in
  let sat = Array.make nfactors 0 in
  let occurrences = Array.make nvars [] in
  let head_of = Array.make nvars [] in
  Graph.iter_factors
    (fun fid f ->
      (match f.Graph.head with
      | Some h -> head_of.(h) <- fid :: head_of.(h)
      | None -> ());
      let counts =
        Array.mapi
          (fun body_idx body ->
            let seen = Hashtbl.create 4 in
            Array.iter
              (fun l ->
                if Hashtbl.mem seen l.Graph.var then
                  invalid_arg "Fast_gibbs.create: variable repeated within a body";
                Hashtbl.replace seen l.Graph.var ();
                occurrences.(l.Graph.var) <-
                  { factor = fid; body = body_idx; negated = l.Graph.negated }
                  :: occurrences.(l.Graph.var))
              body;
            Array.fold_left
              (fun acc l ->
                if assignment.(l.Graph.var) <> l.Graph.negated then acc else acc + 1)
              0 body)
          f.Graph.bodies
      in
      unsat.(fid) <- counts;
      sat.(fid) <- Array.fold_left (fun acc c -> if c = 0 then acc + 1 else acc) 0 counts)
    g;
  { graph = g; assignment; unsat; sat; occurrences; head_of }

(* Energy of factor [fid] as a function of a hypothetical value [x] for
   [v], using only cached counts and [v]'s occurrences in it. *)
let factor_energy_with t fid ~v ~x ~occ_in_factor =
  let f = Graph.factor t.graph fid in
  (* Satisfied-body count with v's bodies re-evaluated under x. *)
  let n = ref t.sat.(fid) in
  List.iter
    (fun occ ->
      let currently_sat = t.unsat.(fid).(occ.body) = 0 in
      let lit_sat_now = t.assignment.(v) <> occ.negated in
      let unsat_others = t.unsat.(fid).(occ.body) - (if lit_sat_now then 0 else 1) in
      let sat_under_x = unsat_others = 0 && x <> occ.negated in
      if currently_sat && not sat_under_x then decr n
      else if (not currently_sat) && sat_under_x then incr n)
    occ_in_factor;
  let sign =
    match f.Graph.head with
    | None -> 1.0
    | Some h -> if h = v then (if x then 1.0 else -1.0) else if t.assignment.(h) then 1.0 else -1.0
  in
  Graph.weight_value t.graph f.Graph.weight_id *. sign *. Semantics.g f.Graph.semantics !n

let conditional_true_prob t v =
  (* Group v's occurrences by factor, then add head-only factors. *)
  let by_factor = Hashtbl.create 8 in
  List.iter
    (fun occ ->
      let existing = try Hashtbl.find by_factor occ.factor with Not_found -> [] in
      Hashtbl.replace by_factor occ.factor (occ :: existing))
    t.occurrences.(v);
  List.iter
    (fun fid -> if not (Hashtbl.mem by_factor fid) then Hashtbl.replace by_factor fid [])
    t.head_of.(v);
  let delta = ref 0.0 in
  Hashtbl.iter
    (fun fid occ_in_factor ->
      delta :=
        !delta
        +. factor_energy_with t fid ~v ~x:true ~occ_in_factor
        -. factor_energy_with t fid ~v ~x:false ~occ_in_factor)
    by_factor;
  Stats.sigmoid !delta

let set_value t v value =
  if t.assignment.(v) <> value then begin
    t.assignment.(v) <- value;
    List.iter
      (fun occ ->
        let lit_sat = value <> occ.negated in
        let counts = t.unsat.(occ.factor) in
        let before = counts.(occ.body) in
        let after = if lit_sat then before - 1 else before + 1 in
        counts.(occ.body) <- after;
        if before = 0 && after > 0 then t.sat.(occ.factor) <- t.sat.(occ.factor) - 1
        else if before > 0 && after = 0 then t.sat.(occ.factor) <- t.sat.(occ.factor) + 1)
      t.occurrences.(v)
  end

let resample_var rng t v = set_value t v (Prng.bernoulli rng (conditional_true_prob t v))

let sweep rng t =
  for v = 0 to Graph.num_vars t.graph - 1 do
    match Graph.evidence_of t.graph v with
    | Graph.Query -> resample_var rng t v
    | Graph.Evidence _ -> ()
  done

let marginals ?(burn_in = 10) rng g ~sweeps =
  let t = create rng g in
  for _ = 1 to burn_in do
    sweep rng t
  done;
  let n = Graph.num_vars g in
  let totals = Array.make n 0 in
  for _ = 1 to sweeps do
    sweep rng t;
    for v = 0 to n - 1 do
      if t.assignment.(v) then totals.(v) <- totals.(v) + 1
    done
  done;
  Array.map (fun c -> float_of_int c /. float_of_int (max 1 sweeps)) totals

let sample_worlds ?(burn_in = 10) ?(spacing = 1) rng g ~n =
  let t = create rng g in
  for _ = 1 to burn_in do
    sweep rng t
  done;
  Array.init n (fun _ ->
      for _ = 1 to spacing do
        sweep rng t
      done;
      Array.copy t.assignment)

let sweeps_to_converge ?(tolerance = 0.01) ?(max_sweeps = 100_000) ?(check_every = 10) rng g
    ~target_var ~target_prob =
  let t = create rng g in
  let trues = ref 0 and total = ref 0 in
  let converged_at = ref None in
  (try
     for i = 1 to max_sweeps do
       sweep rng t;
       if t.assignment.(target_var) then incr trues;
       incr total;
       if i mod check_every = 0 then begin
         let estimate = float_of_int !trues /. float_of_int !total in
         if abs_float (estimate -. target_prob) <= tolerance then begin
           converged_at := Some i;
           raise Exit
         end
       end
     done
   with Exit -> ());
  !converged_at
