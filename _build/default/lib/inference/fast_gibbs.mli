(** High-throughput Gibbs sampling with incremental satisfied-body counts.

    The plain sampler ({!Gibbs}) recomputes every adjacent factor's
    [g(#satisfied bodies)] from scratch for each conditional, which costs
    O(total body size of adjacent factors) per variable — quadratic per
    sweep on aggregation-heavy graphs like the voting program, whose single
    factor has one body per vote.  This sampler maintains, per factor body,
    the count of unsatisfied literals, and per factor, the count of
    satisfied bodies; a variable update then touches only the bodies that
    mention the variable.  This is the standard trick behind
    high-throughput Gibbs engines such as DimmWitted (the sampler DeepDive
    ships), reproduced here as both an optimization and an ablation subject.

    Sampling is distribution-identical to {!Gibbs} given the same random
    stream: conditionals agree bit-for-bit (see the equivalence property
    tests).

    The state snapshots the graph's *structure*; weights may keep changing
    (learning), but after adding variables or factors a new sampler must be
    created. *)

module Graph = Dd_fgraph.Graph

type t

val create : ?init:bool array -> Dd_util.Prng.t -> Graph.t -> t
(** Build the cached state.  [init] defaults to {!Gibbs.init_assignment}.
    Raises [Invalid_argument] if a factor body mentions the same variable
    twice (never produced by grounding). *)

val assignment : t -> bool array
(** The live assignment (mutated by sweeps; do not write directly). *)

val conditional_true_prob : t -> Graph.var -> float
(** Same value {!Gibbs.conditional_true_prob} would return. *)

val resample_var : Dd_util.Prng.t -> t -> Graph.var -> unit

val sweep : Dd_util.Prng.t -> t -> unit
(** One pass over the query variables. *)

val marginals : ?burn_in:int -> Dd_util.Prng.t -> Graph.t -> sweeps:int -> float array
(** Drop-in replacement for {!Gibbs.marginals}. *)

val sample_worlds :
  ?burn_in:int -> ?spacing:int -> Dd_util.Prng.t -> Graph.t -> n:int -> bool array array

val sweeps_to_converge :
  ?tolerance:float ->
  ?max_sweeps:int ->
  ?check_every:int ->
  Dd_util.Prng.t ->
  Graph.t ->
  target_var:Graph.var ->
  target_prob:float ->
  int option
(** As {!Gibbs.sweeps_to_converge}, on the cached sampler. *)
