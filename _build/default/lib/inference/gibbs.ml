module Graph = Dd_fgraph.Graph
module Prng = Dd_util.Prng
module Stats = Dd_util.Stats

let conditional_true_prob g assignment v =
  let lookup v' = assignment.(v') in
  let energy_with value =
    let saved = assignment.(v) in
    assignment.(v) <- value;
    let acc =
      List.fold_left
        (fun acc fi -> acc +. Graph.factor_energy g (Graph.factor g fi) lookup)
        0.0 (Graph.factors_of_var g v)
    in
    assignment.(v) <- saved;
    acc
  in
  Stats.sigmoid (energy_with true -. energy_with false)

let resample_var rng g assignment v =
  assignment.(v) <- Prng.bernoulli rng (conditional_true_prob g assignment v)

let sweep rng g assignment =
  let n = Graph.num_vars g in
  for v = 0 to n - 1 do
    match Graph.evidence_of g v with
    | Graph.Query -> resample_var rng g assignment v
    | Graph.Evidence _ -> ()
  done

let init_assignment rng g =
  Array.init (Graph.num_vars g) (fun v ->
      match Graph.evidence_of g v with
      | Graph.Evidence b -> b
      | Graph.Query -> Prng.bool rng)

let run ?(burn_in = 0) ?init rng g ~sweeps ~on_sweep =
  let assignment = match init with Some a -> a | None -> init_assignment rng g in
  for _ = 1 to burn_in do
    sweep rng g assignment
  done;
  for i = 1 to sweeps do
    sweep rng g assignment;
    on_sweep i assignment
  done

let marginals ?(burn_in = 10) rng g ~sweeps =
  let n = Graph.num_vars g in
  let totals = Array.make n 0 in
  run ~burn_in rng g ~sweeps ~on_sweep:(fun _ a ->
      for v = 0 to n - 1 do
        if a.(v) then totals.(v) <- totals.(v) + 1
      done);
  Array.map (fun c -> float_of_int c /. float_of_int (max 1 sweeps)) totals

let sample_worlds ?(burn_in = 10) ?(spacing = 1) rng g ~n =
  let out = Array.make n [||] in
  let seen = ref 0 in
  run ~burn_in rng g
    ~sweeps:(n * spacing)
    ~on_sweep:(fun i a ->
      if i mod spacing = 0 && !seen < n then begin
        out.(!seen) <- Array.copy a;
        incr seen
      end);
  out

let sweeps_to_converge ?(tolerance = 0.01) ?(max_sweeps = 100_000) ?(check_every = 10) rng g
    ~target_var ~target_prob =
  let trues = ref 0 and total = ref 0 in
  let converged_at = ref None in
  let assignment = init_assignment rng g in
  (try
     for i = 1 to max_sweeps do
       sweep rng g assignment;
       if assignment.(target_var) then incr trues;
       incr total;
       if i mod check_every = 0 then begin
         let estimate = float_of_int !trues /. float_of_int !total in
         if abs_float (estimate -. target_prob) <= tolerance then begin
           converged_at := Some i;
           raise Exit
         end
       end
     done
   with Exit -> ());
  !converged_at
