(** Gibbs sampling over factor graphs.

    The workhorse of both inference and learning, as in the paper
    (Section 2.5): visit each query variable, resample it from its
    conditional given the rest, estimate marginals by averaging.  Evidence
    variables stay clamped. *)

module Graph = Dd_fgraph.Graph

val conditional_true_prob : Graph.t -> bool array -> Graph.var -> float
(** [P(v = true | rest)] — computed from the energy difference of the
    factors adjacent to [v] only. *)

val resample_var : Dd_util.Prng.t -> Graph.t -> bool array -> Graph.var -> unit

val sweep : Dd_util.Prng.t -> Graph.t -> bool array -> unit
(** One pass resampling every query variable in order. *)

val init_assignment : Dd_util.Prng.t -> Graph.t -> bool array
(** Random initial world: evidence clamped, query variables uniform. *)

val run :
  ?burn_in:int ->
  ?init:bool array ->
  Dd_util.Prng.t ->
  Graph.t ->
  sweeps:int ->
  on_sweep:(int -> bool array -> unit) ->
  unit
(** Burn in, then call [on_sweep] after each of [sweeps] sweeps with the
    current world (not copied — copy if retained). *)

val marginals : ?burn_in:int -> Dd_util.Prng.t -> Graph.t -> sweeps:int -> float array
(** Estimated marginal of every variable (evidence variables report their
    clamped value). *)

val sample_worlds :
  ?burn_in:int -> ?spacing:int -> Dd_util.Prng.t -> Graph.t -> n:int -> bool array array
(** Draw [n] worlds, [spacing] sweeps apart (default 1); the tuple-bundle
    materialization of the sampling approach stores exactly this. *)

val sweeps_to_converge :
  ?tolerance:float ->
  ?max_sweeps:int ->
  ?check_every:int ->
  Dd_util.Prng.t ->
  Graph.t ->
  target_var:Graph.var ->
  target_prob:float ->
  int option
(** Number of sweeps until the running-mean estimate of [target_var]'s
    marginal stays within [tolerance] (default 0.01) of [target_prob];
    [None] if [max_sweeps] (default 100_000) is exhausted.  Used by the
    convergence experiments of Figure 13. *)
