module Graph = Dd_fgraph.Graph
module Prng = Dd_util.Prng
module Stats = Dd_util.Stats

type result = {
  assignment : bool array;
  log_weight : float;
  sweeps : int;
}

let default_schedule ~sweeps i =
  let t0 = 2.0 and t1 = 0.05 in
  let progress = float_of_int i /. float_of_int (max 1 (sweeps - 1)) in
  t0 *. ((t1 /. t0) ** progress)

(* Energy difference of setting [v] to true vs false, over adjacent
   factors. *)
let local_delta g assignment v =
  let lookup v' = assignment.(v') in
  let energy_with value =
    let saved = assignment.(v) in
    assignment.(v) <- value;
    let acc =
      List.fold_left
        (fun acc fid -> acc +. Graph.factor_energy g (Graph.factor g fid) lookup)
        0.0 (Graph.factors_of_var g v)
    in
    assignment.(v) <- saved;
    acc
  in
  energy_with true -. energy_with false

let greedy_refine g assignment =
  let flips = ref 0 in
  let improved = ref true in
  while !improved do
    improved := false;
    for v = 0 to Graph.num_vars g - 1 do
      match Graph.evidence_of g v with
      | Graph.Evidence _ -> ()
      | Graph.Query ->
        let delta = local_delta g assignment v in
        if abs_float delta > 1e-12 then begin
          let desired = delta > 0.0 in
          if desired <> assignment.(v) then begin
            assignment.(v) <- desired;
            incr flips;
            improved := true
          end
        end
    done
  done;
  !flips

let search ?(sweeps = 500) ?schedule ?init rng g =
  let schedule = match schedule with Some s -> s | None -> default_schedule ~sweeps in
  let assignment =
    match init with Some a -> Array.copy a | None -> Gibbs.init_assignment rng g
  in
  let best = Array.copy assignment in
  let lookup_of a v = a.(v) in
  let best_weight = ref (Graph.total_energy g (lookup_of best)) in
  let current_weight = ref !best_weight in
  for i = 0 to sweeps - 1 do
    let temperature = max 1e-6 (schedule i) in
    for v = 0 to Graph.num_vars g - 1 do
      match Graph.evidence_of g v with
      | Graph.Evidence _ -> ()
      | Graph.Query ->
        let delta = local_delta g assignment v in
        let p_true = Stats.sigmoid (delta /. temperature) in
        let fresh = Prng.bernoulli rng p_true in
        if fresh <> assignment.(v) then begin
          current_weight :=
            !current_weight +. (if fresh then delta else -.delta);
          assignment.(v) <- fresh
        end
    done;
    if !current_weight > !best_weight then begin
      best_weight := !current_weight;
      Array.blit assignment 0 best 0 (Array.length assignment)
    end
  done;
  ignore (greedy_refine g best);
  { assignment = best; log_weight = Graph.total_energy g (lookup_of best); sweeps }
