(** MAP inference: the single most probable world.

    Marginal inference drives DeepDive's output probabilities, but error
    analysis and downstream consumers often want the most likely knowledge
    base as a whole — the argmax of Equation 2 rather than per-variable
    marginals.  This module finds it by simulated annealing over the same
    energy the Gibbs sampler uses: sweeps at a decreasing temperature, with
    the best world ever visited retained (so the result can only improve on
    the initialization). *)

module Graph = Dd_fgraph.Graph

type result = {
  assignment : bool array;
  log_weight : float;  (** unnormalized [W(F, I)] of the returned world *)
  sweeps : int;
}

val default_schedule : sweeps:int -> int -> float
(** Geometric cooling from 2.0 down to 0.05 across the sweep budget. *)

val search :
  ?sweeps:int ->
  ?schedule:(int -> float) ->
  ?init:bool array ->
  Dd_util.Prng.t ->
  Graph.t ->
  result
(** [search rng g] anneals for [sweeps] (default 500) sweeps; evidence
    variables stay clamped.  [schedule i] gives the temperature of sweep
    [i] (default {!default_schedule}). *)

val greedy_refine : Graph.t -> bool array -> int
(** Deterministic hill-climbing: flip any variable that strictly increases
    the world's weight, until a local optimum; returns the number of flips
    applied.  [search] runs this on its result before returning. *)
