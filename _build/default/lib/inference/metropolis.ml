module Graph = Dd_fgraph.Graph
module Prng = Dd_util.Prng

type change = {
  graph : Graph.t;
  new_factor_ids : int list;
  extended_factors : (int * int) list;
  changed_weights : (Graph.weight_id * float) list;
  new_vars : Graph.var list;
  evidence_changes : (Graph.var * Graph.evidence) list;
}

let unchanged graph =
  {
    graph;
    new_factor_ids = [];
    extended_factors = [];
    changed_weights = [];
    new_vars = [];
    evidence_changes = [];
  }

(* Old weight values by id. *)
let old_weight_table change =
  let table = Hashtbl.create 16 in
  List.iter (fun (w, old_value) -> Hashtbl.replace table w old_value) change.changed_weights;
  table

(* Factors affected by a weight change, excluding brand-new factors (their
   full energy is already counted) and extended factors (handled together
   with their body extension). *)
let weight_affected_factors change =
  match change.changed_weights with
  | [] -> []
  | changed ->
    let excluded =
      let set = Hashtbl.create 16 in
      List.iter (fun i -> Hashtbl.replace set i ()) change.new_factor_ids;
      List.iter (fun (i, _) -> Hashtbl.replace set i ()) change.extended_factors;
      fun i -> Hashtbl.mem set i
    in
    let table = Hashtbl.create 16 in
    List.iter (fun (w, old_value) -> Hashtbl.replace table w old_value) changed;
    let out = ref [] in
    Graph.iter_factors
      (fun i f ->
        if not (excluded i) then
          match Hashtbl.find_opt table f.Graph.weight_id with
          | Some old_value -> out := (i, old_value) :: !out
          | None -> ())
      change.graph;
    !out

(* Energy of a factor under an explicit weight value: factor energies are
   linear in the weight, with a unit probe when the current weight is 0. *)
let energy_under_weight g f lookup target_weight =
  let current = Graph.weight_value g f.Graph.weight_id in
  if current <> 0.0 then Graph.factor_energy g f lookup /. current *. target_weight
  else begin
    Graph.set_weight g f.Graph.weight_id 1.0;
    let unit_energy = Graph.factor_energy g f lookup in
    Graph.set_weight g f.Graph.weight_id current;
    unit_energy *. target_weight
  end

let prefix_energy_under_weight g f lookup old_bodies target_weight =
  let current = Graph.weight_value g f.Graph.weight_id in
  if current <> 0.0 then
    Graph.factor_energy_prefix g f lookup old_bodies /. current *. target_weight
  else begin
    Graph.set_weight g f.Graph.weight_id 1.0;
    let unit_energy = Graph.factor_energy_prefix g f lookup old_bodies in
    Graph.set_weight g f.Graph.weight_id current;
    unit_energy *. target_weight
  end

let delta_log_weight change assignment =
  let g = change.graph in
  let lookup v = assignment.(v) in
  let violates_evidence =
    List.exists
      (fun (v, _old) ->
        match Graph.evidence_of g v with
        | Graph.Evidence b -> assignment.(v) <> b
        | Graph.Query -> false)
      change.evidence_changes
  in
  if violates_evidence then neg_infinity
  else begin
    let old_weights = old_weight_table change in
    let old_weight f =
      match Hashtbl.find_opt old_weights f.Graph.weight_id with
      | Some w -> w
      | None -> Graph.weight_value g f.Graph.weight_id
    in
    let from_new_factors =
      List.fold_left
        (fun acc i -> acc +. Graph.factor_energy g (Graph.factor g i) lookup)
        0.0 change.new_factor_ids
    in
    (* An extended factor had only its first [old_bodies] groundings and the
       old weight before the update. *)
    let from_extensions =
      List.fold_left
        (fun acc (i, old_bodies) ->
          let f = Graph.factor g i in
          let now = Graph.factor_energy g f lookup in
          let before = prefix_energy_under_weight g f lookup old_bodies (old_weight f) in
          acc +. now -. before)
        0.0 change.extended_factors
    in
    let from_weight_changes =
      List.fold_left
        (fun acc (i, old_value) ->
          let f = Graph.factor g i in
          let now = Graph.factor_energy g f lookup in
          let before = energy_under_weight g f lookup old_value in
          acc +. now -. before)
        0.0 (weight_affected_factors change)
    in
    from_new_factors +. from_extensions +. from_weight_changes
  end

type result = {
  marginals : float array;
  acceptance_rate : float;
  proposals : int;
  accepted : int;
  exhausted : bool;
}

(* Extend a stored sample to the updated graph: copy old values, clamp all
   evidence, then run a few restricted Gibbs sweeps over the new
   variables. *)
let extend_sample rng change stored_sample ~sweeps =
  let g = change.graph in
  let n = Graph.num_vars g in
  let a = Array.make n false in
  let old_n = Array.length stored_sample in
  Array.blit stored_sample 0 a 0 (min old_n n);
  List.iter (fun v -> if v < n then a.(v) <- Prng.bool rng) change.new_vars;
  (* Clamp evidence under the updated graph. *)
  for v = 0 to n - 1 do
    match Graph.evidence_of g v with
    | Graph.Evidence b -> a.(v) <- b
    | Graph.Query -> ()
  done;
  for _ = 1 to sweeps do
    List.iter
      (fun v ->
        match Graph.evidence_of g v with
        | Graph.Query -> Gibbs.resample_var rng g a v
        | Graph.Evidence _ -> ())
      change.new_vars
  done;
  a

let infer ?(new_var_sweeps = 2) rng change ~stored ~chain_length =
  let g = change.graph in
  let nstored = Array.length stored in
  if nstored = 0 then invalid_arg "Metropolis.infer: no stored samples";
  let n = Graph.num_vars g in
  let current = ref (extend_sample rng change stored.(0) ~sweeps:new_var_sweeps) in
  let current_delta = ref (delta_log_weight change !current) in
  let totals = Array.make n 0 in
  let accepted = ref 0 in
  for step = 0 to chain_length - 1 do
    let proposal =
      extend_sample rng change stored.((step + 1) mod nstored) ~sweeps:new_var_sweeps
    in
    let proposal_delta = delta_log_weight change proposal in
    let log_alpha = proposal_delta -. !current_delta in
    if log_alpha >= 0.0 || Prng.float_unit rng < exp log_alpha then begin
      current := proposal;
      current_delta := proposal_delta;
      incr accepted
    end;
    let a = !current in
    for v = 0 to n - 1 do
      if a.(v) then totals.(v) <- totals.(v) + 1
    done
  done;
  {
    marginals = Array.map (fun c -> float_of_int c /. float_of_int (max 1 chain_length)) totals;
    acceptance_rate = float_of_int !accepted /. float_of_int (max 1 chain_length);
    proposals = chain_length;
    accepted = !accepted;
    exhausted = chain_length > nstored;
  }

let acceptance_probe rng change ~stored ~probes =
  let n = min probes (Array.length stored) in
  if n = 0 then 1.0
  else begin
    let result = infer rng change ~stored ~chain_length:n in
    result.acceptance_rate
  end
