(** Independent Metropolis-Hastings over materialized samples — the
    "sampling approach" to incremental inference (Section 3.2.2).

    Materialization stores worlds drawn from the original distribution
    [Pr(0)].  After the program or data changes, those worlds are proposals
    for a chain targeting the updated distribution [Pr(Delta)]; the
    acceptance test only needs the *changed* factors and weights, never the
    full original graph, which is where the speedup comes from.  The
    acceptance rate is the key efficiency statistic: near 1.0 when the
    distribution barely moved, near 0 under heavy change (e.g. new training
    data), in which case the engine's optimizer switches to the variational
    approach. *)

module Graph = Dd_fgraph.Graph

(** A description of how a factor graph changed between materialization
    time and now.  [graph] is the *updated* graph; the old graph is implied
    by the recorded old weights/evidence and by dropping the new factors
    and variables. *)
type change = {
  graph : Graph.t;
  new_factor_ids : int list;  (** factors absent from the original graph *)
  extended_factors : (int * int) list;
      (** (factor id, original body count) for factors that gained body
          groundings; the energy delta is [g(n_all) - g(n_prefix)] scaled *)
  changed_weights : (Graph.weight_id * float) list;
      (** (id, original value); current value lives in [graph] *)
  new_vars : Graph.var list;  (** variables absent from stored samples *)
  evidence_changes : (Graph.var * Graph.evidence) list;
      (** (var, original evidence status); current status lives in [graph] *)
}

val unchanged : Graph.t -> change
(** A change record describing "nothing changed" (acceptance rate 1). *)

val delta_log_weight : change -> bool array -> float
(** [W_new(I) - W_old(I)], computed from changed/new factors and new
    evidence only; [neg_infinity] when [I] violates newly added evidence. *)

type result = {
  marginals : float array;
  acceptance_rate : float;
  proposals : int;
  accepted : int;
  exhausted : bool;
      (** true when the chain consumed more proposals than stored samples *)
}

val infer :
  ?new_var_sweeps:int ->
  Dd_util.Prng.t ->
  change ->
  stored:bool array array ->
  chain_length:int ->
  result
(** Run the independent MH chain for [chain_length] steps, proposing stored
    samples in order (cycling).  Variables in [new_vars] are filled in by
    [new_var_sweeps] (default 2) restricted Gibbs sweeps conditioned on the
    proposal.  Marginals are chain averages. *)

val acceptance_probe :
  Dd_util.Prng.t -> change -> stored:bool array array -> probes:int -> float
(** Estimate the acceptance rate with a short probe chain; the rule-based
    optimizer uses this to pick a strategy without committing to a full
    run. *)
