lib/kbc/analysis.ml: Array Corpus Dd_core Dd_fgraph Dd_relational Dd_util Hashtbl List Option Pipeline Printf Quality
