lib/kbc/analysis.mli: Corpus Dd_core
