lib/kbc/calibration.mli: Corpus Dd_core Dd_util
