lib/kbc/corpus.ml: Array Dd_datalog Dd_relational Dd_util Hashtbl List Printf String
