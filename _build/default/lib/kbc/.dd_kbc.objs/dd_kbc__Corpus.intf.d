lib/kbc/corpus.mli: Dd_datalog Dd_relational
