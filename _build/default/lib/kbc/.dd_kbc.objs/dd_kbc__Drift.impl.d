lib/kbc/drift.ml: Array Dd_inference Dd_util Hashtbl
