lib/kbc/drift.mli: Dd_inference
