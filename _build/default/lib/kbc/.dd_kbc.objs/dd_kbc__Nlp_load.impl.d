lib/kbc/nlp_load.ml: Corpus Dd_relational Dd_text List Printf
