lib/kbc/nlp_load.mli: Dd_relational
