lib/kbc/pipeline.ml: Corpus Dd_core Dd_datalog Dd_fgraph Dd_relational List
