lib/kbc/pipeline.mli: Dd_core Dd_datalog Dd_fgraph
