lib/kbc/quality.ml: Array Dd_core Dd_relational Hashtbl List Pipeline String
