lib/kbc/quality.mli: Corpus Dd_core Dd_relational Hashtbl
