lib/kbc/snapshots.ml: Corpus Dd_core Dd_inference Dd_relational Dd_util List Pipeline Quality
