lib/kbc/snapshots.mli: Corpus Dd_core Dd_fgraph Pipeline Quality
