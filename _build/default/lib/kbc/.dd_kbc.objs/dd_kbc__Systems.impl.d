lib/kbc/systems.ml: Corpus List String
