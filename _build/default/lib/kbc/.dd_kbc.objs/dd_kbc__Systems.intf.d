lib/kbc/systems.mli: Corpus
