module Grounding = Dd_core.Grounding
module Graph = Dd_fgraph.Graph
module Value = Dd_relational.Value
module Table = Dd_util.Table

type extraction = {
  relation : string;
  entity1 : string;
  entity2 : string;
  probability : float;
  correct : bool;
}

type missed_fact = {
  fact : Corpus.fact;
  best_probability : float option;
}

type feature_report = {
  key : string;
  weight : float;
  factors : int;
}

type t = {
  false_positives : extraction list;
  missed : missed_fact list;
  strongest_features : feature_report list;
  threshold : float;
}

let take n l = List.filteri (fun i _ -> i < n) l

let analyze ?(threshold = 0.9) ?(top = 10) grounding marginals ~truth =
  let db = Grounding.database grounding in
  let names = Quality.mention_names db in
  let links = Quality.linking db in
  let resolve mid = Option.bind (Hashtbl.find_opt names mid) (Hashtbl.find_opt links) in
  let truth_set = Hashtbl.create 256 in
  List.iter (fun fact -> Hashtbl.replace truth_set fact ()) truth;
  (* Resolve every query tuple to an entity-level fact with its marginal. *)
  let resolved =
    List.filter_map
      (fun (rel, tuple, p) ->
        if rel <> Pipeline.query_relation || Array.length tuple <> 3 then None
        else
          match (tuple.(0), tuple.(1), tuple.(2)) with
          | Value.Str r, Value.Str m1, Value.Str m2 -> (
            match (resolve m1, resolve m2) with
            | Some e1, Some e2 -> Some ((r, e1, e2), p)
            | _ -> None)
          | _ -> None)
      (Grounding.marginals_by_relation grounding marginals)
  in
  (* Best marginal per entity-level fact. *)
  let best = Hashtbl.create 256 in
  List.iter
    (fun (fact, p) ->
      match Hashtbl.find_opt best fact with
      | Some q when q >= p -> ()
      | _ -> Hashtbl.replace best fact p)
    resolved;
  let false_positives =
    Hashtbl.fold
      (fun (r, e1, e2) p acc ->
        if p > threshold && not (Hashtbl.mem truth_set (r, e1, e2)) then
          { relation = r; entity1 = e1; entity2 = e2; probability = p; correct = false }
          :: acc
        else acc)
      best []
    |> List.sort (fun a b -> compare b.probability a.probability)
    |> take top
  in
  let missed =
    List.filter_map
      (fun fact ->
        match Hashtbl.find_opt best fact with
        | Some p when p > threshold -> None
        | Some p -> Some { fact; best_probability = Some p }
        | None -> Some { fact; best_probability = None })
      truth
    |> List.sort (fun a b ->
           compare
             (Option.value a.best_probability ~default:(-1.0))
             (Option.value b.best_probability ~default:(-1.0)))
    |> take top
  in
  (* Feature influence: learnable weights ranked by |weight|, with the
     number of factors using each. *)
  let g = Grounding.graph grounding in
  let factor_counts = Hashtbl.create 256 in
  Graph.iter_factors
    (fun _ f ->
      let current = try Hashtbl.find factor_counts f.Graph.weight_id with Not_found -> 0 in
      Hashtbl.replace factor_counts f.Graph.weight_id (current + 1))
    g;
  let strongest_features =
    List.init (Graph.num_weights g) (fun w -> w)
    |> List.filter (fun w -> Graph.weight_learnable g w)
    |> List.map (fun w ->
           {
             key = Grounding.weight_key_of grounding w;
             weight = Graph.weight_value g w;
             factors = (try Hashtbl.find factor_counts w with Not_found -> 0);
           })
    |> List.sort (fun a b -> compare (abs_float b.weight) (abs_float a.weight))
    |> take top
  in
  { false_positives; missed; strongest_features; threshold }

let print t =
  Printf.printf "Most confident false positives (threshold %.2f):\n" t.threshold;
  if t.false_positives = [] then print_endline "  (none)"
  else begin
    let table = Table.create [ "p"; "relation"; "e1"; "e2" ] in
    List.iter
      (fun e ->
        Table.add_row table
          [ Table.cell_f e.probability; e.relation; e.entity1; e.entity2 ])
      t.false_positives;
    Table.print table
  end;
  Printf.printf "\nMissed facts (false negatives):\n";
  if t.missed = [] then print_endline "  (none)"
  else begin
    let table = Table.create [ "best p"; "relation"; "e1"; "e2" ] in
    List.iter
      (fun m ->
        let r, e1, e2 = m.fact in
        Table.add_row table
          [
            (match m.best_probability with
            | Some p -> Table.cell_f p
            | None -> "no candidate");
            r;
            e1;
            e2;
          ])
      t.missed;
    Table.print table
  end;
  Printf.printf "\nStrongest learned features:\n";
  let table = Table.create [ "weight"; "factors"; "feature" ] in
  List.iter
    (fun f -> Table.add_row table [ Table.cell_f f.weight; string_of_int f.factors; f.key ])
    t.strongest_features;
  Table.print table
