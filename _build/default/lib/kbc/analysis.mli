(** Error analysis — the fourth phase of the development loop (Section 2.2):
    "Error analysis is the process of understanding the most common
    mistakes (incorrect extractions, too-specific features, candidate
    mistakes, etc.) and deciding how to correct them."

    Where DeepDive users write ad-hoc SQL, this module packages the three
    reports every iteration needs: the highest-confidence false positives,
    the missed facts (false negatives with their best candidate's
    probability), and the most influential learned features with their
    weights and support. *)

module Grounding = Dd_core.Grounding

type extraction = {
  relation : string;
  entity1 : string;
  entity2 : string;
  probability : float;
  correct : bool;
}

type missed_fact = {
  fact : Corpus.fact;
  best_probability : float option;
      (** highest marginal among candidates resolving to the fact; [None]
          when no candidate was ever generated (a recall gap in candidate
          generation, not in inference) *)
}

type feature_report = {
  key : string;  (** grounding weight key, e.g. "FE1|r3,r3_cue1" *)
  weight : float;
  factors : int;  (** groundings using it *)
}

type t = {
  false_positives : extraction list;  (** most confident first *)
  missed : missed_fact list;  (** lowest best-probability first *)
  strongest_features : feature_report list;  (** by |weight| *)
  threshold : float;
}

val analyze :
  ?threshold:float ->
  ?top:int ->
  Grounding.t ->
  float array ->
  truth:Corpus.fact list ->
  t
(** [analyze grounding marginals ~truth] with acceptance [threshold]
    (default 0.9), keeping the [top] (default 10) entries per report. *)

val print : t -> unit
(** Render the three reports to stdout. *)
