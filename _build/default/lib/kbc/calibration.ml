module Grounding = Dd_core.Grounding
module Value = Dd_relational.Value
module Table = Dd_util.Table

type bucket = {
  lower : float;
  upper : float;
  count : int;
  mean_predicted : float;
  empirical_precision : float;
}

type report = {
  buckets : bucket list;
  expected_calibration_error : float;
  total : int;
}

(* Whether an extraction (resolved to entities) is in the hidden KB. *)
let correctness_oracle grounding ~truth =
  let db = Grounding.database grounding in
  let names = Quality.mention_names db in
  let links = Quality.linking db in
  let truth_set = Hashtbl.create 256 in
  List.iter (fun fact -> Hashtbl.replace truth_set fact ()) truth;
  fun (rel, tuple, _p) ->
    if rel <> Pipeline.query_relation || Array.length tuple <> 3 then None
    else
      match (tuple.(0), tuple.(1), tuple.(2)) with
      | Value.Str r, Value.Str m1, Value.Str m2 ->
        let resolve mid =
          Option.bind (Hashtbl.find_opt names mid) (Hashtbl.find_opt links)
        in
        (match (resolve m1, resolve m2) with
        | Some e1, Some e2 -> Some (Hashtbl.mem truth_set (r, e1, e2))
        | _ -> None)
      | _ -> None

let evaluate ?(bins = 10) grounding marginals ~truth =
  let oracle = correctness_oracle grounding ~truth in
  let g = Grounding.graph grounding in
  let is_prediction (rel, tuple, _) =
    (* Evidence variables are training data, not predictions. *)
    match Grounding.var_of grounding rel tuple with
    | Some v -> Dd_fgraph.Graph.evidence_of g v = Dd_fgraph.Graph.Query
    | None -> false
  in
  let sums = Array.make bins 0.0 in
  let counts = Array.make bins 0 in
  let corrects = Array.make bins 0 in
  let total = ref 0 in
  List.iter
    (fun ((_, _, p) as entry) ->
      if not (is_prediction entry) then ()
      else
      match oracle entry with
      | None -> ()
      | Some correct ->
        let bin = min (bins - 1) (int_of_float (p *. float_of_int bins)) in
        sums.(bin) <- sums.(bin) +. p;
        counts.(bin) <- counts.(bin) + 1;
        if correct then corrects.(bin) <- corrects.(bin) + 1;
        incr total)
    (Grounding.marginals_by_relation grounding marginals);
  let buckets =
    List.init bins (fun b ->
        let count = counts.(b) in
        {
          lower = float_of_int b /. float_of_int bins;
          upper = float_of_int (b + 1) /. float_of_int bins;
          count;
          mean_predicted = (if count = 0 then 0.0 else sums.(b) /. float_of_int count);
          empirical_precision =
            (if count = 0 then 0.0 else float_of_int corrects.(b) /. float_of_int count);
        })
  in
  let ece =
    if !total = 0 then 0.0
    else
      List.fold_left
        (fun acc bucket ->
          acc
          +. float_of_int bucket.count /. float_of_int !total
             *. abs_float (bucket.mean_predicted -. bucket.empirical_precision))
        0.0 buckets
  in
  { buckets; expected_calibration_error = ece; total = !total }

let to_table report =
  let table = Table.create [ "probability"; "count"; "mean predicted"; "actual precision" ] in
  List.iter
    (fun bucket ->
      if bucket.count > 0 then
        Table.add_row table
          [
            Printf.sprintf "[%.1f, %.1f)" bucket.lower bucket.upper;
            string_of_int bucket.count;
            Table.cell_f bucket.mean_predicted;
            Table.cell_f bucket.empirical_precision;
          ])
    report.buckets;
  table
