(** Probability calibration — the paper's core quality contract:
    "DeepDive also produces marginal probabilities that are calibrated: if
    one examined all facts with probability 0.9, we would expect that
    approximately 90% of these facts would be correct."

    Buckets the predicted marginals and compares each bucket's mean
    predicted probability to its empirical precision against the hidden
    KB, and summarizes the gap as the expected calibration error. *)

module Grounding = Dd_core.Grounding

type bucket = {
  lower : float;
  upper : float;
  count : int;  (** extractions falling in the bucket *)
  mean_predicted : float;
  empirical_precision : float;  (** fraction actually in the KB *)
}

type report = {
  buckets : bucket list;
  expected_calibration_error : float;
      (** count-weighted mean |predicted - empirical| over non-empty buckets *)
  total : int;
}

val evaluate :
  ?bins:int ->
  Grounding.t ->
  float array ->
  truth:Corpus.fact list ->
  report
(** [evaluate grounding marginals ~truth] buckets every *predicted* query
    tuple's marginal into [bins] (default 10) equal-width bins; variables
    clamped as evidence are training data, not predictions, and are
    excluded. *)

val to_table : report -> Dd_util.Table.t
(** Render as "range / count / predicted / actual" rows. *)
