module Value = Dd_relational.Value
module Tuple = Dd_relational.Tuple
module Schema = Dd_relational.Schema
module Database = Dd_relational.Database
module Dred = Dd_datalog.Dred
module Prng = Dd_util.Prng

type config = {
  name : string;
  docs : int;
  sentences_per_doc : int;
  relations : int;
  entities : int;
  truth_pairs_per_relation : int;
  known_fraction : float;
  related_rate : float;
  phrase_noise : float;
  phrase_corruption : float;
  phrases_per_relation : int;
  phrase_ambiguity : float;
  linking_noise : float;
  pair_repeat : float;
  seed : int;
}

let default =
  {
    name = "default";
    docs = 100;
    sentences_per_doc = 2;
    relations = 4;
    entities = 60;
    truth_pairs_per_relation = 20;
    known_fraction = 0.5;
    related_rate = 0.6;
    phrase_noise = 0.08;
    phrase_corruption = 0.05;
    phrases_per_relation = 4;
    phrase_ambiguity = 0.15;
    linking_noise = 0.03;
    pair_repeat = 0.25;
    seed = 7;
  }

type fact = string * string * string

type t = {
  config : config;
  static_tables : (string * Tuple.t list) list;
  doc_tables : (string * Tuple.t list) list array;
  truth : fact list;
}

let s = Value.str
let i = Value.int

let input_schemas =
  [
    ( "sentence",
      Schema.make
        [ ("doc", Value.TInt); ("sid", Value.TInt); ("phrase", Value.TStr); ("ctx", Value.TStr) ]
    );
    ( "mention",
      Schema.make
        [ ("sid", Value.TInt); ("mid", Value.TStr); ("name", Value.TStr); ("pos", Value.TInt) ]
    );
    ("el", Schema.make [ ("name", Value.TStr); ("eid", Value.TStr) ]);
    ("rel", Schema.make [ ("r", Value.TStr) ]);
    ("phrase_rel", Schema.make [ ("phrase", Value.TStr); ("r", Value.TStr) ]);
    ("known", Schema.make [ ("r", Value.TStr); ("e1", Value.TStr); ("e2", Value.TStr) ]);
    ("disjoint", Schema.make [ ("r1", Value.TStr); ("r2", Value.TStr) ]);
    ("true_rel", Schema.make [ ("r", Value.TStr); ("e1", Value.TStr); ("e2", Value.TStr) ]);
  ]

let rel_name r = Printf.sprintf "r%d" r

let entity_id e = Printf.sprintf "e%d" e

(* A few entities share names so entity linking has genuine ambiguity. *)
let entity_name cfg e = Printf.sprintf "person_%d" (e mod max 1 (cfg.entities * 9 / 10))

let cue_phrase r k = Printf.sprintf "%s_cue%d" (rel_name r) k

let noise_phrase k = Printf.sprintf "noise%d" k

let ctx_token cfg rng r related =
  if related && not (Prng.bernoulli rng 0.3) then
    Printf.sprintf "ctx_%s_%d" (rel_name r) (Prng.int_below rng 3)
  else Printf.sprintf "ctx_bg_%d" (Prng.int_below rng (max 4 (cfg.relations * 2)))

let generate cfg =
  let rng = Prng.create cfg.seed in
  let nrels = max 1 cfg.relations in
  (* Hidden ground truth: per relation, a set of entity pairs. *)
  let truth = ref [] in
  let truth_set = Hashtbl.create 256 in
  for r = 0 to nrels - 1 do
    let wanted = cfg.truth_pairs_per_relation in
    let made = ref 0 and attempts = ref 0 in
    while !made < wanted && !attempts < wanted * 20 do
      incr attempts;
      let e1 = Prng.int_below rng cfg.entities and e2 = Prng.int_below rng cfg.entities in
      if e1 <> e2 && not (Hashtbl.mem truth_set (r, e1, e2)) then begin
        Hashtbl.replace truth_set (r, e1, e2) ();
        truth := (rel_name r, entity_id e1, entity_id e2) :: !truth;
        incr made
      end
    done
  done;
  let truth_array = Array.of_list !truth in
  let truth_by_rel =
    Array.init nrels (fun r ->
        Array.of_list
          (List.filter_map
             (fun (rn, e1, e2) -> if rn = rel_name r then Some (e1, e2) else None)
             !truth))
  in
  (* Incomplete KB for distant supervision. *)
  let known =
    List.filter (fun _ -> Prng.bernoulli rng cfg.known_fraction) !truth
  in
  (* Disjoint relation pairs (negative supervision). *)
  let disjoint =
    List.init nrels (fun r -> (rel_name r, rel_name ((r + 1) mod nrels)))
    |> List.filter (fun (a, b) -> a <> b)
  in
  (* Candidate dictionary: each cue maps to its relation, sometimes to a
     second one (ambiguity); some noise phrases map to random relations so
     candidate recall stays high but precision low. *)
  let phrase_rel = ref [] in
  for r = 0 to nrels - 1 do
    for k = 0 to cfg.phrases_per_relation - 1 do
      phrase_rel := (cue_phrase r k, rel_name r) :: !phrase_rel;
      if Prng.bernoulli rng cfg.phrase_ambiguity && nrels > 1 then begin
        let other = (r + 1 + Prng.int_below rng (nrels - 1)) mod nrels in
        phrase_rel := (cue_phrase r k, rel_name other) :: !phrase_rel
      end
    done
  done;
  let n_noise_phrases = max 4 (nrels * 2) in
  for k = 0 to n_noise_phrases - 1 do
    if Prng.bernoulli rng 0.3 then
      phrase_rel := (noise_phrase k, rel_name (Prng.int_below rng nrels)) :: !phrase_rel
  done;
  (* Entity linking with noise. *)
  let el =
    List.init cfg.entities (fun e ->
        let eid =
          if Prng.bernoulli rng cfg.linking_noise then
            entity_id (Prng.int_below rng cfg.entities)
          else entity_id e
        in
        (entity_name cfg e, eid))
    |> List.sort_uniq compare
  in
  (* Documents. *)
  let name_of_eid = Hashtbl.create cfg.entities in
  for e = 0 to cfg.entities - 1 do
    Hashtbl.replace name_of_eid (entity_id e) (entity_name cfg e)
  done;
  let recent_pairs = ref [] in
  let sid = ref 0 in
  let doc_tables =
    Array.init cfg.docs (fun doc ->
        let sentences = ref [] and mentions = ref [] in
        for _ = 1 to cfg.sentences_per_doc do
          let id = !sid in
          incr sid;
          let related = Prng.bernoulli rng cfg.related_rate && Array.length truth_array > 0 in
          let r, e1, e2 =
            if related then begin
              let reuse =
                !recent_pairs <> [] && Prng.bernoulli rng cfg.pair_repeat
              in
              if reuse then Prng.choice rng (Array.of_list !recent_pairs)
              else begin
                let r = Prng.int_below rng nrels in
                if Array.length truth_by_rel.(r) = 0 then
                  let rn, e1, e2 = truth_array.(Prng.int_below rng (Array.length truth_array)) in
                  (rn, e1, e2)
                else begin
                  let e1, e2 = Prng.choice rng truth_by_rel.(r) in
                  (rel_name r, e1, e2)
                end
              end
            end
            else begin
              let e1 = Prng.int_below rng cfg.entities in
              let e2 = (e1 + 1 + Prng.int_below rng (max 1 (cfg.entities - 1))) mod cfg.entities in
              (rel_name (Prng.int_below rng nrels), entity_id e1, entity_id e2)
            end
          in
          if related then begin
            recent_pairs := (r, e1, e2) :: !recent_pairs;
            if List.length !recent_pairs > 20 then
              recent_pairs := List.filteri (fun idx _ -> idx < 20) !recent_pairs
          end;
          let rnum = int_of_string (String.sub r 1 (String.length r - 1)) in
          let phrase =
            if Prng.bernoulli rng cfg.phrase_corruption then
              Printf.sprintf "garbled%d" (Prng.int_below rng 1000)
            else if related then
              if Prng.bernoulli rng 0.9 then
                cue_phrase rnum (Prng.int_below rng cfg.phrases_per_relation)
              else noise_phrase (Prng.int_below rng n_noise_phrases)
            else if Prng.bernoulli rng cfg.phrase_noise then
              cue_phrase rnum (Prng.int_below rng cfg.phrases_per_relation)
            else noise_phrase (Prng.int_below rng n_noise_phrases)
          in
          let ctx = ctx_token cfg rng rnum related in
          let name1 = try Hashtbl.find name_of_eid e1 with Not_found -> e1 in
          let name2 = try Hashtbl.find name_of_eid e2 with Not_found -> e2 in
          sentences := [| i doc; i id; s phrase; s ctx |] :: !sentences;
          mentions :=
            [| i id; s (Printf.sprintf "m%d_1" id); s name2; i 1 |]
            :: [| i id; s (Printf.sprintf "m%d_0" id); s name1; i 0 |]
            :: !mentions
        done;
        [ ("sentence", List.rev !sentences); ("mention", List.rev !mentions) ])
  in
  let static_tables =
    [
      ("rel", List.init nrels (fun r -> [| s (rel_name r) |]));
      ("phrase_rel", List.map (fun (p, r) -> [| s p; s r |]) (List.sort_uniq compare !phrase_rel));
      ("el", List.map (fun (n, e) -> [| s n; s e |]) el);
      ("known", List.map (fun (r, e1, e2) -> [| s r; s e1; s e2 |]) known);
      ("disjoint", List.map (fun (a, b) -> [| s a; s b |]) disjoint);
      ("true_rel", List.map (fun (r, e1, e2) -> [| s r; s e1; s e2 |]) !truth);
    ]
  in
  { config = cfg; static_tables; doc_tables; truth = !truth }

let load t ?docs db =
  let docs = match docs with Some d -> min d t.config.docs | None -> t.config.docs in
  List.iter
    (fun (name, schema) ->
      if not (Database.mem db name) then ignore (Database.create_table db name schema))
    input_schemas;
  List.iter (fun (name, rows) -> Database.insert_rows db name rows) t.static_tables;
  for doc = 0 to docs - 1 do
    List.iter (fun (name, rows) -> Database.insert_rows db name rows) t.doc_tables.(doc)
  done

let doc_delta t ~from_doc ~until_doc =
  let delta = Dred.Delta.create () in
  for doc = max 0 from_doc to min t.config.docs until_doc - 1 do
    List.iter
      (fun (name, rows) -> List.iter (fun row -> Dred.Delta.insert delta name row) rows)
      t.doc_tables.(doc)
  done;
  delta

let statistics t =
  let sentences =
    Array.fold_left
      (fun acc tables ->
        acc + List.length (try List.assoc "sentence" tables with Not_found -> []))
      0 t.doc_tables
  in
  Printf.sprintf "%s: %d docs, %d sentences, %d relations, %d true facts" t.config.name
    t.config.docs sentences t.config.relations (List.length t.truth)
