(** Synthetic KBC corpora.

    The paper evaluates on five proprietary corpora (1.8M news articles,
    ad listings, journal articles, ...).  We simulate them: a generator
    with a hidden ground-truth knowledge base emits documents whose
    sentences mention entity pairs connected by indicative or noise
    phrases.  The knobs mirror the axes the paper says distinguish its five
    systems — text quality (phrase corruption), relational ambiguity
    (phrase/entity ambiguity), scale, and correlation density — so the
    factor graphs they induce stress the same tradeoffs.

    Base tables produced:
    - [sentence(doc, sid, phrase, ctx)] — one row per sentence, with the
      connective phrase between its two person mentions and a secondary
      context token (the "deeper NLP feature" of rule FE2);
    - [mention(sid, mid, name, pos)] — the two entity mentions;
    - [el(name, eid)] — entity linking (with configurable noise);
    - [rel(r)], [phrase_rel(phrase, r)] — the candidate dictionary
      (low-precision, high-recall, as candidate mappings must be);
    - [known(r, e1, e2)] — the incomplete KB used for distant supervision;
    - [disjoint(r1, r2)] — relation pairs used for negative examples;
    - [true_rel(r, e1, e2)] — held-out ground truth (never used by rules).

    Documents are materialized per-document so that experiments can load a
    prefix and feed the rest through incremental grounding. *)

module Database = Dd_relational.Database
module Tuple = Dd_relational.Tuple
module Schema = Dd_relational.Schema
module Dred = Dd_datalog.Dred

type config = {
  name : string;
  docs : int;
  sentences_per_doc : int;
  relations : int;
  entities : int;
  truth_pairs_per_relation : int;
  known_fraction : float;  (** fraction of truth exposed as [known] *)
  related_rate : float;  (** fraction of sentences about a true fact *)
  phrase_noise : float;  (** unrelated pair drawing an indicative phrase *)
  phrase_corruption : float;  (** phrase replaced by garbage (bad text) *)
  phrases_per_relation : int;
  phrase_ambiguity : float;  (** cue phrase also mapped to a second relation *)
  linking_noise : float;  (** mention linked to a wrong entity *)
  pair_repeat : float;  (** sentence reuses an earlier pair (correlations) *)
  seed : int;
}

val default : config

type fact = string * string * string  (** (relation, entity1, entity2) *)

type t = {
  config : config;
  static_tables : (string * Tuple.t list) list;
  doc_tables : (string * Tuple.t list) list array;  (** indexed by doc id *)
  truth : fact list;
}

val input_schemas : (string * Schema.t) list
(** Schemas of every base table (shared by all corpora). *)

val generate : config -> t

val load : t -> ?docs:int -> Database.t -> unit
(** Create base tables and load the static tables plus the first [docs]
    documents (default: all). *)

val doc_delta : t -> from_doc:int -> until_doc:int -> Dred.Delta.t
(** Insertions adding documents [from_doc, until_doc) — feed this to
    incremental grounding. *)

val statistics : t -> string
(** One-line summary (docs, relations, sentences, truth size). *)
