module Learner = Dd_inference.Learner
module Prng = Dd_util.Prng

type t = {
  nfeatures : int;
  train_early : Learner.lr_data;
  train_late : Learner.lr_data;
  test : Learner.lr_data;
}

(* Each email draws [k] features: spam emails prefer the spam pool, ham the
   ham pool; the pools swap membership at the drift point. *)
let generate ?(emails = 2000) ?(features = 120) ?(drift_at = 0.2) ~seed () =
  let rng = Prng.create seed in
  let pool_size = features / 3 in
  (* The drift retires a quarter of each pool in favour of previously
     neutral vocabulary: most of the pre-drift model stays valid (concept
     drift, not a different task), but both learners must pick up the new
     indicative features. *)
  let fresh = pool_size / 4 in
  let spam_pool phase =
    if phase = 0 then Array.init pool_size (fun k -> k)
    else
      Array.init pool_size (fun k ->
          if k < pool_size - fresh then k else (2 * pool_size) + (k mod fresh))
  in
  let ham_pool phase =
    if phase = 0 then Array.init pool_size (fun k -> pool_size + k)
    else
      Array.init pool_size (fun k ->
          if k < pool_size - fresh then pool_size + k
          else (2 * pool_size) + fresh + (k mod fresh))
  in
  let background = Array.init features (fun k -> k) in
  let make_email phase =
    let label = Prng.bernoulli rng 0.45 in
    let pool = if label then spam_pool phase else ham_pool phase in
    let k = 4 + Prng.int_below rng 4 in
    let chosen = Hashtbl.create 8 in
    for _ = 1 to k do
      let f =
        if Prng.bernoulli rng 0.75 then Prng.choice rng pool else Prng.choice rng background
      in
      Hashtbl.replace chosen f ()
    done;
    (Array.of_seq (Hashtbl.to_seq_keys chosen), label)
  in
  let stream =
    Array.init emails (fun idx ->
        let phase = if float_of_int idx /. float_of_int emails < drift_at then 0 else 1 in
        make_email phase)
  in
  let slice lo hi = Array.sub stream lo (hi - lo) in
  let cut10 = emails / 10 and cut30 = emails * 3 / 10 in
  {
    nfeatures = features;
    train_early = { Learner.nfeatures = features; rows = slice 0 cut10 };
    train_late = { Learner.nfeatures = features; rows = slice 0 cut30 };
    test = { Learner.nfeatures = features; rows = slice cut30 emails };
  }
