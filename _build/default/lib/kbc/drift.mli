(** Concept-drift workload (Appendix B.4, Figure 17).

    A stream of synthetic "emails" whose spam-indicating features change
    distribution partway through, standing in for the chronological email
    dataset of Katakis et al. used by the paper.  A logistic-regression
    classifier (the [Class(x) :- R(x, f)] one-liner of Example 2.6) is
    trained on a prefix and evaluated on the final 70%: Rerun trains on the
    30% prefix from scratch, Incremental materializes on the 10% prefix and
    warmstarts on the 30% prefix. *)

module Learner = Dd_inference.Learner

type t = {
  nfeatures : int;
  train_early : Learner.lr_data;  (** first 10% (materialization time) *)
  train_late : Learner.lr_data;  (** first 30% (update time) *)
  test : Learner.lr_data;  (** last 70% *)
}

val generate :
  ?emails:int -> ?features:int -> ?drift_at:float -> seed:int -> unit -> t
(** [drift_at] (default 0.2) is the stream position where the feature
    distribution shifts — inside the training prefix, so the late training
    data straddles the drift. *)
