module Database = Dd_relational.Database
module Value = Dd_relational.Value
module Tokenizer = Dd_text.Tokenizer
module Mention_finder = Dd_text.Mention_finder
module Features = Dd_text.Features

type stats = {
  documents : int;
  sentences : int;
  pairs : int;
  mentions_found : int;
}

let pair_rows ~first_sid ~entity_names docs =
  let dict = Mention_finder.dictionary entity_names in
  let sentence_rows = ref [] and mention_rows = ref [] in
  let sid = ref first_sid in
  let sentences = ref 0 and pairs = ref 0 and mentions_found = ref 0 in
  List.iter
    (fun (doc_id, text) ->
      List.iter
        (fun (_, sentence) ->
          incr sentences;
          let tokens = Tokenizer.tokenize sentence in
          let mentions = Mention_finder.find dict tokens in
          mentions_found := !mentions_found + List.length mentions;
          (* Every ordered pair of distinct mentions becomes a candidate
             row group. *)
          List.iteri
            (fun i m1 ->
              List.iteri
                (fun j m2 ->
                  if i < j then begin
                    let id = !sid in
                    incr sid;
                    incr pairs;
                    let ctx = Features.{ tokens; m1; m2 } in
                    let phrase =
                      match Features.phrase_between ctx with
                      | Some p -> p
                      | None -> "<none>"
                    in
                    sentence_rows :=
                      [|
                        Value.int doc_id;
                        Value.int id;
                        Value.str phrase;
                        Value.str (Features.mention_distance_bucket ctx);
                      |]
                      :: !sentence_rows;
                    mention_rows :=
                      [|
                        Value.int id;
                        Value.str (Printf.sprintf "m%d_1" id);
                        Value.str m2.Mention_finder.surface;
                        Value.int 1;
                      |]
                      :: [|
                           Value.int id;
                           Value.str (Printf.sprintf "m%d_0" id);
                           Value.str m1.Mention_finder.surface;
                           Value.int 0;
                         |]
                      :: !mention_rows
                  end)
                mentions)
            mentions)
        (Tokenizer.sentences text))
    docs;
  ( [ ("sentence", List.rev !sentence_rows); ("mention", List.rev !mention_rows) ],
    {
      documents = List.length docs;
      sentences = !sentences;
      pairs = !pairs;
      mentions_found = !mentions_found;
    } )

let load_documents ?(first_sid = 0) db ~entity_names docs =
  let tables, stats = pair_rows ~first_sid ~entity_names docs in
  List.iter
    (fun (name, rows) ->
      (match Database.find_opt db name with
      | Some _ -> ()
      | None ->
        ignore (Database.create_table db name (List.assoc name Corpus.input_schemas)));
      Database.insert_rows db name rows)
    tables;
  stats
