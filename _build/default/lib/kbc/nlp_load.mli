(** From raw documents to base tables — the candidate generation & feature
    extraction front of Figure 1, built on [Dd_text].

    Each document is split into sentences and scanned with a
    dictionary-based mention finder; every ordered pair of distinct
    mentions in a sentence yields one row group in the standard base-table
    layout (see {!Corpus.input_schemas}):

    - [sentence(doc, sid, phrase, ctx)] — [phrase] is the
      {!Dd_text.Features.phrase_between} feature of the pair (or
      ["<none>"]), [ctx] the distance bucket;
    - [mention(sid, mid, name, pos)] — the two mentions with their surface
      forms.

    A mention *pair* gets its own synthetic sentence id, which is exactly
    the candidate granularity rule R1 consumes. *)

module Database = Dd_relational.Database

type stats = {
  documents : int;
  sentences : int;
  pairs : int;  (** mention pairs emitted (rows in [sentence]) *)
  mentions_found : int;
}

val load_documents :
  ?first_sid:int ->
  Database.t ->
  entity_names:string list ->
  (int * string) list ->
  stats
(** [load_documents db ~entity_names docs] tokenizes, finds mentions and
    inserts rows; tables are created when missing.  [first_sid] (default 0)
    lets successive loads keep ids unique. *)

val pair_rows :
  first_sid:int ->
  entity_names:string list ->
  (int * string) list ->
  (string * Dd_relational.Tuple.t list) list * stats
(** The rows that {!load_documents} would insert, for callers that want to
    feed them through {!Dd_datalog.Dred.Delta} instead (incremental
    document arrival). *)
