module Grounding = Dd_core.Grounding
module Database = Dd_relational.Database
module Relation = Dd_relational.Relation
module Value = Dd_relational.Value
module Tuple = Dd_relational.Tuple

type score = {
  precision : float;
  recall : float;
  f1 : float;
  predicted : int;
  correct : int;
}

(* mid -> mention name, from the mention base table. *)
let mention_names db =
  let table = Hashtbl.create 256 in
  (match Database.find_opt db "mention" with
  | None -> ()
  | Some rel ->
    Relation.iter
      (fun tuple _ ->
        match (tuple.(1), tuple.(2)) with
        | Value.Str mid, Value.Str name -> Hashtbl.replace table mid name
        | _ -> ())
      rel);
  table

(* name -> entity id (first linked entity in sorted order, mirroring a
   resolution heuristic). *)
let linking db =
  let table = Hashtbl.create 256 in
  (match Database.find_opt db "el" with
  | None -> ()
  | Some rel ->
    Relation.iter
      (fun tuple _ ->
        match (tuple.(0), tuple.(1)) with
        | Value.Str name, Value.Str eid -> (
          match Hashtbl.find_opt table name with
          | Some existing when String.compare existing eid <= 0 -> ()
          | _ -> Hashtbl.replace table name eid)
        | _ -> ())
      rel);
  table

let evaluate ?(threshold = 0.9) grounding marginals ~truth =
  let db = Grounding.database grounding in
  let names = mention_names db in
  let links = linking db in
  let resolve mid =
    match Hashtbl.find_opt names mid with
    | None -> None
    | Some name -> Hashtbl.find_opt links name
  in
  let predicted = Hashtbl.create 256 in
  List.iter
    (fun (rel, tuple, p) ->
      if p > threshold && Array.length tuple = 3 && rel = Pipeline.query_relation then begin
        match (tuple.(0), tuple.(1), tuple.(2)) with
        | Value.Str r, Value.Str m1, Value.Str m2 -> (
          match (resolve m1, resolve m2) with
          | Some e1, Some e2 -> Hashtbl.replace predicted (r, e1, e2) ()
          | _ -> ())
        | _ -> ()
      end)
    (Grounding.marginals_by_relation grounding marginals);
  let truth_set = Hashtbl.create 256 in
  List.iter (fun (r, e1, e2) -> Hashtbl.replace truth_set (r, e1, e2) ()) truth;
  let correct =
    Hashtbl.fold (fun fact () acc -> if Hashtbl.mem truth_set fact then acc + 1 else acc)
      predicted 0
  in
  let npred = Hashtbl.length predicted in
  let ntruth = List.length truth in
  let precision = if npred = 0 then 0.0 else float_of_int correct /. float_of_int npred in
  let recall = if ntruth = 0 then 0.0 else float_of_int correct /. float_of_int ntruth in
  let f1 =
    if precision +. recall = 0.0 then 0.0
    else 2.0 *. precision *. recall /. (precision +. recall)
  in
  { precision; recall; f1; predicted = npred; correct }

type agreement = {
  high_conf_jaccard : float;
  frac_diff_gt : float;
  max_diff : float;
}

let compare_marginals a b =
  let key (rel, tuple, _) = rel ^ "#" ^ Tuple.to_string tuple in
  let table = Hashtbl.create 256 in
  List.iter (fun ((_, _, p) as entry) -> Hashtbl.replace table (key entry) p) b;
  let high_a = ref 0 and high_b = ref 0 and high_both = ref 0 in
  let diffs = ref 0 and total = ref 0 and max_diff = ref 0.0 in
  List.iter
    (fun ((_, _, pa) as entry) ->
      let pb = try Hashtbl.find table (key entry) with Not_found -> 0.0 in
      incr total;
      let d = abs_float (pa -. pb) in
      if d > 0.05 then incr diffs;
      if d > !max_diff then max_diff := d;
      if pa > 0.9 then incr high_a;
      if pb > 0.9 then incr high_b;
      if pa > 0.9 && pb > 0.9 then incr high_both)
    a;
  (* Count high-confidence facts present only in [b]. *)
  let keys_a = Hashtbl.create 256 in
  List.iter (fun entry -> Hashtbl.replace keys_a (key entry) ()) a;
  List.iter
    (fun ((_, _, pb) as entry) ->
      if not (Hashtbl.mem keys_a (key entry)) then begin
        incr total;
        if pb > 0.05 then incr diffs;
        if pb > 0.9 then incr high_b
      end)
    b;
  let union = !high_a + !high_b - !high_both in
  {
    high_conf_jaccard =
      (if union = 0 then 1.0 else float_of_int !high_both /. float_of_int union);
    frac_diff_gt = (if !total = 0 then 0.0 else float_of_int !diffs /. float_of_int !total);
    max_diff = !max_diff;
  }
