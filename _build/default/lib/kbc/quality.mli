(** Extraction quality: precision / recall / F1 against the generator's
    hidden knowledge base, plus marginal-similarity diagnostics used to
    compare Incremental against Rerun (Section 4.2 reports that 99% of
    high-confidence facts agree and fewer than 4% of probabilities differ
    by more than 0.05). *)

module Grounding = Dd_core.Grounding
module Tuple = Dd_relational.Tuple

val mention_names : Dd_relational.Database.t -> (string, string) Hashtbl.t
(** Mention id -> surface name, from the [mention] base table. *)

val linking : Dd_relational.Database.t -> (string, string) Hashtbl.t
(** Surface name -> entity id, from the [el] table (deterministic
    first-candidate resolution). *)

type score = {
  precision : float;
  recall : float;
  f1 : float;
  predicted : int;
  correct : int;
}

val evaluate :
  ?threshold:float ->
  Grounding.t ->
  float array ->
  truth:Corpus.fact list ->
  score
(** Facts are query tuples with marginal above [threshold] (default 0.9),
    resolved to entity pairs through the mention and entity-linking
    tables. *)

type agreement = {
  high_conf_jaccard : float;
      (** overlap of > 0.9 facts between the two marginal sets *)
  frac_diff_gt : float;  (** fraction of tuples with |p1 - p2| > 0.05 *)
  max_diff : float;
}

val compare_marginals :
  (string * Tuple.t * float) list ->
  (string * Tuple.t * float) list ->
  agreement
(** Compare two per-tuple marginal sets (e.g. Incremental vs Rerun); tuples
    missing from one side count as probability 0. *)
