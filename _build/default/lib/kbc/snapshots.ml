module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Program = Dd_core.Program
module Database = Dd_relational.Database
module Timer = Dd_util.Timer

type row = {
  rule : Pipeline.rule_id;
  rerun_seconds : float;
  incremental_seconds : float;
  grounding_seconds : float;
  speedup : float;
  strategy : string;
  acceptance : float option;
  f1_incremental : float;
  f1_rerun : float;
  agreement : Quality.agreement;
}

type result = {
  rows : row list;
  materialization_seconds : float;
  corpus_line : string;
  graph_vars : int;
  graph_factors : int;
}

let run ?(options = Engine.default_options) ?semantics ?(skip_rerun = false) corpus =
  let db = Database.create () in
  Corpus.load corpus db;
  let base = Pipeline.base_program ?semantics () in
  let mat_timer = Timer.start () in
  let engine = Engine.create ~options db base in
  let materialization_seconds = Timer.elapsed_s mat_timer in
  (* Rerun's database evolves the same way; it re-creates everything from
     the same inputs at every snapshot. *)
  let rules_so_far = ref [] in
  let rows =
    List.map
      (fun rule_id ->
        let update = Pipeline.update_of ?semantics rule_id in
        rules_so_far := !rules_so_far @ update.Grounding.new_rules;
        let report = Engine.apply_update engine update in
        let incremental_seconds = report.Engine.learning_seconds +. report.Engine.inference_seconds in
        let f1_incremental =
          (Quality.evaluate (Engine.grounding engine) report.Engine.marginals
             ~truth:corpus.Corpus.truth)
            .Quality.f1
        in
        let rerun_seconds, f1_rerun, agreement =
          if skip_rerun then
            (0.0, 0.0, { Quality.high_conf_jaccard = 1.0; frac_diff_gt = 0.0; max_diff = 0.0 })
          else begin
            let rerun_db = Database.create () in
            Corpus.load corpus rerun_db;
            let rerun_prog = Program.add_rules (Pipeline.base_program ?semantics ()) !rules_so_far in
            let timer = Timer.start () in
            let rerun_grounding = Grounding.ground rerun_db rerun_prog in
            let rng = Dd_util.Prng.create options.Engine.seed in
            Dd_inference.Learner.train_cd
              ~options:
                {
                  Dd_inference.Learner.default_cd with
                  Dd_inference.Learner.epochs = options.Engine.initial_learning_epochs;
                }
              rng
              (Grounding.graph rerun_grounding);
            let rerun_marginals =
              Dd_inference.Gibbs.marginals ~burn_in:options.Engine.burn_in rng
                (Grounding.graph rerun_grounding) ~sweeps:options.Engine.inference_chain
            in
            let seconds = Timer.elapsed_s timer in
            let f1 =
              (Quality.evaluate rerun_grounding rerun_marginals ~truth:corpus.Corpus.truth)
                .Quality.f1
            in
            let agreement =
              Quality.compare_marginals
                (Grounding.marginals_by_relation (Engine.grounding engine)
                   report.Engine.marginals)
                (Grounding.marginals_by_relation rerun_grounding rerun_marginals)
            in
            (seconds, f1, agreement)
          end
        in
        {
          rule = rule_id;
          rerun_seconds;
          incremental_seconds;
          grounding_seconds = report.Engine.grounding_seconds;
          speedup =
            (if incremental_seconds > 0.0 then rerun_seconds /. incremental_seconds else 0.0);
          strategy = Engine.strategy_used_to_string report.Engine.strategy;
          acceptance = report.Engine.acceptance_rate;
          f1_incremental;
          f1_rerun;
          agreement;
        })
      Pipeline.all_rule_ids
  in
  let stats = Grounding.stats (Engine.grounding engine) in
  {
    rows;
    materialization_seconds;
    corpus_line = Corpus.statistics corpus;
    graph_vars = stats.Grounding.variables;
    graph_factors = stats.Grounding.factors;
  }
