(** The six-snapshot development-loop experiment (Section 4.2).

    For one corpus, run the rule sequence A1, FE1, FE2, I1, S1, S2 twice:
    Incremental applies each rule as an update to a live engine (one
    materialization up front, amortized across the sequence); Rerun
    re-grounds, re-learns and re-infers the whole program from scratch at
    every step.  Each row reports wall-clock, strategy, acceptance rate, F1
    against the hidden KB, and the marginal agreement between the two
    systems. *)

module Engine = Dd_core.Engine

type row = {
  rule : Pipeline.rule_id;
  rerun_seconds : float;
  incremental_seconds : float;  (** learning + inference (post-grounding) *)
  grounding_seconds : float;
  speedup : float;
  strategy : string;
  acceptance : float option;
  f1_incremental : float;
  f1_rerun : float;
  agreement : Quality.agreement;
}

type result = {
  rows : row list;
  materialization_seconds : float;
  corpus_line : string;
  graph_vars : int;
  graph_factors : int;
}

val run :
  ?options:Engine.options ->
  ?semantics:Dd_fgraph.Semantics.t ->
  ?skip_rerun:bool ->
  Corpus.t ->
  result
(** [skip_rerun] (default false) omits the Rerun baseline (rows then carry
    zeros for its fields) — used by lesion studies that only need the
    incremental side. *)
