let adversarial =
  {
    Corpus.default with
    Corpus.name = "Adversarial";
    docs = 160;
    sentences_per_doc = 1;
    relations = 1;
    entities = 50;
    truth_pairs_per_relation = 30;
    phrase_corruption = 0.3;
    phrase_noise = 0.15;
    linking_noise = 0.08;
    related_rate = 0.55;
    pair_repeat = 0.1;
    seed = 11;
  }

let news =
  {
    Corpus.default with
    Corpus.name = "News";
    docs = 90;
    sentences_per_doc = 2;
    relations = 8;
    entities = 70;
    truth_pairs_per_relation = 10;
    phrase_corruption = 0.08;
    phrase_ambiguity = 0.2;
    linking_noise = 0.04;
    related_rate = 0.6;
    pair_repeat = 0.3;
    seed = 12;
  }

let genomics =
  {
    Corpus.default with
    Corpus.name = "Genomics";
    docs = 40;
    sentences_per_doc = 2;
    relations = 3;
    entities = 40;
    truth_pairs_per_relation = 12;
    phrase_corruption = 0.01;
    phrase_ambiguity = 0.4;
    phrase_noise = 0.1;
    related_rate = 0.65;
    pair_repeat = 0.25;
    seed = 13;
  }

let pharma =
  {
    Corpus.default with
    Corpus.name = "Pharma";
    docs = 80;
    sentences_per_doc = 2;
    relations = 5;
    entities = 60;
    truth_pairs_per_relation = 12;
    phrase_corruption = 0.03;
    phrase_ambiguity = 0.35;
    phrase_noise = 0.12;
    related_rate = 0.6;
    pair_repeat = 0.35;
    seed = 14;
  }

let paleontology =
  {
    Corpus.default with
    Corpus.name = "Paleontology";
    docs = 60;
    sentences_per_doc = 2;
    relations = 4;
    entities = 50;
    truth_pairs_per_relation = 14;
    phrase_corruption = 0.01;
    phrase_ambiguity = 0.05;
    phrase_noise = 0.03;
    related_rate = 0.7;
    pair_repeat = 0.1;
    seed = 15;
  }

let all = [ adversarial; news; genomics; pharma; paleontology ]

let by_name name =
  List.find_opt (fun c -> String.lowercase_ascii c.Corpus.name = String.lowercase_ascii name) all
