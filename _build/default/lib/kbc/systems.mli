(** The five KBC systems of the evaluation (Figure 7), as synthetic
    presets scaled to run in seconds on one core.

    Each preset positions itself on the axes the paper uses to distinguish
    the systems: Adversarial has tiny low-quality documents; News has many
    relations and medium quality; Genomics has precise text but ambiguous
    relations; Pharma has ambiguous text and many relations; Paleontology
    has precise, unambiguous writing and sparse correlations. *)

val adversarial : Corpus.config
val news : Corpus.config
val genomics : Corpus.config
val pharma : Corpus.config
val paleontology : Corpus.config

val all : Corpus.config list
(** In the paper's order: Adversarial, News, Genomics, Pharma, Paleo. *)

val by_name : string -> Corpus.config option
