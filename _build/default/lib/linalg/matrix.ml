type t = { n : int; data : float array }

exception Not_positive_definite

let create n = { n; data = Array.make (n * n) 0.0 }

let dim t = t.n

let get t i j = t.data.((i * t.n) + j)

let set t i j v = t.data.((i * t.n) + j) <- v

let update t i j f = t.data.((i * t.n) + j) <- f t.data.((i * t.n) + j)

let identity n =
  let t = create n in
  for i = 0 to n - 1 do
    set t i i 1.0
  done;
  t

let of_arrays rows =
  let n = Array.length rows in
  Array.iter (fun r -> assert (Array.length r = n)) rows;
  let t = create n in
  Array.iteri (fun i row -> Array.iteri (fun j v -> set t i j v) row) rows;
  t

let to_arrays t = Array.init t.n (fun i -> Array.init t.n (fun j -> get t i j))

let copy t = { n = t.n; data = Array.copy t.data }

let map f t = { n = t.n; data = Array.map f t.data }

let elementwise op a b =
  assert (a.n = b.n);
  { n = a.n; data = Array.init (a.n * a.n) (fun k -> op a.data.(k) b.data.(k)) }

let add a b = elementwise ( +. ) a b

let sub a b = elementwise ( -. ) a b

let scale c t = map (fun v -> c *. v) t

let mul a b =
  assert (a.n = b.n);
  let n = a.n in
  let out = create n in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to n - 1 do
          set out i j (get out i j +. (aik *. get b k j))
        done
    done
  done;
  out

let mat_vec t x =
  assert (Array.length x = t.n);
  Array.init t.n (fun i ->
      let acc = ref 0.0 in
      for j = 0 to t.n - 1 do
        acc := !acc +. (get t i j *. x.(j))
      done;
      !acc)

let transpose t =
  let out = create t.n in
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      set out j i (get t i j)
    done
  done;
  out

let symmetrize t = scale 0.5 (add t (transpose t))

let frobenius_distance a b =
  assert (a.n = b.n);
  let acc = ref 0.0 in
  Array.iteri
    (fun k v ->
      let d = v -. b.data.(k) in
      acc := !acc +. (d *. d))
    a.data;
  sqrt !acc

let max_abs t = Array.fold_left (fun acc v -> max acc (abs_float v)) 0.0 t.data

let cholesky a =
  let n = a.n in
  let l = create n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (get l i k *. get l j k)
      done;
      if i = j then begin
        if !acc <= 0.0 then raise Not_positive_definite;
        set l i j (sqrt !acc)
      end
      else set l i j (!acc /. get l j j)
    done
  done;
  l

let cholesky_solve l b =
  let n = l.n in
  assert (Array.length b = n);
  (* Forward substitution: l y = b. *)
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for k = 0 to i - 1 do
      acc := !acc -. (get l i k *. y.(k))
    done;
    y.(i) <- !acc /. get l i i
  done;
  (* Back substitution: l^T x = y. *)
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (get l k i *. x.(k))
    done;
    x.(i) <- !acc /. get l i i
  done;
  x

let spd_solve a b = cholesky_solve (cholesky a) b

let spd_inverse a =
  let n = a.n in
  let l = cholesky a in
  let out = create n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let col = cholesky_solve l e in
    for i = 0 to n - 1 do
      set out i j col.(i)
    done
  done;
  (* Round off asymmetry introduced by the column solves. *)
  symmetrize out

let log_det_spd a =
  let l = cholesky a in
  let acc = ref 0.0 in
  for i = 0 to a.n - 1 do
    acc := !acc +. log (get l i i)
  done;
  2.0 *. !acc

let is_spd a =
  match cholesky a with
  | (_ : t) -> true
  | exception Not_positive_definite -> false

let add_ridge a eps =
  let out = copy a in
  for i = 0 to a.n - 1 do
    update out i i (fun v -> v +. eps)
  done;
  out

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  for i = 0 to t.n - 1 do
    Format.fprintf fmt "[";
    for j = 0 to t.n - 1 do
      Format.fprintf fmt "%8.4f%s" (get t i j) (if j < t.n - 1 then " " else "")
    done;
    Format.fprintf fmt "]@,"
  done;
  Format.fprintf fmt "@]"
