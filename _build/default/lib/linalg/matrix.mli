(** Dense square matrices in row-major order.

    This is the linear-algebra substrate for the variational materialization
    approach (Algorithm 1 of the paper): estimating covariance matrices and
    solving the log-determinant relaxation requires Cholesky factorization,
    inversion, and log-determinants of symmetric positive-definite matrices.
    Sizes are in the hundreds, so a straightforward dense implementation is
    both adequate and dependency-free. *)

type t

val create : int -> t
(** [create n] is the [n x n] zero matrix. *)

val identity : int -> t

val of_arrays : float array array -> t
(** Rows must be square; the data is copied. *)

val to_arrays : t -> float array array

val dim : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val update : t -> int -> int -> (float -> float) -> unit

val copy : t -> t

val map : (float -> float) -> t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product. *)

val mat_vec : t -> float array -> float array

val transpose : t -> t

val symmetrize : t -> t
(** [(a + a^T) / 2]. *)

val frobenius_distance : t -> t -> float

val max_abs : t -> float

exception Not_positive_definite

val cholesky : t -> t
(** Lower-triangular [l] with [l * l^T = a]. Raises
    {!Not_positive_definite} when the input is not (numerically) SPD. *)

val cholesky_solve : t -> float array -> float array
(** [cholesky_solve l b] solves [l l^T x = b] given a Cholesky factor [l]. *)

val spd_solve : t -> float array -> float array
(** Solve [a x = b] for SPD [a] (factors internally). *)

val spd_inverse : t -> t
(** Inverse of an SPD matrix via its Cholesky factor. *)

val log_det_spd : t -> float
(** Log-determinant of an SPD matrix. Raises {!Not_positive_definite}. *)

val is_spd : t -> bool
(** Whether a Cholesky factorization succeeds. *)

val add_ridge : t -> float -> t
(** [add_ridge a eps] adds [eps] to the diagonal (Tikhonov regularizer). *)

val pp : Format.formatter -> t -> unit
