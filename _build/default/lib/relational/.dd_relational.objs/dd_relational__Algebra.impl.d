lib/relational/algebra.ml: Array Hashtbl List Relation Schema Tuple Value
