lib/relational/algebra.mli: Relation Schema Tuple Value
