lib/relational/csv.ml: Array List Printf Relation Schema String Value
