lib/relational/csv.mli: Relation Schema Tuple Value
