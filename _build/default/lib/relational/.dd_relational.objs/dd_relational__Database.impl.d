lib/relational/database.ml: Format Hashtbl List Relation String
