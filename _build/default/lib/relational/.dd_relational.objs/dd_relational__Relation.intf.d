lib/relational/relation.mli: Format Hashtbl Schema Tuple
