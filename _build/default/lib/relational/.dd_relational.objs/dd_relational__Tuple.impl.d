lib/relational/tuple.ml: Array Format Hashtbl Map Set String Value
