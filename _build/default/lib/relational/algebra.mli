(** Relational algebra over {!Relation.t}.

    DeepDive's grounding phase "evaluates a sequence of SQL queries"; this
    module is the query-evaluation layer of our engine.  Operators follow
    bag semantics with derivation counts: selection preserves counts,
    projection sums them, join multiplies them and union adds them — which
    makes the algebra directly usable for counting-based incremental view
    maintenance. *)

val select : (Tuple.t -> bool) -> Relation.t -> Relation.t

val select_eq : Relation.t -> string -> Value.t -> Relation.t
(** Select rows whose named column equals a constant. *)

val project : Relation.t -> string list -> Relation.t
(** Projection onto named columns (duplicates allowed in the output order is
    not supported; columns must exist). *)

val rename : Relation.t -> (string * string) list -> Relation.t

val product : Relation.t -> Relation.t -> Relation.t
(** Cartesian product; column names must be disjoint. *)

val natural_join : Relation.t -> Relation.t -> Relation.t
(** Hash join on all shared column names.  The output schema is the left
    schema followed by the right-only columns. *)

val equi_join : Relation.t -> Relation.t -> (string * string) list -> Relation.t
(** [equi_join left right pairs] joins on [left.col = right.col'] for each
    pair; all columns of both inputs appear in the output (right columns
    are prefixed with the right relation's name on clashes). *)

val union : Relation.t -> Relation.t -> Relation.t
(** Schemas must be equal; counts add. *)

val difference : Relation.t -> Relation.t -> Relation.t
(** Set difference on distinct tuples (left counts preserved). *)

val intersect : Relation.t -> Relation.t -> Relation.t

val distinct : Relation.t -> Relation.t
(** Reset all multiplicities to one. *)

type aggregate = Count | Sum of string | Min of string | Max of string | Avg of string

val aggregate :
  Relation.t -> group_by:string list -> aggregate -> output:string -> Relation.t
(** Group rows by the named columns and compute one aggregate over distinct
    tuples per group; the result schema is the group-by columns followed by
    the aggregate output column. *)

val map_rows : Relation.t -> Schema.t -> (Tuple.t -> Tuple.t) -> Relation.t
(** Per-tuple user-defined function (the "feature extractor" hook): applies
    [f] to every distinct tuple, producing a relation with the given
    schema; counts are preserved. *)

val flat_map_rows : Relation.t -> Schema.t -> (Tuple.t -> Tuple.t list) -> Relation.t
(** Like {!map_rows} but each input row may produce any number of rows. *)
