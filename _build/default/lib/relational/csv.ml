let parse_value ty raw =
  let raw = String.trim raw in
  if raw = "" then Value.Null
  else
    match ty with
    | Value.TInt -> (
      match int_of_string_opt raw with
      | Some i -> Value.Int i
      | None -> invalid_arg ("Csv: not an int: " ^ raw))
    | Value.TFloat -> (
      match float_of_string_opt raw with
      | Some f -> Value.Float f
      | None -> invalid_arg ("Csv: not a float: " ^ raw))
    | Value.TBool -> (
      match String.lowercase_ascii raw with
      | "true" | "t" | "1" -> Value.Bool true
      | "false" | "f" | "0" -> Value.Bool false
      | _ -> invalid_arg ("Csv: not a bool: " ^ raw))
    | Value.TStr -> Value.Str raw

let parse_line schema line =
  let fields = String.split_on_char ',' line in
  let columns = Schema.columns schema in
  if List.length fields <> Array.length columns then
    invalid_arg
      (Printf.sprintf "Csv: expected %d fields, found %d in %S" (Array.length columns)
         (List.length fields) line);
  Array.of_list (List.mapi (fun idx raw -> parse_value columns.(idx).Schema.ty raw) fields)

let is_header schema line =
  let fields = List.map String.trim (String.split_on_char ',' line) in
  fields = Schema.names schema

let load_string rel text =
  let schema = Relation.schema rel in
  let count = ref 0 in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx line ->
      let line = String.trim line in
      if line <> "" && not (idx = 0 && is_header schema line) then begin
        Relation.insert rel (parse_line schema line);
        incr count
      end)
    lines;
  !count

let load_file rel path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  load_string rel contents
