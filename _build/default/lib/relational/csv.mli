(** Minimal CSV ingestion for base tables.

    Comma-separated, no quoting or escaping (values in KBC base tables are
    identifiers and tokens).  A first line that matches the column names is
    treated as a header and skipped. *)

val parse_value : Value.ty -> string -> Value.t
(** Raises [Invalid_argument] on malformed input; empty string is [Null]. *)

val parse_line : Schema.t -> string -> Tuple.t

val load_string : Relation.t -> string -> int
(** Load CSV text into a relation; returns the number of rows inserted. *)

val load_file : Relation.t -> string -> int
