type column = { name : string; ty : Value.ty }

type t = { cols : column array; index : (string, int) Hashtbl.t }

let build cols =
  let index = Hashtbl.create (Array.length cols) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem index c.name then
        invalid_arg ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.replace index c.name i)
    cols;
  { cols; index }

let make pairs = build (Array.of_list (List.map (fun (name, ty) -> { name; ty }) pairs))

let columns t = Array.copy t.cols

let arity t = Array.length t.cols

let column_index t name = Hashtbl.find t.index name

let mem t name = Hashtbl.mem t.index name

let column_ty t name = t.cols.(column_index t name).ty

let names t = Array.to_list (Array.map (fun c -> c.name) t.cols)

let equal a b =
  Array.length a.cols = Array.length b.cols
  && Array.for_all2 (fun x y -> x.name = y.name && x.ty = y.ty) a.cols b.cols

let conforms t row =
  Array.length row = arity t
  && Array.for_all2 (fun c v -> Value.conforms v c.ty) t.cols row

let project t cols =
  build (Array.of_list (List.map (fun name -> t.cols.(column_index t name)) cols))

let concat a b = build (Array.append a.cols b.cols)

let rename t mapping =
  build
    (Array.map
       (fun c ->
         match List.assoc_opt c.name mapping with
         | Some fresh -> { c with name = fresh }
         | None -> c)
       t.cols)

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (Array.to_list
          (Array.map (fun c -> c.name ^ ":" ^ Value.ty_to_string c.ty) t.cols)))
