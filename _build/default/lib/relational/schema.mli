(** Relation schemas: ordered, named, typed columns. *)

type column = { name : string; ty : Value.ty }

type t

val make : (string * Value.ty) list -> t
(** Column names must be distinct; raises [Invalid_argument] otherwise. *)

val columns : t -> column array

val arity : t -> int

val column_index : t -> string -> int
(** Raises [Not_found] for an unknown column. *)

val mem : t -> string -> bool

val column_ty : t -> string -> Value.ty

val names : t -> string list

val equal : t -> t -> bool

val conforms : t -> Value.t array -> bool
(** Arity and per-column type check ([Null] always conforms). *)

val project : t -> string list -> t
(** Schema of a projection; raises [Not_found] on unknown columns. *)

val concat : t -> t -> t
(** Schema of a product; duplicate names raise [Invalid_argument]. *)

val rename : t -> (string * string) list -> t

val pp : Format.formatter -> t -> unit
