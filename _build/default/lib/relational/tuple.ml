type t = Value.t array

let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else begin
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
    end
  in
  loop 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 t

let to_string t =
  "(" ^ String.concat ", " (Array.to_list (Array.map Value.to_string t)) ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let project t idxs = Array.map (fun i -> t.(i)) idxs

let concat = Array.append

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Hashtbl = Hashtbl.Make (Key)
module Set = Set.Make (Key)
module Map = Map.Make (Key)
