(** Tuples: immutable arrays of {!Value.t} usable as hash-table keys. *)

type t = Value.t array

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val project : t -> int array -> t
(** [project tup idxs] picks the components at [idxs] in order. *)

val concat : t -> t -> t

module Hashtbl : Hashtbl.S with type key = t
(** Hash tables keyed by tuples (structural hashing on values). *)

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
