type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = TBool | TInt | TFloat | TStr

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr

let conforms v ty =
  match type_of v with
  | None -> true
  | Some t -> t = ty

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 33
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let to_string = function
  | Null -> "NULL"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let pp fmt v = Format.pp_print_string fmt (to_string v)

let ty_to_string = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TStr -> "text"

let pp_ty fmt ty = Format.pp_print_string fmt (ty_to_string ty)

let int i = Int i
let str s = Str s
let bool b = Bool b
let float f = Float f

let as_int = function Int i -> i | v -> invalid_arg ("Value.as_int: " ^ to_string v)
let as_str = function Str s -> s | v -> invalid_arg ("Value.as_str: " ^ to_string v)
let as_bool = function Bool b -> b | v -> invalid_arg ("Value.as_bool: " ^ to_string v)

let as_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> invalid_arg ("Value.as_float: " ^ to_string v)
