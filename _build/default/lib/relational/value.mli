(** Typed scalar values stored in relations.

    In DeepDive "all data is stored in a relational database"; this is the
    value domain of our in-memory engine.  Values are totally ordered (with
    [Null] smallest) so tuples can key hash tables and sorted structures. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = TBool | TInt | TFloat | TStr

val type_of : t -> ty option
(** [None] for [Null]. *)

val conforms : t -> ty -> bool
(** [Null] conforms to every type. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val pp_ty : Format.formatter -> ty -> unit

val ty_to_string : ty -> string

(** Convenience constructors/extractors; extractors raise [Invalid_argument]
    on a type mismatch. *)

val int : int -> t
val str : string -> t
val bool : bool -> t
val float : float -> t

val as_int : t -> int
val as_str : t -> string
val as_bool : t -> bool
val as_float : t -> float
