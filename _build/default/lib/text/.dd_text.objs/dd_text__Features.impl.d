lib/text/features.ml: List Mention_finder String Tokenizer
