lib/text/features.mli: Mention_finder Tokenizer
