lib/text/mention_finder.ml: Array Hashtbl List String Tokenizer
