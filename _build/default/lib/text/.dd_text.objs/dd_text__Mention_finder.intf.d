lib/text/mention_finder.mli: Tokenizer
