lib/text/tokenizer.ml: List String
