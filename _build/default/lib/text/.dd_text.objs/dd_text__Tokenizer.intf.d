lib/text/tokenizer.mli:
