type pair_context = {
  tokens : Tokenizer.token list;
  m1 : Mention_finder.mention;
  m2 : Mention_finder.mention;
}

let ordered ctx =
  if ctx.m1.Mention_finder.first_token <= ctx.m2.Mention_finder.first_token then
    (ctx.m1, ctx.m2)
  else (ctx.m2, ctx.m1)

let between ctx =
  let left, right = ordered ctx in
  Tokenizer.slice ctx.tokens (left.Mention_finder.last_token + 1)
    right.Mention_finder.first_token

let phrase_between ?(max_tokens = 6) ctx =
  let gap = between ctx in
  if gap = [] || List.length gap > max_tokens then None
  else
    Some
      (String.concat "_"
         (List.filter_map
            (fun t ->
              let w = Tokenizer.normalize t.Tokenizer.text in
              if w = "" then None else Some w)
            gap))

let bag_of_words_between ctx =
  between ctx
  |> List.filter_map (fun t ->
         let w = Tokenizer.normalize t.Tokenizer.text in
         if w = "" then None else Some ("bow:" ^ w))
  |> List.sort_uniq compare

let window ?(size = 1) ctx =
  let left, right = ordered ctx in
  let before =
    Tokenizer.slice ctx.tokens
      (max 0 (left.Mention_finder.first_token - size))
      left.Mention_finder.first_token
  in
  let after =
    Tokenizer.slice ctx.tokens
      (right.Mention_finder.last_token + 1)
      (right.Mention_finder.last_token + 1 + size)
  in
  List.filter_map
    (fun (prefix, t) ->
      let w = Tokenizer.normalize t.Tokenizer.text in
      if w = "" then None else Some (prefix ^ w))
    (List.map (fun t -> ("left:", t)) before @ List.map (fun t -> ("right:", t)) after)

let inverted_order ctx =
  if ctx.m2.Mention_finder.first_token < ctx.m1.Mention_finder.first_token then
    Some "inv_order"
  else None

let mention_distance_bucket ctx =
  let left, right = ordered ctx in
  let gap = right.Mention_finder.first_token - left.Mention_finder.last_token - 1 in
  if gap <= 1 then "dist:adj" else if gap <= 5 then "dist:near" else "dist:far"

let all_features ctx =
  let phrase = match phrase_between ctx with Some p -> [ "phrase:" ^ p ] | None -> [] in
  let inv = match inverted_order ctx with Some f -> [ f ] | None -> [] in
  phrase @ bag_of_words_between ctx @ window ctx @ inv @ [ mention_distance_bucket ctx ]
