(** Feature UDFs over sentences and mention pairs — the [phrase(m1, m2,
    sent)] style user-defined functions of rule FE1.

    Each extractor maps a sentence and a mention pair to feature strings;
    the grounding layer ties one learnable weight per distinct feature
    value (Example 2.3: "this allows DeepDive to support common examples of
    features such as bag-of-words to context-aware NLP features"). *)

type pair_context = {
  tokens : Tokenizer.token list;
  m1 : Mention_finder.mention;
  m2 : Mention_finder.mention;
}

val phrase_between : ?max_tokens:int -> pair_context -> string option
(** The token sequence strictly between the two mentions, joined with
    ['_'] — the paper's running example ("and_his_wife").  [None] when the
    gap is empty or longer than [max_tokens] (default 6). *)

val bag_of_words_between : pair_context -> string list
(** One feature per distinct normalized token between the mentions
    (prefixed ["bow:"]). *)

val window : ?size:int -> pair_context -> string list
(** Tokens immediately before the first and after the second mention
    (prefixed ["left:"] / ["right:"]; default window 1). *)

val inverted_order : pair_context -> string option
(** ["inv_order"] when [m2] precedes [m1] in the sentence. *)

val mention_distance_bucket : pair_context -> string
(** Coarse token-distance bucket ("dist:adj", "dist:near", "dist:far"). *)

val all_features : pair_context -> string list
(** The union of the extractors above (the default FE feature set). *)
