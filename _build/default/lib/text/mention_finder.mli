(** Dictionary-based mention finding — the entity-recognition stage of the
    KBC pipeline.

    Real DeepDive systems run statistical NER; the candidate-generation
    contract it must satisfy is only "high recall": every span that might
    name an entity should surface as a mention.  A dictionary matcher over
    known entity names (with greedy longest match) satisfies that contract
    for our synthetic corpora and for the examples, and exposes the same
    (sentence, mention span, surface form) shape downstream rules consume. *)

type mention = {
  surface : string;  (** the matched text, as written *)
  first_token : int;  (** index of the first matched token *)
  last_token : int;  (** index of the last matched token (inclusive) *)
  start_offset : int;
  end_offset : int;
}

type dictionary

val dictionary : string list -> dictionary
(** Build a matcher from entity names; matching is case-insensitive on
    normalized tokens and supports multi-token names. *)

val add_name : dictionary -> string -> unit

val find : dictionary -> Tokenizer.token list -> mention list
(** Greedy longest-match scan (no overlapping mentions), left to right. *)

val find_in_sentence : dictionary -> string -> mention list
(** Tokenize then {!find}. *)
