type token = {
  text : string;
  start_offset : int;
  end_offset : int;
  index : int;
}

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_punct c =
  match c with
  | '.' | ',' | ';' | ':' | '!' | '?' | '(' | ')' | '"' | '\'' -> true
  | _ -> false

let tokenize input =
  let n = String.length input in
  let out = ref [] in
  let count = ref 0 in
  let emit start_offset end_offset =
    if end_offset > start_offset then begin
      out :=
        {
          text = String.sub input start_offset (end_offset - start_offset);
          start_offset;
          end_offset;
          index = !count;
        }
        :: !out;
      incr count
    end
  in
  let word_start = ref (-1) in
  let flush upto = if !word_start >= 0 then emit !word_start upto; word_start := -1 in
  for i = 0 to n - 1 do
    let c = input.[i] in
    if is_space c then flush i
    else if is_punct c then begin
      flush i;
      emit i (i + 1)
    end
    else if !word_start < 0 then word_start := i
  done;
  flush n;
  List.rev !out

let sentences input =
  let n = String.length input in
  let out = ref [] in
  let start = ref 0 in
  let flush stop =
    let raw = String.sub input !start (stop - !start) in
    let trimmed = String.trim raw in
    if trimmed <> "" then begin
      (* Find the trimmed text's true offset. *)
      let lead = ref 0 in
      while !lead < String.length raw && is_space raw.[!lead] do
        incr lead
      done;
      out := (!start + !lead, trimmed) :: !out
    end;
    start := stop
  in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if (c = '.' || c = '!' || c = '?') && (!i + 1 >= n || is_space input.[!i + 1]) then
      flush (!i + 1);
    incr i
  done;
  flush n;
  List.rev !out

let token_texts tokens = List.map (fun t -> t.text) tokens

let slice tokens i j = List.filter (fun t -> t.index >= i && t.index < j) tokens

let normalize word =
  let lower = String.lowercase_ascii word in
  let n = String.length lower in
  let is_alnum c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') in
  let first = ref 0 and last = ref (n - 1) in
  while !first < n && not (is_alnum lower.[!first]) do
    incr first
  done;
  while !last >= !first && not (is_alnum lower.[!last]) do
    decr last
  done;
  if !last < !first then "" else String.sub lower !first (!last - !first + 1)
