(** Tokenization — the first stage of the paper's NLP preprocessing
    ("DeepDive stores all documents in the database in one sentence per row
    with markup produced by standard NLP pre-processing tools").

    This is deliberately simple (whitespace/punctuation splitting with
    offset tracking), standing in for the heavyweight NLP stack: what the
    downstream pipeline needs is a token sequence with character spans so
    mention finders and feature UDFs can reference positions. *)

type token = {
  text : string;
  start_offset : int;  (** byte offset of the first character *)
  end_offset : int;  (** byte offset one past the last character *)
  index : int;  (** position in the token sequence *)
}

val tokenize : string -> token list
(** Split on whitespace; punctuation characters form their own tokens.
    Offsets index into the original string. *)

val sentences : string -> (int * string) list
(** Split a document into sentences on [.!?] followed by whitespace;
    returns (start offset, sentence text) pairs.  Terminators stay with
    their sentence. *)

val token_texts : token list -> string list

val slice : token list -> int -> int -> token list
(** [slice tokens i j] is the tokens with indexes in [i, j). *)

val normalize : string -> string
(** Lowercase and strip non-alphanumeric edges — the canonical form used
    for dictionary lookups. *)
