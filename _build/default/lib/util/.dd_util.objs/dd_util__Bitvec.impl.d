lib/util/bitvec.ml: Array Bytes Char
