lib/util/bitvec.mli:
