lib/util/prng.mli:
