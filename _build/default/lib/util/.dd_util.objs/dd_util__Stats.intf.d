lib/util/stats.mli:
