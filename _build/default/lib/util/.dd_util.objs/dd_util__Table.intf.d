lib/util/table.mli:
