lib/util/timer.mli:
