type t = { length : int; data : Bytes.t }

let create length = { length; data = Bytes.make ((length + 7) / 8) '\000' }

let length t = t.length

let check t i =
  if i < 0 || i >= t.length then invalid_arg "Bitvec: index out of bounds"

let get t i =
  check t i;
  Char.code (Bytes.get t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i value =
  check t i;
  let byte = Char.code (Bytes.get t.data (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let fresh = if value then byte lor mask else byte land lnot mask in
  Bytes.set t.data (i lsr 3) (Char.chr fresh)

let of_bool_array a =
  let t = create (Array.length a) in
  Array.iteri (fun i v -> if v then set t i true) a;
  t

let to_bool_array t = Array.init t.length (get t)

let byte_size t = Bytes.length t.data

let pop_count t =
  let count = ref 0 in
  for i = 0 to t.length - 1 do
    if get t i then incr count
  done;
  !count

let equal a b = a.length = b.length && Bytes.equal a.data b.data

let copy t = { t with data = Bytes.copy t.data }
