(** Packed bit vectors.

    The sampling approach materializes worlds as MCDB-style tuple bundles:
    "a single sample for one random variable only requires 1 bit of
    storage", which is what makes storing hundreds of samples cheaper than
    the factor graph itself (under 5% in the paper's systems).  This is
    that representation: a fixed-length vector of booleans packed 8 per
    byte. *)

type t

val create : int -> t
(** All-false vector of the given length. *)

val length : t -> int

val get : t -> int -> bool

val set : t -> int -> bool -> unit

val of_bool_array : bool array -> t

val to_bool_array : t -> bool array

val byte_size : t -> int
(** Bytes of payload storage (excluding the O(1) header). *)

val pop_count : t -> int
(** Number of set bits. *)

val equal : t -> t -> bool

val copy : t -> t
