let fsum xs =
  let total = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else fsum xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.map (fun x -> (x -. m) *. (x -. m)) xs in
    fsum acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let covariance xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys);
  if n = 0 then 0.0
  else begin
    let mx = mean xs and my = mean ys in
    let acc = Array.init n (fun i -> (xs.(i) -. mx) *. (ys.(i) -. my)) in
    fsum acc /. float_of_int n
  end

let percentile xs p =
  assert (Array.length xs > 0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  let frac = rank -. floor rank in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let sigmoid x =
  if x >= 0.0 then 1.0 /. (1.0 +. exp (-.x))
  else begin
    let e = exp x in
    e /. (1.0 +. e)
  end

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let logit p =
  let eps = 1e-12 in
  let p = clamp eps (1.0 -. eps) p in
  log (p /. (1.0 -. p))

let log_sum_exp xs =
  if Array.length xs = 0 then neg_infinity
  else begin
    let m = Array.fold_left max neg_infinity xs in
    if m = neg_infinity then neg_infinity
    else m +. log (fsum (Array.map (fun x -> exp (x -. m)) xs))
  end

let kl_bernoulli p q =
  let eps = 1e-9 in
  let p = clamp eps (1.0 -. eps) p and q = clamp eps (1.0 -. eps) q in
  (p *. log (p /. q)) +. ((1.0 -. p) *. log ((1.0 -. p) /. (1.0 -. q)))

let dot xs ys =
  assert (Array.length xs = Array.length ys);
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. ys.(i))) xs;
  !acc

let l2_distance xs ys =
  assert (Array.length xs = Array.length ys);
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. ys.(i) in
      acc := !acc +. (d *. d))
    xs;
  sqrt !acc

let max_abs_diff xs ys =
  assert (Array.length xs = Array.length ys);
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := max !acc (abs_float (x -. ys.(i)))) xs;
  !acc
