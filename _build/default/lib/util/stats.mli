(** Small numeric/statistics helpers shared across the library. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Population variance; 0 on arrays with fewer than two elements. *)

val stddev : float array -> float

val covariance : float array -> float array -> float
(** Population covariance of two equal-length arrays. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,1]; linear interpolation between order
    statistics. Requires a non-empty array. *)

val sigmoid : float -> float
(** Numerically stable logistic function. *)

val logit : float -> float
(** Inverse of {!sigmoid}; input clamped to (eps, 1-eps). *)

val log_sum_exp : float array -> float
(** log(sum(exp xs)) computed stably; [neg_infinity] on the empty array. *)

val kl_bernoulli : float -> float -> float
(** [kl_bernoulli p q] is KL(Bern(p) || Bern(q)), with clamping away from
    the endpoints for stability. *)

val clamp : float -> float -> float -> float
(** [clamp lo hi x]. *)

val fsum : float array -> float
(** Kahan-compensated summation. *)

val dot : float array -> float array -> float

val l2_distance : float array -> float array -> float

val max_abs_diff : float array -> float array -> float
