type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let cell_f x =
  if x = 0.0 then "0"
  else if abs_float x < 0.001 || abs_float x >= 100000.0 then Printf.sprintf "%.2e" x
  else if abs_float x >= 100.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.3f" x

let cell_x x = Printf.sprintf "%.1fx" x

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.headers) rows
  in
  let pad row = row @ List.init (ncols - List.length row) (fun _ -> "") in
  let all = pad t.headers :: List.map pad rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    all;
  let render_row row =
    String.concat "  "
      (List.mapi (fun i c -> c ^ String.make (widths.(i) - String.length c) ' ') row)
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  match all with
  | [] -> ""
  | header :: body ->
    String.concat "\n" (render_row header :: sep :: List.map render_row body)

let print t =
  print_string (render t);
  print_newline ()
