(** Fixed-width text tables for the benchmark harness output.

    The harness prints the same rows/series the paper reports; this module
    renders them legibly on a terminal. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells. *)

val render : t -> string
(** Render with aligned columns and a separator under the header. *)

val print : t -> unit
(** [print t] writes {!render} to stdout followed by a newline. *)

val cell_f : float -> string
(** Format a float compactly (3 significant decimals, scientific when tiny). *)

val cell_x : float -> string
(** Format a speedup factor like ["22.3x"]. *)
