(** Wall-clock timing helpers used by the benchmark harness. *)

type t

val start : unit -> t
(** Start a stopwatch. *)

val elapsed_s : t -> float
(** Seconds since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)

val time_s : (unit -> unit) -> float
(** Elapsed seconds of a unit computation. *)
