type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx <> ry then
    if t.rank.(rx) < t.rank.(ry) then t.parent.(rx) <- ry
    else if t.rank.(rx) > t.rank.(ry) then t.parent.(ry) <- rx
    else begin
      t.parent.(ry) <- rx;
      t.rank.(rx) <- t.rank.(rx) + 1
    end

let same t x y = find t x = find t y

let groups t =
  let table = Hashtbl.create 16 in
  Array.iteri
    (fun x _ ->
      let r = find t x in
      let members = try Hashtbl.find table r with Not_found -> [] in
      Hashtbl.replace table r (x :: members))
    t.parent;
  table

let count t =
  let seen = Hashtbl.create 16 in
  Array.iteri (fun x _ -> Hashtbl.replace seen (find t x) ()) t.parent;
  Hashtbl.length seen
