(** Disjoint-set forest with union by rank and path compression.

    Used by the factor-graph decomposition heuristic (DESIGN.md, Appendix B.1
    of the paper) to compute connected components of inactive variables. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Representative of the set containing the element. *)

val union : t -> int -> int -> unit
(** Merge the two sets. *)

val same : t -> int -> int -> bool
(** Whether two elements share a set. *)

val groups : t -> (int, int list) Hashtbl.t
(** Map from representative to the members of its set. *)

val count : t -> int
(** Number of distinct sets. *)
