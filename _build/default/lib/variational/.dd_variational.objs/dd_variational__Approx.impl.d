lib/variational/approx.ml: Array Covariance Dd_fgraph Dd_inference Dd_linalg Dd_util List Logdet
