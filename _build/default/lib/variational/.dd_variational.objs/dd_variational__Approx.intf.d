lib/variational/approx.mli: Dd_fgraph Dd_util Logdet
