lib/variational/covariance.ml: Array Dd_fgraph Dd_linalg Hashtbl List
