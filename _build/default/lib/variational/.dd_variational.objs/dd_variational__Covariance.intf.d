lib/variational/covariance.mli: Dd_fgraph Dd_linalg
