lib/variational/logdet.ml: Dd_linalg Dd_util Hashtbl List
