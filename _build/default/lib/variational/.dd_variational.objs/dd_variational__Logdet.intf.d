lib/variational/logdet.mli: Dd_linalg
