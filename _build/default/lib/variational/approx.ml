module Graph = Dd_fgraph.Graph
module Stats = Dd_util.Stats
module Gibbs = Dd_inference.Gibbs

type stats = {
  pairwise_factors : int;
  candidate_pairs : int;
  solver_iterations_bound : int;
}

(* Agreement factor: energy w when the two variables are equal.  Encoded as
   a headless factor with two bodies, (a and b) and (not a and not b); at
   most one body holds, so logical semantics yields exactly 1{a = b}. *)
let add_agreement g ~weight a b =
  ignore
    (Graph.add_factor g
       {
         Graph.head = None;
         bodies =
           [|
             [| { Graph.var = a; negated = false }; { Graph.var = b; negated = false } |];
             [| { Graph.var = a; negated = true }; { Graph.var = b; negated = true } |];
           |];
         weight_id = weight;
         semantics = Dd_fgraph.Semantics.Logical;
       })

let materialize ?(lambda = 0.1) ?(solver = Logdet.default) ?(unary_rounds = 3) rng g
    ~samples =
  let nvars = Graph.num_vars g in
  let nz = Covariance.nonzero_pairs g in
  let m = Covariance.estimate ~samples ~nvars ~nz in
  (* Line 4: the constrained maximizer x estimates a covariance completion;
     the model couplings live in its inverse, the (sparse) precision
     matrix theta.  The box width lambda controls how diagonal x is and
     hence how sparse theta is. *)
  let x = Logdet.solve ~options:solver ~nz ~lambda m in
  let theta = Dd_linalg.Matrix.spd_inverse x in
  let entries =
    List.filter_map
      (fun (i, j) ->
        let v = Dd_linalg.Matrix.get theta i j in
        if abs_float v >= solver.Logdet.prune_below then Some (i, j, v) else None)
      nz
  in
  let approx = Graph.create () in
  for v = 0 to nvars - 1 do
    ignore (Graph.add_var ~evidence:(Graph.evidence_of g v) approx)
  done;
  List.iter
    (fun (i, j, theta_ij) ->
      (* Match the Gaussian cross term -theta_ij a_i a_j (0/1 coding):
         w . 1{a=b} contributes (w/2) s_i s_j in +-1 coding while
         -theta_ij a_i a_j contributes -(theta_ij/4) s_i s_j, so
         w = -theta_ij / 2; linear leftovers are absorbed by the unary
         moment matching below. *)
      let w = Graph.add_weight approx (-.theta_ij /. 2.0) in
      add_agreement approx ~weight:w i j)
    entries;
  (* Unary moment matching: adjust per-variable bias factors until the
     approximate graph's marginals track the sampled means. *)
  let mu = Covariance.means samples nvars in
  let unary_weights =
    Array.init nvars (fun v ->
        match Graph.evidence_of g v with
        | Graph.Evidence _ -> None
        | Graph.Query ->
          let w = Graph.add_weight approx (Stats.logit mu.(v)) in
          ignore (Graph.unary approx ~weight:w v);
          Some w)
  in
  let sweeps = min 300 (max 50 (Array.length samples / 4)) in
  for _ = 1 to unary_rounds do
    let est = Gibbs.marginals rng approx ~sweeps in
    Array.iteri
      (fun v weight ->
        match weight with
        | None -> ()
        | Some w ->
          let correction = Stats.logit mu.(v) -. Stats.logit est.(v) in
          (* Damped update keeps the matching loop stable. *)
          Graph.set_weight approx w (Graph.weight_value approx w +. (0.5 *. correction)))
      unary_weights
  done;
  ( approx,
    {
      pairwise_factors = List.length entries;
      candidate_pairs = List.length nz;
      solver_iterations_bound = solver.Logdet.max_iterations;
    } )
