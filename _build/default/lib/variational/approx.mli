(** Construction of the approximate factor graph (lines 5-8 of
    Algorithm 1) — the artifact the variational approach materializes.

    The log-det maximizer from {!Logdet} estimates a covariance completion;
    its inverse is the (sparse) precision matrix [theta] holding the model
    couplings.  Each non-negligible off-diagonal entry becomes an
    Ising-style agreement factor (energy [w . 1{a = b}]) with
    [w = -theta_ij / 2] — the coupling that matches the Gaussian cross term
    under 0/1 coding — plus per-variable unary factors moment-matched to
    the sampled means so singleton marginals survive the approximation
    (a documented implementation choice; Algorithm 1 itself only emits
    binary potentials).

    Inference on the approximate graph is plain Gibbs sampling; because it
    has O(nnz) factors instead of the original graph's, sparse graphs run
    an order of magnitude faster (Figure 5(c)). *)

module Graph = Dd_fgraph.Graph

type stats = {
  pairwise_factors : int;
  candidate_pairs : int;  (** size of NZ *)
  solver_iterations_bound : int;
}

val materialize :
  ?lambda:float ->
  ?solver:Logdet.options ->
  ?unary_rounds:int ->
  Dd_util.Prng.t ->
  Graph.t ->
  samples:bool array array ->
  Graph.t * stats
(** [materialize rng g ~samples] builds the approximate graph from worlds
    sampled out of [g].  The result has the same variables and evidence as
    [g] (so variable ids line up), only simpler factors.  [lambda] defaults
    to 0.1, the paper's "safe region" choice.  [unary_rounds] (default 3)
    iterations of unary moment matching. *)
