module Graph = Dd_fgraph.Graph
module Matrix = Dd_linalg.Matrix

let nonzero_pairs g =
  let seen = Hashtbl.create 256 in
  Graph.iter_factors
    (fun _ f ->
      let vars = Graph.vars_of_factor f in
      List.iter
        (fun i ->
          List.iter
            (fun j -> if i < j then Hashtbl.replace seen (i, j) ())
            vars)
        vars)
    g;
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) seen [])

let means samples nvars =
  let n = Array.length samples in
  let totals = Array.make nvars 0 in
  Array.iter
    (fun world ->
      for v = 0 to nvars - 1 do
        if world.(v) then totals.(v) <- totals.(v) + 1
      done)
    samples;
  Array.map (fun c -> float_of_int c /. float_of_int (max 1 n)) totals

let estimate ~samples ~nvars ~nz =
  let n = Array.length samples in
  let mu = means samples nvars in
  let m = Matrix.create nvars in
  (* Diagonal: Bernoulli variance. *)
  for v = 0 to nvars - 1 do
    Matrix.set m v v (mu.(v) *. (1.0 -. mu.(v)))
  done;
  let inv_n = 1.0 /. float_of_int (max 1 n) in
  List.iter
    (fun (i, j) ->
      let both = ref 0 in
      Array.iter (fun world -> if world.(i) && world.(j) then incr both) samples;
      let cov = (float_of_int !both *. inv_n) -. (mu.(i) *. mu.(j)) in
      Matrix.set m i j cov;
      Matrix.set m j i cov)
    nz;
  m
