(** Sample-based moment estimation for the variational approach
    (lines 1-3 of Algorithm 1).

    The covariance matrix is estimated from Gibbs samples of the original
    factor graph and zeroed outside [NZ], the set of variable pairs that
    co-occur in some factor — the inverse covariance can only be non-zero
    there for a graphical model with that structure. *)

module Graph = Dd_fgraph.Graph
module Matrix = Dd_linalg.Matrix

val nonzero_pairs : Graph.t -> (int * int) list
(** Distinct pairs [(i, j)], [i < j], of variables sharing a factor. *)

val means : bool array array -> int -> float array
(** Per-variable empirical mean over the sampled worlds. *)

val estimate : samples:bool array array -> nvars:int -> nz:(int * int) list -> Matrix.t
(** Empirical covariance matrix (0/1 encoding), with off-diagonal entries
    outside [nz] forced to zero. *)
