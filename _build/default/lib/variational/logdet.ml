module Matrix = Dd_linalg.Matrix

type options = {
  max_iterations : int;
  step : float;
  tolerance : float;
  prune_below : float;
}

let default =
  { max_iterations = 12; step = 0.05; tolerance = 1e-5; prune_below = 1e-3 }

let project ~m ~nz_set ~lambda x =
  let n = Matrix.dim x in
  let out = Matrix.create n in
  for i = 0 to n - 1 do
    Matrix.set out i i (Matrix.get m i i +. (1.0 /. 3.0))
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Hashtbl.mem nz_set (i, j) then begin
        let target = Matrix.get m i j in
        let v = 0.5 *. (Matrix.get x i j +. Matrix.get x j i) in
        let clamped = Dd_util.Stats.clamp (target -. lambda) (target +. lambda) v in
        Matrix.set out i j clamped;
        Matrix.set out j i clamped
      end
    done
  done;
  out

let solve ?(options = default) ~nz ~lambda m =
  let n = Matrix.dim m in
  let nz_set = Hashtbl.create (max 16 (List.length nz)) in
  List.iter (fun (i, j) -> Hashtbl.replace nz_set (min i j, max i j) ()) nz;
  (* Start from the (feasible, SPD) projected diagonal. *)
  let x = ref (project ~m ~nz_set ~lambda (Matrix.create n)) in
  (* The diagonal start is SPD only if off-diagonal clamping kept it so;
     with a zero matrix input, all off-diagonals project to the closest
     point to 0 in [M_kj - lambda, M_kj + lambda]. Diagonally dominant-ish
     but not guaranteed SPD; fall back to pure diagonal if needed. *)
  if not (Matrix.is_spd !x) then begin
    let d = Matrix.create n in
    for i = 0 to n - 1 do
      Matrix.set d i i (Matrix.get m i i +. (1.0 /. 3.0))
    done;
    (* Blend towards the diagonal until SPD. *)
    let rec blend t =
      let candidate = Matrix.add (Matrix.scale (1.0 -. t) !x) (Matrix.scale t d) in
      if Matrix.is_spd candidate || t >= 1.0 then candidate else blend (min 1.0 (t +. 0.25))
    in
    x := blend 0.25
  end;
  let iteration = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iteration < options.max_iterations do
    incr iteration;
    let gradient = Matrix.spd_inverse !x in
    (* Backtracking projected ascent step. *)
    let rec try_step step =
      if step < 1e-6 then None
      else begin
        let candidate =
          project ~m ~nz_set ~lambda (Matrix.add !x (Matrix.scale step gradient))
        in
        if Matrix.is_spd candidate then Some candidate else try_step (step /. 2.0)
      end
    in
    match try_step options.step with
    | None -> continue_ := false
    | Some next ->
      let moved = Matrix.frobenius_distance next !x in
      x := next;
      if moved < options.tolerance then continue_ := false
  done;
  (* Prune tiny off-diagonals: they would become near-zero factors that
     cost inference time without informing it. *)
  let result = Matrix.copy !x in
  let n = Matrix.dim result in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && abs_float (Matrix.get result i j) < options.prune_below then
        Matrix.set result i j 0.0
    done
  done;
  result

let offdiag_nonzeros x =
  let n = Matrix.dim x in
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = Matrix.get x i j in
      if v <> 0.0 then out := (i, j, v) :: !out
    done
  done;
  List.rev !out
