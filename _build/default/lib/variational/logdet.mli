(** The log-determinant relaxation with an l1 box constraint —
    line 4 of Algorithm 1:

    {v
      argmax_X  log det X
      s.t.      X_kk = M_kk + 1/3
                |X_kj - M_kj| <= lambda
                X_kj = 0  when (k, j) not in NZ
    v}

    solved by projected gradient ascent ([grad log det X = inv X], then
    project onto the box/equality/sparsity constraints), with backtracking
    to stay inside the positive-definite cone.  The solution estimates a
    sparse inverse covariance; its non-zero off-diagonal entries become the
    pairwise factors of the approximate graph, and [lambda] trades sparsity
    (hence inference speed) against fidelity — Figure 6 of the paper. *)

module Matrix = Dd_linalg.Matrix

type options = {
  max_iterations : int;
  step : float;  (** initial gradient step *)
  tolerance : float;  (** stop when the iterate moves less than this *)
  prune_below : float;  (** zero out |X_kj| below this after solving *)
}

val default : options

val solve :
  ?options:options -> nz:(int * int) list -> lambda:float -> Matrix.t -> Matrix.t
(** [solve ~nz ~lambda m] returns the constrained maximizer (approximately)
    for the estimated covariance matrix [m]. *)

val offdiag_nonzeros : Matrix.t -> (int * int * float) list
(** Entries [(i, j, x)] with [i < j] and [x <> 0]. *)
