test/test_core.ml: Alcotest Array Dd_core Dd_datalog Dd_fgraph Dd_inference Dd_relational Dd_util Filename Fun Hashtbl List Option Result Sys
