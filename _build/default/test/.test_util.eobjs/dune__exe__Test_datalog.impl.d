test/test_datalog.ml: Alcotest Dd_datalog Dd_relational Gen List Option Printf QCheck QCheck_alcotest Result String Test
