test/test_ddlog.ml: Alcotest Dd_core Dd_datalog Dd_ddlog Dd_fgraph Dd_relational List Result String
