test/test_ddlog.mli:
