test/test_fgraph.ml: Alcotest Array Dd_fgraph Dd_util Filename Fun List Option QCheck QCheck_alcotest Sys Test
