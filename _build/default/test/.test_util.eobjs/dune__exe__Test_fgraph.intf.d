test/test_fgraph.mli:
