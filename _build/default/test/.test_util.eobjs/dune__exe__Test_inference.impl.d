test/test_inference.ml: Alcotest Array Dd_fgraph Dd_inference Dd_util List Option Printf QCheck QCheck_alcotest Test
