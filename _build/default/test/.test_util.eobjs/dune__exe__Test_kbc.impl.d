test/test_kbc.ml: Alcotest Array Dd_core Dd_datalog Dd_fgraph Dd_inference Dd_kbc Dd_relational Dd_util Hashtbl List Option Result String
