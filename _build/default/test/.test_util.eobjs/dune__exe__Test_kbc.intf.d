test/test_kbc.mli:
