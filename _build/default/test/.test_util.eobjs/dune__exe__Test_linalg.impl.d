test/test_linalg.ml: Alcotest Array Dd_linalg Dd_util Format Gen List QCheck QCheck_alcotest Test
