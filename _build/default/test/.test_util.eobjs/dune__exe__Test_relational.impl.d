test/test_relational.ml: Alcotest Array Dd_relational Format Gen Hashtbl List QCheck QCheck_alcotest Test
