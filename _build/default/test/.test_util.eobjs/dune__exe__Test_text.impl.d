test/test_text.ml: Alcotest Array Dd_kbc Dd_relational Dd_text List String
