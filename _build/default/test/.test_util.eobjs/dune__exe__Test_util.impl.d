test/test_util.ml: Alcotest Array Dd_util Float Gen Hashtbl List QCheck QCheck_alcotest String Test
