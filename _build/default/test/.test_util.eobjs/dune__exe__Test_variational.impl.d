test/test_variational.ml: Alcotest Array Dd_fgraph Dd_inference Dd_linalg Dd_util Dd_variational List
