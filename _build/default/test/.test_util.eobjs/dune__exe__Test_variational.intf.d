test/test_variational.mli:
