(* Tests for Dd_datalog: AST safety, stratification, the matcher,
   stratified semi-naive evaluation, and — most importantly — golden
   equivalence of DRed incremental maintenance against from-scratch
   re-evaluation. *)

module Value = Dd_relational.Value
module Schema = Dd_relational.Schema
module Tuple = Dd_relational.Tuple
module Relation = Dd_relational.Relation
module Database = Dd_relational.Database
module Ast = Dd_datalog.Ast
module Stratify = Dd_datalog.Stratify
module Matcher = Dd_datalog.Matcher
module Engine = Dd_datalog.Engine
module Dred = Dd_datalog.Dred

let i = Value.int
let v name = Ast.Var name
let c value = Ast.Const value
let atom = Ast.atom

let edge_schema = Schema.make [ ("src", Value.TInt); ("dst", Value.TInt) ]

let db_with_edges edges =
  let db = Database.create () in
  let r = Database.create_table db "edge" edge_schema in
  List.iter (fun (a, b) -> Relation.insert r [| i a; i b |]) edges;
  db

(* --- ast -------------------------------------------------------------------- *)

let test_ast_vars () =
  let r =
    Ast.rule (atom "p" [ v "x" ]) [ Ast.Pos (atom "q" [ v "x"; v "y" ]) ]
  in
  Alcotest.(check (list string)) "rule vars" [ "x"; "y" ] (Ast.rule_vars r);
  Alcotest.(check (list string)) "positive vars" [ "x"; "y" ] (Ast.positive_body_vars r);
  Alcotest.(check string) "head pred" "p" (Ast.head_pred r);
  Alcotest.(check (list string)) "body preds" [ "q" ] (Ast.body_preds r)

let test_safety_ok () =
  let r = Ast.rule (atom "p" [ v "x" ]) [ Ast.Pos (atom "q" [ v "x" ]) ] in
  Alcotest.(check bool) "safe" true (Result.is_ok (Ast.check_safety r))

let test_safety_unbound_head () =
  let r = Ast.rule (atom "p" [ v "z" ]) [ Ast.Pos (atom "q" [ v "x" ]) ] in
  Alcotest.(check bool) "unsafe head" true (Result.is_error (Ast.check_safety r))

let test_safety_unbound_negation () =
  let r =
    Ast.rule (atom "p" [ v "x" ])
      [ Ast.Pos (atom "q" [ v "x" ]); Ast.Neg (atom "r" [ v "y" ]) ]
  in
  Alcotest.(check bool) "unsafe negation" true (Result.is_error (Ast.check_safety r))

let test_safety_unbound_guard () =
  let r =
    Ast.rule ~guards:[ Ast.Lt (v "x", v "w") ] (atom "p" [ v "x" ])
      [ Ast.Pos (atom "q" [ v "x" ]) ]
  in
  Alcotest.(check bool) "unsafe guard" true (Result.is_error (Ast.check_safety r))

let test_rule_to_string () =
  let r =
    Ast.rule
      ~guards:[ Ast.Neq (v "x", v "y") ]
      (atom "p" [ v "x" ])
      [ Ast.Pos (atom "q" [ v "x"; v "y" ]); Ast.Neg (atom "r" [ v "y" ]) ]
  in
  Alcotest.(check string) "printed" "p(x) :- q(x, y), !r(y), x != y." (Ast.rule_to_string r)

(* --- stratification ---------------------------------------------------------- *)

let test_stratify_chain () =
  let program =
    [
      Ast.rule (atom "a" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
      Ast.rule (atom "b" [ v "x" ]) [ Ast.Pos (atom "a" [ v "x" ]) ];
    ]
  in
  match Stratify.stratify program with
  | Error e -> Alcotest.fail e
  | Ok strata ->
    Alcotest.(check int) "two strata" 2 (List.length strata);
    Alcotest.(check (list string)) "a first" [ "a" ] (List.nth strata 0).Stratify.preds;
    List.iter
      (fun stratum -> Alcotest.(check bool) "non-recursive" false stratum.Stratify.recursive)
      strata

let test_stratify_recursion_flag () =
  let program =
    [
      Ast.rule (atom "tc" [ v "x"; v "y" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
      Ast.rule
        (atom "tc" [ v "x"; v "z" ])
        [ Ast.Pos (atom "tc" [ v "x"; v "y" ]); Ast.Pos (atom "edge" [ v "y"; v "z" ]) ];
    ]
  in
  match Stratify.stratify program with
  | Error e -> Alcotest.fail e
  | Ok strata ->
    Alcotest.(check int) "one stratum" 1 (List.length strata);
    Alcotest.(check bool) "recursive" true (List.hd strata).Stratify.recursive

let test_stratify_negation_ok () =
  let program =
    [
      Ast.rule (atom "a" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
      Ast.rule
        (atom "b" [ v "x" ])
        [ Ast.Pos (atom "edge" [ v "x"; v "y" ]); Ast.Neg (atom "a" [ v "y" ]) ];
    ]
  in
  match Stratify.stratify program with
  | Error e -> Alcotest.fail e
  | Ok strata ->
    (* a must be fully evaluated before b. *)
    let order = List.concat_map (fun st -> st.Stratify.preds) strata in
    Alcotest.(check (list string)) "a before b" [ "a"; "b" ] order

let test_stratify_negative_cycle_rejected () =
  let program =
    [
      Ast.rule (atom "a" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]); Ast.Neg (atom "b" [ v "x" ]) ];
      Ast.rule (atom "b" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]); Ast.Neg (atom "a" [ v "x" ]) ];
    ]
  in
  Alcotest.(check bool) "rejected" true (Result.is_error (Stratify.stratify program))

let test_affected_idb () =
  let program =
    [
      Ast.rule (atom "a" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
      Ast.rule (atom "b" [ v "x" ]) [ Ast.Pos (atom "a" [ v "x" ]) ];
      Ast.rule (atom "z" [ v "x" ]) [ Ast.Pos (atom "other" [ v "x" ]) ];
    ]
  in
  Alcotest.(check (list string)) "edge affects a,b" [ "a"; "b" ]
    (Stratify.affected_idb program [ "edge" ]);
  Alcotest.(check (list string)) "other affects z" [ "z" ]
    (Stratify.affected_idb program [ "other" ])

let test_depends_on () =
  let program =
    [
      Ast.rule (atom "a" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
      Ast.rule (atom "b" [ v "x" ]) [ Ast.Pos (atom "a" [ v "x" ]) ];
    ]
  in
  Alcotest.(check (list string)) "b depends" [ "a"; "b"; "edge" ]
    (Stratify.depends_on program "b")

(* --- matcher ------------------------------------------------------------------ *)

let lookup_of db = Engine.lookup_in db

let test_matcher_simple_join () =
  let db = db_with_edges [ (1, 2); (2, 3); (3, 4) ] in
  (* path2(x,z) :- edge(x,y), edge(y,z) *)
  let rule =
    Ast.rule
      (atom "path2" [ v "x"; v "z" ])
      [ Ast.Pos (atom "edge" [ v "x"; v "y" ]); Ast.Pos (atom "edge" [ v "y"; v "z" ]) ]
  in
  let result = Matcher.eval_rule ~lookup:(lookup_of db) rule in
  Alcotest.(check int) "two paths" 2 (List.length result);
  Alcotest.(check bool) "1->3" true
    (List.exists (fun (t, _) -> Tuple.equal t [| i 1; i 3 |]) result)

let test_matcher_constants () =
  let db = db_with_edges [ (1, 2); (2, 3) ] in
  let rule =
    Ast.rule (atom "from1" [ v "y" ]) [ Ast.Pos (atom "edge" [ c (i 1); v "y" ]) ]
  in
  let result = Matcher.eval_rule ~lookup:(lookup_of db) rule in
  Alcotest.(check int) "one" 1 (List.length result);
  Alcotest.(check bool) "is 2" true (Tuple.equal (fst (List.hd result)) [| i 2 |])

let test_matcher_repeated_variable () =
  let db = db_with_edges [ (1, 1); (1, 2); (3, 3) ] in
  let rule = Ast.rule (atom "self" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "x" ]) ] in
  let result = Matcher.eval_rule ~lookup:(lookup_of db) rule in
  Alcotest.(check int) "two self loops" 2 (List.length result)

let test_matcher_guards () =
  let db = db_with_edges [ (1, 2); (2, 2); (3, 1) ] in
  let rule =
    Ast.rule
      ~guards:[ Ast.Lt (v "x", v "y") ]
      (atom "up" [ v "x"; v "y" ])
      [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ]
  in
  let result = Matcher.eval_rule ~lookup:(lookup_of db) rule in
  Alcotest.(check int) "only ascending" 1 (List.length result)

let test_matcher_guard_against_constant () =
  let db = db_with_edges [ (1, 2); (2, 3) ] in
  let rule =
    Ast.rule
      ~guards:[ Ast.Neq (v "x", c (i 1)) ]
      (atom "not1" [ v "x" ])
      [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ]
  in
  let result = Matcher.eval_rule ~lookup:(lookup_of db) rule in
  Alcotest.(check int) "one" 1 (List.length result)

let test_matcher_negation () =
  let db = db_with_edges [ (1, 2); (2, 3) ] in
  let blocked = Database.create_table db "blocked" (Schema.make [ ("n", Value.TInt) ]) in
  Relation.insert blocked [| i 2 |];
  let rule =
    Ast.rule
      (atom "ok" [ v "x"; v "y" ])
      [ Ast.Pos (atom "edge" [ v "x"; v "y" ]); Ast.Neg (atom "blocked" [ v "y" ]) ]
  in
  let result = Matcher.eval_rule ~lookup:(lookup_of db) rule in
  Alcotest.(check int) "one survives" 1 (List.length result);
  Alcotest.(check bool) "2->3 kept" true (Tuple.equal (fst (List.hd result)) [| i 2; i 3 |])

let test_matcher_negation_before_binding () =
  (* The negated atom appears before its variables are bound; matching must
     defer it. *)
  let db = db_with_edges [ (1, 2) ] in
  let blocked = Database.create_table db "blocked" (Schema.make [ ("n", Value.TInt) ]) in
  Relation.insert blocked [| i 9 |];
  let rule =
    Ast.rule (atom "ok" [ v "x" ])
      [ Ast.Neg (atom "blocked" [ v "x" ]); Ast.Pos (atom "edge" [ v "x"; v "y" ]) ]
  in
  let result = Matcher.eval_rule ~lookup:(lookup_of db) rule in
  Alcotest.(check int) "deferred negation" 1 (List.length result)

let test_matcher_ground_fact () =
  let rule = Ast.rule (atom "fact" [ c (i 7) ]) [] in
  let result = Matcher.eval_rule ~lookup:(fun _ -> Matcher.empty_relation) rule in
  Alcotest.(check int) "one fact" 1 (List.length result);
  Alcotest.(check int) "count one" 1 (snd (List.hd result))

let test_matcher_derivation_counts () =
  (* p(x) :- edge(x, y): two groundings for x=1. *)
  let db = db_with_edges [ (1, 2); (1, 3); (2, 3) ] in
  let rule = Ast.rule (atom "p" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ] in
  let result = Matcher.eval_rule ~lookup:(lookup_of db) rule in
  let count_of value =
    try snd (List.find (fun (t, _) -> Tuple.equal t [| i value |]) result) with Not_found -> 0
  in
  Alcotest.(check int) "x=1 twice" 2 (count_of 1);
  Alcotest.(check int) "x=2 once" 1 (count_of 2)

let test_matcher_staged_matches_difference () =
  (* Golden: staged evaluation with an insertion delta must produce exactly
     the new groundings (full eval after minus full eval before). *)
  let before_edges = [ (1, 2); (2, 3) ] in
  let new_edge = (3, 4) in
  let rule =
    Ast.rule
      (atom "path2" [ v "x"; v "z" ])
      [ Ast.Pos (atom "edge" [ v "x"; v "y" ]); Ast.Pos (atom "edge" [ v "y"; v "z" ]) ]
  in
  let db_before = db_with_edges before_edges in
  let db_after = db_with_edges (new_edge :: before_edges) in
  let eval db = Matcher.eval_rule ~lookup:(lookup_of db) rule in
  let full_before = eval db_before and full_after = eval db_after in
  let merged = Tuple.Hashtbl.create 16 in
  List.iter (fun (t, count) -> Tuple.Hashtbl.replace merged t count) full_after;
  List.iter
    (fun (t, count) ->
      let current = try Tuple.Hashtbl.find merged t with Not_found -> 0 in
      Tuple.Hashtbl.replace merged t (current - count))
    full_before;
  let expected =
    Tuple.Hashtbl.fold (fun t count acc -> if count <> 0 then (t, count) :: acc else acc)
      merged []
  in
  (* Staged evaluation over both delta positions. *)
  let delta = [ ([| i (fst new_edge); i (snd new_edge) |], 1) ] in
  let staged =
    List.concat
      [
        Matcher.eval_rule_staged
          ~before:(lookup_of db_after) ~after:(lookup_of db_before) ~delta_pos:0 ~delta rule;
        Matcher.eval_rule_staged
          ~before:(lookup_of db_after) ~after:(lookup_of db_before) ~delta_pos:1 ~delta rule;
      ]
  in
  let total = Tuple.Hashtbl.create 16 in
  List.iter
    (fun (t, count) ->
      let current = try Tuple.Hashtbl.find total t with Not_found -> 0 in
      Tuple.Hashtbl.replace total t (current + count))
    staged;
  let staged_list =
    Tuple.Hashtbl.fold (fun t count acc -> if count <> 0 then (t, count) :: acc else acc)
      total []
  in
  let normalize l = List.sort compare (List.map (fun (t, n) -> (Tuple.to_string t, n)) l) in
  Alcotest.(check (list (pair string int))) "staged = diff" (normalize expected)
    (normalize staged_list)

let test_matcher_negated_delta_sign () =
  (* ok(x,y) :- edge(x,y), !blocked(y).  When 3 enters blocked, the
     grounding (2,3) is lost: staged eval with flip -1 must report it with
     a negative count. *)
  let db = db_with_edges [ (1, 2); (2, 3) ] in
  let blocked = Database.create_table db "blocked" (Schema.make [ ("n", Value.TInt) ]) in
  Relation.insert blocked [| i 3 |];
  let rule =
    Ast.rule
      (atom "ok" [ v "x"; v "y" ])
      [ Ast.Pos (atom "edge" [ v "x"; v "y" ]); Ast.Neg (atom "blocked" [ v "y" ]) ]
  in
  (* The negated literal's delta carries -1 for tuples that entered. *)
  let staged =
    Matcher.eval_rule_staged ~before:(lookup_of db) ~after:(lookup_of db) ~delta_pos:1
      ~delta:[ ([| i 3 |], -1) ]
      rule
  in
  Alcotest.(check int) "one lost" 1 (List.length staged);
  let tuple, count = List.hd staged in
  Alcotest.(check bool) "the 2->3 grounding" true (Tuple.equal tuple [| i 2; i 3 |]);
  Alcotest.(check int) "negative" (-1) count

let test_matcher_body_order_invariance () =
  (* Head tuples and derivation counts must not depend on the order the
     body literals are written in. *)
  let db = db_with_edges [ (1, 2); (2, 3); (2, 4); (3, 4) ] in
  let blocked = Database.create_table db "blocked" (Schema.make [ ("n", Value.TInt) ]) in
  Relation.insert blocked [| i 4 |];
  let body =
    [
      Ast.Pos (atom "edge" [ v "x"; v "y" ]);
      Ast.Pos (atom "edge" [ v "y"; v "z" ]);
      Ast.Neg (atom "blocked" [ v "z" ]);
    ]
  in
  let head = atom "p" [ v "x"; v "z" ] in
  let normalize result =
    List.sort compare (List.map (fun (t, n) -> (Tuple.to_string t, n)) result)
  in
  let reference =
    normalize (Matcher.eval_rule ~lookup:(lookup_of db) (Ast.rule head body))
  in
  (* All 6 permutations of the body. *)
  let permutations = function
    | [ a; b; c ] ->
      [ [ a; b; c ]; [ a; c; b ]; [ b; a; c ]; [ b; c; a ]; [ c; a; b ]; [ c; b; a ] ]
    | _ -> assert false
  in
  List.iter
    (fun permuted ->
      let result =
        normalize (Matcher.eval_rule ~lookup:(lookup_of db) (Ast.rule head permuted))
      in
      Alcotest.(check (list (pair string int))) "order invariant" reference result)
    (permutations body)

(* --- engine -------------------------------------------------------------------- *)

let tc_program =
  [
    Ast.rule (atom "tc" [ v "x"; v "y" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
    Ast.rule
      (atom "tc" [ v "x"; v "z" ])
      [ Ast.Pos (atom "tc" [ v "x"; v "y" ]); Ast.Pos (atom "edge" [ v "y"; v "z" ]) ];
  ]

let test_engine_transitive_closure () =
  let db = db_with_edges [ (1, 2); (2, 3); (3, 4) ] in
  Engine.run_exn db tc_program;
  let tc = Database.find db "tc" in
  Alcotest.(check int) "6 pairs" 6 (Relation.cardinality tc);
  Alcotest.(check bool) "1 reaches 4" true (Relation.mem tc [| i 1; i 4 |])

let test_engine_cycle () =
  let db = db_with_edges [ (1, 2); (2, 1) ] in
  Engine.run_exn db tc_program;
  let tc = Database.find db "tc" in
  Alcotest.(check int) "4 pairs incl self" 4 (Relation.cardinality tc);
  Alcotest.(check bool) "self loop derived" true (Relation.mem tc [| i 1; i 1 |])

let test_engine_same_level_dependency () =
  (* b depends on a, both non-recursive; evaluation must order them. *)
  let program =
    [
      Ast.rule (atom "a" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
      Ast.rule (atom "b" [ v "x" ]) [ Ast.Pos (atom "a" [ v "x" ]) ];
    ]
  in
  let db = db_with_edges [ (1, 2); (5, 6) ] in
  Engine.run_exn db program;
  Alcotest.(check int) "b populated" 2 (Relation.cardinality (Database.find db "b"))

let test_engine_negation_program () =
  (* sink(x) :- edge(y, x), !has_out(x);  has_out(x) :- edge(x, y). *)
  let program =
    [
      Ast.rule (atom "has_out" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
      Ast.rule (atom "sink" [ v "x" ])
        [ Ast.Pos (atom "edge" [ v "y"; v "x" ]); Ast.Neg (atom "has_out" [ v "x" ]) ];
    ]
  in
  let db = db_with_edges [ (1, 2); (2, 3) ] in
  Engine.run_exn db program;
  let sink = Database.find db "sink" in
  Alcotest.(check int) "one sink" 1 (Relation.cardinality sink);
  Alcotest.(check bool) "3 is sink" true (Relation.mem sink [| i 3 |])

let test_engine_counts_diamond () =
  (* p(x) :- edge(x, y): node 1 has two out-edges -> count 2. *)
  let program =
    [ Ast.rule (atom "p" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ] ]
  in
  let db = db_with_edges [ (1, 2); (1, 3) ] in
  Engine.run_exn db program;
  Alcotest.(check int) "two derivations" 2 (Relation.count (Database.find db "p") [| i 1 |])

let test_engine_rerun_clears () =
  let db = db_with_edges [ (1, 2) ] in
  Engine.run_exn db tc_program;
  (* Remove the edge and rerun: tc must be recomputed, not accumulated. *)
  ignore (Relation.remove (Database.find db "edge") [| i 1; i 2 |]);
  Engine.run_exn db tc_program;
  Alcotest.(check int) "tc empty" 0 (Relation.cardinality (Database.find db "tc"))

(* --- dred: golden equivalence ---------------------------------------------------- *)

(* Apply changes via DRed and compare the database against a fresh
   evaluation over the updated base tables. *)
let dred_equivalence ~program ~initial_edges ~inserts ~deletes =
  let db = db_with_edges initial_edges in
  Engine.run_exn db program;
  let delta = Dred.Delta.create () in
  List.iter (fun (a, b) -> Dred.Delta.insert delta "edge" [| i a; i b |]) inserts;
  List.iter (fun (a, b) -> Dred.Delta.delete delta "edge" [| i a; i b |]) deletes;
  let flips =
    match Dred.apply db program delta with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  (* Fresh evaluation over the final base tables. *)
  let final_edges =
    List.filter (fun e -> not (List.mem e deletes)) (initial_edges @ inserts)
    |> List.sort_uniq compare
  in
  let fresh = db_with_edges final_edges in
  Engine.run_exn fresh program;
  let empty = Relation.create (Schema.make []) in
  List.iter
    (fun pred ->
      let incremental = Option.value (Database.find_opt db pred) ~default:empty in
      let scratch = Option.value (Database.find_opt fresh pred) ~default:empty in
      if not (Relation.equal_contents incremental scratch) then
        Alcotest.failf "predicate %s differs: incremental %d tuples vs scratch %d" pred
          (Relation.cardinality incremental) (Relation.cardinality scratch))
    (Ast.idb_preds program);
  flips

let nonrec_program =
  [
    Ast.rule (atom "p" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
    Ast.rule
      (atom "q" [ v "x"; v "z" ])
      [ Ast.Pos (atom "p" [ v "x" ]); Ast.Pos (atom "edge" [ v "x"; v "z" ]) ];
  ]

let test_dred_insert_nonrecursive () =
  let flips =
    dred_equivalence ~program:nonrec_program ~initial_edges:[ (1, 2); (2, 3) ]
      ~inserts:[ (3, 4); (1, 5) ] ~deletes:[]
  in
  Alcotest.(check bool) "p gained 3" true
    (List.exists (fun (t, n) -> Tuple.equal t [| i 3 |] && n = 1) (Dred.Delta.flips flips "p"))

let test_dred_delete_nonrecursive () =
  let flips =
    dred_equivalence ~program:nonrec_program ~initial_edges:[ (1, 2); (2, 3); (1, 5) ]
      ~inserts:[] ~deletes:[ (2, 3) ]
  in
  Alcotest.(check bool) "p lost 2" true
    (List.exists (fun (t, n) -> Tuple.equal t [| i 2 |] && n = -1) (Dred.Delta.flips flips "p"))

let test_dred_delete_keeps_alternative_derivation () =
  (* Node 1 has two out-edges; deleting one must not remove p(1). *)
  let flips =
    dred_equivalence ~program:nonrec_program ~initial_edges:[ (1, 2); (1, 3) ] ~inserts:[]
      ~deletes:[ (1, 2) ]
  in
  Alcotest.(check (list (pair string int))) "no p flips" []
    (List.map (fun (t, n) -> (Tuple.to_string t, n)) (Dred.Delta.flips flips "p"))

let test_dred_mixed_update () =
  ignore
    (dred_equivalence ~program:nonrec_program ~initial_edges:[ (1, 2); (2, 3); (3, 4) ]
       ~inserts:[ (4, 5); (2, 6) ] ~deletes:[ (1, 2); (3, 4) ])

let test_dred_recursive_insert () =
  ignore
    (dred_equivalence ~program:tc_program ~initial_edges:[ (1, 2); (2, 3) ]
       ~inserts:[ (3, 4) ] ~deletes:[])

let test_dred_recursive_delete () =
  (* Deleting a bridge edge removes many tc pairs; counting alone cannot do
     this (cyclic support), the recompute fallback must. *)
  ignore
    (dred_equivalence ~program:tc_program ~initial_edges:[ (1, 2); (2, 3); (3, 1); (3, 4) ]
       ~inserts:[] ~deletes:[ (2, 3) ])

let test_dred_negation_program () =
  let program =
    [
      Ast.rule (atom "has_out" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
      Ast.rule (atom "sink" [ v "x" ])
        [ Ast.Pos (atom "edge" [ v "y"; v "x" ]); Ast.Neg (atom "has_out" [ v "x" ]) ];
    ]
  in
  (* Adding 3 -> 4 makes 3 lose sink status and 4 gain it. *)
  let flips =
    dred_equivalence ~program ~initial_edges:[ (1, 2); (2, 3) ] ~inserts:[ (3, 4) ]
      ~deletes:[]
  in
  let sink_flips =
    List.sort compare
      (List.map (fun (t, n) -> (Tuple.to_string t, n)) (Dred.Delta.flips flips "sink"))
  in
  Alcotest.(check (list (pair string int))) "sink flips" [ ("(3)", -1); ("(4)", 1) ] sink_flips

let test_dred_noop_update () =
  (* Inserting an existing tuple and deleting a non-existent one: no flips. *)
  let flips =
    dred_equivalence ~program:nonrec_program ~initial_edges:[ (1, 2) ] ~inserts:[ (1, 2) ]
      ~deletes:[ (9, 9) ]
  in
  Alcotest.(check bool) "no changes" true (Dred.Delta.is_empty flips)

let test_dred_rejects_idb_change () =
  let db = db_with_edges [ (1, 2) ] in
  Engine.run_exn db nonrec_program;
  let delta = Dred.Delta.create () in
  Dred.Delta.insert delta "p" [| i 9 |];
  Alcotest.(check bool) "error" true (Result.is_error (Dred.apply db nonrec_program delta))

let test_dred_seeds_new_rule () =
  (* Simulate adding rule r(x) :- p(x): evaluate it as a seed and let DRed
     integrate and propagate. *)
  let db = db_with_edges [ (1, 2); (2, 3) ] in
  Engine.run_exn db nonrec_program;
  let new_rule = Ast.rule (atom "r" [ v "x" ]) [ Ast.Pos (atom "p" [ v "x" ]) ] in
  let program = nonrec_program @ [ new_rule ] in
  let seeds = [ ("r", Matcher.eval_rule ~lookup:(Engine.lookup_in db) new_rule) ] in
  (match Dred.apply ~seeds db program (Dred.Delta.create ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let fresh = db_with_edges [ (1, 2); (2, 3) ] in
  Engine.run_exn fresh program;
  Alcotest.(check bool) "r matches scratch" true
    (Relation.equal_contents (Database.find db "r") (Database.find fresh "r"))

let test_dred_guard_rule () =
  let program =
    [
      Ast.rule
        ~guards:[ Ast.Neq (v "x", v "y") ]
        (atom "strict" [ v "x"; v "y" ])
        [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
    ]
  in
  ignore
    (dred_equivalence ~program ~initial_edges:[ (1, 1); (1, 2) ] ~inserts:[ (2, 2); (2, 3) ]
       ~deletes:[ (1, 2) ])

(* qcheck: random graphs and random mutations, checked against scratch for
   both a non-recursive join program and transitive closure. *)
let qcheck_tests =
  let open QCheck in
  let edge_gen = Gen.(pair (0 -- 5) (0 -- 5)) in
  let edges_gen = Gen.list_size Gen.(0 -- 12) edge_gen in
  let scenario_gen = Gen.triple edges_gen (Gen.list_size Gen.(0 -- 4) edge_gen) (Gen.list_size Gen.(0 -- 4) edge_gen) in
  let arb =
    make
      ~print:(fun (a, b, c) ->
        Printf.sprintf "init=%s ins=%s del=%s"
          (String.concat ";" (List.map (fun (x, y) -> Printf.sprintf "%d-%d" x y) a))
          (String.concat ";" (List.map (fun (x, y) -> Printf.sprintf "%d-%d" x y) b))
          (String.concat ";" (List.map (fun (x, y) -> Printf.sprintf "%d-%d" x y) c)))
      scenario_gen
  in
  let run program (initial, inserts, deletes) =
    let initial = List.sort_uniq compare initial in
    match
      dred_equivalence ~program ~initial_edges:initial ~inserts ~deletes
    with
    | _ -> true
    | exception Alcotest.Test_error -> false
  in
  [
    Test.make ~name:"dred equals scratch (join program)" ~count:150 arb (run nonrec_program);
    Test.make ~name:"dred equals scratch (transitive closure)" ~count:100 arb (run tc_program);
  ]

let () =
  Alcotest.run "dd_datalog"
    [
      ( "ast",
        [
          Alcotest.test_case "vars" `Quick test_ast_vars;
          Alcotest.test_case "safety ok" `Quick test_safety_ok;
          Alcotest.test_case "unbound head" `Quick test_safety_unbound_head;
          Alcotest.test_case "unbound negation" `Quick test_safety_unbound_negation;
          Alcotest.test_case "unbound guard" `Quick test_safety_unbound_guard;
          Alcotest.test_case "to_string" `Quick test_rule_to_string;
        ] );
      ( "stratify",
        [
          Alcotest.test_case "chain" `Quick test_stratify_chain;
          Alcotest.test_case "recursion flag" `Quick test_stratify_recursion_flag;
          Alcotest.test_case "negation ok" `Quick test_stratify_negation_ok;
          Alcotest.test_case "negative cycle" `Quick test_stratify_negative_cycle_rejected;
          Alcotest.test_case "affected idb" `Quick test_affected_idb;
          Alcotest.test_case "depends on" `Quick test_depends_on;
        ] );
      ( "matcher",
        [
          Alcotest.test_case "simple join" `Quick test_matcher_simple_join;
          Alcotest.test_case "constants" `Quick test_matcher_constants;
          Alcotest.test_case "repeated variable" `Quick test_matcher_repeated_variable;
          Alcotest.test_case "guards" `Quick test_matcher_guards;
          Alcotest.test_case "guard vs constant" `Quick test_matcher_guard_against_constant;
          Alcotest.test_case "negation" `Quick test_matcher_negation;
          Alcotest.test_case "deferred negation" `Quick test_matcher_negation_before_binding;
          Alcotest.test_case "ground fact" `Quick test_matcher_ground_fact;
          Alcotest.test_case "derivation counts" `Quick test_matcher_derivation_counts;
          Alcotest.test_case "staged = diff" `Quick test_matcher_staged_matches_difference;
          Alcotest.test_case "negated delta sign" `Quick test_matcher_negated_delta_sign;
          Alcotest.test_case "body order invariance" `Quick test_matcher_body_order_invariance;
        ] );
      ( "engine",
        [
          Alcotest.test_case "transitive closure" `Quick test_engine_transitive_closure;
          Alcotest.test_case "cycle" `Quick test_engine_cycle;
          Alcotest.test_case "same-level dependency" `Quick test_engine_same_level_dependency;
          Alcotest.test_case "negation program" `Quick test_engine_negation_program;
          Alcotest.test_case "diamond counts" `Quick test_engine_counts_diamond;
          Alcotest.test_case "rerun clears" `Quick test_engine_rerun_clears;
        ] );
      ( "dred",
        [
          Alcotest.test_case "insert non-recursive" `Quick test_dred_insert_nonrecursive;
          Alcotest.test_case "delete non-recursive" `Quick test_dred_delete_nonrecursive;
          Alcotest.test_case "delete keeps alternative" `Quick
            test_dred_delete_keeps_alternative_derivation;
          Alcotest.test_case "mixed update" `Quick test_dred_mixed_update;
          Alcotest.test_case "recursive insert" `Quick test_dred_recursive_insert;
          Alcotest.test_case "recursive delete" `Quick test_dred_recursive_delete;
          Alcotest.test_case "negation" `Quick test_dred_negation_program;
          Alcotest.test_case "noop update" `Quick test_dred_noop_update;
          Alcotest.test_case "rejects IDB change" `Quick test_dred_rejects_idb_change;
          Alcotest.test_case "seeds new rule" `Quick test_dred_seeds_new_rule;
          Alcotest.test_case "guard rule" `Quick test_dred_guard_rule;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
