(* Tests for Dd_ddlog: lexer and surface-language parser. *)

module Lexer = Dd_ddlog.Lexer
module Parser = Dd_ddlog.Parser
module Program = Dd_core.Program
module Ast = Dd_datalog.Ast
module Value = Dd_relational.Value
module Schema = Dd_relational.Schema
module Semantics = Dd_fgraph.Semantics

let tokens src = List.map fst (Lexer.tokenize src)

(* --- lexer ------------------------------------------------------------------- *)

let test_lex_idents_and_punct () =
  Alcotest.(check bool) "shape" true
    (tokens "foo(x, y)."
    = [ Lexer.IDENT "foo"; Lexer.LPAREN; Lexer.IDENT "x"; Lexer.COMMA; Lexer.IDENT "y";
        Lexer.RPAREN; Lexer.DOT; Lexer.EOF ])

let test_lex_numbers () =
  Alcotest.(check bool) "int" true (tokens "42" = [ Lexer.INT 42; Lexer.EOF ]);
  Alcotest.(check bool) "negative" true (tokens "-7" = [ Lexer.INT (-7); Lexer.EOF ]);
  Alcotest.(check bool) "float" true (tokens "1.5" = [ Lexer.FLOAT 1.5; Lexer.EOF ]);
  Alcotest.(check bool) "negative float" true (tokens "-0.25" = [ Lexer.FLOAT (-0.25); Lexer.EOF ]);
  Alcotest.(check bool) "exponent" true (tokens "2.5e2" = [ Lexer.FLOAT 250.0; Lexer.EOF ])

let test_lex_strings () =
  Alcotest.(check bool) "plain" true (tokens {|"hello"|} = [ Lexer.STRING "hello"; Lexer.EOF ]);
  Alcotest.(check bool) "escape" true
    (tokens {|"a\nb"|} = [ Lexer.STRING "a\nb"; Lexer.EOF ])

let test_lex_operators () =
  Alcotest.(check bool) "turnstile" true (tokens ":-" = [ Lexer.TURNSTILE; Lexer.EOF ]);
  Alcotest.(check bool) "neq" true (tokens "!=" = [ Lexer.NEQ; Lexer.EOF ]);
  Alcotest.(check bool) "bang" true (tokens "!x" = [ Lexer.BANG; Lexer.IDENT "x"; Lexer.EOF ]);
  Alcotest.(check bool) "le" true (tokens "<=" = [ Lexer.LE; Lexer.EOF ]);
  Alcotest.(check bool) "lt" true (tokens "<" = [ Lexer.LT; Lexer.EOF ])

let test_lex_bools () =
  Alcotest.(check bool) "true" true (tokens "true" = [ Lexer.BOOL true; Lexer.EOF ]);
  Alcotest.(check bool) "false" true (tokens "false" = [ Lexer.BOOL false; Lexer.EOF ])

let test_lex_comments () =
  Alcotest.(check bool) "line comment" true
    (tokens "a // comment here\nb" = [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ]);
  Alcotest.(check bool) "hash comment" true
    (tokens "a # comment\nb" = [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ])

let test_lex_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  let (_, pos_b) = List.nth toks 1 in
  Alcotest.(check int) "line" 2 pos_b.Lexer.line;
  Alcotest.(check int) "column" 3 pos_b.Lexer.column

let test_lex_error () =
  Alcotest.(check bool) "bad char" true
    (match Lexer.tokenize "a $ b" with
    | _ -> false
    | exception Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "unterminated string" true
    (match Lexer.tokenize {|"abc|} with
    | _ -> false
    | exception Lexer.Lex_error _ -> true)

(* --- parser ------------------------------------------------------------------- *)

let minimal =
  {|
  input edge(src int, dst int).
  query node_flag(n int).

  cand(x) :- edge(x, y).
  @classifier
  node_flag(x) :- cand(x), edge(x, f) weight = w(f) semantics = logical.
  @prior
  node_flag(x) :- cand(x) weight = -0.5.
  node_flag_ev(x, true) :- edge(x, 0).
|}

let parse_ok src =
  match Parser.parse src with
  | Ok prog -> prog
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_schemas () =
  let prog = parse_ok minimal in
  Alcotest.(check int) "one input" 1 (List.length prog.Program.input_schemas);
  let name, schema = List.hd prog.Program.input_schemas in
  Alcotest.(check string) "edge" "edge" name;
  Alcotest.(check (list string)) "cols" [ "src"; "dst" ] (Schema.names schema);
  Alcotest.(check int) "one query" 1 (List.length prog.Program.query_relations)

let test_parse_rule_kinds () =
  let prog = parse_ok minimal in
  let det, sup, inf =
    List.fold_left
      (fun (d, s, i) -> function
        | Program.Deterministic _ -> (d + 1, s, i)
        | Program.Supervise _ -> (d, s + 1, i)
        | Program.Infer _ -> (d, s, i + 1))
      (0, 0, 0) prog.Program.rules
  in
  Alcotest.(check int) "deterministic" 1 det;
  Alcotest.(check int) "supervision" 1 sup;
  Alcotest.(check int) "inference" 2 inf

let test_parse_rule_names () =
  let prog = parse_ok minimal in
  let names = List.map Program.rule_name prog.Program.rules in
  Alcotest.(check bool) "classifier named" true (List.mem "classifier" names);
  Alcotest.(check bool) "prior named" true (List.mem "prior" names)

let test_parse_weight_specs () =
  let prog = parse_ok minimal in
  let inference = Program.inference_rules prog in
  let classifier = List.find (fun r -> r.Program.name = "classifier") inference in
  (match classifier.Program.weight with
  | Program.Tied [ Ast.Var "f" ] -> ()
  | _ -> Alcotest.fail "expected tied weight on f");
  Alcotest.(check bool) "semantics" true (classifier.Program.semantics = Semantics.Logical);
  let prior = List.find (fun r -> r.Program.name = "prior") inference in
  (match prior.Program.weight with
  | Program.Fixed w -> Alcotest.(check (float 0.0)) "fixed -0.5" (-0.5) w
  | _ -> Alcotest.fail "expected fixed weight");
  (* Default semantics is Ratio. *)
  Alcotest.(check bool) "default semantics" true (prior.Program.semantics = Semantics.Ratio)

let test_parse_supervision_constant () =
  let prog = parse_ok minimal in
  match Program.supervision_rules prog with
  | [ (_, rule) ] ->
    let last = List.nth rule.Ast.head.Ast.args 1 in
    Alcotest.(check bool) "true constant" true (last = Ast.Const (Value.Bool true))
  | _ -> Alcotest.fail "expected one supervision rule"

let test_parse_guards_and_negation () =
  let prog =
    parse_ok
      {|
      input edge(src int, dst int).
      input blocked(n int).
      query q(n int).
      q(x) :- edge(x, y), !blocked(y), x != y, x < 10 weight = 1.0.
    |}
  in
  match Program.inference_rules prog with
  | [ r ] ->
    Alcotest.(check int) "two literals" 2 (List.length r.Program.body);
    Alcotest.(check bool) "one negated" true
      (List.exists (fun l -> not (Ast.is_positive l)) r.Program.body);
    Alcotest.(check int) "two guards" 2 (List.length r.Program.guards)
  | _ -> Alcotest.fail "expected one rule"

let test_parse_populate_annotation () =
  let prog =
    parse_ok
      {|
      input link(a int, b int).
      query q(n int).
      q(x) :- link(x, y) weight = 1.0.
      q(x) :- q(y), link(x, y) weight = 2.0 populate = false.
    |}
  in
  match Program.inference_rules prog with
  | [ first; second ] ->
    Alcotest.(check bool) "default populates" true first.Program.populate_head;
    Alcotest.(check bool) "annotated does not" false second.Program.populate_head
  | _ -> Alcotest.fail "expected two rules"

let test_parse_string_constants () =
  let prog =
    parse_ok
      {|
      input tag(item text, label text).
      query q(item text).
      q(x) :- tag(x, "important") weight = 1.0.
    |}
  in
  match Program.inference_rules prog with
  | [ r ] ->
    let tag = Ast.atom_of_literal (List.hd r.Program.body) in
    Alcotest.(check bool) "string const" true
      (List.nth tag.Ast.args 1 = Ast.Const (Value.Str "important"))
  | _ -> Alcotest.fail "expected one rule"

let test_parse_error_reports_position () =
  match Parser.parse "input edge(src int dst int)." with
  | Ok _ -> Alcotest.fail "should not parse"
  | Error e -> Alcotest.(check bool) "mentions line" true (String.length e > 0)

let test_parse_rejects_weight_on_non_query () =
  match
    Parser.parse
      {|
      input edge(a int, b int).
      query q(n int).
      notq(x) :- edge(x, y) weight = 1.0.
    |}
  with
  | Ok _ -> Alcotest.fail "should reject"
  | Error e -> Alcotest.(check bool) "mentions query" true (String.length e > 0)

let test_parse_rejects_unsafe_rule () =
  match
    Parser.parse
      {|
      input edge(a int, b int).
      query q(n int).
      q(z) :- edge(x, y) weight = 1.0.
    |}
  with
  | Ok _ -> Alcotest.fail "should reject unsafe"
  | Error _ -> ()

let test_parse_quickstart_like_program () =
  let src =
    {|
    input sentence(sid int, phrase text).
    input mention(sid int, mid text, name text, pos int).
    input el(name text, eid text).
    input married(e1 text, e2 text).
    query has_spouse(m1 text, m2 text).

    @r1
    spouse_candidate(s, m1, m2) :- mention(s, m1, n1, 0), mention(s, m2, n2, 1).
    @fe1
    has_spouse(m1, m2) :- spouse_candidate(s, m1, m2), sentence(s, p)
      weight = w(p) semantics = ratio.
    @s1
    has_spouse_ev(m1, m2, true) :-
      spouse_candidate(s, m1, m2), mention(s, m1, n1, 0), mention(s, m2, n2, 1),
      el(n1, e1), el(n2, e2), married(e1, e2).
  |}
  in
  let prog = parse_ok src in
  Alcotest.(check int) "rules" 3 (List.length prog.Program.rules);
  Alcotest.(check bool) "validates" true (Result.is_ok (Program.validate prog))

let test_parse_empty_weight_key () =
  let prog =
    parse_ok
      {|
      input edge(a int, b int).
      query q(n int).
      q(x) :- edge(x, y) weight = w().
    |}
  in
  match Program.inference_rules prog with
  | [ r ] -> (
    match r.Program.weight with
    | Program.Tied [] -> ()
    | _ -> Alcotest.fail "expected single shared learnable weight")
  | _ -> Alcotest.fail "expected one rule"

let test_parse_integer_weight () =
  let prog =
    parse_ok
      {|
      input edge(a int, b int).
      query q(n int).
      q(x) :- edge(x, y) weight = 2.
    |}
  in
  match Program.inference_rules prog with
  | [ r ] -> (
    match r.Program.weight with
    | Program.Fixed w -> Alcotest.(check (float 0.0)) "2.0" 2.0 w
    | _ -> Alcotest.fail "expected fixed")
  | _ -> Alcotest.fail "expected one rule"

let () =
  Alcotest.run "dd_ddlog"
    [
      ( "lexer",
        [
          Alcotest.test_case "idents/punct" `Quick test_lex_idents_and_punct;
          Alcotest.test_case "numbers" `Quick test_lex_numbers;
          Alcotest.test_case "strings" `Quick test_lex_strings;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "booleans" `Quick test_lex_bools;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "positions" `Quick test_lex_positions;
          Alcotest.test_case "errors" `Quick test_lex_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "schemas" `Quick test_parse_schemas;
          Alcotest.test_case "rule kinds" `Quick test_parse_rule_kinds;
          Alcotest.test_case "rule names" `Quick test_parse_rule_names;
          Alcotest.test_case "weight specs" `Quick test_parse_weight_specs;
          Alcotest.test_case "supervision constant" `Quick test_parse_supervision_constant;
          Alcotest.test_case "guards/negation" `Quick test_parse_guards_and_negation;
          Alcotest.test_case "populate annotation" `Quick test_parse_populate_annotation;
          Alcotest.test_case "string constants" `Quick test_parse_string_constants;
          Alcotest.test_case "error position" `Quick test_parse_error_reports_position;
          Alcotest.test_case "weight on non-query" `Quick test_parse_rejects_weight_on_non_query;
          Alcotest.test_case "unsafe rule" `Quick test_parse_rejects_unsafe_rule;
          Alcotest.test_case "quickstart program" `Quick test_parse_quickstart_like_program;
          Alcotest.test_case "empty weight key" `Quick test_parse_empty_weight_key;
          Alcotest.test_case "integer weight" `Quick test_parse_integer_weight;
        ] );
    ]
