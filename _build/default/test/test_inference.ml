(* Tests for Dd_inference: Gibbs sampling against exact marginals, the
   independent Metropolis-Hastings incremental sampler, and the learners. *)

module Graph = Dd_fgraph.Graph
module Semantics = Dd_fgraph.Semantics
module Exact = Dd_fgraph.Exact
module Gibbs = Dd_inference.Gibbs
module Metropolis = Dd_inference.Metropolis
module Learner = Dd_inference.Learner
module Fast_gibbs = Dd_inference.Fast_gibbs
module Prng = Dd_util.Prng
module Stats = Dd_util.Stats

let check_close epsilon = Alcotest.(check (float epsilon))

let lit ?(negated = false) var = { Graph.var; negated }

(* A small random-ish test graph: unary biases + a few pairwise couplings. *)
let small_graph () =
  let g = Graph.create () in
  let vars = Graph.add_vars g 5 in
  let biases = [| 0.4; -0.6; 0.2; 0.0; -0.3 |] in
  Array.iteri
    (fun idx v ->
      let w = Graph.add_weight g biases.(idx) in
      ignore (Graph.unary g ~weight:w v))
    vars;
  let couple a b value =
    let w = Graph.add_weight g value in
    ignore (Graph.pairwise g ~weight:w vars.(a) vars.(b))
  in
  couple 0 1 0.7;
  couple 1 2 (-0.5);
  couple 3 4 1.0;
  g

(* --- gibbs -------------------------------------------------------------- *)

let test_conditional_probability () =
  (* Single unary factor: P(v | nothing) = sigmoid(w). *)
  let g = Graph.create () in
  let a = Graph.add_var g in
  let w = Graph.add_weight g 1.1 in
  ignore (Graph.unary g ~weight:w a);
  let assignment = [| false |] in
  check_close 1e-9 "sigmoid" (Stats.sigmoid 1.1) (Gibbs.conditional_true_prob g assignment a)

let test_conditional_uses_neighbors () =
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var g in
  let w = Graph.add_weight g 2.0 in
  ignore (Graph.pairwise g ~weight:w a b);
  check_close 1e-9 "b true" (Stats.sigmoid 2.0)
    (Gibbs.conditional_true_prob g [| false; true |] a);
  check_close 1e-9 "b false" 0.5 (Gibbs.conditional_true_prob g [| false; false |] a)

let test_gibbs_respects_evidence () =
  let g = Graph.create () in
  let a = Graph.add_var ~evidence:(Graph.Evidence true) g in
  let b = Graph.add_var g in
  let w = Graph.add_weight g (-5.0) in
  ignore (Graph.unary g ~weight:w a);
  ignore (Graph.unary g ~weight:w b);
  let rng = Prng.create 1 in
  let marginals = Gibbs.marginals ~burn_in:10 rng g ~sweeps:200 in
  check_close 0.0 "evidence stays clamped" 1.0 marginals.(a);
  Alcotest.(check bool) "query follows bias" true (marginals.(b) < 0.1)

let gibbs_close_to_exact g ~sweeps ~tolerance =
  let rng = Prng.create 11 in
  let estimated = Gibbs.marginals ~burn_in:100 rng g ~sweeps in
  let exact = Exact.marginals g in
  Stats.max_abs_diff estimated exact <= tolerance

let test_gibbs_matches_exact_small () =
  Alcotest.(check bool) "within 3%" true
    (gibbs_close_to_exact (small_graph ()) ~sweeps:20_000 ~tolerance:0.03)

let test_gibbs_matches_exact_implication () =
  let g = Graph.create () in
  let h = Graph.add_var g and b1 = Graph.add_var g and b2 = Graph.add_var g in
  let w = Graph.add_weight g 1.2 in
  ignore (Graph.implication g ~weight:w ~semantics:Semantics.Ratio [ b1; b2 ] h);
  let wb = Graph.add_weight g 0.8 in
  ignore (Graph.unary g ~weight:wb b1);
  ignore (Graph.unary g ~weight:wb b2);
  Alcotest.(check bool) "within 3%" true (gibbs_close_to_exact g ~sweeps:20_000 ~tolerance:0.03)

let test_gibbs_matches_exact_negated () =
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var g in
  let w = Graph.add_weight g 0.9 in
  ignore
    (Graph.add_factor g
       {
         Graph.head = None;
         bodies = [| [| lit a; lit ~negated:true b |] |];
         weight_id = w;
         semantics = Semantics.Logical;
       });
  Alcotest.(check bool) "within 3%" true (gibbs_close_to_exact g ~sweeps:20_000 ~tolerance:0.03)

let test_sample_worlds_shape () =
  let g = small_graph () in
  let rng = Prng.create 3 in
  let samples = Gibbs.sample_worlds ~burn_in:5 ~spacing:2 rng g ~n:17 in
  Alcotest.(check int) "n samples" 17 (Array.length samples);
  Array.iter
    (fun world -> Alcotest.(check int) "world width" (Graph.num_vars g) (Array.length world))
    samples

let test_run_on_sweep_called () =
  let g = small_graph () in
  let calls = ref 0 in
  Gibbs.run (Prng.create 4) g ~sweeps:13 ~on_sweep:(fun _ _ -> incr calls);
  Alcotest.(check int) "called per sweep" 13 !calls

let test_sweeps_to_converge () =
  let g = Graph.create () in
  let a = Graph.add_var g in
  let w = Graph.add_weight g 0.5 in
  ignore (Graph.unary g ~weight:w a);
  match
    Gibbs.sweeps_to_converge ~tolerance:0.02 (Prng.create 5) g ~target_var:a
      ~target_prob:(Stats.sigmoid 0.5)
  with
  | Some sweeps -> Alcotest.(check bool) "converges quickly" true (sweeps < 10_000)
  | None -> Alcotest.fail "did not converge"

(* --- metropolis -------------------------------------------------------------- *)

let test_unchanged_full_acceptance () =
  let g = small_graph () in
  let rng = Prng.create 6 in
  let stored = Gibbs.sample_worlds ~burn_in:50 rng g ~n:100 in
  let result =
    Metropolis.infer (Prng.create 7) (Metropolis.unchanged g) ~stored ~chain_length:100
  in
  check_close 0.0 "acceptance 1.0" 1.0 result.Metropolis.acceptance_rate;
  Alcotest.(check bool) "not exhausted" false result.Metropolis.exhausted

let test_delta_log_weight_new_factor () =
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var g in
  let w = Graph.add_weight g 1.5 in
  let fid = Graph.pairwise g ~weight:w a b in
  let change = { (Metropolis.unchanged g) with Metropolis.new_factor_ids = [ fid ] } in
  check_close 1e-12 "both true" 1.5 (Metropolis.delta_log_weight change [| true; true |]);
  check_close 1e-12 "one false" 0.0 (Metropolis.delta_log_weight change [| true; false |])

let test_delta_log_weight_weight_change () =
  let g = Graph.create () in
  let a = Graph.add_var g in
  let w = Graph.add_weight g 2.0 in
  ignore (Graph.unary g ~weight:w a);
  (* Weight moved from 0.5 to 2.0: delta = (2.0 - 0.5) * 1{a}. *)
  let change = { (Metropolis.unchanged g) with Metropolis.changed_weights = [ (w, 0.5) ] } in
  check_close 1e-12 "a true" 1.5 (Metropolis.delta_log_weight change [| true |]);
  check_close 1e-12 "a false" 0.0 (Metropolis.delta_log_weight change [| false |])

let test_delta_log_weight_zero_current_weight () =
  let g = Graph.create () in
  let a = Graph.add_var g in
  let w = Graph.add_weight g 0.0 in
  ignore (Graph.unary g ~weight:w a);
  (* Weight moved from 1.0 down to 0.0. *)
  let change = { (Metropolis.unchanged g) with Metropolis.changed_weights = [ (w, 1.0) ] } in
  check_close 1e-12 "a true" (-1.0) (Metropolis.delta_log_weight change [| true |])

let test_delta_log_weight_evidence_violation () =
  let g = Graph.create () in
  let a = Graph.add_var ~evidence:(Graph.Evidence true) g in
  let change =
    { (Metropolis.unchanged g) with Metropolis.evidence_changes = [ (a, Graph.Query) ] }
  in
  Alcotest.(check bool) "violating world -inf" true
    (Metropolis.delta_log_weight change [| false |] = neg_infinity);
  check_close 0.0 "satisfying world fine" 0.0 (Metropolis.delta_log_weight change [| true |])

let test_delta_log_weight_extension () =
  let g = Graph.create () in
  let h = Graph.add_var g and b1 = Graph.add_var g and b2 = Graph.add_var g in
  let w = Graph.add_weight g 1.0 in
  let fid =
    Graph.add_factor g
      {
        Graph.head = Some h;
        bodies = [| [| lit b1 |] |];
        weight_id = w;
        semantics = Semantics.Linear;
      }
  in
  Graph.extend_factor g fid [| [| lit b2 |] |];
  let change =
    { (Metropolis.unchanged g) with Metropolis.extended_factors = [ (fid, 1) ] }
  in
  (* All true: energy now 2, was 1 -> delta 1. *)
  check_close 1e-12 "delta from new body" 1.0
    (Metropolis.delta_log_weight change [| true; true; true |]);
  (* New body unsatisfied: no delta. *)
  check_close 1e-12 "no delta" 0.0 (Metropolis.delta_log_weight change [| true; true; false |])

let test_mh_tracks_changed_distribution () =
  (* Materialize from a biased-down graph, then flip the bias up; the MH
     marginals must track the new distribution (compare to exact). *)
  let g = Graph.create () in
  let a = Graph.add_var g in
  let w = Graph.add_weight g (-1.0) in
  ignore (Graph.unary g ~weight:w a);
  let rng = Prng.create 8 in
  let stored = Gibbs.sample_worlds ~burn_in:100 rng g ~n:2000 in
  Graph.set_weight g w 1.0;
  let change = { (Metropolis.unchanged g) with Metropolis.changed_weights = [ (w, -1.0) ] } in
  let result = Metropolis.infer (Prng.create 9) change ~stored ~chain_length:2000 in
  let exact = (Exact.marginals g).(a) in
  Alcotest.(check bool) "tracks new marginal" true
    (abs_float (result.Metropolis.marginals.(a) -. exact) < 0.05);
  Alcotest.(check bool) "acceptance below 1" true (result.Metropolis.acceptance_rate < 1.0)

let test_mh_new_vars_filled () =
  let g = small_graph () in
  let rng = Prng.create 10 in
  let stored = Gibbs.sample_worlds ~burn_in:50 rng g ~n:200 in
  (* Add a new variable with a strong positive bias and a factor. *)
  let fresh = Graph.add_var g in
  let w = Graph.add_weight g 3.0 in
  let fid = Graph.unary g ~weight:w fresh in
  let change =
    {
      (Metropolis.unchanged g) with
      Metropolis.new_factor_ids = [ fid ];
      new_vars = [ fresh ];
    }
  in
  let result = Metropolis.infer (Prng.create 11) change ~stored ~chain_length:300 in
  Alcotest.(check bool) "new var marginal learned" true
    (result.Metropolis.marginals.(fresh) > 0.8)

let test_acceptance_decreases_with_change () =
  let make_stored_and_change shift =
    let g = Graph.create () in
    let vars = Graph.add_vars g 6 in
    let w = Graph.add_weight g 0.0 in
    Array.iter (fun v -> ignore (Graph.unary g ~weight:w v)) vars;
    let rng = Prng.create 12 in
    let stored = Gibbs.sample_worlds ~burn_in:50 rng g ~n:500 in
    Graph.set_weight g w shift;
    let change =
      { (Metropolis.unchanged g) with Metropolis.changed_weights = [ (w, 0.0) ] }
    in
    (Metropolis.infer (Prng.create 13) change ~stored ~chain_length:400).Metropolis
      .acceptance_rate
  in
  let small_change = make_stored_and_change 0.2 in
  let big_change = make_stored_and_change 3.0 in
  Alcotest.(check bool) "bigger change, lower acceptance" true (big_change < small_change)

let test_acceptance_probe () =
  let g = small_graph () in
  let rng = Prng.create 14 in
  let stored = Gibbs.sample_worlds ~burn_in:20 rng g ~n:50 in
  let rate = Metropolis.acceptance_probe (Prng.create 15) (Metropolis.unchanged g) ~stored ~probes:30 in
  check_close 0.0 "unchanged probe" 1.0 rate

(* --- learner ------------------------------------------------------------------ *)

let test_feature_counts () =
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var g in
  let w_learn = Graph.add_weight ~learnable:true g 0.5 in
  let w_fixed = Graph.add_weight g 1.0 in
  ignore (Graph.unary g ~weight:w_learn a);
  ignore (Graph.unary g ~weight:w_learn b);
  ignore (Graph.unary g ~weight:w_fixed a);
  let counts = Learner.feature_counts g [| true; true |] in
  Alcotest.(check int) "only learnable" 1 (List.length counts);
  let wid, value = List.hd counts in
  Alcotest.(check int) "right weight" w_learn wid;
  check_close 1e-12 "two active factors" 2.0 value

let test_feature_counts_zero_weight () =
  (* Gradient must be computable even when the current weight is 0. *)
  let g = Graph.create () in
  let a = Graph.add_var g in
  let w = Graph.add_weight ~learnable:true g 0.0 in
  ignore (Graph.unary g ~weight:w a);
  let counts = Learner.feature_counts g [| true |] in
  check_close 1e-12 "unit gradient" 1.0 (snd (List.hd counts));
  check_close 0.0 "weight untouched" 0.0 (Graph.weight_value g w)

let test_cd_learns_evidence_sign () =
  (* Three evidence vars labeled true share a learnable classifier weight;
     three labeled false share another.  CD should push the first weight up
     and the second down. *)
  let g = Graph.create () in
  let w_pos = Graph.add_weight ~learnable:true g 0.0 in
  let w_neg = Graph.add_weight ~learnable:true g 0.0 in
  for _ = 1 to 3 do
    let vp = Graph.add_var ~evidence:(Graph.Evidence true) g in
    ignore (Graph.unary g ~weight:w_pos vp);
    let vn = Graph.add_var ~evidence:(Graph.Evidence false) g in
    ignore (Graph.unary g ~weight:w_neg vn)
  done;
  Learner.train_cd
    ~options:{ Learner.default_cd with Learner.epochs = 80; learning_rate = 0.2 }
    (Prng.create 16) g;
  Alcotest.(check bool) "positive weight up" true (Graph.weight_value g w_pos > 0.3);
  Alcotest.(check bool) "negative weight down" true (Graph.weight_value g w_neg < -0.3)

let test_pseudo_log_likelihood_improves () =
  let build () =
    let g = Graph.create () in
    let w = Graph.add_weight ~learnable:true g 0.0 in
    for _ = 1 to 5 do
      let v = Graph.add_var ~evidence:(Graph.Evidence true) g in
      ignore (Graph.unary g ~weight:w v)
    done;
    g
  in
  let g = build () in
  let before = Learner.pseudo_log_likelihood ~worlds:20 (Prng.create 17) g in
  Learner.train_cd
    ~options:{ Learner.default_cd with Learner.epochs = 60; learning_rate = 0.2 }
    (Prng.create 18) g;
  let after = Learner.pseudo_log_likelihood ~worlds:20 (Prng.create 19) g in
  Alcotest.(check bool) "likelihood improved" true (after > before)

let separable_data rng n =
  (* Feature 0 implies true, feature 1 implies false; feature 2 is noise. *)
  let rows =
    Array.init n (fun _ ->
        let label = Prng.bool rng in
        let strong = if label then 0 else 1 in
        let features = if Prng.bernoulli rng 0.5 then [| strong; 2 |] else [| strong |] in
        (features, label))
  in
  { Learner.nfeatures = 3; rows }

let test_lr_learns_separable () =
  let data = separable_data (Prng.create 20) 300 in
  let weights = Learner.train_lr ~method_:Learner.Sgd ~epochs:40 (Prng.create 21) data in
  Alcotest.(check bool) "w0 positive" true (weights.(0) > 0.5);
  Alcotest.(check bool) "w1 negative" true (weights.(1) < -0.5);
  Alcotest.(check bool) "low loss" true (Learner.lr_loss data weights < 0.2)

let test_lr_gd_also_converges () =
  let data = separable_data (Prng.create 22) 300 in
  let weights =
    Learner.train_lr ~method_:Learner.Gd ~epochs:400 ~learning_rate:2.0 (Prng.create 23) data
  in
  Alcotest.(check bool) "low loss" true (Learner.lr_loss data weights < 0.3)

let test_lr_warmstart_lowers_initial_loss () =
  let data = separable_data (Prng.create 24) 300 in
  let warm = Learner.train_lr ~method_:Learner.Sgd ~epochs:20 (Prng.create 25) data in
  let first_loss = ref infinity in
  let (_ : float array) =
    Learner.train_lr ~method_:Learner.Sgd ~warm ~epochs:1 (Prng.create 26) data
      ~on_epoch:(fun _ w -> first_loss := Learner.lr_loss data w)
  in
  let cold_first = ref infinity in
  let (_ : float array) =
    Learner.train_lr ~method_:Learner.Sgd ~epochs:1 (Prng.create 26) data
      ~on_epoch:(fun _ w -> cold_first := Learner.lr_loss data w)
  in
  Alcotest.(check bool) "warmstart ahead" true (!first_loss <= !cold_first)

let test_lr_predict () =
  let weights = [| 1.0; -2.0 |] in
  check_close 1e-9 "positive feature" (Stats.sigmoid 1.0) (Learner.lr_predict weights [| 0 |]);
  check_close 1e-9 "both" (Stats.sigmoid (-1.0)) (Learner.lr_predict weights [| 0; 1 |]);
  check_close 1e-9 "none" 0.5 (Learner.lr_predict weights [||])

let test_lr_loss_zero_weights () =
  let data = separable_data (Prng.create 27) 50 in
  check_close 1e-9 "log 2" (log 2.0) (Learner.lr_loss data (Array.make 3 0.0))

(* --- fast (cached) gibbs ------------------------------------------------------ *)

(* A harsher structure mix for equivalence testing: implications with
   multiple bodies, negated literals, evidence, all three semantics. *)
let mixed_graph seed =
  let rng = Prng.create seed in
  let g = Graph.create () in
  let vars = Graph.add_vars g 8 in
  Graph.set_evidence g vars.(7) (Graph.Evidence true);
  Array.iter
    (fun v ->
      let w = Graph.add_weight g (Prng.float_range rng (-1.0) 1.0) in
      ignore (Graph.unary g ~weight:w v))
    vars;
  for _ = 1 to 6 do
    let a = Prng.int_below rng 8 and b = Prng.int_below rng 8 in
    if a <> b then begin
      let w = Graph.add_weight g (Prng.float_range rng (-1.0) 1.0) in
      let semantics = Prng.choice rng [| Semantics.Linear; Semantics.Logical; Semantics.Ratio |] in
      let head = if Prng.bool rng then Some (Prng.int_below rng 8) else None in
      let negated = Prng.bool rng in
      ignore
        (Graph.add_factor g
           {
             Graph.head;
             bodies =
               [|
                 [| { Graph.var = a; negated } |];
                 [| { Graph.var = a; negated = false }; { Graph.var = b; negated = true } |];
               |];
             weight_id = w;
             semantics;
           })
    end
  done;
  g

let test_fast_gibbs_conditionals_match () =
  (* The cached sampler's conditional must agree with the plain sampler's
     for every variable under many random assignments. *)
  for seed = 0 to 9 do
    let g = mixed_graph seed in
    let rng = Prng.create (100 + seed) in
    for _ = 1 to 10 do
      let a = Gibbs.init_assignment rng g in
      let fast = Fast_gibbs.create ~init:a (Prng.copy rng) g in
      for v = 0 to Graph.num_vars g - 1 do
        let plain = Gibbs.conditional_true_prob g a v in
        let cached = Fast_gibbs.conditional_true_prob fast v in
        if abs_float (plain -. cached) > 1e-9 then
          Alcotest.failf "seed %d var %d: plain %.12f fast %.12f" seed v plain cached
      done
    done
  done

let test_fast_gibbs_identical_chain () =
  (* Same PRNG stream -> bit-identical trajectories. *)
  let g = mixed_graph 42 in
  let init = Gibbs.init_assignment (Prng.create 7) g in
  let a = Array.copy init in
  let rng_plain = Prng.create 8 and rng_fast = Prng.create 8 in
  let fast = Fast_gibbs.create ~init (Prng.create 9) g in
  for _ = 1 to 50 do
    Gibbs.sweep rng_plain g a;
    Fast_gibbs.sweep rng_fast fast
  done;
  Alcotest.(check bool) "same trajectory" true (a = Fast_gibbs.assignment fast)

let test_fast_gibbs_marginals_match_exact () =
  let g = mixed_graph 3 in
  let m = Fast_gibbs.marginals ~burn_in:100 (Prng.create 10) g ~sweeps:20_000 in
  let exact = Dd_fgraph.Exact.marginals g in
  Alcotest.(check bool) "within 3%" true (Stats.max_abs_diff m exact < 0.03)

let test_fast_gibbs_voting_fast () =
  (* The whole point: a voting factor with 500 bodies costs O(1) per vote
     update instead of O(n).  Just check it converges on a mid-size
     instance within a modest wall-clock. *)
  let cfg = { Dd_fgraph.Voting.default with Dd_fgraph.Voting.n_up = 250; n_down = 250 } in
  let graph, q, _, _ = Dd_fgraph.Voting.build cfg in
  let exact = Dd_fgraph.Voting.exact_marginal_q cfg in
  match
    Fast_gibbs.sweeps_to_converge ~tolerance:0.02 ~max_sweeps:20_000 (Prng.create 11) graph
      ~target_var:q ~target_prob:exact
  with
  | Some _ -> ()
  | None -> Alcotest.fail "did not converge"

let test_fast_gibbs_rejects_duplicate_literal () =
  let g = Graph.create () in
  let a = Graph.add_var g in
  let w = Graph.add_weight g 1.0 in
  ignore
    (Graph.add_factor g
       {
         Graph.head = None;
         bodies = [| [| { Graph.var = a; negated = false }; { Graph.var = a; negated = true } |] |];
         weight_id = w;
         semantics = Semantics.Logical;
       });
  Alcotest.(check bool) "rejected" true
    (match Fast_gibbs.create (Prng.create 12) g with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- map inference ---------------------------------------------------------------- *)

module Map_inference = Dd_inference.Map_inference

let exact_map g =
  (* Brute-force most probable world. *)
  let best = ref None in
  List.iter
    (fun (world, p) ->
      match !best with
      | Some (_, q) when q >= p -> ()
      | _ -> best := Some (world, p))
    (Exact.enumerate g);
  fst (Option.get !best)

let test_map_finds_exact_mode () =
  for seed = 0 to 4 do
    let g = mixed_graph seed in
    let result = Map_inference.search ~sweeps:300 (Prng.create (200 + seed)) g in
    let expected = exact_map g in
    let expected_weight = Graph.total_energy g (fun v -> expected.(v)) in
    (* Annealing may find a world tied with the mode; compare weights. *)
    Alcotest.(check bool)
      (Printf.sprintf "seed %d reaches mode weight" seed)
      true
      (result.Map_inference.log_weight >= expected_weight -. 1e-6)
  done

let test_map_respects_evidence () =
  let g = Graph.create () in
  let a = Graph.add_var ~evidence:(Graph.Evidence false) g in
  let w = Graph.add_weight g 10.0 in
  ignore (Graph.unary g ~weight:w a);
  let result = Map_inference.search ~sweeps:50 (Prng.create 7) g in
  Alcotest.(check bool) "evidence clamped" false result.Map_inference.assignment.(a)

let test_map_greedy_refine () =
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var g in
  let w = Graph.add_weight g 2.0 in
  ignore (Graph.unary g ~weight:w a);
  ignore (Graph.pairwise g ~weight:w a b);
  let world = [| false; false |] in
  let flips = Map_inference.greedy_refine g world in
  Alcotest.(check bool) "flipped up" true (world.(0) && world.(1));
  Alcotest.(check int) "two flips" 2 flips;
  Alcotest.(check int) "local optimum stable" 0 (Map_inference.greedy_refine g world)

let test_map_schedule_monotone () =
  let schedule = Map_inference.default_schedule ~sweeps:100 in
  Alcotest.(check bool) "cooling" true (schedule 0 > schedule 50 && schedule 50 > schedule 99)

(* --- qcheck -------------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"conditional prob in [0,1]" ~count:100
      (pair small_int (float_range (-3.0) 3.0))
      (fun (seed, weight) ->
        let g = Graph.create () in
        let a = Graph.add_var g and b = Graph.add_var g in
        let w = Graph.add_weight g weight in
        ignore (Graph.pairwise g ~weight:w a b);
        let rng = Prng.create seed in
        let assignment = Gibbs.init_assignment rng g in
        let p = Gibbs.conditional_true_prob g assignment a in
        p >= 0.0 && p <= 1.0);
    Test.make ~name:"gibbs marginal of bias matches sigmoid" ~count:10
      (float_range (-2.0) 2.0)
      (fun weight ->
        let g = Graph.create () in
        let a = Graph.add_var g in
        let w = Graph.add_weight g weight in
        ignore (Graph.unary g ~weight:w a);
        let m = Gibbs.marginals ~burn_in:50 (Prng.create 31) g ~sweeps:8000 in
        abs_float (m.(a) -. Stats.sigmoid weight) < 0.05);
    Test.make ~name:"delta_log_weight of unchanged is 0" ~count:50 small_int (fun seed ->
        let g = small_graph () in
        let rng = Prng.create seed in
        let world = Gibbs.init_assignment rng g in
        Metropolis.delta_log_weight (Metropolis.unchanged g) world = 0.0);
  ]

let () =
  Alcotest.run "dd_inference"
    [
      ( "gibbs",
        [
          Alcotest.test_case "conditional" `Quick test_conditional_probability;
          Alcotest.test_case "conditional neighbors" `Quick test_conditional_uses_neighbors;
          Alcotest.test_case "respects evidence" `Quick test_gibbs_respects_evidence;
          Alcotest.test_case "matches exact (pairwise)" `Slow test_gibbs_matches_exact_small;
          Alcotest.test_case "matches exact (implication)" `Slow test_gibbs_matches_exact_implication;
          Alcotest.test_case "matches exact (negated)" `Slow test_gibbs_matches_exact_negated;
          Alcotest.test_case "sample worlds" `Quick test_sample_worlds_shape;
          Alcotest.test_case "on_sweep" `Quick test_run_on_sweep_called;
          Alcotest.test_case "sweeps to converge" `Quick test_sweeps_to_converge;
        ] );
      ( "metropolis",
        [
          Alcotest.test_case "unchanged accepts all" `Quick test_unchanged_full_acceptance;
          Alcotest.test_case "delta: new factor" `Quick test_delta_log_weight_new_factor;
          Alcotest.test_case "delta: weight change" `Quick test_delta_log_weight_weight_change;
          Alcotest.test_case "delta: zero weight" `Quick test_delta_log_weight_zero_current_weight;
          Alcotest.test_case "delta: evidence violation" `Quick test_delta_log_weight_evidence_violation;
          Alcotest.test_case "delta: extension" `Quick test_delta_log_weight_extension;
          Alcotest.test_case "tracks changed distribution" `Slow test_mh_tracks_changed_distribution;
          Alcotest.test_case "fills new vars" `Quick test_mh_new_vars_filled;
          Alcotest.test_case "acceptance vs change size" `Quick test_acceptance_decreases_with_change;
          Alcotest.test_case "acceptance probe" `Quick test_acceptance_probe;
        ] );
      ( "fast_gibbs",
        [
          Alcotest.test_case "conditionals match" `Quick test_fast_gibbs_conditionals_match;
          Alcotest.test_case "identical chain" `Quick test_fast_gibbs_identical_chain;
          Alcotest.test_case "marginals vs exact" `Slow test_fast_gibbs_marginals_match_exact;
          Alcotest.test_case "voting converges fast" `Slow test_fast_gibbs_voting_fast;
          Alcotest.test_case "duplicate literal" `Quick test_fast_gibbs_rejects_duplicate_literal;
        ] );
      ( "learner",
        [
          Alcotest.test_case "feature counts" `Quick test_feature_counts;
          Alcotest.test_case "feature counts w=0" `Quick test_feature_counts_zero_weight;
          Alcotest.test_case "cd learns signs" `Slow test_cd_learns_evidence_sign;
          Alcotest.test_case "pll improves" `Slow test_pseudo_log_likelihood_improves;
          Alcotest.test_case "lr separable" `Quick test_lr_learns_separable;
          Alcotest.test_case "lr gd" `Quick test_lr_gd_also_converges;
          Alcotest.test_case "lr warmstart" `Quick test_lr_warmstart_lowers_initial_loss;
          Alcotest.test_case "lr predict" `Quick test_lr_predict;
          Alcotest.test_case "lr loss zero weights" `Quick test_lr_loss_zero_weights;
        ] );
      ( "map",
        [
          Alcotest.test_case "finds exact mode" `Slow test_map_finds_exact_mode;
          Alcotest.test_case "respects evidence" `Quick test_map_respects_evidence;
          Alcotest.test_case "greedy refine" `Quick test_map_greedy_refine;
          Alcotest.test_case "schedule" `Quick test_map_schedule_monotone;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
