(* Tests for Dd_kbc: corpus generation, the pipeline program, quality
   metrics, system presets, drift workload and the snapshot experiment. *)

module Value = Dd_relational.Value
module Schema = Dd_relational.Schema
module Relation = Dd_relational.Relation
module Database = Dd_relational.Database
module Corpus = Dd_kbc.Corpus
module Pipeline = Dd_kbc.Pipeline
module Quality = Dd_kbc.Quality
module Systems = Dd_kbc.Systems
module Drift = Dd_kbc.Drift
module Snapshots = Dd_kbc.Snapshots
module Calibration = Dd_kbc.Calibration
module Analysis = Dd_kbc.Analysis
module Program = Dd_core.Program
module Grounding = Dd_core.Grounding
module Engine = Dd_core.Engine
module Learner = Dd_inference.Learner
module Prng = Dd_util.Prng

let tiny_config = { Corpus.default with Corpus.docs = 12; relations = 2; entities = 20; seed = 5 }

(* --- corpus ------------------------------------------------------------------ *)

let test_corpus_deterministic () =
  let a = Corpus.generate tiny_config and b = Corpus.generate tiny_config in
  Alcotest.(check bool) "same truth" true (a.Corpus.truth = b.Corpus.truth);
  Alcotest.(check bool) "same docs" true (a.Corpus.doc_tables = b.Corpus.doc_tables)

let test_corpus_seed_changes_output () =
  let a = Corpus.generate tiny_config in
  let b = Corpus.generate { tiny_config with Corpus.seed = 6 } in
  Alcotest.(check bool) "different docs" true (a.Corpus.doc_tables <> b.Corpus.doc_tables)

let test_corpus_doc_count () =
  let corpus = Corpus.generate tiny_config in
  Alcotest.(check int) "doc tables" 12 (Array.length corpus.Corpus.doc_tables)

let test_corpus_rows_conform () =
  let corpus = Corpus.generate tiny_config in
  let schema_of name = List.assoc name Corpus.input_schemas in
  List.iter
    (fun (name, rows) ->
      let schema = schema_of name in
      List.iter
        (fun row ->
          Alcotest.(check bool) (name ^ " row conforms") true (Schema.conforms schema row))
        rows)
    (corpus.Corpus.static_tables @ List.concat (Array.to_list corpus.Corpus.doc_tables))

let test_corpus_known_subset_of_truth () =
  let corpus = Corpus.generate tiny_config in
  let known = List.assoc "known" corpus.Corpus.static_tables in
  List.iter
    (fun row ->
      match (row.(0), row.(1), row.(2)) with
      | Value.Str r, Value.Str e1, Value.Str e2 ->
        Alcotest.(check bool) "known in truth" true (List.mem (r, e1, e2) corpus.Corpus.truth)
      | _ -> Alcotest.fail "bad known row")
    known

let test_corpus_load_prefix_plus_delta_equals_full () =
  let corpus = Corpus.generate tiny_config in
  (* Load prefix then apply the doc delta at the relational level. *)
  let db_incremental = Database.create () in
  Corpus.load corpus ~docs:5 db_incremental;
  let delta = Corpus.doc_delta corpus ~from_doc:5 ~until_doc:12 in
  List.iter
    (fun pred ->
      List.iter
        (fun (tuple, sign) ->
          if sign > 0 then Relation.insert (Database.find db_incremental pred) tuple)
        (Dd_datalog.Dred.Delta.flips delta pred))
    (Dd_datalog.Dred.Delta.preds delta);
  let db_full = Database.create () in
  Corpus.load corpus db_full;
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) (name ^ " matches") true
        (Relation.equal_sets (Database.find db_incremental name) (Database.find db_full name)))
    Corpus.input_schemas

let test_corpus_statistics_line () =
  let corpus = Corpus.generate tiny_config in
  let line = Corpus.statistics corpus in
  Alcotest.(check bool) "mentions name" true
    (String.length line > 0 && String.sub line 0 7 = "default")

(* --- pipeline ----------------------------------------------------------------- *)

let test_pipeline_programs_validate () =
  Alcotest.(check bool) "base" true (Result.is_ok (Program.validate (Pipeline.base_program ())));
  Alcotest.(check bool) "full" true (Result.is_ok (Program.validate (Pipeline.full_program ())))

let test_pipeline_rule_sequence () =
  Alcotest.(check int) "six snapshots" 6 (List.length Pipeline.all_rule_ids);
  Alcotest.(check int) "A1 adds nothing" 0 (List.length (Pipeline.rules_of Pipeline.A1));
  Alcotest.(check int) "I1 adds two rules" 2 (List.length (Pipeline.rules_of Pipeline.I1))

let test_pipeline_grounds () =
  let corpus = Corpus.generate tiny_config in
  let db = Database.create () in
  Corpus.load corpus db;
  let grounding = Grounding.ground db (Pipeline.full_program ()) in
  let stats = Grounding.stats grounding in
  Alcotest.(check bool) "has variables" true (stats.Grounding.variables > 0);
  Alcotest.(check bool) "has factors" true
    (stats.Grounding.factors >= stats.Grounding.variables);
  Alcotest.(check bool) "has evidence" true (stats.Grounding.evidence > 0)

let test_pipeline_semantics_parameter () =
  let r = List.hd (Pipeline.rules_of ~semantics:Dd_fgraph.Semantics.Linear Pipeline.FE1) in
  match r with
  | Program.Infer rule ->
    Alcotest.(check bool) "linear" true (rule.Program.semantics = Dd_fgraph.Semantics.Linear)
  | _ -> Alcotest.fail "FE1 should be an inference rule"

(* --- quality ------------------------------------------------------------------ *)

let grounded_fixture () =
  let corpus = Corpus.generate tiny_config in
  let db = Database.create () in
  Corpus.load corpus db;
  let grounding = Grounding.ground db (Pipeline.full_program ()) in
  (corpus, grounding)

let test_quality_perfect_predictions () =
  (* Force marginals: 1.0 on variables whose mention pair resolves to a true
     fact, 0 elsewhere; precision should be 1. *)
  let corpus, grounding = grounded_fixture () in
  let g = Grounding.graph grounding in
  let marginals = Array.make (Dd_fgraph.Graph.num_vars g) 0.0 in
  (* Mark everything predicted and measure: precision equals correct/total. *)
  Array.fill marginals 0 (Array.length marginals) 1.0;
  let score = Quality.evaluate ~threshold:0.5 grounding marginals ~truth:corpus.Corpus.truth in
  Alcotest.(check bool) "some predictions" true (score.Quality.predicted > 0);
  Alcotest.(check bool) "precision in range" true
    (score.Quality.precision >= 0.0 && score.Quality.precision <= 1.0);
  (* No predictions at threshold above 1. *)
  let none = Quality.evaluate ~threshold:1.1 grounding marginals ~truth:corpus.Corpus.truth in
  Alcotest.(check int) "nothing predicted" 0 none.Quality.predicted;
  Alcotest.(check (float 0.0)) "zero recall" 0.0 none.Quality.recall

let test_quality_f1_formula () =
  let corpus, grounding = grounded_fixture () in
  let g = Grounding.graph grounding in
  let marginals = Array.make (Dd_fgraph.Graph.num_vars g) 1.0 in
  let score = Quality.evaluate ~threshold:0.5 grounding marginals ~truth:corpus.Corpus.truth in
  let p = score.Quality.precision and r = score.Quality.recall in
  let expected = if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r) in
  Alcotest.(check (float 1e-9)) "harmonic mean" expected score.Quality.f1

let test_compare_marginals_identical () =
  let entries = [ ("q", [| Value.str "a" |], 0.95); ("q", [| Value.str "b" |], 0.2) ] in
  let agreement = Quality.compare_marginals entries entries in
  Alcotest.(check (float 0.0)) "jaccard 1" 1.0 agreement.Quality.high_conf_jaccard;
  Alcotest.(check (float 0.0)) "no diffs" 0.0 agreement.Quality.frac_diff_gt

let test_compare_marginals_differences () =
  let a = [ ("q", [| Value.str "x" |], 0.95); ("q", [| Value.str "y" |], 0.5) ] in
  let b = [ ("q", [| Value.str "x" |], 0.2); ("q", [| Value.str "y" |], 0.52) ] in
  let agreement = Quality.compare_marginals a b in
  Alcotest.(check (float 1e-9)) "half differ" 0.5 agreement.Quality.frac_diff_gt;
  Alcotest.(check (float 0.0)) "jaccard 0" 0.0 agreement.Quality.high_conf_jaccard;
  Alcotest.(check bool) "max diff" true (agreement.Quality.max_diff > 0.7)

let test_compare_marginals_missing_tuple () =
  let a = [ ("q", [| Value.str "x" |], 0.9) ] in
  let b = [ ("q", [| Value.str "x" |], 0.9); ("q", [| Value.str "new" |], 0.95) ] in
  let agreement = Quality.compare_marginals a b in
  (* The extra high-confidence fact in b counts against agreement. *)
  Alcotest.(check bool) "jaccard below 1" true (agreement.Quality.high_conf_jaccard < 1.0)

let test_calibration_buckets () =
  let corpus, grounding = grounded_fixture () in
  let g = Grounding.graph grounding in
  let n = Dd_fgraph.Graph.num_vars g in
  (* Alternate confident/uncertain marginals; check bucket bookkeeping. *)
  let marginals = Array.init n (fun v -> if v mod 2 = 0 then 0.95 else 0.15) in
  let report = Calibration.evaluate ~bins:10 grounding marginals ~truth:corpus.Corpus.truth in
  Alcotest.(check int) "ten buckets" 10 (List.length report.Calibration.buckets);
  Alcotest.(check bool) "entries counted" true (report.Calibration.total > 0);
  let occupied =
    List.filter (fun b -> b.Calibration.count > 0) report.Calibration.buckets
  in
  List.iter
    (fun b ->
      Alcotest.(check bool) "mean in bucket range" true
        (b.Calibration.mean_predicted >= b.Calibration.lower -. 1e-9
        && b.Calibration.mean_predicted <= b.Calibration.upper +. 1e-9);
      Alcotest.(check bool) "precision in [0,1]" true
        (b.Calibration.empirical_precision >= 0.0 && b.Calibration.empirical_precision <= 1.0))
    occupied;
  Alcotest.(check bool) "ece in [0,1]" true
    (report.Calibration.expected_calibration_error >= 0.0
    && report.Calibration.expected_calibration_error <= 1.0)

let test_calibration_perfect_oracle () =
  (* Marginals equal to ground-truth membership: ECE must be ~0. *)
  let corpus, grounding = grounded_fixture () in
  let g = Grounding.graph grounding in
  let truth_set = Hashtbl.create 64 in
  List.iter (fun fact -> Hashtbl.replace truth_set fact ()) corpus.Corpus.truth;
  let names = Quality.mention_names (Grounding.database grounding) in
  let links = Quality.linking (Grounding.database grounding) in
  let marginals = Array.make (Dd_fgraph.Graph.num_vars g) 0.0 in
  List.iter
    (fun (rel, tuple, _) ->
      if rel = Pipeline.query_relation then
        match Grounding.var_of grounding rel tuple with
        | None -> ()
        | Some v -> (
          let resolve mid =
            Option.bind (Hashtbl.find_opt names mid) (Hashtbl.find_opt links)
          in
          match
            ( Dd_relational.Value.as_str tuple.(0),
              resolve (Dd_relational.Value.as_str tuple.(1)),
              resolve (Dd_relational.Value.as_str tuple.(2)) )
          with
          | r, Some e1, Some e2 ->
            marginals.(v) <- (if Hashtbl.mem truth_set (r, e1, e2) then 0.999 else 0.001)
          | _ -> ()))
    (Grounding.marginals_by_relation grounding marginals);
  let report = Calibration.evaluate grounding marginals ~truth:corpus.Corpus.truth in
  Alcotest.(check bool) "near-zero ece" true
    (report.Calibration.expected_calibration_error < 0.01)

let test_calibration_table () =
  let corpus, grounding = grounded_fixture () in
  let marginals = Array.make (Dd_fgraph.Graph.num_vars (Grounding.graph grounding)) 0.5 in
  let report = Calibration.evaluate grounding marginals ~truth:corpus.Corpus.truth in
  Alcotest.(check bool) "renders" true
    (String.length (Dd_util.Table.render (Calibration.to_table report)) > 0)

(* --- analysis ------------------------------------------------------------------- *)

let test_analysis_reports () =
  let corpus, grounding = grounded_fixture () in
  let g = Grounding.graph grounding in
  (* Everything predicted true: every non-truth resolvable pair becomes a
     false positive, and no fact should appear as missed with p <= 0.9. *)
  let marginals = Array.make (Dd_fgraph.Graph.num_vars g) 0.95 in
  let report = Analysis.analyze ~top:5 grounding marginals ~truth:corpus.Corpus.truth in
  Alcotest.(check bool) "false positives found" true (report.Analysis.false_positives <> []);
  Alcotest.(check bool) "top respected" true (List.length report.Analysis.false_positives <= 5);
  List.iter
    (fun e -> Alcotest.(check bool) "fp above threshold" true (e.Analysis.probability > 0.9))
    report.Analysis.false_positives;
  (* With everything at 0.0 instead, every fact is missed. *)
  let zeros = Array.make (Dd_fgraph.Graph.num_vars g) 0.0 in
  let report0 = Analysis.analyze ~top:5 grounding zeros ~truth:corpus.Corpus.truth in
  Alcotest.(check bool) "missed facts found" true (report0.Analysis.missed <> []);
  Alcotest.(check bool) "no false positives" true (report0.Analysis.false_positives = [])

let test_analysis_features_ranked () =
  let corpus, grounding = grounded_fixture () in
  let g = Grounding.graph grounding in
  (* Give two learnable weights distinctive values. *)
  let learnable =
    List.filter (fun w -> Dd_fgraph.Graph.weight_learnable g w)
      (List.init (Dd_fgraph.Graph.num_weights g) (fun w -> w))
  in
  (match learnable with
  | w1 :: w2 :: _ ->
    Dd_fgraph.Graph.set_weight g w1 5.0;
    Dd_fgraph.Graph.set_weight g w2 (-3.0)
  | _ -> Alcotest.fail "expected learnable weights");
  let marginals = Array.make (Dd_fgraph.Graph.num_vars g) 0.5 in
  let report = Analysis.analyze ~top:3 grounding marginals ~truth:corpus.Corpus.truth in
  (match report.Analysis.strongest_features with
  | first :: second :: _ ->
    Alcotest.(check (float 0.0)) "strongest first" 5.0 first.Analysis.weight;
    Alcotest.(check bool) "ranked by magnitude" true
      (abs_float first.Analysis.weight >= abs_float second.Analysis.weight);
    Alcotest.(check bool) "support counted" true (first.Analysis.factors > 0)
  | _ -> Alcotest.fail "expected features")

(* --- systems -------------------------------------------------------------------- *)

let test_systems_presets () =
  Alcotest.(check int) "five systems" 5 (List.length Systems.all);
  List.iter
    (fun config ->
      let corpus = Corpus.generate { config with Corpus.docs = 6 } in
      Alcotest.(check bool)
        (config.Corpus.name ^ " generates")
        true
        (Array.length corpus.Corpus.doc_tables = 6))
    Systems.all

let test_systems_by_name () =
  Alcotest.(check bool) "news found" true (Systems.by_name "news" <> None);
  Alcotest.(check bool) "case insensitive" true (Systems.by_name "NEWS" <> None);
  Alcotest.(check bool) "unknown" true (Systems.by_name "nope" = None)

let test_systems_axes () =
  (* The presets must encode the paper's qualitative axes. *)
  Alcotest.(check bool) "adversarial has worst text" true
    (Systems.adversarial.Corpus.phrase_corruption
    > List.fold_left
        (fun acc c -> max acc c.Corpus.phrase_corruption)
        0.0
        [ Systems.news; Systems.genomics; Systems.pharma; Systems.paleontology ]);
  Alcotest.(check bool) "news has most relations" true
    (Systems.news.Corpus.relations >= Systems.pharma.Corpus.relations);
  Alcotest.(check bool) "paleo least ambiguous" true
    (Systems.paleontology.Corpus.phrase_ambiguity <= Systems.genomics.Corpus.phrase_ambiguity)

(* --- drift --------------------------------------------------------------------- *)

let test_drift_shapes () =
  let stream = Drift.generate ~emails:1000 ~features:60 ~seed:9 () in
  Alcotest.(check int) "early size" 100 (Array.length stream.Drift.train_early.Learner.rows);
  Alcotest.(check int) "late size" 300 (Array.length stream.Drift.train_late.Learner.rows);
  Alcotest.(check int) "test size" 700 (Array.length stream.Drift.test.Learner.rows);
  Array.iter
    (fun (features, _) ->
      Array.iter
        (fun f -> Alcotest.(check bool) "feature in range" true (f >= 0 && f < 60))
        features)
    stream.Drift.test.Learner.rows

let test_drift_hurts_stale_model () =
  (* A model trained before the drift must lose accuracy on post-drift data
     compared to a drift-free stream. *)
  let train_and_test drift_at =
    let stream = Drift.generate ~emails:2000 ~drift_at ~seed:10 () in
    let weights =
      Learner.train_lr ~method_:Learner.Sgd ~epochs:25 (Prng.create 11)
        stream.Drift.train_early
    in
    Learner.lr_loss stream.Drift.test weights
  in
  let stable_loss = train_and_test 0.0 in
  let drifted_loss = train_and_test 0.5 in
  Alcotest.(check bool) "drift hurts" true (drifted_loss > stable_loss)

(* --- snapshots ------------------------------------------------------------------ *)

let quick_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 80;
    inference_chain = 40;
    initial_learning_epochs = 8;
    incremental_learning_epochs = 2;
  }

let test_snapshots_run () =
  let corpus = Corpus.generate tiny_config in
  let result = Snapshots.run ~options:quick_options corpus in
  Alcotest.(check int) "six rows" 6 (List.length result.Snapshots.rows);
  let first = List.hd result.Snapshots.rows in
  Alcotest.(check bool) "A1 first" true (first.Snapshots.rule = Pipeline.A1);
  Alcotest.(check string) "A1 strategy" "sampling" first.Snapshots.strategy;
  (match first.Snapshots.acceptance with
  | Some a -> Alcotest.(check (float 0.0)) "A1 full acceptance" 1.0 a
  | None -> Alcotest.fail "A1 should report acceptance");
  List.iter
    (fun (row : Snapshots.row) ->
      Alcotest.(check bool) "times nonneg" true
        (row.Snapshots.incremental_seconds >= 0.0 && row.Snapshots.rerun_seconds >= 0.0))
    result.Snapshots.rows;
  Alcotest.(check bool) "graph described" true (result.Snapshots.graph_vars > 0)

let test_snapshots_skip_rerun () =
  let corpus = Corpus.generate tiny_config in
  let result = Snapshots.run ~options:quick_options ~skip_rerun:true corpus in
  List.iter
    (fun (row : Snapshots.row) ->
      Alcotest.(check (float 0.0)) "no rerun time" 0.0 row.Snapshots.rerun_seconds)
    result.Snapshots.rows

let () =
  Alcotest.run "dd_kbc"
    [
      ( "corpus",
        [
          Alcotest.test_case "deterministic" `Quick test_corpus_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_corpus_seed_changes_output;
          Alcotest.test_case "doc count" `Quick test_corpus_doc_count;
          Alcotest.test_case "rows conform" `Quick test_corpus_rows_conform;
          Alcotest.test_case "known subset of truth" `Quick test_corpus_known_subset_of_truth;
          Alcotest.test_case "prefix + delta = full" `Quick
            test_corpus_load_prefix_plus_delta_equals_full;
          Alcotest.test_case "statistics" `Quick test_corpus_statistics_line;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "programs validate" `Quick test_pipeline_programs_validate;
          Alcotest.test_case "rule sequence" `Quick test_pipeline_rule_sequence;
          Alcotest.test_case "grounds" `Quick test_pipeline_grounds;
          Alcotest.test_case "semantics param" `Quick test_pipeline_semantics_parameter;
        ] );
      ( "quality",
        [
          Alcotest.test_case "evaluate" `Quick test_quality_perfect_predictions;
          Alcotest.test_case "f1 formula" `Quick test_quality_f1_formula;
          Alcotest.test_case "compare identical" `Quick test_compare_marginals_identical;
          Alcotest.test_case "compare differences" `Quick test_compare_marginals_differences;
          Alcotest.test_case "compare missing" `Quick test_compare_marginals_missing_tuple;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "buckets" `Quick test_calibration_buckets;
          Alcotest.test_case "perfect oracle" `Quick test_calibration_perfect_oracle;
          Alcotest.test_case "table" `Quick test_calibration_table;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "reports" `Quick test_analysis_reports;
          Alcotest.test_case "features ranked" `Quick test_analysis_features_ranked;
        ] );
      ( "systems",
        [
          Alcotest.test_case "presets" `Quick test_systems_presets;
          Alcotest.test_case "by name" `Quick test_systems_by_name;
          Alcotest.test_case "axes" `Quick test_systems_axes;
        ] );
      ( "drift",
        [
          Alcotest.test_case "shapes" `Quick test_drift_shapes;
          Alcotest.test_case "stale model hurt" `Quick test_drift_hurts_stale_model;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "run" `Slow test_snapshots_run;
          Alcotest.test_case "skip rerun" `Slow test_snapshots_skip_rerun;
        ] );
    ]
