(* Tests for Dd_linalg.Matrix: the dense SPD kernel under Algorithm 1. *)

module Matrix = Dd_linalg.Matrix

let check_close epsilon = Alcotest.(check (float epsilon))

let matrix_equal ?(epsilon = 1e-9) a b = Matrix.frobenius_distance a b < epsilon

(* A well-conditioned random SPD matrix: B^T B + I. *)
let random_spd rng n =
  let b = Matrix.create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Matrix.set b i j (Dd_util.Prng.float_range rng (-1.0) 1.0)
    done
  done;
  Matrix.add_ridge (Matrix.mul (Matrix.transpose b) b) 1.0

let test_create_zero () =
  let m = Matrix.create 3 in
  Alcotest.(check int) "dim" 3 (Matrix.dim m);
  for i = 0 to 2 do
    for j = 0 to 2 do
      check_close 0.0 "zero" 0.0 (Matrix.get m i j)
    done
  done

let test_identity () =
  let m = Matrix.identity 3 in
  check_close 0.0 "diag" 1.0 (Matrix.get m 1 1);
  check_close 0.0 "off" 0.0 (Matrix.get m 0 2)

let test_of_to_arrays () =
  let rows = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let m = Matrix.of_arrays rows in
  Alcotest.(check bool) "roundtrip" true (Matrix.to_arrays m = rows);
  (* Mutating the source must not affect the matrix (copied). *)
  rows.(0).(0) <- 99.0;
  check_close 0.0 "copied" 1.0 (Matrix.get m 0 0)

let test_set_update () =
  let m = Matrix.create 2 in
  Matrix.set m 0 1 5.0;
  Matrix.update m 0 1 (fun v -> v +. 1.0);
  check_close 0.0 "update" 6.0 (Matrix.get m 0 1)

let test_add_sub_scale () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  check_close 0.0 "add" 8.0 (Matrix.get (Matrix.add a b) 0 1);
  check_close 0.0 "sub" (-4.0) (Matrix.get (Matrix.sub a b) 1 0);
  check_close 0.0 "scale" 8.0 (Matrix.get (Matrix.scale 2.0 b) 1 1 /. 2.0)

let test_mul_known () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.mul a b in
  check_close 0.0 "c00" 19.0 (Matrix.get c 0 0);
  check_close 0.0 "c01" 22.0 (Matrix.get c 0 1);
  check_close 0.0 "c10" 43.0 (Matrix.get c 1 0);
  check_close 0.0 "c11" 50.0 (Matrix.get c 1 1)

let test_mul_identity () =
  let rng = Dd_util.Prng.create 3 in
  let a = random_spd rng 4 in
  Alcotest.(check bool) "a*i = a" true (matrix_equal a (Matrix.mul a (Matrix.identity 4)))

let test_mat_vec () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = Matrix.mat_vec a [| 1.0; 1.0 |] in
  Alcotest.(check (array (float 1e-12))) "mat_vec" [| 3.0; 7.0 |] y

let test_transpose () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_close 0.0 "transposed" 3.0 (Matrix.get (Matrix.transpose a) 0 1)

let test_symmetrize () =
  let a = Matrix.of_arrays [| [| 1.0; 4.0 |]; [| 0.0; 1.0 |] |] in
  let s = Matrix.symmetrize a in
  check_close 0.0 "sym 01" 2.0 (Matrix.get s 0 1);
  check_close 0.0 "sym 10" 2.0 (Matrix.get s 1 0)

let test_cholesky_known () =
  (* [[4,2],[2,3]] = L L^T with L = [[2,0],[1,sqrt 2]]. *)
  let a = Matrix.of_arrays [| [| 4.0; 2.0 |]; [| 2.0; 3.0 |] |] in
  let l = Matrix.cholesky a in
  check_close 1e-12 "l00" 2.0 (Matrix.get l 0 0);
  check_close 1e-12 "l10" 1.0 (Matrix.get l 1 0);
  check_close 1e-12 "l11" (sqrt 2.0) (Matrix.get l 1 1);
  check_close 0.0 "upper zero" 0.0 (Matrix.get l 0 1)

let test_cholesky_rejects_non_spd () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.check_raises "not SPD" Matrix.Not_positive_definite (fun () ->
      ignore (Matrix.cholesky a))

let test_cholesky_reconstruction () =
  let rng = Dd_util.Prng.create 4 in
  let a = random_spd rng 6 in
  let l = Matrix.cholesky a in
  Alcotest.(check bool) "l l^T = a" true
    (matrix_equal ~epsilon:1e-8 a (Matrix.mul l (Matrix.transpose l)))

let test_spd_solve () =
  let a = Matrix.of_arrays [| [| 4.0; 2.0 |]; [| 2.0; 3.0 |] |] in
  let x = Matrix.spd_solve a [| 8.0; 7.0 |] in
  let b = Matrix.mat_vec a x in
  check_close 1e-9 "b0" 8.0 b.(0);
  check_close 1e-9 "b1" 7.0 b.(1)

let test_spd_inverse () =
  let rng = Dd_util.Prng.create 5 in
  let a = random_spd rng 5 in
  let inv = Matrix.spd_inverse a in
  Alcotest.(check bool) "a a^-1 = i" true
    (matrix_equal ~epsilon:1e-7 (Matrix.identity 5) (Matrix.mul a inv));
  (* Inverse of SPD is symmetric. *)
  Alcotest.(check bool) "symmetric" true (matrix_equal inv (Matrix.transpose inv))

let test_log_det_2x2 () =
  let a = Matrix.of_arrays [| [| 4.0; 2.0 |]; [| 2.0; 3.0 |] |] in
  (* det = 12 - 4 = 8. *)
  check_close 1e-9 "logdet" (log 8.0) (Matrix.log_det_spd a)

let test_log_det_identity () =
  check_close 1e-12 "logdet I = 0" 0.0 (Matrix.log_det_spd (Matrix.identity 7))

let test_is_spd () =
  Alcotest.(check bool) "identity SPD" true (Matrix.is_spd (Matrix.identity 3));
  let bad = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.(check bool) "indefinite" false (Matrix.is_spd bad)

let test_add_ridge () =
  let a = Matrix.create 2 in
  let r = Matrix.add_ridge a 0.5 in
  check_close 0.0 "diag" 0.5 (Matrix.get r 0 0);
  check_close 0.0 "off" 0.0 (Matrix.get r 0 1);
  (* Original untouched. *)
  check_close 0.0 "original" 0.0 (Matrix.get a 0 0)

let test_frobenius_and_max_abs () =
  let a = Matrix.of_arrays [| [| 0.0; 3.0 |]; [| 4.0; 0.0 |] |] in
  check_close 1e-12 "frobenius" 5.0 (Matrix.frobenius_distance a (Matrix.create 2));
  check_close 0.0 "max_abs" 4.0 (Matrix.max_abs a)

let qcheck_tests =
  let open QCheck in
  let spd_gen = Gen.map (fun seed -> random_spd (Dd_util.Prng.create seed) 4) Gen.small_int in
  let arbitrary_spd = make ~print:(fun m -> Format.asprintf "%a" Matrix.pp m) spd_gen in
  [
    Test.make ~name:"spd_solve satisfies system" ~count:50 arbitrary_spd (fun a ->
        let b = [| 1.0; -2.0; 0.5; 3.0 |] in
        let x = Matrix.spd_solve a b in
        Dd_util.Stats.max_abs_diff (Matrix.mat_vec a x) b < 1e-6);
    Test.make ~name:"logdet matches cholesky diagonal" ~count:50 arbitrary_spd (fun a ->
        let l = Matrix.cholesky a in
        let s = ref 0.0 in
        for i = 0 to Matrix.dim a - 1 do
          s := !s +. log (Matrix.get l i i)
        done;
        abs_float (Matrix.log_det_spd a -. (2.0 *. !s)) < 1e-9);
    Test.make ~name:"inverse involutive" ~count:30 arbitrary_spd (fun a ->
        let back = Matrix.spd_inverse (Matrix.spd_inverse a) in
        Matrix.frobenius_distance a back < 1e-5);
    Test.make ~name:"random SPD is SPD" ~count:50 arbitrary_spd Matrix.is_spd;
  ]

let () =
  Alcotest.run "dd_linalg"
    [
      ( "matrix",
        [
          Alcotest.test_case "create zero" `Quick test_create_zero;
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "of/to arrays" `Quick test_of_to_arrays;
          Alcotest.test_case "set/update" `Quick test_set_update;
          Alcotest.test_case "add/sub/scale" `Quick test_add_sub_scale;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "mul identity" `Quick test_mul_identity;
          Alcotest.test_case "mat_vec" `Quick test_mat_vec;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "symmetrize" `Quick test_symmetrize;
        ] );
      ( "spd",
        [
          Alcotest.test_case "cholesky known" `Quick test_cholesky_known;
          Alcotest.test_case "cholesky rejects" `Quick test_cholesky_rejects_non_spd;
          Alcotest.test_case "cholesky reconstruction" `Quick test_cholesky_reconstruction;
          Alcotest.test_case "solve" `Quick test_spd_solve;
          Alcotest.test_case "inverse" `Quick test_spd_inverse;
          Alcotest.test_case "logdet 2x2" `Quick test_log_det_2x2;
          Alcotest.test_case "logdet identity" `Quick test_log_det_identity;
          Alcotest.test_case "is_spd" `Quick test_is_spd;
          Alcotest.test_case "ridge" `Quick test_add_ridge;
          Alcotest.test_case "frobenius/max_abs" `Quick test_frobenius_and_max_abs;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
