(* Tests for Dd_variational: covariance estimation, the log-determinant
   solver of Algorithm 1, and the approximate-graph construction. *)

module Graph = Dd_fgraph.Graph
module Exact = Dd_fgraph.Exact
module Gibbs = Dd_inference.Gibbs
module Covariance = Dd_variational.Covariance
module Logdet = Dd_variational.Logdet
module Approx = Dd_variational.Approx
module Matrix = Dd_linalg.Matrix
module Prng = Dd_util.Prng
module Stats = Dd_util.Stats

let check_close epsilon = Alcotest.(check (float epsilon))

(* Two variables coupled by a conjunction factor of the given weight, plus
   mild biases. *)
let coupled_pair weight =
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var g in
  let w = Graph.add_weight g weight in
  ignore (Graph.pairwise g ~weight:w a b);
  let bias = Graph.add_weight g 0.2 in
  ignore (Graph.unary g ~weight:bias a);
  ignore (Graph.unary g ~weight:bias b);
  (g, a, b)

(* --- covariance --------------------------------------------------------- *)

let test_nonzero_pairs () =
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var g and c = Graph.add_var g in
  let w = Graph.add_weight g 1.0 in
  ignore (Graph.pairwise g ~weight:w a b);
  ignore (Graph.unary g ~weight:w c);
  Alcotest.(check (list (pair int int))) "only coupled pair" [ (a, b) ]
    (Covariance.nonzero_pairs g)

let test_means () =
  let samples = [| [| true; false |]; [| true; true |]; [| false; false |]; [| true; false |] |] in
  let mu = Covariance.means samples 2 in
  check_close 1e-9 "var 0" 0.75 mu.(0);
  check_close 1e-9 "var 1" 0.25 mu.(1)

let test_estimate_diagonal () =
  let samples = [| [| true |]; [| true |]; [| false |]; [| false |] |] in
  let m = Covariance.estimate ~samples ~nvars:1 ~nz:[] in
  check_close 1e-9 "bernoulli variance" 0.25 (Matrix.get m 0 0)

let test_estimate_correlation_sign () =
  (* Perfectly correlated samples -> positive covariance; the pair (0,1)
     is in NZ, pair (0,2) is not and stays zero. *)
  let samples =
    [| [| true; true; false |]; [| false; false; true |]; [| true; true; true |];
       [| false; false; false |] |]
  in
  let m = Covariance.estimate ~samples ~nvars:3 ~nz:[ (0, 1) ] in
  Alcotest.(check bool) "positive cov" true (Matrix.get m 0 1 > 0.2);
  check_close 1e-9 "symmetric" (Matrix.get m 0 1) (Matrix.get m 1 0);
  check_close 0.0 "outside nz zero" 0.0 (Matrix.get m 0 2)

let test_estimate_from_gibbs () =
  let g, a, b = coupled_pair 1.5 in
  let rng = Prng.create 5 in
  let samples = Gibbs.sample_worlds ~burn_in:100 rng g ~n:2000 in
  let m = Covariance.estimate ~samples ~nvars:2 ~nz:[ (a, b) ] in
  Alcotest.(check bool) "coupling visible" true (Matrix.get m a b > 0.03)

(* --- logdet solver ------------------------------------------------------ *)

let sample_covariance () =
  let g, a, b = coupled_pair 1.5 in
  let rng = Prng.create 6 in
  let samples = Gibbs.sample_worlds ~burn_in:100 rng g ~n:1500 in
  (Covariance.estimate ~samples ~nvars:2 ~nz:[ (a, b) ], [ (a, b) ])

let test_logdet_constraints () =
  let m, nz = sample_covariance () in
  let lambda = 0.01 in
  let x = Logdet.solve ~nz ~lambda m in
  (* Diagonal equality constraint. *)
  check_close 1e-6 "diag 0" (Matrix.get m 0 0 +. (1.0 /. 3.0)) (Matrix.get x 0 0);
  check_close 1e-6 "diag 1" (Matrix.get m 1 1 +. (1.0 /. 3.0)) (Matrix.get x 1 1);
  (* Box constraint around M (pruning may zero entries only if within box). *)
  let off = Matrix.get x 0 1 in
  Alcotest.(check bool) "box" true
    (off = 0.0 || abs_float (off -. Matrix.get m 0 1) <= lambda +. 1e-6);
  Alcotest.(check bool) "SPD" true (Matrix.is_spd x)

let test_logdet_zero_pattern () =
  (* Entries outside NZ must remain exactly zero. *)
  let m = Matrix.identity 3 in
  Matrix.set m 0 1 0.2;
  Matrix.set m 1 0 0.2;
  let x = Logdet.solve ~nz:[ (0, 1) ] ~lambda:0.05 m in
  check_close 0.0 "(0,2) zero" 0.0 (Matrix.get x 0 2);
  check_close 0.0 "(1,2) zero" 0.0 (Matrix.get x 1 2)

let test_logdet_large_lambda_sparsifies () =
  let m, nz = sample_covariance () in
  let tight = Logdet.solve ~nz ~lambda:0.001 m in
  let loose = Logdet.solve ~nz ~lambda:10.0 m in
  let nnz x = List.length (Logdet.offdiag_nonzeros x) in
  Alcotest.(check bool) "looser lambda, sparser solution" true (nnz loose <= nnz tight);
  (* With a huge box the maximizer of log det is diagonal. *)
  Alcotest.(check int) "diagonal at lambda=10" 0 (nnz loose)

let test_offdiag_nonzeros () =
  let m = Matrix.identity 3 in
  Matrix.set m 0 2 0.5;
  let entries = Logdet.offdiag_nonzeros m in
  Alcotest.(check int) "one entry" 1 (List.length entries);
  let i, j, v = List.hd entries in
  Alcotest.(check int) "row" 0 i;
  Alcotest.(check int) "col" 2 j;
  check_close 0.0 "value" 0.5 v

(* --- approximate graph ---------------------------------------------------- *)

let test_approx_preserves_marginals () =
  let g, a, b = coupled_pair 1.2 in
  let rng = Prng.create 7 in
  let samples = Gibbs.sample_worlds ~burn_in:100 rng g ~n:1500 in
  let approx, stats = Approx.materialize ~lambda:0.01 (Prng.create 8) g ~samples in
  Alcotest.(check int) "same vars" (Graph.num_vars g) (Graph.num_vars approx);
  let exact = Exact.marginals g in
  let approx_marginals = Exact.marginals approx in
  Alcotest.(check bool) "marginal a close" true (abs_float (exact.(a) -. approx_marginals.(a)) < 0.08);
  Alcotest.(check bool) "marginal b close" true (abs_float (exact.(b) -. approx_marginals.(b)) < 0.08);
  Alcotest.(check bool) "has pairwise factor" true (stats.Approx.pairwise_factors >= 0)

let test_approx_preserves_correlation_direction () =
  let g, a, b = coupled_pair 2.0 in
  let rng = Prng.create 9 in
  let samples = Gibbs.sample_worlds ~burn_in:100 rng g ~n:2000 in
  let approx, stats = Approx.materialize ~lambda:0.005 (Prng.create 10) g ~samples in
  Alcotest.(check int) "one pairwise factor" 1 stats.Approx.pairwise_factors;
  (* Positive coupling in the original must come out as positive association:
     P(a | b = true) > P(a | b = false) in the approximate graph. *)
  Graph.set_evidence approx b (Graph.Evidence true);
  let p_true = (Exact.marginals approx).(a) in
  Graph.set_evidence approx b (Graph.Evidence false);
  let p_false = (Exact.marginals approx).(a) in
  Alcotest.(check bool) "positive association" true (p_true > p_false)

let test_approx_keeps_evidence () =
  let g = Graph.create () in
  let a = Graph.add_var ~evidence:(Graph.Evidence true) g in
  let b = Graph.add_var g in
  let w = Graph.add_weight g 0.7 in
  ignore (Graph.pairwise g ~weight:w a b);
  let rng = Prng.create 11 in
  let samples = Gibbs.sample_worlds ~burn_in:50 rng g ~n:500 in
  let approx, _ = Approx.materialize (Prng.create 12) g ~samples in
  Alcotest.(check bool) "evidence carried over" true
    (Graph.evidence_of approx a = Graph.Evidence true)

let test_approx_sparsity_grows_with_lambda () =
  (* A denser graph: a chain of 6 variables. *)
  let g = Graph.create () in
  let vars = Graph.add_vars g 6 in
  for k = 0 to 4 do
    let w = Graph.add_weight g 0.8 in
    ignore (Graph.pairwise g ~weight:w vars.(k) vars.(k + 1))
  done;
  let rng = Prng.create 13 in
  let samples = Gibbs.sample_worlds ~burn_in:100 rng g ~n:1500 in
  let _, stats_tight = Approx.materialize ~lambda:0.001 (Prng.create 14) g ~samples in
  let _, stats_loose = Approx.materialize ~lambda:1.0 (Prng.create 15) g ~samples in
  Alcotest.(check bool) "lambda sparsifies" true
    (stats_loose.Approx.pairwise_factors <= stats_tight.Approx.pairwise_factors);
  Alcotest.(check int) "candidate pairs = chain edges" 5 stats_tight.Approx.candidate_pairs

let test_approx_independent_vars_get_no_factors () =
  (* Two independent biased variables: no NZ pairs at all. *)
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var g in
  let w = Graph.add_weight g 0.5 in
  ignore (Graph.unary g ~weight:w a);
  ignore (Graph.unary g ~weight:w b);
  let rng = Prng.create 16 in
  let samples = Gibbs.sample_worlds ~burn_in:50 rng g ~n:800 in
  let approx, stats = Approx.materialize (Prng.create 17) g ~samples in
  Alcotest.(check int) "no pairwise factors" 0 stats.Approx.pairwise_factors;
  (* Unary moment matching alone recovers the bias. *)
  let m = Exact.marginals approx in
  Alcotest.(check bool) "bias preserved" true (abs_float (m.(a) -. Stats.sigmoid 0.5) < 0.08)

let () =
  Alcotest.run "dd_variational"
    [
      ( "covariance",
        [
          Alcotest.test_case "nonzero pairs" `Quick test_nonzero_pairs;
          Alcotest.test_case "means" `Quick test_means;
          Alcotest.test_case "diagonal" `Quick test_estimate_diagonal;
          Alcotest.test_case "correlation sign" `Quick test_estimate_correlation_sign;
          Alcotest.test_case "from gibbs" `Slow test_estimate_from_gibbs;
        ] );
      ( "logdet",
        [
          Alcotest.test_case "constraints" `Quick test_logdet_constraints;
          Alcotest.test_case "zero pattern" `Quick test_logdet_zero_pattern;
          Alcotest.test_case "lambda sparsifies" `Quick test_logdet_large_lambda_sparsifies;
          Alcotest.test_case "offdiag nonzeros" `Quick test_offdiag_nonzeros;
        ] );
      ( "approx",
        [
          Alcotest.test_case "marginals preserved" `Slow test_approx_preserves_marginals;
          Alcotest.test_case "correlation direction" `Slow test_approx_preserves_correlation_direction;
          Alcotest.test_case "evidence kept" `Quick test_approx_keeps_evidence;
          Alcotest.test_case "sparsity vs lambda" `Slow test_approx_sparsity_grows_with_lambda;
          Alcotest.test_case "independent vars" `Slow test_approx_independent_vars_get_no_factors;
        ] );
    ]
