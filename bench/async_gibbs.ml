(* The asynchronous-sampler study: sweeps/sec of lock-free free-running
   range sweeps (Par_gibbs mode Async, the DimmWitted design) vs the
   color-synchronous sampler at 1/2/4/8 domains, on a synthetic scale
   graph large enough that scheduling — not per-conditional arithmetic —
   dominates.

   Two claims are measured:

   - async(d) / colorsync(d): what removing the per-color barrier and
     the scattered color-class access pattern buys at equal domain
     count.  This is the gap ROADMAP Open item 2 names: color-sync
     parallel sweeps LOSE to sequential, async must not.
   - async(d) / async(1): the self-scaling of the free-running sampler.
     On a multicore host this is core scaling; on a single hardware
     domain the logical workers multiplex onto one slot and the gain is
     cache blocking — each worker's contiguous range stays resident
     across its epoch where the 1-worker sweep streams the whole
     kernel through the cache every pass.  The JSON host block records
     which regime produced the numbers.

   The statistical-equivalence tier re-checks on small graphs that the
   async chain samples the same distribution: marginals vs exact
   enumeration (max |diff| and mean Bernoulli KL) and vs the color-sync
   reference.  Bit-exactness of async at 1 worker vs the sequential
   compiled sweep is asserted before any timing. *)

open Harness
module Graph = Dd_fgraph.Graph
module Exact = Dd_fgraph.Exact
module Compiled = Dd_inference.Compiled
module Par_gibbs = Dd_parallel.Par_gibbs
module Partition = Dd_parallel.Partition
module Pool = Dd_parallel.Pool
module Prng = Dd_util.Prng
module Stats = Dd_util.Stats

let domain_counts = [ 1; 2; 4; 8 ]

let rate_of ~sweeps secs = float_of_int sweeps /. secs

(* Color-sync sweeps/s, reusing the sampler across repeats (the partition
   and pool are part of the mode's cost of doing business, but we measure
   steady-state sweeps, not setup). *)
let colorsync_rate ~sweeps ~repeats ~kernel g d =
  let sampler = Par_gibbs.create ~kernel ~domains:d (Prng.create 53) g in
  Fun.protect
    ~finally:(fun () -> Par_gibbs.shutdown sampler)
    (fun () ->
      for _ = 1 to 2 do
        Par_gibbs.sweep sampler
      done;
      let secs =
        time_median ~repeats (fun () ->
            for _ = 1 to sweeps do
              Par_gibbs.sweep sampler
            done)
      in
      rate_of ~sweeps secs)

(* Async sweeps/s: one epoch of [sweeps] free-running range sweeps per
   timed run — the epoch boundary is the only synchronization, exactly
   how the engine consumes the mode. *)
let async_rate ~sweeps ~repeats ~kernel g d =
  let sampler = Par_gibbs.create ~mode:Par_gibbs.Async ~kernel ~domains:d (Prng.create 53) g in
  Fun.protect
    ~finally:(fun () -> Par_gibbs.shutdown sampler)
    (fun () ->
      Par_gibbs.sweep_epoch sampler ~sweeps:2;
      let secs = time_median ~repeats (fun () -> Par_gibbs.sweep_epoch sampler ~sweeps) in
      rate_of ~sweeps secs)

(* Async with one worker keeps the caller's PRNG stream and recomputes
   exactly the counter-derived conditionals, so its trajectory must be
   bit-identical to the sequential compiled sweep. *)
let check_bit_exact ~kernel g =
  let seq = Par_gibbs.create ~kernel ~domains:1 (Prng.create 7) g in
  let asy = Par_gibbs.create ~mode:Par_gibbs.Async ~kernel ~domains:1 (Prng.create 7) g in
  Fun.protect
    ~finally:(fun () ->
      Par_gibbs.shutdown seq;
      Par_gibbs.shutdown asy)
    (fun () ->
      for _ = 1 to 3 do
        Par_gibbs.sweep seq;
        Par_gibbs.sweep asy
      done;
      Par_gibbs.assignment seq = Par_gibbs.assignment asy)

let monotone xs =
  let ok = ref true in
  List.iteri (fun i x -> if i > 0 then ok := !ok && x >= List.nth xs (i - 1)) xs;
  !ok

(* --- statistical equivalence on enumerable graphs ----------------------- *)

let equivalence_tier () =
  note "";
  note "statistical equivalence (12-var scale graph, exact enumeration):";
  let g = scale_graph ~extra_per_var:2 ~locality:4 (Prng.create 11) 12 in
  let exact = Exact.marginals g in
  let sweeps = 30_000 in
  let asy =
    Par_gibbs.marginals ~mode:Par_gibbs.Async ~epoch_sweeps:4 ~burn_in:300 ~domains:3
      (Prng.create 12) g ~sweeps
  in
  let sync =
    Par_gibbs.marginals ~burn_in:300 ~domains:3 (Prng.create 12) g ~sweeps
  in
  let kl a b =
    let acc = ref 0.0 in
    Array.iteri (fun v p -> acc := !acc +. Stats.kl_bernoulli p b.(v)) a;
    !acc /. float_of_int (Array.length a)
  in
  let d_async = Stats.max_abs_diff asy exact in
  let d_sync = Stats.max_abs_diff sync exact in
  let d_cross = Stats.max_abs_diff asy sync in
  let kl_async = kl exact asy in
  metric "equiv_max_diff_async_vs_exact" d_async;
  metric "equiv_max_diff_colorsync_vs_exact" d_sync;
  metric "equiv_max_diff_async_vs_colorsync" d_cross;
  metric "equiv_mean_kl_exact_vs_async" kl_async;
  let ok = d_async < 0.05 && d_cross < 0.05 in
  metric "equiv_ok" (if ok then 1.0 else 0.0);
  note "  async vs exact: max|diff| %.4f, mean KL %.6f (color-sync vs exact: %.4f)"
    d_async kl_async d_sync;
  note "  async vs color-sync: max|diff| %.4f -> %s" d_cross (if ok then "ok" else "FAIL")

let run ~full =
  section "Async Gibbs: lock-free free-running ranges vs the color barrier";
  let nvars = if full then 1_200_000 else 60_000 in
  let extra = 2 and locality = 512 in
  let g, build_s =
    Dd_util.Timer.time (fun () -> scale_graph ~extra_per_var:extra ~locality (Prng.create 19) nvars)
  in
  let kernel, compile_s = Dd_util.Timer.time (fun () -> Compiled.compile g) in
  let partition, color_s = Dd_util.Timer.time (fun () -> Partition.color g) in
  note
    "graph: %d vars, %d factors, %d bodies (locality window %d); built %.1fs, compiled %.1fs, \
     %d colors in %.1fs; host: %d cpus"
    (Graph.num_vars g) (Graph.num_factors g) (Compiled.num_bodies kernel) locality build_s
    compile_s partition.Partition.num_colors color_s (host_cpu_count ());
  metric "vars" (float_of_int (Graph.num_vars g));
  metric "factors" (float_of_int (Graph.num_factors g));
  metric "colors" (float_of_int partition.Partition.num_colors);
  metric "recommended_domains" (float_of_int (Pool.recommended ()));
  let exact_small =
    let g0 = scale_graph ~extra_per_var:extra ~locality:16 (Prng.create 23) 400 in
    let k0 = Compiled.compile g0 in
    check_bit_exact ~kernel:k0 g0
  in
  let exact_big = check_bit_exact ~kernel g in
  note "async(1 worker) bit-exact with sequential sweep: small %s, scale %s"
    (if exact_small then "yes" else "NO")
    (if exact_big then "yes" else "NO");
  metric "async_bit_exact_1d" (if exact_small && exact_big then 1.0 else 0.0);
  let sweeps = if full then 8 else 24 in
  let repeats = if full then 3 else 5 in
  let table =
    Dd_util.Table.create
      [ "domains"; "color-sync s/s"; "async s/s"; "async vs sync"; "async self"; "vs seq" ]
  in
  let results =
    List.map
      (fun d ->
        let sync = colorsync_rate ~sweeps ~repeats ~kernel g d in
        let asy = async_rate ~sweeps ~repeats ~kernel g d in
        metric (Printf.sprintf "colorsync_sweeps_per_sec_%dd" d) sync;
        metric (Printf.sprintf "async_sweeps_per_sec_%dd" d) asy;
        metric (Printf.sprintf "speedup_%dd" d) (asy /. sync);
        (d, sync, asy))
      domain_counts
  in
  let _, sync1, async1 = List.hd results in
  List.iter
    (fun (d, sync, asy) ->
      metric (Printf.sprintf "async_self_speedup_%dd" d) (asy /. async1);
      metric (Printf.sprintf "async_vs_seq_%dd" d) (asy /. sync1);
      Dd_util.Table.add_row table
        [
          string_of_int d;
          Printf.sprintf "%.1f" sync;
          Printf.sprintf "%.1f" asy;
          Dd_util.Table.cell_x (asy /. sync);
          Dd_util.Table.cell_x (asy /. async1);
          Dd_util.Table.cell_x (asy /. sync1);
        ])
    results;
  Dd_util.Table.print table;
  let speedups = List.map (fun (_, sync, asy) -> asy /. sync) results in
  let selfs = List.map (fun (_, _, asy) -> asy /. async1) results in
  let mono_speedup = monotone speedups and mono_self = monotone selfs in
  metric "monotone_speedup_vs_colorsync" (if mono_speedup then 1.0 else 0.0);
  metric "monotone_async_self" (if mono_self then 1.0 else 0.0);
  note
    "monotone 1->8 domains: async/color-sync speedup %s, async self-scaling %s"
    (if mono_speedup then "yes" else "NO")
    (if mono_self then "yes" else "NO");
  equivalence_tier ();
  note
    "(color-sync = chromatic phases with a pool barrier per color; async =\n\
     free-running cost-balanced contiguous ranges, one barrier per epoch.\n\
     Logical workers multiplex onto min(domains, hardware) slots — on a\n\
     single-core host the async curve isolates the scheduling + locality\n\
     win; see the JSON host block.  Sweeps timed: %d.)"
    sweeps

let () = register "async-gibbs" "Dd_parallel: async lock-free sampler vs color barrier" run
