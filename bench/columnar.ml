(* Columnar storage scale sweep: row vs dictionary-encoded column store on
   a KBC-shaped grounding workload at 10^5..10^7 facts.

   Per size and backend we measure the three phases separately:
     - load: bulk insert of the mention table
     - eval: full grounding (co-occurrence candidate join + projection)
     - incremental: one small DRed delta against the materialized db
   plus resident memory (Gc live words after compaction) and full-grounding
   throughput in facts/s.  Each timed comparison doubles as an equivalence
   check: both backends must produce identical relation contents.

   The row engine is the equivalence reference; at the largest size it can
   complete, the columnar engine's full-grounding throughput is reported as
   [speedup_at_row_max].  [--full] extends the sweep to 10^7 facts. *)

module Value = Dd_relational.Value
module Schema = Dd_relational.Schema
module Relation = Dd_relational.Relation
module Database = Dd_relational.Database
module Ast = Dd_datalog.Ast
module Matcher = Dd_datalog.Matcher
module Engine = Dd_datalog.Engine
module Dred = Dd_datalog.Dred
module Plan = Dd_datalog.Plan
module Prng = Dd_util.Prng
module Timer = Dd_util.Timer

let i = Value.int
let v name = Ast.Var name
let atom = Ast.atom

(* Candidate-extraction shape: a co-occurrence join keyed on the document
   column (constant fanout per probe: mentions-per-doc is fixed), plus a
   projection.  Output size is O(facts), so the sweep stays linear. *)
let program =
  [
    Ast.rule
      ~guards:[ Ast.Lt (v "m1", v "m2") ]
      (atom "cooccur" [ v "e1"; v "e2"; v "d" ])
      [
        Ast.Pos (atom "mention" [ v "d"; v "m1"; v "e1" ]);
        Ast.Pos (atom "mention" [ v "d"; v "m2"; v "e2" ]);
      ];
    Ast.rule (atom "seen" [ v "e" ]) [ Ast.Pos (atom "mention" [ v "d"; v "m"; v "e" ]) ];
  ]

let mention_schema =
  Schema.make [ ("doc", Value.TInt); ("mention", Value.TInt); ("entity", Value.TInt) ]

let mentions_per_doc = 4

(* Deterministic synthetic corpus: [n] mention facts over [n/4] docs and
   [n/50] entities, generated on the fly so the generator itself never
   dominates resident memory. *)
let iter_mentions n f =
  let rng = Prng.create 11 in
  let entities = max 50 (n / 50) in
  let mid = ref 0 in
  let docs = (n + mentions_per_doc - 1) / mentions_per_doc in
  for d = 0 to docs - 1 do
    for _ = 1 to mentions_per_doc do
      if !mid < n then begin
        incr mid;
        f d !mid (Prng.int_below rng entities)
      end
    done
  done

let live_mib () =
  Gc.compact ();
  let st = Gc.stat () in
  float_of_int st.Gc.live_words *. float_of_int (Sys.word_size / 8) /. (1024.0 *. 1024.0)

let make_delta n delta =
  let d = n / (2 * mentions_per_doc) in
  Dred.Delta.insert delta "mention" [| i d; i (n + 1); i 1 |];
  Dred.Delta.insert delta "mention" [| i d; i (n + 2); i 2 |];
  Dred.Delta.delete delta "mention" [| i d; i ((d * mentions_per_doc) + 1); i 0 |]

type phase_times = {
  load_s : float;
  eval_s : float;
  incr_s : float;
  resident_mib : float;
}

(* Order-independent content digest of the IDB, so the previous backend's
   database can be dropped before the next one runs — keeping hundreds of
   MiB of row tuples live would tax the columnar run's GC and skew the
   comparison.  (Exact cross-backend equivalence is property-tested in
   test/test_plan.ml; the digest here is a cheap guard.) *)
let digest db =
  List.map
    (fun pred ->
      let empty = Matcher.empty_relation in
      let rel = Option.value (Database.find_opt db pred) ~default:empty in
      let sum =
        Relation.fold
          (fun tup c acc -> (acc + Hashtbl.hash (tup, c)) land max_int)
          rel 0
      in
      (pred, Relation.cardinality rel, sum))
    (Ast.idb_preds program)

let run_backend ~plans ~n backend =
  let before = live_mib () in
  let db = Database.create ~backend () in
  let rel = Database.create_table db "mention" mention_schema in
  let t = Timer.start () in
  iter_mentions n (fun d m e -> Relation.insert rel [| i d; i m; i e |]);
  let load_s = Timer.elapsed_s t in
  let t = Timer.start () in
  (match Engine.run ~plans db program with Ok () -> () | Error e -> invalid_arg e);
  let eval_s = Timer.elapsed_s t in
  let resident_mib = live_mib () -. before in
  let delta = Dred.Delta.create () in
  make_delta n delta;
  let t = Timer.start () in
  (match Dred.apply ~plans db program delta with Ok _ -> () | Error e -> invalid_arg e);
  let incr_s = Timer.elapsed_s t in
  (digest db, { load_s; eval_s; incr_s; resident_mib })

let run ~full =
  Harness.section "bench columnar: storage backend scale sweep (row vs column store)";
  let sizes = if full then [ 100_000; 1_000_000; 10_000_000 ] else [ 100_000; 1_000_000 ] in
  (* The row engine completes every size in this sweep on the reference
     machine; if that changes, cap it here and the columnar sweep continues
     alone. *)
  let row_max = List.fold_left max 0 sizes in
  let speedup_at_row_max = ref 0.0 in
  let all_equiv = ref true in
  List.iter
    (fun n ->
      let plans = Plan.Cache.create () in
      let dig_row, row = run_backend ~plans ~n Relation.Row in
      let dig_col, col = run_backend ~plans ~n Relation.Columnar in
      let equiv = dig_row = dig_col in
      all_equiv := !all_equiv && equiv;
      let row_fps = float_of_int n /. row.eval_s in
      let col_fps = float_of_int n /. col.eval_s in
      if n = row_max then speedup_at_row_max := row.eval_s /. col.eval_s;
      let tag = Printf.sprintf "%.0e" (float_of_int n) in
      Harness.note "n=%-8d row      load %7.2fs  eval %7.2fs  incr %7.4fs  %8.1f MiB  %9.0f facts/s"
        n row.load_s row.eval_s row.incr_s row.resident_mib row_fps;
      Harness.note "n=%-8d columnar load %7.2fs  eval %7.2fs  incr %7.4fs  %8.1f MiB  %9.0f facts/s  equiv %b"
        n col.load_s col.eval_s col.incr_s col.resident_mib col_fps equiv;
      Harness.metric (Printf.sprintf "row_load_s_%s" tag) row.load_s;
      Harness.metric (Printf.sprintf "row_eval_s_%s" tag) row.eval_s;
      Harness.metric (Printf.sprintf "row_incremental_s_%s" tag) row.incr_s;
      Harness.metric (Printf.sprintf "row_resident_mib_%s" tag) row.resident_mib;
      Harness.metric (Printf.sprintf "row_facts_per_s_%s" tag) row_fps;
      Harness.metric (Printf.sprintf "columnar_load_s_%s" tag) col.load_s;
      Harness.metric (Printf.sprintf "columnar_eval_s_%s" tag) col.eval_s;
      Harness.metric (Printf.sprintf "columnar_incremental_s_%s" tag) col.incr_s;
      Harness.metric (Printf.sprintf "columnar_resident_mib_%s" tag) col.resident_mib;
      Harness.metric (Printf.sprintf "columnar_facts_per_s_%s" tag) col_fps;
      Harness.metric (Printf.sprintf "equiv_%s" tag) (if equiv then 1.0 else 0.0))
    sizes;
  Harness.note "";
  Harness.note "columnar/row full-grounding speedup at n=%d: %.2fx (target >=2x)" row_max
    !speedup_at_row_max;
  Harness.metric "max_facts" (float_of_int (List.fold_left max 0 sizes));
  Harness.metric "row_max_facts" (float_of_int row_max);
  Harness.metric "speedup_at_row_max" !speedup_at_row_max;
  Harness.metric "equiv_all" (if !all_equiv then 1.0 else 0.0)

let () =
  Harness.register "columnar" "Columnar vs row storage scale sweep (load/eval/incremental)" run
