(* Incremental learning experiments: warmstart convergence (Figure 16) and
   concept drift (Figure 17), plus the incremental-grounding speedup
   headline of Section 1/3.1. *)

open Harness
module Corpus = Dd_kbc.Corpus
module Systems = Dd_kbc.Systems
module Pipeline = Dd_kbc.Pipeline
module Drift = Dd_kbc.Drift
module Learner = Dd_inference.Learner
module Grounding = Dd_core.Grounding
module Database = Dd_relational.Database
module Prng = Dd_util.Prng
module Timer = Dd_util.Timer
module Table = Dd_util.Table

(* --- Figure 16: SGD+warmstart vs baselines -------------------------------------- *)

let fig16 ~full =
  section "Figure 16: convergence of incremental learning strategies";
  note
    "Loss relative to the optimum (%% above optimal) per epoch on a stream\n\
     classifier; warmstart = start from the previously learned model.";
  let emails = if full then 8000 else 3000 in
  let stream = Drift.generate ~emails ~drift_at:0.0 ~seed:33 () in
  let epochs = 30 in
  (* Proxy for the optimal loss: long training run. *)
  let best =
    Learner.train_lr ~method_:Learner.Sgd ~epochs:300 ~learning_rate:0.5 (Prng.create 34)
      stream.Drift.train_late
  in
  let optimal = Learner.lr_loss stream.Drift.train_late best in
  let warm_model =
    Learner.train_lr ~method_:Learner.Sgd ~epochs:40 ~learning_rate:0.5 (Prng.create 35)
      stream.Drift.train_early
  in
  let trace method_ warm =
    let losses = ref [] in
    let lr = match method_ with Learner.Gd -> 3.0 | Learner.Sgd -> 0.5 in
    let (_ : float array) =
      Learner.train_lr ~method_ ?warm ~epochs ~learning_rate:lr (Prng.create 36)
        stream.Drift.train_late ~on_epoch:(fun _ w ->
          losses := Learner.lr_loss stream.Drift.train_late w :: !losses)
    in
    List.rev !losses
  in
  let runs =
    [
      ("SGD+warm", trace Learner.Sgd (Some warm_model));
      ("SGD cold", trace Learner.Sgd None);
      ("GD+warm", trace Learner.Gd (Some warm_model));
    ]
  in
  let table = Table.create ("epoch" :: List.map fst runs) in
  List.iter
    (fun epoch ->
      Table.add_row table
        (string_of_int (epoch + 1)
        :: List.map
             (fun (_, losses) ->
               let loss = List.nth losses epoch in
               Printf.sprintf "%.1f%%" (100.0 *. (loss -. optimal) /. optimal))
             runs))
    [ 0; 1; 2; 3; 5; 9; 19; 29 ];
  Table.print table;
  (* Epochs to reach within 10% of optimal. *)
  let within10 losses =
    match List.find_index (fun loss -> loss <= optimal *. 1.25) losses with
    | Some idx -> string_of_int (idx + 1)
    | None -> Printf.sprintf ">%d" epochs
  in
  note "Epochs to within 25%% of optimal loss:";
  List.iter (fun (name, losses) -> note "  %-9s %s" name (within10 losses)) runs

(* --- Figure 17: concept drift ----------------------------------------------------- *)

let fig17 ~full =
  section "Figure 17: incremental learning under concept drift";
  note
    "Test loss per epoch.  Rerun trains cold on the 30%% prefix; Incremental\n\
     warmstarts from a model materialized on the 10%% prefix.  The drift sits\n\
     at 20%% of the stream, inside the training window.";
  let emails = if full then 8000 else 3000 in
  List.iter
    (fun (label, drift_at) ->
      let stream = Drift.generate ~emails ~drift_at ~seed:37 () in
      let warm_model =
        Learner.train_lr ~method_:Learner.Sgd ~epochs:25 ~learning_rate:0.5 (Prng.create 38)
          stream.Drift.train_early
      in
      let trace warm =
        let losses = ref [] in
        let (_ : float array) =
          Learner.train_lr ~method_:Learner.Sgd ?warm ~epochs:12 ~learning_rate:0.3
            (Prng.create 39) stream.Drift.train_late ~on_epoch:(fun _ w ->
              losses := Learner.lr_loss stream.Drift.test w :: !losses)
        in
        List.rev !losses
      in
      let incremental = trace (Some warm_model) and rerun = trace None in
      Printf.printf "\n%s\n" label;
      let table = Table.create [ "epoch"; "Rerun (cold)"; "Incremental (warmstart)" ] in
      List.iter
        (fun epoch ->
          Table.add_row table
            [
              string_of_int (epoch + 1);
              Table.cell_f (List.nth rerun epoch);
              Table.cell_f (List.nth incremental epoch);
            ])
        [ 0; 1; 2; 4; 7; 11 ];
      Table.print table)
    [ ("No drift:", 0.0); ("Drift at 20% of the stream:", 0.2) ]

(* --- Incremental grounding speedup (Sections 1 and 3.1) --------------------------- *)

let grounding_bench ~full =
  section "Incremental grounding: DRed vs re-grounding from scratch";
  note
    "Add 50 documents to an already-grounded corpus.  The paper reports up\n\
     to 360x on 1.8M-document corpora; the speedup grows with corpus size\n\
     because the incremental cost tracks the delta, not the corpus.";
  let sizes = if full then [ 500; 1500; 3000; 6000 ] else [ 500; 1500; 3000 ] in
  let table =
    Table.create [ "docs"; "initial ground(s)"; "incremental +50 docs(s)"; "scratch reground(s)"; "speedup" ]
  in
  List.iter
    (fun docs ->
      let config =
        { Systems.news with Corpus.docs; entities = 300; truth_pairs_per_relation = 30 }
      in
      let corpus = Corpus.generate config in
      let program = Pipeline.full_program () in
      let db = Database.create () in
      Corpus.load corpus ~docs:(docs - 50) db;
      let grounding = ref None in
      let initial = Timer.time_s (fun () -> grounding := Some (Grounding.ground db program)) in
      let delta = Corpus.doc_delta corpus ~from_doc:(docs - 50) ~until_doc:docs in
      let incremental =
        Timer.time_s (fun () ->
            ignore (Grounding.extend (Option.get !grounding) (Grounding.data_update delta)))
      in
      let scratch =
        Timer.time_s (fun () ->
            let fresh = Database.create () in
            Corpus.load corpus fresh;
            ignore (Grounding.ground fresh program))
      in
      Table.add_row table
        [
          string_of_int docs;
          Table.cell_f initial;
          Table.cell_f incremental;
          Table.cell_f scratch;
          Table.cell_x (scratch /. incremental);
        ])
    sizes;
  Table.print table

let () =
  register "fig16" "Figure 16: incremental learning" fig16;
  register "fig17" "Figure 17: concept drift" fig17;
  register "incr_grounding" "Incremental grounding speedup" grounding_bench
