(* Crash–recover–compare over the Fig-KBC pipeline: for every fault point
   the pipeline exercises, kill a checkpointed run mid-update, recover
   from the store (last checkpoint + WAL replay), finish the remaining
   snapshots, and compare final marginals against an uninterrupted run
   with the same seed.  The determinism claim makes the expected numbers
   exact — Jaccard 1.0 and zero marginal difference — and the recovery
   time column shows what the checkpoint buys over redoing the run. *)

open Harness
module Corpus = Dd_kbc.Corpus
module Systems = Dd_kbc.Systems
module Quality = Dd_kbc.Quality
module Recovery = Dd_kbc.Recovery
module Engine = Dd_core.Engine
module Timer = Dd_util.Timer
module Table = Dd_util.Table

let bench_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 400;
    inference_chain = 150;
    initial_learning_epochs = 30;
    incremental_learning_epochs = 8;
  }

let scratch_dir () = Filename.concat (Filename.get_temp_dir_name ()) "dd_bench_recovery"

let recovery ~full =
  section "Recovery: crash injection over the KBC snapshot sequence";
  note
    "Each row arms one fault point mid-run (Nth = half its hit count),\n\
     treats the escaping injection as a process death, recovers from the\n\
     checkpoint store and finishes the run.  'replayed' counts updates\n\
     already durable at recovery; agreement compares final marginals to\n\
     the uninterrupted baseline (expected exact: the checkpoint carries\n\
     the engine PRNG, so the recovered run retraces it bit for bit).";
  let config =
    let base = Systems.news in
    if full then { base with Corpus.docs = base.Corpus.docs * 4 } else base
  in
  let corpus = Corpus.generate config in
  let dir = scratch_dir () in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let baseline_timer = Timer.start () in
  let base =
    Recovery.baseline ~options:bench_options ~dir:(Filename.concat dir "baseline") corpus
  in
  let baseline_seconds = Timer.elapsed_s baseline_timer in
  note "Uninterrupted run: %.2fs, %d fault points exercised.\n" baseline_seconds
    (List.length base.Recovery.exercised);
  let table =
    Table.create
      [ "fault point"; "trigger"; "replayed"; "crash+recover(s)"; "jaccard"; "maxdiff" ]
  in
  List.iter
    (fun (point, hits) ->
      let trigger = (hits / 2) + 1 in
      let timer = Timer.start () in
      let outcome =
        Recovery.crash_recover_compare ~options:bench_options
          ~dir:(Filename.concat dir "crash") ~point ~trigger
          ~reference:base.Recovery.marginals corpus
      in
      let seconds = Timer.elapsed_s timer in
      Table.add_row table
        [
          outcome.Recovery.point;
          string_of_int outcome.Recovery.trigger;
          string_of_int outcome.Recovery.replayed_to;
          Table.cell_f seconds;
          Table.cell_f outcome.Recovery.agreement.Quality.high_conf_jaccard;
          Table.cell_f outcome.Recovery.agreement.Quality.max_diff;
        ])
    base.Recovery.exercised;
  Table.print table;
  Dd_util.Fault.reset ()

let () = register "recovery" "Crash recovery: checkpoint + WAL replay" recovery
