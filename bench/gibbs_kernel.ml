(* The compiled-kernel study: sweeps/sec of the legacy pointer-chasing
   Fast_gibbs sampler vs the compiled flat CSR kernel (Dd_inference.Compiled)
   on the Fig-KBC (News) factor graph, at 1/2/4/8 domains.

   The legacy path is the pre-kernel implementation kept alive as
   [Fast_gibbs.create_legacy]: per-variable occurrence records grouped by
   factor, chased through the boxed graph structure.  The compiled path
   samples over contiguous int/float arrays (the DimmWitted-style layout).
   Both draw bit-identical sample sequences per seed at domains=1, which
   this experiment re-checks before timing, so the speedup is layout and
   allocation, not a different chain. *)

open Harness
module Graph = Dd_fgraph.Graph
module Semantics = Dd_fgraph.Semantics
module Gibbs = Dd_inference.Gibbs
module Fast_gibbs = Dd_inference.Fast_gibbs
module Compiled = Dd_inference.Compiled
module Par_gibbs = Dd_parallel.Par_gibbs
module Partition = Dd_parallel.Partition
module Pool = Dd_parallel.Pool
module Prng = Dd_util.Prng
module Stats = Dd_util.Stats

let domain_counts = [ 1; 2; 4; 8 ]

(* A faithful replica of the pre-PR Fast_gibbs sampler, kept here as the
   benchmark's historical baseline: per-variable occurrence *lists*, and a
   fresh [Hashtbl] allocated inside every conditional to group them by
   factor (the allocation this PR's satellite fix removed from the library
   sampler).  Only what the sweep loop needs is reproduced. *)
module Pre_pr = struct
  type occurrence = { factor : int; body : int; negated : bool }

  type t = {
    graph : Graph.t;
    assignment : bool array;
    unsat : int array array;
    sat : int array;
    occurrences : occurrence list array;
    head_of : int list array;
  }

  let create ~init g =
    let assignment = Array.copy init in
    let nvars = Graph.num_vars g in
    let nfactors = Graph.num_factors g in
    let unsat = Array.make nfactors [||] in
    let sat = Array.make nfactors 0 in
    let occurrences = Array.make nvars [] in
    let head_of = Array.make nvars [] in
    Graph.iter_factors
      (fun fid f ->
        (match f.Graph.head with
        | Some h -> head_of.(h) <- fid :: head_of.(h)
        | None -> ());
        let counts =
          Array.mapi
            (fun body_idx body ->
              Array.iter
                (fun l ->
                  occurrences.(l.Graph.var) <-
                    { factor = fid; body = body_idx; negated = l.Graph.negated }
                    :: occurrences.(l.Graph.var))
                body;
              Array.fold_left
                (fun acc l ->
                  if assignment.(l.Graph.var) <> l.Graph.negated then acc else acc + 1)
                0 body)
            f.Graph.bodies
        in
        unsat.(fid) <- counts;
        sat.(fid) <- Array.fold_left (fun acc c -> if c = 0 then acc + 1 else acc) 0 counts)
      g;
    { graph = g; assignment; unsat; sat; occurrences; head_of }

  let factor_energy_with t fid ~v ~x ~occ_in_factor =
    let f = Graph.factor t.graph fid in
    let n = ref t.sat.(fid) in
    List.iter
      (fun occ ->
        let currently_sat = t.unsat.(fid).(occ.body) = 0 in
        let lit_sat_now = t.assignment.(v) <> occ.negated in
        let unsat_others = t.unsat.(fid).(occ.body) - (if lit_sat_now then 0 else 1) in
        let sat_under_x = unsat_others = 0 && x <> occ.negated in
        if currently_sat && not sat_under_x then decr n
        else if (not currently_sat) && sat_under_x then incr n)
      occ_in_factor;
    let sign =
      match f.Graph.head with
      | None -> 1.0
      | Some h ->
        if h = v then (if x then 1.0 else -1.0)
        else if t.assignment.(h) then 1.0
        else -1.0
    in
    Graph.weight_value t.graph f.Graph.weight_id *. sign *. Semantics.g f.Graph.semantics !n

  let conditional_true_prob t v =
    let by_factor = Hashtbl.create 8 in
    List.iter
      (fun occ ->
        let existing = try Hashtbl.find by_factor occ.factor with Not_found -> [] in
        Hashtbl.replace by_factor occ.factor (occ :: existing))
      t.occurrences.(v);
    List.iter
      (fun fid -> if not (Hashtbl.mem by_factor fid) then Hashtbl.replace by_factor fid [])
      t.head_of.(v);
    let delta = ref 0.0 in
    Hashtbl.iter
      (fun fid occ_in_factor ->
        delta :=
          !delta
          +. factor_energy_with t fid ~v ~x:true ~occ_in_factor
          -. factor_energy_with t fid ~v ~x:false ~occ_in_factor)
      by_factor;
    Stats.sigmoid !delta

  let set_value t v value =
    if t.assignment.(v) <> value then begin
      t.assignment.(v) <- value;
      List.iter
        (fun occ ->
          let lit_sat = value <> occ.negated in
          let counts = t.unsat.(occ.factor) in
          let before = counts.(occ.body) in
          let after = if lit_sat then before - 1 else before + 1 in
          counts.(occ.body) <- after;
          if before = 0 && after > 0 then t.sat.(occ.factor) <- t.sat.(occ.factor) - 1
          else if before > 0 && after = 0 then t.sat.(occ.factor) <- t.sat.(occ.factor) + 1)
        t.occurrences.(v)
    end

  let resample_var rng t v = set_value t v (Prng.bernoulli rng (conditional_true_prob t v))

  let sweep rng t =
    for v = 0 to Graph.num_vars t.graph - 1 do
      match Graph.evidence_of t.graph v with
      | Graph.Query -> resample_var rng t v
      | Graph.Evidence _ -> ()
    done
end

let pre_pr_sweep_rate ~sweeps g =
  let init = Gibbs.init_assignment (Prng.create 53) g in
  let state = Pre_pr.create ~init g in
  let rng = Prng.create 54 in
  for _ = 1 to 5 do
    Pre_pr.sweep rng state
  done;
  let secs =
    time_median ~repeats:3 (fun () ->
        for _ = 1 to sweeps do
          Pre_pr.sweep rng state
        done)
  in
  float_of_int sweeps /. secs

(* One legacy color-synchronous sweep: how the parallel sampler drove the
   pointer-chasing state before the kernel existed.  Same-color variables
   share no factor, so concurrent slices touch disjoint cells. *)
let legacy_sweep_rate ~sweeps g d =
  let init = Gibbs.init_assignment (Prng.create 53) g in
  let state = Fast_gibbs.create_legacy ~init (Prng.create 53) g in
  if d = 1 then begin
    let rng = Prng.create 54 in
    for _ = 1 to 5 do
      Fast_gibbs.sweep rng state
    done;
    let secs =
      time_median ~repeats:3 (fun () ->
          for _ = 1 to sweeps do
            Fast_gibbs.sweep rng state
          done)
    in
    float_of_int sweeps /. secs
  end
  else begin
    let partition = Partition.color g in
    let plan = Partition.slices partition ~domains:d in
    let rng = Prng.create 54 in
    let rngs = Array.init d (fun _ -> Prng.split rng) in
    let pool = Pool.create d in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        let sweep () =
          Array.iter
            (fun phase ->
              Pool.run pool (fun dd ->
                  if dd < Array.length phase then
                    Array.iter (Fast_gibbs.resample_var rngs.(dd) state) phase.(dd)))
            plan
        in
        for _ = 1 to 5 do
          sweep ()
        done;
        let secs =
          time_median ~repeats:3 (fun () ->
              for _ = 1 to sweeps do
                sweep ()
              done)
        in
        float_of_int sweeps /. secs)
  end

let compiled_sweep_rate ~sweeps ~kernel g d =
  let sampler = Par_gibbs.create ~kernel ~domains:d (Prng.create 53) g in
  Fun.protect
    ~finally:(fun () -> Par_gibbs.shutdown sampler)
    (fun () ->
      for _ = 1 to 5 do
        Par_gibbs.sweep sampler
      done;
      let secs =
        time_median ~repeats:3 (fun () ->
            for _ = 1 to sweeps do
              Par_gibbs.sweep sampler
            done)
      in
      float_of_int sweeps /. secs)

(* Bit-exactness spot check at domains=1: both samplers from one seed
   must produce identical assignments after identical sweeps. *)
let check_bit_exact g =
  let init = Gibbs.init_assignment (Prng.create 7) g in
  let compiled = Fast_gibbs.create ~init (Prng.create 1) g in
  let legacy = Fast_gibbs.create_legacy ~init:(Array.copy init) (Prng.create 1) g in
  let rng_c = Prng.create 8 and rng_l = Prng.create 8 in
  for _ = 1 to 5 do
    Fast_gibbs.sweep rng_c compiled;
    Fast_gibbs.sweep rng_l legacy
  done;
  Fast_gibbs.assignment compiled = Fast_gibbs.assignment legacy

let run ~full =
  section "Gibbs kernel: compiled CSR arrays vs pointer-chasing sampler";
  let g = fig_kbc_graph ~full in
  let kernel = Compiled.compile g in
  let queries = Compiled.num_query kernel in
  note "graph: %d vars (%d query), %d factors, %d bodies; host: %d recommended domains"
    (Graph.num_vars g) queries (Graph.num_factors g) (Compiled.num_bodies kernel)
    (Pool.recommended ());
  metric "vars" (float_of_int (Graph.num_vars g));
  metric "factors" (float_of_int (Graph.num_factors g));
  metric "recommended_domains" (float_of_int (Pool.recommended ()));
  let exact = check_bit_exact g in
  note "bit-exact with legacy sampler at domains=1: %s" (if exact then "yes" else "NO");
  metric "bit_exact_1d" (if exact then 1.0 else 0.0);
  let sweeps = if full then 300 else 100 in
  let pre_pr = pre_pr_sweep_rate ~sweeps g in
  metric "pre_pr_sweeps_per_sec_1d" pre_pr;
  let table =
    Dd_util.Table.create
      [ "domains"; "pre-PR s/s"; "grouped s/s"; "compiled s/s"; "vs pre-PR"; "vs grouped" ]
  in
  List.iter
    (fun d ->
      let legacy = legacy_sweep_rate ~sweeps g d in
      let compiled = compiled_sweep_rate ~sweeps ~kernel g d in
      metric (Printf.sprintf "legacy_sweeps_per_sec_%dd" d) legacy;
      metric (Printf.sprintf "compiled_sweeps_per_sec_%dd" d) compiled;
      if d = 1 then metric "speedup_1d" (compiled /. pre_pr);
      metric (Printf.sprintf "speedup_grouped_%dd" d) (compiled /. legacy);
      Dd_util.Table.add_row table
        [
          string_of_int d;
          (if d = 1 then Printf.sprintf "%.1f" pre_pr else "-");
          Printf.sprintf "%.1f" legacy;
          Printf.sprintf "%.1f" compiled;
          (if d = 1 then Dd_util.Table.cell_x (compiled /. pre_pr) else "-");
          Dd_util.Table.cell_x (compiled /. legacy);
        ])
    domain_counts;
  Dd_util.Table.print table;
  note
    "(pre-PR = the historical sampler with a Hashtbl allocated per\n\
     conditional; grouped = today's Fast_gibbs.create_legacy, occurrences\n\
     grouped by factor at creation; compiled = the flat CSR kernel.  The\n\
     domains=1 rows are the pure layout win — same chain, same draws;\n\
     multi-domain rows add color-synchronous scheduling on both sides.\n\
     Sweeps timed: %d.)"
    sweeps

let () =
  register "gibbs-kernel" "Dd_inference: compiled flat kernel vs legacy sampler" run
