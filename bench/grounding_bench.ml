(* Grounding-side perf trajectory: compiled join plans (Plan) vs the
   pre-plan matcher-interpreted evaluator, on a transitive-closure workload
   (recursive; the legacy evaluator pays a Relation.copy of every stratum
   predicate per fixpoint round) and a KBC-shaped workload (co-occurrence
   join + projection + negation, the shape of the paper's candidate and
   feature rules).

   Measured paths:
     - full evaluation: legacy replica [Legacy.run] vs [Engine.run ~plans]
     - small-delta incremental step: legacy DRed replica vs [Dred.apply ~plans]

   The legacy modules below are faithful replicas of the pre-plan
   lib/datalog/engine.ml and dred.ml (same algorithm, same Matcher calls,
   same per-round / per-batch Relation.copy snapshots), kept here so the
   speedup baseline stays measurable after the library moved on — the same
   pattern as [Pre_pr] in gibbs_kernel.ml.  Every timed comparison is also
   an equivalence check: both paths must produce identical relation
   contents (the hard count-exactness properties live in test/test_plan.ml). *)

module Value = Dd_relational.Value
module Tuple = Dd_relational.Tuple
module Schema = Dd_relational.Schema
module Relation = Dd_relational.Relation
module Database = Dd_relational.Database
module Ast = Dd_datalog.Ast
module Stratify = Dd_datalog.Stratify
module Matcher = Dd_datalog.Matcher
module Engine = Dd_datalog.Engine
module Dred = Dd_datalog.Dred
module Plan = Dd_datalog.Plan
module Prng = Dd_util.Prng

(* --- legacy replica: pre-plan semi-naive engine ----------------------------- *)

module Legacy_engine = struct
  let lookup_in = Engine.lookup_in

  let ensure_table = Engine.ensure_table

  let eval_stratum db (stratum : Stratify.stratum) =
    let in_stratum p = List.mem p stratum.Stratify.preds in
    let old_state : (string, Relation.t) Hashtbl.t = Hashtbl.create 8 in
    let lookup_new = lookup_in db in
    let lookup_old pred =
      if in_stratum pred then
        match Hashtbl.find_opt old_state pred with
        | Some r -> r
        | None -> Matcher.empty_relation
      else lookup_in db pred
    in
    let initial : (string * (Tuple.t * int) list) list =
      List.map
        (fun rule -> (Ast.head_pred rule, Matcher.eval_rule ~lookup:lookup_old rule))
        stratum.Stratify.rules
    in
    let delta : (string, (Tuple.t * int) list) Hashtbl.t = Hashtbl.create 8 in
    let merge_delta pred entries =
      let existing = try Hashtbl.find delta pred with Not_found -> [] in
      Hashtbl.replace delta pred (entries @ existing)
    in
    let apply_round contributions =
      Hashtbl.reset delta;
      List.iter
        (fun (pred, entries) ->
          let fresh =
            List.filter_map
              (fun (tuple, count) ->
                if count <= 0 then None
                else begin
                  let r = ensure_table db pred tuple in
                  let existed = Relation.mem r tuple in
                  Relation.insert ~count r tuple;
                  if existed then None else Some (tuple, 1)
                end)
              entries
          in
          if fresh <> [] then merge_delta pred fresh)
        contributions;
      Hashtbl.length delta > 0
    in
    (* The per-round snapshot of every stratum predicate — the cost the
       compiled engine eliminated. *)
    let snapshot_old () =
      Hashtbl.reset old_state;
      List.iter
        (fun pred ->
          match Database.find_opt db pred with
          | Some r -> Hashtbl.replace old_state pred (Relation.copy r)
          | None -> ())
        stratum.Stratify.preds
    in
    let continue_ = apply_round initial in
    if continue_ && stratum.Stratify.recursive then begin
      let rec loop () =
        let last_delta = Hashtbl.copy delta in
        snapshot_old ();
        Hashtbl.iter
          (fun pred entries ->
            match Hashtbl.find_opt old_state pred with
            | None -> ()
            | Some r -> List.iter (fun (tuple, _) -> Relation.delete_all r tuple) entries)
          last_delta;
        let contributions =
          List.concat_map
            (fun rule ->
              let head = Ast.head_pred rule in
              List.concat
                (List.mapi
                   (fun pos literal ->
                     let pred = (Ast.atom_of_literal literal).Ast.pred in
                     if Ast.is_positive literal && in_stratum pred then begin
                       match Hashtbl.find_opt last_delta pred with
                       | None | Some [] -> []
                       | Some d ->
                         [ ( head,
                             Matcher.eval_rule_staged ~before:lookup_new
                               ~after:lookup_old ~delta_pos:pos ~delta:d rule ) ]
                     end
                     else [])
                   rule.Ast.body))
            stratum.Stratify.rules
        in
        if apply_round contributions then loop ()
      in
      loop ()
    end

  let run db program =
    match Stratify.stratify program with
    | Error e -> invalid_arg e
    | Ok strata ->
      List.iter
        (fun pred ->
          match Database.find_opt db pred with
          | Some r -> Relation.clear r
          | None -> ())
        (Ast.idb_preds program);
      List.iter (eval_stratum db) strata
end

(* --- legacy replica: pre-plan DRed ------------------------------------------ *)

module Legacy_dred = struct
  module Delta = Dred.Delta

  type batch = {
    pred : string;
    entries : (Tuple.t * int) list;
    pre : Relation.t option;
    level : int;
  }

  let stratum_level strata pred =
    let rec find i = function
      | [] -> -1
      | s :: rest -> if List.mem pred s.Stratify.preds then i else find (i + 1) rest
    in
    find 0 strata

  let apply_entries rel entries =
    List.filter_map
      (fun (tuple, count) ->
        if count = 0 then None
        else if count > 0 then begin
          let existed = Relation.mem rel tuple in
          Relation.insert ~count rel tuple;
          if existed then None else Some (tuple, 1)
        end
        else begin
          let removed = Relation.remove ~count:(-count) rel tuple in
          if removed > 0 && not (Relation.mem rel tuple) then Some (tuple, -1) else None
        end)
      entries

  let diff_relations old_rel new_rel =
    let entries = ref [] and flips = ref [] in
    Relation.iter
      (fun tuple new_count ->
        let old_count = Relation.count old_rel tuple in
        if new_count <> old_count then entries := (tuple, new_count - old_count) :: !entries;
        if old_count = 0 then flips := (tuple, 1) :: !flips)
      new_rel;
    Relation.iter
      (fun tuple old_count ->
        if not (Relation.mem new_rel tuple) then begin
          entries := (tuple, -old_count) :: !entries;
          flips := (tuple, -1) :: !flips
        end)
      old_rel;
    (!entries, !flips)

  let apply db program changes =
    let strata =
      match Stratify.stratify program with Ok s -> s | Error e -> invalid_arg e
    in
    let result = Delta.create () in
    let strata_arr = Array.of_list strata in
    let level_of = stratum_level strata in
    let rules_reading : (string, (Ast.rule * int * bool) list) Hashtbl.t =
      Hashtbl.create 32
    in
    let recursive_reading : (string, int) Hashtbl.t = Hashtbl.create 8 in
    Array.iteri
      (fun si s ->
        List.iter
          (fun rule ->
            List.iteri
              (fun pos literal ->
                let p = (Ast.atom_of_literal literal).Ast.pred in
                if s.Stratify.recursive then
                  Hashtbl.replace recursive_reading (p ^ "@" ^ string_of_int si) si
                else begin
                  let existing = try Hashtbl.find rules_reading p with Not_found -> [] in
                  Hashtbl.replace rules_reading p
                    ((rule, pos, Ast.is_positive literal) :: existing)
                end)
              rule.Ast.body)
          s.Stratify.rules)
      strata_arr;
    let dirty_recursive = Array.make (Array.length strata_arr) false in
    let mark_dirty_recursive ?(except = -1) p =
      Array.iteri
        (fun si _ ->
          if si <> except && Hashtbl.mem recursive_reading (p ^ "@" ^ string_of_int si) then
            dirty_recursive.(si) <- true)
        strata_arr
    in
    let nbuckets = Array.length strata_arr + 1 in
    let queues : batch Queue.t array = Array.init nbuckets (fun _ -> Queue.create ()) in
    let push b = Queue.add b queues.(b.level + 1) in
    List.iter
      (fun pred ->
        let rel =
          match Database.find_opt db pred with
          | Some r -> r
          | None -> invalid_arg ("unknown base table " ^ pred)
        in
        let desired = Tuple.Hashtbl.create 16 in
        List.iter
          (fun (tuple, sign) -> Tuple.Hashtbl.replace desired tuple (sign > 0))
          (Delta.flips changes pred);
        let entries =
          Tuple.Hashtbl.fold
            (fun tuple want acc ->
              let current = Relation.count rel tuple in
              if want && current = 0 then (tuple, 1) :: acc
              else if (not want) && current > 0 then (tuple, -current) :: acc
              else acc)
            desired []
        in
        if entries <> [] then push { pred; entries; pre = None; level = -1 })
      (Delta.preds changes);
    let current_lookup = Engine.lookup_in db in
    let consume b =
      let rel =
        match Database.find_opt db b.pred with
        | Some r -> r
        | None ->
          let sample = match b.entries with (t, _) :: _ -> t | [] -> [||] in
          Engine.ensure_table db b.pred sample
      in
      let old_rel, flips =
        match b.pre with
        | Some pre ->
          let flips =
            List.filter_map
              (fun (tuple, count) ->
                let before = Relation.count pre tuple in
                let after = before + count in
                if before = 0 && after > 0 then Some (tuple, 1)
                else if before > 0 && after <= 0 then Some (tuple, -1)
                else None)
              b.entries
          in
          (pre, flips)
        | None ->
          (* The per-batch snapshot of the changed relation — the cost the
             plan-backed DRed replaced with a Patched view. *)
          let pre = Relation.copy rel in
          let flips = apply_entries rel b.entries in
          (pre, flips)
      in
      if flips <> [] then begin
        List.iter
          (fun (tuple, sign) ->
            if sign > 0 then Delta.insert result b.pred tuple
            else Delta.delete result b.pred tuple)
          flips;
        let except = match b.pre with Some _ -> b.level | None -> -1 in
        mark_dirty_recursive ~except b.pred;
        let old_lookup pred = if pred = b.pred then old_rel else current_lookup pred in
        let contributions : (string, (Tuple.t * int) list ref) Hashtbl.t =
          Hashtbl.create 8
        in
        List.iter
          (fun (rule, pos, positive) ->
            let delta =
              if positive then flips else List.map (fun (t, s) -> (t, -s)) flips
            in
            let derived =
              Matcher.eval_rule_staged ~before:current_lookup ~after:old_lookup
                ~delta_pos:pos ~delta rule
            in
            if derived <> [] then begin
              let head = Ast.head_pred rule in
              let bucket =
                match Hashtbl.find_opt contributions head with
                | Some r -> r
                | None ->
                  let r = ref [] in
                  Hashtbl.replace contributions head r;
                  r
              in
              bucket := derived @ !bucket
            end)
          (try Hashtbl.find rules_reading b.pred with Not_found -> []);
        Hashtbl.iter
          (fun head entries ->
            push { pred = head; entries = !entries; pre = None; level = level_of head })
          contributions
      end
    in
    for bucket = 0 to nbuckets - 1 do
      let si = bucket - 1 in
      let quiescent = ref false in
      while not !quiescent do
        while not (Queue.is_empty queues.(bucket)) do
          consume (Queue.pop queues.(bucket))
        done;
        if si >= 0 && dirty_recursive.(si) then begin
          dirty_recursive.(si) <- false;
          let s = strata_arr.(si) in
          let pre_state =
            List.filter_map
              (fun pred ->
                match Database.find_opt db pred with
                | Some r -> Some (pred, Relation.copy r)
                | None -> None)
              s.Stratify.preds
          in
          List.iter
            (fun pred ->
              match Database.find_opt db pred with
              | Some r -> Relation.clear r
              | None -> ())
            s.Stratify.preds;
          Legacy_engine.eval_stratum db s;
          List.iter
            (fun (pred, pre) ->
              let now =
                match Database.find_opt db pred with
                | Some r -> r
                | None -> Matcher.empty_relation
              in
              let entries, _flips = diff_relations pre now in
              if entries <> [] then push { pred; entries; pre = Some pre; level = si })
            pre_state
        end
        else quiescent := true
      done
    done;
    result
end

(* --- workloads --------------------------------------------------------------- *)

let i = Value.int
let v name = Ast.Var name
let atom = Ast.atom

(* Transitive closure over a random chain + extra edges: the recursive
   stratum iterates ~chain-length rounds, so the legacy per-round snapshot
   of the growing [tc] relation dominates its runtime. *)
let tc_program =
  [
    Ast.rule (atom "tc" [ v "x"; v "y" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
    Ast.rule
      (atom "tc" [ v "x"; v "z" ])
      [ Ast.Pos (atom "edge" [ v "x"; v "y" ]); Ast.Pos (atom "tc" [ v "y"; v "z" ]) ];
  ]

let edge_schema = Schema.make [ ("src", Value.TInt); ("dst", Value.TInt) ]

let tc_edges rng ~nodes ~extra =
  let edges = ref [] in
  for k = 0 to nodes - 2 do
    edges := (k, k + 1) :: !edges
  done;
  for _ = 1 to extra do
    let a = Prng.int_below rng nodes and b = Prng.int_below rng nodes in
    edges := (a, b) :: !edges
  done;
  List.sort_uniq compare !edges

let tc_db edges =
  let db = Database.create () in
  let r = Database.create_table db "edge" edge_schema in
  List.iter (fun (a, b) -> Relation.insert r [| i a; i b |]) edges;
  db

(* KBC-shaped workload: entity mentions per document, a co-occurrence
   candidate join with an inequality guard, a projection, a negation
   against a small blacklist, and a focused variant of the candidate join
   restricted to a handful of "special" documents — the shape of the
   paper's candidate and feature extraction rules.  The focused rule is
   written with the selective literal LAST, so the legacy source-order
   evaluator computes the full per-document cross product before
   filtering, while the plan compiler's ordering heuristic starts from
   [special] and probes [mention] by document. *)
let kbc_program =
  [
    Ast.rule
      ~guards:[ Ast.Lt (v "m1", v "m2") ]
      (atom "colocated" [ v "e1"; v "e2"; v "d" ])
      [
        Ast.Pos (atom "mention" [ v "d"; v "m1"; v "e1" ]);
        Ast.Pos (atom "mention" [ v "d"; v "m2"; v "e2" ]);
      ];
    Ast.rule
      ~guards:[ Ast.Neq (v "m1", v "m2") ]
      (atom "focus_pair" [ v "e1"; v "e2"; v "d" ])
      [
        Ast.Pos (atom "mention" [ v "d"; v "m1"; v "e1" ]);
        Ast.Pos (atom "mention" [ v "d"; v "m2"; v "e2" ]);
        Ast.Pos (atom "special" [ v "d" ]);
      ];
    Ast.rule
      ~guards:[ Ast.Neq (v "m1", v "m2") ]
      (atom "anchored" [ v "e1"; v "e2"; v "d" ])
      [
        Ast.Pos (atom "mention" [ v "d"; v "m1"; v "e1" ]);
        Ast.Pos (atom "mention" [ v "d"; v "m2"; v "e2" ]);
        Ast.Pos (atom "anchor" [ v "e1" ]);
      ];
    Ast.rule
      ~guards:[ Ast.Neq (v "m1", v "m2") ]
      (atom "supervised" [ v "e1"; v "e2" ])
      [
        Ast.Pos (atom "mention" [ v "d"; v "m1"; v "e1" ]);
        Ast.Pos (atom "mention" [ v "d"; v "m2"; v "e2" ]);
        Ast.Pos (atom "truth" [ v "e1"; v "e2" ]);
      ];
    Ast.rule
      ~guards:[ Ast.Neq (v "m1", v "m2") ]
      (atom "anchored_right" [ v "e1"; v "e2"; v "d" ])
      [
        Ast.Pos (atom "mention" [ v "d"; v "m1"; v "e1" ]);
        Ast.Pos (atom "mention" [ v "d"; v "m2"; v "e2" ]);
        Ast.Pos (atom "anchor" [ v "e2" ]);
      ];
    Ast.rule
      ~guards:[ Ast.Neq (v "m1", v "m2") ]
      (atom "supervised_inv" [ v "e1"; v "e2" ])
      [
        Ast.Pos (atom "mention" [ v "d"; v "m1"; v "e1" ]);
        Ast.Pos (atom "mention" [ v "d"; v "m2"; v "e2" ]);
        Ast.Pos (atom "truth" [ v "e2"; v "e1" ]);
      ];
    Ast.rule (atom "linked" [ v "e1"; v "e2" ]) [ Ast.Pos (atom "colocated" [ v "e1"; v "e2"; v "d" ]) ];
    Ast.rule
      (atom "strong" [ v "e1"; v "e2" ])
      [ Ast.Pos (atom "linked" [ v "e1"; v "e2" ]); Ast.Neg (atom "weak" [ v "e1"; v "e2" ]) ];
  ]

let mention_schema =
  Schema.make [ ("doc", Value.TInt); ("mention", Value.TInt); ("entity", Value.TInt) ]

let weak_schema = Schema.make [ ("e1", Value.TInt); ("e2", Value.TInt) ]

let special_schema = Schema.make [ ("doc", Value.TInt) ]

let anchor_schema = Schema.make [ ("entity", Value.TInt) ]

let truth_schema = Schema.make [ ("e1", Value.TInt); ("e2", Value.TInt) ]

type kbc_contents = {
  mentions : (int * int * int) list;
  weak : (int * int) list;
  special : int list;
  anchors : int list;
  truths : (int * int) list;
}

let kbc_contents rng ~docs ~mentions_per_doc ~entities ~weak_pairs ~special_docs =
  let mentions = ref [] in
  let mid = ref 0 in
  for d = 0 to docs - 1 do
    for _ = 1 to mentions_per_doc do
      incr mid;
      mentions := (d, !mid, Prng.int_below rng entities) :: !mentions
    done
  done;
  let weak =
    List.init weak_pairs (fun _ -> (Prng.int_below rng entities, Prng.int_below rng entities))
  in
  let special = List.init special_docs (fun _ -> Prng.int_below rng docs) in
  let anchors = List.init 6 (fun _ -> Prng.int_below rng entities) in
  let truths =
    List.init 20 (fun _ -> (Prng.int_below rng entities, Prng.int_below rng entities))
  in
  {
    mentions = List.rev !mentions;
    weak = List.sort_uniq compare weak;
    special = List.sort_uniq compare special;
    anchors = List.sort_uniq compare anchors;
    truths = List.sort_uniq compare truths;
  }

let kbc_db c =
  let db = Database.create () in
  let m = Database.create_table db "mention" mention_schema in
  let w = Database.create_table db "weak" weak_schema in
  let s = Database.create_table db "special" special_schema in
  let a = Database.create_table db "anchor" anchor_schema in
  let t = Database.create_table db "truth" truth_schema in
  List.iter (fun (d, mi, e) -> Relation.insert m [| i d; i mi; i e |]) c.mentions;
  List.iter (fun (x, y) -> Relation.insert w [| i x; i y |]) c.weak;
  List.iter (fun d -> Relation.insert s [| i d |]) c.special;
  List.iter (fun e -> Relation.insert a [| i e |]) c.anchors;
  List.iter (fun (x, y) -> Relation.insert t [| i x; i y |]) c.truths;
  db

let check_equiv program db_a db_b =
  List.for_all
    (fun pred ->
      let empty = Matcher.empty_relation in
      let a = Option.value (Database.find_opt db_a pred) ~default:empty in
      let b = Option.value (Database.find_opt db_b pred) ~default:empty in
      Relation.equal_contents a b)
    (Ast.idb_preds program)

(* Median of inner-region timings: each call of [f] does its own (untimed)
   setup and returns the elapsed seconds of the region under measurement. *)
let median_inner ~repeats f =
  let times = List.init repeats (fun _ -> f ()) in
  List.nth (List.sort compare times) (repeats / 2)

let geomean xs =
  exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int (List.length xs))

(* --- experiment --------------------------------------------------------------- *)

let run ~full =
  Harness.section "bench grounding: compiled join plans vs legacy matcher evaluation";
  let repeats = 3 in
  let plans = Plan.Cache.create () in
  (* One (workload, program, make_db, delta) bundle per shape. *)
  let tc_scale = if full then (420, 40) else (320, 25) in
  let kbc_scale = if full then (4000, 8, 300, 150) else (2000, 8, 200, 100) in
  let nodes, extra = tc_scale in
  let docs, mpd, entities, weak_pairs = kbc_scale in
  let rng = Prng.create 7 in
  let tc_base = tc_edges rng ~nodes ~extra in
  let kbc_base =
    kbc_contents rng ~docs ~mentions_per_doc:mpd ~entities ~weak_pairs ~special_docs:5
  in
  let workloads =
    [
      ( "tc",
        tc_program,
        (fun () -> tc_db tc_base),
        (fun delta ->
          (* Small incremental step: one new edge into the chain's middle,
             one deleted chain edge (forces rederivation through the cycle
             structure). *)
          Dred.Delta.insert delta "edge" [| i (nodes / 2); i 0 |];
          Dred.Delta.delete delta "edge" [| i (nodes / 4); i ((nodes / 4) + 1) |]) );
      ( "kbc",
        kbc_program,
        (fun () -> kbc_db kbc_base),
        (fun delta ->
          (* A handful of new mentions in one doc plus one retraction: the
             shape of a DeepDive corpus increment. *)
          let d = docs / 2 in
          Dred.Delta.insert delta "mention" [| i d; i 900001; i 1 |];
          Dred.Delta.insert delta "mention" [| i d; i 900002; i 2 |];
          Dred.Delta.insert delta "mention" [| i (docs - 1); i 900003; i 3 |];
          let dd, dm, de = List.hd kbc_base.mentions in
          Dred.Delta.delete delta "mention" [| i dd; i dm; i de |]) );
    ]
  in
  let full_speedups = ref [] and incr_speedups = ref [] in
  let all_equiv = ref true in
  List.iter
    (fun (wname, program, make_db, make_delta) ->
      (* Full evaluation. *)
      let legacy_full =
        Harness.time_median ~repeats (fun () ->
            let db = make_db () in
            Legacy_engine.run db program)
      in
      let planned_full =
        Harness.time_median ~repeats (fun () ->
            let db = make_db () in
            match Engine.run ~plans db program with
            | Ok () -> ()
            | Error e -> invalid_arg e)
      in
      let db_l = make_db () and db_p = make_db () in
      Legacy_engine.run db_l program;
      (match Engine.run ~plans db_p program with Ok () -> () | Error e -> invalid_arg e);
      let equiv_full = check_equiv program db_l db_p in
      all_equiv := !all_equiv && equiv_full;
      let speedup_full = legacy_full /. planned_full in
      full_speedups := speedup_full :: !full_speedups;
      (* Incremental step on materialized databases (materialization is
         outside the timed region; each repeat gets a fresh db because DRed
         mutates it). *)
      let legacy_incr =
        median_inner ~repeats (fun () ->
            let db = make_db () in
            Legacy_engine.run db program;
            let delta = Dred.Delta.create () in
            make_delta delta;
            let t = Dd_util.Timer.start () in
            ignore (Legacy_dred.apply db program delta);
            Dd_util.Timer.elapsed_s t)
      in
      let planned_incr =
        median_inner ~repeats (fun () ->
            let db = make_db () in
            (match Engine.run ~plans db program with
            | Ok () -> ()
            | Error e -> invalid_arg e);
            let delta = Dred.Delta.create () in
            make_delta delta;
            let t = Dd_util.Timer.start () in
            (match Dred.apply ~plans db program delta with
            | Ok _ -> ()
            | Error e -> invalid_arg e);
            Dd_util.Timer.elapsed_s t)
      in
      let db_li = make_db () and db_pi = make_db () in
      Legacy_engine.run db_li program;
      (match Engine.run ~plans db_pi program with Ok () -> () | Error e -> invalid_arg e);
      let delta_l = Dred.Delta.create () and delta_p = Dred.Delta.create () in
      make_delta delta_l;
      make_delta delta_p;
      ignore (Legacy_dred.apply db_li program delta_l);
      (match Dred.apply ~plans db_pi program delta_p with
      | Ok _ -> ()
      | Error e -> invalid_arg e);
      let equiv_incr = check_equiv program db_li db_pi in
      all_equiv := !all_equiv && equiv_incr;
      let speedup_incr = legacy_incr /. planned_incr in
      incr_speedups := speedup_incr :: !incr_speedups;
      Harness.note "%-4s full-eval   legacy %8.4fs  planned %8.4fs  speedup %5.2fx  equiv %b"
        wname legacy_full planned_full speedup_full equiv_full;
      Harness.note "%-4s incremental legacy %8.4fs  planned %8.4fs  speedup %5.2fx  equiv %b"
        wname legacy_incr planned_incr speedup_incr equiv_incr;
      Harness.metric (Printf.sprintf "legacy_full_s_%s" wname) legacy_full;
      Harness.metric (Printf.sprintf "planned_full_s_%s" wname) planned_full;
      Harness.metric (Printf.sprintf "speedup_full_%s" wname) speedup_full;
      Harness.metric (Printf.sprintf "legacy_incremental_s_%s" wname) legacy_incr;
      Harness.metric (Printf.sprintf "planned_incremental_s_%s" wname) planned_incr;
      Harness.metric (Printf.sprintf "speedup_incremental_%s" wname) speedup_incr;
      Harness.metric (Printf.sprintf "equiv_full_%s" wname) (if equiv_full then 1.0 else 0.0);
      Harness.metric
        (Printf.sprintf "equiv_incremental_%s" wname)
        (if equiv_incr then 1.0 else 0.0))
    workloads;
  let speedup_full = geomean !full_speedups in
  let speedup_incremental = geomean !incr_speedups in
  Harness.note "";
  Harness.note "geomean speedup: full-eval %.2fx (target >=3x), incremental %.2fx (target >=5x)"
    speedup_full speedup_incremental;
  Harness.note "plan cache: %d plans, %d compilations across all runs"
    (Plan.Cache.size plans) (Plan.Cache.compiles plans);
  Harness.metric "speedup_full" speedup_full;
  Harness.metric "speedup_incremental" speedup_incremental;
  Harness.metric "equiv_all" (if !all_equiv then 1.0 else 0.0);
  Harness.metric "plan_cache_size" (float_of_int (Plan.Cache.size plans));
  Harness.metric "plan_cache_compiles" (float_of_int (Plan.Cache.compiles plans))

let () =
  Harness.register "grounding" "Compiled join plans vs legacy grounding (full + incremental)"
    run
