(* Grounding-side perf trajectory: the compiled-plan evaluator over the two
   relation storage backends — the hash-table row engine (the equivalence
   reference) vs the dictionary-encoded column store — on a
   transitive-closure workload (recursive; per-round delta joins probe the
   growing [tc] relation) and a KBC-shaped workload (co-occurrence join +
   projection + negation, the shape of the paper's candidate and feature
   rules).

   Measured paths:
     - full evaluation: [Engine.run ~plans] on a row db vs a columnar db
     - small-delta incremental step: [Dred.apply ~plans] on both backends

   The pre-plan matcher-interpreted replicas that used to live here were
   removed once the compiled-plan engine became the only evaluator; the
   row backend is now the baseline.  Every timed comparison is also an
   equivalence check: both backends must produce identical relation
   contents (the hard count-exactness and bit-identical-grounding
   properties live in test/test_plan.ml). *)

module Value = Dd_relational.Value
module Schema = Dd_relational.Schema
module Relation = Dd_relational.Relation
module Database = Dd_relational.Database
module Ast = Dd_datalog.Ast
module Matcher = Dd_datalog.Matcher
module Engine = Dd_datalog.Engine
module Dred = Dd_datalog.Dred
module Plan = Dd_datalog.Plan
module Prng = Dd_util.Prng

(* --- workloads --------------------------------------------------------------- *)

let i = Value.int
let v name = Ast.Var name
let atom = Ast.atom

(* Transitive closure over a random chain + extra edges: the recursive
   stratum iterates ~chain-length rounds of delta joins against the growing
   [tc] relation. *)
let tc_program =
  [
    Ast.rule (atom "tc" [ v "x"; v "y" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
    Ast.rule
      (atom "tc" [ v "x"; v "z" ])
      [ Ast.Pos (atom "edge" [ v "x"; v "y" ]); Ast.Pos (atom "tc" [ v "y"; v "z" ]) ];
  ]

let edge_schema = Schema.make [ ("src", Value.TInt); ("dst", Value.TInt) ]

let tc_edges rng ~nodes ~extra =
  let edges = ref [] in
  for k = 0 to nodes - 2 do
    edges := (k, k + 1) :: !edges
  done;
  for _ = 1 to extra do
    let a = Prng.int_below rng nodes and b = Prng.int_below rng nodes in
    edges := (a, b) :: !edges
  done;
  List.sort_uniq compare !edges

let tc_db backend edges =
  let db = Database.create ~backend () in
  let r = Database.create_table db "edge" edge_schema in
  List.iter (fun (a, b) -> Relation.insert r [| i a; i b |]) edges;
  db

(* KBC-shaped workload: entity mentions per document, a co-occurrence
   candidate join with an inequality guard, a projection, a negation
   against a small blacklist, and several selective variants (anchored and
   supervised pairs) — the shape of the paper's candidate and feature
   extraction rules. *)
let kbc_program =
  [
    Ast.rule
      ~guards:[ Ast.Lt (v "m1", v "m2") ]
      (atom "colocated" [ v "e1"; v "e2"; v "d" ])
      [
        Ast.Pos (atom "mention" [ v "d"; v "m1"; v "e1" ]);
        Ast.Pos (atom "mention" [ v "d"; v "m2"; v "e2" ]);
      ];
    Ast.rule
      ~guards:[ Ast.Neq (v "m1", v "m2") ]
      (atom "focus_pair" [ v "e1"; v "e2"; v "d" ])
      [
        Ast.Pos (atom "mention" [ v "d"; v "m1"; v "e1" ]);
        Ast.Pos (atom "mention" [ v "d"; v "m2"; v "e2" ]);
        Ast.Pos (atom "special" [ v "d" ]);
      ];
    Ast.rule
      ~guards:[ Ast.Neq (v "m1", v "m2") ]
      (atom "anchored" [ v "e1"; v "e2"; v "d" ])
      [
        Ast.Pos (atom "mention" [ v "d"; v "m1"; v "e1" ]);
        Ast.Pos (atom "mention" [ v "d"; v "m2"; v "e2" ]);
        Ast.Pos (atom "anchor" [ v "e1" ]);
      ];
    Ast.rule
      ~guards:[ Ast.Neq (v "m1", v "m2") ]
      (atom "supervised" [ v "e1"; v "e2" ])
      [
        Ast.Pos (atom "mention" [ v "d"; v "m1"; v "e1" ]);
        Ast.Pos (atom "mention" [ v "d"; v "m2"; v "e2" ]);
        Ast.Pos (atom "truth" [ v "e1"; v "e2" ]);
      ];
    Ast.rule
      ~guards:[ Ast.Neq (v "m1", v "m2") ]
      (atom "anchored_right" [ v "e1"; v "e2"; v "d" ])
      [
        Ast.Pos (atom "mention" [ v "d"; v "m1"; v "e1" ]);
        Ast.Pos (atom "mention" [ v "d"; v "m2"; v "e2" ]);
        Ast.Pos (atom "anchor" [ v "e2" ]);
      ];
    Ast.rule
      ~guards:[ Ast.Neq (v "m1", v "m2") ]
      (atom "supervised_inv" [ v "e1"; v "e2" ])
      [
        Ast.Pos (atom "mention" [ v "d"; v "m1"; v "e1" ]);
        Ast.Pos (atom "mention" [ v "d"; v "m2"; v "e2" ]);
        Ast.Pos (atom "truth" [ v "e2"; v "e1" ]);
      ];
    Ast.rule (atom "linked" [ v "e1"; v "e2" ]) [ Ast.Pos (atom "colocated" [ v "e1"; v "e2"; v "d" ]) ];
    Ast.rule
      (atom "strong" [ v "e1"; v "e2" ])
      [ Ast.Pos (atom "linked" [ v "e1"; v "e2" ]); Ast.Neg (atom "weak" [ v "e1"; v "e2" ]) ];
  ]

let mention_schema =
  Schema.make [ ("doc", Value.TInt); ("mention", Value.TInt); ("entity", Value.TInt) ]

let weak_schema = Schema.make [ ("e1", Value.TInt); ("e2", Value.TInt) ]

let special_schema = Schema.make [ ("doc", Value.TInt) ]

let anchor_schema = Schema.make [ ("entity", Value.TInt) ]

let truth_schema = Schema.make [ ("e1", Value.TInt); ("e2", Value.TInt) ]

type kbc_contents = {
  mentions : (int * int * int) list;
  weak : (int * int) list;
  special : int list;
  anchors : int list;
  truths : (int * int) list;
}

let kbc_contents rng ~docs ~mentions_per_doc ~entities ~weak_pairs ~special_docs =
  let mentions = ref [] in
  let mid = ref 0 in
  for d = 0 to docs - 1 do
    for _ = 1 to mentions_per_doc do
      incr mid;
      mentions := (d, !mid, Prng.int_below rng entities) :: !mentions
    done
  done;
  let weak =
    List.init weak_pairs (fun _ -> (Prng.int_below rng entities, Prng.int_below rng entities))
  in
  let special = List.init special_docs (fun _ -> Prng.int_below rng docs) in
  let anchors = List.init 6 (fun _ -> Prng.int_below rng entities) in
  let truths =
    List.init 20 (fun _ -> (Prng.int_below rng entities, Prng.int_below rng entities))
  in
  {
    mentions = List.rev !mentions;
    weak = List.sort_uniq compare weak;
    special = List.sort_uniq compare special;
    anchors = List.sort_uniq compare anchors;
    truths = List.sort_uniq compare truths;
  }

let kbc_db backend c =
  let db = Database.create ~backend () in
  let m = Database.create_table db "mention" mention_schema in
  let w = Database.create_table db "weak" weak_schema in
  let s = Database.create_table db "special" special_schema in
  let a = Database.create_table db "anchor" anchor_schema in
  let t = Database.create_table db "truth" truth_schema in
  List.iter (fun (d, mi, e) -> Relation.insert m [| i d; i mi; i e |]) c.mentions;
  List.iter (fun (x, y) -> Relation.insert w [| i x; i y |]) c.weak;
  List.iter (fun d -> Relation.insert s [| i d |]) c.special;
  List.iter (fun e -> Relation.insert a [| i e |]) c.anchors;
  List.iter (fun (x, y) -> Relation.insert t [| i x; i y |]) c.truths;
  db

let check_equiv program db_a db_b =
  List.for_all
    (fun pred ->
      let empty = Matcher.empty_relation in
      let a = Option.value (Database.find_opt db_a pred) ~default:empty in
      let b = Option.value (Database.find_opt db_b pred) ~default:empty in
      Relation.equal_contents a b)
    (Ast.idb_preds program)

(* Median of inner-region timings: each call of [f] does its own (untimed)
   setup and returns the elapsed seconds of the region under measurement. *)
let median_inner ~repeats f =
  let times = List.init repeats (fun _ -> f ()) in
  List.nth (List.sort compare times) (repeats / 2)

let geomean xs =
  exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int (List.length xs))

(* --- experiment --------------------------------------------------------------- *)

let run ~full =
  Harness.section "bench grounding: row vs columnar storage under compiled plans";
  let repeats = 3 in
  let plans = Plan.Cache.create () in
  (* One (workload, program, make_db, delta) bundle per shape. *)
  let tc_scale = if full then (420, 40) else (320, 25) in
  let kbc_scale = if full then (4000, 8, 300, 150) else (2000, 8, 200, 100) in
  let nodes, extra = tc_scale in
  let docs, mpd, entities, weak_pairs = kbc_scale in
  let rng = Prng.create 7 in
  let tc_base = tc_edges rng ~nodes ~extra in
  let kbc_base =
    kbc_contents rng ~docs ~mentions_per_doc:mpd ~entities ~weak_pairs ~special_docs:5
  in
  let workloads =
    [
      ( "tc",
        tc_program,
        (fun backend -> tc_db backend tc_base),
        (fun delta ->
          (* Small incremental step: one new edge into the chain's middle,
             one deleted chain edge (forces rederivation through the cycle
             structure). *)
          Dred.Delta.insert delta "edge" [| i (nodes / 2); i 0 |];
          Dred.Delta.delete delta "edge" [| i (nodes / 4); i ((nodes / 4) + 1) |]) );
      ( "kbc",
        kbc_program,
        (fun backend -> kbc_db backend kbc_base),
        (fun delta ->
          (* A handful of new mentions in one doc plus one retraction: the
             shape of a DeepDive corpus increment. *)
          let d = docs / 2 in
          Dred.Delta.insert delta "mention" [| i d; i 900001; i 1 |];
          Dred.Delta.insert delta "mention" [| i d; i 900002; i 2 |];
          Dred.Delta.insert delta "mention" [| i (docs - 1); i 900003; i 3 |];
          let dd, dm, de = List.hd kbc_base.mentions in
          Dred.Delta.delete delta "mention" [| i dd; i dm; i de |]) );
    ]
  in
  let full_speedups = ref [] and incr_speedups = ref [] in
  let all_equiv = ref true in
  List.iter
    (fun (wname, program, make_db, make_delta) ->
      (* Full evaluation, row vs columnar. *)
      let timed_full backend =
        Harness.time_median ~repeats (fun () ->
            let db = make_db backend in
            match Engine.run ~plans db program with
            | Ok () -> ()
            | Error e -> invalid_arg e)
      in
      let row_full = timed_full Relation.Row in
      let col_full = timed_full Relation.Columnar in
      let db_r = make_db Relation.Row and db_c = make_db Relation.Columnar in
      (match Engine.run ~plans db_r program with Ok () -> () | Error e -> invalid_arg e);
      (match Engine.run ~plans db_c program with Ok () -> () | Error e -> invalid_arg e);
      let equiv_full = check_equiv program db_r db_c in
      all_equiv := !all_equiv && equiv_full;
      let speedup_full = row_full /. col_full in
      full_speedups := speedup_full :: !full_speedups;
      (* Incremental step on materialized databases (materialization is
         outside the timed region; each repeat gets a fresh db because DRed
         mutates it). *)
      let timed_incr backend =
        median_inner ~repeats (fun () ->
            let db = make_db backend in
            (match Engine.run ~plans db program with
            | Ok () -> ()
            | Error e -> invalid_arg e);
            let delta = Dred.Delta.create () in
            make_delta delta;
            let t = Dd_util.Timer.start () in
            (match Dred.apply ~plans db program delta with
            | Ok _ -> ()
            | Error e -> invalid_arg e);
            Dd_util.Timer.elapsed_s t)
      in
      let row_incr = timed_incr Relation.Row in
      let col_incr = timed_incr Relation.Columnar in
      let db_ri = make_db Relation.Row and db_ci = make_db Relation.Columnar in
      (match Engine.run ~plans db_ri program with Ok () -> () | Error e -> invalid_arg e);
      (match Engine.run ~plans db_ci program with Ok () -> () | Error e -> invalid_arg e);
      let delta_r = Dred.Delta.create () and delta_c = Dred.Delta.create () in
      make_delta delta_r;
      make_delta delta_c;
      (match Dred.apply ~plans db_ri program delta_r with
      | Ok _ -> ()
      | Error e -> invalid_arg e);
      (match Dred.apply ~plans db_ci program delta_c with
      | Ok _ -> ()
      | Error e -> invalid_arg e);
      let equiv_incr = check_equiv program db_ri db_ci in
      all_equiv := !all_equiv && equiv_incr;
      let speedup_incr = row_incr /. col_incr in
      incr_speedups := speedup_incr :: !incr_speedups;
      Harness.note "%-4s full-eval   row %8.4fs  columnar %8.4fs  ratio %5.2fx  equiv %b"
        wname row_full col_full speedup_full equiv_full;
      Harness.note "%-4s incremental row %8.4fs  columnar %8.4fs  ratio %5.2fx  equiv %b"
        wname row_incr col_incr speedup_incr equiv_incr;
      Harness.metric (Printf.sprintf "row_full_s_%s" wname) row_full;
      Harness.metric (Printf.sprintf "columnar_full_s_%s" wname) col_full;
      Harness.metric (Printf.sprintf "speedup_full_%s" wname) speedup_full;
      Harness.metric (Printf.sprintf "row_incremental_s_%s" wname) row_incr;
      Harness.metric (Printf.sprintf "columnar_incremental_s_%s" wname) col_incr;
      Harness.metric (Printf.sprintf "speedup_incremental_%s" wname) speedup_incr;
      Harness.metric (Printf.sprintf "equiv_full_%s" wname) (if equiv_full then 1.0 else 0.0);
      Harness.metric
        (Printf.sprintf "equiv_incremental_%s" wname)
        (if equiv_incr then 1.0 else 0.0))
    workloads;
  let speedup_full = geomean !full_speedups in
  let speedup_incremental = geomean !incr_speedups in
  Harness.note "";
  Harness.note "geomean columnar/row ratio: full-eval %.2fx, incremental %.2fx (>=1x is a win)"
    speedup_full speedup_incremental;
  Harness.note "plan cache: %d plans, %d compilations across all runs"
    (Plan.Cache.size plans) (Plan.Cache.compiles plans);
  Harness.metric "speedup_full" speedup_full;
  Harness.metric "speedup_incremental" speedup_incremental;
  Harness.metric "equiv_all" (if !all_equiv then 1.0 else 0.0);
  Harness.metric "plan_cache_size" (float_of_int (Plan.Cache.size plans));
  Harness.metric "plan_cache_compiles" (float_of_int (Plan.Cache.compiles plans))

let () =
  Harness.register "grounding" "Row vs columnar storage under compiled plans (full + incremental)"
    run
