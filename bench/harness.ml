(* Shared plumbing for the benchmark harness: experiment registry, timing
   helpers, and the synthetic pairwise factor graphs used by the tradeoff
   experiments of Figure 5. *)

module Graph = Dd_fgraph.Graph
module Semantics = Dd_fgraph.Semantics
module Gibbs = Dd_inference.Gibbs
module Metropolis = Dd_inference.Metropolis
module Prng = Dd_util.Prng
module Timer = Dd_util.Timer
module Table = Dd_util.Table

type experiment = {
  name : string;
  title : string;
  run : full:bool -> unit;
}

let registry : experiment list ref = ref []

let register name title run = registry := { name; title; run } :: !registry

let all_experiments () = List.rev !registry

let section title =
  let bar = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n" title bar

let note fmt = Printf.ksprintf (fun line -> Printf.printf "%s\n" line) fmt

(* --- machine-readable results ------------------------------------------ *)

(* Experiments report named scalar results through [metric]; the driver
   (bench/main.ml) snapshots them per experiment and, under [--json],
   writes one BENCH_<name>.json-style file per experiment so the perf
   trajectory of the repo is diffable across commits. *)

let current_metrics : (string * float) list ref = ref []

let reset_metrics () = current_metrics := []

let metric key value = current_metrics := (key, value) :: !current_metrics

let metrics () = List.rev !current_metrics

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  (* JSON has no NaN/Infinity literals; clamp to null. *)
  if Float.is_finite v then Printf.sprintf "%.9g" v else "null"

(* Host context (schema v2): bench records are compared across commits
   *and* machines, and a scaling curve measured on 1 core means something
   entirely different from the same curve on 16 — without the host block,
   cross-machine trajectory comparison is guesswork. *)
let host_cpu_count () =
  (* [Domain.recommended_domain_count] already folds in cgroup/affinity
     limits; /proc gives the raw processor count where available. *)
  try
    let ic = open_in "/proc/cpuinfo" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.length line >= 9 && String.sub line 0 9 = "processor" then incr n
           done
         with End_of_file -> ());
        if !n > 0 then !n else Domain.recommended_domain_count ())
  with _ -> Domain.recommended_domain_count ()

let write_json_record ~path ~name ~scale ~wall_clock_s ~metrics =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n";
      Printf.fprintf oc "  \"schema_version\": 2,\n";
      Printf.fprintf oc "  \"experiment\": \"%s\",\n" (json_escape name);
      Printf.fprintf oc "  \"scale\": \"%s\",\n" (json_escape scale);
      Printf.fprintf oc "  \"host\": {\n";
      Printf.fprintf oc "    \"cpu_count\": %d,\n" (host_cpu_count ());
      Printf.fprintf oc "    \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
      Printf.fprintf oc "    \"ocaml_version\": \"%s\",\n" (json_escape Sys.ocaml_version);
      Printf.fprintf oc "    \"os_type\": \"%s\",\n" (json_escape Sys.os_type);
      Printf.fprintf oc "    \"word_size\": %d\n" Sys.word_size;
      Printf.fprintf oc "  },\n";
      Printf.fprintf oc "  \"wall_clock_seconds\": %s,\n" (json_float wall_clock_s);
      Printf.fprintf oc "  \"metrics\": {";
      List.iteri
        (fun i (key, value) ->
          Printf.fprintf oc "%s\n    \"%s\": %s"
            (if i = 0 then "" else ",")
            (json_escape key) (json_float value))
        metrics;
      Printf.fprintf oc "%s}\n}\n" (if metrics = [] then "" else "\n  "))

(* Median-of-k timing to damp scheduler noise. *)
let time_median ?(repeats = 3) f =
  let times = List.init repeats (fun _ -> Timer.time_s f) in
  List.nth (List.sort compare times) (repeats / 2)

(* A synthetic factor graph in the style of the Figure 5 study: [n]
   variables, unary biases, and pairwise conjunction factors along a chain
   plus [extra] random pairs.  [sparsity] is the fraction of pairwise
   weights that are non-zero; weights are sampled from [-0.5, 0.5] as in
   the paper's footnote. *)
let synthetic_graph ?(sparsity = 1.0) ?(extra_per_var = 1) rng n =
  let g = Graph.create () in
  let vars = Graph.add_vars g n in
  Array.iter
    (fun v ->
      let w = Graph.add_weight g (Prng.float_range rng (-0.5) 0.5) in
      ignore (Graph.unary g ~weight:w v))
    vars;
  let add_edge a b =
    let value =
      if Prng.bernoulli rng sparsity then Prng.float_range rng (-0.5) 0.5 else 0.0
    in
    let w = Graph.add_weight g value in
    ignore (Graph.pairwise g ~weight:w vars.(a) vars.(b))
  in
  for k = 0 to n - 2 do
    add_edge k (k + 1)
  done;
  if n > 2 then
    for _ = 1 to extra_per_var * n / 2 do
      let a = Prng.int_below rng n in
      let b = (a + 1 + Prng.int_below rng (n - 1)) mod n in
      add_edge (min a b) (max a b)
    done;
  g

(* A synthetic scale graph for the async-Gibbs scaling study: [n] query
   variables with unary biases plus pairwise conjunction factors — a
   chain edge v—(v+1) and [extra_per_var] random edges per variable whose
   endpoints lie within [locality] positions of each other.  The window
   mirrors the document-local factor structure KBC grounding produces
   (mentions of one document share factors; cross-document factors are
   rare), and is what makes a contiguous variable range a contiguous
   working set: the async sampler's per-worker ranges stay
   cache-resident across an epoch, where the chromatic classes of the
   color-sync sampler scatter over the whole graph.  All variables are
   query variables, so a sweep's work is exactly [n] conditionals. *)
let scale_graph ?(extra_per_var = 2) ?(locality = 512) rng n =
  let g = Graph.create () in
  let vars = Graph.add_vars g n in
  Array.iter
    (fun v ->
      let w = Graph.add_weight g (Prng.float_range rng (-0.5) 0.5) in
      ignore (Graph.unary g ~weight:w v))
    vars;
  let add_edge a b =
    if a <> b then begin
      let w = Graph.add_weight g (Prng.float_range rng (-0.5) 0.5) in
      ignore (Graph.pairwise g ~weight:w vars.(min a b) vars.(max a b))
    end
  in
  for k = 0 to n - 2 do
    add_edge k (k + 1)
  done;
  let window = max 1 locality in
  for v = 0 to n - 1 do
    for _ = 1 to extra_per_var do
      let off = 1 + Prng.int_below rng window in
      let u = if Prng.bool rng then v + off else v - off in
      if u >= 0 && u < n then add_edge v u
    done
  done;
  g

(* Perturb every pairwise/unary weight by gaussian noise of scale [delta];
   returns the change record (old weights recorded). *)
let perturb_weights rng g delta =
  let changed = ref [] in
  if delta <> 0.0 then
    for w = 0 to Graph.num_weights g - 1 do
      let old_value = Graph.weight_value g w in
      let fresh = old_value +. (delta *. Prng.gaussian rng) in
      if fresh <> old_value then begin
        Graph.set_weight g w fresh;
        changed := (w, old_value) :: !changed
      end
    done;
  { (Metropolis.unchanged g) with Metropolis.changed_weights = !changed }

let restore_weights g change =
  List.iter
    (fun (w, old_value) -> Graph.set_weight g w old_value)
    change.Metropolis.changed_weights

(* Find a perturbation scale whose independent-MH acceptance rate is close
   to [target], by bisection on delta (acceptance decreases in delta). *)
let calibrate_acceptance rng g ~stored ~target =
  let probe delta =
    let change = perturb_weights (Prng.copy rng) g delta in
    let rate =
      Metropolis.acceptance_probe (Prng.create 99) change ~stored
        ~probes:(min 200 (Array.length stored))
    in
    restore_weights g change;
    rate
  in
  if target >= 0.999 then 0.0
  else begin
    let lo = ref 0.0 and hi = ref 8.0 in
    for _ = 1 to 12 do
      let mid = ( !lo +. !hi ) /. 2.0 in
      if probe mid > target then lo := mid else hi := mid
    done;
    (!lo +. !hi) /. 2.0
  end

(* The Fig-KBC graph shared by the scaling and gibbs-kernel experiments:
   generate the News corpus, ground the full program, and fit weights
   briefly so the sweeps sample a realistic posterior. *)
let fig_kbc_graph ~full =
  let module Corpus = Dd_kbc.Corpus in
  let module Systems = Dd_kbc.Systems in
  let module Pipeline = Dd_kbc.Pipeline in
  let module Grounding = Dd_core.Grounding in
  let module Database = Dd_relational.Database in
  let module Learner = Dd_inference.Learner in
  let config = Systems.news in
  let config =
    if full then
      {
        config with
        Corpus.docs = config.Corpus.docs * 4;
        entities = config.Corpus.entities * 2;
      }
    else config
  in
  let corpus = Corpus.generate config in
  let db = Database.create () in
  Corpus.load corpus db;
  let grounding = Grounding.ground db (Pipeline.full_program ()) in
  let g = Grounding.graph grounding in
  Learner.train_cd
    ~options:{ Learner.default_cd with Learner.epochs = 10 }
    (Prng.create 41) g;
  g
