(* Ingestion: what the streaming front end sustains and what
   canonicalization buys.

   A seeded synthetic document stream (bursty arrivals, surface-form
   variants, late alias declarations) is micro-batched and driven through
   the full feed path — tokenize, mention finding, canonicalization,
   distant supervision — with every batch applied through the
   transactional supervisor, so each latency sample covers arrival →
   updated marginals.

   Two runs over the identical stream: canonicalization on, then off (the
   forking baseline: every raw surface string becomes its own entity).
   The headline comparison is the distinct-entity count each mode ends
   with against the stream's ground truth, plus sustained docs/s and the
   arrival→commit latency distribution on the simulated stream clock.

   The canonicalizing run finishes with a checkpoint round trip: engine
   saved, canonicalizer persisted as a sidecar blob, both recovered, and
   the recovered feed's encoded state compared byte-for-byte — canonical
   entity ids must survive recovery exactly. *)

open Harness
module Source = Dd_ingest.Source
module Batcher = Dd_ingest.Batcher
module Feed = Dd_ingest.Feed
module Pipeline = Dd_kbc.Pipeline
module Checkpoint = Dd_kbc.Checkpoint
module Database = Dd_relational.Database
module Engine = Dd_core.Engine
module Program = Dd_core.Program
module Txn = Dd_core.Txn
module Stats = Dd_util.Stats

let bench_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 300;
    inference_chain = 120;
    initial_learning_epochs = 25;
    incremental_learning_epochs = 6;
  }

let scratch_dir () = Filename.concat (Filename.get_temp_dir_name ()) "dd_bench_ingestion"

let stream_config ~full =
  let base = Source.default in
  if full then { base with Source.docs = base.Source.docs * 4; entities = base.Source.entities * 2 }
  else base

(* Feature + supervision rules ride along; the quadratic same-pair
   inference rule (I1) and the deeper feature template (FE2) stay out so
   per-batch cost reflects the streaming path, not the heaviest program. *)
let stream_program () =
  Program.add_rules
    (Pipeline.base_program ())
    (Pipeline.rules_of Pipeline.FE1
    @ Pipeline.rules_of Pipeline.S1
    @ Pipeline.rules_of Pipeline.S2)

let make_feed ~canonicalize cfg =
  let source = Source.synthetic cfg in
  let db = Database.create () in
  Feed.prepare_database db source;
  let engine = Engine.create ~options:bench_options db (stream_program ()) in
  let txn = Txn.create engine in
  (source, txn, Feed.create ~canonicalize txn)

let run_mode ~canonicalize cfg =
  let source, txn, feed = make_feed ~canonicalize cfg in
  let batcher = Batcher.create ~max_docs:8 ~max_delay_s:0.05 () in
  let summary = Feed.run feed source batcher in
  (txn, feed, summary)

let ingestion ~full =
  section "Ingestion: sustained stream, arrival latency, merge vs fork";
  let cfg = stream_config ~full in
  note
    "Stream: %d docs over %d true entities at %.0f docs/s nominal\n\
     (burstiness %.1f, alias lag %.1f); batches close at 8 docs or 50ms."
    cfg.Source.docs cfg.Source.entities cfg.Source.rate cfg.Source.burstiness
    cfg.Source.alias_lag;

  let table =
    Table.create
      [ "mode"; "docs/s"; "p50 (ms)"; "p95 (ms)"; "entities"; "merges"; "el retracts" ]
  in
  let report label (summary : Feed.run_summary) (stats : Feed.stats) ~entities =
    let docs_per_s =
      if summary.Feed.busy_s > 0.0 then
        float_of_int summary.Feed.run_docs /. summary.Feed.busy_s
      else 0.0
    in
    let p50 = 1000.0 *. Stats.percentile summary.Feed.latencies_s 0.5 in
    let p95 = 1000.0 *. Stats.percentile summary.Feed.latencies_s 0.95 in
    Table.add_row table
      [
        label;
        Printf.sprintf "%.1f" docs_per_s;
        Printf.sprintf "%.2f" p50;
        Printf.sprintf "%.2f" p95;
        string_of_int entities;
        string_of_int stats.Feed.merges;
        string_of_int stats.Feed.el_retracts;
      ];
    metric (Printf.sprintf "docs_per_s_%s" label) docs_per_s;
    metric (Printf.sprintf "latency_p50_ms_%s" label) p50;
    metric (Printf.sprintf "latency_p95_ms_%s" label) p95;
    metric (Printf.sprintf "quarantined_%s" label) (float_of_int stats.Feed.quarantined)
  in

  (* Canonicalizing run. *)
  let txn, feed, summary = run_mode ~canonicalize:true cfg in
  let stats = Feed.stats feed in
  let entities_canon = Feed.entities_bound feed in
  report "canon" summary stats ~entities:entities_canon;
  metric "batches" (float_of_int summary.Feed.run_batches);
  metric "sentences" (float_of_int stats.Feed.sentences);
  metric "mention_pairs" (float_of_int stats.Feed.pairs);
  metric "merges" (float_of_int stats.Feed.merges);
  metric "el_retracts" (float_of_int stats.Feed.el_retracts);
  metric "keys_canon" (float_of_int (Feed.el_bindings feed));
  metric "entities_canon" (float_of_int entities_canon);

  (* Forking baseline over the identical stream. *)
  let _, feed_raw, summary_raw = run_mode ~canonicalize:false cfg in
  let entities_nocanon = Feed.entities_bound feed_raw in
  report "nocanon" summary_raw (Feed.stats feed_raw) ~entities:entities_nocanon;
  metric "entities_nocanon" (float_of_int entities_nocanon);
  metric "entities_true" (float_of_int (Source.true_entities (Source.synthetic cfg)));
  Table.print table;
  note
    "\nDistinct linked entities: %d canonicalized vs %d forked (%d true);\n\
     %d late-alias merges retracted %d entity links."
    entities_canon entities_nocanon
    (Source.true_entities (Source.synthetic cfg))
    stats.Feed.merges stats.Feed.el_retracts;

  (* Checkpoint round trip: engine + canonicalizer sidecar, recovered, and
     the feed state compared byte-for-byte. *)
  let dir = scratch_dir () in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let store = Checkpoint.open_store (Filename.concat dir "store") in
  let before = Feed.encode_state feed in
  Checkpoint.save store (Txn.engine txn);
  Checkpoint.save_blob store ~name:"canonicalizer" before;
  let roundtrip_ok =
    match Checkpoint.recover store with
    | Error e -> failwith ("ingestion checkpoint recovery failed: " ^ Checkpoint.error_to_string e)
    | Ok (engine, _) -> (
      match Checkpoint.load_blob store ~name:"canonicalizer" with
      | Error e -> failwith ("canonicalizer blob failed: " ^ Checkpoint.error_to_string e)
      | Ok None -> failwith "canonicalizer blob missing after save"
      | Ok (Some blob) -> (
        match Feed.decode_state blob with
        | Error m -> failwith ("canonicalizer blob did not decode: " ^ m)
        | Ok state ->
          let recovered = Feed.create ~state (Txn.create engine) in
          Feed.encode_state recovered = before
          && Feed.el_bindings recovered = Feed.el_bindings feed
          && Feed.entities_bound recovered = entities_canon))
  in
  note "Checkpoint round trip preserved canonical entity ids: %b" roundtrip_ok;
  metric "canon_roundtrip_identical" (if roundtrip_ok then 1.0 else 0.0)

let () =
  register "ingestion" "Ingestion: stream throughput, latency, canonicalization" ingestion
