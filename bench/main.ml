(* Benchmark harness entry point.

   Regenerates every table and figure of the paper's evaluation
   (see DESIGN.md for the experiment index):

     dune exec bench/main.exe                 # all experiments, default scale
     dune exec bench/main.exe -- fig5a fig9   # a subset
     dune exec bench/main.exe -- --full       # larger sizes (slower)
     dune exec bench/main.exe -- --list       # list experiment names

   Absolute numbers will differ from the paper (their testbed is a 48-core
   1TB machine over Greenplum; ours is a single-core in-memory engine at
   1/1000 scale) — the claims under reproduction are the *shapes*: who
   wins, where the crossovers sit, and how quality responds. *)

(* Force linking of the experiment modules (registration happens in their
   initializers). *)
module _ = Fig5
module _ = Fig_kbc
module _ = Fig_semantics
module _ = Fig_learning
module _ = Micro
module _ = Ablations
module _ = Calibration_bench
module _ = Fig_recovery

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let names = List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args in
  let experiments = Harness.all_experiments () in
  if List.mem "--list" args then begin
    List.iter
      (fun e -> Printf.printf "%-12s %s\n" e.Harness.name e.Harness.title)
      experiments;
    exit 0
  end;
  let selected =
    if names = [] then
      (* Micro-benchmarks only on request: they take a while under Bechamel. *)
      List.filter (fun e -> e.Harness.name <> "micro") experiments
    else
      List.map
        (fun name ->
          match List.find_opt (fun e -> e.Harness.name = name) experiments with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %s (try --list)\n" name;
            exit 1)
        names
  in
  let total_timer = Dd_util.Timer.start () in
  List.iter (fun e -> e.Harness.run ~full) selected;
  Printf.printf "\nAll experiments finished in %.1fs.\n" (Dd_util.Timer.elapsed_s total_timer)
