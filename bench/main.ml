(* Benchmark harness entry point.

   Regenerates every table and figure of the paper's evaluation
   (see DESIGN.md for the experiment index):

     dune exec bench/main.exe                 # all experiments, default scale
     dune exec bench/main.exe -- fig5a fig9   # a subset
     dune exec bench/main.exe -- --full       # larger sizes (slower)
     dune exec bench/main.exe -- --list       # list experiment names
     dune exec bench/main.exe -- scaling --json out.json
                                              # machine-readable results

   [--json PATH] writes one JSON record per experiment (name, scale,
   wall-clock seconds, metrics): to PATH itself when a single experiment
   is selected, otherwise to PATH/BENCH_<name>.json with PATH treated as
   a directory (created if missing).

   Absolute numbers will differ from the paper (their testbed is a 48-core
   1TB machine over Greenplum; ours is an in-memory engine at 1/1000
   scale) — the claims under reproduction are the *shapes*: who wins,
   where the crossovers sit, and how quality responds. *)

(* Force linking of the experiment modules (registration happens in their
   initializers). *)
module _ = Fig5
module _ = Fig_kbc
module _ = Fig_semantics
module _ = Fig_learning
module _ = Micro
module _ = Ablations
module _ = Calibration_bench
module _ = Fig_recovery
module _ = Robustness
module _ = Serving
module _ = Scaling
module _ = Gibbs_kernel
module _ = Grounding_bench
module _ = Columnar
module _ = Ingestion
module _ = Async_gibbs
module _ = Scrub_bench
module _ = Soak_bench

type cli = { full : bool; list : bool; json : string option; names : string list }

let parse_args args =
  let rec go acc = function
    | [] -> { acc with names = List.rev acc.names }
    | "--full" :: rest -> go { acc with full = true } rest
    | "--list" :: rest -> go { acc with list = true } rest
    | "--json" :: path :: rest when String.length path < 2 || String.sub path 0 2 <> "--" ->
      go { acc with json = Some path } rest
    | "--json" :: _ ->
      prerr_endline "--json requires a PATH argument";
      exit 1
    | flag :: _ when String.length flag >= 2 && String.sub flag 0 2 = "--" ->
      Printf.eprintf "unknown flag %s\n" flag;
      exit 1
    | name :: rest -> go { acc with names = name :: acc.names } rest
  in
  go { full = false; list = false; json = None; names = [] } args

let json_target json ~selected name =
  match json with
  | None -> None
  | Some path ->
    if List.length selected = 1 then Some path
    else begin
      if not (Sys.file_exists path) then Sys.mkdir path 0o755;
      Some (Filename.concat path (Printf.sprintf "BENCH_%s.json" name))
    end

let () =
  let cli = parse_args (List.tl (Array.to_list Sys.argv)) in
  let experiments = Harness.all_experiments () in
  if cli.list then begin
    List.iter
      (fun e -> Printf.printf "%-12s %s\n" e.Harness.name e.Harness.title)
      experiments;
    exit 0
  end;
  let selected =
    if cli.names = [] then
      (* Micro-benchmarks only on request: they take a while under Bechamel. *)
      List.filter (fun e -> e.Harness.name <> "micro") experiments
    else
      List.map
        (fun name ->
          match List.find_opt (fun e -> e.Harness.name = name) experiments with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %s (try --list)\n" name;
            exit 1)
        cli.names
  in
  let total_timer = Dd_util.Timer.start () in
  List.iter
    (fun e ->
      Harness.reset_metrics ();
      let seconds = Dd_util.Timer.time_s (fun () -> e.Harness.run ~full:cli.full) in
      match json_target cli.json ~selected e.Harness.name with
      | None -> ()
      | Some path ->
        Harness.write_json_record ~path ~name:e.Harness.name
          ~scale:(if cli.full then "full" else "default")
          ~wall_clock_s:seconds ~metrics:(Harness.metrics ());
        Printf.printf "\n[json] %s -> %s\n" e.Harness.name path)
    selected;
  Printf.printf "\nAll experiments finished in %.1fs.\n" (Dd_util.Timer.elapsed_s total_timer)
