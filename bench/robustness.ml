(* Robustness: what the transactional supervisor costs and what each rung
   of the degradation ladder buys.

   Clean path: the same six-snapshot KBC sequence driven directly through
   [Engine.apply_update] and through [Txn.apply]; the overhead of undo-log
   bookkeeping (target: under 5%) is the price every healthy update pays.
   Both drivers must land on bit-identical marginals — journaling never
   touches the PRNG stream.

   Recovery latency: one scenario per rung, each arming a fault so the
   ladder stops exactly there (retry, rematerialize, rerun, quarantine),
   timing the whole [Txn.apply] including rollback and recovery work. *)

open Harness
module Corpus = Dd_kbc.Corpus
module Systems = Dd_kbc.Systems
module Pipeline = Dd_kbc.Pipeline
module Database = Dd_relational.Database
module Engine = Dd_core.Engine
module Txn = Dd_core.Txn
module Fault = Dd_util.Fault
module Timer = Dd_util.Timer
module Table = Dd_util.Table

let bench_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 400;
    inference_chain = 150;
    initial_learning_epochs = 30;
    incremental_learning_epochs = 8;
  }

let sequence = Pipeline.all_rule_ids

let make_engine config =
  let corpus = Corpus.generate config in
  let db = Database.create () in
  Corpus.load corpus db;
  Engine.create ~options:bench_options db (Pipeline.base_program ())

let drive_direct engine =
  List.iter
    (fun rid -> ignore (Engine.apply_update engine (Pipeline.update_of rid)))
    sequence

let drive_txn engine =
  let txn = Txn.create engine in
  List.iter
    (fun rid ->
      match Txn.apply txn (Pipeline.update_of rid) with
      | Ok _ -> ()
      | Error e -> failwith ("clean-path update quarantined: " ^ Txn.error_message e))
    sequence;
  txn

(* Median update-loop time over fresh engines (engine construction stays
   outside the clock). *)
let median_loop ~repeats config run =
  let times =
    List.init repeats (fun _ ->
        let engine = make_engine config in
        Timer.time_s (fun () -> run engine))
  in
  List.nth (List.sort compare times) (repeats / 2)

let rung_scenario config ~label ~arm ~options update =
  Fault.reset ();
  let engine = make_engine config in
  Fault.reset ();
  arm ();
  let txn = Txn.create ~options engine in
  let timer = Timer.start () in
  let result = Txn.apply txn update in
  let seconds = Timer.elapsed_s timer in
  Fault.reset ();
  let rung, attempts =
    match result with
    | Ok o -> (Txn.rung_to_string o.Txn.rung, o.Txn.attempts)
    | Error _ -> ("quarantine", (List.hd (Txn.dead_letters txn)).Txn.attempts)
  in
  (label, rung, attempts, seconds)

let robustness ~full =
  section "Robustness: transactional overhead and the degradation ladder";
  let config =
    let base = Systems.news in
    if full then { base with Corpus.docs = base.Corpus.docs * 4 } else base
  in
  let repeats = if full then 5 else 3 in

  note
    "Clean path: the six-snapshot sequence, direct vs transactional\n\
     (median of %d update loops; engine construction excluded)."
    repeats;
  let direct_s = median_loop ~repeats config (fun e -> drive_direct e) in
  let txn_s = median_loop ~repeats config (fun e -> ignore (drive_txn e)) in
  let overhead_pct = (txn_s -. direct_s) /. direct_s *. 100.0 in
  (* Journaling must not perturb results: same final marginals both ways. *)
  let e_direct = make_engine config in
  drive_direct e_direct;
  let e_txn = make_engine config in
  let txn = drive_txn e_txn in
  let identical =
    Engine.marginals_by_relation (Txn.engine txn) = Engine.marginals_by_relation e_direct
  in
  note "direct %.3fs   txn %.3fs   overhead %+.2f%%   bit-identical marginals: %b"
    direct_s txn_s overhead_pct identical;
  metric "clean_direct_s" direct_s;
  metric "clean_txn_s" txn_s;
  metric "clean_overhead_pct" overhead_pct;
  metric "clean_path_identical" (if identical then 1.0 else 0.0);

  note "\nRecovery latency per ladder rung (one faulted FE1 update each):";
  let update = Pipeline.update_of Pipeline.FE1 in
  let nth_1 () = Fault.arm "engine.apply_update.post_ground" (Fault.Nth 1) in
  let always () =
    Fault.seed 42;
    Fault.arm "engine.apply_update.post_ground" (Fault.Probability 1.0)
  in
  let scenarios =
    [
      rung_scenario config ~label:"retry" ~arm:nth_1 ~options:Txn.default_options update;
      rung_scenario config ~label:"rematerialize" ~arm:nth_1
        ~options:{ Txn.default_options with Txn.max_retries = 0 }
        update;
      rung_scenario config ~label:"rerun" ~arm:nth_1
        ~options:
          { Txn.default_options with Txn.max_retries = 0; allow_rematerialize = false }
        update;
      rung_scenario config ~label:"quarantine" ~arm:always ~options:Txn.default_options update;
    ]
  in
  let table = Table.create [ "scenario"; "resolved at"; "attempts"; "seconds" ] in
  List.iter
    (fun (label, rung, attempts, seconds) ->
      Table.add_row table [ label; rung; string_of_int attempts; Table.cell_f seconds ];
      metric (label ^ "_latency_s") seconds;
      metric (label ^ "_attempts") (float_of_int attempts))
    scenarios;
  Table.print table;
  Fault.reset ()

let () = register "robustness" "Transactional update overhead + recovery ladder" robustness
