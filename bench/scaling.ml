(* Domain-scaling study for the Dd_parallel subsystem: sweeps/sec of
   color-synchronous parallel Gibbs at 1/2/4/8 domains on the Fig-KBC
   (News) factor graph, plus the chain-parallel materialization rate.

   The paper's DimmWitted substrate samples on 48 cores; this experiment
   measures how far our domain-parallel sampler gets on whatever the
   current host offers (Domain.recommended_domain_count is printed with
   the results — domain counts beyond it time-slice a core and cannot
   speed up, so interpret speedups against that bound). *)

open Harness
module Graph = Dd_fgraph.Graph
module Fast_gibbs = Dd_inference.Fast_gibbs
module Par_gibbs = Dd_parallel.Par_gibbs
module Partition = Dd_parallel.Partition
module Pool = Dd_parallel.Pool
module Prng = Dd_util.Prng
module Stats = Dd_util.Stats

let domain_counts = [ 1; 2; 4; 8 ]

let run ~full =
  section "Scaling: domain-parallel Gibbs on the Fig-KBC graph";
  let g = fig_kbc_graph ~full in
  let partition = Partition.color g in
  let queries = List.length (Graph.query_vars g) in
  note "graph: %d vars (%d query), %d factors; partition: %d colors; host: %d recommended domains"
    (Graph.num_vars g) queries (Graph.num_factors g)
    partition.Partition.num_colors (Pool.recommended ());
  metric "vars" (float_of_int (Graph.num_vars g));
  metric "colors" (float_of_int partition.Partition.num_colors);
  metric "recommended_domains" (float_of_int (Pool.recommended ()));
  let sweeps = if full then 300 else 100 in
  let table =
    Dd_util.Table.create
      [ "domains"; "sweep s/s"; "speedup"; "chain worlds/s"; "c-speedup"; "maxdiff vs seq" ]
  in
  (* Sequential reference marginals for the agreement column. *)
  let reference = Fast_gibbs.marginals ~burn_in:20 (Prng.create 53) g ~sweeps in
  let base_sweep = ref 0.0 and base_chain = ref 0.0 in
  List.iter
    (fun d ->
      (* Color-synchronous single chain: throughput of [sweeps] sweeps. *)
      let sampler = Par_gibbs.create ~domains:d (Prng.create 53) g in
      let sweep_rate =
        Fun.protect
          ~finally:(fun () -> Par_gibbs.shutdown sampler)
          (fun () ->
            for _ = 1 to 5 do
              Par_gibbs.sweep sampler
            done;
            let secs =
              time_median ~repeats:1 (fun () ->
                  for _ = 1 to sweeps do
                    Par_gibbs.sweep sampler
                  done)
            in
            float_of_int sweeps /. secs)
      in
      (* Chain-level materialization: worlds/sec across [d] chains. *)
      let n_worlds = 2 * sweeps in
      let chain_secs =
        time_median ~repeats:1 (fun () ->
            ignore (Par_gibbs.sample_worlds ~burn_in:5 ~domains:d (Prng.create 59) g ~n:n_worlds))
      in
      let chain_rate = float_of_int n_worlds /. chain_secs in
      if d = 1 then begin
        base_sweep := sweep_rate;
        base_chain := chain_rate
      end;
      let maxdiff =
        let m = Par_gibbs.marginals ~burn_in:20 ~domains:d (Prng.create 53) g ~sweeps in
        Stats.max_abs_diff m reference
      in
      metric (Printf.sprintf "sweeps_per_sec_%dd" d) sweep_rate;
      metric (Printf.sprintf "speedup_%dd" d) (sweep_rate /. !base_sweep);
      metric (Printf.sprintf "chain_worlds_per_sec_%dd" d) chain_rate;
      metric (Printf.sprintf "maxdiff_vs_seq_%dd" d) maxdiff;
      Dd_util.Table.add_row table
        [
          string_of_int d;
          Printf.sprintf "%.1f" sweep_rate;
          Dd_util.Table.cell_x (sweep_rate /. !base_sweep);
          Printf.sprintf "%.1f" chain_rate;
          Dd_util.Table.cell_x (chain_rate /. !base_chain);
          Printf.sprintf "%.4f" maxdiff;
        ])
    domain_counts;
  Dd_util.Table.print table;
  note
    "(domains=1 is the bit-exact sequential path; maxdiff is cross-chain\n\
     Monte-Carlo noise at %d sweeps, not error.  Speedup saturates at the\n\
     host's recommended domain count.)"
    sweeps

let () = register "scaling" "Dd_parallel: domain-scaling of Gibbs sweeps" run
