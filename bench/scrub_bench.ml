(* Durability cost and the scrub repair ladder, measured.

   Clean path: what fsync-everywhere actually costs on checkpoint saves
   and WAL appends (the store takes [?fsync] exactly so this is
   measurable), and what a background scrub pass adds on a cadence.

   Repair path: plant real damage — a flipped bit in a published
   checkpoint version, a wrecked derived plane and a wrecked content
   plane in live columnar tables — and show the ladder healing or
   containing every one of it end to end. *)

open Harness
module Corpus = Dd_kbc.Corpus
module Pipeline = Dd_kbc.Pipeline
module Checkpoint = Dd_kbc.Checkpoint
module Scrub = Dd_kbc.Scrub
module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Database = Dd_relational.Database
module Relation = Dd_relational.Relation
module Column_store = Dd_relational.Column_store
module Timer = Dd_util.Timer
module Table = Dd_util.Table

let bench_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 400;
    inference_chain = 150;
    initial_learning_epochs = 30;
    incremental_learning_epochs = 8;
    relation_backend = Relation.Columnar;
  }

let scratch_dir () = Filename.concat (Filename.get_temp_dir_name ()) "dd_bench_scrub"

let clear_dir dir =
  if Sys.file_exists dir then
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      (Sys.readdir dir)
  else Sys.mkdir dir 0o755

let flip_byte_in_file path pos =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  let pos = if pos < 0 then len + pos else pos in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let make_engine corpus =
  let db = Database.create () in
  Corpus.load corpus db;
  Engine.create ~options:bench_options db (Pipeline.base_program ())

let time_saves ~fsync ~rounds dir engine =
  clear_dir dir;
  let store = Checkpoint.open_store ~keep_versions:2 ~fsync dir in
  let timer = Timer.start () in
  for _ = 1 to rounds do
    Checkpoint.save store engine
  done;
  let save_s = Timer.elapsed_s timer in
  let update = Pipeline.update_of Pipeline.FE1 in
  let timer = Timer.start () in
  for _ = 1 to rounds * 4 do
    Checkpoint.log_update store update
  done;
  let log_s = Timer.elapsed_s timer in
  (save_s /. float_of_int rounds *. 1e3, log_s /. float_of_int (rounds * 4) *. 1e3)

let scrub ~full =
  section "Scrub: durability overhead and the self-healing repair ladder";
  let config =
    if full then { Corpus.default with Corpus.docs = Corpus.default.Corpus.docs * 2 }
    else Corpus.default
  in
  let corpus = Corpus.generate config in
  let dir = scratch_dir () in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let engine = make_engine corpus in
  let rounds = if full then 12 else 6 in

  (* --- clean path: what durable writes cost ------------------------------- *)
  let save_fsync_ms, log_fsync_ms = time_saves ~fsync:true ~rounds (Filename.concat dir "fsync") engine in
  let save_nofsync_ms, log_nofsync_ms =
    time_saves ~fsync:false ~rounds (Filename.concat dir "nofsync") engine
  in
  let overhead a b = if b > 0.0 then (a -. b) /. b *. 100.0 else 0.0 in
  let table = Table.create [ "operation"; "fsync(ms)"; "no-fsync(ms)"; "overhead(%)" ] in
  Table.add_row table
    [
      "checkpoint save";
      Table.cell_f save_fsync_ms;
      Table.cell_f save_nofsync_ms;
      Table.cell_f (overhead save_fsync_ms save_nofsync_ms);
    ];
  Table.add_row table
    [
      "wal append";
      Table.cell_f log_fsync_ms;
      Table.cell_f log_nofsync_ms;
      Table.cell_f (overhead log_fsync_ms log_nofsync_ms);
    ];
  Table.print table;
  metric "save_fsync_ms" save_fsync_ms;
  metric "save_nofsync_ms" save_nofsync_ms;
  metric "save_fsync_overhead_pct" (overhead save_fsync_ms save_nofsync_ms);
  metric "log_fsync_ms" log_fsync_ms;
  metric "log_nofsync_ms" log_nofsync_ms;

  (* --- clean path: a scrub pass and its cadence cost ----------------------- *)
  let store_dir = Filename.concat dir "store" in
  clear_dir store_dir;
  let store = Checkpoint.open_store ~keep_versions:2 store_dir in
  Checkpoint.save store engine;
  let timer = Timer.start () in
  let clean_report = Scrub.run ~engine store in
  let scrub_ms = Timer.elapsed_s timer *. 1e3 in
  note "Clean scrub pass: %.1fms over %d versions and %d live tables (damage: %d)."
    scrub_ms clean_report.Scrub.versions_ok clean_report.Scrub.tables_ok
    (Scrub.damage_found clean_report);
  metric "scrub_pass_ms" scrub_ms;
  metric "scrub_clean_ok" (if Scrub.damage_found clean_report = 0 then 1.0 else 0.0);

  (* Update loop with a scrub every other checkpoint vs none. *)
  let drive ~with_scrub dir =
    clear_dir dir;
    let engine = make_engine corpus in
    let store = Checkpoint.open_store ~keep_versions:2 dir in
    Checkpoint.save store engine;
    let cadence = Scrub.cadence 2 in
    let timer = Timer.start () in
    List.iter
      (fun rid ->
        ignore (Checkpoint.apply_update store engine (Pipeline.update_of rid));
        Checkpoint.save store engine;
        if with_scrub && Scrub.due cadence then ignore (Scrub.run ~engine store))
      Pipeline.all_rule_ids;
    Timer.elapsed_s timer
  in
  let plain_s = drive ~with_scrub:false (Filename.concat dir "plain") in
  let scrubbed_s = drive ~with_scrub:true (Filename.concat dir "cadence") in
  note "Update loop: %.2fs plain, %.2fs with scrub-every-2-checkpoints (+%.1f%%)."
    plain_s scrubbed_s (overhead scrubbed_s plain_s);
  metric "cadence_overhead_pct" (overhead scrubbed_s plain_s);

  (* --- repair path: plant damage, climb the ladder ------------------------- *)
  let ckpt = Filename.concat store_dir (Option.get (Checkpoint.latest store)) in
  flip_byte_in_file ckpt (-40);
  let db = Grounding.database (Engine.grounding engine) in
  let tables =
    List.filter
      (fun n ->
        match Relation.columnar (Database.find db n) with
        | Some cs -> Column_store.cardinality cs > 0
        | None -> false)
      (Database.table_names db)
  in
  let mirror_name = List.hd tables in
  let mirror = Relation.convert Relation.Row (Database.find db mirror_name) in
  (* Content-plane damage on one table (needs the reference mirror),
     derived-plane damage on another (healed in place). *)
  let cs0 = Option.get (Relation.columnar (Database.find db mirror_name)) in
  Column_store.compact cs0;
  Column_store.unsafe_corrupt_run cs0;
  (match tables with
  | _ :: second :: _ ->
    Column_store.unsafe_corrupt_filter (Option.get (Relation.columnar (Database.find db second)))
  | _ -> ());
  let timer = Timer.start () in
  let r =
    Scrub.run ~engine
      ~reference:(fun n -> if n = mirror_name then Some mirror else None)
      store
  in
  let repair_ms = Timer.elapsed_s timer *. 1e3 in
  note
    "Damaged store scrub (%.1fms): %d version(s) quarantined, %d table(s)\n\
     repaired in place, %d rebuilt from the row mirror, %d unrepaired;\n\
     republished: %b."
    repair_ms r.Scrub.versions_quarantined r.Scrub.tables_repaired r.Scrub.tables_rebuilt
    (List.length r.Scrub.unrepaired)
    r.Scrub.republished;
  metric "repair_versions_quarantined" (float_of_int r.Scrub.versions_quarantined);
  metric "repair_tables_repaired" (float_of_int r.Scrub.tables_repaired);
  metric "repair_tables_rebuilt" (float_of_int r.Scrub.tables_rebuilt);
  metric "repair_unrepaired" (float_of_int (List.length r.Scrub.unrepaired));
  metric "repair_healthy" (if Scrub.healthy r then 1.0 else 0.0);
  (* And the store must still recover bit-for-bit after the repair. *)
  let identical =
    match Checkpoint.recover (Checkpoint.open_store store_dir) with
    | Ok (recovered, _) ->
      Engine.marginals_by_relation recovered = Engine.marginals_by_relation engine
    | Error _ -> false
  in
  note "Recovery after repair reproduces the live marginals: %b" identical;
  metric "recover_after_repair_identical" (if identical then 1.0 else 0.0)

let () = register "scrub" "Scrub: fsync cost, scrub cadence, repair ladder" scrub
