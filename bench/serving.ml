(* Serving: what the snapshot-swap read path costs and buys.

   Read throughput: reader domains hammer [Server.lookup] over a fixed key
   set against a quiescent server — the pure cost of the pinned read path
   (two atomic RMWs around two hash probes) at 1/2/4/8 domains.

   Swap latency: the six-snapshot KBC sequence driven through the
   supervisor with the server attached; every commit rebuilds and swaps a
   snapshot, and the server's own health surface reports the build+publish
   latency distribution.

   Staleness vs cadence: a sampler domain watches the health surface while
   the writer applies the sequence at different paces; mean wall-clock
   staleness tracks the update interval (readers always lag the writer by
   about half a cadence plus the swap cost). *)

open Harness
module Corpus = Dd_kbc.Corpus
module Systems = Dd_kbc.Systems
module Pipeline = Dd_kbc.Pipeline
module Database = Dd_relational.Database
module Engine = Dd_core.Engine
module Txn = Dd_core.Txn
module Pool = Dd_parallel.Pool
module Snapshot = Dd_serve.Snapshot
module Server = Dd_serve.Server

let bench_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 300;
    inference_chain = 120;
    initial_learning_epochs = 25;
    incremental_learning_epochs = 6;
  }

let sequence = Pipeline.all_rule_ids

let make_engine config =
  let corpus = Corpus.generate config in
  let db = Database.create () in
  Corpus.load corpus db;
  (corpus, Engine.create ~options:bench_options db (Pipeline.base_program ()))

(* --- read throughput ----------------------------------------------------- *)

let throughput server keys ~domains ~per_domain =
  let pool = Pool.create domains in
  let n = Array.length keys in
  let timer = Timer.start () in
  Pool.run pool (fun d ->
      (* Stride by a per-domain offset so domains walk different keys. *)
      let i = ref (d * 7919 mod n) in
      for _ = 1 to per_domain do
        let relation, tuple = Array.unsafe_get keys !i in
        ignore (Server.lookup server ~relation tuple);
        incr i;
        if !i = n then i := 0
      done);
  let seconds = Timer.elapsed_s timer in
  Pool.shutdown pool;
  float_of_int (domains * per_domain) /. seconds

(* --- staleness vs update cadence ------------------------------------------ *)

let staleness_run config ~pace_s =
  let _, engine = make_engine config in
  let txn = Txn.create engine in
  let server = Server.create txn in
  let stop = Atomic.make false in
  let samples = ref [] in
  let pool = Pool.create 2 in
  Pool.run pool (fun d ->
      if d = 0 then
        Fun.protect
          ~finally:(fun () -> Atomic.set stop true)
          (fun () ->
            List.iter
              (fun rid ->
                (match Txn.apply txn (Pipeline.update_of rid) with
                | Ok _ -> ()
                | Error e -> failwith ("bench update quarantined: " ^ Txn.error_message e));
                if pace_s > 0.0 then Unix.sleepf pace_s)
              sequence)
      else begin
        let acc = ref [] in
        while not (Atomic.get stop) do
          acc := (Server.health server).Server.staleness_s :: !acc;
          Unix.sleepf 0.0002
        done;
        samples := !acc
      end);
  Pool.shutdown pool;
  let h = Server.health server in
  (!samples, h)

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))

let serving ~full =
  section "Serving: snapshot reads, swap latency, staleness vs cadence";
  let config =
    let base = Systems.news in
    if full then { base with Corpus.docs = base.Corpus.docs * 2 } else base
  in

  (* One served engine state for the read-path measurements: the full
     six-snapshot sequence applied, calibration on. *)
  let corpus, engine = make_engine config in
  let txn = Txn.create engine in
  let server = Server.create ~truth:corpus.Corpus.truth txn in
  List.iter
    (fun rid ->
      match Txn.apply txn (Pipeline.update_of rid) with
      | Ok _ -> ()
      | Error e -> failwith ("bench update quarantined: " ^ Txn.error_message e))
    sequence;
  let snap = Server.current server in
  (match Snapshot.verify snap with
  | Ok () -> ()
  | Error m -> failwith ("served snapshot failed its audit: " ^ m));
  metric "served_facts" (float_of_int (Snapshot.num_facts snap));
  metric "epochs_published" (float_of_int (Snapshot.epoch snap));

  let keys =
    Array.of_list
      (List.map (fun (r, t, _) -> (r, t)) (Engine.marginals_by_relation (Txn.engine txn)))
  in
  let per_domain = if full then 2_000_000 else 500_000 in
  note "Read throughput over %d keys (%d lookups per domain):" (Array.length keys) per_domain;
  let table = Table.create [ "reader domains"; "lookups/s (aggregate)"; "lookups/s (per domain)" ] in
  List.iter
    (fun domains ->
      let rate = throughput server keys ~domains ~per_domain in
      Table.add_row table
        [
          string_of_int domains;
          Printf.sprintf "%.3g" rate;
          Printf.sprintf "%.3g" (rate /. float_of_int domains);
        ];
      metric (Printf.sprintf "lookups_per_s_domains_%d" domains) rate)
    [ 1; 2; 4; 8 ];
  Table.print table;

  (* Swap latency: the health surface accumulated one swap per commit
     (plus calibration — the expensive snapshot path). *)
  let h = Server.health server in
  note "\nSnapshot swap latency over %d swaps: last %.2fms  mean %.2fms  max %.2fms"
    h.Server.swaps h.Server.last_swap_ms h.Server.mean_swap_ms h.Server.max_swap_ms;
  metric "swap_count" (float_of_int h.Server.swaps);
  metric "swap_mean_ms" h.Server.mean_swap_ms;
  metric "swap_max_ms" h.Server.max_swap_ms;
  metric "retired_snapshots" (float_of_int h.Server.retired);

  note "\nRead staleness vs update cadence (health sampled every 0.2ms):";
  let table = Table.create [ "cadence"; "samples"; "mean staleness (ms)"; "max staleness (ms)" ] in
  List.iter
    (fun (label, pace_s) ->
      let samples, end_health = staleness_run config ~pace_s in
      let mean_ms = 1000.0 *. mean samples in
      let max_ms = 1000.0 *. List.fold_left max 0.0 samples in
      Table.add_row table
        [
          label;
          string_of_int (List.length samples);
          Printf.sprintf "%.2f" mean_ms;
          Printf.sprintf "%.2f" max_ms;
        ];
      let key = "staleness_" ^ label in
      metric (key ^ "_mean_ms") mean_ms;
      metric (key ^ "_max_ms") max_ms;
      metric (key ^ "_commits_behind_final") (float_of_int end_health.Server.staleness_commits))
    [ ("tight", 0.0); ("cadence_10ms", 0.01); ("cadence_50ms", 0.05) ];
  Table.print table

let () = register "serving" "Serving: read throughput, swap latency, staleness" serving
