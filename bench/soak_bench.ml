(* Crash-consistency soak: seeded random fault schedules over the full
   checkpointed update loop, each killed/damaged at its armed points,
   recovered, scrubbed, and compared bit-for-bit against a fault-free
   golden run.  The acceptance bar is zero unrecovered corruption: every
   schedule must converge to the golden fingerprint with nothing left
   unrepaired and nothing damaged ever served.

   Default scale runs a CI-sized subset; --full runs the full 240-schedule
   sweep (the paper-style overnight number).  Failing schedules are
   shrunk to minimal reproductions and written to SOAK_FAILURES.txt so a
   red CI run uploads exactly the seeds needed to replay the bug. *)

open Harness
module Corpus = Dd_kbc.Corpus
module Engine = Dd_core.Engine
module Fault_file = Dd_util.Fault_file
module Soak = Dd_kbc.Soak
module Source = Dd_ingest.Source
module Soak_driver = Dd_ingest.Soak_driver
module Server = Dd_serve.Server
module Snapshot = Dd_serve.Snapshot
module Timer = Dd_util.Timer

let soak_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 120;
    inference_chain = 60;
    initial_learning_epochs = 10;
    incremental_learning_epochs = 3;
  }

let scratch_dir name = Filename.concat (Filename.get_temp_dir_name ()) ("dd_bench_" ^ name)

let corpus_config = { Corpus.default with Corpus.docs = 16; relations = 2; entities = 24; seed = 5 }

let report_failures label failures =
  if failures <> [] then begin
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 "SOAK_FAILURES.txt" in
    List.iter
      (fun (o : Soak.outcome) ->
        let arms =
          String.concat ", "
            (List.map
               (fun (a : Soak.arm) -> Printf.sprintf "%s@%d" a.Soak.point a.Soak.trigger)
               o.Soak.schedule.Soak.arms)
        in
        Printf.fprintf oc "%s schedule %d [%s]: %s\n" label o.Soak.schedule.Soak.sid arms
          (Option.value ~default:"?" o.Soak.failure);
        note "FAILED %s schedule %d [%s]: %s" label o.Soak.schedule.Soak.sid arms
          (Option.value ~default:"?" o.Soak.failure))
      failures;
    close_out oc
  end

let soak ~full =
  section "Soak: randomized fault schedules, crash-recover-scrub to a golden model";
  let kbc_schedules = if full then 240 else 60 in
  let ingest_schedules = if full then 24 else 8 in
  note
    "Each schedule arms 1-3 seeded (point, Nth) faults over the torn-write\n\
     I/O layer, runs the checkpointed update loop, treats every escaping\n\
     injection as a machine death (volatile bytes lost), recovers, scrubs,\n\
     and ends with a forced power cut.  Pass = bit-identical fingerprint\n\
     vs the fault-free golden run, nothing unrepaired.";

  (* --- bare kbc loop: io + checkpoint crash points ------------------------- *)
  let corpus = Corpus.generate corpus_config in
  let dir = scratch_dir "soak_kbc" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let pipeline = Soak.kbc_pipeline ~options:soak_options ~dir corpus in
  let points =
    Fault_file.all_points
    @ [ "checkpoint.save.pre_rename"; "checkpoint.save.pre_manifest"; "checkpoint.log_update.mid_write" ]
  in
  let timer = Timer.start () in
  let summary = Soak.soak ~seed:101 ~points ~schedules:kbc_schedules pipeline in
  let kbc_s = Timer.elapsed_s timer in
  note
    "kbc loop: %d schedules in %.1fs — %d crashed (%d injected deaths),\n\
     %d clean, %d artifacts repaired/contained, %d FAILURES."
    summary.Soak.schedules kbc_s summary.Soak.crashed summary.Soak.total_crashes
    summary.Soak.clean summary.Soak.total_repairs
    (List.length summary.Soak.failures);
  report_failures "kbc" summary.Soak.failures;
  metric "kbc_schedules" (float_of_int summary.Soak.schedules);
  metric "kbc_crashed" (float_of_int summary.Soak.crashed);
  metric "kbc_total_crashes" (float_of_int summary.Soak.total_crashes);
  metric "kbc_repairs" (float_of_int summary.Soak.total_repairs);
  metric "kbc_failures" (float_of_int (List.length summary.Soak.failures));

  (* --- full ingest -> txn -> serve loop ------------------------------------ *)
  let ingest_dir = scratch_dir "soak_ingest" in
  if not (Sys.file_exists ingest_dir) then Sys.mkdir ingest_dir 0o755;
  let cfg = { Source.default with Source.docs = 12; entities = 8; relations = 2; seed = 7 } in
  let server = ref None in
  let ingest_pipeline =
    Soak_driver.pipeline ~options:soak_options
      ~attach:(fun txn -> server := Some (Server.create txn))
      ~verify_snapshot:(fun () ->
        match !server with
        | None -> Error "no server attached"
        | Some srv -> Server.read srv Snapshot.verify)
      ~dir:ingest_dir (Source.synthetic cfg)
  in
  let ingest_pipeline =
    {
      ingest_pipeline with
      Soak.scrub =
        (fun () ->
          let r = ingest_pipeline.Soak.scrub () in
          (match !server with Some srv -> Server.record_scrub srv r | None -> ());
          r);
    }
  in
  let timer = Timer.start () in
  let isummary = Soak.soak ~seed:77 ~schedules:ingest_schedules ingest_pipeline in
  let ingest_s = Timer.elapsed_s timer in
  note
    "ingest+serve loop: %d schedules in %.1fs — %d crashed, %d repairs, %d FAILURES."
    isummary.Soak.schedules ingest_s isummary.Soak.crashed isummary.Soak.total_repairs
    (List.length isummary.Soak.failures);
  report_failures "ingest" isummary.Soak.failures;
  (match !server with
  | Some srv ->
    let h = Server.health srv in
    note "serving health after the soak: %d scrubs recorded, last verdict healthy: %b."
      h.Server.scrubs
      (h.Server.last_scrub_healthy = Some true)
  | None -> ());
  metric "ingest_schedules" (float_of_int isummary.Soak.schedules);
  metric "ingest_crashed" (float_of_int isummary.Soak.crashed);
  metric "ingest_repairs" (float_of_int isummary.Soak.total_repairs);
  metric "ingest_failures" (float_of_int (List.length isummary.Soak.failures));
  metric "unrecovered_corruption"
    (float_of_int (List.length summary.Soak.failures + List.length isummary.Soak.failures))

let () = register "soak" "Soak: crash-consistency fault schedules vs golden model" soak
