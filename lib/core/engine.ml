module Graph = Dd_fgraph.Graph
module Tuple = Dd_relational.Tuple
module Database = Dd_relational.Database
module Relation = Dd_relational.Relation
module Budget = Dd_util.Budget
module Compiled = Dd_inference.Compiled
module Learner = Dd_inference.Learner
module Metropolis = Dd_inference.Metropolis
module Par_gibbs = Dd_parallel.Par_gibbs
module Prng = Dd_util.Prng
module Timer = Dd_util.Timer
module Fault = Dd_util.Fault

type options = {
  materialization_samples : int;
  inference_chain : int;
  burn_in : int;
  lambda : float;
  acceptance_floor : float;
  initial_learning_epochs : int;
  initial_learning_rate : float;
  incremental_learning_epochs : int;
  incremental_learning_rate : float;
  variational_var_limit : int;
  with_variational : bool;
  disable_sampling : bool;
  disable_variational : bool;
  workload_aware : bool;
  parallel_domains : int;
  gibbs_mode : Par_gibbs.gibbs_mode;
  step_budget : Budget.spec;
  relation_backend : Relation.backend;
  seed : int;
}

let default_options =
  {
    materialization_samples = 200;
    inference_chain = 100;
    burn_in = 20;
    lambda = 0.1;
    acceptance_floor = 0.02;
    initial_learning_epochs = 30;
    initial_learning_rate = 0.1;
    incremental_learning_epochs = 5;
    incremental_learning_rate = 0.03;
    variational_var_limit = 600;
    with_variational = true;
    disable_sampling = false;
    disable_variational = false;
    workload_aware = true;
    parallel_domains = 1;
    gibbs_mode = Par_gibbs.Color_sync;
    step_budget = Budget.Unlimited;
    relation_backend = Relation.Row;
    seed = 42;
  }

type strategy_used =
  | Used_sampling
  | Used_variational
  | Used_full_gibbs

let strategy_used_to_string = function
  | Used_sampling -> "sampling"
  | Used_variational -> "variational"
  | Used_full_gibbs -> "full-gibbs"

type report = {
  strategy : strategy_used;
  grounding_seconds : float;
  learning_seconds : float;
  inference_seconds : float;
  acceptance_rate : float option;
  grounding : Grounding.report;
  marginals : float array;
}

type t = {
  ground : Grounding.t;
  opts : options;
  rng : Prng.t;
  mutable mat : Materialize.t;
  extension_origin : (int, int) Hashtbl.t;
  mutable proposals_used : int;
  mutable last_marginals : float array;
  (* Compiled Gibbs kernel cache: valid as long as the graph's structure
     (and evidence) has not changed since compilation — weight-only
     incremental steps just re-sync the dense slots. *)
  mutable kernel : Compiled.t option;
  mutable kernel_compiles : int;
}

let options t = t.opts

let grounding t = t.ground

let graph t = Grounding.graph t.ground

let materialization t = t.mat

let marginals t = t.last_marginals

let marginals_by_relation t =
  Grounding.marginals_by_relation t.ground t.last_marginals

let kernel_compiles t = t.kernel_compiles

(* Reuse the cached kernel when only weights moved since compile time;
   [apply_update] drops the cache on any structural or evidence delta,
   and [matches_structure] re-checks the counts as a belt-and-braces
   guard against mutation paths that bypass the report. *)
let compiled_kernel t =
  let g = graph t in
  match t.kernel with
  | Some k when Compiled.matches_structure k g ->
    Compiled.refresh_weights k;
    k
  | _ ->
    let k = Compiled.compile g in
    t.kernel <- Some k;
    t.kernel_compiles <- t.kernel_compiles + 1;
    k

let cd_options epochs learning_rate =
  { Learner.default_cd with Learner.epochs; learning_rate; chain_sweeps = 2 }

let learn t ~epochs ~learning_rate =
  if epochs > 0 then
    Learner.train_cd ~options:(cd_options epochs learning_rate) t.rng (graph t)

let materialize_now t =
  t.mat <-
    Materialize.materialize ~n_samples:t.opts.materialization_samples
      ~burn_in:t.opts.burn_in ~lambda:t.opts.lambda
      ~variational_var_limit:t.opts.variational_var_limit
      ~with_variational:t.opts.with_variational
      ~domains:t.opts.parallel_domains t.rng (graph t);
  Hashtbl.reset t.extension_origin;
  t.proposals_used <- 0

let sample_mean_marginals mat nvars =
  let totals = Array.make nvars 0 in
  Array.iter
    (fun world ->
      for v = 0 to min nvars (Array.length world) - 1 do
        if world.(v) then totals.(v) <- totals.(v) + 1
      done)
    mat.Materialize.samples;
  let n = max 1 (Array.length mat.Materialize.samples) in
  Array.map (fun c -> float_of_int c /. float_of_int n) totals

let create ?(options = default_options) db prog =
  (* Settle the storage backend before grounding so derived tables made by
     the evaluator inherit it; tables already on the right backend are
     untouched. *)
  Database.convert_all db options.relation_backend;
  let grounding = Grounding.ground db prog in
  Fault.hit "engine.create.post_ground";
  let t =
    {
      ground = grounding;
      opts = options;
      rng = Prng.create options.seed;
      mat =
        {
          Materialize.samples = [||];
          variational = None;
          base_weights = [||];
          base_factor_count = 0;
          base_var_count = 0;
          base_evidence = [||];
        };
      extension_origin = Hashtbl.create 64;
      proposals_used = 0;
      last_marginals = [||];
      kernel = None;
      kernel_compiles = 0;
    }
  in
  learn t ~epochs:options.initial_learning_epochs
    ~learning_rate:options.initial_learning_rate;
  Fault.hit "engine.create.post_learn";
  materialize_now t;
  t.last_marginals <- sample_mean_marginals t.mat (Graph.num_vars (graph t));
  t

let record_extensions t (greport : Grounding.report) =
  List.iter
    (fun (fid, old_count) ->
      if fid < t.mat.Materialize.base_factor_count && not (Hashtbl.mem t.extension_origin fid)
      then Hashtbl.replace t.extension_origin fid old_count)
    greport.Grounding.change.Metropolis.extended_factors

let apply_update t update =
  (* One budget per update step, polled cooperatively by grounding rounds
     and Gibbs sweeps; [Ticks] specs re-arm deterministically per call. *)
  let budget = Budget.start t.opts.step_budget in
  let greport, grounding_seconds =
    Timer.time (fun () -> Grounding.extend ~budget t.ground update)
  in
  (* Crash here = the database and graph were already mutated by grounding
     but the marginals were not refreshed; recovery must rebuild from the
     pre-update checkpoint and replay the logged update. *)
  Fault.hit "engine.apply_update.post_ground";
  record_extensions t greport;
  (* Structure or evidence moved: the compiled kernel is stale.  A
     weight-only step (incremental learning below) keeps it and merely
     refreshes the dense weight slots on next use. *)
  if
    greport.Grounding.new_vars > 0
    || greport.Grounding.new_factors > 0
    || greport.Grounding.extended > 0
    || greport.Grounding.evidence_changed > 0
  then t.kernel <- None;
  (* Incremental learning: warmstart is implicit (weights are live). *)
  let needs_learning =
    greport.Grounding.evidence_changed > 0
    || greport.Grounding.new_factors > 0
    || greport.Grounding.extended > 0
  in
  let learning_seconds =
    if needs_learning then
      Timer.time_s (fun () ->
          learn t ~epochs:t.opts.incremental_learning_epochs
            ~learning_rate:t.opts.incremental_learning_rate)
    else 0.0
  in
  Fault.hit "engine.apply_update.post_learning";
  let change = Materialize.cumulative_change t.mat (graph t) ~extension_origin:t.extension_origin in
  let profile = Optimizer.profile_of_change change in
  let samples_total = Array.length t.mat.Materialize.samples in
  let exhausted = t.proposals_used + t.opts.inference_chain > samples_total in
  let variational_available =
    t.mat.Materialize.variational <> None && not t.opts.disable_variational
  in
  let sampling_available = samples_total > 0 && not t.opts.disable_sampling in
  let decision =
    if not sampling_available then Optimizer.Variational
    else if not variational_available then Optimizer.Sampling
    else if not t.opts.workload_aware then
      if exhausted then Optimizer.Variational else Optimizer.Sampling
    else Optimizer.choose profile ~samples_exhausted:exhausted
  in
  let strategy, acceptance_rate, marginals, inference_seconds =
    match decision with
    | Optimizer.Sampling when sampling_available ->
      (* Probe the acceptance rate first: a chain needs ~SI/rho proposals
         for SI effective samples, and when the distribution moved too much
         the method "resorts to another evaluation method" (Section
         3.2.2). *)
      let (probe, m_probe), probe_secs =
        Timer.time (fun () ->
            let r =
              Metropolis.infer t.rng change ~stored:t.mat.Materialize.samples
                ~chain_length:(min 150 (Array.length t.mat.Materialize.samples))
            in
            (r.Metropolis.acceptance_rate, r))
      in
      t.proposals_used <- t.proposals_used + m_probe.Metropolis.proposals;
      if probe < t.opts.acceptance_floor && variational_available then begin
        let approx = Option.get t.mat.Materialize.variational in
        let m, extra =
          Timer.time (fun () ->
              Materialize.variational_infer ~sweeps:t.opts.inference_chain
                ~burn_in:t.opts.burn_in t.rng ~approx ~change)
        in
        (Used_variational, Some probe, m, probe_secs +. extra)
      end
      else begin
        let chain_length =
          min
            (t.opts.inference_chain * 10)
            (int_of_float
               (ceil (float_of_int t.opts.inference_chain /. max probe 0.02)))
        in
        let result, secs =
          Timer.time (fun () ->
              Metropolis.infer t.rng change ~stored:t.mat.Materialize.samples
                ~chain_length)
        in
        t.proposals_used <- t.proposals_used + result.Metropolis.proposals;
        (Used_sampling, Some result.Metropolis.acceptance_rate, result.Metropolis.marginals,
         probe_secs +. secs)
      end
    | Optimizer.Variational when variational_available ->
      let approx = Option.get t.mat.Materialize.variational in
      let m, secs =
        Timer.time (fun () ->
            Materialize.variational_infer ~sweeps:t.opts.inference_chain
              ~burn_in:t.opts.burn_in t.rng ~approx ~change)
      in
      (Used_variational, None, m, secs)
    | Optimizer.Sampling | Optimizer.Variational ->
      let m, secs =
        Timer.time (fun () ->
            let kernel = compiled_kernel t in
            if t.opts.parallel_domains > 1 || t.opts.gibbs_mode = Par_gibbs.Async then
              Par_gibbs.marginals ~burn_in:t.opts.burn_in ~budget ~kernel
                ~mode:t.opts.gibbs_mode ~domains:t.opts.parallel_domains t.rng (graph t)
                ~sweeps:t.opts.inference_chain
            else
              Compiled.marginals ~burn_in:t.opts.burn_in ~budget t.rng kernel
                ~sweeps:t.opts.inference_chain)
      in
      (Used_full_gibbs, None, m, secs)
  in
  Fault.hit "engine.apply_update.post_inference";
  t.last_marginals <- marginals;
  {
    strategy;
    grounding_seconds;
    learning_seconds;
    inference_seconds;
    acceptance_rate;
    grounding = greport;
    marginals;
  }

(* --- update transactions -------------------------------------------------- *)

(* Everything [apply_update] can mutate, captured as either a cheap value
   snapshot (rng state, counters, marginals, kernel cache — all small) or
   an undo log over the big mutable stores (relations journal their tuple
   flips, the graph journals in-place slot writes and truncates appends,
   the grounding tables prune by id thresholds).  The clean path therefore
   pays only journal bookkeeping, never a copy of the database or graph. *)
type txn = {
  x_graph_journal : Graph.journal;
  x_gmark : Grounding.mark;
  x_tables : string list;  (* tables existing at begin *)
  x_rel_log : (Relation.t * Tuple.t * int) list ref;  (* newest first *)
  x_journaled : Relation.t list;
  x_rng : Dd_util.Prng.t;
  x_mat : Materialize.t;
  x_origin : (int * int) list;
  x_proposals_used : int;
  x_last_marginals : float array;
  x_kernel : Compiled.t option;
  x_kernel_compiles : int;
}

let txn_begin t =
  let log = ref [] in
  let db = Grounding.database t.ground in
  let tables = Database.table_names db in
  let journaled = List.filter_map (Database.find_opt db) tables in
  List.iter
    (fun rel ->
      Relation.set_journal rel (Some (fun tup prev -> log := (rel, tup, prev) :: !log)))
    journaled;
  {
    x_graph_journal = Graph.journal_begin (graph t);
    x_gmark = Grounding.mark t.ground;
    x_tables = tables;
    x_rel_log = log;
    x_journaled = journaled;
    x_rng = Prng.copy t.rng;
    x_mat = t.mat;
    x_origin = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.extension_origin [];
    x_proposals_used = t.proposals_used;
    x_last_marginals = t.last_marginals;
    x_kernel = t.kernel;
    x_kernel_compiles = t.kernel_compiles;
  }

let detach_journals x = List.iter (fun rel -> Relation.set_journal rel None) x.x_journaled

let txn_commit _t x =
  detach_journals x;
  (* The graph journal was armed by this txn's [journal_begin]; dropping
     it commits the appends. *)
  x.x_rel_log := []

(* Fully idempotent so the supervisor can retry a rollback that was itself
   interrupted: journals detach first (replay must not re-log), every
   restore primitive applies absolute previous values, and the relation
   log is preserved until commit. *)
let txn_rollback t x =
  (* Crash-injection points on the recovery path itself: the supervisor
     retries (bounded) on [Fault.Injected] escaping from here. *)
  Dd_util.Fault.hit "engine.txn_rollback.begin";
  detach_journals x;
  Graph.rollback (graph t) x.x_graph_journal;
  Grounding.rollback t.ground x.x_gmark;
  let db = Grounding.database t.ground in
  (* DRed materializes new derived predicates on demand; drop any table
     that did not exist when the transaction began. *)
  List.iter
    (fun name -> if not (List.mem name x.x_tables) then Database.drop_table db name)
    (Database.table_names db);
  (* Newest-to-oldest replay: the oldest logged count for a tuple is its
     pre-transaction multiplicity, and it is applied last. *)
  List.iter (fun (rel, tup, prev) -> Relation.restore_count rel tup prev) !(x.x_rel_log);
  Dd_util.Fault.hit "engine.txn_rollback.mid_restore";
  Prng.assign t.rng x.x_rng;
  t.mat <- x.x_mat;
  Hashtbl.reset t.extension_origin;
  List.iter (fun (k, v) -> Hashtbl.replace t.extension_origin k v) x.x_origin;
  t.proposals_used <- x.x_proposals_used;
  t.last_marginals <- x.x_last_marginals;
  t.kernel <- x.x_kernel;
  t.kernel_compiles <- x.x_kernel_compiles

let rematerialize t = Timer.time_s (fun () -> materialize_now t)

let rerun ?(options = default_options) db prog =
  let timer = Timer.start () in
  Database.convert_all db options.relation_backend;
  let grounding = Grounding.ground db prog in
  let rng = Prng.create options.seed in
  let g = Grounding.graph grounding in
  Learner.train_cd
    ~options:
      {
        Learner.default_cd with
        Learner.epochs = options.initial_learning_epochs;
        learning_rate = options.initial_learning_rate;
      }
    rng g;
  let marginals =
    if options.parallel_domains > 1 || options.gibbs_mode = Par_gibbs.Async then
      Par_gibbs.marginals ~burn_in:options.burn_in ~mode:options.gibbs_mode
        ~domains:options.parallel_domains rng g ~sweeps:options.inference_chain
    else
      Compiled.marginals ~burn_in:options.burn_in rng (Compiled.compile g)
        ~sweeps:options.inference_chain
  in
  (marginals, Timer.elapsed_s timer)

