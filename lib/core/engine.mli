(** The incremental DeepDive engine (Section 3 end-to-end).

    [create] grounds the program, learns initial weights, and materializes
    both strategies.  [apply_update] then executes one iteration of the
    KBC development loop: incremental grounding (DRed), incremental
    learning (warmstarted contrastive divergence), strategy selection (the
    Section 3.3 optimizer, with lesion switches for the Figure 11
    experiments), and incremental inference against the materialization.

    The deltas are always expressed against the *materialized* baseline, so
    a single materialization serves many successive updates (its cost
    amortizes, Section 4.2); call [rematerialize] to refresh the baseline.

    [rerun] is the paper's Rerun baseline: ground, learn and infer from
    scratch. *)

module Graph = Dd_fgraph.Graph
module Tuple = Dd_relational.Tuple
module Database = Dd_relational.Database

type options = {
  materialization_samples : int;
  inference_chain : int;  (** MH proposals / Gibbs sweeps per inference *)
  burn_in : int;
  lambda : float;  (** variational regularization *)
  acceptance_floor : float;
      (** below this measured MH acceptance rate, re-answer the update with
          the variational artifact ("the method resorts to another
          evaluation method", Section 3.2.2) *)
  initial_learning_epochs : int;
  initial_learning_rate : float;
  incremental_learning_epochs : int;
  incremental_learning_rate : float;
      (** warmstart fine-tuning is gentler than from-scratch learning, which
          also keeps the sampling approach's acceptance rate usable *)
  variational_var_limit : int;
  with_variational : bool;
  disable_sampling : bool;  (** lesion: NoSampling *)
  disable_variational : bool;  (** lesion: NoRelaxation *)
  workload_aware : bool;  (** false = the NoWorkloadInfo baseline *)
  parallel_domains : int;
      (** domains used for materialization sampling and full-Gibbs
          inference ({!Dd_parallel}).  The default 1 keeps the sequential
          code paths and bit-exact seed reproducibility; [N > 1] draws
          materialization worlds from [N] independent chains and runs
          full-Gibbs fallbacks as color-synchronous parallel sweeps —
          deterministic per [(seed, N)], but a different chain than
          [N = 1]. *)
  gibbs_mode : Dd_parallel.Par_gibbs.gibbs_mode;
      (** scheduling of full-Gibbs inference sweeps.  [Color_sync]
          (default) barriers between chromatic color phases and is the
          bit-exact reference; [Async] free-runs
          [max parallel_domains 1] lock-free workers over contiguous
          variable ranges with benign races (DimmWitted-style),
          synchronizing only at epoch boundaries — statistically
          equivalent, not bit-reproducible across domain counts or
          scheduling.  [Async] takes effect even at
          [parallel_domains = 1] (single free-running worker, bit-exact
          with the sequential chain). *)
  step_budget : Dd_util.Budget.spec;
      (** cooperative deadline for one [apply_update] step, polled per
          Gibbs sweep / color phase / async epoch-and-range-chunk and
          per DRed batch; exhaustion raises {!Dd_util.Budget.Exceeded},
          which {!Txn} classifies as [`Inference_timeout].  Default
          [Unlimited]. *)
  relation_backend : Dd_relational.Relation.backend;
      (** storage backend for every table in the engine's database.
          [create]/[rerun] convert the database (and all existing tables)
          to this backend before grounding; derived tables created during
          evaluation inherit it.  [Row] (default) is the hash-table
          reference engine; [Columnar] is the dictionary-encoded column
          store ({!Dd_relational.Column_store}) for large instances.  Both
          produce bit-identical factor graphs and marginals. *)
  seed : int;
}

val default_options : options

type strategy_used =
  | Used_sampling
  | Used_variational
  | Used_full_gibbs  (** fallback when no variational artifact exists *)

val strategy_used_to_string : strategy_used -> string

type report = {
  strategy : strategy_used;
  grounding_seconds : float;
  learning_seconds : float;
  inference_seconds : float;
  acceptance_rate : float option;
  grounding : Grounding.report;
  marginals : float array;
}

type t

val create : ?options:options -> Database.t -> Program.t -> t

val options : t -> options

val grounding : t -> Grounding.t

val graph : t -> Graph.t

val materialization : t -> Materialize.t

val marginals : t -> float array
(** Most recent inference result (initially from materialization-time
    sampling). *)

val marginals_by_relation : t -> (string * Tuple.t * float) list

val kernel_compiles : t -> int
(** How many times the engine has compiled a flat Gibbs kernel
    ({!Dd_inference.Compiled}) for full-Gibbs inference.  Stays flat
    across weight-only incremental steps — the cached kernel is reused
    with refreshed weight slots — and grows only when an update changed
    the graph's structure or evidence. *)

val apply_update : t -> Grounding.update -> report
(** One iteration of the incremental loop.  On an exception (a
    {!Grounding.Error}, {!Dd_util.Budget.Exceeded}, or an injected fault)
    the engine may be left partially mutated — wrap the call in
    {!txn_begin} / {!txn_rollback} (or use {!Txn.apply}, which does) when
    the caller must survive failures. *)

type txn
(** A transaction over one [apply_update]: cheap value snapshots of the
    engine's small mutable state plus undo logs over the database
    relations, the factor graph, and the grounding tables.  The clean
    path pays journal bookkeeping only — no copy of the database or
    graph. *)

val txn_begin : t -> txn
(** Arm the undo logs and snapshot the pre-update state. *)

val txn_commit : t -> txn -> unit
(** Detach the undo logs, keeping the update's effects. *)

val txn_rollback : t -> txn -> unit
(** Restore the engine to its state at {!txn_begin}.  Idempotent: if a
    rollback is itself interrupted (the [engine.txn_rollback.*] fault
    points), running it again converges to the same restored state. *)

val rematerialize : t -> float
(** Refresh the materialized baseline; returns elapsed seconds. *)

val rerun : ?options:options -> Database.t -> Program.t -> float array * float
(** Ground + learn + infer from scratch; returns (marginals, seconds).
    The marginals index the fresh grounding's variables. *)
