module Graph = Dd_fgraph.Graph
module Semantics = Dd_fgraph.Semantics
module Value = Dd_relational.Value
module Tuple = Dd_relational.Tuple
module Relation = Dd_relational.Relation
module Database = Dd_relational.Database
module Ast = Dd_datalog.Ast
module Engine = Dd_datalog.Engine
module Plan = Dd_datalog.Plan
module Dred = Dd_datalog.Dred
module Metropolis = Dd_inference.Metropolis

(* Typed failure taxonomy of the update path, shared with the
   transactional supervisor ({!Txn}): the class decides which rung of the
   degradation ladder can help (retry helps a [`Transient], nothing helps
   a [`Malformed_delta]). *)
type error =
  [ `Malformed_delta of string
  | `Transient of string
  | `Inference_timeout of string
  | `Internal of string ]

exception Error of error

let error_message : error -> string = function
  | `Malformed_delta m -> "malformed delta: " ^ m
  | `Transient m -> "transient: " ^ m
  | `Inference_timeout m -> "inference timeout: " ^ m
  | `Internal m -> "internal: " ^ m

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Grounding.Error (" ^ error_message e ^ ")")
    | _ -> None)

type t = {
  db : Database.t;
  mutable prog : Program.t;
  graph : Graph.t;
  var_table : (string, Graph.var Tuple.Hashtbl.t) Hashtbl.t;
  origins : (Graph.var, string * Tuple.t) Hashtbl.t;
  weight_table : (string, Graph.weight_id) Hashtbl.t;
  weight_names : (Graph.weight_id, string) Hashtbl.t;
  factor_table : (string, int) Hashtbl.t;  (* factor-group key -> factor id *)
  plans : Plan.Cache.t;  (* compiled join plans, shared across incremental steps *)
}

type stats = {
  variables : int;
  factors : int;
  weights : int;
  evidence : int;
}

let graph t = t.graph

let database t = t.db

let program t = t.prog

let stats t =
  {
    variables = Graph.num_vars t.graph;
    factors = Graph.num_factors t.graph;
    weights = Graph.num_weights t.graph;
    evidence = List.length (Graph.evidence_vars t.graph);
  }

let relation_vars t pred =
  match Hashtbl.find_opt t.var_table pred with
  | Some table -> table
  | None ->
    let table = Tuple.Hashtbl.create 64 in
    Hashtbl.replace t.var_table pred table;
    table

let var_of t pred tuple = Tuple.Hashtbl.find_opt (relation_vars t pred) tuple

let origin t v = Hashtbl.find t.origins v

let vars_of_relation t pred =
  Tuple.Hashtbl.fold (fun tuple v acc -> (tuple, v) :: acc) (relation_vars t pred) []

let weight_key_of t w =
  try Hashtbl.find t.weight_names w with Not_found -> "<unknown>"

let marginals_by_relation t marginals =
  List.concat_map
    (fun (pred, _) ->
      List.map (fun (tuple, v) -> (pred, tuple, marginals.(v))) (vars_of_relation t pred))
    t.prog.Program.query_relations

(* --- variable and evidence management ------------------------------------ *)

let create_var t pred tuple =
  let table = relation_vars t pred in
  match Tuple.Hashtbl.find_opt table tuple with
  | Some v -> v
  | None ->
    let v = Graph.add_var t.graph in
    Tuple.Hashtbl.replace table tuple v;
    Hashtbl.replace t.origins v (pred, tuple);
    v

(* Majority label over the evidence companion for one candidate tuple. *)
let evidence_label t query_pred tuple =
  let ev_pred = Program.evidence_relation query_pred in
  match Database.find_opt t.db ev_pred with
  | None -> None
  | Some ev ->
    let arity = Array.length tuple in
    let votes = ref 0 in
    Relation.iter
      (fun ev_tuple _ ->
        if Array.length ev_tuple = arity + 1 then begin
          let args = Array.sub ev_tuple 0 arity in
          if Tuple.equal args tuple then
            match ev_tuple.(arity) with
            | Value.Bool true -> incr votes
            | Value.Bool false -> decr votes
            | _ -> ()
        end)
      ev;
    if !votes > 0 then Some true else if !votes < 0 then Some false else None

let apply_evidence_to_var t query_pred tuple v =
  match evidence_label t query_pred tuple with
  | None -> ()
  | Some label -> Graph.set_evidence t.graph v (Graph.Evidence label)

(* --- factor construction -------------------------------------------------- *)

let term_value env = function
  | Ast.Const c -> c
  | Ast.Var name -> (
    match env name with
    | Some v -> v
    | None ->
      (* A rule whose head or weight mentions a variable its body never
         binds: the program (or the delta that added the rule) is bad. *)
      raise (Error (`Malformed_delta ("unbound variable " ^ name ^ " in rule head or weight"))))

let atom_tuple env (atom : Ast.atom) =
  Array.of_list (List.map (term_value env) atom.Ast.args)

let weight_key (r : Program.inference_rule) env =
  match r.Program.weight with
  | Program.Fixed _ -> r.Program.name ^ "|<fixed>"
  | Program.Tied terms ->
    r.Program.name ^ "|"
    ^ String.concat "," (List.map (fun term -> Value.to_string (term_value env term)) terms)

let find_or_create_weight t (r : Program.inference_rule) key =
  match Hashtbl.find_opt t.weight_table key with
  | Some w -> w
  | None ->
    let value, learnable =
      match r.Program.weight with
      | Program.Fixed w -> (w, false)
      | Program.Tied _ -> (0.0, true)
    in
    let w = Graph.add_weight ~learnable t.graph value in
    Hashtbl.replace t.weight_table key w;
    Hashtbl.replace t.weight_names w key;
    w

exception Missing_candidate of string * Tuple.t

(* The factor body of one grounding: literals over query-relation atoms;
   deterministic atoms are already satisfied by the match and drop out. *)
let grounding_body t env (r : Program.inference_rule) =
  List.filter_map
    (fun literal ->
      let atom = Ast.atom_of_literal literal in
      if Program.is_query_relation t.prog atom.Ast.pred then begin
        let tuple = atom_tuple env atom in
        match var_of t atom.Ast.pred tuple with
        | Some v -> Some { Graph.var = v; negated = not (Ast.is_positive literal) }
        | None -> raise (Missing_candidate (atom.Ast.pred, tuple))
      end
      else None)
    r.Program.body
  |> Array.of_list

(* Weight creation is deferred to {!flush_groups}: creating weights at
   [add_grounding] time would assign weight ids in env-discovery order,
   which differs between storage backends (hash iteration vs sorted runs).
   The group records what is needed to create the weight at flush, where
   groups are processed in sorted key order — so var, weight and factor ids
   are all canonical functions of the grounded content, and the row and
   columnar engines produce bit-identical graphs. *)
type pending_group = {
  head_var : Graph.var;
  rule : Program.inference_rule;
  wkey : string;
  semantics : Semantics.t;
  mutable new_bodies : Graph.literal array list;
}

let group_key (r : Program.inference_rule) head_tuple wkey =
  r.Program.name ^ "#" ^ Tuple.to_string head_tuple ^ "#" ^ wkey

(* Groundings of a non-populating rule that touch a candidate that does
   not exist are dropped, as in DeepDive; for populating rules a missing
   candidate is an internal invariant violation. *)
let rec add_grounding t pending (r : Program.inference_rule) env =
  match add_grounding_strict t pending r env with
  | () -> ()
  | exception Missing_candidate (pred, tuple) ->
    if r.Program.populate_head then
      (* The deterministic pass guarantees a candidate row (and thus a
         variable) for every grounding of a populating rule; a miss means
         the engine's own bookkeeping is inconsistent. *)
      raise
        (Error
           (`Internal
             (Printf.sprintf "no variable for %s%s (rule %s)" pred (Tuple.to_string tuple)
                r.Program.name)))

and add_grounding_strict t pending (r : Program.inference_rule) env =
  let head_tuple = atom_tuple env r.Program.head in
  match var_of t r.Program.head.Ast.pred head_tuple with
  | None -> raise (Missing_candidate (r.Program.head.Ast.pred, head_tuple))
  | Some head_var ->
    let wkey = weight_key r env in
    let key = group_key r head_tuple wkey in
    let body = grounding_body t env r in
    let group =
      match Hashtbl.find_opt pending key with
      | Some g -> g
      | None ->
        let g = { head_var; rule = r; wkey; semantics = r.Program.semantics; new_bodies = [] } in
        Hashtbl.replace pending key g;
        g
    in
    group.new_bodies <- body :: group.new_bodies

(* Flush pending groups into the graph.  Returns (new factor ids, extended
   factors with their prior body counts).  Groups are flushed in sorted key
   order and each group's bodies in sorted literal order, so weight and
   factor ids — and every factor's body layout — depend only on the set of
   groundings, not on the order the storage backend discovered them in. *)
let compare_bodies (a : Graph.literal array) (b : Graph.literal array) =
  compare a b

let flush_groups t pending =
  let keys = Hashtbl.fold (fun key _ acc -> key :: acc) pending [] in
  let keys = List.sort String.compare keys in
  let new_factors = ref [] and extended = ref [] in
  List.iter
    (fun key ->
      let group = Hashtbl.find pending key in
      let bodies = Array.of_list (List.rev group.new_bodies) in
      Array.sort compare_bodies bodies;
      match Hashtbl.find_opt t.factor_table key with
      | Some fid ->
        let old_count = Array.length (Graph.factor t.graph fid).Graph.bodies in
        Graph.extend_factor t.graph fid bodies;
        extended := (fid, old_count) :: !extended
      | None ->
        let weight_id = find_or_create_weight t group.rule group.wkey in
        let fid =
          Graph.add_factor t.graph
            {
              Graph.head = Some group.head_var;
              bodies;
              weight_id;
              semantics = group.semantics;
            }
        in
        Hashtbl.replace t.factor_table key fid;
        new_factors := fid :: !new_factors)
    keys;
  (List.rev !new_factors, List.rev !extended)

let inference_rule_ast (r : Program.inference_rule) =
  Ast.rule ~guards:r.Program.guards r.Program.head r.Program.body

(* --- full grounding ------------------------------------------------------- *)

let ground db prog =
  (match Program.validate prog with
  | Ok () -> ()
  | Error e -> raise (Error (`Malformed_delta ("Grounding.ground: " ^ e))));
  (* Pre-create declared tables so schemas are authoritative. *)
  List.iter
    (fun (name, schema) ->
      if not (Database.mem db name) then ignore (Database.create_table db name schema))
    (prog.Program.input_schemas @ prog.Program.query_relations);
  let plans = Plan.Cache.create () in
  Engine.run_exn ~plans db (Program.deterministic_program prog);
  let t =
    {
      db;
      prog;
      graph = Graph.create ();
      var_table = Hashtbl.create 16;
      origins = Hashtbl.create 1024;
      weight_table = Hashtbl.create 64;
      weight_names = Hashtbl.create 64;
      factor_table = Hashtbl.create 1024;
      plans;
    }
  in
  (* One variable per query tuple, with evidence labels.  Tuples are
     processed in sorted order so var ids do not depend on the storage
     backend's iteration order. *)
  List.iter
    (fun (pred, _) ->
      match Database.find_opt db pred with
      | None -> ()
      | Some rel ->
        let tuples = Relation.fold (fun tuple _ acc -> tuple :: acc) rel [] in
        List.iter
          (fun tuple ->
            let v = create_var t pred tuple in
            apply_evidence_to_var t pred tuple v)
          (List.sort Tuple.compare tuples))
    prog.Program.query_relations;
  (* Ground the inference rules through compiled plans. *)
  let lookup = Plan.view_of_lookup (Engine.lookup_in db) in
  List.iter
    (fun r ->
      let pending = Hashtbl.create 256 in
      let envs =
        Plan.run_bindings (Plan.Cache.full t.plans (inference_rule_ast r)) ~lookup
      in
      List.iter (fun env -> add_grounding t pending r env) envs;
      ignore (flush_groups t pending))
    (Program.inference_rules prog);
  t

let ground_checked db prog =
  match ground db prog with t -> Ok t | exception Error e -> (Error e : (t, error) result)

(* --- incremental grounding ------------------------------------------------ *)

type update = {
  edb : Dred.Delta.t option;
  new_rules : Program.rule list;
}

let data_update delta = { edb = Some delta; new_rules = [] }

let rules_update rules = { edb = None; new_rules = rules }

type report = {
  change : Metropolis.change;
  new_vars : int;
  new_factors : int;
  extended : int;
  evidence_changed : int;
  flips : int;
  needs_rebuild : bool;
}

(* Datalog rules contributed by a program rule (for seeding new rules). *)
let datalog_of_rule = function
  | Program.Deterministic (_, rule) -> [ rule ]
  | Program.Supervise (_, rule) -> [ rule ]
  | Program.Infer r ->
    if r.Program.populate_head then
      [ Ast.rule ~guards:r.Program.guards r.Program.head r.Program.body ]
    else []

let extend ?(budget = Dd_util.Budget.unlimited) t update =
  let phase_timer = Dd_util.Timer.start () in
  let last_phase = ref 0.0 in
  let phase name =
    let now = Dd_util.Timer.elapsed_s phase_timer in
    Logs.debug (fun m -> m "Grounding.extend %s: %.4fs" name (now -. !last_phase));
    last_phase := now
  in
  let old_prog = t.prog in
  let new_prog = Program.add_rules old_prog update.new_rules in
  (match Program.validate new_prog with
  | Ok () -> ()
  | Error e -> raise (Error (`Malformed_delta ("Grounding.extend: " ^ e))));
  let full_program = Program.deterministic_program new_prog in
  let old_inference = Program.inference_rules old_prog in
  (* Evaluate new rules against the pre-update state to seed DRed. *)
  let lookup = Engine.lookup_in t.db in
  let view_lookup = Plan.view_of_lookup lookup in
  let seeds =
    List.concat_map
      (fun rule ->
        List.map
          (fun ast -> (Ast.head_pred ast, Plan.run (Plan.Cache.full t.plans ast) ~lookup:view_lookup))
          (datalog_of_rule rule))
      update.new_rules
  in
  phase "seeds";
  let edb = match update.edb with Some d -> d | None -> Dred.Delta.create () in
  let flips =
    match Dred.apply ~plans:t.plans ~seeds ~budget t.db full_program edb with
    | Ok f -> f
    | Error e -> raise (Error (`Malformed_delta ("Grounding.extend: " ^ e)))
  in
  phase "dred";
  (* Crash here = base tables already mutated by DRed, graph untouched. *)
  Dd_util.Fault.hit "grounding.extend.post_dred";
  t.prog <- new_prog;
  (* Canonicalize a flip list: group the signed entries per tuple (keeping
     each tuple's chronological sign sequence) and replay tuples in sorted
     order.  DRed discovers flips in storage-iteration order, which differs
     between the row and columnar backends; per-tuple chronology is the
     only order that carries meaning (later signs supersede earlier ones),
     so this is semantics-preserving and backend-independent. *)
  let canonical_flips entries =
    let per_tuple = Tuple.Hashtbl.create 16 in
    let tuples = ref [] in
    List.iter
      (fun (tuple, sign) ->
        match Tuple.Hashtbl.find_opt per_tuple tuple with
        | Some signs -> signs := sign :: !signs
        | None ->
          Tuple.Hashtbl.replace per_tuple tuple (ref [ sign ]);
          tuples := tuple :: !tuples)
      entries;
    List.concat_map
      (fun tuple ->
        List.rev_map (fun sign -> (tuple, sign)) !(Tuple.Hashtbl.find per_tuple tuple))
      (List.sort Tuple.compare !tuples)
  in
  (* New variables and clamped deletions. *)
  let new_vars = ref [] in
  let evidence_changes = ref [] in
  let clamped = Hashtbl.create 16 in
  List.iter
    (fun (pred, _) ->
      List.iter
        (fun (tuple, sign) ->
          if sign > 0 then begin
            let v = create_var t pred tuple in
            new_vars := v :: !new_vars;
            apply_evidence_to_var t pred tuple v
          end
          else begin
            match var_of t pred tuple with
            | None -> ()
            | Some v ->
              let old_evidence = Graph.evidence_of t.graph v in
              Graph.set_evidence t.graph v (Graph.Evidence false);
              Hashtbl.replace clamped v ();
              if old_evidence <> Graph.Evidence false then
                evidence_changes := (v, old_evidence) :: !evidence_changes
          end)
        (canonical_flips (Dred.Delta.flips flips pred)))
    new_prog.Program.query_relations;
  (* Evidence companion changes re-label affected candidates. *)
  List.iter
    (fun (pred, _) ->
      let ev_pred = Program.evidence_relation pred in
      let touched = Tuple.Hashtbl.create 16 in
      List.iter
        (fun (ev_tuple, _) ->
          let arity = Array.length ev_tuple - 1 in
          if arity >= 0 then Tuple.Hashtbl.replace touched (Array.sub ev_tuple 0 arity) ())
        (Dred.Delta.flips flips ev_pred);
      let touched = Tuple.Hashtbl.fold (fun tuple () acc -> tuple :: acc) touched [] in
      List.iter
        (fun tuple ->
          match var_of t pred tuple with
          | None -> ()
          | Some v ->
            if not (Hashtbl.mem clamped v) then begin
              let old_evidence = Graph.evidence_of t.graph v in
              let fresh =
                match evidence_label t pred tuple with
                | Some label -> Graph.Evidence label
                | None -> Graph.Query
              in
              if fresh <> old_evidence then begin
                Graph.set_evidence t.graph v fresh;
                evidence_changes := (v, old_evidence) :: !evidence_changes
              end
            end)
        (List.sort Tuple.compare touched))
    new_prog.Program.query_relations;
  phase "vars+evidence";
  (* Staged grounding of existing inference rules over the flips.  The
     pre-update state of every predicate is a snapshot-free [Plan.Patched]
     view reconstructed from the net membership flips DRed reported — the
     old [Relation.copy] of every inference-rule body predicate is gone. *)
  let needs_rebuild = ref false in
  let pending = Hashtbl.create 64 in
  let after_views : (string, Plan.view) Hashtbl.t = Hashtbl.create 16 in
  let after_lookup pred =
    match Hashtbl.find_opt after_views pred with
    | Some v -> v
    | None ->
      let v =
        match Dred.Delta.flips flips pred with
        | [] -> Plan.whole (lookup pred)
        | pred_flips ->
          (* Net sign per tuple: a delete-then-rederive sequence cancels. *)
          let net = Tuple.Hashtbl.create 16 in
          List.iter
            (fun (tuple, sign) ->
              let cur = try Tuple.Hashtbl.find net tuple with Not_found -> 0 in
              Tuple.Hashtbl.replace net tuple (cur + sign))
            pred_flips;
          let minus = Tuple.Hashtbl.create 8 and plus = Tuple.Hashtbl.create 8 in
          Tuple.Hashtbl.iter
            (fun tuple sign ->
              if sign > 0 then Tuple.Hashtbl.replace minus tuple ()
              else if sign < 0 then Tuple.Hashtbl.replace plus tuple ())
            net;
          Plan.patched ~base:(lookup pred) ~minus ~plus
      in
      Hashtbl.replace after_views pred v;
      v
  in
  List.iter
    (fun r ->
      let ast = inference_rule_ast r in
      List.iteri
        (fun pos literal ->
          let pred = (Ast.atom_of_literal literal).Ast.pred in
          match Dred.Delta.flips flips pred with
          | [] -> ()
          | pred_flips ->
            let delta =
              if Ast.is_positive literal then pred_flips
              else List.map (fun (tup, s) -> (tup, -s)) pred_flips
            in
            let groundings =
              Plan.run_bindings_staged
                (Plan.Cache.delta t.plans ast ~delta_pos:pos)
                ~before:view_lookup ~after:after_lookup ~delta
            in
            List.iter
              (fun (env, count) ->
                if count > 0 then add_grounding t pending r env
                else if count < 0 then begin
                  (* A lost grounding is harmless when one of its factor
                     body variables (or head) was clamped false; otherwise
                     the graph would need a rebuild to stay exact. *)
                  match grounding_body t env r with
                  | exception Missing_candidate _ -> ()
                  | body ->
                  let head_tuple = atom_tuple env r.Program.head in
                  let head_clamped =
                    match var_of t r.Program.head.Ast.pred head_tuple with
                    | Some hv -> Hashtbl.mem clamped hv
                    | None -> false
                  in
                  let body_clamped =
                    Array.exists
                      (fun l -> (not l.Graph.negated) && Hashtbl.mem clamped l.Graph.var)
                      body
                  in
                  if not (head_clamped || body_clamped) then needs_rebuild := true
                end)
              groundings)
        r.Program.body)
    old_inference;
  (* Full grounding of brand-new inference rules (post-update state). *)
  List.iter
    (function
      | Program.Infer r ->
        let envs =
          Plan.run_bindings
            (Plan.Cache.full t.plans (inference_rule_ast r))
            ~lookup:view_lookup
        in
        List.iter (fun env -> add_grounding t pending r env) envs
      | Program.Deterministic _ | Program.Supervise _ -> ())
    update.new_rules;
  phase "staged-factors";
  let new_factor_ids, extended_factors = flush_groups t pending in
  let change =
    {
      Metropolis.graph = t.graph;
      new_factor_ids;
      extended_factors;
      changed_weights = [];
      new_vars = !new_vars;
      evidence_changes = !evidence_changes;
    }
  in
  {
    change;
    new_vars = List.length !new_vars;
    new_factors = List.length new_factor_ids;
    extended = List.length extended_factors;
    evidence_changed = List.length !evidence_changes;
    flips = Dred.Delta.total flips;
    needs_rebuild = !needs_rebuild;
  }

let extend_checked ?budget t update =
  match extend ?budget t update with
  | report -> Ok report
  | exception Error e -> (Error e : (report, error) result)

(* --- transactional marks -------------------------------------------------- *)

(* The grounding tables are append-only keyed by graph ids (vars, weights,
   factors monotonically increasing), so a pre-update snapshot is just the
   three counters plus the program value; rollback prunes every entry at
   or above a recorded counter.  The graph itself is rolled back
   separately ({!Graph.rollback}), and the database through the relation
   journals — both owned by the engine's transaction. *)
type mark = {
  m_prog : Program.t;
  m_vars : int;
  m_weights : int;
  m_factors : int;
}

let mark t =
  {
    m_prog = t.prog;
    m_vars = Graph.num_vars t.graph;
    m_weights = Graph.num_weights t.graph;
    m_factors = Graph.num_factors t.graph;
  }

(* Idempotent: pruning by id thresholds converges, and the plan cache is
   keyed by rule ASTs so entries for rolled-back rules are merely unused,
   never wrong. *)
let rollback t m =
  t.prog <- m.m_prog;
  Hashtbl.iter
    (fun _pred table ->
      let doomed =
        Tuple.Hashtbl.fold
          (fun tuple v acc -> if v >= m.m_vars then (tuple, v) :: acc else acc)
          table []
      in
      List.iter
        (fun (tuple, v) ->
          Tuple.Hashtbl.remove table tuple;
          Hashtbl.remove t.origins v)
        doomed)
    t.var_table;
  let doomed_weights =
    Hashtbl.fold
      (fun key w acc -> if w >= m.m_weights then (key, w) :: acc else acc)
      t.weight_table []
  in
  List.iter
    (fun (key, w) ->
      Hashtbl.remove t.weight_table key;
      Hashtbl.remove t.weight_names w)
    doomed_weights;
  let doomed_factors =
    Hashtbl.fold
      (fun key fid acc -> if fid >= m.m_factors then key :: acc else acc)
      t.factor_table []
  in
  List.iter (Hashtbl.remove t.factor_table) doomed_factors
