(** Grounding: from a DeepDive program and a database to a factor graph
    (the first phase of Section 2.5), plus *incremental* grounding (the
    first phase of Section 3).

    Full grounding evaluates the deterministic datalog program, creates one
    Boolean random variable per query-relation tuple, applies evidence from
    the [_ev] companions, and grounds one factor per (inference rule, head
    tuple, weight key) group with one body per rule grounding — so
    [n(gamma, I)] of Equation 1 is the number of satisfied bodies.

    Incremental grounding ([extend]) applies base-table changes through
    DRed, evaluates newly added rules, and updates the live graph in place:
    new variables, new factors, extended factors (new groundings of an
    existing group) and evidence changes.  Its output is a
    {!Dd_inference.Metropolis.change} — the [(Delta V, Delta F)] the
    incremental-inference phase consumes.

    Deletions: tuples leaving a query relation have their variable clamped
    to [Evidence false], which deactivates every factor body mentioning
    them — energy-exact for conjunctive bodies.  A lost grounding whose
    vanished support was a purely deterministic tuple cannot be expressed
    that way; [needs_rebuild] reports it so the engine can fall back to a
    full reground (our workloads, like the paper's KBC updates, are
    additive). *)

module Graph = Dd_fgraph.Graph
module Tuple = Dd_relational.Tuple
module Database = Dd_relational.Database
module Dred = Dd_datalog.Dred
module Metropolis = Dd_inference.Metropolis

type t

type error =
  [ `Malformed_delta of string
    (** the update (or the program it produced) is itself bad — no amount
        of retrying or re-running will make it apply *)
  | `Transient of string
    (** environmental, worth retrying (injected faults classify here) *)
  | `Inference_timeout of string  (** a cooperative {!Dd_util.Budget} expired *)
  | `Internal of string  (** engine invariant violation *) ]
(** Typed failure taxonomy of the update path.  Exposed as a polymorphic
    variant so the transactional supervisor ({!Txn}) and the engine
    boundary share it structurally. *)

exception Error of error

val error_message : error -> string

type stats = {
  variables : int;
  factors : int;
  weights : int;
  evidence : int;
}

val ground : Database.t -> Program.t -> t
(** Full grounding.  Raises {!Error} ([`Malformed_delta]) on an invalid
    program — a raising convenience wrapper over {!ground_checked} for
    callers who treat a bad program as fatal. *)

val ground_checked : Database.t -> Program.t -> (t, error) result
(** Like {!ground}, with the failure as data instead of an exception. *)

val graph : t -> Graph.t

val database : t -> Database.t

val program : t -> Program.t

val stats : t -> stats

val var_of : t -> string -> Tuple.t -> Graph.var option
(** Variable of a query-relation tuple. *)

val origin : t -> Graph.var -> string * Tuple.t

val vars_of_relation : t -> string -> (Tuple.t * Graph.var) list

val weight_key_of : t -> Graph.weight_id -> string
(** Human-readable weight key ("rule|feature"), for inspection. *)

val marginals_by_relation :
  t -> float array -> (string * Tuple.t * float) list
(** Pair each query tuple with its inferred marginal. *)

type update = {
  edb : Dred.Delta.t option;  (** base-table changes *)
  new_rules : Program.rule list;  (** rules appended to the program *)
}

val data_update : Dred.Delta.t -> update

val rules_update : Program.rule list -> update

type report = {
  change : Metropolis.change;
  new_vars : int;
  new_factors : int;
  extended : int;
  evidence_changed : int;
  flips : int;  (** total membership flips propagated by DRed *)
  needs_rebuild : bool;
}

val extend : ?budget:Dd_util.Budget.t -> t -> update -> report
(** Incremental grounding: mutates the database, program and graph held by
    [t] and describes the graph delta.  Raises {!Error} on failure:
    [`Malformed_delta] for an invalid post-delta program or a DRed
    rejection, [`Internal] for engine invariant violations.  [budget] is
    polled once per DRed batch and per recursive-stratum recompute.

    On a raise the database and graph may be left partially mutated — run
    [extend] under an engine transaction ({!Engine.txn_begin} /
    {!Txn.apply}) when that matters. *)

val extend_checked : ?budget:Dd_util.Budget.t -> t -> update -> (report, error) result
(** Like {!extend}, with the failure as data instead of an exception. *)

type mark
(** Pre-update snapshot of the grounding's lookup tables (counters plus
    the program value — the tables are append-only keyed by graph ids). *)

val mark : t -> mark

val rollback : t -> mark -> unit
(** Prune every variable / weight / factor table entry created after
    {!mark} and restore the program.  Pair with {!Graph.rollback} (the
    graph) and the relation journals (the database); idempotent. *)
