module Graph = Dd_fgraph.Graph
module Exact = Dd_fgraph.Exact
module Gibbs = Dd_inference.Gibbs
module Metropolis = Dd_inference.Metropolis
module Approx = Dd_variational.Approx
module Par_gibbs = Dd_parallel.Par_gibbs
module Prng = Dd_util.Prng
module Timer = Dd_util.Timer

type strawman = { worlds : (bool array * float) array }

let strawman g = { worlds = Array.of_list (Exact.enumerate g) }

let strawman_marginals s change =
  let nvars = Graph.num_vars change.Metropolis.graph in
  (* Reweight each stored world by exp(delta); new variables do not exist
     in stored worlds and are marginalized by extending each world both
     ways would be exponential — the strawman is only used on unchanged
     variable sets, so we require none. *)
  if change.Metropolis.new_vars <> [] then
    invalid_arg "Materialize.strawman_marginals: strawman cannot absorb new variables";
  let reweighted =
    Array.map
      (fun (world, p) ->
        let delta = Metropolis.delta_log_weight change world in
        (world, p *. exp delta))
      s.worlds
  in
  let z = Array.fold_left (fun acc (_, p) -> acc +. p) 0.0 reweighted in
  let marginals = Array.make nvars 0.0 in
  Array.iter
    (fun (world, p) ->
      for v = 0 to min nvars (Array.length world) - 1 do
        if world.(v) then marginals.(v) <- marginals.(v) +. p
      done)
    reweighted;
  Array.map (fun m -> if z > 0.0 then m /. z else 0.0) marginals

type t = {
  samples : bool array array;
  variational : Graph.t option;
  base_weights : float array;
  base_factor_count : int;
  base_var_count : int;
  base_evidence : Graph.evidence array;
}

let baseline g =
  ( Array.init (Graph.num_weights g) (Graph.weight_value g),
    Graph.num_factors g,
    Graph.num_vars g,
    Array.init (Graph.num_vars g) (Graph.evidence_of g) )

let materialize ?(n_samples = 200) ?(burn_in = 20) ?(lambda = 0.1)
    ?(variational_var_limit = 600) ?(with_variational = true) ?(domains = 1) rng g =
  (* [domains = 1] is Gibbs.sample_worlds bit-for-bit; above that the
     sample store is drawn by independent chains, one per domain. *)
  let samples = Par_gibbs.sample_worlds ~burn_in ~domains rng g ~n:n_samples in
  let variational =
    if with_variational && Graph.num_vars g <= variational_var_limit then begin
      let approx, _stats = Approx.materialize ~lambda rng g ~samples in
      Some approx
    end
    else None
  in
  let base_weights, base_factor_count, base_var_count, base_evidence = baseline g in
  { samples; variational; base_weights; base_factor_count; base_var_count; base_evidence }

let materialize_within_budget ?(burn_in = 20) rng g ~seconds =
  let timer = Timer.start () in
  let assignment = Gibbs.init_assignment rng g in
  for _ = 1 to burn_in do
    Gibbs.sweep rng g assignment
  done;
  let acc = ref [] in
  while Timer.elapsed_s timer < seconds do
    Gibbs.sweep rng g assignment;
    acc := Array.copy assignment :: !acc
  done;
  let base_weights, base_factor_count, base_var_count, base_evidence = baseline g in
  {
    samples = Array.of_list (List.rev !acc);
    variational = None;
    base_weights;
    base_factor_count;
    base_var_count;
    base_evidence;
  }

let cumulative_change m g ~extension_origin =
  let new_factor_ids =
    List.init (Graph.num_factors g - m.base_factor_count) (fun i -> m.base_factor_count + i)
  in
  let new_vars =
    List.init (Graph.num_vars g - m.base_var_count) (fun i -> m.base_var_count + i)
  in
  let extended_factors =
    Hashtbl.fold
      (fun fid original acc ->
        if fid < m.base_factor_count then (fid, original) :: acc else acc)
      extension_origin []
  in
  let changed_weights = ref [] in
  for w = 0 to Array.length m.base_weights - 1 do
    let now = Graph.weight_value g w in
    if now <> m.base_weights.(w) then changed_weights := (w, m.base_weights.(w)) :: !changed_weights
  done;
  let evidence_changes = ref [] in
  for v = 0 to m.base_var_count - 1 do
    let now = Graph.evidence_of g v in
    if now <> m.base_evidence.(v) then evidence_changes := (v, m.base_evidence.(v)) :: !evidence_changes
  done;
  {
    Metropolis.graph = g;
    new_factor_ids;
    extended_factors;
    changed_weights = !changed_weights;
    new_vars;
    evidence_changes = !evidence_changes;
  }

exception Format_error = Dd_fgraph.Serialize.Format_error

let fail fmt = Printf.ksprintf (fun m -> raise (Format_error m)) fmt

(* The persisted artifact: a small header, one compact line per sample
   (1 character per variable), the baseline snapshot, and the variational
   graph embedded in its own format when present. *)
let save path t =
  (* Atomic publish, mirroring [Serialize.save]: an interrupted save must
     never leave a truncated materialization at the target path. *)
  let tmp = path ^ ".tmp" in
  let out = open_out tmp in
  (try
      Printf.fprintf out "ddmat 1\n";
      Printf.fprintf out "samples %d %d\n" (Array.length t.samples) t.base_var_count;
      Array.iter
        (fun world ->
          let line = Bytes.make (Array.length world) '0' in
          Array.iteri (fun i v -> if v then Bytes.set line i '1') world;
          Printf.fprintf out "%s\n" (Bytes.to_string line))
        t.samples;
      Printf.fprintf out "baseline %d %d\n" t.base_factor_count t.base_var_count;
      Printf.fprintf out "weights %d\n" (Array.length t.base_weights);
      Array.iter (fun w -> Printf.fprintf out "%.17g\n" w) t.base_weights;
      let evidence_char = function
        | Graph.Query -> 'q'
        | Graph.Evidence true -> 't'
        | Graph.Evidence false -> 'f'
      in
      let line = Bytes.make (Array.length t.base_evidence) 'q' in
      Array.iteri (fun i e -> Bytes.set line i (evidence_char e)) t.base_evidence;
      Printf.fprintf out "evidence %s\n" (Bytes.to_string line);
      (match t.variational with
      | None -> Printf.fprintf out "variational 0\n"
      | Some approx ->
        Printf.fprintf out "variational 1\n";
        Dd_fgraph.Serialize.write out approx);
      Printf.fprintf out "end\n";
      close_out out
  with e ->
    close_out_noerr out;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Dd_util.Fault.hit "materialize.save.pre_rename";
  Sys.rename tmp path

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line () = try input_line ic with End_of_file -> fail "unexpected end of file" in
      (match String.split_on_char ' ' (line ()) with
      | [ "ddmat"; "1" ] -> ()
      | _ -> fail "bad header (expected 'ddmat 1')");
      let nsamples, width =
        match String.split_on_char ' ' (line ()) with
        | [ "samples"; n; w ] -> (
          match (int_of_string_opt n, int_of_string_opt w) with
          | Some n, Some w -> (n, w)
          | _ -> fail "bad samples line")
        | _ -> fail "expected samples line"
      in
      let samples =
        Array.init nsamples (fun _ ->
            let l = line () in
            if String.length l <> width then fail "sample width mismatch";
            Array.init width (fun i -> l.[i] = '1'))
      in
      let base_factor_count, base_var_count =
        match String.split_on_char ' ' (line ()) with
        | [ "baseline"; f; v ] -> (
          match (int_of_string_opt f, int_of_string_opt v) with
          | Some f, Some v -> (f, v)
          | _ -> fail "bad baseline line")
        | _ -> fail "expected baseline line"
      in
      let nweights =
        match String.split_on_char ' ' (line ()) with
        | [ "weights"; n ] -> (
          match int_of_string_opt n with Some n -> n | None -> fail "bad weights count")
        | _ -> fail "expected weights line"
      in
      let base_weights =
        Array.init nweights (fun _ ->
            match float_of_string_opt (line ()) with
            | Some w -> w
            | None -> fail "bad weight value")
      in
      let base_evidence =
        match String.split_on_char ' ' (line ()) with
        | [ "evidence"; chars ] ->
          Array.init (String.length chars) (fun i ->
              match chars.[i] with
              | 'q' -> Graph.Query
              | 't' -> Graph.Evidence true
              | 'f' -> Graph.Evidence false
              | c -> fail "bad evidence flag %c" c)
        | [ "evidence" ] -> [||]
        | _ -> fail "expected evidence line"
      in
      let variational =
        match String.split_on_char ' ' (line ()) with
        | [ "variational"; "0" ] -> None
        | [ "variational"; "1" ] -> Some (Dd_fgraph.Serialize.read ic)
        | _ -> fail "expected variational line"
      in
      (match line () with "end" -> () | other -> fail "expected end, found %s" other);
      { samples; variational; base_weights; base_factor_count; base_var_count; base_evidence })

(* Import one factor of the updated full graph into the approximate graph,
   mapping its weight to a fresh weight carrying the current value. *)
let import_factor approx full (f : Graph.factor) ~bodies =
  let w = Graph.add_weight approx (Graph.weight_value full f.Graph.weight_id) in
  ignore
    (Graph.add_factor approx
       { Graph.head = f.Graph.head; bodies; weight_id = w; semantics = f.Graph.semantics })

let variational_infer ?(sweeps = 200) ?(burn_in = 20) rng ~approx ~change =
  let full = change.Metropolis.graph in
  let working = Graph.copy approx in
  (* New variables (evidence synced below). *)
  for _ = Graph.num_vars working to Graph.num_vars full - 1 do
    ignore (Graph.add_var working)
  done;
  (* Sync evidence across the whole graph. *)
  for v = 0 to Graph.num_vars full - 1 do
    Graph.set_evidence working v (Graph.evidence_of full v)
  done;
  (* New factors come over verbatim (with their current weights). *)
  List.iter
    (fun fid ->
      let f = Graph.factor full fid in
      import_factor working full f ~bodies:f.Graph.bodies)
    change.Metropolis.new_factor_ids;
  (* Extended factors contribute their delta bodies as additional factors
     (exact under linear semantics; a documented approximation otherwise). *)
  List.iter
    (fun (fid, old_count) ->
      let f = Graph.factor full fid in
      let total = Array.length f.Graph.bodies in
      if total > old_count then begin
        let bodies = Array.sub f.Graph.bodies old_count (total - old_count) in
        import_factor working full f ~bodies
      end)
    change.Metropolis.extended_factors;
  Gibbs.marginals ~burn_in rng working ~sweeps

(* Keep Prng in the interface-facing signature without an unused-module
   warning. *)
let _ = Prng.create
