(** The three materialization strategies of Section 3.2.

    - {b Strawman} (3.2.1): store the probability of every possible world.
      Perfect fidelity, exponential cost — usable below ~20 variables and
      kept as the fidelity baseline of Figure 5(a).
    - {b Sampling} (3.2.2): store worlds drawn from the original
      distribution (MCDB-style tuple bundles); incremental inference reuses
      them as independent Metropolis-Hastings proposals.
    - {b Variational} (3.2.3): store a sparser approximate graph obtained
      from the log-determinant relaxation; incremental inference applies
      the update to the approximate graph and runs Gibbs directly.

    {!materialize} produces the combined artifact the engine defers its
    strategy choice over (Section 3.3: "materialize the factor graph using
    both approaches, and defer the decision to the inference phase"),
    together with the baseline snapshot (weights, factor/variable counts,
    evidence) needed to express later updates as deltas against the
    materialized distribution. *)

module Graph = Dd_fgraph.Graph
module Metropolis = Dd_inference.Metropolis

(** {1 Strawman} *)

type strawman = { worlds : (bool array * float) array }

val strawman : Graph.t -> strawman
(** Enumerate and store every world with its probability.  Raises on graphs
    beyond {!Dd_fgraph.Exact.max_enumerable} query variables. *)

val strawman_marginals : strawman -> Metropolis.change -> float array
(** Exact marginals under the changed distribution: each stored world is
    reweighted by [exp (delta log-weight)] — no access to original factors. *)

(** {1 Combined materialization} *)

type t = {
  samples : bool array array;
  variational : Graph.t option;  (** absent above [variational_var_limit] *)
  base_weights : float array;
  base_factor_count : int;
  base_var_count : int;
  base_evidence : Graph.evidence array;
}

val materialize :
  ?n_samples:int ->
  ?burn_in:int ->
  ?lambda:float ->
  ?variational_var_limit:int ->
  ?with_variational:bool ->
  ?domains:int ->
  Dd_util.Prng.t ->
  Graph.t ->
  t
(** Draw [n_samples] (default 200) worlds and, when the graph is small
    enough (default limit 600 variables) and [with_variational] (default
    true), build the approximate graph from the same samples.  [domains]
    (default 1, the bit-exact sequential path) draws the worlds from that
    many independent chains in parallel via
    {!Dd_parallel.Par_gibbs.sample_worlds}. *)

val materialize_within_budget :
  ?burn_in:int -> Dd_util.Prng.t -> Graph.t -> seconds:float -> t
(** Best-effort materialization: keep drawing samples until the wall-clock
    budget runs out (the paper's "as many samples as possible when idle"
    policy, Figure 15); no variational artifact. *)

(** {1 Inference against the materialization} *)

val cumulative_change :
  t -> Graph.t -> extension_origin:(int, int) Hashtbl.t -> Metropolis.change
(** Describe the current graph as a delta against the materialized
    baseline: factors/variables beyond the baseline counts are new, learnable
    weights that moved are weight changes, evidence flips are evidence
    changes, and [extension_origin] maps pre-existing factors to their body
    count at materialization time. *)

val save : string -> t -> unit
(** Persist the materialization (samples, baseline, optional variational
    graph) to a file — the artifact is built "overnight" and reused across
    sessions, so it must survive the process. *)

val load : string -> t
(** Raises [Dd_fgraph.Serialize.Format_error] on malformed input. *)

val variational_infer :
  ?sweeps:int ->
  ?burn_in:int ->
  Dd_util.Prng.t ->
  approx:Graph.t ->
  change:Metropolis.change ->
  float array
(** Apply the update to (a copy of) the approximate graph — importing new
    variables, evidence, new factors and extension bodies with their current
    weights — and estimate marginals by Gibbs sampling on the result. *)
