(* Transactional update application with a graceful-degradation ladder.

   [apply] runs one [Engine.apply_update] under an engine transaction
   (undo logs over the database, graph and grounding tables).  Any
   exception — including every fault-injection point — rolls the engine
   back to a validated pre-update state; the failure is classified into
   the {!Grounding.error} taxonomy and the supervisor walks down:

     retry (transients only, bounded, deterministic exponential backoff)
       -> rematerialize and retry
       -> full rerun from scratch (fresh [Engine.create]) and retry
       -> quarantine the update into the dead-letter queue

   so one poison batch never wedges the pipeline.  DeepDive already falls
   back from incremental to full re-execution when the optimizer predicts
   incremental is unprofitable (Section 3.3); the ladder extends that
   idea from a performance choice to a correctness mechanism.

   Backoff delays are drawn from a dedicated [Prng] stream seeded by
   [options.backoff_seed], and [options.sleep] defaults to a no-op, so
   the whole ladder is deterministic and wall-clock-free under test. *)

module Graph = Dd_fgraph.Graph
module Database = Dd_relational.Database
module Prng = Dd_util.Prng
module Fault = Dd_util.Fault
module Budget = Dd_util.Budget
module Crc32 = Dd_util.Crc32

type error = Grounding.error

let error_message = Grounding.error_message

type options = {
  max_retries : int;
  backoff_base_s : float;
  backoff_seed : int;
  rollback_retries : int;
  allow_rematerialize : bool;
  allow_rerun : bool;
  sleep : float -> unit;
}

let default_options =
  {
    max_retries = 2;
    backoff_base_s = 0.05;
    backoff_seed = 97;
    rollback_retries = 2;
    allow_rematerialize = true;
    allow_rerun = true;
    sleep = (fun _ -> ());
  }

type rung =
  | Direct
  | Retry of int
  | Rematerialize
  | Rerun

let rung_to_string = function
  | Direct -> "direct"
  | Retry k -> Printf.sprintf "retry-%d" k
  | Rematerialize -> "rematerialize"
  | Rerun -> "rerun"

type outcome = {
  report : Engine.report;
  rung : rung;
  attempts : int;
  backoffs_s : float list;
}

type dead_letter = {
  seq : int;
  error : error;
  attempts : int;
  payload : string;
}

type event =
  | Committed of outcome
  | Degraded of rung
  | Quarantined of dead_letter

type t = {
  mutable engine : Engine.t;
  topts : options;
  backoff_rng : Prng.t;
  mutable seq : int;
  mutable dead : dead_letter list;  (* newest first *)
  mutable commits : int;
  mutable observers : (event -> unit) list;  (* registration order *)
}

let create ?(options = default_options) engine =
  {
    engine;
    topts = options;
    backoff_rng = Prng.create options.backoff_seed;
    seq = 0;
    dead = [];
    commits = 0;
    observers = [];
  }

let engine t = t.engine

let dead_letters t = List.rev t.dead

let commits t = t.commits

let on_event t f = t.observers <- t.observers @ [ f ]

let emit t event = List.iter (fun f -> f event) t.observers

let restore_dead_letters (t : t) (letters : dead_letter list) =
  List.iter (fun (dl : dead_letter) -> t.seq <- max t.seq dl.seq) letters;
  t.dead <- List.rev_append letters t.dead

(* --- error classification ------------------------------------------------- *)

let classify : exn -> error = function
  | Grounding.Error e -> e
  | Budget.Exceeded site -> `Inference_timeout ("step budget exhausted at " ^ site)
  | Fault.Injected name -> `Transient ("injected fault at " ^ name)
  | Invalid_argument m ->
    (* Precondition violations at the storage boundary (schema
       nonconformance, unknown base table) are the delta's fault. *)
    `Malformed_delta m
  | Failure m -> `Internal m
  | e -> `Internal (Printexc.to_string e)

(* --- dead-letter payloads ------------------------------------------------- *)

(* Replayable serialized delta: a magic line, a CRC-32 line over the
   marshalled update, then the marshalled bytes — same footer discipline
   as the checkpoint WAL. *)
let payload_magic = "ddtxn 1"

let encode_update (update : Grounding.update) =
  let body = Marshal.to_string update [] in
  Printf.sprintf "%s\n%s\n%s" payload_magic (Crc32.to_hex (Crc32.string body)) body

let decode_update payload =
  let fail m = Error ("Txn.decode_update: " ^ m) in
  match String.index_opt payload '\n' with
  | None -> fail "missing magic line"
  | Some i -> (
    if String.sub payload 0 i <> payload_magic then fail "bad magic"
    else
      match String.index_from_opt payload (i + 1) '\n' with
      | None -> fail "missing checksum line"
      | Some j ->
        let crc_line = String.sub payload (i + 1) (j - i - 1) in
        let body = String.sub payload (j + 1) (String.length payload - j - 1) in
        (match Crc32.of_hex crc_line with
        | None -> fail "unparseable checksum"
        | Some crc ->
          if Crc32.string body <> crc then fail "checksum mismatch"
          else
            (match Marshal.from_string body 0 with
            | (update : Grounding.update) -> Ok update
            | exception _ -> fail "unmarshal failed")))

let decode_dead_letter dl = decode_update dl.payload

(* --- the ladder ----------------------------------------------------------- *)

let validate_engine engine =
  match Graph.validate (Engine.graph engine) with
  | Error m -> Error (`Internal ("post-rollback graph validation: " ^ m))
  | Ok () -> (
    match Database.validate (Grounding.database (Engine.grounding engine)) with
    | Error m -> Error (`Internal ("post-rollback database validation: " ^ m))
    | Ok () -> Ok ())

(* Rollback under injection: the [engine.txn_rollback.*] points may fire
   mid-rollback.  Rollback is idempotent, so retry a bounded number of
   times; if injection persists (e.g. a point armed at probability 1.0),
   run the final attempt with injection suppressed rather than abandon
   the engine half-restored.  Non-injected exceptions propagate — a
   rollback that genuinely cannot complete is unrecoverable here. *)
let rollback_guarded t x =
  let rec attempt k =
    match Engine.txn_rollback t.engine x with
    | () -> ()
    | exception e when Fault.is_injected e ->
      if k < t.topts.rollback_retries then attempt (k + 1)
      else Fault.with_suppressed (fun () -> Engine.txn_rollback t.engine x)
  in
  attempt 0

(* One transactional attempt: begin, apply, commit — or classify, roll
   back, and re-validate the restored state. *)
let try_once t update =
  let x = Engine.txn_begin t.engine in
  match Engine.apply_update t.engine update with
  | report ->
    Engine.txn_commit t.engine x;
    Ok report
  | exception e ->
    let err = classify e in
    rollback_guarded t x;
    (match validate_engine t.engine with
    | Ok () -> Error err
    | Error e2 -> Error e2)

let apply t update =
  let attempts = ref 0 in
  let backoffs = ref [] in
  let attempt () =
    incr attempts;
    try_once t update
  in
  let finish rung report =
    let outcome = { report; rung; attempts = !attempts; backoffs_s = List.rev !backoffs } in
    t.commits <- t.commits + 1;
    emit t (Committed outcome);
    Ok outcome
  in
  let quarantine err =
    t.seq <- t.seq + 1;
    let dl = { seq = t.seq; error = err; attempts = !attempts; payload = encode_update update } in
    t.dead <- dl :: t.dead;
    emit t (Quarantined dl);
    Error err
  in
  (* Rung 0/1: direct attempt, then bounded retry with deterministic
     exponential backoff — transients only; a malformed delta or a
     deterministic timeout will not pass on a second try. *)
  let rec retry k err =
    match err with
    | `Transient _ when k <= t.topts.max_retries ->
      let delay =
        t.topts.backoff_base_s
        *. (2.0 ** float_of_int (k - 1))
        *. (0.5 +. Prng.float_unit t.backoff_rng)
      in
      backoffs := delay :: !backoffs;
      emit t (Degraded (Retry k));
      t.topts.sleep delay;
      (match attempt () with Ok r -> Ok (Retry k, r) | Error e -> retry (k + 1) e)
    | _ -> Error err
  in
  let direct = match attempt () with Ok r -> Ok (Direct, r) | Error e -> retry 1 e in
  match direct with
  | Ok (rung, r) -> finish rung r
  | Error err1 -> (
    (* Rung 2: refresh the materialized baseline, then retry once.  A
       stale or exhausted materialization (dead sample store, drifted
       variational artifact) is repaired here. *)
    let remat =
      if not t.topts.allow_rematerialize then Error err1
      else begin
        emit t (Degraded Rematerialize);
        match Engine.rematerialize t.engine with
        | _seconds -> (
          match attempt () with Ok r -> Ok (Rematerialize, r) | Error e -> Error e)
        | exception e -> Error (classify e)
      end
    in
    match remat with
    | Ok (rung, r) -> finish rung r
    | Error err2 -> (
      (* Rung 3: re-execution as the universal recovery path — build a
         fresh engine from scratch over the rolled-back database and
         program, then apply the update to it.  On success the fresh
         engine replaces the old one. *)
      let rerun =
        if not t.topts.allow_rerun then Error err2
        else begin
          emit t (Degraded Rerun);
          match
            Fault.hit "txn.rerun.pre_create";
            let ground = Engine.grounding t.engine in
            Engine.create ~options:(Engine.options t.engine) (Grounding.database ground)
              (Grounding.program ground)
          with
          | fresh -> (
            t.engine <- fresh;
            match attempt () with Ok r -> Ok (Rerun, r) | Error e -> Error e)
          | exception e -> Error (classify e)
        end
      in
      match rerun with
      | Ok (rung, r) -> finish rung r
      | Error err3 -> quarantine err3))

let replay t dl =
  match decode_dead_letter dl with
  | Error m -> Error (`Malformed_delta m)
  | Ok update -> (
    match apply t update with
    | Ok outcome ->
      t.dead <- List.filter (fun (d : dead_letter) -> d.seq <> dl.seq) t.dead;
      Ok outcome
    | Error _ as e -> e)
