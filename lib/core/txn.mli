(** Transactional update application with a graceful-degradation ladder.

    {!apply} runs one {!Engine.apply_update} under an engine transaction
    ({!Engine.txn_begin}); on any failure the engine is rolled back to a
    validated pre-update state and the supervisor walks the ladder:

    - bounded {b retry} with deterministic exponential backoff (transient
      failures only),
    - {b rematerialize} the inference baseline and retry,
    - full {b rerun}: rebuild a fresh engine from scratch over the
      rolled-back database and program, then retry,
    - {b quarantine}: park the update in the dead-letter queue with its
      error, attempt count and a replayable serialized delta.

    A poison update therefore costs one rejected batch, never a wedged
    pipeline.  Backoff delays come from a dedicated PRNG stream and the
    sleep hook defaults to a no-op, so tests are deterministic and
    wall-clock-free. *)

type error = Grounding.error

val error_message : error -> string

type options = {
  max_retries : int;  (** retry rung width; transients only *)
  backoff_base_s : float;  (** delay before retry [k] is
      [base * 2^(k-1) * (0.5 + u)] with [u] from the backoff stream *)
  backoff_seed : int;
  rollback_retries : int;
      (** extra attempts when the rollback itself is hit by an injected
          fault, before a final attempt with injection suppressed *)
  allow_rematerialize : bool;
  allow_rerun : bool;
  sleep : float -> unit;  (** called with each backoff delay; default no-op *)
}

val default_options : options

type rung =
  | Direct
  | Retry of int  (** succeeded on retry [k] (1-based) *)
  | Rematerialize
  | Rerun

val rung_to_string : rung -> string

type outcome = {
  report : Engine.report;
  rung : rung;  (** where on the ladder the update finally succeeded *)
  attempts : int;  (** total [apply_update] attempts, successful one included *)
  backoffs_s : float list;  (** backoff delay chosen before each retry *)
}

type dead_letter = {
  seq : int;  (** monotonic quarantine sequence number *)
  error : error;  (** classification of the final failed attempt *)
  attempts : int;
  payload : string;  (** replayable serialized delta, CRC-guarded *)
}

type event =
  | Committed of outcome
      (** an update committed; the engine (re-read it via {!engine}) holds
          the post-commit state when the observers run *)
  | Degraded of rung
      (** the supervisor is about to attempt this non-direct rung — the
          writer has entered degraded mode *)
  | Quarantined of dead_letter
      (** every rung failed; the update was parked and the engine rolled
          back to (and validated at) its last committed state *)

type t

val create : ?options:options -> Engine.t -> t

val engine : t -> Engine.t
(** The live engine.  Identity changes when a rerun rung succeeds (the
    fresh engine replaces the old one) — re-read after each {!apply}. *)

val dead_letters : t -> dead_letter list
(** Quarantined updates, oldest first. *)

val commits : t -> int
(** Updates committed through this supervisor (replays included). *)

val on_event : t -> (event -> unit) -> unit
(** Subscribe to the supervisor's lifecycle.  Observers run synchronously
    on the writer's domain, in registration order, after the engine has
    reached the state the event describes — a [Committed] observer that
    snapshots {!engine} sees exactly the committed state.  An observer
    must not raise. *)

val restore_dead_letters : t -> dead_letter list -> unit
(** Prepend previously quarantined letters (oldest first, e.g. loaded
    from a persisted store after a restart) to the queue and advance the
    quarantine sequence counter past theirs, so future quarantines do not
    reuse their sequence numbers. *)

val apply : t -> Grounding.update -> (outcome, error) result
(** Apply one update transactionally, walking the degradation ladder on
    failure.  [Ok] means the update committed (the rung says at what
    cost); [Error] means every rung failed and the update was
    quarantined.  Either way the engine is in a validated state:
    committed on [Ok], rolled back on [Error]. *)

val classify : exn -> error
(** The boundary's error taxonomy: {!Grounding.Error} carries its own
    classification, {!Dd_util.Budget.Exceeded} is [`Inference_timeout],
    injected faults are [`Transient], [Invalid_argument] is
    [`Malformed_delta], anything else [`Internal]. *)

val encode_update : Grounding.update -> string
(** Serialize an update as a dead-letter payload (magic + CRC-32 +
    marshalled bytes). *)

val decode_update : string -> (Grounding.update, string) result

val decode_dead_letter : dead_letter -> (Grounding.update, string) result

val replay : t -> dead_letter -> (outcome, error) result
(** Decode a quarantined update and {!apply} it again; on success the
    letter is removed from the queue.  A corrupt payload is a
    [`Malformed_delta]. *)
