(** Abstract syntax of the datalog core of the DeepDive language.

    DeepDive "supports both SQL and datalog"; grounding, candidate
    generation and supervision rules are all conjunctive queries with
    stratified negation, which is exactly this AST.  Feature-extraction and
    inference rules of the surface language (weights, UDFs) are desugared to
    datalog queries plus factor-graph annotations by [Dd_core]. *)

type term =
  | Var of string
  | Const of Dd_relational.Value.t

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom
  | Neg of atom

(** A guard is an arithmetic/comparison side-condition evaluated over a
    binding, e.g. [m1 <> m2] in a candidate rule.  Guards only constrain
    bindings produced by positive atoms. *)
type guard =
  | Eq of term * term
  | Neq of term * term
  | Lt of term * term
  | Le of term * term

type rule = { head : atom; body : literal list; guards : guard list }

type program = rule list

val atom : string -> term list -> atom

val rule : ?guards:guard list -> atom -> literal list -> rule

val atom_of_literal : literal -> atom

val is_positive : literal -> bool

val term_vars : term -> string list

val atom_vars : atom -> string list

val guard_vars : guard -> string list

val rule_vars : rule -> string list
(** All variables appearing anywhere in the rule. *)

val positive_body_vars : rule -> string list

val head_pred : rule -> string

val body_preds : rule -> string list

val check_safety : rule -> (unit, string) result
(** A rule is safe when every head variable, every variable of a negated
    atom and every guard variable occurs in some positive body atom. *)

val check_program : program -> (unit, string) result

val idb_preds : program -> string list
(** Predicates appearing in some head (sorted, distinct). *)

val all_preds : program -> string list

val pp_term : Format.formatter -> term -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp_literal : Format.formatter -> literal -> unit
val pp_guard : Format.formatter -> guard -> unit
val pp_rule : Format.formatter -> rule -> unit
val rule_to_string : rule -> string
