module Tuple = Dd_relational.Tuple
module Relation = Dd_relational.Relation
module Database = Dd_relational.Database
module Budget = Dd_util.Budget

module Delta = struct
  type t = (string, (Tuple.t * int) list ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let bucket t pred =
    match Hashtbl.find_opt t pred with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.replace t pred b;
      b

  let add_signed t pred tuple sign =
    let b = bucket t pred in
    b := (tuple, sign) :: !b

  let insert t pred tuple = add_signed t pred tuple 1

  let delete t pred tuple = add_signed t pred tuple (-1)

  (* Requests are recorded most-recent-first; expose them chronologically so
     later requests win over earlier ones for the same tuple. *)
  let flips t pred =
    match Hashtbl.find_opt t pred with Some b -> List.rev !b | None -> []

  let preds t =
    List.sort String.compare (Hashtbl.fold (fun p _ acc -> p :: acc) t [])

  let is_empty t = Hashtbl.fold (fun _ b acc -> acc && !b = []) t true

  let total t = Hashtbl.fold (fun _ b acc -> acc + List.length !b) t 0
end

(* An elementary update batch for one predicate.  [entries] are signed
   derivation-count deltas.  When [pre] is provided the batch has already
   been applied to the store and [pre] is the predicate's prior state
   (recompute-and-diff path); otherwise consumption applies the entries. *)
type batch = {
  pred : string;
  entries : (Tuple.t * int) list;
  pre : Relation.t option;
  level : int; (* stratum of [pred]; -1 for base tables *)
}

let stratum_level strata pred =
  let rec find i = function
    | [] -> -1
    | s :: rest -> if List.mem pred s.Stratify.preds then i else find (i + 1) rest
  in
  find 0 strata

(* Canonicalize a batch's entries: net the signed counts per tuple, drop
   zeros, and order by tuple.  Batch entries are assembled in storage
   iteration order (plan outputs fold hash tables), which differs between
   relation backends; netting first means membership flips — and underflow
   clamping — depend only on the batch's aggregate effect, never on the
   order contributions happened to be listed in, so the row and columnar
   engines emit identical flip sequences. *)
let canonical_entries entries =
  match entries with
  | [] | [ _ ] -> entries
  | _ ->
    let net = Tuple.Hashtbl.create 16 in
    let tuples = ref [] in
    List.iter
      (fun (tuple, count) ->
        match Tuple.Hashtbl.find_opt net tuple with
        | Some c -> Tuple.Hashtbl.replace net tuple (c + count)
        | None ->
          Tuple.Hashtbl.replace net tuple count;
          tuples := tuple :: !tuples)
      entries;
    List.filter_map
      (fun tuple ->
        match Tuple.Hashtbl.find net tuple with
        | 0 -> None
        | c -> Some (tuple, c))
      (List.sort Tuple.compare !tuples)

(* Apply signed count deltas to a relation; return membership flips. *)
let apply_entries rel entries =
  List.filter_map
    (fun (tuple, count) ->
      if count = 0 then None
      else if count > 0 then begin
        let existed = Relation.insert_prev ~count rel tuple > 0 in
        if existed then None else Some (tuple, 1)
      end
      else begin
        let removed = Relation.remove ~count:(-count) rel tuple in
        if removed < -count then
          Logs.warn (fun m ->
              m "Dred: count underflow on %s %s (removed %d of %d)"
                (Relation.name rel) (Tuple.to_string tuple) removed (-count));
        if removed > 0 && not (Relation.mem rel tuple) then Some (tuple, -1) else None
      end)
    entries

(* Membership diff: flips turning [old_rel] into [new_rel], plus signed
   count entries describing the full transition. *)
let diff_relations old_rel new_rel =
  let entries = ref [] and flips = ref [] in
  Relation.iter
    (fun tuple new_count ->
      let old_count = Relation.count old_rel tuple in
      if new_count <> old_count then entries := (tuple, new_count - old_count) :: !entries;
      if old_count = 0 then flips := (tuple, 1) :: !flips)
    new_rel;
  Relation.iter
    (fun tuple old_count ->
      if not (Relation.mem new_rel tuple) then begin
        entries := (tuple, -old_count) :: !entries;
        flips := (tuple, -1) :: !flips
      end)
    old_rel;
  (!entries, !flips)

let apply ?plans ?(seeds = []) ?(budget = Budget.unlimited) db program changes =
  let plans =
    match plans with
    | Some c -> c
    | None -> Plan.Cache.create ()
  in
  let ( let* ) = Result.bind in
  let* strata = Stratify.stratify program in
  let idb = Ast.idb_preds program in
  (* Reject changes that target derived predicates. *)
  let bad =
    List.find_opt (fun p -> List.mem p idb && Delta.flips changes p <> []) (Delta.preds changes)
  in
  let* () =
    match bad with
    | Some p -> Error ("Dred.apply: cannot change derived predicate " ^ p)
    | None -> Ok ()
  in
  let result = Delta.create () in
  let strata_arr = Array.of_list strata in
  let level_of = stratum_level strata in
  (* Rules of non-recursive strata indexed by body predicate; recursive
     strata are recomputed wholesale when dirty. *)
  let rules_reading : (string, (Ast.rule * int * bool) list) Hashtbl.t = Hashtbl.create 32 in
  let recursive_reading : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun si s ->
      List.iter
        (fun rule ->
          List.iteri
            (fun pos literal ->
              let p = (Ast.atom_of_literal literal).Ast.pred in
              if s.Stratify.recursive then
                Hashtbl.replace recursive_reading (p ^ "@" ^ string_of_int si) si
              else begin
                let existing = try Hashtbl.find rules_reading p with Not_found -> [] in
                Hashtbl.replace rules_reading p
                  ((rule, pos, Ast.is_positive literal) :: existing)
              end)
            rule.Ast.body)
        s.Stratify.rules)
    strata_arr;
  let dirty_recursive = Array.make (Array.length strata_arr) false in
  (* [except] suppresses re-dirtying the stratum whose own recompute
     produced the batch (it is already at fixpoint). *)
  let mark_dirty_recursive ?(except = -1) p =
    Array.iteri
      (fun si _ ->
        if si <> except && Hashtbl.mem recursive_reading (p ^ "@" ^ string_of_int si) then
          dirty_recursive.(si) <- true)
      strata_arr
  in
  (* Pending batches, bucketed by stratum level (+1 so base tables land in
     bucket 0); consumed bottom-up. *)
  let nbuckets = Array.length strata_arr + 1 in
  let queues : batch Queue.t array = Array.init nbuckets (fun _ -> Queue.create ()) in
  let push b = Queue.add b queues.(b.level + 1) in
  (* Seed with base-table changes, normalized to count deltas. *)
  List.iter
    (fun pred ->
      let rel =
        match Database.find_opt db pred with
        | Some r -> r
        | None -> invalid_arg ("Dred.apply: unknown base table " ^ pred)
      in
      (* Last request wins for a tuple mentioned multiple times; the entry is
         the difference between the requested final membership and the
         current one. *)
      let desired = Tuple.Hashtbl.create 16 in
      List.iter
        (fun (tuple, sign) -> Tuple.Hashtbl.replace desired tuple (sign > 0))
        (Delta.flips changes pred);
      let entries =
        Tuple.Hashtbl.fold
          (fun tuple want acc ->
            let current = Relation.count rel tuple in
            if want && current = 0 then (tuple, 1) :: acc
            else if (not want) && current > 0 then (tuple, -current) :: acc
            else acc)
          desired []
      in
      if entries <> [] then push { pred; entries; pre = None; level = -1 })
    (Delta.preds changes);
  (* Seed batches for derived predicates (new-rule contributions). *)
  List.iter
    (fun (pred, entries) ->
      if entries <> [] then push { pred; entries; pre = None; level = level_of pred })
    seeds;
  let current_lookup = Engine.lookup_in db in
  let current_view pred = Plan.whole (current_lookup pred) in
  let consume b =
    (* One poll per elementary batch: a pathological cascade degrades into
       a classified timeout instead of an unbounded semi-naive run. *)
    Budget.check budget "dred.consume";
    let consume_start = Unix.gettimeofday () in
    let rel =
      match Database.find_opt db b.pred with
      | Some r -> r
      | None ->
        (* A derived predicate that was empty before this update. *)
        let sample =
          match b.entries with
          | (t, _) :: _ -> t
          | [] -> [||]
        in
        Engine.ensure_table db b.pred sample
    in
    let entries = canonical_entries b.entries in
    let old_view, flips =
      match b.pre with
      | Some pre ->
        (* Already applied; flips derivable from entries vs pre. *)
        let flips =
          List.filter_map
            (fun (tuple, count) ->
              let before = Relation.count pre tuple in
              let after = before + count in
              if before = 0 && after > 0 then Some (tuple, 1)
              else if before > 0 && after <= 0 then Some (tuple, -1)
              else None)
            entries
        in
        (Plan.whole pre, flips)
      | None ->
        (* Apply the entries first, then present the prior state as a
           snapshot-free view: the live relation minus the tuples this batch
           flipped in, plus the tuples it flipped out.  Views feed membership
           only, so set semantics suffice — no [Relation.copy]. *)
        let flips = apply_entries rel entries in
        let minus = Tuple.Hashtbl.create 8 and plus = Tuple.Hashtbl.create 8 in
        List.iter
          (fun (tuple, sign) ->
            if sign > 0 then Tuple.Hashtbl.replace minus tuple ()
            else Tuple.Hashtbl.replace plus tuple ())
          flips;
        (Plan.patched ~base:rel ~minus ~plus, flips)
    in
    if flips <> [] then begin
      List.iter (fun (tuple, sign) -> Delta.add_signed result b.pred tuple sign) flips;
      let except = match b.pre with Some _ -> b.level | None -> -1 in
      mark_dirty_recursive ~except b.pred;
      let old_lookup pred = if pred = b.pred then old_view else current_view pred in
      (* Signed delta pass over every non-recursive rule reading [pred]. *)
      let contributions : (string, (Tuple.t * int) list ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (rule, pos, positive) ->
          let delta =
            if positive then flips else List.map (fun (t, s) -> (t, -s)) flips
          in
          let eval_start = Unix.gettimeofday () in
          let derived =
            Plan.run_staged
              (Plan.Cache.delta plans rule ~delta_pos:pos)
              ~before:current_view ~after:old_lookup ~delta
          in
          Logs.debug (fun m ->
              m "  eval %s pos %d: %d derived, %.4fs" (Ast.head_pred rule) pos
                (List.length derived)
                (Unix.gettimeofday () -. eval_start));
          if derived <> [] then begin
            let head = Ast.head_pred rule in
            let bucket =
              match Hashtbl.find_opt contributions head with
              | Some r -> r
              | None ->
                let r = ref [] in
                Hashtbl.replace contributions head r;
                r
            in
            bucket := derived @ !bucket
          end)
        (try Hashtbl.find rules_reading b.pred with Not_found -> []);
      Hashtbl.iter
        (fun head entries ->
          push { pred = head; entries = !entries; pre = None; level = level_of head })
        contributions
    end;
    Logs.debug (fun m ->
        m "Dred.consume %s: %d entries, %.4fs" b.pred (List.length b.entries)
          (Unix.gettimeofday () -. consume_start))
  in
  (* Consume bottom-up.  A recursive stratum is recomputed from scratch and
     diffed whenever batches consumed at or below its level touched its rule
     bodies; draining and recomputation alternate until the level is
     quiescent. *)
  for bucket = 0 to nbuckets - 1 do
    let si = bucket - 1 in
    let quiescent = ref false in
    while not !quiescent do
      while not (Queue.is_empty queues.(bucket)) do
        consume (Queue.pop queues.(bucket))
      done;
      if si >= 0 && dirty_recursive.(si) then begin
        Budget.check budget "dred.recompute";
        dirty_recursive.(si) <- false;
        let s = strata_arr.(si) in
        (* Counting is not exact under recursion (cyclic derivation
           support), so recompute the stratum and diff against its prior
           state; the diff batches drain in the next round. *)
        let pre_state =
          List.filter_map
            (fun pred ->
              match Database.find_opt db pred with
              | Some r -> Some (pred, Relation.copy r)
              | None -> None)
            s.Stratify.preds
        in
        List.iter
          (fun pred ->
            match Database.find_opt db pred with
            | Some r -> Relation.clear r
            | None -> ())
          s.Stratify.preds;
        Engine.eval_stratum ~plans db s;
        List.iter
          (fun (pred, pre) ->
            let now =
              match Database.find_opt db pred with
              | Some r -> r
              | None -> Matcher.empty_relation
            in
            let entries, _flips = diff_relations pre now in
            if entries <> [] then push { pred; entries; pre = Some pre; level = si })
          pre_state
      end
      else quiescent := true
    done
  done;
  Ok result
