(** Incremental view maintenance in the style of DRed
    (Gupta, Mumick, Subrahmanian; the algorithm DeepDive uses for
    incremental grounding).

    Derived relations store derivation counts (one per rule grounding).
    An update is a set of base-table membership changes; {!apply} propagates
    it through the program with counting delta rules — each elementary batch
    is evaluated with exact new-before / old-after staging, so counts remain
    exact for non-recursive programs, which covers all KBC programs we
    generate (13/14 KBC systems in the paper's survey are hierarchical and
    non-recursive).  Recursive strata fall back to recompute-and-diff, which
    is always sound.

    The result reports every membership flip (tuple appeared / disappeared)
    in every predicate, which is exactly the "delta of the modified factor
    graph" the incremental-inference phase consumes. *)

module Delta : sig
  type t
  (** A set of membership changes, per predicate, with signs:
      [+1] = tuple appeared, [-1] = tuple disappeared. *)

  val create : unit -> t

  val insert : t -> string -> Dd_relational.Tuple.t -> unit
  (** Request insertion of a base tuple. *)

  val delete : t -> string -> Dd_relational.Tuple.t -> unit
  (** Request deletion of a base tuple. *)

  val flips : t -> string -> (Dd_relational.Tuple.t * int) list
  (** Signed membership changes recorded for a predicate. *)

  val preds : t -> string list

  val is_empty : t -> bool

  val total : t -> int
  (** Total number of membership changes. *)
end

val apply :
  ?plans:Plan.Cache.t ->
  ?seeds:(string * (Dd_relational.Tuple.t * int) list) list ->
  ?budget:Dd_util.Budget.t ->
  Dd_relational.Database.t ->
  Ast.program ->
  Delta.t ->
  (Delta.t, string) result
(** [apply db program changes] applies the base-table changes and
    incrementally maintains every IDB predicate.  Returns the full set of
    membership flips (base and derived).  Errors when the program is unsafe
    or unstratifiable, or when a change targets an IDB predicate.

    Each elementary batch runs the delta-specialized compiled plan
    ({!Plan.compile_delta}) for every (rule, position) reading the changed
    predicate; the predicate's prior state is presented as a snapshot-free
    [Plan.Patched] view rather than a [Relation.copy].  [plans] shares the
    compiled-plan cache (and thus the relation indexes the plans probe)
    across successive incremental steps — pass the cache held by
    [Grounding.t] to amortize compilation the way the inference side reuses
    its compiled kernel.  Default: a fresh throwaway cache.

    [seeds] injects pre-computed derivation-count contributions for derived
    predicates (e.g. the groundings of a rule that was just added to the
    program, evaluated against the pre-update state); they are applied and
    propagated through the program like any other delta. *)
