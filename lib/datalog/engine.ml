module Value = Dd_relational.Value
module Tuple = Dd_relational.Tuple
module Relation = Dd_relational.Relation
module Schema = Dd_relational.Schema
module Database = Dd_relational.Database

let lookup_in db pred =
  match Database.find_opt db pred with
  | Some r -> r
  | None -> Matcher.empty_relation

let infer_schema tuple =
  Schema.make
    (Array.to_list
       (Array.mapi
          (fun i v ->
            let ty =
              match Value.type_of v with
              | Some t -> t
              | None -> Value.TStr
            in
            (Printf.sprintf "c%d" i, ty))
          tuple))

let ensure_table db pred sample =
  match Database.find_opt db pred with
  | Some r -> r
  | None ->
    let r =
      Relation.create ~backend:(Database.backend db) ~name:pred
        (infer_schema sample)
    in
    Database.register db r;
    r

let insert_counted db pred (tuple, count) =
  if count > 0 then begin
    let r = ensure_table db pred tuple in
    Relation.insert ~count r tuple
  end

(* Evaluate one stratum to fixpoint with semi-naive iteration over compiled
   join plans.

   Round 0 evaluates every rule's full plan against the current database
   (same-stratum IDB empty at that point).  Later rounds use the delta
   decomposition: for each rule and each body position holding a same-stratum
   predicate, a delta-specialized plan matches that position against the last
   round's delta, positions before it against the new state and positions
   after it against the previous state, so each grounding is discovered
   exactly once and counts stay exact.

   The previous state is never materialized: because round deltas contain
   only membership flips, S_{r-1} is exactly the live relation minus the last
   delta's tuples, which a [Plan.Patched] view expresses without the per-round
   [Relation.copy] of every stratum predicate the matcher-based evaluator
   paid.  All contributions of a round are computed before any insert, so the
   live relations are stable while the views read them. *)
let eval_stratum ?plans db (stratum : Stratify.stratum) =
  let plans =
    match plans with
    | Some c -> c
    | None -> Plan.Cache.create ()
  in
  let in_stratum p = List.mem p stratum.Stratify.preds in
  let lookup_new pred = Plan.whole (lookup_in db pred) in
  (* Round 0: old state is the empty stratum. *)
  let initial_lookup pred =
    if in_stratum pred then Plan.whole Matcher.empty_relation
    else Plan.whole (lookup_in db pred)
  in
  let delta : (string, (Tuple.t * int) list) Hashtbl.t = Hashtbl.create 8 in
  let merge_delta pred entries =
    let existing = try Hashtbl.find delta pred with Not_found -> [] in
    Hashtbl.replace delta pred (entries @ existing)
  in
  let apply_round contributions =
    Hashtbl.reset delta;
    (* Only membership flips (genuinely new tuples) enter the next round's
       delta, each with count 1: downstream groundings depend on presence,
       not on how many derivations a tuple has.  Count increments on
       existing tuples are recorded in the store but do not propagate. *)
    List.iter
      (fun (pred, entries) ->
        let fresh =
          List.filter_map
            (fun (tuple, count) ->
              if count <= 0 then None
              else begin
                let r = ensure_table db pred tuple in
                let existed = Relation.insert_prev ~count r tuple > 0 in
                if existed then None else Some (tuple, 1)
              end)
            entries
        in
        if fresh <> [] then merge_delta pred fresh)
      contributions;
    Hashtbl.length delta > 0
  in
  (* Round 0 streams each grounding straight into the store: in-stratum
     predicates resolve to the empty view this round, so no plan can
     observe the inserts, and skipping the contribution lists (and their
     count-aggregation tables) saves gigabytes of allocation at KBC
     scale.  [insert_prev] both accumulates the multiplicity and reports
     the membership flip the semi-naive delta needs; the flip fires on a
     tuple's first derivation only, exactly as under aggregation. *)
  Hashtbl.reset delta;
  List.iter
    (fun rule ->
      let head = Ast.head_pred rule in
      let fresh = ref [] in
      Plan.run_iter (Plan.Cache.full plans rule) ~lookup:initial_lookup
        ~f:(fun tuple count ->
          if count > 0 then begin
            let r = ensure_table db head tuple in
            let existed = Relation.insert_prev ~count r tuple > 0 in
            if (not existed) && stratum.Stratify.recursive then
              fresh := (tuple, 1) :: !fresh
          end);
      if !fresh <> [] then merge_delta head !fresh)
    stratum.Stratify.rules;
  let continue_ = Hashtbl.length delta > 0 in
  if continue_ && stratum.Stratify.recursive then begin
    let empty_set : unit Tuple.Hashtbl.t = Tuple.Hashtbl.create 1 in
    let rec loop () =
      (* The delta we are about to consume was applied to the db already;
         the old state is the live relation viewed without it. *)
      let last_delta = Hashtbl.copy delta in
      let last_sets : (string, unit Tuple.Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
      Hashtbl.iter
        (fun pred entries ->
          let s = Tuple.Hashtbl.create (2 * List.length entries) in
          List.iter (fun (tuple, _) -> Tuple.Hashtbl.replace s tuple ()) entries;
          Hashtbl.replace last_sets pred s)
        last_delta;
      let lookup_old pred =
        if in_stratum pred then begin
          let minus =
            match Hashtbl.find_opt last_sets pred with
            | Some s -> s
            | None -> empty_set
          in
          Plan.patched ~base:(lookup_in db pred) ~minus ~plus:empty_set
        end
        else Plan.whole (lookup_in db pred)
      in
      let contributions =
        List.concat_map
          (fun rule ->
            let head = Ast.head_pred rule in
            List.concat
              (List.mapi
                 (fun pos literal ->
                   let pred = (Ast.atom_of_literal literal).Ast.pred in
                   if Ast.is_positive literal && in_stratum pred then begin
                     match Hashtbl.find_opt last_delta pred with
                     | None | Some [] -> []
                     | Some d ->
                       [ ( head,
                           Plan.run_staged
                             (Plan.Cache.delta plans rule ~delta_pos:pos)
                             ~before:lookup_new ~after:lookup_old ~delta:d ) ]
                   end
                   else [])
                 rule.Ast.body))
          stratum.Stratify.rules
      in
      if apply_round contributions then loop ()
    in
    loop ()
  end

(* Merge every columnar table's delta tail into its sorted run.  Evaluation
   entry is a safe point (no probe in flight), and tail-free stores take the
   override-free fast path on every scan and keyed probe below. *)
let compact_columnar db =
  List.iter
    (fun name ->
      match Relation.columnar (Database.find db name) with
      | Some cs -> Dd_relational.Column_store.compact cs
      | None -> ())
    (Database.table_names db)

let run ?plans db program =
  match Stratify.stratify program with
  | Error e -> Error e
  | Ok strata ->
    (* Fresh evaluation: clear existing IDB contents. *)
    List.iter
      (fun pred ->
        match Database.find_opt db pred with
        | Some r -> Relation.clear r
        | None -> ())
      (Ast.idb_preds program);
    compact_columnar db;
    List.iter (eval_stratum ?plans db) strata;
    Ok ()

let run_exn ?plans db program =
  match run ?plans db program with
  | Ok () -> ()
  | Error e -> invalid_arg ("Engine.run: " ^ e)

(* Re-export to silence unused-module warnings when only run is used. *)
let _ = insert_counted
