(** Stratified, semi-naive datalog evaluation with derivation counts.

    [run] materializes every IDB predicate of the program into the database,
    bottom-up by stratum.  Each stored tuple carries its derivation count
    (the number of distinct rule groundings deriving it), which is what DRed
    maintains incrementally and what the paper's grounding phase consumes.

    Evaluation executes compiled join plans ({!Plan}): each rule is compiled
    once (or fetched from the caller's {!Plan.Cache}), joins probe persistent
    {!Dd_relational.Relation.get_index} indexes, and fixpoint rounds read the
    previous state through snapshot-free [Plan.Patched] views instead of
    copying every stratum relation per round. *)

val lookup_in : Dd_relational.Database.t -> string -> Dd_relational.Relation.t
(** Database lookup that resolves unknown predicates to a shared empty
    relation. *)

val ensure_table :
  Dd_relational.Database.t -> string -> Dd_relational.Tuple.t -> Dd_relational.Relation.t
(** Find the named table, creating it with a schema inferred from the sample
    tuple ([c0], [c1], ... columns) when missing. *)

val eval_stratum : ?plans:Plan.Cache.t -> Dd_relational.Database.t -> Stratify.stratum -> unit
(** Evaluate one stratum to fixpoint against the current database state
    (used by full evaluation and by {!Dred}'s recursive-stratum fallback).
    The stratum's relations are expected to start empty.  [plans] lets the
    caller share compiled full and delta plans across calls (default: a
    fresh throwaway cache). *)

val run :
  ?plans:Plan.Cache.t -> Dd_relational.Database.t -> Ast.program -> (unit, string) result
(** Clear all IDB relations then evaluate the program to fixpoint.
    [Error] on unsafe rules or unstratifiable negation. *)

val run_exn : ?plans:Plan.Cache.t -> Dd_relational.Database.t -> Ast.program -> unit
(** Like {!run}; raises [Invalid_argument] on error. *)
