module Value = Dd_relational.Value
module Tuple = Dd_relational.Tuple
module Relation = Dd_relational.Relation
module Schema = Dd_relational.Schema

type lookup = string -> Relation.t

module StringSet = Set.Make (String)

(* [length_at_least n l] without walking past the [n]th cons cell — the
   index-or-scan heuristics below only care whether a list clears a small
   threshold, and deltas/frontiers can be very long. *)
let rec length_at_least n l =
  n <= 0 || (match l with [] -> false | _ :: tl -> length_at_least (n - 1) tl)

let empty_relation = Relation.create ~name:"<empty>" (Schema.make [])

(* A binding maps variable slots to values; [None] means unbound.  All
   bindings in a frontier share the same set of bound slots because the
   frontier advances one literal at a time. *)
let make_slots rule =
  let slots = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace slots v i) (Ast.rule_vars rule);
  slots

let slot_of slots v = Hashtbl.find slots v

let term_value slots (binding : Value.t array) = function
  | Ast.Const c -> Some c
  | Ast.Var v ->
    let value = binding.(slot_of slots v) in
    if Value.equal value Value.Null then None else Some value

(* Unify an atom's argument list against a concrete tuple under a binding.
   Returns the extended binding, or [None] on mismatch.  [Value.Null] marks
   unbound slots, which is sound because stored data never contains Null in
   join positions for our programs; a Null in data would simply fail to
   distinguish itself, so we additionally guard inserts at the relation
   level. *)
(* The argument list is converted to an array once per literal by the
   callers, so the per-tuple loop does no list traversal (the old code paid
   a [List.length] walk per candidate tuple). *)
let unify slots binding (args : Ast.term array) tuple =
  if Array.length tuple <> Array.length args then None
  else begin
    let fresh = Array.copy binding in
    let ok = ref true in
    Array.iteri
      (fun i arg ->
        if !ok then
          match arg with
          | Ast.Const c -> if not (Value.equal c tuple.(i)) then ok := false
          | Ast.Var v ->
            let s = slot_of slots v in
            let current = fresh.(s) in
            if Value.equal current Value.Null then fresh.(s) <- tuple.(i)
            else if not (Value.equal current tuple.(i)) then ok := false)
      args;
    if !ok then Some fresh else None
  end

let bound_arg_positions slots atom first =
  List.mapi (fun i a -> (i, a)) atom.Ast.args
  |> List.filter (fun (_, arg) ->
         match arg with
         | Ast.Const _ -> true
         | Ast.Var v -> not (Value.equal first.(slot_of slots v) Value.Null))
  |> List.map fst

(* Match a positive atom against an explicit (tuple, count) list, indexing
   the list on the bound argument positions when possible so large
   frontiers probe rather than scan. *)
let match_against_list slots atom tuples rows =
  match rows with
  | [] -> []
  | (first, _) :: _ ->
    (* Once per literal, not per binding or per tuple. *)
    let args = Array.of_list atom.Ast.args in
    let arity = Array.length args in
    let scan tuples rows =
      List.concat_map
        (fun (binding, count) ->
          List.filter_map
            (fun (tuple, tcount) ->
              match unify slots binding args tuple with
              | Some fresh -> Some (fresh, count * tcount)
              | None -> None)
            tuples)
        rows
    in
    let bound = bound_arg_positions slots atom first in
    if bound = [] || not (length_at_least 8 tuples) || not (length_at_least 8 rows) then
      scan tuples rows
    else begin
      let key_positions = Array.of_list bound in
      let index = Hashtbl.create (List.length tuples) in
      List.iter
        (fun ((tuple, _) as entry) ->
          if Array.length tuple = arity then begin
            let key = Tuple.project tuple key_positions in
            let existing = try Hashtbl.find index key with Not_found -> [] in
            Hashtbl.replace index key (entry :: existing)
          end)
        tuples;
      List.concat_map
        (fun (binding, count) ->
          let key =
            Array.map
              (fun pos ->
                match args.(pos) with
                | Ast.Const c -> c
                | Ast.Var v -> binding.(slot_of slots v))
              key_positions
          in
          match Hashtbl.find_opt index key with
          | None -> []
          | Some entries ->
            List.filter_map
              (fun (tuple, tcount) ->
                match unify slots binding args tuple with
                | Some fresh -> Some (fresh, count * tcount)
                | None -> None)
              entries)
        rows
    end

(* Match a positive atom against a relation, using a hash index on the
   argument positions that are bound (constants or already-bound vars).
   All bindings in [rows] share the same bound-slot set, so the key shape
   is uniform. *)
let match_against_relation slots atom rel rows =
  match rows with
  | [] -> []
  | (first, _) :: _ ->
    let bound_positions = bound_arg_positions slots atom first in
    if bound_positions = [] then begin
      (* Membership is what matters for a grounding; stored multiplicities
         (derivation counts) do not multiply into downstream counts. *)
      let tuples = List.map (fun t -> (t, 1)) (Relation.to_list rel) in
      match_against_list slots atom tuples rows
    end
    else begin
      let key_positions = Array.of_list bound_positions in
      let index = Relation.get_index rel key_positions in
      let args = Array.of_list atom.Ast.args in
      List.concat_map
        (fun (binding, count) ->
          let key =
            Array.map
              (fun pos ->
                match args.(pos) with
                | Ast.Const c -> c
                | Ast.Var v -> binding.(slot_of slots v))
              key_positions
          in
          match Hashtbl.find_opt index key with
          | None -> []
          | Some bucket ->
            Tuple.Hashtbl.fold
              (fun tuple _ acc ->
                match unify slots binding args tuple with
                | Some fresh -> (fresh, count) :: acc
                | None -> acc)
              bucket [])
        rows
    end

let all_bound slots binding vars =
  List.for_all (fun v -> not (Value.equal binding.(slot_of slots v) Value.Null)) vars

let guard_holds slots binding g =
  let value t =
    match term_value slots binding t with
    | Some v -> v
    | None -> invalid_arg "Matcher: guard on unbound variable"
  in
  match g with
  | Ast.Eq (a, b) -> Value.equal (value a) (value b)
  | Ast.Neq (a, b) -> not (Value.equal (value a) (value b))
  | Ast.Lt (a, b) -> Value.compare (value a) (value b) < 0
  | Ast.Le (a, b) -> Value.compare (value a) (value b) <= 0

let guard_vars = function
  | Ast.Eq (a, b) | Ast.Neq (a, b) | Ast.Lt (a, b) | Ast.Le (a, b) ->
    Ast.term_vars a @ Ast.term_vars b

(* Evaluate the body with per-position resolution.  [resolve pos atom]
   returns either a relation or an explicit delta list for the literal at
   [pos].  Deferred negations carry the resolver chosen at their position. *)
type source = Rel of Relation.t | Explicit of (Tuple.t * int) list

let eval_body ?order rule ~(resolve : int -> Ast.atom -> [ `Positive | `Negative ] -> source) =
  let slots = make_slots rule in
  let nslots = Hashtbl.length slots in
  let initial = [ (Array.make nslots Value.Null, 1) ] in
  let pending_negs : (Ast.atom * source) list ref = ref [] in
  let pending_guards = ref rule.Ast.guards in
  let apply_negation rows (atom, src) =
    List.filter
      (fun (binding, _) ->
        let tuple =
          Array.of_list
            (List.map
               (fun arg ->
                 match term_value slots binding arg with
                 | Some v -> v
                 | None -> invalid_arg "Matcher: negation on unbound variable")
               atom.Ast.args)
        in
        match src with
        | Rel rel -> not (Relation.mem rel tuple)
        | Explicit tuples -> not (List.exists (fun (t, _) -> Tuple.equal t tuple) tuples))
      rows
  in
  let flush_ready rows =
    let ready_negs, still_negs =
      List.partition
        (fun (atom, _) -> all_bound slots (fst (List.hd rows)) (Ast.atom_vars atom))
        (match rows with [] -> [] | _ -> !pending_negs)
    in
    pending_negs := still_negs;
    let rows = List.fold_left apply_negation rows ready_negs in
    match rows with
    | [] -> []
    | (first, _) :: _ ->
      let ready_guards, still_guards =
        List.partition (fun g -> all_bound slots first (guard_vars g)) !pending_guards
      in
      pending_guards := still_guards;
      List.filter
        (fun (binding, _) -> List.for_all (guard_holds slots binding) ready_guards)
        rows
  in
  let step frontier pos literal =
    match frontier with
    | [] -> frontier
    | rows ->
      let atom = Ast.atom_of_literal literal in
      let polarity = if Ast.is_positive literal then `Positive else `Negative in
      let source = resolve pos atom polarity in
      let rows =
        match (literal, source) with
        | Ast.Pos _, Rel rel -> match_against_relation slots atom rel rows
        | Ast.Pos _, Explicit tuples -> match_against_list slots atom tuples rows
        | Ast.Neg _, Explicit tuples ->
          (* A negated literal in delta position: match the flip tuples
             positively; signs live in the counts. *)
          match_against_list slots atom tuples rows
        | Ast.Neg _, Rel _ ->
          if all_bound slots (fst (List.hd rows)) (Ast.atom_vars atom) then
            apply_negation rows (atom, source)
          else begin
            pending_negs := (atom, source) :: !pending_negs;
            rows
          end
      in
      flush_ready rows
  in
  let literals = Array.of_list rule.Ast.body in
  let order =
    match order with
    | Some o -> o
    | None -> List.init (Array.length literals) (fun i -> i)
  in
  let final =
    List.fold_left (fun frontier pos -> step frontier pos literals.(pos)) initial order
  in
  (* Empty-body rules never enter [flush_ready]; force guard evaluation. *)
  let rows =
    match final with
    | [] -> []
    | rows ->
      let remaining_negs = !pending_negs in
      let rows = List.fold_left apply_negation rows remaining_negs in
      List.filter
        (fun (binding, _) -> List.for_all (guard_holds slots binding) !pending_guards)
        rows
  in
  (slots, rows)

let head_tuple slots binding (head : Ast.atom) =
  Array.of_list
    (List.map
       (fun arg ->
         match term_value slots binding arg with
         | Some v -> v
         | None -> invalid_arg "Matcher: unbound head variable (unsafe rule?)")
       head.Ast.args)

let collect_heads rule slots rows =
  let acc = Tuple.Hashtbl.create 64 in
  List.iter
    (fun (binding, count) ->
      let tuple = head_tuple slots binding rule.Ast.head in
      let current = try Tuple.Hashtbl.find acc tuple with Not_found -> 0 in
      Tuple.Hashtbl.replace acc tuple (current + count))
    rows;
  Tuple.Hashtbl.fold
    (fun tuple count out -> if count = 0 then out else (tuple, count) :: out)
    acc []

let eval_rule ~lookup rule =
  let resolve _ atom _ = Rel (lookup atom.Ast.pred) in
  let slots, rows = eval_body rule ~resolve in
  collect_heads rule slots rows

(* Consuming the (usually small) delta literal first keeps the frontier
   tiny; the remaining literals follow a greedy connectivity order (most
   already-bound variables first) so every join step can use an index
   probe.  Resolution still keys off the original body position, so the
   new-before / old-after staging is unchanged. *)
let delta_first_order rule delta_pos =
  let literals = Array.of_list rule.Ast.body in
  let vars_of i = Ast.atom_vars (Ast.atom_of_literal literals.(i)) in
  let n = Array.length literals in
  let remaining = ref (List.filter (fun i -> i <> delta_pos) (List.init n (fun i -> i))) in
  let bound = ref (StringSet.of_list (vars_of delta_pos)) in
  let order = ref [ delta_pos ] in
  while !remaining <> [] do
    let score i =
      List.length (List.filter (fun v -> StringSet.mem v !bound) (vars_of i))
    in
    let best =
      List.fold_left
        (fun acc i -> match acc with
          | None -> Some i
          | Some j -> if score i > score j then Some i else acc)
        None !remaining
    in
    match best with
    | None -> remaining := []
    | Some i ->
      order := i :: !order;
      remaining := List.filter (fun j -> j <> i) !remaining;
      bound := List.fold_left (fun acc v -> StringSet.add v acc) !bound (vars_of i)
  done;
  List.rev !order

let eval_rule_staged ~before ~after ~delta_pos ~delta rule =
  let resolve pos atom _ =
    if pos = delta_pos then Explicit delta
    else if pos < delta_pos then Rel (before atom.Ast.pred)
    else Rel (after atom.Ast.pred)
  in
  let slots, rows = eval_body ~order:(delta_first_order rule delta_pos) rule ~resolve in
  collect_heads rule slots rows

let binding_env slots binding (v : string) =
  match Hashtbl.find_opt slots v with
  | None -> None
  | Some s ->
    let value = binding.(s) in
    if Value.equal value Value.Null then None else Some value

let eval_rule_bindings ~lookup rule =
  let resolve _ atom _ = Rel (lookup atom.Ast.pred) in
  let slots, rows = eval_body rule ~resolve in
  List.map (fun (binding, _) -> binding_env slots binding) rows

let eval_rule_bindings_staged ~before ~after ~delta_pos ~delta rule =
  let resolve pos atom _ =
    if pos = delta_pos then Explicit delta
    else if pos < delta_pos then Rel (before atom.Ast.pred)
    else Rel (after atom.Ast.pred)
  in
  let slots, rows = eval_body ~order:(delta_first_order rule delta_pos) rule ~resolve in
  List.map (fun (binding, count) -> (binding_env slots binding, count)) rows
