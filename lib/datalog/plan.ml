module Value = Dd_relational.Value
module Tuple = Dd_relational.Tuple
module Relation = Dd_relational.Relation
module Column_store = Dd_relational.Column_store
module StringSet = Set.Make (String)

(* --- relation views ------------------------------------------------------ *)

type view =
  | Whole of Relation.t
  | Patched of {
      base : Relation.t;
      minus : unit Tuple.Hashtbl.t;
      plus : unit Tuple.Hashtbl.t;
    }

type lookup = string -> view

let whole r = Whole r

let patched ~base ~minus ~plus = Patched { base; minus; plus }

let view_of_lookup f pred = Whole (f pred)

let view_mem v tuple =
  match v with
  | Whole r -> Relation.mem r tuple
  | Patched { base; minus; plus } ->
    (Relation.mem base tuple && not (Tuple.Hashtbl.mem minus tuple))
    || Tuple.Hashtbl.mem plus tuple

(* --- compiled form -------------------------------------------------------- *)

(* A term source resolved at compile time: a constant, or an integer slot in
   the binding array.  Slots referenced by [S] in probe keys, rejects, tests
   and the head are always bound by an earlier step (or the step raises on
   [Value.Null], mirroring the matcher's unbound-variable errors). *)
type src = K of Value.t | S of int

type probe = {
  pos : int;  (* original body position: staging (new/old/delta) keys off it *)
  pred : string;
  arity : int;
  key_pos : int array;  (* argument positions bound at this step; [] = scan *)
  key_src : src array;  (* parallel to [key_pos] *)
  dup : (int * int) array;  (* repeated fresh variable: tuple.(i) = tuple.(j) *)
  binds : (int * int) array;  (* fresh variables: slot <- tuple.(i) *)
}

type cmp = Ceq | Cneq | Clt | Cle

type step =
  | Match of probe  (* positive literal (or the delta literal, any polarity) *)
  | Reject of { pos : int; pred : string; args : src array }  (* anti-join *)
  | Test of { op : cmp; a : src; b : src }  (* guard *)

type t = {
  rule : Ast.rule;
  nslots : int;
  slots : (string, int) Hashtbl.t;
  head : src array;
  steps : step array;
  delta_pos : int;  (* -1 for full plans *)
  order : int list;  (* original positions of Match steps, execution order *)
}

let rule t = t.rule

let delta_pos t = t.delta_pos

let literal_order t = t.order

(* --- compiler ------------------------------------------------------------- *)

let compile_probe slots bound pos (atom : Ast.atom) =
  let args = Array.of_list atom.Ast.args in
  let key_pos = ref [] and key_src = ref [] in
  let dup = ref [] and binds = ref [] in
  let first_here : (string, int) Hashtbl.t = Hashtbl.create 4 in
  Array.iteri
    (fun i arg ->
      match arg with
      | Ast.Const c ->
        key_pos := i :: !key_pos;
        key_src := K c :: !key_src
      | Ast.Var v ->
        if StringSet.mem v bound then begin
          key_pos := i :: !key_pos;
          key_src := S (Hashtbl.find slots v) :: !key_src
        end
        else begin
          match Hashtbl.find_opt first_here v with
          | Some j -> dup := (i, j) :: !dup
          | None ->
            Hashtbl.replace first_here v i;
            binds := (i, Hashtbl.find slots v) :: !binds
        end)
    args;
  {
    pos;
    pred = atom.Ast.pred;
    arity = Array.length args;
    key_pos = Array.of_list (List.rev !key_pos);
    key_src = Array.of_list (List.rev !key_src);
    dup = Array.of_list (List.rev !dup);
    binds = Array.of_list (List.rev !binds);
  }

let compile_internal (rule : Ast.rule) ~delta_pos =
  let slots = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace slots v i) (Ast.rule_vars rule);
  let nslots = Hashtbl.length slots in
  let literals = Array.of_list rule.Ast.body in
  let n = Array.length literals in
  if delta_pos >= n then invalid_arg "Plan.compile_delta: delta position out of range";
  let vars_of i = Ast.atom_vars (Ast.atom_of_literal literals.(i)) in
  let positions = List.init n (fun i -> i) in
  (* The delta literal is consumed as a positive match whatever its polarity
     (signs live in the delta counts); other negated literals run as
     anti-join filters once their variables are bound. *)
  let match_positions =
    List.filter (fun i -> Ast.is_positive literals.(i) || i = delta_pos) positions
  in
  let reject_positions =
    List.filter (fun i -> (not (Ast.is_positive literals.(i))) && i <> delta_pos) positions
  in
  (* Greedy join order: most already-bound argument positions first
     (constants count as bound — this is the selectivity heuristic of the
     paper's rule-based optimizer), tie-broken toward fewer fresh variables,
     then source order.  Delta plans seed the order with the delta literal
     so the (usually tiny) delta drives the probes. *)
  let bound = ref (if delta_pos >= 0 then StringSet.of_list (vars_of delta_pos) else StringSet.empty) in
  let order = ref (if delta_pos >= 0 then [ delta_pos ] else []) in
  let remaining = ref (List.filter (fun i -> i <> delta_pos) match_positions) in
  let score i =
    let atom = Ast.atom_of_literal literals.(i) in
    let bound_args =
      List.length
        (List.filter
           (function Ast.Const _ -> true | Ast.Var v -> StringSet.mem v !bound)
           atom.Ast.args)
    in
    let fresh =
      List.length
        (List.sort_uniq String.compare
           (List.filter (fun v -> not (StringSet.mem v !bound)) (Ast.atom_vars atom)))
    in
    (bound_args, -fresh, -i)
  in
  while !remaining <> [] do
    let best =
      List.fold_left
        (fun acc i ->
          match acc with
          | None -> Some i
          | Some j -> if score i > score j then Some i else acc)
        None !remaining
    in
    match best with
    | None -> remaining := []
    | Some i ->
      order := i :: !order;
      remaining := List.filter (fun j -> j <> i) !remaining;
      bound := List.fold_left (fun s v -> StringSet.add v s) !bound (vars_of i)
  done;
  let order = List.rev !order in
  (* Emit steps, scheduling each negation and guard at the earliest point
     where its variables are bound.  Leftovers (unsafe rules) are emitted at
     the end and raise at run time if any rows reach them, mirroring the
     matcher. *)
  let steps = ref [] in
  let pending_rejects = ref reject_positions in
  let pending_guards = ref rule.Ast.guards in
  let bound = ref StringSet.empty in
  let term_src = function Ast.Const c -> K c | Ast.Var v -> S (Hashtbl.find slots v) in
  let flush ~force =
    let is_ready vs = force || List.for_all (fun v -> StringSet.mem v !bound) vs in
    let ready_r, rest_r = List.partition (fun i -> is_ready (vars_of i)) !pending_rejects in
    pending_rejects := rest_r;
    List.iter
      (fun i ->
        let atom = Ast.atom_of_literal literals.(i) in
        let args = Array.of_list (List.map term_src atom.Ast.args) in
        steps := Reject { pos = i; pred = atom.Ast.pred; args } :: !steps)
      ready_r;
    let ready_g, rest_g =
      List.partition (fun g -> is_ready (Ast.guard_vars g)) !pending_guards
    in
    pending_guards := rest_g;
    List.iter
      (fun g ->
        let op, a, b =
          match g with
          | Ast.Eq (a, b) -> (Ceq, a, b)
          | Ast.Neq (a, b) -> (Cneq, a, b)
          | Ast.Lt (a, b) -> (Clt, a, b)
          | Ast.Le (a, b) -> (Cle, a, b)
        in
        steps := Test { op; a = term_src a; b = term_src b } :: !steps)
      ready_g
  in
  flush ~force:false;
  List.iter
    (fun i ->
      let atom = Ast.atom_of_literal literals.(i) in
      let probe = compile_probe slots !bound i atom in
      bound := List.fold_left (fun s v -> StringSet.add v s) !bound (vars_of i);
      steps := Match probe :: !steps;
      flush ~force:false)
    order;
  flush ~force:true;
  let head = Array.of_list (List.map term_src rule.Ast.head.Ast.args) in
  { rule; nslots; slots; head; steps = Array.of_list (List.rev !steps); delta_pos; order }

let compile rule = compile_internal rule ~delta_pos:(-1)

let compile_delta rule ~delta_pos =
  if delta_pos < 0 then invalid_arg "Plan.compile_delta: negative delta position";
  compile_internal rule ~delta_pos

(* --- execution ------------------------------------------------------------ *)

(* The frontier of partial bindings, as growable parallel arrays.  Binding
   arrays are never mutated after being pushed (each Match step copies
   before writing fresh slots), so steps that bind nothing may share the
   parent array across rows. *)
type frontier = {
  mutable bindings : Value.t array array;
  mutable counts : int array;
  mutable len : int;
}

let frontier_create () = { bindings = Array.make 16 [||]; counts = Array.make 16 0; len = 0 }

let frontier_push f b c =
  if f.len = Array.length f.bindings then begin
    let cap = 2 * Array.length f.bindings in
    let nb = Array.make cap [||] and nc = Array.make cap 0 in
    Array.blit f.bindings 0 nb 0 f.len;
    Array.blit f.counts 0 nc 0 f.len;
    f.bindings <- nb;
    f.counts <- nc
  end;
  f.bindings.(f.len) <- b;
  f.counts.(f.len) <- c;
  f.len <- f.len + 1

let filter_frontier f keep =
  let j = ref 0 in
  for i = 0 to f.len - 1 do
    if keep f.bindings.(i) then begin
      f.bindings.(!j) <- f.bindings.(i);
      f.counts.(!j) <- f.counts.(i);
      incr j
    end
  done;
  f.len <- !j

let src_value binding = function K c -> c | S s -> binding.(s)

let keys_match p binding tuple =
  let m = Array.length p.key_pos in
  let rec go k =
    k >= m
    || (Value.equal tuple.(p.key_pos.(k)) (src_value binding p.key_src.(k)) && go (k + 1))
  in
  go 0

let dups_match p tuple =
  let m = Array.length p.dup in
  let rec go k =
    k >= m
    ||
    let i, j = p.dup.(k) in
    Value.equal tuple.(i) tuple.(j) && go (k + 1)
  in
  go 0

(* Failures are detected before any allocation; the parent binding is only
   copied once a candidate is admitted (and shared outright when the step
   binds nothing). *)
let extend p binding tuple =
  if Array.length p.binds = 0 then binding
  else begin
    let fresh = Array.copy binding in
    Array.iter (fun (i, s) -> fresh.(s) <- tuple.(i)) p.binds;
    fresh
  end

let probe_key p binding =
  Array.init (Array.length p.key_src) (fun k -> src_value binding p.key_src.(k))

let rec length_at_least n l =
  n <= 0 || (match l with [] -> false | _ :: tl -> length_at_least (n - 1) tl)

type resolved = R_view of view | R_delta of (Tuple.t * int) list

(* Repeated-fresh-variable check on an encoded row: dictionary ids are
   per-column, but [dup] pairs only arise from one variable occurring twice,
   and equal values have equal ids within a column — across columns two
   occurrences of the same value may carry different ids, so decode. *)
let dups_match_ids p cs ids =
  let m = Array.length p.dup in
  let rec go k =
    k >= m
    ||
    let i, j = p.dup.(k) in
    Value.equal (Column_store.dict_value cs i ids.(i)) (Column_store.dict_value cs j ids.(j))
    && go (k + 1)
  in
  go 0

(* Columnar match: probe the store's sorted runs on encoded keys, decode
   only the slots this step binds.  [minus] (a Patched view's pending
   retractions, keyed by decoded tuples) forces a decode per candidate only
   while non-empty — the common steady state is an empty patch. *)
let col_match out cur p cs minus =
  if Column_store.arity cs = p.arity then begin
    let minus =
      match minus with
      | Some m when Tuple.Hashtbl.length m > 0 -> Some m
      | _ -> None
    in
    let admit_ids b c ids =
      if
        dups_match_ids p cs ids
        && (match minus with
           | None -> true
           | Some m -> not (Tuple.Hashtbl.mem m (Column_store.decode cs ids)))
      then begin
        let fresh =
          if Array.length p.binds = 0 then b
          else begin
            let fresh = Array.copy b in
            Array.iter
              (fun (i, s) -> fresh.(s) <- Column_store.dict_value cs i ids.(i))
              p.binds;
            fresh
          end
        in
        frontier_push out fresh c
      end
    in
    let nkeys = Array.length p.key_pos in
    if nkeys > 0 then begin
      let key_ids = Array.make nkeys 0 in
      for i = 0 to cur.len - 1 do
        let b = cur.bindings.(i) and c = cur.counts.(i) in
        let ok = ref true in
        for k = 0 to nkeys - 1 do
          if !ok then
            match Column_store.encode_value cs p.key_pos.(k) (src_value b p.key_src.(k)) with
            | Some id -> key_ids.(k) <- id
            | None -> ok := false
        done;
        if !ok then Column_store.iter_key cs p.key_pos key_ids (fun ids _ -> admit_ids b c ids)
      done
    end
    else if cur.len = 1 then begin
      let b = cur.bindings.(0) and c = cur.counts.(0) in
      Column_store.iter_ids cs (fun ids _ -> admit_ids b c ids)
    end
    else begin
      let rows = ref [] in
      (* the yielded ids buffer is reused across rows: copy to retain *)
      Column_store.iter_ids cs (fun ids _ -> rows := Array.copy ids :: !rows);
      let rows = List.rev !rows in
      for i = 0 to cur.len - 1 do
        let b = cur.bindings.(i) and c = cur.counts.(i) in
        List.iter (fun ids -> admit_ids b c ids) rows
      done
    end
  end

let step_match cur p source =
  let out = frontier_create () in
  let admit binding count tuple tcount ~check_keys =
    if
      Array.length tuple = p.arity
      && ((not check_keys) || keys_match p binding tuple)
      && dups_match p tuple
    then frontier_push out (extend p binding tuple) (count * tcount)
  in
  (match source with
  | R_view (Whole r) -> (
    match Relation.columnar r with
    | Some cs -> col_match out cur p cs None
    | None ->
      if Array.length p.key_pos > 0 then begin
        let idx = Relation.get_index r p.key_pos in
        for i = 0 to cur.len - 1 do
          let b = cur.bindings.(i) and c = cur.counts.(i) in
          match Hashtbl.find_opt idx (probe_key p b) with
          | None -> ()
          | Some bucket ->
            Tuple.Hashtbl.iter (fun tup _ -> admit b c tup 1 ~check_keys:false) bucket
        done
      end
      else begin
        let tuples = Relation.to_list r in
        for i = 0 to cur.len - 1 do
          let b = cur.bindings.(i) and c = cur.counts.(i) in
          List.iter (fun tup -> admit b c tup 1 ~check_keys:false) tuples
        done
      end)
  | R_view (Patched { base; minus; plus }) ->
    let plus_tuples = Tuple.Hashtbl.fold (fun tup () acc -> tup :: acc) plus [] in
    (match Relation.columnar base with
    | Some cs ->
      col_match out cur p cs (Some minus);
      if plus_tuples <> [] then
        for i = 0 to cur.len - 1 do
          let b = cur.bindings.(i) and c = cur.counts.(i) in
          List.iter (fun tup -> admit b c tup 1 ~check_keys:true) plus_tuples
        done
    | None ->
      if Array.length p.key_pos > 0 then begin
        let idx = Relation.get_index base p.key_pos in
        for i = 0 to cur.len - 1 do
          let b = cur.bindings.(i) and c = cur.counts.(i) in
          (match Hashtbl.find_opt idx (probe_key p b) with
          | None -> ()
          | Some bucket ->
            Tuple.Hashtbl.iter
              (fun tup _ ->
                if not (Tuple.Hashtbl.mem minus tup) then admit b c tup 1 ~check_keys:false)
              bucket);
          List.iter (fun tup -> admit b c tup 1 ~check_keys:true) plus_tuples
        done
      end
      else begin
        let base_tuples =
          List.filter (fun tup -> not (Tuple.Hashtbl.mem minus tup)) (Relation.to_list base)
        in
        for i = 0 to cur.len - 1 do
          let b = cur.bindings.(i) and c = cur.counts.(i) in
          List.iter (fun tup -> admit b c tup 1 ~check_keys:false) base_tuples;
          List.iter (fun tup -> admit b c tup 1 ~check_keys:false) plus_tuples
        done
      end)
  | R_delta entries ->
    if Array.length p.key_pos > 0 && cur.len >= 8 && length_at_least 8 entries then begin
      (* One-shot index over the delta, amortized across a large frontier. *)
      let idx = Hashtbl.create 32 in
      List.iter
        (fun ((tup, _) as entry) ->
          if Array.length tup = p.arity then begin
            let key = Tuple.project tup p.key_pos in
            let existing = try Hashtbl.find idx key with Not_found -> [] in
            Hashtbl.replace idx key (entry :: existing)
          end)
        entries;
      for i = 0 to cur.len - 1 do
        let b = cur.bindings.(i) and c = cur.counts.(i) in
        match Hashtbl.find_opt idx (probe_key p b) with
        | None -> ()
        | Some matched ->
          List.iter (fun (tup, tc) -> admit b c tup tc ~check_keys:false) matched
      done
    end
    else
      for i = 0 to cur.len - 1 do
        let b = cur.bindings.(i) and c = cur.counts.(i) in
        List.iter (fun (tup, tc) -> admit b c tup tc ~check_keys:true) entries
      done);
  out

let reject_tuple args binding =
  Array.map
    (fun s ->
      match s with
      | K c -> c
      | S i ->
        let v = binding.(i) in
        if Value.equal v Value.Null then
          invalid_arg "Plan: negation on unbound variable"
        else v)
    args

let guard_value binding s =
  match s with
  | K c -> c
  | S i ->
    let v = binding.(i) in
    if Value.equal v Value.Null then invalid_arg "Plan: guard on unbound variable" else v

let exec t ~resolve ~delta =
  let cur = ref (frontier_create ()) in
  frontier_push !cur (Array.make t.nslots Value.Null) 1;
  Array.iter
    (fun step ->
      if !cur.len > 0 then
        match step with
        | Match p ->
          let source = if p.pos = t.delta_pos then R_delta delta else R_view (resolve p.pos p.pred) in
          cur := step_match !cur p source
        | Reject { pos; pred; args } ->
          let v = resolve pos pred in
          filter_frontier !cur (fun binding -> not (view_mem v (reject_tuple args binding)))
        | Test { op; a; b } ->
          filter_frontier !cur (fun binding ->
              let va = guard_value binding a and vb = guard_value binding b in
              match op with
              | Ceq -> Value.equal va vb
              | Cneq -> not (Value.equal va vb)
              | Clt -> Value.compare va vb < 0
              | Cle -> Value.compare va vb <= 0))
    t.steps;
  !cur

let head_tuple t binding =
  Array.map
    (fun s ->
      match s with
      | K c -> c
      | S i ->
        let v = binding.(i) in
        if Value.equal v Value.Null then
          invalid_arg "Plan: unbound head variable (unsafe rule?)"
        else v)
    t.head

let collect_counted t cur =
  let acc = Tuple.Hashtbl.create (max 16 cur.len) in
  for i = 0 to cur.len - 1 do
    let tup = head_tuple t cur.bindings.(i) in
    let current = try Tuple.Hashtbl.find acc tup with Not_found -> 0 in
    Tuple.Hashtbl.replace acc tup (current + cur.counts.(i))
  done;
  Tuple.Hashtbl.fold (fun tup c out -> if c = 0 then out else (tup, c) :: out) acc []

let run t ~lookup =
  if t.delta_pos >= 0 then invalid_arg "Plan.run: delta plan (use run_staged)";
  collect_counted t (exec t ~resolve:(fun _ pred -> lookup pred) ~delta:[])

let run_iter t ~lookup ~f =
  if t.delta_pos >= 0 then invalid_arg "Plan.run_iter: delta plan (use run_staged)";
  let cur = exec t ~resolve:(fun _ pred -> lookup pred) ~delta:[] in
  for i = 0 to cur.len - 1 do
    f (head_tuple t cur.bindings.(i)) cur.counts.(i)
  done

let staged_resolve t ~before ~after pos pred =
  if pos < t.delta_pos then before pred else after pred

let run_staged t ~before ~after ~delta =
  if t.delta_pos < 0 then invalid_arg "Plan.run_staged: full plan (use run)";
  collect_counted t (exec t ~resolve:(staged_resolve t ~before ~after) ~delta)

let env_of t binding v =
  match Hashtbl.find_opt t.slots v with
  | None -> None
  | Some s ->
    let value = binding.(s) in
    if Value.equal value Value.Null then None else Some value

let run_bindings t ~lookup =
  if t.delta_pos >= 0 then invalid_arg "Plan.run_bindings: delta plan (use run_bindings_staged)";
  let cur = exec t ~resolve:(fun _ pred -> lookup pred) ~delta:[] in
  List.init cur.len (fun i -> env_of t cur.bindings.(i))

let run_bindings_staged t ~before ~after ~delta =
  if t.delta_pos < 0 then invalid_arg "Plan.run_bindings_staged: full plan (use run_bindings)";
  let cur = exec t ~resolve:(staged_resolve t ~before ~after) ~delta in
  List.init cur.len (fun i -> (env_of t cur.bindings.(i), cur.counts.(i)))

(* --- plan cache ----------------------------------------------------------- *)

module Cache = struct
  type plan = t

  type t = {
    table : (string * int, plan) Hashtbl.t;  (* (printed rule, delta pos) *)
    mutable compiles : int;
  }

  let create () = { table = Hashtbl.create 32; compiles = 0 }

  let get c rule dp =
    let key = (Ast.rule_to_string rule, dp) in
    match Hashtbl.find_opt c.table key with
    | Some p -> p
    | None ->
      let p = if dp < 0 then compile rule else compile_delta rule ~delta_pos:dp in
      c.compiles <- c.compiles + 1;
      Hashtbl.replace c.table key p;
      p

  let full c rule = get c rule (-1)

  let delta c rule ~delta_pos = get c rule delta_pos

  let size c = Hashtbl.length c.table

  let compiles c = c.compiles
end
