(** Compiled join plans for rule bodies — the paper's rule-based optimizer
    applied to grounding.

    {!Matcher} interprets a rule body afresh on every call: it re-derives
    the bound argument positions of each literal per frontier, resolves
    variable slots through a string-keyed hash table per tuple, and advances
    the frontier as a consed [(binding, count) list].  A {!t} is the
    one-shot compiled form of the same evaluation: literals are reordered
    once by a bound-variable/selectivity heuristic, every positive literal
    is resolved at compile time to a probe against a persistent
    {!Dd_relational.Relation.get_index} hash index on its bound columns
    (built once per (relation, key columns) and maintained incrementally by
    inserts and removes), variables become integer slots, and the frontier
    advances over growable arrays.  Negated literals and guards are
    scheduled at the earliest step where their variables are bound.

    Execution is count-exact with the legacy matcher: both enumerate the
    same multiset of body groundings, so every head tuple carries the same
    derivation count (property-tested in [test/test_plan.ml]).

    Relations are read through {!view}s.  A [Patched] view presents "the
    relation as it was" without copying: the live relation minus an
    exclusion set plus a (usually tiny) re-inclusion set.  This is what
    makes semi-naive fixpoints ({!Engine.eval_stratum}) and DRed batches
    ({!Dred.apply}) snapshot-free — the previous state is a view over the
    current one, not a [Relation.copy]. *)

module Value = Dd_relational.Value
module Tuple = Dd_relational.Tuple
module Relation = Dd_relational.Relation

type view =
  | Whole of Relation.t
  | Patched of {
      base : Relation.t;
      minus : unit Tuple.Hashtbl.t;  (** members of [base] to hide *)
      plus : unit Tuple.Hashtbl.t;  (** tuples to add (disjoint from [base] \ [minus]) *)
    }
      (** A set-semantics snapshot of a relation's earlier state, expressed
          against its live contents.  Multiplicities are not represented:
          views only feed positive-literal matching (membership, count
          multiplier 1) and negation checks, where membership is all that
          matters. *)

type lookup = string -> view
(** Resolves a predicate name to its contents; must return an empty view
    for unknown predicates. *)

val whole : Relation.t -> view

val patched :
  base:Relation.t -> minus:unit Tuple.Hashtbl.t -> plus:unit Tuple.Hashtbl.t -> view

val view_of_lookup : (string -> Relation.t) -> lookup
(** Wrap a plain relation lookup as a [Whole]-view lookup. *)

val view_mem : view -> Tuple.t -> bool

type t
(** A compiled plan: either a full-evaluation plan ({!compile}) or a
    delta-specialized plan for one body position ({!compile_delta}). *)

val compile : Ast.rule -> t
(** Compile a full-evaluation plan.  The body literals are reordered by a
    greedy heuristic: at each step, pick the positive literal with the most
    already-bound argument positions (constants count), breaking ties
    toward fewer fresh variables and then source order — so every join
    step after the first can probe an index rather than scan. *)

val compile_delta : Ast.rule -> delta_pos:int -> t
(** Compile the delta-specialized variant for semi-naive / DRed evaluation:
    the literal at [delta_pos] is consumed first (against the explicit
    delta passed at run time), the remaining literals follow the same
    greedy order seeded by the delta literal's variables.  Resolution keys
    off {e original} body positions: strictly before [delta_pos] resolves
    through the run-time [before] lookup (new state), strictly after
    through [after] (old state), exactly like
    {!Matcher.eval_rule_staged}.  A negated literal at [delta_pos] is
    matched positively against the delta (signs live in the counts). *)

val rule : t -> Ast.rule

val delta_pos : t -> int
(** The specialized position, or [-1] for a full plan. *)

val literal_order : t -> int list
(** Original body positions in execution order (for inspection/tests). *)

val run : t -> lookup:lookup -> (Tuple.t * int) list
(** Execute a full plan: head tuples with derivation counts, equal (as a
    counted multiset) to {!Matcher.eval_rule}.  Raises [Invalid_argument]
    on a delta plan. *)

val run_iter : t -> lookup:lookup -> f:(Tuple.t -> int -> unit) -> unit
(** Execute a full plan, streaming [f tuple count] per surviving body
    grounding {e without} aggregating counts or materializing the result
    list — a head tuple derived [k] ways is yielded [k] times, with the
    same total count as {!run}.  Callers accumulate (e.g. through
    [Relation.insert_prev ~count]); at millions of groundings this skips
    gigabytes of list and aggregation-table allocation.  Raises
    [Invalid_argument] on a delta plan. *)

val run_staged :
  t ->
  before:lookup ->
  after:lookup ->
  delta:(Tuple.t * int) list ->
  (Tuple.t * int) list
(** Execute a delta plan; mirrors {!Matcher.eval_rule_staged}.  Raises
    [Invalid_argument] on a full plan. *)

val run_bindings : t -> lookup:lookup -> (string -> Value.t option) list
(** Full plan, groundings exposed as variable environments; mirrors
    {!Matcher.eval_rule_bindings}. *)

val run_bindings_staged :
  t ->
  before:lookup ->
  after:lookup ->
  delta:(Tuple.t * int) list ->
  ((string -> Value.t option) * int) list
(** Delta plan, environments with signed counts; mirrors
    {!Matcher.eval_rule_bindings_staged}. *)

(** Compiled plans cached by rule identity (printed form) and delta
    position, so repeated {!Engine} rounds and {!Dred} batches reuse both
    the plan and the relation indexes it probes — mirroring how the
    inference side caches its compiled kernel across incremental steps. *)
module Cache : sig
  type plan := t

  type t

  val create : unit -> t

  val full : t -> Ast.rule -> plan

  val delta : t -> Ast.rule -> delta_pos:int -> plan

  val size : t -> int
  (** Number of distinct compiled plans held. *)

  val compiles : t -> int
  (** Total compilations performed (cache misses); for tests and stats. *)
end
