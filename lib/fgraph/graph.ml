type var = int

type weight_id = int

type literal = { var : var; negated : bool }

type factor = {
  head : var option;
  bodies : literal array array;
  weight_id : weight_id;
  semantics : Semantics.t;
}

type evidence =
  | Query
  | Evidence of bool

(* Growable arrays keep appends cheap; incremental grounding extends a live
   graph with new variables and factors. *)
type 'a vec = { mutable data : 'a array; mutable len : int; dummy : 'a }

let vec_create dummy = { data = Array.make 16 dummy; len = 0; dummy }

let vec_push v x =
  if v.len = Array.length v.data then begin
    let grown = Array.make (2 * v.len) v.dummy in
    Array.blit v.data 0 grown 0 v.len;
    v.data <- grown
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let vec_get v i =
  if i < 0 || i >= v.len then invalid_arg "Graph: index out of bounds";
  v.data.(i)

let vec_set v i x =
  if i < 0 || i >= v.len then invalid_arg "Graph: index out of bounds";
  v.data.(i) <- x

let vec_copy v = { v with data = Array.copy v.data }

(* Inverse operations over pre-transaction slots.  Appends need no entry:
   rollback truncates the growable arrays back to the recorded base
   lengths, so only in-place mutations of pre-existing slots are logged.
   Adjacency lists are persistent and prepend-only, so one entry holding
   the old list head restores a variable's adjacency in O(1) no matter how
   many factors were added. *)
type undo =
  | U_evidence of var * evidence
  | U_weight of weight_id * float
  | U_factor of int * factor
  | U_adjacency of var * int list

type journal = {
  base_vars : int;
  base_weights : int;
  base_factors : int;
  mutable entries : undo list;  (* newest first *)
}

type t = {
  evidence : evidence vec;
  weights : float vec;
  learnable : bool vec;
  factors : factor vec;
  adjacency : int list vec;  (** var -> factor indices *)
  mutable journal : journal option;
}

let create () =
  {
    evidence = vec_create Query;
    weights = vec_create 0.0;
    learnable = vec_create false;
    factors =
      vec_create { head = None; bodies = [||]; weight_id = 0; semantics = Semantics.Linear };
    adjacency = vec_create [];
    journal = None;
  }

let num_vars t = t.evidence.len

let num_factors t = t.factors.len

let num_weights t = t.weights.len

let add_var ?(evidence = Query) t =
  vec_push t.evidence evidence;
  vec_push t.adjacency [];
  t.evidence.len - 1

let add_vars ?evidence t n = Array.init n (fun _ -> add_var ?evidence t)

let add_weight ?(learnable = false) t value =
  vec_push t.weights value;
  vec_push t.learnable learnable;
  t.weights.len - 1

let vars_of_factor f =
  let vars =
    Array.to_list (Array.concat (Array.to_list f.bodies))
    |> List.map (fun l -> l.var)
  in
  let vars = match f.head with Some h -> h :: vars | None -> vars in
  List.sort_uniq compare vars

let add_factor t f =
  let check_var v =
    if v < 0 || v >= num_vars t then invalid_arg "Graph.add_factor: unknown variable"
  in
  (match f.head with Some h -> check_var h | None -> ());
  Array.iter (fun body -> Array.iter (fun l -> check_var l.var) body) f.bodies;
  if f.weight_id < 0 || f.weight_id >= num_weights t then
    invalid_arg "Graph.add_factor: unknown weight";
  vec_push t.factors f;
  let idx = t.factors.len - 1 in
  List.iter
    (fun v ->
      let old = vec_get t.adjacency v in
      (match t.journal with
      | Some j when v < j.base_vars -> j.entries <- U_adjacency (v, old) :: j.entries
      | _ -> ());
      vec_set t.adjacency v (idx :: old))
    (vars_of_factor f);
  idx

let pairwise t ~weight a b =
  add_factor t
    {
      head = None;
      bodies = [| [| { var = a; negated = false }; { var = b; negated = false } |] |];
      weight_id = weight;
      semantics = Semantics.Logical;
    }

let unary t ~weight v =
  add_factor t
    {
      head = None;
      bodies = [| [| { var = v; negated = false } |] |];
      weight_id = weight;
      semantics = Semantics.Logical;
    }

let implication t ~weight ~semantics body head =
  add_factor t
    {
      head = Some head;
      bodies = [| Array.of_list (List.map (fun v -> { var = v; negated = false }) body) |];
      weight_id = weight;
      semantics;
    }

let extend_factor t i bodies =
  if Array.length bodies > 0 then begin
    let f = vec_get t.factors i in
    (match t.journal with
    | Some j when i < j.base_factors -> j.entries <- U_factor (i, f) :: j.entries
    | _ -> ());
    let known = vars_of_factor f in
    let extended = { f with bodies = Array.append f.bodies bodies } in
    vec_set t.factors i extended;
    let fresh =
      List.filter (fun v -> not (List.mem v known)) (vars_of_factor extended)
    in
    List.iter
      (fun v ->
        let old = vec_get t.adjacency v in
        (match t.journal with
        | Some j when v < j.base_vars -> j.entries <- U_adjacency (v, old) :: j.entries
        | _ -> ());
        vec_set t.adjacency v (i :: old))
      fresh
  end

let factor t i = vec_get t.factors i

let weight_value t w = vec_get t.weights w

let set_weight t w v =
  (match t.journal with
  | Some j when w < j.base_weights -> j.entries <- U_weight (w, vec_get t.weights w) :: j.entries
  | _ -> ());
  vec_set t.weights w v

let weight_learnable t w = vec_get t.learnable w

let evidence_of t v = vec_get t.evidence v

let set_evidence t v e =
  (match t.journal with
  | Some j when v < j.base_vars -> j.entries <- U_evidence (v, vec_get t.evidence v) :: j.entries
  | _ -> ());
  vec_set t.evidence v e

let factors_of_var t v = vec_get t.adjacency v

let iter_factors f t =
  for i = 0 to t.factors.len - 1 do
    f i t.factors.data.(i)
  done

let query_vars t =
  let out = ref [] in
  for v = num_vars t - 1 downto 0 do
    match vec_get t.evidence v with
    | Query -> out := v :: !out
    | Evidence _ -> ()
  done;
  !out

let evidence_vars t =
  let out = ref [] in
  for v = num_vars t - 1 downto 0 do
    match vec_get t.evidence v with
    | Query -> ()
    | Evidence b -> out := (v, b) :: !out
  done;
  !out

let body_satisfied assignment body =
  Array.for_all (fun l -> assignment l.var <> l.negated) body

let satisfied_bodies assignment f =
  Array.fold_left
    (fun acc body -> if body_satisfied assignment body then acc + 1 else acc)
    0 f.bodies

let factor_energy t f assignment =
  let n = satisfied_bodies assignment f in
  let sign =
    match f.head with
    | None -> 1.0
    | Some h -> if assignment h then 1.0 else -1.0
  in
  weight_value t f.weight_id *. sign *. Semantics.g f.semantics n

let factor_energy_prefix t f assignment k =
  let n = ref 0 in
  for b = 0 to min k (Array.length f.bodies) - 1 do
    if body_satisfied assignment f.bodies.(b) then incr n
  done;
  let sign =
    match f.head with
    | None -> 1.0
    | Some h -> if assignment h then 1.0 else -1.0
  in
  weight_value t f.weight_id *. sign *. Semantics.g f.semantics !n

let total_energy t assignment =
  let acc = ref 0.0 in
  iter_factors (fun _ f -> acc := !acc +. factor_energy t f assignment) t;
  !acc

let copy t =
  {
    evidence = vec_copy t.evidence;
    weights = vec_copy t.weights;
    learnable = vec_copy t.learnable;
    factors = vec_copy t.factors;
    adjacency = vec_copy t.adjacency;
    journal = None;
  }

(* --- transactional journal ------------------------------------------------ *)

let journal_begin t =
  let j =
    {
      base_vars = num_vars t;
      base_weights = num_weights t;
      base_factors = num_factors t;
      entries = [];
    }
  in
  t.journal <- Some j;
  j

let journal_end t = t.journal <- None

let vec_truncate v n =
  if n < v.len then begin
    for i = n to v.len - 1 do
      v.data.(i) <- v.dummy
    done;
    v.len <- n
  end

(* Idempotent: entries carry absolute pre-transaction values and are
   applied newest-to-oldest, so the oldest (original) value wins for a
   slot touched several times, and re-running a partially completed
   rollback converges to the same state. *)
let rollback t j =
  t.journal <- None;
  List.iter
    (function
      | U_evidence (v, e) -> if v < j.base_vars then vec_set t.evidence v e
      | U_weight (w, x) -> if w < j.base_weights then vec_set t.weights w x
      | U_factor (i, f) -> if i < j.base_factors then vec_set t.factors i f
      | U_adjacency (v, l) -> if v < j.base_vars then vec_set t.adjacency v l)
    j.entries;
  vec_truncate t.evidence j.base_vars;
  vec_truncate t.adjacency j.base_vars;
  vec_truncate t.weights j.base_weights;
  vec_truncate t.learnable j.base_weights;
  vec_truncate t.factors j.base_factors

let freeze_assignment t =
  Array.init (num_vars t) (fun v ->
      match vec_get t.evidence v with
      | Evidence b -> b
      | Query -> false)

(* Structural integrity check for graphs restored from disk (and a cheap
   invariant audit elsewhere).  Everything [add_factor] enforces on entry
   is re-checked, because a deserialized or unmarshalled graph bypassed
   those constructors' guarantees. *)
let validate t =
  let error fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let nvars = num_vars t and nweights = num_weights t in
  let check_weights () =
    let bad = ref None in
    for w = 0 to nweights - 1 do
      if !bad = None then begin
        let value = vec_get t.weights w in
        if not (Float.is_finite value) then bad := Some (w, value)
      end
    done;
    match !bad with
    | Some (w, value) -> error "weight %d is not finite (%h)" w value
    | None -> Ok ()
  in
  let check_factor i f =
    let check_var what v =
      if v < 0 || v >= nvars then
        error "factor %d: %s variable %d out of range [0,%d)" i what v nvars
      else Ok ()
    in
    let ( let* ) = Result.bind in
    let* () = match f.head with Some h -> check_var "head" h | None -> Ok () in
    let* () =
      Array.fold_left
        (fun acc body ->
          Array.fold_left
            (fun acc l ->
              let* () = acc in
              check_var "literal" l.var)
            acc body)
        (Ok ()) f.bodies
    in
    if f.weight_id < 0 || f.weight_id >= nweights then
      error "factor %d: weight id %d out of range [0,%d)" i f.weight_id nweights
    else Ok ()
  in
  let rec check_factors i =
    if i >= num_factors t then Ok ()
    else
      match check_factor i (vec_get t.factors i) with
      | Ok () -> check_factors (i + 1)
      | Error _ as e -> e
  in
  Result.bind (check_weights ()) (fun () -> check_factors 0)

let degree_stats t =
  let n = num_vars t in
  if n = 0 then (0.0, 0)
  else begin
    let total = ref 0 and worst = ref 0 in
    for v = 0 to n - 1 do
      let d = List.length (vec_get t.adjacency v) in
      total := !total + d;
      worst := max !worst d
    done;
    (float_of_int !total /. float_of_int n, !worst)
  end
