(** Factor graphs over Boolean random variables.

    A factor graph is the triple [(V, F, w)] of Section 2.5: Boolean
    variables (one per candidate tuple), hyperedge factors (one per rule
    grounding group), and a weight function.  A factor here records the
    rule's head variable, the set of body groundings sharing that head, a
    reference into the (tied) weight table, and the counting semantics [g];
    its energy in a world [I] is [w * sign(head, I) * g (#satisfied bodies)]
    — Equation 1 verbatim.  Plain MLN/pairwise factors are the special case
    of a single body and no head.

    Weight tying is first class: many factors may share one weight id, and
    each weight is either learnable (estimated from evidence) or fixed
    (rule-supplied constant).

    Graphs are mutable and growable — incremental grounding appends new
    variables and factors to an existing graph ([Delta V], [Delta F]). *)

type var = int

type weight_id = int

type literal = { var : var; negated : bool }
(** A literal is satisfied by assignment [a] when [a.(var) <> negated]. *)

type factor = {
  head : var option;
      (** the rule's consequent; [None] gives a body-only potential whose
          sign is fixed positive *)
  bodies : literal array array;  (** one inner array per body grounding *)
  weight_id : weight_id;
  semantics : Semantics.t;
}

type evidence =
  | Query  (** value to be inferred *)
  | Evidence of bool  (** value fixed by supervision / training data *)

type t

val create : unit -> t

val add_var : ?evidence:evidence -> t -> var
(** Fresh variable (default [Query]). *)

val add_vars : ?evidence:evidence -> t -> int -> var array

val add_weight : ?learnable:bool -> t -> float -> weight_id
(** Register a weight value (default not learnable). *)

val add_factor : t -> factor -> int
(** Append a factor (returns its index).  All referenced variables and the
    weight id must exist. *)

val pairwise : t -> weight:weight_id -> var -> var -> int
(** Convenience: an Ising-style conjunction factor [w * 1{a and b}] — a
    single-body, headless factor with logical semantics. *)

val unary : t -> weight:weight_id -> var -> int
(** Convenience: bias factor [w * 1{a}]. *)

val implication : t -> weight:weight_id -> semantics:Semantics.t -> var list -> var -> int
(** [implication t ~weight ~semantics body head] adds one body grounding
    [body => head] to a fresh factor. *)

val extend_factor : t -> int -> literal array array -> unit
(** [extend_factor t i bodies] appends body groundings to factor [i]
    (incremental grounding discovers new groundings of an existing rule
    head / weight group).  Adjacency is updated for newly referenced
    variables. *)

val num_vars : t -> int

val num_factors : t -> int

val num_weights : t -> int

val factor : t -> int -> factor

val weight_value : t -> weight_id -> float

val set_weight : t -> weight_id -> float -> unit

val weight_learnable : t -> weight_id -> bool

val evidence_of : t -> var -> evidence

val set_evidence : t -> var -> evidence -> unit

val factors_of_var : t -> var -> int list
(** Indices of factors mentioning the variable (head or body). *)

val vars_of_factor : factor -> var list
(** Distinct variables of a factor. *)

val iter_factors : (int -> factor -> unit) -> t -> unit

val query_vars : t -> var list

val evidence_vars : t -> (var * bool) list

val factor_energy : t -> factor -> (var -> bool) -> float
(** [w * sign(head) * g(#satisfied bodies)] under the assignment. *)

val factor_energy_prefix : t -> factor -> (var -> bool) -> int -> float
(** Energy of the factor as if it only had its first [k] bodies — the
    pre-extension energy needed when incremental grounding appended
    groundings to an existing factor. *)

val total_energy : t -> (var -> bool) -> float
(** Sum of factor energies: the log-unnormalized probability [W(F, I)]. *)

val copy : t -> t
(** Independent deep copy (used to materialize snapshots). *)

type journal
(** An undo log over one transactional episode.  Appends (new variables,
    weights, factors) are undone by truncating back to the recorded base
    counts; in-place mutations of pre-existing slots ({!set_evidence},
    {!set_weight}, {!extend_factor}, adjacency prepends from
    {!add_factor}) are logged as inverse operations holding the absolute
    pre-transaction value. *)

val journal_begin : t -> journal
(** Start recording.  Replaces any previously active journal (the old one
    can no longer be rolled back through). *)

val journal_end : t -> unit
(** Stop recording (commit: the journal is simply dropped). *)

val rollback : t -> journal -> unit
(** Restore the graph to its state at [journal_begin] and stop recording.
    Idempotent — entries carry absolute previous values, so re-running a
    partially completed rollback converges. *)

val freeze_assignment : t -> bool array
(** A fresh assignment array: evidence variables at their fixed value,
    query variables false. *)

val degree_stats : t -> float * int
(** Mean and max number of factors per variable. *)

val validate : t -> (unit, string) result
(** Structural integrity check: every factor's head and literal variables
    in range, every [weight_id] declared, every weight finite (no NaN or
    infinity).  Run on graphs restored from disk, where the [add_factor]
    entry checks were bypassed. *)
