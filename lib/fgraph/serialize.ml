module Crc32 = Dd_util.Crc32
module Fault = Dd_util.Fault

exception Format_error of string

let fail fmt = Printf.ksprintf (fun message -> raise (Format_error message)) fmt

let semantics_code = function
  | Semantics.Linear -> "linear"
  | Semantics.Logical -> "logical"
  | Semantics.Ratio -> "ratio"

let semantics_of_code code =
  match Semantics.of_string code with
  | Some s -> s
  | None -> fail "unknown semantics %s" code

(* v2 writer: identical body to v1 plus a CRC-32 footer over every byte
   from the header through the last body line (checksum and end lines
   excluded), so any single flipped or dropped byte is detected on load. *)
let write_lines ~emit g =
  let crc = ref Crc32.init in
  let emit s =
    crc := Crc32.update_string !crc s;
    emit s
  in
  emit "ddgraph 2\n";
  emit (Printf.sprintf "vars %d\n" (Graph.num_vars g));
  List.iter
    (fun (v, value) -> emit (Printf.sprintf "evidence %d %d\n" v (if value then 1 else 0)))
    (Graph.evidence_vars g);
  for w = 0 to Graph.num_weights g - 1 do
    emit
      (Printf.sprintf "weight %.17g %d\n" (Graph.weight_value g w)
         (if Graph.weight_learnable g w then 1 else 0))
  done;
  Graph.iter_factors
    (fun _ f ->
      let buffer = Buffer.create 64 in
      let head = match f.Graph.head with Some h -> h | None -> -1 in
      Buffer.add_string buffer
        (Printf.sprintf "factor %d %d %s %d" head f.Graph.weight_id
           (semantics_code f.Graph.semantics)
           (Array.length f.Graph.bodies));
      Array.iter
        (fun body ->
          Buffer.add_string buffer (Printf.sprintf " | %d" (Array.length body));
          Array.iter
            (fun l ->
              Buffer.add_string buffer
                (Printf.sprintf " %d %d" l.Graph.var (if l.Graph.negated then 1 else 0)))
            body)
        f.Graph.bodies;
      Buffer.add_char buffer '\n';
      emit (Buffer.contents buffer))
    g;
  let digest = Crc32.finish !crc in
  emit (Printf.sprintf "checksum %s\n" (Crc32.to_hex digest));
  emit "end\n"

let read_lines next_line =
  let crc = ref Crc32.init in
  let expect_line () =
    match next_line () with
    | Some l ->
      crc := Crc32.update_string !crc (l ^ "\n");
      l
    | None -> fail "unexpected end of input"
  in
  let version =
    match String.split_on_char ' ' (expect_line ()) with
    | [ "ddgraph"; "1" ] -> 1
    | [ "ddgraph"; "2" ] -> 2
    | _ -> fail "bad header (expected 'ddgraph 1' or 'ddgraph 2')"
  in
  let g = Graph.create () in
  let nvars =
    match String.split_on_char ' ' (expect_line ()) with
    | [ "vars"; n ] -> (
      match int_of_string_opt n with Some n -> n | None -> fail "bad vars count")
    | _ -> fail "expected vars line"
  in
  if nvars < 0 then fail "negative vars count";
  ignore (Graph.add_vars g nvars);
  let parse_factor rest =
    match rest with
    | head :: weight :: semantics :: nbodies :: tail ->
      let head = match int_of_string_opt head with Some h -> h | None -> fail "bad head" in
      if head >= nvars then fail "factor head variable %d out of range" head;
      let weight_id =
        match int_of_string_opt weight with Some w -> w | None -> fail "bad weight id"
      in
      if weight_id < 0 || weight_id >= Graph.num_weights g then
        fail "factor weight id %d out of range" weight_id;
      let semantics = semantics_of_code semantics in
      let expected_bodies =
        match int_of_string_opt nbodies with Some n -> n | None -> fail "bad body count"
      in
      let bodies = ref [] in
      let rec parse_bodies = function
        | [] -> ()
        | "|" :: nlits :: rest ->
          let nlits =
            match int_of_string_opt nlits with Some n -> n | None -> fail "bad literal count"
          in
          if nlits < 0 then fail "negative literal count";
          let lits = Array.make nlits { Graph.var = 0; negated = false } in
          let rest = ref rest in
          for i = 0 to nlits - 1 do
            match !rest with
            | var :: neg :: tail ->
              let var =
                match int_of_string_opt var with Some v -> v | None -> fail "bad literal var"
              in
              if var < 0 || var >= nvars then fail "literal variable %d out of range" var;
              lits.(i) <- { Graph.var; negated = neg = "1" };
              rest := tail
            | _ -> fail "truncated body"
          done;
          bodies := lits :: !bodies;
          parse_bodies !rest
        | token :: _ -> fail "unexpected token %s in factor" token
      in
      parse_bodies tail;
      let bodies = Array.of_list (List.rev !bodies) in
      if Array.length bodies <> expected_bodies then
        fail "body count mismatch (%d declared, %d found)" expected_bodies
          (Array.length bodies);
      ignore
        (Graph.add_factor g
           {
             Graph.head = (if head < 0 then None else Some head);
             bodies;
             weight_id;
             semantics;
           })
    | _ -> fail "truncated factor line"
  in
  let checksum_seen = ref false in
  let rec loop () =
    (* The checksum covers every line before its own, so snapshot the
       running digest before consuming the next line. *)
    let body_crc = Crc32.finish !crc in
    let l = expect_line () in
    let reject_after_checksum () =
      if !checksum_seen then fail "content after checksum footer"
    in
    match String.split_on_char ' ' l with
    | [ "end" ] ->
      if version >= 2 && not !checksum_seen then fail "missing checksum footer"
    | [ "checksum"; hex ] ->
      reject_after_checksum ();
      if version < 2 then fail "unexpected checksum line in ddgraph 1";
      (match Crc32.of_hex hex with
      | None -> fail "malformed checksum %s" hex
      | Some declared ->
        if declared <> body_crc then
          fail "checksum mismatch (declared %s, computed %s)" hex (Crc32.to_hex body_crc));
      checksum_seen := true;
      loop ()
    | "evidence" :: [ v; value ] ->
      reject_after_checksum ();
      let v = match int_of_string_opt v with Some v -> v | None -> fail "bad evidence var" in
      if v < 0 || v >= nvars then fail "evidence var out of range";
      Graph.set_evidence g v (Graph.Evidence (value = "1"));
      loop ()
    | "weight" :: [ value; learnable ] ->
      reject_after_checksum ();
      let value =
        match float_of_string_opt value with Some v -> v | None -> fail "bad weight"
      in
      ignore (Graph.add_weight ~learnable:(learnable = "1") g value);
      loop ()
    | "factor" :: rest ->
      reject_after_checksum ();
      parse_factor rest;
      loop ()
    | _ -> fail "unexpected line: %s" l
  in
  loop ();
  g

(* Like [read_lines] but additionally requires exhaustion of the input
   after [end] — a whole-file read, where trailing content (for instance a
   duplicated [end] from a botched concatenation) means corruption.  The
   embedded-section entry points ([read] on an open channel) must NOT
   check this: they legitimately stop mid-stream. *)
let read_lines_exhaustive next_line =
  let g = read_lines next_line in
  (match next_line () with
  | Some extra when String.trim extra <> "" -> fail "trailing content after end: %s" extra
  | Some _ | None -> ());
  g

let write out g = write_lines ~emit:(output_string out) g

let read ic = read_lines (fun () -> try Some (input_line ic) with End_of_file -> None)

let save path g =
  (* Atomic publish: the graph is streamed to a sibling temp file which is
     renamed over the target only after a complete write, so a crash
     mid-save never leaves a truncated artifact at [path]. *)
  let tmp = path ^ ".tmp" in
  let out = open_out tmp in
  (match write out g with
  | () -> close_out out
  | exception e ->
    close_out_noerr out;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Fault.hit "serialize.save.pre_rename";
  Sys.rename tmp path

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      read_lines_exhaustive (fun () -> try Some (input_line ic) with End_of_file -> None))

let to_string g =
  let buffer = Buffer.create 4096 in
  write_lines ~emit:(Buffer.add_string buffer) g;
  Buffer.contents buffer

let of_string text =
  let lines = ref (String.split_on_char '\n' text) in
  read_lines_exhaustive (fun () ->
      match !lines with
      | [] -> None
      | l :: rest ->
        lines := rest;
        Some l)
