(** Factor-graph (de)serialization.

    DeepDive materializes the grounded factor graph as a file handed to the
    external sampler, and the incremental engine's materialization is an
    overnight artifact meant to be reused across sessions — both need a
    durable format.  This is a versioned, line-oriented text format:
    human-greppable, stable under appends, and independent of in-memory
    representation details.

    {v
      ddgraph 2
      vars <n>
      evidence <var> <0|1>          (one line per evidence variable)
      weight <value> <0|1>          (in weight-id order; flag = learnable)
      factor <head|-1> <weight_id> <semantics> <nbodies> | <nlits> <var> <0|1> ... | ...
      checksum <crc32-hex>          (over every byte above this line)
      end
    v}

    Version 2 adds the CRC-32 footer; version 1 files (no footer) are
    still readable.  The reader bounds-checks every reference — evidence
    vars, factor heads, literal vars and weight ids — so a corrupt file
    raises {!Format_error} instead of building an inconsistent graph.
    Writers always emit version 2, and serialization is deterministic:
    load followed by re-serialization is byte-identical. *)

exception Format_error of string

val write : out_channel -> Graph.t -> unit

val read : in_channel -> Graph.t
(** Raises {!Format_error} on malformed input (including a checksum
    mismatch).  Stops at the [end] line, leaving the channel positioned
    after it — usable for graphs embedded in larger files. *)

val save : string -> Graph.t -> unit
(** Write to a file path atomically: the content goes to [path ^ ".tmp"]
    and is renamed over [path] only once complete, so an interrupted save
    never leaves a truncated graph at the target. *)

val load : string -> Graph.t
(** Read a whole file; trailing content after [end] (e.g. a duplicated
    footer) is a {!Format_error}. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
