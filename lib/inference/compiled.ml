module Graph = Dd_fgraph.Graph
module Semantics = Dd_fgraph.Semantics
module Prng = Dd_util.Prng
module Stats = Dd_util.Stats
module Budget = Dd_util.Budget

(* Semantics tags, kept as ints so the energy kernel branches on an
   immediate instead of loading a constructor. *)
let sem_linear = 0
let sem_logical = 1
let sem_ratio = 2

let sem_tag = function
  | Semantics.Linear -> sem_linear
  | Semantics.Logical -> sem_logical
  | Semantics.Ratio -> sem_ratio

(* Must compute exactly what [Semantics.g] computes (bit-exactness with
   the legacy sampler depends on it). *)
let g_of tag n =
  if tag = sem_linear then float_of_int n
  else if tag = sem_logical then if n > 0 then 1.0 else 0.0
  else log (1.0 +. float_of_int n)

type t = {
  graph : Graph.t;
  nvars : int;
  nfactors : int;
  nbodies : int;
  (* factor-major view *)
  f_head : int array;  (* -1 = no head *)
  f_sem : int array;
  f_weight : int array;
  f_body_off : int array;  (* nfactors + 1; spans of global body ids *)
  b_lit_off : int array;  (* nbodies + 1; spans into l_var / l_neg *)
  l_var : int array;
  l_neg : Bytes.t;
  (* variable-major view: var -> factor groups -> body occurrences *)
  v_grp_off : int array;  (* nvars + 1 *)
  grp_factor : int array;
  grp_occ_off : int array;  (* ngroups + 1 *)
  occ_body : int array;  (* global body id *)
  occ_neg : Bytes.t;
  (* dense weight slots *)
  weights : float array;
  learnable_active : int array;
  query : int array;
}

let graph t = t.graph
let num_vars t = t.nvars
let num_factors t = t.nfactors
let num_weights t = Array.length t.weights
let num_bodies t = t.nbodies
let num_query t = Array.length t.query
let query_vars t = Array.copy t.query
let learnable_active t = Array.copy t.learnable_active

let refresh_weights t =
  for w = 0 to Array.length t.weights - 1 do
    t.weights.(w) <- Graph.weight_value t.graph w
  done

let count_bodies g =
  let n = ref 0 in
  Graph.iter_factors (fun _ f -> n := !n + Array.length f.Graph.bodies) g;
  !n

let matches_structure t g =
  t.nvars = Graph.num_vars g
  && t.nfactors = Graph.num_factors g
  && Array.length t.weights = Graph.num_weights g
  && t.nbodies = count_bodies g

let bool_byte b = if b then '\001' else '\000'

let compile g =
  let nvars = Graph.num_vars g in
  let nfactors = Graph.num_factors g in
  let nweights = Graph.num_weights g in
  (* Pass 1: factor-major sizes. *)
  let nbodies = count_bodies g in
  let nlits = ref 0 in
  Graph.iter_factors
    (fun _ f ->
      Array.iter (fun body -> nlits := !nlits + Array.length body) f.Graph.bodies)
    g;
  let nlits = !nlits in
  let f_head = Array.make nfactors (-1) in
  let f_sem = Array.make nfactors 0 in
  let f_weight = Array.make nfactors 0 in
  let f_body_off = Array.make (nfactors + 1) 0 in
  let b_lit_off = Array.make (nbodies + 1) 0 in
  let l_var = Array.make (max 1 nlits) 0 in
  let l_neg = Bytes.make (max 1 nlits) '\000' in
  (* [stamp.(v)] remembers the last global body id that mentioned [v],
     catching within-body repeats in O(1) per literal. *)
  let stamp = Array.make (max 1 nvars) (-1) in
  let bid = ref 0 and lid = ref 0 in
  Graph.iter_factors
    (fun fid f ->
      (match f.Graph.head with Some h -> f_head.(fid) <- h | None -> ());
      f_sem.(fid) <- sem_tag f.Graph.semantics;
      f_weight.(fid) <- f.Graph.weight_id;
      f_body_off.(fid) <- !bid;
      Array.iter
        (fun body ->
          b_lit_off.(!bid) <- !lid;
          Array.iter
            (fun l ->
              if stamp.(l.Graph.var) = !bid then
                invalid_arg "Compiled.compile: variable repeated within a body";
              stamp.(l.Graph.var) <- !bid;
              l_var.(!lid) <- l.Graph.var;
              Bytes.set l_neg !lid (bool_byte l.Graph.negated);
              incr lid)
            body;
          incr bid)
        f.Graph.bodies)
    g;
  f_body_off.(nfactors) <- !bid;
  b_lit_off.(nbodies) <- !lid;
  (* Pass 2: variable-major group counts.  Factors are visited in
     ascending id order, so each variable's groups come out ascending;
     [last_fid.(v)] collapses the head and every body occurrence of one
     factor into a single group. *)
  let last_fid = Array.make (max 1 nvars) (-1) in
  let grp_count = Array.make (max 1 nvars) 0 in
  let touch v fid = if last_fid.(v) <> fid then begin last_fid.(v) <- fid; grp_count.(v) <- grp_count.(v) + 1 end in
  let iter_factor_vars fid =
    let h = f_head.(fid) in
    if h >= 0 then touch h fid;
    for b = f_body_off.(fid) to f_body_off.(fid + 1) - 1 do
      for l = b_lit_off.(b) to b_lit_off.(b + 1) - 1 do
        touch l_var.(l) fid
      done
    done
  in
  for fid = 0 to nfactors - 1 do
    iter_factor_vars fid
  done;
  let v_grp_off = Array.make (nvars + 1) 0 in
  for v = 0 to nvars - 1 do
    v_grp_off.(v + 1) <- v_grp_off.(v) + grp_count.(v)
  done;
  let ngroups = v_grp_off.(nvars) in
  let grp_factor = Array.make (max 1 ngroups) 0 in
  let grp_cnt = Array.make (max 1 ngroups) 0 in
  (* Pass 3: assign group slots and count occurrences per group. *)
  Array.fill last_fid 0 (Array.length last_fid) (-1);
  let grp_cursor = Array.make (max 1 nvars) 0 in
  let current_grp = Array.make (max 1 nvars) (-1) in
  let group_of v fid =
    if last_fid.(v) <> fid then begin
      last_fid.(v) <- fid;
      let slot = v_grp_off.(v) + grp_cursor.(v) in
      grp_cursor.(v) <- grp_cursor.(v) + 1;
      grp_factor.(slot) <- fid;
      current_grp.(v) <- slot
    end;
    current_grp.(v)
  in
  for fid = 0 to nfactors - 1 do
    let h = f_head.(fid) in
    if h >= 0 then ignore (group_of h fid);
    for b = f_body_off.(fid) to f_body_off.(fid + 1) - 1 do
      for l = b_lit_off.(b) to b_lit_off.(b + 1) - 1 do
        let grp = group_of l_var.(l) fid in
        grp_cnt.(grp) <- grp_cnt.(grp) + 1
      done
    done
  done;
  let grp_occ_off = Array.make (ngroups + 1) 0 in
  for grp = 0 to ngroups - 1 do
    grp_occ_off.(grp + 1) <- grp_occ_off.(grp) + grp_cnt.(grp)
  done;
  let nocc = grp_occ_off.(ngroups) in
  let occ_body = Array.make (max 1 nocc) 0 in
  let occ_neg = Bytes.make (max 1 nocc) '\000' in
  (* Pass 4: fill occurrences. *)
  Array.fill last_fid 0 (Array.length last_fid) (-1);
  Array.fill grp_cursor 0 (Array.length grp_cursor) 0;
  let occ_cursor = Array.make (max 1 ngroups) 0 in
  for fid = 0 to nfactors - 1 do
    let h = f_head.(fid) in
    if h >= 0 then ignore (group_of h fid);
    for b = f_body_off.(fid) to f_body_off.(fid + 1) - 1 do
      for l = b_lit_off.(b) to b_lit_off.(b + 1) - 1 do
        let grp = group_of l_var.(l) fid in
        let o = grp_occ_off.(grp) + occ_cursor.(grp) in
        occ_cursor.(grp) <- occ_cursor.(grp) + 1;
        occ_body.(o) <- b;
        Bytes.set occ_neg o (Bytes.get l_neg l)
      done
    done
  done;
  let weights = Array.init nweights (Graph.weight_value g) in
  let factor_counts = Array.make (max 1 nweights) 0 in
  for fid = 0 to nfactors - 1 do
    factor_counts.(f_weight.(fid)) <- factor_counts.(f_weight.(fid)) + 1
  done;
  let learnable_active = ref [] in
  for w = nweights - 1 downto 0 do
    if Graph.weight_learnable g w && factor_counts.(w) > 0 then
      learnable_active := w :: !learnable_active
  done;
  let query = Array.of_list (Graph.query_vars g) in
  {
    graph = g;
    nvars;
    nfactors;
    nbodies;
    f_head;
    f_sem;
    f_weight;
    f_body_off;
    b_lit_off;
    l_var;
    l_neg;
    v_grp_off;
    grp_factor;
    grp_occ_off;
    occ_body;
    occ_neg;
    weights;
    learnable_active = Array.of_list !learnable_active;
    query;
  }

(* --- state -------------------------------------------------------------- *)

type state = {
  k : t;
  assign : Bytes.t;  (* one byte per variable: '\000' false, '\001' true *)
  unsat : int array;  (* per global body: unsatisfied-literal count *)
  sat : int array;  (* per factor: satisfied-body count *)
}

let kernel st = st.k

let value st v = Bytes.unsafe_get st.assign v <> '\000'

let snapshot st = Array.init st.k.nvars (fun v -> value st v)

let accumulate_true st totals =
  for v = 0 to st.k.nvars - 1 do
    if Bytes.unsafe_get st.assign v <> '\000' then totals.(v) <- totals.(v) + 1
  done

let make_state ?init rng k =
  let init =
    match init with
    | Some a ->
      if Array.length a <> k.nvars then
        invalid_arg "Compiled.make_state: assignment size mismatch";
      a
    | None -> Gibbs.init_assignment rng k.graph
  in
  let assign = Bytes.init k.nvars (fun v -> bool_byte init.(v)) in
  let unsat = Array.make (max 1 k.nbodies) 0 in
  let sat = Array.make (max 1 k.nfactors) 0 in
  for fid = 0 to k.nfactors - 1 do
    for b = k.f_body_off.(fid) to k.f_body_off.(fid + 1) - 1 do
      let u = ref 0 in
      for l = k.b_lit_off.(b) to k.b_lit_off.(b + 1) - 1 do
        let sat_lit = init.(k.l_var.(l)) <> (Bytes.get k.l_neg l <> '\000') in
        if not sat_lit then incr u
      done;
      unsat.(b) <- !u;
      if !u = 0 then sat.(fid) <- sat.(fid) + 1
    done
  done;
  { k; assign; unsat; sat }

(* Satisfied-body count of a group's factor under a hypothetical value
   for [v], accumulated tail-recursively so the hot loop allocates
   nothing.  A literal of [v] is satisfied under hypothetical [x] iff
   [x <> neg], i.e. iff [neg = neg_sat] with [neg_sat = not x].  The
   counts are integers, so their accumulation order is irrelevant for
   bit-exactness with the legacy sampler. *)
let rec n_under k st v_cur neg_sat o last n =
  if o > last then n
  else begin
    let b = Array.unsafe_get k.occ_body o in
    let neg = Bytes.unsafe_get k.occ_neg o <> '\000' in
    let u = Array.unsafe_get st.unsat b in
    (* others_sat: every literal of the body except v's is satisfied. *)
    let lit_sat_now = v_cur <> neg in
    let others_sat = u = (if lit_sat_now then 0 else 1) in
    let sat_x = others_sat && neg = neg_sat in
    let n =
      if u = 0 then if sat_x then n else n - 1
      else if sat_x then n + 1
      else n
    in
    n_under k st v_cur neg_sat (o + 1) last n
  end

let conditional_true_prob st v =
  let k = st.k in
  let v_cur = Bytes.unsafe_get st.assign v <> '\000' in
  let delta = ref 0.0 in
  for grp = Array.unsafe_get k.v_grp_off v to Array.unsafe_get k.v_grp_off (v + 1) - 1 do
    let fid = Array.unsafe_get k.grp_factor grp in
    let base = Array.unsafe_get st.sat fid in
    let o0 = Array.unsafe_get k.grp_occ_off grp in
    let o1 = Array.unsafe_get k.grp_occ_off (grp + 1) - 1 in
    let n_true = n_under k st v_cur false o0 o1 base in
    let n_false = n_under k st v_cur true o0 o1 base in
    let w = Array.unsafe_get k.weights (Array.unsafe_get k.f_weight fid) in
    let sem = Array.unsafe_get k.f_sem fid in
    let h = Array.unsafe_get k.f_head fid in
    (* The float expression mirrors the legacy sampler's
       [w *. sign *. g(sem, n)] and [acc +. e_true -. e_false] exactly,
       keeping the two paths bit-identical. *)
    let sign_true =
      if h < 0 || h = v then 1.0
      else if Bytes.unsafe_get st.assign h <> '\000' then 1.0
      else -1.0
    in
    let sign_false = if h < 0 then 1.0 else if h = v then -1.0 else sign_true in
    delta := !delta +. (w *. sign_true *. g_of sem n_true) -. (w *. sign_false *. g_of sem n_false)
  done;
  Stats.sigmoid !delta

let set_value st v x =
  if value st v <> x then begin
    Bytes.unsafe_set st.assign v (bool_byte x);
    let k = st.k in
    for grp = k.v_grp_off.(v) to k.v_grp_off.(v + 1) - 1 do
      let fid = Array.unsafe_get k.grp_factor grp in
      for o = k.grp_occ_off.(grp) to k.grp_occ_off.(grp + 1) - 1 do
        let b = Array.unsafe_get k.occ_body o in
        let lit_sat = x <> (Bytes.unsafe_get k.occ_neg o <> '\000') in
        let before = Array.unsafe_get st.unsat b in
        let after = if lit_sat then before - 1 else before + 1 in
        Array.unsafe_set st.unsat b after;
        if before = 0 && after > 0 then st.sat.(fid) <- st.sat.(fid) - 1
        else if before > 0 && after = 0 then st.sat.(fid) <- st.sat.(fid) + 1
      done
    done
  end

let resample_var rng st v = set_value st v (Prng.bernoulli rng (conditional_true_prob st v))

let sweep rng st =
  let q = st.k.query in
  for i = 0 to Array.length q - 1 do
    resample_var rng st (Array.unsafe_get q i)
  done

let sweep_all rng st =
  for v = 0 to st.k.nvars - 1 do
    resample_var rng st v
  done

let sweep_slice rng st slice =
  for i = 0 to Array.length slice - 1 do
    resample_var rng st (Array.unsafe_get slice i)
  done

(* Identical PRNG consumption to [sweep_slice]; only the budget is polled
   between chunks, so a slice much larger than [every] cannot outlive its
   deadline by more than one chunk.  Safe from worker domains: [Budget.t]
   is domain-safe to poll. *)
let sweep_slice_budgeted ?(every = 128) ~budget ~site rng st slice =
  let n = Array.length slice in
  let every = max 1 every in
  let i = ref 0 in
  while !i < n do
    Budget.check budget site;
    let stop = min n (!i + every) in
    for j = !i to stop - 1 do
      resample_var rng st (Array.unsafe_get slice j)
    done;
    i := stop
  done

(* --- asynchronous (lock-free) sampling --------------------------------- *)

(* The async sampler shares only the assignment [Bytes] between domains:
   conditionals recompute body satisfaction directly from the assignment
   instead of reading the cached [unsat]/[sat] counters, and an update
   writes exactly one byte.  Shared counters would need read-modify-write
   cycles that lose updates under races and drift permanently; the
   recompute reads are merely {e stale}, which is the DimmWitted benign
   race — every read returns some value previously written to that byte
   (the OCaml 5 memory model guarantees no tearing and no
   out-of-thin-air values for non-atomic locations), so each resample is
   a correct Gibbs conditional w.r.t. a slightly old view of the
   neighbors.  The counters are left untouched and go stale; callers
   that hand the state back to a counter-based path must call
   {!rebuild_counters} first. *)

(* Work of one async conditional for [v]: every literal of every body of
   every adjacent factor is scanned once.  Used by the range scheduler to
   cost-balance contiguous spans. *)
let async_cost t v =
  let c = ref 1 in
  for grp = t.v_grp_off.(v) to t.v_grp_off.(v + 1) - 1 do
    let fid = t.grp_factor.(grp) in
    let b0 = t.f_body_off.(fid) and b1 = t.f_body_off.(fid + 1) in
    c := !c + (t.b_lit_off.(b1) - t.b_lit_off.(b0))
  done;
  !c

let async_conditional_true_prob st v =
  let k = st.k in
  let a = st.assign in
  let delta = ref 0.0 in
  for grp = Array.unsafe_get k.v_grp_off v to Array.unsafe_get k.v_grp_off (v + 1) - 1 do
    let fid = Array.unsafe_get k.grp_factor grp in
    (* Recompute the satisfied-body count of [fid] under both values of
       [v] straight from the assignment bytes. *)
    let n_true = ref 0 and n_false = ref 0 in
    for b = Array.unsafe_get k.f_body_off fid to Array.unsafe_get k.f_body_off (fid + 1) - 1 do
      let others_unsat = ref 0 in
      (* -1: v absent from this body; 0: positive literal; 1: negated. *)
      let v_neg = ref (-1) in
      for l = Array.unsafe_get k.b_lit_off b to Array.unsafe_get k.b_lit_off (b + 1) - 1 do
        let u = Array.unsafe_get k.l_var l in
        let neg = Bytes.unsafe_get k.l_neg l <> '\000' in
        if u = v then v_neg := (if neg then 1 else 0)
        else if (Bytes.unsafe_get a u <> '\000') = neg then incr others_unsat
      done;
      if !others_unsat = 0 then
        if !v_neg < 0 then begin incr n_true; incr n_false end
        else if !v_neg = 0 then incr n_true
        else incr n_false
    done;
    let w = Array.unsafe_get k.weights (Array.unsafe_get k.f_weight fid) in
    let sem = Array.unsafe_get k.f_sem fid in
    let h = Array.unsafe_get k.f_head fid in
    (* Same float expression as [conditional_true_prob]: with no
       concurrent writers the recomputed counts equal the counter-derived
       ones, so the two conditionals are bit-identical (asserted by
       tests). *)
    let sign_true =
      if h < 0 || h = v then 1.0
      else if Bytes.unsafe_get a h <> '\000' then 1.0
      else -1.0
    in
    let sign_false = if h < 0 then 1.0 else if h = v then -1.0 else sign_true in
    delta := !delta +. (w *. sign_true *. g_of sem !n_true) -. (w *. sign_false *. g_of sem !n_false)
  done;
  Stats.sigmoid !delta

let async_resample_var rng st v =
  let x = Prng.bernoulli rng (async_conditional_true_prob st v) in
  (* Unconditional single-byte store: the only shared write of the async
     sampler.  No counter maintenance — see the module comment above. *)
  Bytes.unsafe_set st.assign v (bool_byte x)

let sweep_span_async rng st ~lo ~hi =
  let q = st.k.query in
  for i = lo to hi - 1 do
    async_resample_var rng st (Array.unsafe_get q i)
  done

let sweep_span_async_budgeted ?(every = 128) ~budget ~site rng st ~lo ~hi =
  let every = max 1 every in
  let i = ref lo in
  while !i < hi do
    Budget.check budget site;
    let stop = min hi (!i + every) in
    sweep_span_async rng st ~lo:!i ~hi:stop;
    i := stop
  done

let accumulate_span_true st ~lo ~hi totals =
  let q = st.k.query in
  for i = lo to hi - 1 do
    let v = Array.unsafe_get q i in
    if Bytes.unsafe_get st.assign v <> '\000' then totals.(v) <- totals.(v) + 1
  done

let rebuild_counters st =
  let k = st.k in
  for fid = 0 to k.nfactors - 1 do
    st.sat.(fid) <- 0;
    for b = k.f_body_off.(fid) to k.f_body_off.(fid + 1) - 1 do
      let u = ref 0 in
      for l = k.b_lit_off.(b) to k.b_lit_off.(b + 1) - 1 do
        let value = Bytes.get st.assign k.l_var.(l) <> '\000' in
        if value = (Bytes.get k.l_neg l <> '\000') then incr u
      done;
      st.unsat.(b) <- !u;
      if !u = 0 then st.sat.(fid) <- st.sat.(fid) + 1
    done
  done

let marginals ?(burn_in = 10) ?(budget = Budget.unlimited) rng k ~sweeps =
  let st = make_state rng k in
  for _ = 1 to burn_in do
    Budget.check budget "compiled.burn_in_sweep";
    sweep rng st
  done;
  let totals = Array.make k.nvars 0 in
  for _ = 1 to sweeps do
    Budget.check budget "compiled.sweep";
    sweep rng st;
    accumulate_true st totals
  done;
  Array.map (fun c -> float_of_int c /. float_of_int (max 1 sweeps)) totals

let add_feature_counts st ~scale grad =
  let k = st.k in
  for fid = 0 to k.nfactors - 1 do
    let w = k.f_weight.(fid) in
    if Graph.weight_learnable k.graph w then begin
      let h = k.f_head.(fid) in
      let sign = if h < 0 || Bytes.unsafe_get st.assign h <> '\000' then 1.0 else -1.0 in
      grad.(w) <- grad.(w) +. (scale *. sign *. g_of k.f_sem.(fid) st.sat.(fid))
    end
  done
