(** Compiled flat factor-graph kernel (CSR layout) for Gibbs sampling.

    {!Dd_fgraph.Graph.t} is a pointer-rich structure: factors are records
    of literal-record arrays, adjacency is an int list per variable, and
    weights live behind a growable vector.  Sampling over it chases
    pointers and, in the pre-compiled sampler, allocated a fresh hash
    table per conditional.  This module compiles a graph {e once} into
    immutable flat int/float arrays — the layout DimmWitted-style
    main-memory engines use — so that the two hot operations of Gibbs
    sampling, a conditional-probability evaluation and an assignment
    update, run over contiguous arrays with no per-sample heap
    allocation beyond a couple of boxed floats.

    Two views of the same graph are laid out side by side:

    - {b factor-major} (used to seed counters and read gradients):
      [factor -> bodies -> literals] as two nested CSR levels
      ([f_body_off], [b_lit_off]) over flat [l_var]/[l_neg] arrays,
      plus per-factor head / semantics-tag / weight-slot arrays.
    - {b variable-major} (used by conditionals and updates):
      [variable -> factor groups -> body occurrences]
      ([v_grp_off], [grp_occ_off]) where each group names one adjacent
      factor (including factors that only mention the variable as head,
      with an empty occurrence span) in ascending factor order.

    Weight {e values} are copied into a dense float array at compile
    time; {!refresh_weights} re-reads them from the graph, which is the
    cheap "recompile" path when learning moved weights but the structure
    did not change.  A packed query-variable array replaces the
    per-variable evidence branch of the legacy sweep.

    Determinism contract: for a given [(seed, graph)], {!sweep} draws
    from the PRNG in exactly the order and count of the legacy
    {!Fast_gibbs} sweep (ascending variable id over query variables, one
    Bernoulli draw each), and the conditional probability is computed
    with bit-identical floating-point operations to the legacy grouped
    path, so trajectories agree bit-for-bit per seed (asserted by
    tests). *)

module Graph = Dd_fgraph.Graph

type t
(** Immutable compiled kernel.  Snapshots the graph's structure and
    weight values; weights can be re-synced with {!refresh_weights},
    but after adding variables, factors or bodies a new kernel must be
    compiled (see {!matches_structure}). *)

type state
(** Mutable sampling state over a kernel: the current assignment (one
    byte per variable) plus per-body unsatisfied-literal counts and
    per-factor satisfied-body counts. *)

val compile : Graph.t -> t
(** One-shot compilation.  Raises [Invalid_argument] if a factor body
    mentions the same variable twice (never produced by grounding). *)

val graph : t -> Graph.t
(** The source graph (shared, not copied). *)

val refresh_weights : t -> unit
(** Re-read every compiled weight slot's value from the graph.  O(number
    of weights); the incremental "recompile" used after learning steps
    and weight-only engine updates. *)

val matches_structure : t -> Graph.t -> bool
(** Cheap structural fingerprint check: true iff [g] still has the same
    variable / factor / weight / body counts as at compile time, i.e.
    the kernel can be reused after {!refresh_weights}.  (Evidence
    changes are not detected — callers that flip evidence must
    recompile.) *)

val num_vars : t -> int
val num_factors : t -> int
val num_weights : t -> int
val num_bodies : t -> int
val num_query : t -> int

val query_vars : t -> int array
(** Packed query-variable ids, ascending.  Fresh copy. *)

val learnable_active : t -> int array
(** Weight slots that are learnable {e and} attached to at least one
    factor, ascending.  Fresh copy. *)

(** {1 Sampling state} *)

val make_state : ?init:bool array -> Dd_util.Prng.t -> t -> state
(** Build counters for an initial assignment.  [init] defaults to
    {!Gibbs.init_assignment} (consuming the PRNG identically); raises
    [Invalid_argument] on a size mismatch. *)

val kernel : state -> t

val value : state -> Graph.var -> bool
(** Current value of one variable. *)

val snapshot : state -> bool array
(** Fresh copy of the current assignment. *)

val accumulate_true : state -> int array -> unit
(** [accumulate_true st totals] increments [totals.(v)] for every
    variable currently true — the marginal-counting inner loop, without
    materializing a [bool array] per sweep. *)

val conditional_true_prob : state -> Graph.var -> float
(** P(v = true | rest), from cached counters; allocation-free except
    for boxed-float accumulation. *)

val set_value : state -> Graph.var -> bool -> unit
(** Write one variable and incrementally maintain the unsat / sat
    counters (no-op when the value is unchanged). *)

val resample_var : Dd_util.Prng.t -> state -> Graph.var -> unit

val sweep : Dd_util.Prng.t -> state -> unit
(** One pass over the packed query variables, ascending. *)

val sweep_all : Dd_util.Prng.t -> state -> unit
(** Resample {e every} variable, evidence included — the negative-chain
    sweep of contrastive-divergence learning. *)

val sweep_slice : Dd_util.Prng.t -> state -> Graph.var array -> unit
(** Resample the given variables in order with one PRNG stream.  Used
    by the domain-parallel sampler on color slices: variables of one
    color share no factor, so concurrent slices touch disjoint counter
    and assignment cells. *)

val sweep_slice_budgeted :
  ?every:int ->
  budget:Dd_util.Budget.t ->
  site:string ->
  Dd_util.Prng.t ->
  state ->
  Graph.var array ->
  unit
(** {!sweep_slice} with a cooperative budget poll every [every] (default
    128) variables, so one oversized color slice cannot stretch a step
    deadline: exhaustion raises {!Dd_util.Budget.Exceeded} from the
    polling worker.  Draws from the PRNG exactly as {!sweep_slice} does
    for the variables it completes. *)

(** {1 Asynchronous (lock-free) sampling}

    The async entry points share only the assignment [Bytes] between
    domains: {!async_conditional_true_prob} recomputes body satisfaction
    directly from the assignment instead of reading the cached
    [unsat]/[sat] counters, and {!async_resample_var} writes exactly one
    byte.  Concurrent use from several domains is a {e benign race} in
    the DimmWitted sense: reads of neighbor assignments may be stale, but
    the OCaml 5 memory model guarantees every racy read of a non-atomic
    location returns some previously-written value (no tearing, no
    out-of-thin-air), so each resample draws from a correct conditional
    w.r.t. a slightly old view of the neighbors.  With a single domain
    the recomputed counts equal the counter-derived ones and the async
    conditional is bit-identical to {!conditional_true_prob}.

    The cached counters are left untouched by async sweeps and go stale;
    call {!rebuild_counters} before handing the state back to any
    counter-based path ({!sweep}, {!conditional_true_prob},
    {!add_feature_counts}). *)

val async_cost : t -> Graph.var -> int
(** Literal-scan work of one async conditional for [v] (plus 1) — the
    cost function the contiguous range scheduler balances spans by. *)

val async_conditional_true_prob : state -> Graph.var -> float
(** P(v = true | rest) recomputed from the assignment bytes only. *)

val async_resample_var : Dd_util.Prng.t -> state -> Graph.var -> unit
(** One async Gibbs update: a conditional evaluation plus a single-byte
    assignment store.  Never touches the [unsat]/[sat] counters. *)

val sweep_span_async : Dd_util.Prng.t -> state -> lo:int -> hi:int -> unit
(** Async-resample the packed query variables with indexes [\[lo, hi)],
    ascending — one worker's range sweep. *)

val sweep_span_async_budgeted :
  ?every:int ->
  budget:Dd_util.Budget.t ->
  site:string ->
  Dd_util.Prng.t ->
  state ->
  lo:int ->
  hi:int ->
  unit
(** {!sweep_span_async} with a cooperative budget poll every [every]
    (default 128) variables; exhaustion raises
    {!Dd_util.Budget.Exceeded} from the polling worker.  The assignment
    is never torn by an abort: every completed resample left a whole
    byte. *)

val accumulate_span_true : state -> lo:int -> hi:int -> int array -> unit
(** Increment [totals.(v)] for every currently-true packed query
    variable with index in [\[lo, hi)] — the per-worker marginal
    accumulation shard of an async epoch (spans are disjoint, so
    concurrent workers write disjoint [totals] cells). *)

val rebuild_counters : state -> unit
(** Recompute every [unsat]/[sat] counter from the current assignment —
    the "merge on demand" that re-validates the counter caches after any
    number of async sweeps.  O(total literals). *)

val marginals :
  ?burn_in:int -> ?budget:Dd_util.Budget.t -> Dd_util.Prng.t -> t -> sweeps:int -> float array
(** Fresh-state marginals; drop-in for {!Fast_gibbs.marginals}.  [budget]
    is polled once per sweep (burn-in included); exhaustion raises
    {!Dd_util.Budget.Exceeded} instead of finishing the chain. *)

(** {1 Learning support} *)

val add_feature_counts : state -> scale:float -> float array -> unit
(** For every factor whose weight slot is learnable, add
    [scale * sign(head) * g(semantics, satisfied bodies)] — the energy
    gradient of that weight in the state's current world — into the
    dense [grad] array (indexed by weight slot).  Reads the live
    satisfied-body counters: no per-factor recomputation. *)
