module Graph = Dd_fgraph.Graph
module Semantics = Dd_fgraph.Semantics
module Prng = Dd_util.Prng
module Stats = Dd_util.Stats

(* One occurrence of a variable inside a factor body. *)
type occurrence = {
  body : int;
  negated : bool;
}

(* A variable's occurrences inside one adjacent factor (possibly none,
   when the variable is only the factor's head).  Grouping is done once
   at [create_legacy] time — the historical implementation rebuilt this
   grouping in a fresh [Hashtbl] on every conditional evaluation. *)
type group = {
  factor : int;
  occs : occurrence array;
}

type legacy = {
  graph : Graph.t;
  assignment : bool array;
  (* Per factor, per body: number of unsatisfied literals. *)
  unsat : int array array;
  (* Per factor: number of satisfied bodies (n of Equation 1). *)
  sat : int array;
  (* Per variable: adjacent factors in ascending id order. *)
  groups : group array array;
}

(* The compiled path is the default: the same sampler over the flat CSR
   kernel of {!Compiled}.  The legacy structure-of-lists path is kept as
   an explicit constructor for ablation benchmarks and as the reference
   in bit-exactness tests. *)
type t =
  | Fast of Compiled.state
  | Legacy of legacy

let create ?init rng g =
  let k = Compiled.compile g in
  Fast (Compiled.make_state ?init rng k)

let create_legacy ?init rng g =
  let assignment = match init with Some a -> Array.copy a | None -> Gibbs.init_assignment rng g in
  let nvars = Graph.num_vars g in
  if Array.length assignment <> nvars then
    invalid_arg "Fast_gibbs.create: assignment size mismatch";
  let nfactors = Graph.num_factors g in
  let unsat = Array.make nfactors [||] in
  let sat = Array.make nfactors 0 in
  let occurrences = Array.make nvars [] in
  let head_of = Array.make nvars [] in
  Graph.iter_factors
    (fun fid f ->
      (match f.Graph.head with
      | Some h -> head_of.(h) <- fid :: head_of.(h)
      | None -> ());
      let counts =
        Array.mapi
          (fun body_idx body ->
            let seen = Hashtbl.create 4 in
            Array.iter
              (fun l ->
                if Hashtbl.mem seen l.Graph.var then
                  invalid_arg "Fast_gibbs.create: variable repeated within a body";
                Hashtbl.replace seen l.Graph.var ();
                occurrences.(l.Graph.var) <-
                  (fid, { body = body_idx; negated = l.Graph.negated })
                  :: occurrences.(l.Graph.var))
              body;
            Array.fold_left
              (fun acc l ->
                if assignment.(l.Graph.var) <> l.Graph.negated then acc else acc + 1)
              0 body)
          f.Graph.bodies
      in
      unsat.(fid) <- counts;
      sat.(fid) <- Array.fold_left (fun acc c -> if c = 0 then acc + 1 else acc) 0 counts)
    g;
  (* Group each variable's occurrences by factor (ascending), merging in
     the factors where it appears only as head. *)
  let groups =
    Array.mapi
      (fun v occs ->
        let by_factor = Hashtbl.create 8 in
        List.iter
          (fun (fid, occ) ->
            let existing = try Hashtbl.find by_factor fid with Not_found -> [] in
            Hashtbl.replace by_factor fid (occ :: existing))
          occs;
        List.iter
          (fun fid -> if not (Hashtbl.mem by_factor fid) then Hashtbl.replace by_factor fid [])
          head_of.(v);
        let fids = Hashtbl.fold (fun fid _ acc -> fid :: acc) by_factor [] in
        let fids = List.sort_uniq compare fids in
        Array.of_list
          (List.map
             (fun fid -> { factor = fid; occs = Array.of_list (Hashtbl.find by_factor fid) })
             fids))
      occurrences
  in
  Legacy { graph = g; assignment; unsat; sat; groups }

let assignment = function
  | Fast st -> Compiled.snapshot st
  | Legacy t -> t.assignment

(* Energy of factor [grp.factor] as a function of a hypothetical value
   [x] for [v], using only cached counts and [v]'s occurrences in it. *)
let factor_energy_with t grp ~v ~x =
  let fid = grp.factor in
  let f = Graph.factor t.graph fid in
  (* Satisfied-body count with v's bodies re-evaluated under x. *)
  let n = ref t.sat.(fid) in
  Array.iter
    (fun occ ->
      let currently_sat = t.unsat.(fid).(occ.body) = 0 in
      let lit_sat_now = t.assignment.(v) <> occ.negated in
      let unsat_others = t.unsat.(fid).(occ.body) - (if lit_sat_now then 0 else 1) in
      let sat_under_x = unsat_others = 0 && x <> occ.negated in
      if currently_sat && not sat_under_x then decr n
      else if (not currently_sat) && sat_under_x then incr n)
    grp.occs;
  let sign =
    match f.Graph.head with
    | None -> 1.0
    | Some h -> if h = v then (if x then 1.0 else -1.0) else if t.assignment.(h) then 1.0 else -1.0
  in
  Graph.weight_value t.graph f.Graph.weight_id *. sign *. Semantics.g f.Graph.semantics !n

let legacy_conditional_true_prob t v =
  let delta = ref 0.0 in
  Array.iter
    (fun grp ->
      let e_true = factor_energy_with t grp ~v ~x:true in
      let e_false = factor_energy_with t grp ~v ~x:false in
      delta := !delta +. e_true -. e_false)
    t.groups.(v);
  Stats.sigmoid !delta

let conditional_true_prob t v =
  match t with
  | Fast st -> Compiled.conditional_true_prob st v
  | Legacy t -> legacy_conditional_true_prob t v

let legacy_set_value t v value =
  if t.assignment.(v) <> value then begin
    t.assignment.(v) <- value;
    Array.iter
      (fun grp ->
        let counts = t.unsat.(grp.factor) in
        Array.iter
          (fun occ ->
            let lit_sat = value <> occ.negated in
            let before = counts.(occ.body) in
            let after = if lit_sat then before - 1 else before + 1 in
            counts.(occ.body) <- after;
            if before = 0 && after > 0 then t.sat.(grp.factor) <- t.sat.(grp.factor) - 1
            else if before > 0 && after = 0 then t.sat.(grp.factor) <- t.sat.(grp.factor) + 1)
          grp.occs)
      t.groups.(v)
  end

let set_value t v value =
  match t with
  | Fast st -> Compiled.set_value st v value
  | Legacy t -> legacy_set_value t v value

let resample_var rng t v = set_value t v (Prng.bernoulli rng (conditional_true_prob t v))

let sweep rng t =
  match t with
  | Fast st -> Compiled.sweep rng st
  | Legacy l ->
    for v = 0 to Graph.num_vars l.graph - 1 do
      match Graph.evidence_of l.graph v with
      | Graph.Query -> resample_var rng t v
      | Graph.Evidence _ -> ()
    done

let marginals ?(burn_in = 10) ?budget rng g ~sweeps =
  Compiled.marginals ~burn_in ?budget rng (Compiled.compile g) ~sweeps

let sample_worlds ?(burn_in = 10) ?(spacing = 1) ?(budget = Dd_util.Budget.unlimited) rng g ~n =
  let t = create rng g in
  for _ = 1 to burn_in do
    Dd_util.Budget.check budget "fast_gibbs.burn_in_sweep";
    sweep rng t
  done;
  Array.init n (fun _ ->
      for _ = 1 to spacing do
        Dd_util.Budget.check budget "fast_gibbs.sweep";
        sweep rng t
      done;
      assignment t)

let sweeps_to_converge ?(tolerance = 0.01) ?(max_sweeps = 100_000) ?(check_every = 10) rng g
    ~target_var ~target_prob =
  let k = Compiled.compile g in
  let st = Compiled.make_state rng k in
  let trues = ref 0 and total = ref 0 in
  let converged_at = ref None in
  (try
     for i = 1 to max_sweeps do
       Compiled.sweep rng st;
       if Compiled.value st target_var then incr trues;
       incr total;
       if i mod check_every = 0 then begin
         let estimate = float_of_int !trues /. float_of_int !total in
         if abs_float (estimate -. target_prob) <= tolerance then begin
           converged_at := Some i;
           raise Exit
         end
       end
     done
   with Exit -> ());
  !converged_at
