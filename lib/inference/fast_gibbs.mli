(** High-throughput Gibbs sampling with incremental satisfied-body counts.

    The plain sampler ({!Gibbs}) recomputes every adjacent factor's
    [g(#satisfied bodies)] from scratch for each conditional, which costs
    O(total body size of adjacent factors) per variable — quadratic per
    sweep on aggregation-heavy graphs like the voting program, whose single
    factor has one body per vote.  This sampler maintains, per factor body,
    the count of unsatisfied literals, and per factor, the count of
    satisfied bodies; a variable update then touches only the bodies that
    mention the variable.  This is the standard trick behind
    high-throughput Gibbs engines such as DimmWitted (the sampler DeepDive
    ships), reproduced here as both an optimization and an ablation subject.

    Since the compiled-kernel PR this module is a thin wrapper: {!create}
    compiles the graph into the flat CSR kernel of {!Compiled} and samples
    over contiguous arrays.  {!create_legacy} builds the historical
    pointer-based state (occurrence records grouped by factor once at
    construction time), kept as the baseline for the [gibbs-kernel]
    benchmark and the bit-exactness tests — both paths draw bit-identical
    sample sequences from the same seed.

    Sampling is distribution-identical to {!Gibbs} given the same random
    stream: conditionals agree to floating-point reassociation (see the
    equivalence property tests).

    The state snapshots the graph's *structure*; weights may keep changing
    (learning), but after adding variables or factors a new sampler must be
    created. *)

module Graph = Dd_fgraph.Graph

type t

val create : ?init:bool array -> Dd_util.Prng.t -> Graph.t -> t
(** Build the compiled sampler state.  [init] defaults to
    {!Gibbs.init_assignment}.  Raises [Invalid_argument] if a factor body
    mentions the same variable twice (never produced by grounding). *)

val create_legacy : ?init:bool array -> Dd_util.Prng.t -> Graph.t -> t
(** The pre-compiled pointer-chasing state — same sample sequence per
    seed as {!create}, kept for ablation benchmarks. *)

val assignment : t -> bool array
(** The current assignment.  For a {!create_legacy} state this is the
    live array (mutated by sweeps; do not write); for the default
    compiled state it is a fresh snapshot of the packed byte
    assignment. *)

val conditional_true_prob : t -> Graph.var -> float
(** Same value {!Gibbs.conditional_true_prob} would return. *)

val set_value : t -> Graph.var -> bool -> unit
(** Write one variable, maintaining the cached counts. *)

val resample_var : Dd_util.Prng.t -> t -> Graph.var -> unit

val sweep : Dd_util.Prng.t -> t -> unit
(** One pass over the query variables. *)

val marginals :
  ?burn_in:int -> ?budget:Dd_util.Budget.t -> Dd_util.Prng.t -> Graph.t -> sweeps:int -> float array
(** Drop-in replacement for {!Gibbs.marginals}.  [budget] is polled once
    per sweep. *)

val sample_worlds :
  ?burn_in:int ->
  ?spacing:int ->
  ?budget:Dd_util.Budget.t ->
  Dd_util.Prng.t ->
  Graph.t ->
  n:int ->
  bool array array

val sweeps_to_converge :
  ?tolerance:float ->
  ?max_sweeps:int ->
  ?check_every:int ->
  Dd_util.Prng.t ->
  Graph.t ->
  target_var:Graph.var ->
  target_prob:float ->
  int option
(** As {!Gibbs.sweeps_to_converge}, on the compiled sampler. *)
