module Graph = Dd_fgraph.Graph
module Prng = Dd_util.Prng
module Stats = Dd_util.Stats

let feature_counts g assignment =
  let lookup v = assignment.(v) in
  let acc : (Graph.weight_id, float) Hashtbl.t = Hashtbl.create 16 in
  Graph.iter_factors
    (fun _ f ->
      if Graph.weight_learnable g f.Graph.weight_id then begin
        let w = Graph.weight_value g f.Graph.weight_id in
        (* factor_energy = w * sign * g(n); divide the weight back out to
           get the per-weight gradient, handling w = 0 by a unit probe. *)
        let unit =
          if w <> 0.0 then Graph.factor_energy g f lookup /. w
          else begin
            Graph.set_weight g f.Graph.weight_id 1.0;
            let e = Graph.factor_energy g f lookup in
            Graph.set_weight g f.Graph.weight_id 0.0;
            e
          end
        in
        let prev = try Hashtbl.find acc f.Graph.weight_id with Not_found -> 0.0 in
        Hashtbl.replace acc f.Graph.weight_id (prev +. unit)
      end)
    g;
  Hashtbl.fold (fun w v out -> (w, v) :: out) acc []

type cd_options = {
  epochs : int;
  learning_rate : float;
  decay : float;
  l2 : float;
  chain_sweeps : int;
}

let default_cd =
  { epochs = 50; learning_rate = 0.1; decay = 0.05; l2 = 0.0001; chain_sweeps = 2 }

let train_cd ?(options = default_cd) ?(on_epoch = fun _ _ -> ()) rng g =
  (* Persistent chains over one compiled kernel: the positive chain keeps
     evidence clamped (the default sweep), the negative chain floats every
     variable.  Gradients come straight off the kernel's live
     satisfied-body counters into a dense per-weight-slot array, and each
     weight step re-syncs the kernel with [Compiled.refresh_weights]
     instead of regrounding or rebuilding any structure. *)
  let kernel = Compiled.compile g in
  let positive = Compiled.make_state rng kernel in
  let negative = Compiled.make_state rng kernel in
  let learnable = Compiled.learnable_active kernel in
  let gradient = Array.make (Graph.num_weights g) 0.0 in
  for epoch = 0 to options.epochs - 1 do
    (* Crash mid-training = weights partially stepped; recovery discards
       them with the rest of the in-memory state. *)
    Dd_util.Fault.hit "learner.train_cd.epoch";
    for _ = 1 to options.chain_sweeps do
      Compiled.sweep rng positive;
      Compiled.sweep_all rng negative
    done;
    let lr = options.learning_rate /. (1.0 +. (options.decay *. float_of_int epoch)) in
    Array.fill gradient 0 (Array.length gradient) 0.0;
    Compiled.add_feature_counts positive ~scale:1.0 gradient;
    Compiled.add_feature_counts negative ~scale:(-1.0) gradient;
    Array.iter
      (fun w ->
        let current = Graph.weight_value g w in
        Graph.set_weight g w (current +. (lr *. (gradient.(w) -. (options.l2 *. current)))))
      learnable;
    on_epoch epoch g;
    (* After both the step and the callback (which may also touch
       weights): the kernel's dense slots track the graph again before
       the next epoch samples. *)
    Compiled.refresh_weights kernel
  done

let pseudo_log_likelihood ?(worlds = 5) rng g =
  let evidence = Graph.evidence_vars g in
  if evidence = [] then 0.0
  else begin
    let total = ref 0.0 and count = ref 0 in
    let assignment = Gibbs.init_assignment rng g in
    for _ = 1 to worlds do
      Gibbs.sweep rng g assignment;
      List.iter
        (fun (v, label) ->
          let p = Gibbs.conditional_true_prob g assignment v in
          let p = Stats.clamp 1e-9 (1.0 -. 1e-9) (if label then p else 1.0 -. p) in
          total := !total +. log p;
          incr count)
        evidence
    done;
    !total /. float_of_int (max 1 !count)
  end

type lr_data = {
  nfeatures : int;
  rows : (int array * bool) array;
}

let score weights features =
  Array.fold_left (fun acc f -> acc +. weights.(f)) 0.0 features

let lr_predict weights features = Stats.sigmoid (score weights features)

let lr_loss data weights =
  let n = Array.length data.rows in
  if n = 0 then 0.0
  else begin
    let total = ref 0.0 in
    Array.iter
      (fun (features, label) ->
        let p = lr_predict weights features in
        let p = Stats.clamp 1e-12 (1.0 -. 1e-12) (if label then p else 1.0 -. p) in
        total := !total -. log p)
      data.rows;
    !total /. float_of_int n
  end

type lr_method =
  | Sgd
  | Gd

let train_lr ~method_ ?warm ?(epochs = 50) ?(learning_rate = 0.1) ?(l2 = 0.0001)
    ?(on_epoch = fun _ _ -> ()) rng data =
  let weights =
    match warm with
    | Some w ->
      assert (Array.length w = data.nfeatures);
      Array.copy w
    | None -> Array.make data.nfeatures 0.0
  in
  let n = Array.length data.rows in
  let order = Array.init n (fun i -> i) in
  for epoch = 0 to epochs - 1 do
    let lr = learning_rate /. (1.0 +. (0.05 *. float_of_int epoch)) in
    (match method_ with
    | Sgd ->
      Prng.shuffle_in_place rng order;
      Array.iter
        (fun i ->
          let features, label = data.rows.(i) in
          let p = lr_predict weights features in
          let err = (if label then 1.0 else 0.0) -. p in
          Array.iter
            (fun f -> weights.(f) <- weights.(f) +. (lr *. (err -. (l2 *. weights.(f)))))
            features)
        order
    | Gd ->
      let gradient = Array.make data.nfeatures 0.0 in
      Array.iter
        (fun (features, label) ->
          let p = lr_predict weights features in
          let err = (if label then 1.0 else 0.0) -. p in
          Array.iter (fun f -> gradient.(f) <- gradient.(f) +. err) features)
        data.rows;
      let inv_n = 1.0 /. float_of_int (max 1 n) in
      Array.iteri
        (fun f grad ->
          weights.(f) <- weights.(f) +. (lr *. ((grad *. inv_n) -. (l2 *. weights.(f)))))
        gradient);
    on_epoch epoch weights
  done;
  weights
