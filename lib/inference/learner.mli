(** Weight learning.

    Two learners back the paper's experiments:

    - {!train_cd}: generic contrastive-divergence learning over a factor
      graph — the positive phase clamps evidence variables to their labels,
      the negative phase lets everything float, and learnable (tied) weights
      move along the difference of expected feature counts.  This is the
      Gibbs-based learning loop DeepDive inherits from Tuffy/DimmWitted.
    - {!train_lr}: exact logistic regression over feature vectors, with
      stochastic or full-batch gradients and optional warmstart.  This backs
      the incremental-learning experiments (Appendix B.3/B.4, Figures 16 and
      17), where the model declared by [Class(x) :- R(x, f)] is exactly a
      logistic regression and exact losses make convergence measurable. *)

module Graph = Dd_fgraph.Graph

val feature_counts : Graph.t -> bool array -> (Graph.weight_id * float) list
(** Per learnable weight id, the energy gradient [sum over its factors of
    sign * g(n)] in the given world. *)

type cd_options = {
  epochs : int;
  learning_rate : float;
  decay : float;  (** step size at epoch [t] is [lr / (1 + decay * t)] *)
  l2 : float;
  chain_sweeps : int;  (** Gibbs sweeps per phase per epoch *)
}

val default_cd : cd_options

val train_cd :
  ?options:cd_options ->
  ?on_epoch:(int -> Graph.t -> unit) ->
  Dd_util.Prng.t ->
  Graph.t ->
  unit
(** Mutates the graph's learnable weights in place.  Both persistent
    chains run on one {!Compiled} kernel; per-epoch gradients are read
    off its live satisfied-body counters into dense weight slots, and
    each step re-syncs the kernel via {!Compiled.refresh_weights}
    (weights only — no regrounding, no structural rebuild). *)

val pseudo_log_likelihood : ?worlds:int -> Dd_util.Prng.t -> Graph.t -> float
(** Average log conditional probability of each evidence variable's label
    given sampled assignments of the rest — the quality proxy for generic
    graphs. *)

(** {1 Logistic regression} *)

type lr_data = {
  nfeatures : int;
  rows : (int array * bool) array;  (** (active feature ids, label) *)
}

val lr_loss : lr_data -> float array -> float
(** Mean negative log likelihood. *)

val lr_predict : float array -> int array -> float
(** [P(label = true)] for a feature vector under the weights. *)

type lr_method =
  | Sgd  (** per-example stochastic updates, shuffled each epoch *)
  | Gd  (** full-batch gradient descent *)

val train_lr :
  method_:lr_method ->
  ?warm:float array ->
  ?epochs:int ->
  ?learning_rate:float ->
  ?l2:float ->
  ?on_epoch:(int -> float array -> unit) ->
  Dd_util.Prng.t ->
  lr_data ->
  float array
(** Returns learned weights.  [warm] seeds the model (warmstart); omitted
    means zero initialization. *)
