type trigger = Count | Deadline | Drain

type batch = { docs : Source.doc list; ready_s : float; trigger : trigger }

type t = {
  max_docs : int;
  max_delay_s : float;
  mutable buffer : Source.doc list;  (* newest first *)
  mutable oldest_s : float;  (* arrival of the oldest buffered doc *)
}

let create ?(max_docs = 8) ?(max_delay_s = 0.05) () =
  if max_docs < 1 then invalid_arg "Batcher.create: max_docs must be >= 1";
  if max_delay_s < 0.0 then invalid_arg "Batcher.create: max_delay_s must be >= 0";
  { max_docs; max_delay_s; buffer = []; oldest_s = 0.0 }

let pending t = List.length t.buffer

let close t ~ready_s ~trigger =
  let docs = List.rev t.buffer in
  t.buffer <- [];
  { docs; ready_s; trigger }

let deadline t = t.oldest_s +. t.max_delay_s

let due t ~now_s =
  if t.buffer <> [] && now_s >= deadline t then
    Some (close t ~ready_s:(deadline t) ~trigger:Deadline)
  else None

let push t doc =
  (* A new arrival is also the only clock advance a pull-driven stream
     gets: first settle whether the buffered docs' deadline had already
     passed, then buffer the newcomer. *)
  let overdue = due t ~now_s:doc.Source.arrival_s in
  if t.buffer = [] then t.oldest_s <- doc.Source.arrival_s;
  t.buffer <- doc :: t.buffer;
  match overdue with
  | Some batch -> Some batch
  | None ->
    if List.length t.buffer >= t.max_docs then
      Some (close t ~ready_s:doc.Source.arrival_s ~trigger:Count)
    else None

let drain t =
  if t.buffer = [] then None
  else
    let ready_s = match t.buffer with d :: _ -> d.Source.arrival_s | [] -> 0.0 in
    Some (close t ~ready_s ~trigger:Drain)
