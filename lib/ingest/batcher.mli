(** Micro-batching of arriving documents, by count or latency deadline.

    Documents are pushed in arrival order; a batch closes when it reaches
    [max_docs], when the oldest buffered document has waited [max_delay_s]
    of stream time, or when the caller drains the remainder at end of
    stream.  All triggering is driven by the documents' own arrival
    timestamps (plus the caller-supplied clock for {!due}), never by wall
    time, so batch composition is deterministic for a deterministic
    stream. *)

type trigger = Count | Deadline | Drain

type batch = {
  docs : Source.doc list;  (** arrival order *)
  ready_s : float;  (** stream time at which the batch closed *)
  trigger : trigger;
}

type t

val create : ?max_docs:int -> ?max_delay_s:float -> unit -> t
(** Defaults: [max_docs = 8], [max_delay_s = 0.05]. *)

val push : t -> Source.doc -> batch option
(** Buffer one document; [Some batch] when it filled the batch
    ([Count]) — or when its arrival time shows the previously buffered
    documents' deadline had already passed ([Deadline], the pushed
    document stays buffered for the next batch). *)

val due : t -> now_s:float -> batch option
(** Close the buffered batch if the oldest document has waited past the
    deadline at stream time [now_s]. *)

val drain : t -> batch option
(** Close whatever is buffered ([None] when empty) — end of stream. *)

val pending : t -> int
