(* Cross-document entity canonicalization: normalized-string keys, a
   declared-alias (synonym) table, and a growable union-find merging
   surface forms into stable canonical entities.

   Canonical-id discipline: each set's id derives from its earliest
   registered key ("ent:" ^ key of the minimum node id).  A merge between
   two established sets keeps the older id — the younger one is reported
   to the caller as the loser, together with its member keys, so the
   entity-link tuples bound to it can be retracted and rederived as a
   delta.  The older-id-wins rule makes the combined set's id equal to the
   winner's id, so winner-side bindings never move. *)

module Union_find = Dd_util.Union_find
module Crc32 = Dd_util.Crc32
module Mention_finder = Dd_text.Mention_finder

type t = {
  uf : Union_find.t;
  node_of_key : (string, int) Hashtbl.t;
  key_of_node : (int, string) Hashtbl.t;
  min_of_root : (int, int) Hashtbl.t;  (* current root -> min member id *)
  members_of_root : (int, int list) Hashtbl.t;  (* current root -> members *)
  alias_seen : (string * string, unit) Hashtbl.t;  (* unordered, normalized *)
  mutable aliases : (string * string) list;  (* newest first *)
}

let create () =
  {
    uf = Union_find.create 0;
    node_of_key = Hashtbl.create 64;
    key_of_node = Hashtbl.create 64;
    min_of_root = Hashtbl.create 64;
    members_of_root = Hashtbl.create 64;
    alias_seen = Hashtbl.create 64;
    aliases = [];
  }

let key_exn what surface =
  match Mention_finder.normalize_name surface with
  | "" -> invalid_arg (Printf.sprintf "Canonicalizer.%s: surface normalizes to nothing: %S" what surface)
  | key -> key

let key_of t node = Hashtbl.find t.key_of_node node

let canonical_of_root t root = "ent:" ^ key_of t (Hashtbl.find t.min_of_root root)

let canonical_of_node t node = canonical_of_root t (Union_find.find t.uf node)

let register t key =
  let node = Union_find.add t.uf in
  Hashtbl.replace t.node_of_key key node;
  Hashtbl.replace t.key_of_node node key;
  Hashtbl.replace t.min_of_root node node;
  Hashtbl.replace t.members_of_root node [ node ];
  node

type resolution = {
  key : string;
  entity : string;
  fresh_key : bool;
  fresh_entity : bool;
}

let observe t surface =
  let key = key_exn "observe" surface in
  match Hashtbl.find_opt t.node_of_key key with
  | Some node -> { key; entity = canonical_of_node t node; fresh_key = false; fresh_entity = false }
  | None ->
    let node = register t key in
    { key; entity = canonical_of_node t node; fresh_key = true; fresh_entity = true }

let resolve t surface =
  match Mention_finder.normalize_name surface with
  | "" -> None
  | key ->
    Option.map (fun node -> canonical_of_node t node) (Hashtbl.find_opt t.node_of_key key)

type merge = { winner : string; loser : string; loser_keys : string list }

let members_of t root =
  List.sort compare (try Hashtbl.find t.members_of_root root with Not_found -> [])

let declare_alias t a b =
  let ka = key_exn "declare_alias" a and kb = key_exn "declare_alias" b in
  let pair = if ka <= kb then (ka, kb) else (kb, ka) in
  if not (Hashtbl.mem t.alias_seen pair) then begin
    Hashtbl.replace t.alias_seen pair ();
    t.aliases <- pair :: t.aliases
  end;
  if ka = kb then None
  else begin
    let na, fresh_a =
      match Hashtbl.find_opt t.node_of_key ka with
      | Some n -> (n, false)
      | None -> (register t ka, true)
    in
    let nb, fresh_b =
      match Hashtbl.find_opt t.node_of_key kb with
      | Some n -> (n, false)
      | None -> (register t kb, true)
    in
    let ra = Union_find.find t.uf na and rb = Union_find.find t.uf nb in
    if ra = rb then None
    else begin
      let ma = Hashtbl.find t.min_of_root ra and mb = Hashtbl.find t.min_of_root rb in
      (* The set holding the earliest-registered member keeps its id. *)
      let win_root, lose_root = if ma < mb then (ra, rb) else (rb, ra) in
      let winner = canonical_of_root t win_root in
      let loser = canonical_of_root t lose_root in
      let lose_members = members_of t lose_root in
      let combined =
        (try Hashtbl.find t.members_of_root ra with Not_found -> [])
        @ (try Hashtbl.find t.members_of_root rb with Not_found -> [])
      in
      Union_find.union t.uf na nb;
      let root = Union_find.find t.uf na in
      Hashtbl.remove t.min_of_root ra;
      Hashtbl.remove t.min_of_root rb;
      Hashtbl.remove t.members_of_root ra;
      Hashtbl.remove t.members_of_root rb;
      Hashtbl.replace t.min_of_root root (min ma mb);
      Hashtbl.replace t.members_of_root root combined;
      (* A set that did not exist before this call has no bindings to
         rebind — unioning it in is growth, not a merge event. *)
      if fresh_a || fresh_b then None
      else Some { winner; loser; loser_keys = List.map (key_of t) lose_members }
    end
  end

let entities t = Union_find.count t.uf

let keys t = Hashtbl.length t.node_of_key

let all_keys t = List.init (Union_find.length t.uf) (key_of t)

let members t entity =
  match String.index_opt entity ':' with
  | None -> []
  | Some i -> (
    let key = String.sub entity (i + 1) (String.length entity - i - 1) in
    match Hashtbl.find_opt t.node_of_key key with
    | None -> []
    | Some node ->
      let root = Union_find.find t.uf node in
      if canonical_of_root t root <> entity then []
      else List.map (key_of t) (members_of t root))

let alias_pairs t = List.rev t.aliases

(* --- serialization ---------------------------------------------------------

   Canonical text layout, CRC-gated:

     ddcanon 1
     keys <n>
     <key of node 0> ... <key of node n-1>   (one per line)
     canon <n ints>                           (min member id per node)
     aliases <m>
     <a>\t<b>                                 (one per line, oldest first)
     crc <hex>
     end

   Keys contain no control characters (token normalization strips
   whitespace), so line- and tab-delimiting is unambiguous.  The [canon]
   array is derived from set structure, not union-find internals, so
   decode→encode is byte-identical regardless of path-compression state. *)

let encode t =
  let n = Union_find.length t.uf in
  let body = Buffer.create (64 * (n + 1)) in
  Buffer.add_string body (Printf.sprintf "keys %d\n" n);
  for node = 0 to n - 1 do
    Buffer.add_string body (key_of t node);
    Buffer.add_char body '\n'
  done;
  Buffer.add_string body "canon";
  for node = 0 to n - 1 do
    Buffer.add_string body
      (Printf.sprintf " %d" (Hashtbl.find t.min_of_root (Union_find.find t.uf node)))
  done;
  Buffer.add_char body '\n';
  let aliases = alias_pairs t in
  Buffer.add_string body (Printf.sprintf "aliases %d\n" (List.length aliases));
  List.iter
    (fun (a, b) -> Buffer.add_string body (Printf.sprintf "%s\t%s\n" a b))
    aliases;
  let payload = Buffer.contents body in
  Printf.sprintf "ddcanon 1\n%scrc %s\nend\n" payload (Crc32.to_hex (Crc32.string payload))

exception Malformed of string

let decode text =
  let fail fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt in
  match
    let lines = String.split_on_char '\n' text in
    let rest =
      match lines with
      | "ddcanon 1" :: rest -> rest
      | _ -> fail "bad header"
    in
    let take = function
      | line :: rest -> (line, rest)
      | [] -> fail "truncated"
    in
    let expect_count name line =
      match String.split_on_char ' ' line with
      | [ tag; n ] when tag = name -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> n
        | _ -> fail "bad %s count" name)
      | _ -> fail "expected %s line" name
    in
    let header, rest = take rest in
    let n = expect_count "keys" header in
    let rec split_keys acc k rest =
      if k = 0 then (List.rev acc, rest)
      else
        let key, rest = take rest in
        if key = "" then fail "empty key" else split_keys (key :: acc) (k - 1) rest
    in
    let key_list, rest = split_keys [] n rest in
    let canon_line, rest = take rest in
    let canon =
      match String.split_on_char ' ' canon_line with
      | "canon" :: ids ->
        let ids = List.filter (fun s -> s <> "") ids in
        if List.length ids <> n then fail "canon arity %d <> %d" (List.length ids) n;
        Array.of_list
          (List.map
             (fun s ->
               match int_of_string_opt s with
               | Some v when v >= 0 && v < n -> v
               | _ -> fail "bad canon id %s" s)
             ids)
      | _ -> fail "expected canon line"
    in
    let header, rest = take rest in
    let m = expect_count "aliases" header in
    let rec split_aliases acc k rest =
      if k = 0 then (List.rev acc, rest)
      else
        let line, rest = take rest in
        match String.index_opt line '\t' with
        | None -> fail "bad alias line"
        | Some i ->
          let a = String.sub line 0 i in
          let b = String.sub line (i + 1) (String.length line - i - 1) in
          if a = "" || b = "" then fail "empty alias key";
          split_aliases ((a, b) :: acc) (k - 1) rest
    in
    let aliases, rest = split_aliases [] m rest in
    (match rest with
    | [ crc_line; "end"; "" ] -> (
      match String.split_on_char ' ' crc_line with
      | [ "crc"; hex ] -> (
        match Crc32.of_hex hex with
        | None -> fail "bad crc"
        | Some crc ->
          (* Everything between the header and the crc line; the suffix is
             the crc line, its newline, and the "end\n" footer. *)
          let start = String.length "ddcanon 1\n" in
          let stop = String.length text - (String.length crc_line + 5) in
          let payload = String.sub text start (stop - start) in
          if Crc32.string payload <> crc then fail "crc mismatch")
      | _ -> fail "expected crc line")
    | _ -> fail "bad footer");
    let t = create () in
    List.iter
      (fun key ->
        if Hashtbl.mem t.node_of_key key then fail "duplicate key %s" key;
        ignore (register t key))
      key_list;
    Array.iteri
      (fun node canonical ->
        if canonical <> node then begin
          if canonical > node then fail "canon id %d after node %d" canonical node;
          let ra = Union_find.find t.uf node and rb = Union_find.find t.uf canonical in
          if ra <> rb then begin
            let members =
              (try Hashtbl.find t.members_of_root ra with Not_found -> [])
              @ (try Hashtbl.find t.members_of_root rb with Not_found -> [])
            in
            Union_find.union t.uf node canonical;
            let root = Union_find.find t.uf node in
            Hashtbl.remove t.min_of_root ra;
            Hashtbl.remove t.min_of_root rb;
            Hashtbl.remove t.members_of_root ra;
            Hashtbl.remove t.members_of_root rb;
            Hashtbl.replace t.min_of_root root canonical;
            Hashtbl.replace t.members_of_root root members
          end
        end)
      canon;
    (* Cross-check the rebuilt structure against the recorded canon map. *)
    Array.iteri
      (fun node canonical ->
        let root = Union_find.find t.uf node in
        if Hashtbl.find t.min_of_root root <> canonical then
          fail "inconsistent canon map at node %d" node)
      canon;
    List.iter
      (fun (a, b) ->
        let pair = if a <= b then (a, b) else (b, a) in
        if not (Hashtbl.mem t.alias_seen pair) then begin
          Hashtbl.replace t.alias_seen pair ();
          t.aliases <- pair :: t.aliases
        end)
      aliases;
    t
  with
  | t -> Ok t
  | exception Malformed m -> Error m
