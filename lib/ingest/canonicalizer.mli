(** Cross-document entity canonicalization — the dedup stage of the
    streaming front end (ROADMAP Open item 3; the ATOM/itext2kg-style
    "merge, don't fork" discipline).

    Every mention surface form is reduced to its case-normalized string key
    ({!Dd_text.Mention_finder.normalize_name}); keys observed across
    documents are merged into {e canonical entities} through a growable
    union-find ({!Dd_util.Union_find.add}) driven by two signals:

    - {b key identity}: two surfaces with equal normalized keys ("OBAMA" /
      "obama.") are the same entity by construction;
    - {b declared aliases}: a synonym-table entry ("B. Obama" ≡ "Barack
      Obama") unions the two keys' sets, whenever it arrives.

    The canonical id of a set is ["ent:" ^ k] where [k] is the key of the
    {e earliest-registered} member — stable under further merges in which
    that set wins, and deterministic for a deterministic stream.  When a
    late-arriving alias merges two sets that both already have canonical
    ids, the younger id loses; {!declare_alias} reports the losing id and
    its member keys so the feed can retract and rederive their entity-link
    tuples as a proper delta (DRed handles the downstream consequences).

    State (key table + union-find + alias list) serializes to a canonical
    text encoding with a CRC-32 gate, so checkpoint recovery preserves
    entity identity bit-exactly. *)

type t

val create : unit -> t

type resolution = {
  key : string;  (** the normalized-string key of the surface form *)
  entity : string;  (** canonical entity id ("ent:...") after this observation *)
  fresh_key : bool;  (** first time this key is seen *)
  fresh_entity : bool;  (** the key founded a brand-new canonical entity *)
}

val observe : t -> string -> resolution
(** Resolve one mention surface form, registering its key if new.  A fresh
    key starts as its own singleton entity unless a prior alias declaration
    already linked it.  Raises [Invalid_argument] on a surface that
    normalizes to nothing. *)

val resolve : t -> string -> string option
(** Canonical entity id of a surface form, without registering anything. *)

type merge = {
  winner : string;  (** surviving canonical entity id *)
  loser : string;  (** canonical id retired by the merge *)
  loser_keys : string list;  (** keys that must re-link to [winner] *)
}

val declare_alias : t -> string -> string -> merge option
(** [declare_alias t a b] records that the two surface forms name the same
    entity (the synonym table), registering either key as needed and
    merging their sets.  [Some merge] iff two {e previously distinct}
    canonical entities collapsed — the late-alias case the caller must
    turn into a retract + rederive delta.  [None] when the link was
    already known or one side was unseen.  Raises [Invalid_argument] when
    either surface normalizes to nothing. *)

val entities : t -> int
(** Number of distinct canonical entities. *)

val keys : t -> int
(** Number of distinct normalized keys registered. *)

val all_keys : t -> string list
(** Every registered key, in registration order. *)

val members : t -> string -> string list
(** Keys belonging to a canonical entity id, in registration order
    ([[]] for an unknown id). *)

val alias_pairs : t -> (string * string) list
(** Declared alias pairs, oldest first (as normalized keys). *)

val encode : t -> string
(** Canonical text serialization with a CRC-32 footer.  Deterministic:
    equal states encode identically, and [encode (decode (encode t))]
    is byte-equal to [encode t]. *)

val decode : string -> (t, string) result
(** Parse an {!encode} payload; any structural or checksum violation is
    an [Error]. *)
