module Txn = Dd_core.Txn
module Grounding = Dd_core.Grounding
module Engine = Dd_core.Engine
module Database = Dd_relational.Database
module Relation = Dd_relational.Relation
module Value = Dd_relational.Value
module Dred = Dd_datalog.Dred
module Tokenizer = Dd_text.Tokenizer
module Mention_finder = Dd_text.Mention_finder
module Features = Dd_text.Features
module Corpus = Dd_kbc.Corpus
module Timer = Dd_util.Timer

type stats = {
  docs : int;
  batches : int;
  sentences : int;
  pairs : int;
  mentions : int;
  merges : int;
  el_inserts : int;
  el_retracts : int;
  quarantined : int;
}

let zero_stats =
  {
    docs = 0;
    batches = 0;
    sentences = 0;
    pairs = 0;
    mentions = 0;
    merges = 0;
    el_inserts = 0;
    el_retracts = 0;
    quarantined = 0;
  }

type t = {
  txn : Txn.t;
  canonicalize : bool;
  canon : Canonicalizer.t;
  dict : Mention_finder.dictionary;
  el_bound : (string, string) Hashtbl.t;  (* key -> committed eid *)
  mutable sid : int;
  mutable stats : stats;
}

let rebuild_el_bound txn table =
  match Database.find_opt (Grounding.database (Engine.grounding (Txn.engine txn))) "el" with
  | None -> ()
  | Some rel ->
    Relation.iter
      (fun tuple _count ->
        match (tuple.(0), tuple.(1)) with
        | Value.Str key, Value.Str eid -> Hashtbl.replace table key eid
        | _ -> ())
      rel

let create ?(canonicalize = true) ?state txn =
  let sid, canon =
    match state with
    | Some (sid, canon) -> (sid, canon)
    | None -> (0, Canonicalizer.create ())
  in
  let dict = Mention_finder.dictionary (Canonicalizer.all_keys canon) in
  let el_bound = Hashtbl.create 256 in
  rebuild_el_bound txn el_bound;
  { txn; canonicalize; canon; dict; el_bound; sid; stats = zero_stats }

let prepare_database db source =
  List.iter
    (fun (name, schema) ->
      if not (Database.mem db name) then ignore (Database.create_table db name schema))
    Corpus.input_schemas;
  List.iter
    (fun (name, rows) -> Database.insert_rows db name rows)
    (Source.static_tables source)

type batch_report = {
  outcome : (Txn.outcome, Txn.error) result;
  docs : int;
  delta_rows : int;
  merges : int;
}

(* Per-batch pending entity-link rebindings: key -> (eid to retract, eid to
   link).  Collapsing rebinds per batch keeps the delta free of same-batch
   insert-then-delete churn on one tuple. *)
type pending = (string, string option * string) Hashtbl.t

let current_eid t (pending : pending) key =
  match Hashtbl.find_opt pending key with
  | Some (_, eid) -> Some eid
  | None -> Hashtbl.find_opt t.el_bound key

let bind t pending key eid =
  match Hashtbl.find_opt pending key with
  | Some (prev, cur) -> if cur <> eid then Hashtbl.replace pending key (prev, eid)
  | None -> (
    match Hashtbl.find_opt t.el_bound key with
    | Some cur -> if cur <> eid then Hashtbl.replace pending key (Some cur, eid)
    | None -> Hashtbl.replace pending key (None, eid))

(* Resolve one mention surface to its (key, entity id): through the
   canonicalizer, or — forking baseline — the raw surface itself. *)
let resolve t surface =
  if t.canonicalize then
    let r = Canonicalizer.observe t.canon surface in
    (r.Canonicalizer.key, r.Canonicalizer.entity)
  else (surface, "ent:" ^ surface)

let declare_aliases t pending aliases =
  let merges = ref 0 in
  if t.canonicalize then
    List.iter
      (fun (a, b) ->
        ignore (Mention_finder.add_name t.dict a);
        ignore (Mention_finder.add_name t.dict b);
        match Canonicalizer.declare_alias t.canon a b with
        | None -> ()
        | Some m ->
          incr merges;
          List.iter
            (fun key ->
              match current_eid t pending key with
              | Some eid when eid = m.Canonicalizer.loser ->
                bind t pending key m.Canonicalizer.winner
              | Some _ | None -> ())
            m.Canonicalizer.loser_keys)
      aliases;
  !merges

let ingest_text t delta pending ~doc_id ~text ~names ~aliases =
  List.iter (fun name -> ignore (Mention_finder.add_name t.dict name)) names;
  let merges = declare_aliases t pending aliases in
  let sentences = ref 0 and pairs = ref 0 and n_mentions = ref 0 in
  List.iter
    (fun (_, sentence) ->
      incr sentences;
      let tokens = Tokenizer.tokenize sentence in
      let mentions = Mention_finder.find t.dict tokens in
      n_mentions := !n_mentions + List.length mentions;
      let resolved =
        List.map
          (fun m ->
            let key, eid = resolve t m.Mention_finder.surface in
            bind t pending key eid;
            (m, key))
          mentions
      in
      List.iteri
        (fun i (m1, key1) ->
          List.iteri
            (fun j (m2, key2) ->
              if i < j then begin
                let id = t.sid in
                t.sid <- id + 1;
                incr pairs;
                let ctx = Features.{ tokens; m1; m2 } in
                let phrase =
                  match Features.phrase_between ctx with Some p -> p | None -> "<none>"
                in
                Dred.Delta.insert delta "sentence"
                  [|
                    Value.int doc_id;
                    Value.int id;
                    Value.str phrase;
                    Value.str (Features.mention_distance_bucket ctx);
                  |];
                Dred.Delta.insert delta "mention"
                  [| Value.int id; Value.str (Printf.sprintf "m%d_0" id); Value.str key1; Value.int 0 |];
                Dred.Delta.insert delta "mention"
                  [| Value.int id; Value.str (Printf.sprintf "m%d_1" id); Value.str key2; Value.int 1 |]
              end)
            resolved)
        resolved)
    (Tokenizer.sentences text);
  (merges, !sentences, !pairs, !n_mentions)

let ingest t (batch : Batcher.batch) =
  let delta = Dred.Delta.create () in
  let pending : pending = Hashtbl.create 32 in
  let merges = ref 0 and sentences = ref 0 and pairs = ref 0 and mentions = ref 0 in
  List.iter
    (fun (doc : Source.doc) ->
      match doc.Source.payload with
      | Source.Rows tables ->
        List.iter
          (fun (name, rows) ->
            List.iter (fun row -> Dred.Delta.insert delta name row) rows)
          tables
      | Source.Text { text; names; aliases } ->
        let m, se, pa, me =
          ingest_text t delta pending ~doc_id:doc.Source.id ~text ~names ~aliases
        in
        merges := !merges + m;
        sentences := !sentences + se;
        pairs := !pairs + pa;
        mentions := !mentions + me)
    batch.Batcher.docs;
  (* Flush the batch's net entity-link changes. *)
  let inserts = ref 0 and retracts = ref 0 in
  let bindings =
    Hashtbl.fold (fun key change acc -> (key, change) :: acc) pending []
    |> List.sort compare
  in
  List.iter
    (fun (key, (prev, eid)) ->
      match prev with
      | Some p when p = eid -> ()
      | Some p ->
        Dred.Delta.delete delta "el" [| Value.str key; Value.str p |];
        Dred.Delta.insert delta "el" [| Value.str key; Value.str eid |];
        incr retracts;
        incr inserts
      | None ->
        Dred.Delta.insert delta "el" [| Value.str key; Value.str eid |];
        incr inserts)
    bindings;
  let delta_rows = Dred.Delta.total delta in
  let outcome = Txn.apply t.txn (Grounding.data_update delta) in
  (match outcome with
  | Ok _ ->
    (* Commit the binding view only on success; a quarantined batch rolled
       the engine (and its [el] relation) back. *)
    List.iter (fun (key, (_, eid)) -> Hashtbl.replace t.el_bound key eid) bindings
  | Error _ -> ());
  let docs = List.length batch.Batcher.docs in
  let quarantined = match outcome with Ok _ -> 0 | Error _ -> 1 in
  t.stats <-
    {
      docs = t.stats.docs + docs;
      batches = t.stats.batches + 1;
      sentences = t.stats.sentences + !sentences;
      pairs = t.stats.pairs + !pairs;
      mentions = t.stats.mentions + !mentions;
      merges = t.stats.merges + !merges;
      el_inserts = t.stats.el_inserts + !inserts;
      el_retracts = t.stats.el_retracts + !retracts;
      quarantined = t.stats.quarantined + quarantined;
    };
  { outcome; docs; delta_rows; merges = !merges }

let stats t = t.stats

let canonicalizer t = t.canon

let dictionary_size t = Mention_finder.size t.dict

let el_bindings t = Hashtbl.length t.el_bound

let entities_bound t =
  let seen = Hashtbl.create 64 in
  Hashtbl.iter (fun _ eid -> Hashtbl.replace seen eid ()) t.el_bound;
  Hashtbl.length seen

(* --- state persistence ------------------------------------------------- *)

let encode_state t =
  Printf.sprintf "ddfeedstate 1 %d\n%s" t.sid (Canonicalizer.encode t.canon)

let decode_state text =
  match String.index_opt text '\n' with
  | None -> Error "truncated feed state"
  | Some i -> (
    let header = String.sub text 0 i in
    let rest = String.sub text (i + 1) (String.length text - i - 1) in
    match String.split_on_char ' ' header with
    | [ "ddfeedstate"; "1"; sid ] -> (
      match int_of_string_opt sid with
      | Some sid when sid >= 0 ->
        Result.map (fun canon -> (sid, canon)) (Canonicalizer.decode rest)
      | _ -> Error "bad feed-state sid")
    | _ -> Error "bad feed-state header")

(* --- deterministic stream driver --------------------------------------- *)

type run_summary = {
  run_docs : int;
  run_batches : int;
  busy_s : float;
  latencies_s : float array;
  run_quarantined : int;
}

let run ?on_batch t source batcher =
  let latencies = ref [] in
  let busy = ref 0.0 in
  let batches = ref 0 and docs = ref 0 and quarantined = ref 0 in
  (* Virtual stream clock: arrivals follow the source's timestamps; batch
     service times are measured on the wall clock and queue behind the
     previous batch, so latency = queueing + service without real sleeps. *)
  let now_v = ref 0.0 in
  let process (batch : Batcher.batch) =
    let start = max !now_v batch.Batcher.ready_s in
    let timer = Timer.start () in
    let report = ingest t batch in
    let service = Timer.elapsed_s timer in
    busy := !busy +. service;
    now_v := start +. service;
    incr batches;
    docs := !docs + report.docs;
    (match report.outcome with Ok _ -> () | Error _ -> incr quarantined);
    List.iter
      (fun (doc : Source.doc) ->
        latencies := (!now_v -. doc.Source.arrival_s) :: !latencies)
      batch.Batcher.docs;
    match on_batch with Some f -> f report | None -> ()
  in
  let rec pump () =
    match Source.next source with
    | None -> ( match Batcher.drain batcher with Some b -> process b | None -> ())
    | Some doc ->
      (match Batcher.push batcher doc with Some b -> process b | None -> ());
      pump ()
  in
  pump ();
  {
    run_docs = !docs;
    run_batches = !batches;
    busy_s = !busy;
    latencies_s = Array.of_list (List.rev !latencies);
    run_quarantined = !quarantined;
  }
