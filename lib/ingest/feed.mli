(** The streaming feed: batches of arriving documents, translated through
    tokenize → mention finding → canonicalization into one
    {!Dd_core.Grounding.update} per batch and driven through the
    transactional supervisor ({!Dd_core.Txn.apply}) — so retries,
    quarantine, checkpoint WAL logging and serving republication all fire
    on the live stream.

    Entity-link ("merge, don't fork") discipline: mention names and [el]
    rows are keyed by the canonicalizer's normalized-string keys, and each
    key links to its {e canonical} entity id.  A late alias declaration
    that merges two established entities is translated into a retract +
    rederive delta — the losing entity's [el] rows are deleted and
    re-inserted under the winning id in the same batch, and DRed carries
    the consequences through candidates, supervision and the factor
    graph.

    With [~canonicalize:false] the feed degrades to the forking baseline
    the bench compares against: every raw surface string becomes its own
    entity id and alias declarations are ignored. *)

module Txn = Dd_core.Txn
module Database = Dd_relational.Database

type t

val create :
  ?canonicalize:bool ->
  ?state:int * Canonicalizer.t ->
  Txn.t ->
  t
(** Attach a feed to a transactional supervisor.  [canonicalize] defaults
    to [true].  [state] restores a previously persisted [(next_sid,
    canonicalizer)] pair (see {!encode_state}): the mention dictionary is
    rebuilt from the canonicalizer's keys and the entity-link bindings are
    re-read from the engine's [el] relation, so a recovered feed continues
    assigning the same canonical ids. *)

val prepare_database : Database.t -> Source.t -> unit
(** Create the standard base tables ({!Dd_kbc.Corpus.input_schemas}) when
    missing and load the stream's static tables — call once on the
    database before building the engine. *)

type batch_report = {
  outcome : (Txn.outcome, Txn.error) result;
  docs : int;
  delta_rows : int;  (** membership changes submitted in this batch *)
  merges : int;  (** canonical-entity merges triggered by this batch *)
}

val ingest : t -> Batcher.batch -> batch_report
(** Translate one batch and apply it transactionally. *)

type stats = {
  docs : int;
  batches : int;
  sentences : int;
  pairs : int;  (** mention pairs emitted (rows in [sentence]) *)
  mentions : int;
  merges : int;  (** late-alias merges of two established entities *)
  el_inserts : int;
  el_retracts : int;  (** [el] rows retracted by merge rebinding *)
  quarantined : int;  (** batches the supervisor gave up on *)
}

val stats : t -> stats

val canonicalizer : t -> Canonicalizer.t

val dictionary_size : t -> int

val el_bindings : t -> int
(** Keys currently linked in [el]. *)

val entities_bound : t -> int
(** Distinct entity ids currently linked in [el] — the forked-vs-merged
    count the ingestion bench compares across canonicalization modes. *)

val encode_state : t -> string
(** Persistable feed state: next sentence id + the canonicalizer (alias
    table, union-find, key registry), CRC-gated.  Pair with
    {!Dd_kbc.Checkpoint.save_blob} so recovery preserves entity identity. *)

val decode_state : string -> (int * Canonicalizer.t, string) result

(* --- deterministic stream driver --------------------------------------- *)

type run_summary = {
  run_docs : int;
  run_batches : int;
  busy_s : float;  (** wall-clock seconds spent translating + applying *)
  latencies_s : float array;
      (** per document: arrival → post-commit (updated marginals), on the
          simulated stream clock (service times measured, queueing modeled) *)
  run_quarantined : int;
}

val run : ?on_batch:(batch_report -> unit) -> t -> Source.t -> Batcher.t -> run_summary
(** Drain a source through a batcher into the feed.  Document arrivals
    follow the stream's own timestamps on a virtual clock; each batch's
    service time is measured on the wall clock and folded back into the
    virtual queue, so document latency (arrival → updated marginal) is
    reported faithfully without sleeping through the idle gaps. *)
