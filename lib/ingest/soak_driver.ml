(* The full ingest→txn→checkpoint loop as a soakable pipeline.

   Durability promises here are batch-granular: after each ingested batch
   the store's sequence advances ([Checkpoint.set_applied]); every
   [checkpoint_every] batches the engine snapshot and the feed state (next
   sentence id + canonicalizer, the entity-identity memory) are published
   together.  Nothing is WAL-logged — a crash loses at most the batches
   since the last publish, and recovery redrives them from the (static,
   deterministic) stream.

   The feed blob is stamped with the sequence it was encoded at and the
   two publishes are ordered blob-first.  A crash can therefore land the
   pair out of step; recovery detects the mismatch and drops to the last
   rung — a from-scratch redrive of the whole stream, which is
   deterministic and converges to the same state.  What recovery never
   does is marry an engine snapshot to a canonicalizer from a different
   point in time: that is how entity identity silently forks.

   Fault schedules for this pipeline should stick to the [io.*] points:
   engine-internal faults are absorbed by [Txn.apply]'s retry ladder
   (deterministically — the soak property still holds, it just stops
   exercising the durability path this harness is about). *)

module Engine = Dd_core.Engine
module Txn = Dd_core.Txn
module Database = Dd_relational.Database
module Checkpoint = Dd_kbc.Checkpoint
module Scrub = Dd_kbc.Scrub
module Soak = Dd_kbc.Soak
module Pipeline = Dd_kbc.Pipeline
module Program = Dd_core.Program

let blob_name = "canon"

let encode_blob ~seq state = Printf.sprintf "canon %d\n%s" seq state

let decode_blob raw =
  match String.index_opt raw '\n' with
  | None -> None
  | Some i -> (
    match String.split_on_char ' ' (String.sub raw 0 i) with
    | [ "canon"; s ] -> (
      match int_of_string_opt s with
      | Some seq -> Some (seq, String.sub raw (i + 1) (String.length raw - i - 1))
      | None -> None)
    | _ -> None)

(* Remove everything except quarantined evidence before a from-scratch
   republish, so a stale ckpt-<n> can never outrank the rebuilt state. *)
let clear_active dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun name ->
        if not (Filename.check_suffix name ".quarantined") then
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      (Sys.readdir dir)
  else if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(* The streaming program: features + supervision riding on the base, same
   shape the ingestion bench drives. *)
let stream_program () =
  Program.add_rules
    (Pipeline.base_program ())
    (Pipeline.rules_of Pipeline.FE1
    @ Pipeline.rules_of Pipeline.S1
    @ Pipeline.rules_of Pipeline.S2)

let batches_of source batcher =
  let rec go acc =
    match Source.next source with
    | Some doc -> (
      match Batcher.push batcher doc with
      | Some b -> go (b :: acc)
      | None -> go acc)
    | None -> ( match Batcher.drain batcher with Some b -> List.rev (b :: acc) | None -> List.rev acc)
  in
  go []

let pipeline ?(options = Engine.default_options) ?(canonicalize = true)
    ?(checkpoint_every = 2) ?(keep_versions = 2) ?(max_docs = 8) ?attach
    ?verify_snapshot ~dir source =
  let batches = batches_of source (Batcher.create ~max_docs ()) in
  let steps = List.length batches in
  let store = ref None and txn = ref None and feed = ref None in
  let the_store () = Option.get !store in
  let the_txn () = Option.get !txn in
  let the_feed () = Option.get !feed in
  let notify () = match attach with None -> () | Some f -> f (the_txn ()) in
  let publish () =
    let st = the_store () in
    Checkpoint.save_blob st ~name:blob_name
      (encode_blob ~seq:(Checkpoint.applied st) (Feed.encode_state (the_feed ())));
    Checkpoint.save st (Txn.engine (the_txn ()))
  in
  let fresh ~clear st =
    if clear then clear_active dir;
    let db = Database.create () in
    Feed.prepare_database db source;
    let engine = Engine.create ~options db (stream_program ()) in
    store := Some st;
    txn := Some (Txn.create engine);
    feed := Some (Feed.create ~canonicalize (the_txn ()));
    notify ();
    publish ()
  in
  let scrub () =
    let st = the_store () in
    Scrub.run
      ~engine:(Txn.engine (the_txn ()))
      ~reblob:(fun _ ->
        Some (encode_blob ~seq:(Checkpoint.applied st) (Feed.encode_state (the_feed ()))))
      ?verify_snapshot st
  in
  {
    Soak.steps;
    reset =
      (fun () ->
        (* Clean slate: even quarantined evidence from earlier schedules
           goes. *)
        if Sys.file_exists dir && Sys.is_directory dir then
          Array.iter
            (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
            (Sys.readdir dir)
        else if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        fresh ~clear:false (Checkpoint.open_store ~keep_versions dir));
    apply =
      (fun i ->
        ignore (Feed.ingest (the_feed ()) (List.nth batches i));
        Checkpoint.set_applied (the_store ()) (i + 1);
        if (i + 1) mod checkpoint_every = 0 then publish ());
    save = publish;
    recover =
      (fun () ->
        let st = Checkpoint.open_store ~keep_versions dir in
        let scratch () =
          fresh ~clear:true (Checkpoint.open_store ~keep_versions dir);
          0
        in
        match Checkpoint.recover st with
        | Error _ -> scratch ()
        | Ok (engine, applied) -> (
          match Checkpoint.load_blob st ~name:blob_name with
          | Error _ | Ok None -> scratch ()
          | Ok (Some raw) -> (
            match decode_blob raw with
            | Some (seq, blob) when seq = applied -> (
              match Feed.decode_state blob with
              | Error _ -> scratch ()
              | Ok state ->
                store := Some st;
                txn := Some (Txn.create engine);
                feed := Some (Feed.create ~canonicalize ~state (the_txn ()));
                notify ();
                applied)
            | Some _ | None ->
              (* Blob and checkpoint out of step (crash landed between the
                 two publishes): never marry them — redrive from scratch. *)
              scratch ())));
    scrub;
    fingerprint =
      (fun () ->
        Marshal.to_string
          ( Engine.marginals_by_relation (Txn.engine (the_txn ())),
            Feed.encode_state (the_feed ()) )
          []);
  }
