(** The full ingest→txn→checkpoint loop as a {!Dd_kbc.Soak.pipeline}.

    Each pipeline step ingests one pre-batched slice of a deterministic
    document stream through {!Feed.ingest}; every [checkpoint_every]
    batches the engine snapshot and the feed state (sentence counter +
    canonicalizer) are published together, blob first, with the blob
    stamped by its sequence.  Recovery refuses to combine an engine
    snapshot with feed state from a different sequence — on any mismatch
    (or when nothing on disk is loadable) it redrives the whole stream
    from scratch, which is deterministic and converges to the same
    state.

    Soak schedules over this pipeline should stick to the [io.*] fault
    points: engine-internal faults are absorbed deterministically by
    {!Dd_core.Txn.apply}'s retry ladder and never reach the durability
    path this harness exists to break. *)

module Engine = Dd_core.Engine
module Txn = Dd_core.Txn

val pipeline :
  ?options:Engine.options ->
  ?canonicalize:bool ->
  ?checkpoint_every:int ->
  ?keep_versions:int ->
  ?max_docs:int ->
  ?attach:(Txn.t -> unit) ->
  ?verify_snapshot:(unit -> (unit, string) result) ->
  dir:string ->
  Source.t ->
  Dd_kbc.Soak.pipeline
(** Build the soakable pipeline over [source]'s full stream (consumed
    eagerly into batches of at most [max_docs], default 8) and a
    checkpoint store at [dir].  [attach] is called with the live
    transactional supervisor after every reset and every recovery — the
    hook for rebuilding a serving layer on top; pair it with
    [verify_snapshot] so the scrub checks what that layer currently
    serves. *)
