(* Deterministic document-arrival streams.

   Everything is precomputed inside [synthetic] from the config seed —
   arrival timestamps, document text, which surface variant each mention
   uses, and when each alias declaration surfaces — so a stream is a pure
   value: two sources with equal configs emit identical documents, and the
   bench's latency numbers are attributable to the pipeline, not the
   generator.

   Surface-form model per entity [e]:
     primary   "First<e> Last<e>"   (the form [known] facts are keyed to)
     surname   "Last<e>"            (needs a declared alias to merge)
     nickname  "Nick<e>"           (needs a declared alias to merge)
     shouted   "FIRST<e> LAST<e>"   (case variant: merges by normalization)

   An alias declaration (variant, primary) rides with the first document
   using the variant, or — with probability [alias_lag] — joins a pending
   queue that later documents drain, which is exactly the late-merge case
   the canonicalizer must turn into a retract + rederive delta. *)

module Value = Dd_relational.Value
module Tuple = Dd_relational.Tuple
module Prng = Dd_util.Prng
module Corpus = Dd_kbc.Corpus
module Mention_finder = Dd_text.Mention_finder

type payload =
  | Text of {
      text : string;
      names : string list;
      aliases : (string * string) list;
    }
  | Rows of (string * Tuple.t list) list

type doc = { id : int; arrival_s : float; payload : payload }

type config = {
  docs : int;
  entities : int;
  relations : int;
  sentences_per_doc : int;
  rate : float;
  burstiness : float;
  primary_first : float;
  alias_lag : float;
  noise_rate : float;
  truth_pairs_per_relation : int;
  known_fraction : float;
  seed : int;
}

let default =
  {
    docs = 120;
    entities = 30;
    relations = 3;
    sentences_per_doc = 2;
    rate = 200.0;
    burstiness = 0.3;
    primary_first = 0.8;
    alias_lag = 0.5;
    noise_rate = 0.2;
    truth_pairs_per_relation = 12;
    known_fraction = 0.6;
    seed = 11;
  }

type t = {
  mutable queue : doc list;  (* arrival order *)
  static : (string * Tuple.t list) list;
  total : int;
  truth_entities : int;
}

let s = Value.str

let primary e = Printf.sprintf "First%d Last%d" e e
let surname e = Printf.sprintf "Last%d" e
let nickname e = Printf.sprintf "Nick%d" e
let shouted e = Printf.sprintf "FIRST%d LAST%d" e e

let variants e = [| primary e; surname e; nickname e; shouted e |]

let entity_id e = "ent:" ^ Mention_finder.normalize_name (primary e)

let rel_name r = Printf.sprintf "r%d" r

let cues_per_relation = 3

let cue_phrase r k = Printf.sprintf "%s_cue%d" (rel_name r) k

let n_noise_phrases = 6

let noise_phrase k = Printf.sprintf "noise%d" k

(* Interarrival gaps: exponential with mean [1/rate]; a [burstiness]
   fraction of gaps collapse to 5% of their draw (a burst) and the rest
   stretch so the overall mean rate is preserved. *)
let next_gap rng cfg =
  let base = Prng.exponential rng cfg.rate in
  let p = cfg.burstiness in
  if p <= 0.0 then base
  else if Prng.bernoulli rng p then base *. 0.05
  else base *. ((1.0 -. (0.05 *. p)) /. (1.0 -. p))

let synthetic cfg =
  if cfg.entities < 2 then invalid_arg "Source.synthetic: need at least 2 entities";
  if cfg.relations < 1 then invalid_arg "Source.synthetic: need at least 1 relation";
  let rng = Prng.create cfg.seed in
  let nrels = cfg.relations in
  (* Hidden ground truth and the incomplete KB derived from it. *)
  let truth_set = Hashtbl.create 64 in
  let truth_by_rel =
    Array.init nrels (fun r ->
        let pairs = ref [] and made = ref 0 and attempts = ref 0 in
        while !made < cfg.truth_pairs_per_relation && !attempts < cfg.truth_pairs_per_relation * 20 do
          incr attempts;
          let e1 = Prng.int_below rng cfg.entities and e2 = Prng.int_below rng cfg.entities in
          if e1 <> e2 && not (Hashtbl.mem truth_set (r, e1, e2)) then begin
            Hashtbl.replace truth_set (r, e1, e2) ();
            pairs := (e1, e2) :: !pairs;
            incr made
          end
        done;
        Array.of_list (List.rev !pairs))
  in
  let known =
    List.concat
      (List.init nrels (fun r ->
           Array.to_list truth_by_rel.(r)
           |> List.filter_map (fun (e1, e2) ->
                  if Prng.bernoulli rng cfg.known_fraction then
                    Some [| s (rel_name r); s (entity_id e1); s (entity_id e2) |]
                  else None)))
  in
  let disjoint =
    if nrels < 2 then []
    else
      List.init nrels (fun r -> [| s (rel_name r); s (rel_name ((r + 1) mod nrels)) |])
  in
  let phrase_rel =
    List.concat
      (List.init nrels (fun r ->
           List.init cues_per_relation (fun k -> [| s (cue_phrase r k); s (rel_name r) |])))
    (* one mapped noise phrase: candidate recall over precision *)
    @ [ [| s (noise_phrase 0); s (rel_name (Prng.int_below rng nrels)) |] ]
  in
  let static =
    [
      ("rel", List.init nrels (fun r -> [| s (rel_name r) |]));
      ("phrase_rel", phrase_rel);
      ("known", known);
      ("disjoint", disjoint);
    ]
  in
  (* Per-entity stream state. *)
  let appeared = Array.make cfg.entities false in
  let name_introduced = Array.make_matrix cfg.entities 4 false in
  let alias_declared = Array.make_matrix cfg.entities 4 false in
  let pending = Queue.create () in
  let used_entities = Hashtbl.create cfg.entities in
  let clock = ref 0.0 in
  let docs = ref [] in
  for id = 0 to cfg.docs - 1 do
    clock := !clock +. next_gap rng cfg;
    let names = ref [] and aliases = ref [] in
    (* Later documents drain the deferred-alias queue. *)
    while (not (Queue.is_empty pending)) && Prng.bernoulli rng 0.6 do
      aliases := Queue.pop pending :: !aliases
    done;
    let introduce e v =
      if not name_introduced.(e).(v) then begin
        name_introduced.(e).(v) <- true;
        names := (variants e).(v) :: !names
      end
    in
    let surface_of e =
      Hashtbl.replace used_entities e ();
      let v =
        if not appeared.(e) then
          if Prng.bernoulli rng cfg.primary_first then 0 else 1 + Prng.int_below rng 3
        else Prng.int_below rng 4
      in
      appeared.(e) <- true;
      introduce e v;
      (* Variants 1 and 2 merge only through a declared alias; emit the
         declaration now or defer it. *)
      if (v = 1 || v = 2) && not alias_declared.(e).(v) then begin
        alias_declared.(e).(v) <- true;
        let declaration = ((variants e).(v), primary e) in
        if Prng.bernoulli rng cfg.alias_lag then Queue.push declaration pending
        else aliases := declaration :: !aliases
      end;
      (variants e).(v)
    in
    let sentences = ref [] in
    for _ = 1 to cfg.sentences_per_doc do
      let sentence =
        if Prng.bernoulli rng cfg.noise_rate then begin
          let e1 = Prng.int_below rng cfg.entities in
          let e2 = (e1 + 1 + Prng.int_below rng (cfg.entities - 1)) mod cfg.entities in
          Printf.sprintf "%s %s %s." (surface_of e1)
            (noise_phrase (Prng.int_below rng n_noise_phrases))
            (surface_of e2)
        end
        else begin
          let r = Prng.int_below rng nrels in
          if Array.length truth_by_rel.(r) = 0 then "nothing happened."
          else begin
            let e1, e2 = Prng.choice rng truth_by_rel.(r) in
            Printf.sprintf "%s %s %s." (surface_of e1)
              (cue_phrase r (Prng.int_below rng cues_per_relation))
              (surface_of e2)
          end
        end
      in
      sentences := sentence :: !sentences;
      (* Occasional mention-free or punctuation-only filler, so the
         pipeline's edge cases stay exercised by the stream itself. *)
      if Prng.bernoulli rng 0.1 then sentences := "meanwhile, nothing else happened." :: !sentences;
      if Prng.bernoulli rng 0.05 then sentences := "... !" :: !sentences
    done;
    docs :=
      {
        id;
        arrival_s = !clock;
        payload =
          Text
            {
              text = String.concat " " (List.rev !sentences);
              names = List.rev !names;
              aliases = List.rev !aliases;
            };
      }
      :: !docs
  done;
  {
    queue = List.rev !docs;
    static;
    total = cfg.docs;
    truth_entities = Hashtbl.length used_entities;
  }

let replay ?(rate = 1000.0) (corpus : Corpus.t) =
  let n = corpus.Corpus.config.Corpus.docs in
  let docs =
    List.init n (fun id ->
        {
          id;
          arrival_s = float_of_int (id + 1) /. rate;
          payload = Rows corpus.Corpus.doc_tables.(id);
        })
  in
  {
    queue = docs;
    static = corpus.Corpus.static_tables;
    total = n;
    truth_entities = corpus.Corpus.config.Corpus.entities;
  }

let next t =
  match t.queue with
  | [] -> None
  | doc :: rest ->
    t.queue <- rest;
    Some doc

let static_tables t = t.static

let total_docs t = t.total

let true_entities t = t.truth_entities
