(** Deterministic document-arrival streams for the ingestion subsystem.

    Two stream shapes share one consumer interface:

    - {!synthetic} — a seeded generative process emitting raw-text
      documents with a configurable mean rate and burstiness.  Each
      document carries the dictionary names it introduces (the stream's
      "NER hints") and zero or more alias declarations; entities appear
      under several surface forms (full name, surname, initialed form,
      case variants), and alias declarations may lag the first use of a
      variant by several documents, so cross-document merges genuinely
      happen late.
    - {!replay} — the per-document tables of a {!Dd_kbc.Corpus}
      materialization replayed on a fixed cadence, for feeding the
      existing synthetic-corpus experiments through the streaming path.

    Arrival order and timestamps are fully determined by the config seed;
    two sources built from equal configs emit byte-identical streams. *)

module Tuple = Dd_relational.Tuple

type payload =
  | Text of {
      text : string;  (** raw document text (sentences, terminators included) *)
      names : string list;  (** dictionary names this document introduces *)
      aliases : (string * string) list;  (** declared synonym pairs *)
    }
  | Rows of (string * Tuple.t list) list
      (** pre-materialized base-table rows (corpus replay) *)

type doc = { id : int; arrival_s : float; payload : payload }

type config = {
  docs : int;
  entities : int;
  relations : int;
  sentences_per_doc : int;
  rate : float;  (** mean arrival rate, docs per (simulated) second *)
  burstiness : float;
      (** in [0, 1): fraction of interarrival gaps collapsed into bursts;
          the remaining gaps stretch so the mean rate is preserved *)
  primary_first : float;
      (** probability an entity's first stream appearance uses its primary
          (full) name — the complement creates late-merge material *)
  alias_lag : float;
      (** probability an alias declaration is deferred to a later document
          instead of riding with the first use of the variant *)
  noise_rate : float;  (** sentences drawn from noise pairs/phrases *)
  truth_pairs_per_relation : int;
  known_fraction : float;  (** fraction of truth exposed in [known] *)
  seed : int;
}

val default : config

type t

val synthetic : config -> t

val replay : ?rate:float -> Dd_kbc.Corpus.t -> t
(** Replay a materialized corpus document-by-document at [rate] docs/s
    (default 1000). *)

val next : t -> doc option
(** The next document in arrival order, [None] when the stream is done. *)

val static_tables : t -> (string * Tuple.t list) list
(** The non-streamed base tables ([rel], [phrase_rel], [known],
    [disjoint]; for replay, the corpus's own static tables including its
    [el]) to load before the first document. *)

val total_docs : t -> int

val true_entities : t -> int
(** Ground-truth entity count behind a synthetic stream (how many
    canonical entities a perfect canonicalizer would converge to); for
    replay streams, the corpus config's entity count. *)
