(* Crash-safe checkpoint/recovery for the incremental KBC loop.

   The durable layout inside a store directory is:

     MANIFEST            names the latest valid checkpoint + its WAL
     ckpt-<n>.ddckpt     engine state after the first n updates
     wal-<n>.log         updates n+1, n+2, ... (one entry each)

   A checkpoint file embeds the factor graph in the auditable ddgraph v2
   text format (with its own CRC-32 footer) followed by a CRC-checked
   binary snapshot of the full engine state.  Every publish is atomic
   (temp file + rename) and ordered so that a crash at any instant leaves
   the previous MANIFEST consistent: first the fresh (empty) WAL, then the
   checkpoint file, then the MANIFEST switch.

   The write-ahead log makes individual updates durable before they
   mutate the engine: [apply_update] appends the update's payload
   (flushed) and only then runs the in-memory update.  Recovery therefore
   is: load the latest checkpoint, validate it, replay the WAL through
   the ordinary [Engine.apply_update] path — deterministic, since the
   snapshot includes the engine's PRNG state — and publish a fresh
   checkpoint.  A torn entry at the WAL tail (the classic mid-append
   crash) fails its CRC or length check and marks the end of the log. *)

module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Txn = Dd_core.Txn
module Graph = Dd_fgraph.Graph
module Serialize = Dd_fgraph.Serialize
module Database = Dd_relational.Database
module Crc32 = Dd_util.Crc32
module Fault = Dd_util.Fault

type error =
  | No_checkpoint  (** the store has no published manifest *)
  | Corrupt of string  (** bad magic, failed checksum, torn structure *)
  | Invalid_state of string  (** checksums fine, semantic validation failed *)

let error_to_string = function
  | No_checkpoint -> "no checkpoint published in store"
  | Corrupt message -> "corrupt checkpoint store: " ^ message
  | Invalid_state message -> "checkpoint failed validation: " ^ message

type t = {
  dir : string;
  mutable seq : int;  (* updates logged since the engine was created *)
  mutable wal : out_channel option;
}

let manifest_path store = Filename.concat store.dir "MANIFEST"

let ckpt_path store seq = Filename.concat store.dir (Printf.sprintf "ckpt-%d.ddckpt" seq)

let wal_path store seq = Filename.concat store.dir (Printf.sprintf "wal-%d.log" seq)

let open_store dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  if not (Sys.is_directory dir) then
    invalid_arg ("Checkpoint.open_store: not a directory: " ^ dir);
  { dir; seq = 0; wal = None }

let abandon store =
  (match store.wal with Some ch -> close_out_noerr ch | None -> ());
  store.wal <- None

(* Atomic small-file publish. *)
let write_file_atomic path content =
  let tmp = path ^ ".tmp" in
  let out = open_out_bin tmp in
  (match output_string out content with
  | () -> close_out out
  | exception e ->
    close_out_noerr out;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

(* --- checkpoint save ------------------------------------------------------- *)

let state_snapshot engine = Marshal.to_string (engine : Engine.t) []

let checkpoint_content engine ~seq =
  let buffer = Buffer.create 65536 in
  Buffer.add_string buffer "ddckpt 1\n";
  Buffer.add_string buffer (Printf.sprintf "seq %d\n" seq);
  Buffer.add_string buffer (Serialize.to_string (Engine.graph engine));
  let state = state_snapshot engine in
  Buffer.add_string buffer
    (Printf.sprintf "state %d %s\n" (String.length state)
       (Crc32.to_hex (Crc32.string state)));
  Buffer.add_string buffer state;
  Buffer.add_string buffer "\nend\n";
  Buffer.contents buffer

let publish_manifest store ~ckpt ~wal =
  let content =
    Printf.sprintf "ddmanifest 1\ncheckpoint %s\nwal %s\nend\n" ckpt wal
  in
  write_file_atomic (manifest_path store) content

let gc_stale_files store ~keep_ckpt ~keep_wal =
  Array.iter
    (fun name ->
      let stale_ckpt = Filename.check_suffix name ".ddckpt" && name <> keep_ckpt in
      let stale_wal =
        String.length name >= 4 && String.sub name 0 4 = "wal-" && name <> keep_wal
      in
      if stale_ckpt || stale_wal then
        try Sys.remove (Filename.concat store.dir name) with Sys_error _ -> ())
    (try Sys.readdir store.dir with Sys_error _ -> [||])

let save store engine =
  let seq = store.seq in
  (* 1. Fresh empty WAL for the updates that will follow this checkpoint.
     Not yet referenced by the manifest, so a crash here is invisible. *)
  let wal_name = Printf.sprintf "wal-%d.log" seq in
  write_file_atomic (wal_path store seq) (Printf.sprintf "ddwal 1 %d\n" seq);
  (* 2. The checkpoint file itself. *)
  let ckpt_name = Printf.sprintf "ckpt-%d.ddckpt" seq in
  let tmp = ckpt_path store seq ^ ".tmp" in
  write_file_atomic tmp (checkpoint_content engine ~seq);
  Fault.hit "checkpoint.save.pre_rename";
  Sys.rename tmp (ckpt_path store seq);
  (* 3. Only the manifest switch makes the new checkpoint authoritative. *)
  Fault.hit "checkpoint.save.pre_manifest";
  publish_manifest store ~ckpt:ckpt_name ~wal:wal_name;
  (* 4. Retire the previous WAL channel and files. *)
  (match store.wal with Some ch -> close_out_noerr ch | None -> ());
  store.wal <- Some (open_out_gen [ Open_wronly; Open_append ] 0o644 (wal_path store seq));
  gc_stale_files store ~keep_ckpt:ckpt_name ~keep_wal:wal_name

(* --- write-ahead log ------------------------------------------------------- *)

let log_update store (update : Grounding.update) =
  match store.wal with
  | None -> invalid_arg "Checkpoint.log_update: no checkpoint published yet"
  | Some ch ->
    let payload = Marshal.to_string update [] in
    let seq = store.seq + 1 in
    output_string ch
      (Printf.sprintf "entry %d %d %s\n" seq (String.length payload)
         (Crc32.to_hex (Crc32.string payload)));
    (* Crash between header and payload leaves a torn tail entry, which
       recovery discards. *)
    Fault.hit "checkpoint.log_update.mid_write";
    output_string ch payload;
    output_string ch "\n";
    flush ch;
    store.seq <- seq

let apply_update store engine update =
  log_update store update;
  Engine.apply_update engine update

(* --- dead-letter persistence ------------------------------------------------ *)

(* Quarantined updates survive a restart in a DEADLETTERS file published
   atomically next to the checkpoints.  Each letter keeps the supervisor's
   metadata plus its replayable payload in the exact [Txn.encode_update]
   encoding (magic + CRC-32 + marshalled bytes), so a loaded letter decodes
   through the same CRC gate as a live one.  Lengths are recorded
   explicitly: a torn or tampered file fails structurally before any
   payload reaches [Marshal]. *)

let dead_letters_path store = Filename.concat store.dir "DEADLETTERS"

let error_tag : Txn.error -> string = function
  | `Malformed_delta _ -> "malformed"
  | `Transient _ -> "transient"
  | `Inference_timeout _ -> "timeout"
  | `Internal _ -> "internal"

let error_detail : Txn.error -> string = function
  | `Malformed_delta m | `Transient m | `Inference_timeout m | `Internal m -> m

let error_of_tag tag message : Txn.error option =
  match tag with
  | "malformed" -> Some (`Malformed_delta message)
  | "transient" -> Some (`Transient message)
  | "timeout" -> Some (`Inference_timeout message)
  | "internal" -> Some (`Internal message)
  | _ -> None

let save_dead_letters store letters =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "dddead 1\n";
  List.iter
    (fun (dl : Txn.dead_letter) ->
      let message = error_detail dl.Txn.error in
      Buffer.add_string buffer
        (Printf.sprintf "letter %d %d %s %d %d\n" dl.Txn.seq dl.Txn.attempts
           (error_tag dl.Txn.error) (String.length message)
           (String.length dl.Txn.payload));
      Buffer.add_string buffer message;
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer dl.Txn.payload;
      Buffer.add_char buffer '\n')
    letters;
  Buffer.add_string buffer "end\n";
  write_file_atomic (dead_letters_path store) (Buffer.contents buffer)

(* --- load + recovery ------------------------------------------------------- *)

exception Bad of error

let corrupt fmt = Printf.ksprintf (fun m -> raise (Bad (Corrupt m))) fmt

let load_dead_letters store =
  let path = dead_letters_path store in
  if not (Sys.file_exists path) then Ok []
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let line () = try input_line ic with End_of_file -> corrupt "truncated DEADLETTERS" in
          (match line () with
          | "dddead 1" -> ()
          | other -> corrupt "bad DEADLETTERS header: %s" other);
          let read_exact len what =
            let bytes = Bytes.create len in
            (try really_input ic bytes 0 len
             with End_of_file -> corrupt "truncated DEADLETTERS %s" what);
            (match input_line ic with
            | "" -> ()
            | _ -> corrupt "missing DEADLETTERS %s terminator" what
            | exception End_of_file -> corrupt "missing DEADLETTERS %s terminator" what);
            Bytes.unsafe_to_string bytes
          in
          let rec loop acc =
            match line () with
            | "end" -> List.rev acc
            | header -> (
              match String.split_on_char ' ' header with
              | [ "letter"; seq; attempts; tag; msg_len; payload_len ] -> (
                match
                  ( int_of_string_opt seq,
                    int_of_string_opt attempts,
                    int_of_string_opt msg_len,
                    int_of_string_opt payload_len )
                with
                | Some seq, Some attempts, Some msg_len, Some payload_len
                  when seq > 0 && attempts >= 0 && msg_len >= 0 && payload_len >= 0 -> (
                  let message = read_exact msg_len "error message" in
                  let payload = read_exact payload_len "payload" in
                  match error_of_tag tag message with
                  | None -> corrupt "unknown DEADLETTERS error tag %s" tag
                  | Some error ->
                    (* The payload carries its own CRC ([Txn.encode_update]);
                       gate on it now so a corrupt letter surfaces at load
                       time, not at replay time. *)
                    (match Txn.decode_update payload with
                    | Ok _ -> ()
                    | Error m -> corrupt "letter %d payload: %s" seq m);
                    loop ({ Txn.seq; error; attempts; payload } :: acc))
                | _ -> corrupt "bad DEADLETTERS letter header: %s" header)
              | _ -> corrupt "bad DEADLETTERS letter header: %s" header)
          in
          loop [])
    with
    | letters -> Ok letters
    | exception Bad error -> Error error
    | exception Sys_error m -> Error (Corrupt m)

(* --- sidecar blobs ---------------------------------------------------------- *)

(* Small named state blobs published atomically next to the checkpoints —
   the subsystem-state analogue of DEADLETTERS (the ingestion feed stores
   its canonicalizer here).  Length + CRC are recorded explicitly so a torn
   or tampered file fails structurally at load time. *)

let blob_path store name =
  String.iter
    (fun c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        || c = '-' || c = '_'
      in
      if not ok then invalid_arg ("Checkpoint blob name: " ^ name))
    name;
  if name = "" then invalid_arg "Checkpoint blob name: empty";
  Filename.concat store.dir ("BLOB_" ^ name)

let save_blob store ~name content =
  write_file_atomic (blob_path store name)
    (Printf.sprintf "ddblob 1 %d %s\n%s\nend\n" (String.length content)
       (Crc32.to_hex (Crc32.string content))
       content)

let load_blob store ~name =
  let path = blob_path store name in
  if not (Sys.file_exists path) then Ok None
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let line () = try input_line ic with End_of_file -> corrupt "truncated blob %s" name in
          let len, crc =
            match String.split_on_char ' ' (line ()) with
            | [ "ddblob"; "1"; len; hex ] -> (
              match (int_of_string_opt len, Crc32.of_hex hex) with
              | Some len, Some crc when len >= 0 -> (len, crc)
              | _ -> corrupt "bad blob %s header fields" name)
            | _ -> corrupt "bad blob %s header" name
          in
          let bytes = Bytes.create len in
          (try really_input ic bytes 0 len
           with End_of_file -> corrupt "truncated blob %s content" name);
          (match line () with
          | "" -> ()
          | _ -> corrupt "missing blob %s terminator" name);
          (match line () with "end" -> () | _ -> corrupt "bad blob %s footer" name);
          let content = Bytes.unsafe_to_string bytes in
          if Crc32.string content <> crc then corrupt "blob %s checksum mismatch" name;
          content)
    with
    | content -> Ok (Some content)
    | exception Bad error -> Error error
    | exception Sys_error m -> Error (Corrupt m)

let read_manifest store =
  let path = manifest_path store in
  if not (Sys.file_exists path) then raise (Bad No_checkpoint);
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line () = try input_line ic with End_of_file -> corrupt "truncated MANIFEST" in
      (match line () with
      | "ddmanifest 1" -> ()
      | other -> corrupt "bad MANIFEST header: %s" other);
      let ckpt =
        match String.split_on_char ' ' (line ()) with
        | [ "checkpoint"; name ] -> name
        | _ -> corrupt "bad MANIFEST checkpoint line"
      in
      let wal =
        match String.split_on_char ' ' (line ()) with
        | [ "wal"; name ] -> name
        | _ -> corrupt "bad MANIFEST wal line"
      in
      (match line () with "end" -> () | _ -> corrupt "bad MANIFEST footer");
      (ckpt, wal))

let validate engine =
  let ( let* ) = Result.bind in
  let* () =
    Result.map_error (fun e -> "factor graph: " ^ e) (Graph.validate (Engine.graph engine))
  in
  Result.map_error
    (fun e -> "database: " ^ e)
    (Database.validate (Grounding.database (Engine.grounding engine)))

let load_checkpoint_file path =
  if not (Sys.file_exists path) then corrupt "missing checkpoint file %s" path;
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line () = try input_line ic with End_of_file -> corrupt "truncated checkpoint" in
      (match line () with
      | "ddckpt 1" -> ()
      | other -> corrupt "bad checkpoint header: %s" other);
      let seq =
        match String.split_on_char ' ' (line ()) with
        | [ "seq"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 0 -> n
          | Some _ | None -> corrupt "bad checkpoint seq")
        | _ -> corrupt "expected seq line"
      in
      (* The embedded ddgraph section runs through its own [end] line. *)
      let graph_buffer = Buffer.create 65536 in
      let rec slurp_graph () =
        let l = line () in
        Buffer.add_string graph_buffer l;
        Buffer.add_char graph_buffer '\n';
        if l <> "end" then slurp_graph ()
      in
      slurp_graph ();
      let graph_text = Buffer.contents graph_buffer in
      let graph =
        match Serialize.of_string graph_text with
        | g -> g
        | exception Serialize.Format_error m -> corrupt "embedded graph: %s" m
      in
      let state_len, state_crc =
        match String.split_on_char ' ' (line ()) with
        | [ "state"; len; crc ] -> (
          match (int_of_string_opt len, Crc32.of_hex crc) with
          | Some len, Some crc when len >= 0 -> (len, crc)
          | _ -> corrupt "bad state line")
        | _ -> corrupt "expected state line"
      in
      let state = Bytes.create state_len in
      (try really_input ic state 0 state_len
       with End_of_file -> corrupt "truncated state section");
      let state = Bytes.unsafe_to_string state in
      (* Checksum gate before unmarshalling: [Marshal.from_string] on
         corrupted bytes is undefined behaviour, so it must never see
         them. *)
      if Crc32.string state <> state_crc then corrupt "state checksum mismatch";
      (match line () with
      | "" -> ()
      | _ -> corrupt "missing state terminator");
      (match line () with "end" -> () | _ -> corrupt "missing checkpoint footer");
      (match Graph.validate graph with
      | Ok () -> ()
      | Error m -> raise (Bad (Invalid_state ("embedded graph: " ^ m))));
      let engine : Engine.t = Marshal.from_string state 0 in
      (* Cross-check the binary snapshot against the auditable graph
         section: both came from the same save, so re-serialization must
         be byte-identical. *)
      if Serialize.to_string (Engine.graph engine) <> graph_text then
        raise (Bad (Invalid_state "embedded graph does not match engine state"));
      (match validate engine with
      | Ok () -> ()
      | Error m -> raise (Bad (Invalid_state m)));
      (seq, engine))

(* Entries after the checkpoint, in order; a torn or out-of-sequence tail
   entry ends the log. *)
let read_wal path ~ckpt_seq =
  if not (Sys.file_exists path) then corrupt "missing WAL file %s" path;
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (match input_line ic with
      | header ->
        (match String.split_on_char ' ' header with
        | [ "ddwal"; "1"; n ] when int_of_string_opt n = Some ckpt_seq -> ()
        | _ -> corrupt "bad WAL header: %s" header)
      | exception End_of_file -> corrupt "empty WAL file");
      let entries = ref [] in
      let expected = ref (ckpt_seq + 1) in
      (* [None] = end of log (EOF, torn tail, or any malformed structure —
         all treated as "the entry never made it to disk"). *)
      let next_entry () =
        match input_line ic with
        | exception End_of_file -> None
        | header -> (
          match String.split_on_char ' ' header with
          | [ "entry"; seq; len; crc ] -> (
            match (int_of_string_opt seq, int_of_string_opt len, Crc32.of_hex crc) with
            | Some seq, Some len, Some crc when seq = !expected && len >= 0 -> (
              let payload = Bytes.create len in
              match really_input ic payload 0 len with
              | exception End_of_file -> None (* torn tail *)
              | () -> (
                let payload = Bytes.unsafe_to_string payload in
                if Crc32.string payload <> crc then None (* torn/corrupt tail *)
                else
                  match input_line ic with
                  | "" -> Some (Marshal.from_string payload 0 : Grounding.update)
                  | _ -> None (* bad terminator: torn *)
                  | exception End_of_file -> None (* missing terminator: torn *)))
            | _ -> None (* malformed or out-of-sequence header: end of log *))
          | _ -> None)
      in
      let rec loop () =
        match next_entry () with
        | None -> ()
        | Some update ->
          entries := update :: !entries;
          incr expected;
          loop ()
      in
      loop ();
      List.rev !entries)

let recover store =
  abandon store;
  match
    let ckpt, wal = read_manifest store in
    let ckpt_seq, engine = load_checkpoint_file (Filename.concat store.dir ckpt) in
    let updates = read_wal (Filename.concat store.dir wal) ~ckpt_seq in
    (* Replay through the ordinary update path: deterministic because the
       snapshot restored the engine's PRNG along with everything else. *)
    List.iter (fun update -> ignore (Engine.apply_update engine update)) updates;
    let applied = ckpt_seq + List.length updates in
    store.seq <- applied;
    (* Re-publish so the replay work is durable and any torn WAL tail is
       retired. *)
    save store engine;
    (engine, applied)
  with
  | result -> Ok result
  | exception Bad error -> Error error
  | exception Sys_error m -> Error (Corrupt m)

let latest store =
  match read_manifest store with
  | ckpt, _ -> Some ckpt
  | exception Bad _ -> None
  | exception Sys_error _ -> None
