(* Crash-safe checkpoint/recovery for the incremental KBC loop.

   The durable layout inside a store directory is:

     MANIFEST            names the latest published checkpoint + its WAL
     ckpt-<n>.ddckpt     engine state after the first n updates
     wal-<n>.log         updates n+1, n+2, ... (one entry each)
     *.quarantined       damaged files set aside by recovery/scrub

   A checkpoint file embeds the factor graph in the auditable ddgraph v2
   text format (with its own CRC-32 footer) followed by a CRC-checked
   binary snapshot of the full engine state.  Every publish is atomic and
   durable (temp file + data fsync + rename + directory fsync, all via
   {!Dd_util.Fault_file}) and ordered so that a crash at any instant
   leaves the previous checkpoint consistent: first the fresh (empty)
   WAL, then the checkpoint file, then the MANIFEST switch.

   The store retains the newest [keep_versions] checkpoint/WAL pairs.
   Because wal-<m> holds exactly the updates between checkpoint m and the
   next publish, recovery that has to fall back past a damaged newest
   version can chain-replay forward: load ckpt-<m>, replay wal-<m> to
   reach the next publish point, and keep following WALs by sequence
   until the chain runs out.

   The write-ahead log makes individual updates durable before they
   mutate the engine: [apply_update] appends the update's payload
   (flushed + fsynced) and only then runs the in-memory update.  Recovery
   therefore is: load the newest checkpoint that passes every checksum —
   quarantining any version that doesn't ([.quarantined] suffix, never
   deleted) — replay the WAL chain through the ordinary
   [Engine.apply_update] path (deterministic, since the snapshot includes
   the engine's PRNG state), and publish a fresh checkpoint.  A torn
   entry at the WAL tail (the classic mid-append crash) fails its CRC or
   length check and marks the end of the log. *)

module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Txn = Dd_core.Txn
module Graph = Dd_fgraph.Graph
module Serialize = Dd_fgraph.Serialize
module Database = Dd_relational.Database
module Crc32 = Dd_util.Crc32
module Fault = Dd_util.Fault
module Fault_file = Dd_util.Fault_file

type error =
  | No_checkpoint  (** the store has no checkpoint at all *)
  | Corrupt of string  (** bad magic, failed checksum, torn structure *)
  | Invalid_state of string  (** checksums fine, semantic validation failed *)

let error_to_string = function
  | No_checkpoint -> "no checkpoint published in store"
  | Corrupt message -> "corrupt checkpoint store: " ^ message
  | Invalid_state message -> "checkpoint failed validation: " ^ message

type t = {
  dir : string;
  keep : int;  (* checkpoint versions retained by gc *)
  fsync : bool;  (* fsync data + directories on every publish *)
  mutable seq : int;  (* updates logged since the engine was created *)
  mutable wal : out_channel option;
  mutable wal_file : string option;  (* path behind [wal], for fsync tracking *)
}

let manifest_path store = Filename.concat store.dir "MANIFEST"

let ckpt_name seq = Printf.sprintf "ckpt-%d.ddckpt" seq

let wal_name seq = Printf.sprintf "wal-%d.log" seq

let ckpt_path store seq = Filename.concat store.dir (ckpt_name seq)

let wal_path store seq = Filename.concat store.dir (wal_name seq)

let open_store ?(keep_versions = 2) ?(fsync = true) dir =
  if keep_versions < 1 then invalid_arg "Checkpoint.open_store: keep_versions < 1";
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  if not (Sys.is_directory dir) then
    invalid_arg ("Checkpoint.open_store: not a directory: " ^ dir);
  { dir; keep = keep_versions; fsync; seq = 0; wal = None; wal_file = None }

let abandon store =
  (match store.wal with Some ch -> close_out_noerr ch | None -> ());
  store.wal <- None;
  store.wal_file <- None
let applied store = store.seq


let set_applied store n =
  if n < store.seq then invalid_arg "Checkpoint.set_applied: sequence moved backwards";
  store.seq <- n

(* Version names are structural: "ckpt-<n>.ddckpt" (and nothing else). *)
let version_of_name name =
  match Filename.chop_suffix_opt ~suffix:".ddckpt" name with
  | None -> None
  | Some stem ->
    if String.length stem > 5 && String.sub stem 0 5 = "ckpt-" then
      match int_of_string_opt (String.sub stem 5 (String.length stem - 5)) with
      | Some n when n >= 0 && name = ckpt_name n -> Some n
      | _ -> None
    else None

let versions store =
  Array.fold_left
    (fun acc name -> match version_of_name name with Some n -> n :: acc | None -> acc)
    []
    (try Sys.readdir store.dir with Sys_error _ -> [||])
  |> List.sort (fun a b -> compare b a)

let quarantine_path path =
  if Sys.file_exists path then
    try Sys.rename path (path ^ ".quarantined") with Sys_error _ -> ()

let quarantine_version store seq =
  quarantine_path (ckpt_path store seq);
  quarantine_path (wal_path store seq)

let quarantined_files store =
  Array.fold_left
    (fun acc name ->
      if Filename.check_suffix name ".quarantined" then name :: acc else acc)
    []
    (try Sys.readdir store.dir with Sys_error _ -> [||])
  |> List.sort String.compare

(* --- checkpoint save ------------------------------------------------------- *)

let state_snapshot engine = Marshal.to_string (engine : Engine.t) []

let checkpoint_content engine ~seq =
  let buffer = Buffer.create 65536 in
  Buffer.add_string buffer "ddckpt 1\n";
  Buffer.add_string buffer (Printf.sprintf "seq %d\n" seq);
  Buffer.add_string buffer (Serialize.to_string (Engine.graph engine));
  let state = state_snapshot engine in
  Buffer.add_string buffer
    (Printf.sprintf "state %d %s\n" (String.length state)
       (Crc32.to_hex (Crc32.string state)));
  Buffer.add_string buffer state;
  Buffer.add_string buffer "\nend\n";
  Buffer.contents buffer

let publish_manifest store ~ckpt ~wal =
  let content =
    Printf.sprintf "ddmanifest 1\ncheckpoint %s\nwal %s\nend\n" ckpt wal
  in
  Fault_file.write_atomic ~fsync:store.fsync (manifest_path store) content

(* Retire everything outside the newest [store.keep] versions.  Quarantined
   files are never collected (they are the scrub/forensics record), stray
   .tmp files from crashed publishes are. *)
let gc_stale_files store =
  let kept = ref 0 in
  let keep_seqs =
    List.filter (fun _ -> incr kept; !kept <= store.keep) (versions store)
  in
  Array.iter
    (fun name ->
      let stale =
        match version_of_name name with
        | Some n -> not (List.mem n keep_seqs)
        | None ->
          if Filename.check_suffix name ".tmp" then true
          else if String.length name >= 4 && String.sub name 0 4 = "wal-" then
            match Filename.chop_suffix_opt ~suffix:".log" name with
            | Some stem -> (
              match int_of_string_opt (String.sub stem 4 (String.length stem - 4)) with
              | Some n -> not (List.mem n keep_seqs)
              | None -> false)
            | None -> false
          else false
      in
      if stale then
        try Sys.remove (Filename.concat store.dir name) with Sys_error _ -> ())
    (try Sys.readdir store.dir with Sys_error _ -> [||])

let save store engine =
  let seq = store.seq in
  (* 1. Fresh empty WAL for the updates that will follow this checkpoint.
     Not yet referenced by the manifest, so a crash here is invisible. *)
  Fault_file.write_atomic ~fsync:store.fsync (wal_path store seq)
    (Printf.sprintf "ddwal 1 %d\n" seq);
  (* 2. The checkpoint file itself: data fsync before the rename, directory
     fsync after, so a crash cannot leave a renamed-but-empty file. *)
  let tmp = ckpt_path store seq ^ ".tmp" in
  Fault_file.write_file ~fsync:store.fsync tmp (checkpoint_content engine ~seq);
  Fault.hit "checkpoint.save.pre_rename";
  Fault_file.rename_durable ~fsync:store.fsync tmp (ckpt_path store seq);
  (* 3. Only the manifest switch makes the new checkpoint authoritative. *)
  Fault.hit "checkpoint.save.pre_manifest";
  publish_manifest store ~ckpt:(ckpt_name seq) ~wal:(wal_name seq);
  (* 4. Retire the previous WAL channel and any versions past the
     retention window. *)
  (match store.wal with Some ch -> close_out_noerr ch | None -> ());
  store.wal <- Some (open_out_gen [ Open_wronly; Open_append ] 0o644 (wal_path store seq));
  store.wal_file <- Some (wal_path store seq);
  gc_stale_files store

(* --- write-ahead log ------------------------------------------------------- *)

let log_update store (update : Grounding.update) =
  match (store.wal, store.wal_file) with
  | None, _ | _, None -> invalid_arg "Checkpoint.log_update: no checkpoint published yet"
  | Some ch, Some path ->
    let payload = Marshal.to_string update [] in
    let seq = store.seq + 1 in
    Fault_file.append ~path ch
      (Printf.sprintf "entry %d %d %s\n" seq (String.length payload)
         (Crc32.to_hex (Crc32.string payload)));
    (* Crash between header and payload leaves a torn tail entry, which
       recovery discards. *)
    Fault.hit "checkpoint.log_update.mid_write";
    Fault_file.append ~path ch payload;
    Fault_file.append ~path ch "\n";
    Fault_file.flush_fsync ~fsync:store.fsync ~path ch;
    store.seq <- seq

let apply_update store engine update =
  log_update store update;
  Engine.apply_update engine update

(* --- structured reads ------------------------------------------------------- *)

exception Bad of error

let corrupt fmt = Printf.ksprintf (fun m -> raise (Bad (Corrupt m))) fmt

(* Cursor over a whole-file read.  Going through [Fault_file.read_file]
   (rather than an [in_channel]) means the short-read fault applies
   uniformly to every load path, and a torn file surfaces as [Eof] at the
   exact byte it was cut. *)
module Reader = struct
  type t = { data : string; mutable pos : int }

  exception Eof

  let of_path path =
    if not (Sys.file_exists path) then raise Eof;
    { data = Fault_file.read_file path; pos = 0 }

  let line r =
    let n = String.length r.data in
    if r.pos >= n then raise Eof
    else
      match String.index_from_opt r.data r.pos '\n' with
      | Some i ->
        let s = String.sub r.data r.pos (i - r.pos) in
        r.pos <- i + 1;
        s
      | None ->
        (* trailing bytes without a newline: the torn remainder *)
        let s = String.sub r.data r.pos (n - r.pos) in
        r.pos <- n;
        s

  let exact r len =
    if len < 0 || r.pos + len > String.length r.data then raise Eof
    else begin
      let s = String.sub r.data r.pos len in
      r.pos <- r.pos + len;
      s
    end
end

(* --- dead-letter persistence ------------------------------------------------ *)

(* Quarantined updates survive a restart in a DEADLETTERS file published
   atomically next to the checkpoints.  Each letter keeps the supervisor's
   metadata plus its replayable payload in the exact [Txn.encode_update]
   encoding (magic + CRC-32 + marshalled bytes), so a loaded letter decodes
   through the same CRC gate as a live one.  Lengths are recorded
   explicitly: a torn or tampered file fails structurally before any
   payload reaches [Marshal]. *)

let dead_letters_path store = Filename.concat store.dir "DEADLETTERS"

let quarantine_dead_letters store = quarantine_path (dead_letters_path store)

let error_tag : Txn.error -> string = function
  | `Malformed_delta _ -> "malformed"
  | `Transient _ -> "transient"
  | `Inference_timeout _ -> "timeout"
  | `Internal _ -> "internal"

let error_detail : Txn.error -> string = function
  | `Malformed_delta m | `Transient m | `Inference_timeout m | `Internal m -> m

let error_of_tag tag message : Txn.error option =
  match tag with
  | "malformed" -> Some (`Malformed_delta message)
  | "transient" -> Some (`Transient message)
  | "timeout" -> Some (`Inference_timeout message)
  | "internal" -> Some (`Internal message)
  | _ -> None

let save_dead_letters store letters =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "dddead 1\n";
  List.iter
    (fun (dl : Txn.dead_letter) ->
      let message = error_detail dl.Txn.error in
      Buffer.add_string buffer
        (Printf.sprintf "letter %d %d %s %d %d\n" dl.Txn.seq dl.Txn.attempts
           (error_tag dl.Txn.error) (String.length message)
           (String.length dl.Txn.payload));
      Buffer.add_string buffer message;
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer dl.Txn.payload;
      Buffer.add_char buffer '\n')
    letters;
  Buffer.add_string buffer "end\n";
  Fault_file.write_atomic ~fsync:store.fsync (dead_letters_path store)
    (Buffer.contents buffer)

let load_dead_letters store =
  let path = dead_letters_path store in
  if not (Sys.file_exists path) then Ok []
  else
    match
      let r = Reader.of_path path in
      let line () = try Reader.line r with Reader.Eof -> corrupt "truncated DEADLETTERS" in
      (match line () with
      | "dddead 1" -> ()
      | other -> corrupt "bad DEADLETTERS header: %s" other);
      let read_exact len what =
        let s =
          try Reader.exact r len
          with Reader.Eof -> corrupt "truncated DEADLETTERS %s" what
        in
        (match line () with
        | "" -> ()
        | _ -> corrupt "missing DEADLETTERS %s terminator" what);
        s
      in
      let rec loop acc =
        match line () with
        | "end" -> List.rev acc
        | header -> (
          match String.split_on_char ' ' header with
          | [ "letter"; seq; attempts; tag; msg_len; payload_len ] -> (
            match
              ( int_of_string_opt seq,
                int_of_string_opt attempts,
                int_of_string_opt msg_len,
                int_of_string_opt payload_len )
            with
            | Some seq, Some attempts, Some msg_len, Some payload_len
              when seq > 0 && attempts >= 0 && msg_len >= 0 && payload_len >= 0 -> (
              let message = read_exact msg_len "error message" in
              let payload = read_exact payload_len "payload" in
              match error_of_tag tag message with
              | None -> corrupt "unknown DEADLETTERS error tag %s" tag
              | Some error ->
                (* The payload carries its own CRC ([Txn.encode_update]);
                   gate on it now so a corrupt letter surfaces at load
                   time, not at replay time. *)
                (match Txn.decode_update payload with
                | Ok _ -> ()
                | Error m -> corrupt "letter %d payload: %s" seq m);
                loop ({ Txn.seq; error; attempts; payload } :: acc))
            | _ -> corrupt "bad DEADLETTERS letter header: %s" header)
          | _ -> corrupt "bad DEADLETTERS letter header: %s" header)
      in
      loop []
    with
    | letters -> Ok letters
    | exception Bad error -> Error error
    | exception Sys_error m -> Error (Corrupt m)

(* --- sidecar blobs ---------------------------------------------------------- *)

(* Small named state blobs published atomically next to the checkpoints —
   the subsystem-state analogue of DEADLETTERS (the ingestion feed stores
   its canonicalizer here).  Length + CRC are recorded explicitly so a torn
   or tampered file fails structurally at load time. *)

let blob_file name = "BLOB_" ^ name

let blob_path store name =
  String.iter
    (fun c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        || c = '-' || c = '_'
      in
      if not ok then invalid_arg ("Checkpoint blob name: " ^ name))
    name;
  if name = "" then invalid_arg "Checkpoint blob name: empty";
  Filename.concat store.dir (blob_file name)

let save_blob store ~name content =
  Fault_file.write_atomic ~fsync:store.fsync (blob_path store name)
    (Printf.sprintf "ddblob 1 %d %s\n%s\nend\n" (String.length content)
       (Crc32.to_hex (Crc32.string content))
       content)

let load_blob store ~name =
  let path = blob_path store name in
  if not (Sys.file_exists path) then Ok None
  else
    match
      let r = Reader.of_path path in
      let line () = try Reader.line r with Reader.Eof -> corrupt "truncated blob %s" name in
      let len, crc =
        match String.split_on_char ' ' (line ()) with
        | [ "ddblob"; "1"; len; hex ] -> (
          match (int_of_string_opt len, Crc32.of_hex hex) with
          | Some len, Some crc when len >= 0 -> (len, crc)
          | _ -> corrupt "bad blob %s header fields" name)
        | _ -> corrupt "bad blob %s header" name
      in
      let content =
        try Reader.exact r len with Reader.Eof -> corrupt "truncated blob %s content" name
      in
      (match line () with
      | "" -> ()
      | _ -> corrupt "missing blob %s terminator" name);
      (match line () with "end" -> () | _ -> corrupt "bad blob %s footer" name);
      if Crc32.string content <> crc then corrupt "blob %s checksum mismatch" name;
      content
    with
    | content -> Ok (Some content)
    | exception Bad error -> Error error
    | exception Sys_error m -> Error (Corrupt m)

let blob_names store =
  Array.fold_left
    (fun acc name ->
      if
        String.length name > 5
        && String.sub name 0 5 = "BLOB_"
        && not (Filename.check_suffix name ".quarantined")
      then String.sub name 5 (String.length name - 5) :: acc
      else acc)
    []
    (try Sys.readdir store.dir with Sys_error _ -> [||])
  |> List.sort String.compare

let quarantine_blob store ~name = quarantine_path (blob_path store name)

(* --- load + recovery ------------------------------------------------------- *)

let read_manifest store =
  let path = manifest_path store in
  if not (Sys.file_exists path) then raise (Bad No_checkpoint);
  let r = try Reader.of_path path with Reader.Eof -> corrupt "unreadable MANIFEST" in
  let line () = try Reader.line r with Reader.Eof -> corrupt "truncated MANIFEST" in
  (match line () with
  | "ddmanifest 1" -> ()
  | other -> corrupt "bad MANIFEST header: %s" other);
  let ckpt =
    match String.split_on_char ' ' (line ()) with
    | [ "checkpoint"; name ] -> name
    | _ -> corrupt "bad MANIFEST checkpoint line"
  in
  let wal =
    match String.split_on_char ' ' (line ()) with
    | [ "wal"; name ] -> name
    | _ -> corrupt "bad MANIFEST wal line"
  in
  (match line () with "end" -> () | _ -> corrupt "bad MANIFEST footer");
  (ckpt, wal)

let validate engine =
  let ( let* ) = Result.bind in
  let* () =
    Result.map_error (fun e -> "factor graph: " ^ e) (Graph.validate (Engine.graph engine))
  in
  Result.map_error
    (fun e -> "database: " ^ e)
    (Database.validate (Grounding.database (Engine.grounding engine)))

let load_checkpoint_file path =
  if not (Sys.file_exists path) then corrupt "missing checkpoint file %s" path;
  let r = try Reader.of_path path with Reader.Eof -> corrupt "unreadable checkpoint" in
  let line () = try Reader.line r with Reader.Eof -> corrupt "truncated checkpoint" in
  (match line () with
  | "ddckpt 1" -> ()
  | other -> corrupt "bad checkpoint header: %s" other);
  let seq =
    match String.split_on_char ' ' (line ()) with
    | [ "seq"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> n
      | Some _ | None -> corrupt "bad checkpoint seq")
    | _ -> corrupt "expected seq line"
  in
  (* The seq line sits outside both embedded checksums; cross-check it
     against the version the file name claims to be. *)
  (match version_of_name (Filename.basename path) with
  | Some n when n <> seq -> corrupt "checkpoint seq %d does not match file %s" seq path
  | _ -> ());
  (* The embedded ddgraph section runs through its own [end] line. *)
  let graph_buffer = Buffer.create 65536 in
  let rec slurp_graph () =
    let l = line () in
    Buffer.add_string graph_buffer l;
    Buffer.add_char graph_buffer '\n';
    if l <> "end" then slurp_graph ()
  in
  slurp_graph ();
  let graph_text = Buffer.contents graph_buffer in
  let graph =
    match Serialize.of_string graph_text with
    | g -> g
    | exception Serialize.Format_error m -> corrupt "embedded graph: %s" m
  in
  let state_len, state_crc =
    match String.split_on_char ' ' (line ()) with
    | [ "state"; len; crc ] -> (
      match (int_of_string_opt len, Crc32.of_hex crc) with
      | Some len, Some crc when len >= 0 -> (len, crc)
      | _ -> corrupt "bad state line")
    | _ -> corrupt "expected state line"
  in
  let state =
    try Reader.exact r state_len with Reader.Eof -> corrupt "truncated state section"
  in
  (* Checksum gate before unmarshalling: [Marshal.from_string] on
     corrupted bytes is undefined behaviour, so it must never see them. *)
  if Crc32.string state <> state_crc then corrupt "state checksum mismatch";
  (match line () with
  | "" -> ()
  | _ -> corrupt "missing state terminator");
  (match line () with "end" -> () | _ -> corrupt "missing checkpoint footer");
  (match Graph.validate graph with
  | Ok () -> ()
  | Error m -> raise (Bad (Invalid_state ("embedded graph: " ^ m))));
  let engine : Engine.t = Marshal.from_string state 0 in
  (* Cross-check the binary snapshot against the auditable graph
     section: both came from the same save, so re-serialization must
     be byte-identical. *)
  if Serialize.to_string (Engine.graph engine) <> graph_text then
    raise (Bad (Invalid_state "embedded graph does not match engine state"));
  (match validate engine with
  | Ok () -> ()
  | Error m -> raise (Bad (Invalid_state m)));
  (seq, engine)

let verify_version store seq =
  match load_checkpoint_file (ckpt_path store seq) with
  | _ -> Ok ()
  | exception Bad error -> Error error
  | exception Sys_error m -> Error (Corrupt m)

(* Entries after the checkpoint, in order.  Tolerant by design: a missing
   file, an unreadable header, a torn or out-of-sequence tail entry all
   end the log at that point — the entries "never made it to disk" and the
   driver redrives them. *)
let read_wal path ~ckpt_seq =
  match Reader.of_path path with
  | exception Reader.Eof -> []
  | exception Sys_error _ -> []
  | r -> (
    match Reader.line r with
    | exception Reader.Eof -> []
    | header -> (
      match String.split_on_char ' ' header with
      | [ "ddwal"; "1"; n ] when int_of_string_opt n = Some ckpt_seq ->
        let entries = ref [] in
        let expected = ref (ckpt_seq + 1) in
        (* [None] = end of log (EOF, torn tail, or any malformed
           structure). *)
        let next_entry () =
          match Reader.line r with
          | exception Reader.Eof -> None
          | header -> (
            match String.split_on_char ' ' header with
            | [ "entry"; seq; len; crc ] -> (
              match (int_of_string_opt seq, int_of_string_opt len, Crc32.of_hex crc) with
              | Some seq, Some len, Some crc when seq = !expected && len >= 0 -> (
                match Reader.exact r len with
                | exception Reader.Eof -> None (* torn tail *)
                | payload -> (
                  if Crc32.string payload <> crc then None (* torn/corrupt tail *)
                  else
                    match Reader.line r with
                    | "" -> Some (Marshal.from_string payload 0 : Grounding.update)
                    | _ -> None (* bad terminator: torn *)
                    | exception Reader.Eof -> None (* missing terminator: torn *)))
              | _ -> None (* malformed or out-of-sequence header: end of log *))
            | _ -> None)
        in
        let rec loop () =
          match next_entry () with
          | None -> ()
          | Some update ->
            entries := update :: !entries;
            incr expected;
            loop ()
        in
        loop ();
        List.rev !entries
      | _ -> [] (* unreadable header: nothing recoverable here *)))

let recover store =
  abandon store;
  match
    let manifest_exists = Sys.file_exists (manifest_path store) in
    let vs = versions store in
    if vs = [] then
      raise
        (Bad
           (if manifest_exists then
              Corrupt "manifest present but no checkpoint versions on disk"
            else No_checkpoint));
    (* Newest version that passes every checksum and validation wins;
       anything damaged on the way down is quarantined, not deleted. *)
    let rec attempt quarantined = function
      | [] ->
        corrupt "no loadable checkpoint version (%d quarantined)" quarantined
      | seqn :: rest -> (
        match load_checkpoint_file (ckpt_path store seqn) with
        | result -> result
        | exception (Bad _ | Sys_error _) ->
          quarantine_version store seqn;
          attempt (quarantined + 1) rest)
    in
    let ckpt_seq, engine = attempt 0 vs in
    (* Chain-replay WALs forward from the loaded version: wal-<m> carries
       the updates between checkpoint m and the next publish, whose own
       WAL continues the chain.  Replay through the ordinary update path:
       deterministic because the snapshot restored the engine's PRNG
       along with everything else. *)
    let applied = ref ckpt_seq in
    let progressing = ref true in
    while !progressing do
      let path = wal_path store !applied in
      if Sys.file_exists path then begin
        match read_wal path ~ckpt_seq:!applied with
        | [] -> progressing := false
        | updates ->
          List.iter (fun update -> ignore (Engine.apply_update engine update)) updates;
          applied := !applied + List.length updates
      end
      else progressing := false
    done;
    store.seq <- !applied;
    (* Re-publish so the replay work is durable and any torn WAL tail is
       retired. *)
    save store engine;
    (engine, !applied)
  with
  | result -> Ok result
  | exception Bad error -> Error error
  | exception Sys_error m -> Error (Corrupt m)

let latest store =
  match read_manifest store with
  | ckpt, _ -> Some ckpt
  | exception Bad _ -> None
  | exception Sys_error _ -> None
