(** Crash-safe checkpoint/recovery for the incremental KBC loop.

    The whole value of incremental materialization is that each iteration
    of the develop–evaluate loop is cheap; a crash mid-update must not
    force a full Rerun.  This module makes the engine restartable:

    - {!save} publishes a versioned checkpoint of the full engine state
      (factor graph in auditable ddgraph v2 text with a CRC-32 footer,
      plus a CRC-checked binary snapshot covering learned weights, the
      materialization, the database and the applied-rule list) atomically
      via temp-file + rename, and a [MANIFEST] names the latest valid
      checkpoint.
    - {!apply_update} appends the update's {!Dd_core.Grounding.update}
      payload to a write-ahead log ([flush]ed) {e before} mutating the
      engine.
    - {!recover} loads the manifest checkpoint, verifies every checksum,
      runs {!Dd_fgraph.Graph.validate} plus a relational schema check,
      replays the WAL through the ordinary update path (deterministic —
      the snapshot includes the PRNG state), and re-publishes.

    Crash sites in this module and in the engine are instrumented with
    {!Dd_util.Fault} points; see {!Recovery} for the crash–recover–compare
    harness built on top. *)

module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding

type error =
  | No_checkpoint  (** the store has no published manifest *)
  | Corrupt of string  (** bad magic, failed checksum, torn structure *)
  | Invalid_state of string
      (** checksums fine, semantic validation (graph/schema) failed *)

val error_to_string : error -> string

type t
(** A checkpoint store rooted at one directory. *)

val open_store : ?keep_versions:int -> ?fsync:bool -> string -> t
(** Create (or reattach to) a store directory.  Does not read anything:
    call {!recover} to load published state, or {!save} to publish.
    [keep_versions] (default 2, must be ≥ 1) is how many checkpoint/WAL
    version pairs {!save} retains — older versions are what {!recover}
    falls back to when the newest is damaged.  [fsync] (default [true])
    controls whether publishes fsync data and directories; turn it off
    only to measure what durability costs. *)

val save : t -> Engine.t -> unit
(** Publish a checkpoint of the engine's current state and rotate the
    WAL.  Ordering (fresh WAL, then fsynced checkpoint rename, then
    manifest switch — all via {!Dd_util.Fault_file}) guarantees that a
    crash at any instant leaves the previously published checkpoint
    authoritative. *)

val log_update : t -> Grounding.update -> unit
(** Append one update payload to the WAL, flush and fsync it.  Raises
    [Invalid_argument] if no checkpoint has been published yet. *)

val apply_update : t -> Engine.t -> Grounding.update -> Engine.report
(** [log_update] followed by {!Engine.apply_update}: the WAL entry is
    durable before any in-memory state changes. *)

val applied : t -> int
(** The store's current update sequence (updates absorbed by the state
    the WAL is relative to, plus entries logged since). *)

val set_applied : t -> int -> unit
(** Advance the store's update sequence without logging WAL entries — for
    drivers that make durability promises only at checkpoint granularity
    (e.g. the ingestion soak pipeline checkpoints per batch and redrives
    whole batches after a crash).  Raises [Invalid_argument] when moving
    backwards. *)

val recover : t -> (Engine.t * int, error) result
(** Load the newest checkpoint version that passes every checksum and
    validation — quarantining damaged versions on the way down
    ([.quarantined] suffix; never deleted) — then chain-replay the WALs
    forward from it and return the rebuilt engine together with the total
    number of updates it has absorbed.  Torn WAL tail entries are
    discarded.  On success a fresh checkpoint is published.
    [Error No_checkpoint] means the store holds no version at all;
    [Error (Corrupt _)] that versions exist but none was loadable. *)

val versions : t -> int list
(** Checkpoint version sequences present on disk, newest first
    (quarantined files excluded). *)

val verify_version : t -> int -> (unit, error) result
(** Fully re-verify one on-disk version (every checksum, graph/schema
    validation) without touching the store's state. *)

val quarantine_version : t -> int -> unit
(** Rename a version's checkpoint and WAL files to [*.quarantined] so
    they are preserved for forensics but never loaded or served. *)

val quarantined_files : t -> string list
(** Names of quarantined files in the store, sorted. *)

val save_dead_letters : t -> Dd_core.Txn.dead_letter list -> unit
(** Atomically publish the supervisor's quarantine queue (oldest first, as
    {!Dd_core.Txn.dead_letters} returns it) to a [DEADLETTERS] file in the
    store.  Each letter's payload is stored in the exact
    {!Dd_core.Txn.encode_update} encoding — CRC-guarded and replayable —
    so quarantined updates survive a restart.  Call with [[]] to clear. *)

val load_dead_letters : t -> (Dd_core.Txn.dead_letter list, error) result
(** Read back the persisted quarantine queue, oldest first ([Ok []] when
    none was ever saved).  Every structural field and every payload CRC is
    verified; feed the result to {!Dd_core.Txn.restore_dead_letters} after
    {!recover}, then replay with {!Dd_core.Txn.replay}. *)

val save_blob : t -> name:string -> string -> unit
(** Atomically publish a named sidecar state blob ([BLOB_<name>], CRC-32
    gated) next to the checkpoints — for subsystem state that must travel
    with the engine snapshot, e.g. the ingestion feed's canonicalizer
    ({!Dd_ingest.Feed.encode_state}).  [name] must be non-empty
    [[A-Za-z0-9_-]]; raises [Invalid_argument] otherwise. *)

val load_blob : t -> name:string -> (string option, error) result
(** Read back a sidecar blob: [Ok None] when never saved, [Ok (Some s)]
    byte-exact on success, [Error (Corrupt _)] on any structural or
    checksum violation. *)

val blob_names : t -> string list
(** Names of sidecar blobs present in the store, sorted (quarantined
    blobs excluded). *)

val quarantine_blob : t -> name:string -> unit
(** Set a damaged blob aside as [BLOB_<name>.quarantined]. *)

val quarantine_dead_letters : t -> unit
(** Set a damaged [DEADLETTERS] file aside as [DEADLETTERS.quarantined]. *)

val validate : Engine.t -> (unit, string) result
(** The load-time validation pass, exported for direct use:
    {!Dd_fgraph.Graph.validate} on the factor graph and
    {!Dd_relational.Database.validate} on the restored tuples. *)

val latest : t -> string option
(** Name of the manifest's current checkpoint file, if any. *)

val abandon : t -> unit
(** Close the store's WAL channel without any further writes (used by the
    fault harness to simulate a process death). *)
