module Ast = Dd_datalog.Ast
module Value = Dd_relational.Value
module Schema = Dd_relational.Schema
module Program = Dd_core.Program
module Grounding = Dd_core.Grounding
module Semantics = Dd_fgraph.Semantics

type rule_id = A1 | FE1 | FE2 | I1 | S1 | S2

let rule_id_to_string = function
  | A1 -> "A1"
  | FE1 -> "FE1"
  | FE2 -> "FE2"
  | I1 -> "I1"
  | S1 -> "S1"
  | S2 -> "S2"

let all_rule_ids = [ A1; FE1; FE2; I1; S1; S2 ]

let query_relation = "q"

let v name = Ast.Var name

let atom = Ast.atom

(* Shared body atoms. *)
let mention0 = atom "mention" [ v "s"; v "m1"; v "n1"; Ast.Const (Value.Int 0) ]
let mention1 = atom "mention" [ v "s"; v "m2"; v "n2"; Ast.Const (Value.Int 1) ]
let sentence = atom "sentence" [ v "d"; v "s"; v "p"; v "c" ]

(* R1: candidate generation through the phrase dictionary. *)
let candidate_rule =
  Ast.rule
    (atom "cand" [ v "r"; v "s"; v "m1"; v "m2" ])
    [ Ast.Pos mention0; Ast.Pos mention1; Ast.Pos sentence; Ast.Pos (atom "phrase_rel" [ v "p"; v "r" ]) ]

let cand_atom = atom "cand" [ v "r"; v "s"; v "m1"; v "m2" ]

let q_head = atom "q" [ v "r"; v "m1"; v "m2" ]

(* Weak prior that a candidate is not a fact. *)
let prior_rule =
  Program.Infer
    {
      Program.name = "prior";
      head = q_head;
      body = [ Ast.Pos cand_atom ];
      guards = [];
      weight = Program.Fixed (-0.5);
      semantics = Semantics.Logical;
      populate_head = true;
    }

let query_schema =
  Schema.make [ ("r", Value.TStr); ("m1", Value.TStr); ("m2", Value.TStr) ]

let base_program ?semantics:_ () =
  {
    Program.input_schemas = Corpus.input_schemas;
    query_relations = [ (query_relation, query_schema) ];
    rules = [ Program.Deterministic ("R1", candidate_rule); prior_rule ];
  }

let fe1 semantics =
  Program.Infer
    {
      Program.name = "FE1";
      head = q_head;
      body = [ Ast.Pos cand_atom; Ast.Pos sentence ];
      guards = [];
      weight = Program.Tied [ v "r"; v "p" ];
      semantics;
      populate_head = true;
    }

let fe2 semantics =
  Program.Infer
    {
      Program.name = "FE2";
      head = q_head;
      body = [ Ast.Pos cand_atom; Ast.Pos sentence ];
      guards = [];
      weight = Program.Tied [ v "r"; v "c" ];
      semantics;
      populate_head = true;
    }

(* I1: mention pairs of the same entity-name pair correlate across
   sentences. *)
let same_pair_rule =
  Ast.rule
    ~guards:[ Ast.Neq (v "s", v "s2") ]
    (atom "same_pair" [ v "m1"; v "m2"; v "m3"; v "m4" ])
    [
      Ast.Pos (atom "mention" [ v "s"; v "m1"; v "n1"; Ast.Const (Value.Int 0) ]);
      Ast.Pos (atom "mention" [ v "s"; v "m2"; v "n2"; Ast.Const (Value.Int 1) ]);
      Ast.Pos (atom "mention" [ v "s2"; v "m3"; v "n1"; Ast.Const (Value.Int 0) ]);
      Ast.Pos (atom "mention" [ v "s2"; v "m4"; v "n2"; Ast.Const (Value.Int 1) ]);
    ]

(* The counting semantics matters most here: a pair mentioned in many
   sentences accumulates one body grounding per alias, so g(n) decides how
   strongly repetition compounds (Example 2.5's voting effect). *)
let i1 semantics =
  [
    Program.Deterministic ("same_pair", same_pair_rule);
    Program.Infer
      {
        Program.name = "I1";
        head = q_head;
        body =
          [
            Ast.Pos (atom "q" [ v "r"; v "m3"; v "m4" ]);
            Ast.Pos (atom "same_pair" [ v "m1"; v "m2"; v "m3"; v "m4" ]);
          ];
        guards = [];
        weight = Program.Fixed 1.5;
        semantics;
        populate_head = false;
      };
  ]

let ev_head label =
  atom "q_ev" [ v "r"; v "m1"; v "m2"; Ast.Const (Value.Bool label) ]

let el1 = atom "el" [ v "n1"; v "e1" ]
let el2 = atom "el" [ v "n2"; v "e2" ]

let s1 =
  Program.Supervise
    ( "S1",
      Ast.rule (ev_head true)
        [
          Ast.Pos cand_atom;
          Ast.Pos mention0;
          Ast.Pos mention1;
          Ast.Pos el1;
          Ast.Pos el2;
          Ast.Pos (atom "known" [ v "r"; v "e1"; v "e2" ]);
        ] )

let s2 =
  Program.Supervise
    ( "S2",
      Ast.rule (ev_head false)
        [
          Ast.Pos cand_atom;
          Ast.Pos mention0;
          Ast.Pos mention1;
          Ast.Pos el1;
          Ast.Pos el2;
          Ast.Pos (atom "disjoint" [ v "r"; v "r2" ]);
          Ast.Pos (atom "known" [ v "r2"; v "e1"; v "e2" ]);
          Ast.Neg (atom "known" [ v "r"; v "e1"; v "e2" ]);
        ] )

let rules_of ?(semantics = Semantics.Ratio) = function
  | A1 -> []
  | FE1 -> [ fe1 semantics ]
  | FE2 -> [ fe2 semantics ]
  | I1 -> i1 semantics
  | S1 -> [ s1 ]
  | S2 -> [ s2 ]

let update_of ?semantics rule_id =
  Grounding.rules_update (rules_of ?semantics rule_id)

let full_program ?semantics () =
  Program.add_rules (base_program ()) (List.concat_map (rules_of ?semantics) all_rule_ids)

(* --- transactional driver -------------------------------------------------- *)

module Txn = Dd_core.Txn

type drive_step = {
  step_rule : rule_id;
  step_result : (Txn.outcome, Txn.error) result;
}

let drive ?semantics ?txn_options ?txn ?on_step engine rule_ids =
  let txn =
    match txn with Some t -> t | None -> Txn.create ?options:txn_options engine
  in
  let steps =
    List.map
      (fun rid ->
        let step = { step_rule = rid; step_result = Txn.apply txn (update_of ?semantics rid) } in
        (match on_step with Some f -> f step | None -> ());
        step)
      rule_ids
  in
  (txn, steps)
