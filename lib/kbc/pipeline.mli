(** The KBC program over a synthetic corpus — the six rule templates of
    Figure 8, expressed in our DeepDive program model:

    - R1 (candidate generation): every mention pair whose connective phrase
      the candidate dictionary maps to a relation;
    - prior: a weak fixed-weight bias that candidates are false (gives the
      base snapshot a non-empty graph);
    - A1 (error analysis): recompute marginals, no program change;
    - FE1 (shallow features): classifier tied on (relation, phrase);
    - FE2 (deeper features): classifier tied on (relation, context token);
    - I1 (inference rule): same entity-name pair in another sentence is
      correlated (fixed weight);
    - S1/S2 (supervision): distant supervision from the incomplete KB,
      positive via [known], negative via [disjoint] relations.

    [base_program] is the first development snapshot; [update_of] yields
    the update each subsequent snapshot applies, so the six-snapshot
    sequence of Section 4.2 is [List.map update_of snapshot_sequence]. *)

module Ast = Dd_datalog.Ast
module Program = Dd_core.Program
module Grounding = Dd_core.Grounding

type rule_id = A1 | FE1 | FE2 | I1 | S1 | S2

val rule_id_to_string : rule_id -> string

val all_rule_ids : rule_id list
(** [[A1; FE1; FE2; I1; S1; S2]] — the snapshot sequence. *)

val base_program : ?semantics:Dd_fgraph.Semantics.t -> unit -> Program.t
(** Candidates + prior; [semantics] (default Ratio) applies to the feature
    rules added later through {!rules_of}. *)

val rules_of : ?semantics:Dd_fgraph.Semantics.t -> rule_id -> Program.rule list
(** The program rules each snapshot adds (A1 adds none). *)

val update_of : ?semantics:Dd_fgraph.Semantics.t -> rule_id -> Grounding.update

val full_program : ?semantics:Dd_fgraph.Semantics.t -> unit -> Program.t
(** Base program plus all six rule templates. *)

val query_relation : string
(** The query relation name ([q]). *)

type drive_step = {
  step_rule : rule_id;
  step_result : (Dd_core.Txn.outcome, Dd_core.Txn.error) result;
}

val drive :
  ?semantics:Dd_fgraph.Semantics.t ->
  ?txn_options:Dd_core.Txn.options ->
  ?txn:Dd_core.Txn.t ->
  ?on_step:(drive_step -> unit) ->
  Dd_core.Engine.t ->
  rule_id list ->
  Dd_core.Txn.t * drive_step list
(** Drive a snapshot sequence through the transactional supervisor: each
    rule's update goes through {!Dd_core.Txn.apply}, so a poison snapshot
    is quarantined instead of wedging the loop.  Returns the supervisor
    (read the surviving engine and dead letters from it) and the per-step
    results in order.

    [?txn] lends an existing supervisor — e.g. one a serving layer has
    already subscribed to via {!Dd_core.Txn.on_event} — instead of
    creating one ([?txn_options] is then ignored; the engine argument is
    unused since the supervisor owns its engine).  [?on_step] runs after
    each step, on the driving domain — the hook a concurrent driver uses
    to pace the update cadence. *)
