(* Crash–recover–compare harness over the Fig-KBC pipeline.

   The property under test: for any registered fault point, a run that is
   killed mid-update and recovered from the checkpoint store reaches the
   same final marginals as an uninterrupted run with the same seed.  The
   argument is determinism end to end — the checkpoint snapshot includes
   the engine PRNG, so WAL replay and the remaining updates retrace the
   uninterrupted run bit for bit, and [Quality.compare_marginals] reports
   a high-confidence Jaccard of exactly 1.0 with zero max difference. *)

module Engine = Dd_core.Engine
module Database = Dd_relational.Database
module Tuple = Dd_relational.Tuple
module Fault = Dd_util.Fault
module Fault_file = Dd_util.Fault_file

let clear_dir dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      (Sys.readdir dir)

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let updates ?semantics () = List.map (Pipeline.update_of ?semantics) Pipeline.all_rule_ids

let fresh_engine ?(options = Engine.default_options) ?semantics corpus =
  let db = Database.create () in
  Corpus.load corpus db;
  Engine.create ~options db (Pipeline.base_program ?semantics ())

(* Apply updates [from .. end] through the store, checkpointing on the
   fixed cadence.  Saves never mutate the engine, so the cadence has no
   effect on the final marginals — only on how much WAL replay a crash
   costs. *)
let finish ?semantics ~checkpoint_every store engine ~from =
  List.iteri
    (fun i update ->
      if i >= from then begin
        ignore (Checkpoint.apply_update store engine update);
        if (i + 1) mod checkpoint_every = 0 then Checkpoint.save store engine
      end)
    (updates ?semantics ())

let run ?options ?semantics ?(checkpoint_every = 2) ~dir corpus =
  let store = Checkpoint.open_store dir in
  let engine = fresh_engine ?options ?semantics corpus in
  Checkpoint.save store engine;
  finish ?semantics ~checkpoint_every store engine ~from:0;
  engine

type baseline = {
  marginals : (string * Tuple.t * float) list;
  exercised : (string * int) list;
      (* every fault point the pipeline hit, with its hit count *)
}

let baseline ?options ?semantics ?(checkpoint_every = 2) ~dir corpus =
  ensure_dir dir;
  clear_dir dir;
  Fault.reset ();
  let engine = run ?options ?semantics ~checkpoint_every ~dir corpus in
  let marginals = Engine.marginals_by_relation engine in
  let exercised =
    List.filter_map
      (fun name ->
        let h = Fault.hits name in
        if h > 0 then Some (name, h) else None)
      (Fault.registered ())
  in
  { marginals; exercised }

type outcome = {
  point : string;
  trigger : int;  (* the armed Nth position *)
  crashed : bool;  (* false when the trigger lies beyond the run's hits *)
  latent : bool;
      (* the fault fired without killing the run (bit flip, dropped
         fsync); the harness then forced a power cut to surface it *)
  recovered_from : string option;
      (* checkpoint the store recovered from; None = crash predated the
         first publish and the run was redone from scratch *)
  replayed_to : int;  (* updates absorbed at the moment recovery finished *)
  agreement : Quality.agreement;
}

let crash_recover_compare ?options ?semantics ?(checkpoint_every = 2) ~dir ~point
    ~trigger ~reference corpus =
  ensure_dir dir;
  clear_dir dir;
  Fault.reset ();
  Fault_file.reset ();
  Fault_file.seed (0xc4a5 lxor trigger);
  Fault.arm point (Fault.Nth trigger);
  let survived =
    match run ?options ?semantics ~checkpoint_every ~dir corpus with
    | engine -> Some engine
    | exception e when Fault.is_injected e -> None
  in
  (* [disarm] clears the counters, so read them first. *)
  let fired = Fault.fired point > 0 in
  Fault.disarm point;
  let recover_and_finish ~power_cut =
    if power_cut then Fault_file.crash_lose_volatile ();
    let store = Checkpoint.open_store dir in
    match Checkpoint.recover store with
    | Ok (engine, applied) ->
      let name = Checkpoint.latest store in
      finish ?semantics ~checkpoint_every store engine ~from:applied;
      (engine, name, applied)
    | Error Checkpoint.No_checkpoint ->
      (* Killed before anything was published: nothing to lose, the only
         recovery is a clean deterministic rerun. *)
      clear_dir dir;
      (run ?options ?semantics ~checkpoint_every ~dir corpus, None, 0)
    | Error (Checkpoint.Corrupt _) when Checkpoint.quarantined_files store <> [] ->
      (* Every published version was damaged beyond loading; the damaged
         files are quarantined and the last rung is a deterministic
         scratch rebuild. *)
      clear_dir dir;
      (run ?options ?semantics ~checkpoint_every ~dir corpus, None, 0)
    | Error err -> failwith ("recovery failed: " ^ Checkpoint.error_to_string err)
  in
  let engine, recovered_from, replayed_to =
    match survived with
    | Some engine when not fired -> (engine, None, List.length Pipeline.all_rule_ids)
    | Some _ ->
      (* The fault fired silently — the run finished, but the bytes on
         disk may be lying.  Force a power cut and make recovery prove it
         can still reach the reference state. *)
      recover_and_finish ~power_cut:true
    | None -> recover_and_finish ~power_cut:false
  in
  Fault_file.reset ();
  let agreement = Quality.compare_marginals (Engine.marginals_by_relation engine) reference in
  {
    point;
    trigger;
    crashed = survived = None;
    latent = (survived <> None && fired);
    recovered_from;
    replayed_to;
    agreement;
  }

let sweep ?options ?semantics ?(checkpoint_every = 2) ~dir corpus =
  ensure_dir dir;
  let base =
    baseline ?options ?semantics ~checkpoint_every ~dir:(Filename.concat dir "baseline")
      corpus
  in
  let crash_dir = Filename.concat dir "crash" in
  let outcomes =
    List.map
      (fun (point, hits) ->
        (* Mid-run: late enough that checkpointed state exists for most
           points, early enough that real work remains after recovery. *)
        let trigger = (hits / 2) + 1 in
        crash_recover_compare ?options ?semantics ~checkpoint_every ~dir:crash_dir
          ~point ~trigger ~reference:base.marginals corpus)
      base.exercised
  in
  Fault.reset ();
  (base, outcomes)
