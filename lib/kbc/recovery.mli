(** Crash–recover–compare harness for the Fig-KBC pipeline.

    Runs the six-snapshot update sequence through a {!Checkpoint} store,
    kills it at an armed {!Dd_util.Fault} point, recovers from disk, and
    checks the recovered run's final marginals against an uninterrupted
    run with the same seed.  Determinism (the checkpoint snapshot carries
    the engine PRNG) makes the expected agreement exact: high-confidence
    Jaccard 1.0 and zero max difference. *)

module Engine = Dd_core.Engine
module Tuple = Dd_relational.Tuple

val run :
  ?options:Engine.options ->
  ?semantics:Dd_fgraph.Semantics.t ->
  ?checkpoint_every:int ->
  dir:string ->
  Corpus.t ->
  Engine.t
(** Materialize the base program, then apply all of
    {!Pipeline.all_rule_ids} through {!Checkpoint.apply_update},
    publishing a checkpoint every [checkpoint_every] (default 2)
    updates. *)

type baseline = {
  marginals : (string * Tuple.t * float) list;
  exercised : (string * int) list;
      (** every fault point the pipeline hit, with its hit count *)
}

val baseline :
  ?options:Engine.options ->
  ?semantics:Dd_fgraph.Semantics.t ->
  ?checkpoint_every:int ->
  dir:string ->
  Corpus.t ->
  baseline
(** Uninterrupted reference run ({!Dd_util.Fault.reset} first); doubles as
    fault-point discovery for {!sweep}. *)

type outcome = {
  point : string;
  trigger : int;  (** the armed Nth position *)
  crashed : bool;  (** false when the trigger lies beyond the run's hits *)
  latent : bool;
      (** the fault fired without killing the run (silent damage: bit
          flip, dropped fsync); the harness then forced a power cut
          ({!Dd_util.Fault_file.crash_lose_volatile}) and recovered *)
  recovered_from : string option;
      (** checkpoint the store recovered from; [None] means the crash
          predated the first publish and the run was redone from scratch *)
  replayed_to : int;  (** updates absorbed at the moment recovery finished *)
  agreement : Quality.agreement;
}

val crash_recover_compare :
  ?options:Engine.options ->
  ?semantics:Dd_fgraph.Semantics.t ->
  ?checkpoint_every:int ->
  dir:string ->
  point:string ->
  trigger:int ->
  reference:(string * Tuple.t * float) list ->
  Corpus.t ->
  outcome
(** Arm [point] to fail on its [trigger]-th hit, run, treat the escaping
    injection as a process death, recover, finish the update sequence,
    and compare final marginals against [reference].  Faults that fire
    without raising (bit flips, dropped fsyncs) get a forced power cut
    instead, and the outcome carries [latent = true].  When every
    published version proves unloadable, the damaged files are
    quarantined and the run is redone deterministically from scratch. *)

val sweep :
  ?options:Engine.options ->
  ?semantics:Dd_fgraph.Semantics.t ->
  ?checkpoint_every:int ->
  dir:string ->
  Corpus.t ->
  baseline * outcome list
(** Baseline run, then one crash–recover–compare per exercised fault
    point, each triggered mid-run (hit count / 2 + 1). *)
