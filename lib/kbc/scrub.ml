(* Background integrity scrub with a self-healing repair ladder.

   Checksums only help if something re-reads them: a bit that flips after
   a checkpoint is published (or a table that decays in memory) stays
   invisible until recovery trips over it months later.  [run] walks every
   durable artifact in a checkpoint store and every live columnar table,
   re-verifies all of it, and climbs a repair ladder per damaged artifact:

     checkpoint version   quarantine it; an older valid version remains
                          loadable (recovery chain-replays WALs forward);
                          re-publish from the live engine to restore the
                          retention window
     sidecar blob         rewrite from the live subsystem state when the
                          caller can provide it, else quarantine
     DEADLETTERS          quarantine (letters are forensic, not served)
     columnar table       [Column_store.repair] (derived planes recomputed
                          in place) → [Column_store.rebuild] from a
                          row-backend reference → report for regrounding
     serving snapshot     verify only; the server rebuilds snapshots from
                          the engine on the next commit, so a bad snapshot
                          is re-published, never repaired in place

   Everything the ladder cannot heal ends up either quarantined (never
   loaded, never served) or in [unrepaired] — the caller's signal to fall
   back to scratch regrounding.  A scrub never deletes anything. *)

module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Database = Dd_relational.Database
module Relation = Dd_relational.Relation
module Column_store = Dd_relational.Column_store

type report = {
  versions_ok : int;
  versions_quarantined : int;
  blobs_ok : int;
  blobs_rewritten : int;
  blobs_quarantined : int;
  dead_letters_quarantined : bool;
  tables_ok : int;
  tables_repaired : int;  (* healed in place by [Column_store.repair] *)
  tables_rebuilt : int;  (* reloaded from the row-backend reference *)
  unrepaired : string list;  (* table names needing scratch regrounding *)
  snapshot_ok : bool option;  (* [None] when no verifier was supplied *)
  republished : bool;  (* a fresh checkpoint was saved to restore redundancy *)
}

let clean =
  {
    versions_ok = 0;
    versions_quarantined = 0;
    blobs_ok = 0;
    blobs_rewritten = 0;
    blobs_quarantined = 0;
    dead_letters_quarantined = false;
    tables_ok = 0;
    tables_repaired = 0;
    tables_rebuilt = 0;
    unrepaired = [];
    snapshot_ok = None;
    republished = false;
  }

let damage_found r =
  r.versions_quarantined + r.blobs_rewritten + r.blobs_quarantined
  + r.tables_repaired + r.tables_rebuilt
  + List.length r.unrepaired
  + (if r.dead_letters_quarantined then 1 else 0)
  + (match r.snapshot_ok with Some false -> 1 | _ -> 0)

let healthy r = r.unrepaired = [] && r.snapshot_ok <> Some false

let run ?engine ?reference ?reblob ?verify_snapshot store =
  let r = ref clean in
  (* 1. Checkpoint versions: full re-verification (every CRC, graph and
     schema validation), newest first. *)
  List.iter
    (fun seq ->
      match Checkpoint.verify_version store seq with
      | Ok () -> r := { !r with versions_ok = !r.versions_ok + 1 }
      | Error _ ->
        Checkpoint.quarantine_version store seq;
        r := { !r with versions_quarantined = !r.versions_quarantined + 1 })
    (Checkpoint.versions store);
  (* 2. Sidecar blobs: rewrite from live state when the owning subsystem
     can re-encode itself, otherwise quarantine. *)
  List.iter
    (fun name ->
      match Checkpoint.load_blob store ~name with
      | Ok _ -> r := { !r with blobs_ok = !r.blobs_ok + 1 }
      | Error _ -> (
        match Option.bind reblob (fun f -> f name) with
        | Some content ->
          Checkpoint.quarantine_blob store ~name;
          Checkpoint.save_blob store ~name content;
          r := { !r with blobs_rewritten = !r.blobs_rewritten + 1 }
        | None ->
          Checkpoint.quarantine_blob store ~name;
          r := { !r with blobs_quarantined = !r.blobs_quarantined + 1 }))
    (Checkpoint.blob_names store);
  (* 3. The dead-letter queue. *)
  (match Checkpoint.load_dead_letters store with
  | Ok _ -> ()
  | Error _ ->
    Checkpoint.quarantine_dead_letters store;
    r := { !r with dead_letters_quarantined = true });
  (* 4. Live columnar tables: audit, then climb the ladder. *)
  (match engine with
  | None -> ()
  | Some engine ->
    let db = Grounding.database (Engine.grounding engine) in
    List.iter
      (fun name ->
        let rel = Database.find db name in
        match Relation.columnar rel with
        | None -> ()
        | Some cs -> (
          match Column_store.audit cs with
          | Ok () -> r := { !r with tables_ok = !r.tables_ok + 1 }
          | Error _ -> (
            match Column_store.repair cs with
            | Ok () -> r := { !r with tables_repaired = !r.tables_repaired + 1 }
            | Error _ -> (
              match Option.bind reference (fun f -> f name) with
              | Some mirror -> (
                Column_store.rebuild cs (fun add ->
                    Relation.iter (fun tup n -> add tup n) mirror);
                match Column_store.audit cs with
                | Ok () -> r := { !r with tables_rebuilt = !r.tables_rebuilt + 1 }
                | Error _ -> r := { !r with unrepaired = name :: !r.unrepaired })
              | None -> r := { !r with unrepaired = name :: !r.unrepaired }))))
      (Database.table_names db));
  (* 5. The published serving snapshot, through the caller's verifier
     (this library sits below the serving layer). *)
  (match verify_snapshot with
  | None -> ()
  | Some verify ->
    r := { !r with snapshot_ok = Some (Result.is_ok (verify ())) });
  (* 6. Restore checkpoint redundancy: quarantining versions shrank the
     retention window, so re-publish from the live engine. *)
  (match engine with
  | Some engine when !r.versions_quarantined > 0 && healthy !r ->
    Checkpoint.save store engine;
    r := { !r with republished = true }
  | _ -> ());
  { !r with unrepaired = List.rev !r.unrepaired }

(* --- cadence ------------------------------------------------------------- *)

type cadence = { every : int; mutable countdown : int }

let cadence every =
  if every < 1 then invalid_arg "Scrub.cadence: every < 1";
  { every; countdown = every }

let due c =
  c.countdown <- c.countdown - 1;
  if c.countdown <= 0 then begin
    c.countdown <- c.every;
    true
  end
  else false

let pp fmt r =
  Format.fprintf fmt
    "@[<v>scrub{versions %d ok / %d quarantined; blobs %d ok / %d rewritten / %d \
     quarantined; tables %d ok / %d repaired / %d rebuilt; unrepaired [%s]; \
     snapshot %s%s%s}@]"
    r.versions_ok r.versions_quarantined r.blobs_ok r.blobs_rewritten
    r.blobs_quarantined r.tables_ok r.tables_repaired r.tables_rebuilt
    (String.concat ", " r.unrepaired)
    (match r.snapshot_ok with None -> "unchecked" | Some true -> "ok" | Some false -> "BAD")
    (if r.dead_letters_quarantined then "; DEADLETTERS quarantined" else "")
    (if r.republished then "; republished" else "")
