(** Background integrity scrub with a self-healing repair ladder.

    A production KBC loop runs for months; checksums only help if
    something re-reads them before recovery needs them.  {!run} walks
    every durable artifact in a {!Checkpoint} store — checkpoint
    versions, sidecar blobs, the dead-letter queue — plus the live
    columnar tables and (through a caller-supplied verifier) the
    published serving snapshot, re-verifies everything, and climbs a
    repair ladder per damaged artifact:

    - a corrupt checkpoint version is quarantined ([.quarantined]
      suffix) and, when the live engine is available, a fresh checkpoint
      is re-published to restore the retention window;
    - a corrupt sidecar blob is rewritten from live subsystem state
      ([reblob]) when possible, else quarantined;
    - a corrupt columnar table is first healed in place
      ({!Dd_relational.Column_store.repair}, derived planes only), then
      rebuilt from a row-backend [reference] mirror, and otherwise
      reported in [unrepaired] — the caller's cue to reground from
      scratch.

    A scrub never deletes anything and never serves damaged state.
    Drive it on a {!cadence} from the update loop; surface the counters
    through [Server.health]. *)

module Engine = Dd_core.Engine

type report = {
  versions_ok : int;
  versions_quarantined : int;
  blobs_ok : int;
  blobs_rewritten : int;  (** re-encoded from live state via [reblob] *)
  blobs_quarantined : int;
  dead_letters_quarantined : bool;
  tables_ok : int;
  tables_repaired : int;  (** healed in place by [Column_store.repair] *)
  tables_rebuilt : int;  (** reloaded from the row-backend reference *)
  unrepaired : string list;  (** table names needing scratch regrounding *)
  snapshot_ok : bool option;  (** [None] when no verifier was supplied *)
  republished : bool;  (** a fresh checkpoint was saved to restore redundancy *)
}

val clean : report
(** The all-zero report (nothing scanned, nothing found). *)

val damage_found : report -> int
(** Number of damaged artifacts this scrub encountered (repaired or
    not). *)

val healthy : report -> bool
(** True when nothing is left in a damaged, unservable state: no
    unrepaired table and no failing snapshot.  Quarantined/rewritten
    artifacts count as healthy — the damage is contained. *)

val run :
  ?engine:Engine.t ->
  ?reference:(string -> Dd_relational.Relation.t option) ->
  ?reblob:(string -> string option) ->
  ?verify_snapshot:(unit -> (unit, string) result) ->
  Checkpoint.t ->
  report
(** One full scrub pass over [store].  [engine] enables the live-table
    scan and the redundancy re-publish; [reference] maps a table name to
    a row-backend mirror for rebuilds; [reblob] maps a blob name to
    freshly re-encoded subsystem state; [verify_snapshot] checks the
    currently served snapshot (e.g. [Server.read srv Snapshot.verify]). *)

(** {2 Cadence} *)

type cadence

val cadence : int -> cadence
(** [cadence n] is due every [n]-th {!due} call (n ≥ 1). *)

val due : cadence -> bool
(** Tick once (one update applied); [true] when a scrub is due. *)

val pp : Format.formatter -> report -> unit
