(* Crash-consistency soak harness: seeded random fault schedules over a
   full update→checkpoint loop, with golden-model comparison and
   automatic schedule shrinking.

   One schedule arms a handful of (point, Nth trigger) faults drawn from
   a seed, then drives a pipeline start to finish.  Every escaping
   [Fault.Injected] is treated as a machine death: volatile (un-fsynced)
   bytes are lost ([Fault_file.crash_lose_volatile]), all in-memory state
   is abandoned, and the pipeline recovers from disk, scrubs, and
   resumes from wherever the durable state proves it got to.  Silent
   faults (bit flips, dropped fsyncs) don't crash anything — so every
   schedule ends with a forced power cut + recover + scrub, which is
   where latent damage must surface and heal.

   The property checked per schedule: after the final recover+scrub, the
   pipeline's fingerprint — marginals plus whatever subsystem state the
   pipeline folds in (e.g. the ingestion canonicalizer) — is bit-identical
   to a golden fingerprint computed by a fault-free run of the same
   pipeline, and the scrub left nothing unrepaired.  A failing schedule
   is shrunk greedily (drop arms, halve triggers) to a minimal
   reproduction before being reported.

   The pipeline itself is a record of closures, so the same runner soaks
   the bare kbc loop (see [kbc_pipeline]) and the full
   ingest→Txn→checkpoint→serve loop (built in bench/test code, where the
   ingest and serve libraries are linkable). *)

module Engine = Dd_core.Engine
module Database = Dd_relational.Database
module Fault = Dd_util.Fault
module Fault_file = Dd_util.Fault_file
module Prng = Dd_util.Prng

type pipeline = {
  steps : int;  (* number of updates the op sequence applies *)
  reset : unit -> unit;
      (* clean slate: wipe the store directory, rebuild in-memory state,
         publish the initial checkpoint *)
  apply : int -> unit;  (* apply update [i] durably (0-based) *)
  save : unit -> unit;  (* publish a checkpoint of the current state *)
  recover : unit -> int;
      (* abandon in-memory state, rebuild from disk, return how many
         updates the durable state proves applied; must fall back to a
         deterministic from-scratch rebuild when nothing is loadable *)
  scrub : unit -> Scrub.report;  (* integrity pass over disk + live state *)
  fingerprint : unit -> string;
      (* bit-exact digest of everything the golden comparison covers *)
}

type arm = { point : string; trigger : int }

type schedule = { sid : int; arms : arm list }

type outcome = {
  schedule : schedule;
  crashes : int;  (* injected process/machine deaths, incl. during recovery *)
  recoveries : int;
  repairs : int;  (* artifacts healed or contained across all scrubs *)
  failure : string option;  (* [None] = converged bit-identically *)
}

type summary = {
  schedules : int;
  clean : int;  (* schedules where no armed fault fired *)
  crashed : int;  (* schedules with at least one injected death *)
  total_crashes : int;
  total_repairs : int;
  failures : outcome list;  (* shrunk to minimal reproductions *)
}

(* --- schedule generation -------------------------------------------------- *)

let generate ~points ~seed sid =
  let rng = Prng.create (seed + (0x9e3779b1 * sid)) in
  let pts = Array.of_list points in
  let n = 1 + Prng.int_below rng 3 in
  let arms =
    List.init n (fun _ ->
        {
          point = Prng.choice rng pts;
          (* Early, mid, late and (occasionally) beyond-the-run
             positions are all interesting, but the pipelines under soak
             only hit each point a handful of times per run — keep most
             triggers inside that window. *)
          trigger = 1 + Prng.int_below rng 16;
        })
  in
  { sid; arms }

(* --- one schedule ---------------------------------------------------------- *)

let run_schedule pipeline sched =
  Fault.reset ();
  Fault_file.reset ();
  Fault_file.seed (0x5eed + sched.sid);
  pipeline.reset ();
  List.iter (fun a -> Fault.arm a.point (Fault.Nth a.trigger)) sched.arms;
  let crashes = ref 0 and recoveries = ref 0 and repairs = ref 0 in
  let step = ref 0 in
  let scrub () =
    let r = pipeline.scrub () in
    repairs := !repairs + Scrub.damage_found r;
    r
  in
  (* A machine died.  Recovery itself runs under the armed schedule and
     may be killed again; each Nth arm fires at most once, so the retry
     loop is bounded, with a suppressed last resort for safety. *)
  let crash_recover () =
    incr crashes;
    let rec attempt k =
      Fault_file.crash_lose_volatile ();
      if k >= 5 then begin
        Fault.reset ();
        pipeline.recover ()
      end
      else
        match pipeline.recover () with
        | applied -> applied
        | exception e when Fault.is_injected e ->
          incr crashes;
          attempt (k + 1)
    in
    let applied = attempt 0 in
    incr recoveries;
    ignore (scrub ());
    applied
  in
  let failure = ref None in
  (try
     let rec drive () =
       if !step < pipeline.steps then begin
         (match pipeline.apply !step with
         | () -> incr step
         | exception e when Fault.is_injected e -> step := crash_recover ());
         drive ()
       end
       else
         match pipeline.save () with
         | () -> ()
         | exception e when Fault.is_injected e ->
           step := crash_recover ();
           drive ()
     in
     drive ();
     (* Forced final power cut: whatever silent damage the schedule
        planted — a flipped bit in a checkpoint, an fsync that never
        happened — must be found, healed or quarantined NOW, and must not
        change the state the pipeline converges to. *)
     Fault.reset ();
     Fault_file.crash_lose_volatile ();
     step := pipeline.recover ();
     incr recoveries;
     let final_report = scrub () in
     drive ();
     if not (Scrub.healthy final_report) then
       failure :=
         Some (Format.asprintf "final scrub left damage: %a" Scrub.pp final_report)
   with e ->
     failure :=
       Some
         (Printf.sprintf "schedule raised %s at step %d" (Printexc.to_string e) !step));
  (match !failure with
  | Some _ -> ()
  | None ->
    (* One more scrub after the post-recovery redrive: nothing may be
       left damaged, and the fingerprint must match the golden model. *)
    let r = scrub () in
    if not (Scrub.healthy r) then
      failure := Some (Format.asprintf "post-redrive scrub: %a" Scrub.pp r));
  Fault.reset ();
  {
    schedule = sched;
    crashes = !crashes;
    recoveries = !recoveries;
    repairs = !repairs;
    failure = !failure;
  }

let check_golden pipeline golden outcome =
  match outcome.failure with
  | Some _ -> outcome
  | None ->
    let fp = pipeline.fingerprint () in
    if String.equal fp golden then outcome
    else { outcome with failure = Some "fingerprint diverged from golden model" }

(* --- shrinking ------------------------------------------------------------- *)

(* Greedy minimization: try dropping each arm, then halving each trigger;
   accept any candidate that still fails, repeat to a fixpoint (bounded). *)
let shrink ~run sched =
  let fails s = match (run s).failure with Some _ -> true | None -> false in
  let candidates s =
    let drops =
      if List.length s.arms <= 1 then []
      else
        List.mapi
          (fun i _ -> { s with arms = List.filteri (fun j _ -> j <> i) s.arms })
          s.arms
    in
    let halves =
      List.concat
        (List.mapi
           (fun i a ->
             if a.trigger <= 1 then []
             else
               [
                 {
                   s with
                   arms =
                     List.mapi
                       (fun j b -> if j = i then { b with trigger = b.trigger / 2 } else b)
                       s.arms;
                 };
               ])
           s.arms)
    in
    drops @ halves
  in
  let budget = ref 32 in
  let rec go s =
    if !budget <= 0 then s
    else
      match
        List.find_opt
          (fun c ->
            decr budget;
            !budget >= 0 && fails c)
          (candidates s)
      with
      | Some smaller -> go smaller
      | None -> s
  in
  go sched

(* --- the soak loop ---------------------------------------------------------- *)

let soak ?(seed = 1) ?(points = Fault_file.all_points) ?on_schedule ~schedules
    pipeline =
  (* Golden model: the same pipeline, no faults armed. *)
  Fault.reset ();
  Fault_file.reset ();
  pipeline.reset ();
  let golden_drive () =
    for i = 0 to pipeline.steps - 1 do
      pipeline.apply i
    done;
    pipeline.save ()
  in
  golden_drive ();
  let golden = pipeline.fingerprint () in
  let clean = ref 0 and crashed = ref 0 in
  let total_crashes = ref 0 and total_repairs = ref 0 in
  let failures = ref [] in
  for sid = 1 to schedules do
    let sched = generate ~points ~seed sid in
    let outcome = check_golden pipeline golden (run_schedule pipeline sched) in
    if outcome.crashes = 0 then incr clean else incr crashed;
    total_crashes := !total_crashes + outcome.crashes;
    total_repairs := !total_repairs + outcome.repairs;
    (match outcome.failure with
    | None -> ()
    | Some _ ->
      let minimal =
        shrink ~run:(fun s -> check_golden pipeline golden (run_schedule pipeline s)) sched
      in
      let final = check_golden pipeline golden (run_schedule pipeline minimal) in
      failures := (if final.failure = None then outcome else final) :: !failures);
    match on_schedule with None -> () | Some f -> f outcome
  done;
  Fault.reset ();
  Fault_file.reset ();
  {
    schedules;
    clean = !clean;
    crashed = !crashed;
    total_crashes = !total_crashes;
    total_repairs = !total_repairs;
    failures = List.rev !failures;
  }

(* --- the bare kbc pipeline -------------------------------------------------- *)

(* The six-rule-update Fig-KBC loop through a checkpoint store, with a
   sidecar blob standing in for subsystem state (re-encoded on every save
   and after every recovery, the way the ingestion feed persists its
   canonicalizer).  Deterministic end to end: the corpus is static, the
   update list fixed, and the engine snapshot carries its PRNG. *)

let kbc_pipeline ?(options = Engine.default_options) ?semantics
    ?(checkpoint_every = 2) ?(keep_versions = 2) ~dir corpus =
  let updates = List.map (Pipeline.update_of ?semantics) Pipeline.all_rule_ids in
  let steps = List.length updates in
  let update i = List.nth updates i in
  let store = ref None in
  let engine = ref None in
  let the_store () = Option.get !store in
  let the_engine () = Option.get !engine in
  let blob_of seq = Printf.sprintf "soak-state %d" seq in
  let fresh_engine () =
    let db = Database.create () in
    Corpus.load corpus db;
    Engine.create ~options db (Pipeline.base_program ?semantics ())
  in
  let publish () =
    Checkpoint.save (the_store ()) (the_engine ());
    Checkpoint.save_blob (the_store ()) ~name:"soakstate"
      (blob_of (Checkpoint.applied (the_store ())))
  in
  let clear_dir () =
    if Sys.file_exists dir && Sys.is_directory dir then
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (Sys.readdir dir)
    else if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  in
  let scrub () =
    Scrub.run ~engine:(the_engine ())
      ~reblob:(fun _ -> Some (blob_of (Checkpoint.applied (the_store ()))))
      (the_store ())
  in
  {
    steps;
    reset =
      (fun () ->
        clear_dir ();
        store := Some (Checkpoint.open_store ~keep_versions dir);
        engine := Some (fresh_engine ());
        publish ());
    apply =
      (fun i ->
        ignore (Checkpoint.apply_update (the_store ()) (the_engine ()) (update i));
        if (i + 1) mod checkpoint_every = 0 then publish ());
    save = publish;
    recover =
      (fun () ->
        let st = Checkpoint.open_store ~keep_versions dir in
        match Checkpoint.recover st with
        | Ok (e, applied) ->
          store := Some st;
          engine := Some e;
          Checkpoint.save_blob st ~name:"soakstate" (blob_of applied);
          applied
        | Error _ ->
          (* Nothing loadable on disk (every version damaged): the last
             rung is a deterministic from-scratch rebuild.  Quarantined
             files stay behind as evidence. *)
          engine := Some (fresh_engine ());
          store := Some st;
          publish ();
          0);
    scrub;
    fingerprint =
      (fun () ->
        let marginals = Engine.marginals_by_relation (the_engine ()) in
        let blob =
          match Checkpoint.load_blob (the_store ()) ~name:"soakstate" with
          | Ok (Some s) -> s
          | Ok None -> "<none>"
          | Error e -> "<error: " ^ Checkpoint.error_to_string e ^ ">"
        in
        Marshal.to_string (marginals, blob) []);
  }
