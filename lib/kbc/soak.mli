(** Crash-consistency soak harness.

    Seeded random fault schedules — each a handful of [(point, Nth
    trigger)] arms drawn from the {!Dd_util.Fault} registry — are run
    against a full update→checkpoint pipeline.  Every escaping injection
    is treated as a machine death: volatile bytes are lost
    ({!Dd_util.Fault_file.crash_lose_volatile}), in-memory state is
    abandoned, and the pipeline recovers from disk, scrubs, and resumes.
    Every schedule additionally ends with a forced power cut + recover +
    scrub so that silent faults (bit flips, dropped fsyncs) are exercised
    even when they never crash anything.

    The checked property: after convergence the pipeline's fingerprint is
    bit-identical to a golden fingerprint from a fault-free run, and the
    final scrub leaves nothing unrepaired.  Failing schedules are shrunk
    greedily to minimal reproductions.

    The pipeline is a record of closures so the same runner drives both
    the bare kbc loop ({!kbc_pipeline}) and the full
    ingest→txn→checkpoint→serve loop (see [Dd_ingest.Soak_driver]). *)

module Engine = Dd_core.Engine

type pipeline = {
  steps : int;  (** number of updates the op sequence applies *)
  reset : unit -> unit;
      (** clean slate: wipe the store directory, rebuild in-memory state,
          publish the initial checkpoint *)
  apply : int -> unit;  (** apply update [i] durably (0-based) *)
  save : unit -> unit;  (** publish a checkpoint of the current state *)
  recover : unit -> int;
      (** abandon in-memory state, rebuild from disk, return how many
          updates the durable state proves applied; must fall back to a
          deterministic from-scratch rebuild when nothing is loadable *)
  scrub : unit -> Scrub.report;  (** integrity pass over disk + live state *)
  fingerprint : unit -> string;
      (** bit-exact digest of everything the golden comparison covers *)
}

type arm = { point : string; trigger : int }

type schedule = { sid : int; arms : arm list }

type outcome = {
  schedule : schedule;
  crashes : int;
      (** injected process/machine deaths, including during recovery *)
  recoveries : int;
  repairs : int;  (** artifacts healed or contained across all scrubs *)
  failure : string option;  (** [None] = converged bit-identically *)
}

type summary = {
  schedules : int;
  clean : int;  (** schedules where no armed fault fired *)
  crashed : int;  (** schedules with at least one injected death *)
  total_crashes : int;
  total_repairs : int;
  failures : outcome list;  (** shrunk to minimal reproductions *)
}

val generate : points:string list -> seed:int -> int -> schedule
(** The deterministic schedule for id [sid] under [seed]: 1–3 arms over
    [points] with triggers in [1, 16]. *)

val run_schedule : pipeline -> schedule -> outcome
(** Run one schedule to convergence (does not compare against a golden
    fingerprint — use {!soak} for the full property). *)

val shrink : run:(schedule -> outcome) -> schedule -> schedule
(** Greedy minimization of a failing schedule: repeatedly drop arms and
    halve triggers while the schedule still fails under [run]. *)

val soak :
  ?seed:int ->
  ?points:string list ->
  ?on_schedule:(outcome -> unit) ->
  schedules:int ->
  pipeline ->
  summary
(** Run [schedules] seeded schedules against [pipeline], comparing each
    converged state bit-for-bit against a golden fault-free run.
    [points] defaults to {!Dd_util.Fault_file.all_points};
    [on_schedule] observes each outcome (progress reporting).  Failures
    are shrunk before being returned.  Resets the fault registry on
    exit. *)

val kbc_pipeline :
  ?options:Engine.options ->
  ?semantics:Dd_fgraph.Semantics.t ->
  ?checkpoint_every:int ->
  ?keep_versions:int ->
  dir:string ->
  Corpus.t ->
  pipeline
(** The bare kbc loop as a soakable pipeline: the six {!Pipeline} rule
    updates applied through {!Checkpoint.apply_update} over a store at
    [dir], checkpointing every [checkpoint_every] (default 2) updates,
    with a [soakstate] sidecar blob standing in for subsystem state.
    When every on-disk version is damaged beyond loading, recovery falls
    back to a deterministic from-scratch rebuild (quarantined files are
    left behind as evidence). *)
