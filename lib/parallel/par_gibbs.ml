module Graph = Dd_fgraph.Graph
module Gibbs = Dd_inference.Gibbs
module Fast_gibbs = Dd_inference.Fast_gibbs
module Compiled = Dd_inference.Compiled
module Prng = Dd_util.Prng
module Budget = Dd_util.Budget

type gibbs_mode = Color_sync | Async

let gibbs_mode_to_string = function Color_sync -> "color-sync" | Async -> "async"

type parallel = {
  rngs : Prng.t array;  (** stream [d] is consumed only by domain [d] *)
  plan : Graph.var array array array;  (** color -> domain -> variables *)
  pool : Pool.t;
  owns_pool : bool;
  num_colors : int;
}

type async = {
  a_rngs : Prng.t array;  (** one independent stream per logical worker *)
  a_spans : Range.span array;  (** worker -> contiguous span of the packed query array *)
  a_pool : Pool.t;
  a_owns_pool : bool;
  a_slots : int;  (** hardware slots actually woken: min(workers, pool size) *)
  mutable a_counters_stale : bool;
}

type mode =
  | Sequential of Prng.t  (** [domains = 1]: byte-for-byte Fast_gibbs *)
  | Parallel of parallel
  | Async_mode of async

type t = { state : Compiled.state; mode : mode; domains : int }

let create ?init ?pool ?(mode = Color_sync) ?kernel ~domains rng g =
  if domains < 1 then invalid_arg "Par_gibbs.create: domains must be >= 1";
  let kernel =
    match kernel with
    | Some k ->
      if not (Compiled.matches_structure k g) then
        invalid_arg "Par_gibbs.create: compiled kernel does not match the graph";
      k
    | None -> Compiled.compile g
  in
  let state = Compiled.make_state ?init rng kernel in
  match mode with
  | Color_sync when domains = 1 -> { state; mode = Sequential rng; domains }
  | Color_sync ->
    let partition = Partition.color g in
    let plan = Partition.slices partition ~domains in
    (* Splitting after [Compiled.make_state] keeps the initial assignment
       identical to the sequential sampler's for the same seed. *)
    let rngs = Array.init domains (fun _ -> Prng.split rng) in
    let pool, owns_pool =
      match pool with
      | Some p ->
        if Pool.size p < domains then
          invalid_arg "Par_gibbs.create: pool smaller than requested domains";
        (p, false)
      | None -> (Pool.create domains, true)
    in
    {
      state;
      mode = Parallel { rngs; plan; pool; owns_pool; num_colors = partition.Partition.num_colors };
      domains;
    }
  | Async ->
    (* [domains] logical workers, each owning one contiguous cost-balanced
       span of the packed query array.  The pool is sized to the hardware
       (never oversubscribed): when fewer slots than workers are
       available, each slot runs a deterministic block of workers
       back-to-back — worker [w] still consumes only its own stream and
       range, so shrinking the slot count changes scheduling, not work
       assignment. *)
    let query = Compiled.query_vars kernel in
    let spans =
      Range.spans
        ~cost:(fun i -> Compiled.async_cost kernel query.(i))
        ~workers:domains (Array.length query)
    in
    (* A single worker keeps the caller's stream: its trajectory is then
       bit-identical to the sequential sampler's (the async conditional
       equals the counter-based one when unraced). *)
    let rngs =
      if domains = 1 then [| rng |] else Array.init domains (fun _ -> Prng.split rng)
    in
    let pool, owns_pool =
      match pool with
      | Some p -> (p, false)
      | None -> (Pool.create (min domains (Pool.recommended ())), true)
    in
    let slots = min domains (Pool.size pool) in
    {
      state;
      mode = Async_mode { a_rngs = rngs; a_spans = spans; a_pool = pool; a_owns_pool = owns_pool; a_slots = slots; a_counters_stale = false };
      domains;
    }

let assignment t = Compiled.snapshot t.state

let domains t = t.domains

let mode t =
  match t.mode with Sequential _ | Parallel _ -> Color_sync | Async_mode _ -> Async

let phases t = match t.mode with Sequential _ | Async_mode _ -> 1 | Parallel p -> p.num_colors

let run_phase_with sweep p phase =
  (* Count the slices that actually hold work: a class smaller than the
     domain count (or a singleton class, the degenerate voting case)
     needs no barrier — run its one busy slice inline with that slice's
     own stream, exactly as the assigned worker would have. *)
  let busy = ref 0 and last = ref (-1) in
  Array.iteri
    (fun d slice ->
      if Array.length slice > 0 then begin
        incr busy;
        last := d
      end)
    phase;
  if !busy = 1 then
    let d = !last in
    sweep p.rngs.(d) phase.(d)
  else if !busy > 1 then
    (* [limit] keeps the parked tail of an oversized shared pool asleep:
       only the [Array.length phase] indexes the plan addresses run. *)
    Pool.run ~limit:(Array.length phase) p.pool (fun d ->
        if d < Array.length phase then sweep p.rngs.(d) phase.(d))

let run_phase state p phase =
  run_phase_with (fun rng slice -> Compiled.sweep_slice rng state slice) p phase

(* One async epoch: every worker free-runs [sweeps] passes over its own
   span with no intermediate synchronization; the single [Pool.run] join
   at the end is the epoch barrier that publishes the bytes (and the
   per-worker [totals] shards) to the coordinator.  Logical workers are
   multiplexed onto the pool's hardware slots in deterministic blocks. *)
let run_async_epoch st a ~budget ~sweeps ~totals =
  a.a_counters_stale <- true;
  let workers = Array.length a.a_spans in
  let slots = a.a_slots in
  Pool.run ~limit:slots a.a_pool (fun s ->
      for w = s * workers / slots to ((s + 1) * workers / slots) - 1 do
        let rng = a.a_rngs.(w) and span = a.a_spans.(w) in
        if Range.length span > 0 then
          for _ = 1 to sweeps do
            Compiled.sweep_span_async_budgeted ~budget ~site:"par_gibbs.async_range" rng st
              ~lo:span.Range.lo ~hi:span.Range.hi;
            match totals with
            | Some tot ->
              (* Spans are disjoint: each worker owns its cells of [tot]. *)
              Compiled.accumulate_span_true st ~lo:span.Range.lo ~hi:span.Range.hi tot
            | None -> ()
          done
      done)

let sweep t =
  match t.mode with
  | Sequential rng -> Compiled.sweep rng t.state
  | Parallel p -> Array.iter (run_phase t.state p) p.plan
  | Async_mode a -> run_async_epoch t.state a ~budget:Budget.unlimited ~sweeps:1 ~totals:None

let sweep_epoch ?(budget = Budget.unlimited) ?totals t ~sweeps =
  if sweeps < 0 then invalid_arg "Par_gibbs.sweep_epoch: sweeps must be >= 0";
  match t.mode with
  | Async_mode a ->
    Budget.check budget "par_gibbs.epoch";
    run_async_epoch t.state a ~budget ~sweeps ~totals
  | Sequential rng ->
    for _ = 1 to sweeps do
      Budget.check budget "par_gibbs.sweep";
      Compiled.sweep rng t.state;
      match totals with
      | Some tot -> Compiled.accumulate_span_true t.state ~lo:0 ~hi:(Compiled.num_query (Compiled.kernel t.state)) tot
      | None -> ()
    done
  | Parallel _ ->
    invalid_arg "Par_gibbs.sweep_epoch: color-sync multi-domain sampler has no epoch loop"

let resync t =
  match t.mode with
  | Async_mode a when a.a_counters_stale ->
    Compiled.rebuild_counters t.state;
    a.a_counters_stale <- false
  | _ -> ()

(* The budget is polled both on the coordinator between color phases and
   inside every worker slice (chunked, see [Compiled.sweep_slice_budgeted])
   — one oversized color cannot stretch a deadline past its budget.  A
   worker-side [Exceeded] is re-raised by [Pool.run] after the barrier:
   the other workers complete their (disjoint) slices first, so the shared
   state is never torn when the exception escapes.  In async mode the
   poll sits inside every worker's chunked range sweep; an abort leaves
   only whole assignment bytes behind (the counters were already treated
   as stale), so the shared state stays untorn there too. *)
let sweep_budgeted budget t =
  match t.mode with
  | Sequential rng ->
    Budget.check budget "par_gibbs.sweep";
    Compiled.sweep rng t.state
  | Parallel p ->
    Array.iter
      (fun phase ->
        Budget.check budget "par_gibbs.color_phase";
        run_phase_with
          (fun rng slice ->
            Compiled.sweep_slice_budgeted ~budget ~site:"par_gibbs.slice" rng t.state slice)
          p phase)
      p.plan
  | Async_mode a ->
    Budget.check budget "par_gibbs.epoch";
    run_async_epoch t.state a ~budget ~sweeps:1 ~totals:None

let shutdown t =
  match t.mode with
  | Sequential _ -> ()
  | Parallel p -> if p.owns_pool then Pool.shutdown p.pool
  | Async_mode a -> if a.a_owns_pool then Pool.shutdown a.a_pool

let async_marginals_of_totals t totals ~sweeps =
  let st = t.state in
  let kernel = Compiled.kernel st in
  let n = Compiled.num_vars kernel in
  let denom = float_of_int (max 1 sweeps) in
  (* Evidence variables never move: their marginal is their clamped
     value, matching what per-sweep [accumulate_true] would have
     counted. *)
  let m = Array.init n (fun v -> if Compiled.value st v then 1.0 else 0.0) in
  Array.iter (fun v -> m.(v) <- float_of_int totals.(v) /. denom) (Compiled.query_vars kernel);
  m

let marginals ?(burn_in = 10) ?(budget = Budget.unlimited) ?kernel ?(mode = Color_sync)
    ?(epoch_sweeps = 8) ~domains rng g ~sweeps =
  if epoch_sweeps < 1 then invalid_arg "Par_gibbs.marginals: epoch_sweeps must be >= 1";
  let t = create ?kernel ~mode ~domains rng g in
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
      match t.mode with
      | Async_mode _ ->
        let run_epochs total totals =
          let remaining = ref total in
          while !remaining > 0 do
            let chunk = min epoch_sweeps !remaining in
            sweep_epoch ~budget ?totals t ~sweeps:chunk;
            remaining := !remaining - chunk
          done
        in
        let totals = Array.make (Graph.num_vars g) 0 in
        run_epochs burn_in None;
        run_epochs sweeps (Some totals);
        async_marginals_of_totals t totals ~sweeps
      | Sequential _ | Parallel _ ->
        for _ = 1 to burn_in do
          sweep_budgeted budget t
        done;
        let n = Graph.num_vars g in
        let totals = Array.make n 0 in
        for _ = 1 to sweeps do
          sweep_budgeted budget t;
          Compiled.accumulate_true t.state totals
        done;
        Array.map (fun c -> float_of_int c /. float_of_int (max 1 sweeps)) totals)

(* Deterministic near-equal split of [n] across [chains]. *)
let share n chains c = (n * (c + 1) / chains) - (n * c / chains)

let with_chain_pool domains f =
  let pool = Pool.create domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let sample_worlds ?(burn_in = 10) ?(spacing = 1) ~domains rng g ~n =
  if domains < 1 then invalid_arg "Par_gibbs.sample_worlds: domains must be >= 1";
  if domains = 1 then Gibbs.sample_worlds ~burn_in ~spacing rng g ~n
  else begin
    let rngs = Array.init domains (fun _ -> Prng.split rng) in
    let results = Array.make domains [||] in
    with_chain_pool domains (fun pool ->
        Pool.run pool (fun d ->
            if d < domains then begin
              let quota = share n domains d in
              if quota > 0 then
                results.(d) <- Fast_gibbs.sample_worlds ~burn_in ~spacing rngs.(d) g ~n:quota
            end));
    Array.concat (Array.to_list results)
  end

let chain_marginals ?(burn_in = 10) ~domains rng g ~sweeps =
  if domains < 1 then invalid_arg "Par_gibbs.chain_marginals: domains must be >= 1";
  if domains = 1 then Fast_gibbs.marginals ~burn_in rng g ~sweeps
  else begin
    let rngs = Array.init domains (fun _ -> Prng.split rng) in
    let per_chain = Array.make domains [||] in
    with_chain_pool domains (fun pool ->
        Pool.run pool (fun d ->
            if d < domains then per_chain.(d) <- Fast_gibbs.marginals ~burn_in rngs.(d) g ~sweeps));
    Array.init (Graph.num_vars g) (fun v ->
        Array.fold_left (fun acc m -> acc +. m.(v)) 0.0 per_chain /. float_of_int domains)
  end
