module Graph = Dd_fgraph.Graph
module Gibbs = Dd_inference.Gibbs
module Fast_gibbs = Dd_inference.Fast_gibbs
module Compiled = Dd_inference.Compiled
module Prng = Dd_util.Prng
module Budget = Dd_util.Budget

type parallel = {
  rngs : Prng.t array;  (** stream [d] is consumed only by domain [d] *)
  plan : Graph.var array array array;  (** color -> domain -> variables *)
  pool : Pool.t;
  owns_pool : bool;
  num_colors : int;
}

type mode =
  | Sequential of Prng.t  (** [domains = 1]: byte-for-byte Fast_gibbs *)
  | Parallel of parallel

type t = { state : Compiled.state; mode : mode; domains : int }

let create ?init ?pool ?kernel ~domains rng g =
  if domains < 1 then invalid_arg "Par_gibbs.create: domains must be >= 1";
  let kernel =
    match kernel with
    | Some k ->
      if not (Compiled.matches_structure k g) then
        invalid_arg "Par_gibbs.create: compiled kernel does not match the graph";
      k
    | None -> Compiled.compile g
  in
  let state = Compiled.make_state ?init rng kernel in
  if domains = 1 then { state; mode = Sequential rng; domains }
  else begin
    let partition = Partition.color g in
    let plan = Partition.slices partition ~domains in
    (* Splitting after [Compiled.make_state] keeps the initial assignment
       identical to the sequential sampler's for the same seed. *)
    let rngs = Array.init domains (fun _ -> Prng.split rng) in
    let pool, owns_pool =
      match pool with
      | Some p ->
        if Pool.size p < domains then
          invalid_arg "Par_gibbs.create: pool smaller than requested domains";
        (p, false)
      | None -> (Pool.create domains, true)
    in
    {
      state;
      mode = Parallel { rngs; plan; pool; owns_pool; num_colors = partition.Partition.num_colors };
      domains;
    }
  end

let assignment t = Compiled.snapshot t.state

let domains t = t.domains

let phases t = match t.mode with Sequential _ -> 1 | Parallel p -> p.num_colors

let run_phase_with sweep p phase =
  (* Count the slices that actually hold work: a class smaller than the
     domain count (or a singleton class, the degenerate voting case)
     needs no barrier — run its one busy slice inline with that slice's
     own stream, exactly as the assigned worker would have. *)
  let busy = ref 0 and last = ref (-1) in
  Array.iteri
    (fun d slice ->
      if Array.length slice > 0 then begin
        incr busy;
        last := d
      end)
    phase;
  if !busy = 1 then
    let d = !last in
    sweep p.rngs.(d) phase.(d)
  else if !busy > 1 then
    Pool.run p.pool (fun d -> if d < Array.length phase then sweep p.rngs.(d) phase.(d))

let run_phase state p phase =
  run_phase_with (fun rng slice -> Compiled.sweep_slice rng state slice) p phase

let sweep t =
  match t.mode with
  | Sequential rng -> Compiled.sweep rng t.state
  | Parallel p -> Array.iter (run_phase t.state p) p.plan

(* The budget is polled both on the coordinator between color phases and
   inside every worker slice (chunked, see [Compiled.sweep_slice_budgeted])
   — one oversized color cannot stretch a deadline past its budget.  A
   worker-side [Exceeded] is re-raised by [Pool.run] after the barrier:
   the other workers complete their (disjoint) slices first, so the shared
   state is never torn when the exception escapes. *)
let sweep_budgeted budget t =
  match t.mode with
  | Sequential rng ->
    Budget.check budget "par_gibbs.sweep";
    Compiled.sweep rng t.state
  | Parallel p ->
    Array.iter
      (fun phase ->
        Budget.check budget "par_gibbs.color_phase";
        run_phase_with
          (fun rng slice ->
            Compiled.sweep_slice_budgeted ~budget ~site:"par_gibbs.slice" rng t.state slice)
          p phase)
      p.plan

let shutdown t =
  match t.mode with
  | Sequential _ -> ()
  | Parallel p -> if p.owns_pool then Pool.shutdown p.pool

let marginals ?(burn_in = 10) ?(budget = Budget.unlimited) ?kernel ~domains rng g ~sweeps =
  let t = create ?kernel ~domains rng g in
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
      for _ = 1 to burn_in do
        sweep_budgeted budget t
      done;
      let n = Graph.num_vars g in
      let totals = Array.make n 0 in
      for _ = 1 to sweeps do
        sweep_budgeted budget t;
        Compiled.accumulate_true t.state totals
      done;
      Array.map (fun c -> float_of_int c /. float_of_int (max 1 sweeps)) totals)

(* Deterministic near-equal split of [n] across [chains]. *)
let share n chains c = (n * (c + 1) / chains) - (n * c / chains)

let with_chain_pool domains f =
  let pool = Pool.create domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let sample_worlds ?(burn_in = 10) ?(spacing = 1) ~domains rng g ~n =
  if domains < 1 then invalid_arg "Par_gibbs.sample_worlds: domains must be >= 1";
  if domains = 1 then Gibbs.sample_worlds ~burn_in ~spacing rng g ~n
  else begin
    let rngs = Array.init domains (fun _ -> Prng.split rng) in
    let results = Array.make domains [||] in
    with_chain_pool domains (fun pool ->
        Pool.run pool (fun d ->
            if d < domains then begin
              let quota = share n domains d in
              if quota > 0 then
                results.(d) <- Fast_gibbs.sample_worlds ~burn_in ~spacing rngs.(d) g ~n:quota
            end));
    Array.concat (Array.to_list results)
  end

let chain_marginals ?(burn_in = 10) ~domains rng g ~sweeps =
  if domains < 1 then invalid_arg "Par_gibbs.chain_marginals: domains must be >= 1";
  if domains = 1 then Fast_gibbs.marginals ~burn_in rng g ~sweeps
  else begin
    let rngs = Array.init domains (fun _ -> Prng.split rng) in
    let per_chain = Array.make domains [||] in
    with_chain_pool domains (fun pool ->
        Pool.run pool (fun d ->
            if d < domains then per_chain.(d) <- Fast_gibbs.marginals ~burn_in rngs.(d) g ~sweeps));
    Array.init (Graph.num_vars g) (fun v ->
        Array.fold_left (fun acc m -> acc +. m.(v)) 0.0 per_chain /. float_of_int domains)
  end
