(** Domain-parallel Gibbs sampling.

    Three parallelization modes, mirroring how DimmWitted spends cores:

    - {b Color-synchronous sweeps} (one chain, many domains,
      {!Color_sync}): a sweep visits the {!Partition} color classes in
      order; within a class the variables are split into per-domain
      slices and resampled concurrently on the shared
      {!Dd_inference.Compiled} kernel state.  Variables of one color
      share no factor, so concurrent updates touch disjoint cached
      counts and disjoint assignment cells; the pool barrier between
      classes publishes them.  Bit-exact reference: deterministic per
      [(seed, graph, domains)].
    - {b Asynchronous free-running sweeps} (one chain, many domains,
      {!Async}): every logical worker owns one contiguous cost-balanced
      {!Range} span of the packed query array and free-runs whole sweeps
      over it with {e no per-color barrier}; neighbor assignments are
      read racily from the shared byte vector (the DimmWitted benign
      race — see {!Dd_inference.Compiled.async_resample_var}) and workers
      synchronize only at epoch boundaries ({!sweep_epoch}) for budget
      polling and marginal accumulation.  Logical workers are
      multiplexed in deterministic blocks onto at most
      [min (domains, pool size)] hardware slots, so requesting more
      workers than cores shrinks each worker's resident range instead of
      oversubscribing the machine.  Deterministic only when a single
      hardware slot executes (1 worker, or a pool of size 1); otherwise
      the trajectory depends on scheduling — statistically equivalent,
      not bit-reproducible.
    - {b Parallel chains} (many chains, one domain each):
      {!sample_worlds} and {!chain_marginals} run [domains] independent
      chains and merge.

    With [domains = 1] and the default mode every entry point delegates
    to the sequential sampler it replaces and reproduces its output
    bit-for-bit from the same seed.  [Async] with one worker also
    reproduces the sequential chain bit-for-bit: it keeps the caller's
    PRNG stream, and the counter-free conditional is bit-identical to
    the counter-based one when unraced. *)

module Graph = Dd_fgraph.Graph

type gibbs_mode = Color_sync | Async

val gibbs_mode_to_string : gibbs_mode -> string

type t

val create :
  ?init:bool array ->
  ?pool:Pool.t ->
  ?mode:gibbs_mode ->
  ?kernel:Dd_inference.Compiled.t ->
  domains:int ->
  Dd_util.Prng.t ->
  Graph.t ->
  t
(** Build the sampler state: the compiled {!Dd_inference.Compiled}
    kernel counters plus, per mode, the graph partition ([Color_sync],
    [domains > 1]) or the contiguous range plan ([Async]).  Each domain
    / logical worker owns an independent {!Dd_util.Prng.split} stream.
    [?pool] lends an existing pool: [Color_sync] requires
    [size >= domains]; [Async] accepts any size and multiplexes its
    [domains] logical workers onto [min (domains, size)] slots (a pool
    of size 1 makes async execution deterministic).  Without [?pool],
    [Color_sync] spawns [domains] workers and [Async] spawns
    [min (domains, Pool.recommended ())].  [?kernel] lends an
    already-compiled kernel for the same graph; it must satisfy
    {!Dd_inference.Compiled.matches_structure}.  [?mode] defaults to
    [Color_sync].  Raises [Invalid_argument] when [domains < 1]. *)

val assignment : t -> bool array
(** Fresh snapshot of the current assignment.  Valid in every mode (the
    async sampler's bytes are always whole). *)

val domains : t -> int

val mode : t -> gibbs_mode

val phases : t -> int
(** Barrier phases per sweep: the partition's color count for the
    multi-domain color-sync sampler, or 1 when sequential or async.
    Large values relative to [num_vars / domains] signal a
    conflict-dense graph on which color-sync sweeps degrade — the case
    the async mode exists for; see DESIGN.md. *)

val sweep : t -> unit
(** One pass over the query variables.  [domains = 1] color-sync:
    exactly {!Dd_inference.Fast_gibbs.sweep}.  Multi-domain color-sync:
    one barrier per color class (phases whose work lands on a single
    domain run inline).  Async: one epoch of a single free-running
    sweep. *)

val sweep_epoch : ?budget:Dd_util.Budget.t -> ?totals:int array -> t -> sweeps:int -> unit
(** [sweep_epoch t ~sweeps] runs one {e epoch}: every async worker
    free-runs [sweeps] passes over its own range with no intermediate
    synchronization; the single pool join at the end is the epoch
    barrier.  [?totals] accumulates per-sweep true-counts for the packed
    query variables (each worker writes only its own span's cells).
    [budget] is polled on the coordinator once per epoch and inside
    every worker's chunked range sweep (site ["par_gibbs.async_range"]).
    Also works for the sequential sampler ([sweeps] plain sweeps);
    raises [Invalid_argument] on the multi-domain color-sync sampler,
    whose sweeps are inherently phase-synchronized. *)

val resync : t -> unit
(** Rebuild the kernel state's [unsat]/[sat] counters from the current
    assignment if async sweeps left them stale
    ({!Dd_inference.Compiled.rebuild_counters} — the shard merge "on
    demand").  No-op in other modes or when already fresh.  Call before
    handing {!t}'s state to any counter-based consumer. *)

val shutdown : t -> unit
(** Release the worker pool if this sampler owns one.  Idempotent; the
    sampler must not be swept afterwards. *)

val marginals :
  ?burn_in:int ->
  ?budget:Dd_util.Budget.t ->
  ?kernel:Dd_inference.Compiled.t ->
  ?mode:gibbs_mode ->
  ?epoch_sweeps:int ->
  domains:int ->
  Dd_util.Prng.t ->
  Graph.t ->
  sweeps:int ->
  float array
(** Single-chain marginals.  Default mode [Color_sync]: drop-in for
    {!Dd_inference.Fast_gibbs.marginals} (bit-identical at
    [domains = 1]), polling [budget] on the coordinator between color
    phases and inside every worker slice.  Mode [Async]: burn-in and
    sampling run as epochs of [epoch_sweeps] (default 8) free-running
    sweeps; workers accumulate marginal counts for their own ranges
    between epoch barriers, evidence variables report their clamped
    value, and the budget is polled per epoch plus inside every chunked
    range sweep.  A worker-side exhaustion surfaces after the
    join with every byte whole and the engine state rolled back by the
    caller's transaction — async counters are rebuilt lazily, never
    trusted after an abort. *)

val sample_worlds :
  ?burn_in:int -> ?spacing:int -> domains:int -> Dd_util.Prng.t -> Graph.t -> n:int -> bool array array
(** [n] worlds from [domains] independent chains (chain [d] contributes
    a deterministic near-equal share, each burned in separately).  With
    [domains = 1] this is {!Dd_inference.Gibbs.sample_worlds} —
    bit-identical to the sequential materialization loop it replaces. *)

val chain_marginals :
  ?burn_in:int -> domains:int -> Dd_util.Prng.t -> Graph.t -> sweeps:int -> float array
(** Merged marginal estimate from [domains] independent chains of
    [sweeps] sweeps each (equal-weight average — [domains * sweeps]
    post-burn-in samples in the time of [sweeps]). *)
