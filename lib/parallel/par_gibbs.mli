(** Domain-parallel Gibbs sampling.

    Two parallelization modes, mirroring the two ways DimmWitted spends
    cores:

    - {b Color-synchronous sweeps} (one chain, many domains): a sweep
      visits the {!Partition} color classes in order; within a class the
      variables are split into per-domain slices and resampled
      concurrently on the shared {!Dd_inference.Compiled} kernel state
      (flat CSR arrays — each slice walks contiguous occurrence spans).
      Variables of one color share no factor, so concurrent updates
      touch disjoint cached counts and disjoint assignment cells; the
      pool barrier between classes publishes them.
    - {b Parallel chains} (many chains, one domain each):
      {!sample_worlds} and {!chain_marginals} run [domains] independent
      chains and merge — the multi-core version of materialization's
      "draw as many worlds as possible" loop.

    Determinism contract: every domain owns an independent
    {!Dd_util.Prng.split} stream and a deterministic slice of the work,
    so results are a pure function of [(seed, graph, domains)] — re-runs
    are bit-identical for a fixed domain count, while different domain
    counts give different (equally valid) chains.  With [domains = 1]
    every entry point delegates to the sequential sampler it replaces
    ({!Dd_inference.Fast_gibbs}, or {!Dd_inference.Gibbs} for
    [sample_worlds]) and reproduces its output bit-for-bit from the same
    seed. *)

module Graph = Dd_fgraph.Graph

type t

val create :
  ?init:bool array ->
  ?pool:Pool.t ->
  ?kernel:Dd_inference.Compiled.t ->
  domains:int ->
  Dd_util.Prng.t ->
  Graph.t ->
  t
(** Build the sampler state: the compiled {!Dd_inference.Compiled}
    kernel counters, and — when [domains > 1] — the graph partition, one
    split PRNG stream per domain, and a worker pool ([?pool] lends an
    existing one, which must have [size >= domains]; otherwise a pool is
    spawned and owned).  [?kernel] lends an already-compiled kernel for
    the same graph (the engine's cache across weight-only incremental
    steps); it must satisfy {!Dd_inference.Compiled.matches_structure}.
    Raises [Invalid_argument] when [domains < 1]. *)

val assignment : t -> bool array
(** Fresh snapshot of the current assignment. *)

val domains : t -> int

val phases : t -> int
(** Barrier phases per sweep: the partition's color count, or 1 when
    sequential.  Large values relative to [num_vars / domains] signal a
    conflict-dense graph on which parallel sweeps degrade — see
    DESIGN.md. *)

val sweep : t -> unit
(** One pass over the query variables.  [domains = 1]: exactly
    {!Dd_inference.Fast_gibbs.sweep}.  Otherwise one barrier per color
    class, except that phases whose work lands on a single domain run
    inline on the caller. *)

val shutdown : t -> unit
(** Release the worker pool if this sampler owns one.  Idempotent; the
    sampler must not be swept afterwards. *)

val marginals :
  ?burn_in:int ->
  ?budget:Dd_util.Budget.t ->
  ?kernel:Dd_inference.Compiled.t ->
  domains:int ->
  Dd_util.Prng.t ->
  Graph.t ->
  sweeps:int ->
  float array
(** Single-chain marginals by color-synchronous sweeps.  Drop-in for
    {!Dd_inference.Fast_gibbs.marginals} (and bit-identical to it when
    [domains = 1]).  [?kernel] as in {!create}.  [budget] is polled on
    the coordinator between color phases (per sweep when sequential)
    {e and} inside every worker's color slice (chunked — site
    ["par_gibbs.slice"]), so one oversized color cannot stretch a
    deadline.  A worker-side exhaustion surfaces after the phase barrier
    with every other slice complete and the shared state consistent. *)

val sample_worlds :
  ?burn_in:int -> ?spacing:int -> domains:int -> Dd_util.Prng.t -> Graph.t -> n:int -> bool array array
(** [n] worlds from [domains] independent chains (chain [d] contributes
    a deterministic near-equal share, each burned in separately).  With
    [domains = 1] this is {!Dd_inference.Gibbs.sample_worlds} —
    bit-identical to the sequential materialization loop it replaces. *)

val chain_marginals :
  ?burn_in:int -> domains:int -> Dd_util.Prng.t -> Graph.t -> sweeps:int -> float array
(** Merged marginal estimate from [domains] independent chains of
    [sweeps] sweeps each (equal-weight average — [domains * sweeps]
    post-burn-in samples in the time of [sweeps]). *)
