module Graph = Dd_fgraph.Graph

type t = {
  colors : int array;
  num_colors : int;
  classes : Graph.var array array;
}

let is_query g v =
  match Graph.evidence_of g v with Graph.Query -> true | Graph.Evidence _ -> false

(* Per query variable, the set of query variables it shares a factor with.
   A factor with k variables contributes up to k*(k-1) entries; the
   hashtable dedups repeats across factors. *)
let neighbor_sets g =
  let neighbors = Array.init (Graph.num_vars g) (fun _ -> Hashtbl.create 4) in
  Graph.iter_factors
    (fun _ f ->
      let vars = List.filter (is_query g) (Graph.vars_of_factor f) in
      List.iter
        (fun v ->
          List.iter (fun u -> if u <> v then Hashtbl.replace neighbors.(v) u ()) vars)
        vars)
    g;
  neighbors

let conflict_degree g = Array.map Hashtbl.length (neighbor_sets g)

let color g =
  let n = Graph.num_vars g in
  let neighbors = neighbor_sets g in
  let order = Array.of_list (Graph.query_vars g) in
  (* Welsh–Powell: decreasing conflict degree, variable id as tiebreak so
     the partition is a pure function of the graph. *)
  Array.sort
    (fun a b ->
      let da = Hashtbl.length neighbors.(a) and db = Hashtbl.length neighbors.(b) in
      if da <> db then compare db da else compare a b)
    order;
  let colors = Array.make n (-1) in
  let num_colors = ref 0 in
  (* Scratch marks are set and unset per variable by walking its neighbor
     set twice, keeping the loop O(sum of conflict degrees). *)
  let used = Array.make (Array.length order + 1) false in
  Array.iter
    (fun v ->
      let mark value u () =
        let c = colors.(u) in
        if c >= 0 then used.(c) <- value
      in
      Hashtbl.iter (mark true) neighbors.(v);
      let c = ref 0 in
      while used.(!c) do
        incr c
      done;
      colors.(v) <- !c;
      if !c >= !num_colors then num_colors := !c + 1;
      Hashtbl.iter (mark false) neighbors.(v))
    order;
  let buckets = Array.make !num_colors [] in
  for v = n - 1 downto 0 do
    let c = colors.(v) in
    if c >= 0 then buckets.(c) <- v :: buckets.(c)
  done;
  { colors; num_colors = !num_colors; classes = Array.map Array.of_list buckets }

let validate g p =
  let error fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let n = Graph.num_vars g in
  if Array.length p.colors <> n then
    error "colors array has %d entries for %d variables" (Array.length p.colors) n
  else begin
    (* Class membership audit: where does each variable sit? *)
    let membership = Array.make n (-1) in
    let structural = ref (Ok ()) in
    Array.iteri
      (fun c cls ->
        Array.iteri
          (fun i v ->
            if !structural = Ok () then begin
              if v < 0 || v >= n then structural := error "class %d lists unknown variable %d" c v
              else if membership.(v) >= 0 then
                structural := error "variable %d appears in classes %d and %d" v membership.(v) c
              else begin
                membership.(v) <- c;
                if i > 0 && cls.(i - 1) >= v then
                  structural := error "class %d is not strictly ascending at %d" c v
              end
            end)
          cls)
      p.classes;
    let check_var v acc =
      if acc <> Ok () then acc
      else
        let c = p.colors.(v) in
        if is_query g v then
          if c < 0 || c >= p.num_colors then
            error "query variable %d has out-of-range color %d" v c
          else if membership.(v) <> c then
            error "query variable %d colored %d but listed in class %d" v c membership.(v)
          else acc
        else if c <> -1 then error "evidence variable %d carries color %d" v c
        else if membership.(v) <> -1 then
          error "evidence variable %d listed in class %d" v membership.(v)
        else acc
    in
    let vars_ok = ref (!structural) in
    for v = 0 to n - 1 do
      vars_ok := check_var v !vars_ok
    done;
    (* No factor may mention two distinct query variables of one color. *)
    let conflict = ref !vars_ok in
    Graph.iter_factors
      (fun fid f ->
        if !conflict = Ok () then begin
          let seen = Hashtbl.create 8 in
          List.iter
            (fun v ->
              let c = p.colors.(v) in
              if c >= 0 then
                match Hashtbl.find_opt seen c with
                | Some u when u <> v ->
                  conflict := error "factor %d mentions variables %d and %d, both color %d" fid u v c
                | _ -> Hashtbl.replace seen c v)
            (Graph.vars_of_factor f)
        end)
      g;
    !conflict
  end

let slices p ~domains =
  if domains < 1 then invalid_arg "Partition.slices: domains must be >= 1";
  Array.map
    (fun cls ->
      let len = Array.length cls in
      Array.init domains (fun d ->
          let lo = d * len / domains and hi = (d + 1) * len / domains in
          Array.sub cls lo (hi - lo)))
    p.classes
