(** Conflict-free partitioning of a factor graph for parallel Gibbs.

    Two query variables {e conflict} when some factor mentions both (as
    head or in a body).  Resampling conflicting variables concurrently is
    unsound twice over: each one's conditional reads the other's current
    value, and {!Dd_inference.Fast_gibbs} updates per-factor cached
    counts, so concurrent writers to a shared factor would race.
    Variables that never share a factor have disjoint factor sets and
    conditionally independent updates, so they can be resampled by
    different domains with no synchronization at all.

    A {e coloring} assigns every query variable a color such that
    conflicting variables differ; a parallel sweep then iterates the
    color classes with a barrier between them (chromatic, or
    color-synchronous, Gibbs — the same partitioned-evaluation idea
    DimmWitted applies across cores, and Urbani et al. apply to Datalog
    materialization).  We color greedily over variables in decreasing
    conflict-degree order (Welsh–Powell), which is deterministic and
    uses at most [max_conflict_degree + 1] colors.

    Degenerate case: a dense aggregation factor (the voting program's
    single factor touching every vote) makes its members pairwise
    conflicting, forcing singleton classes — the sweep then degrades to
    sequential execution.  {!Par_gibbs} detects single-worker phases and
    runs them inline, so the degradation costs no barrier traffic. *)

module Graph = Dd_fgraph.Graph

type t = {
  colors : int array;
      (** one entry per variable; [-1] for evidence variables, which are
          never resampled and take no part in the partition *)
  num_colors : int;
  classes : Graph.var array array;
      (** [classes.(c)] is the variables of color [c], ascending *)
}

val color : Graph.t -> t
(** Greedy chromatic coloring of the query variables.  Deterministic:
    the same graph always yields the same partition. *)

val conflict_degree : Graph.t -> int array
(** Per variable, the number of distinct query variables it shares at
    least one factor with (0 for evidence variables). *)

val validate : Graph.t -> t -> (unit, string) result
(** Full audit of a partition against its graph: every query variable
    holds a color in [[0, num_colors)] and appears in exactly its class,
    evidence variables hold [-1] and appear in no class, classes are
    sorted and duplicate-free, and no factor mentions two distinct
    query variables of the same color. *)

val slices : t -> domains:int -> Graph.var array array array
(** [slices p ~domains] deterministically splits every color class into
    [domains] contiguous near-equal slices; element [(c).(d)] is the
    work of domain [d] during phase [c].  Slices may be empty when a
    class is smaller than the domain count. *)
