type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (int -> unit) option;
  mutable failed : exn option;
  mutable busy : bool;  (** a job is pending or running *)
  mutable stop : bool;
}

type t = {
  size : int;
  workers : worker array;  (** length [size - 1]; entry [i] is index [i + 1] *)
  mutable handles : unit Domain.t array;
  mutable alive : bool;
}

let recommended () = Domain.recommended_domain_count ()

(* Each worker parks on its own condition variable until [run] hands it a
   job or [shutdown] raises [stop].  The worker publishes completion by
   clearing [busy] under the same mutex, so a [run] joining on [busy]
   observes every write the job made (the lock ordering gives the
   happens-before edge the OCaml memory model needs). *)
let worker_loop w index =
  let rec loop () =
    Mutex.lock w.mutex;
    while w.job = None && not w.stop do
      Condition.wait w.cond w.mutex
    done;
    match w.job with
    | None ->
      (* stop, and no pending job: exit. *)
      Mutex.unlock w.mutex
    | Some f ->
      w.job <- None;
      Mutex.unlock w.mutex;
      let failure = try f index; None with e -> Some e in
      Mutex.lock w.mutex;
      w.failed <- failure;
      w.busy <- false;
      Condition.broadcast w.cond;
      Mutex.unlock w.mutex;
      loop ()
  in
  loop ()

let create n =
  let size = max 1 n in
  let workers =
    Array.init (size - 1) (fun _ ->
        {
          mutex = Mutex.create ();
          cond = Condition.create ();
          job = None;
          failed = None;
          busy = false;
          stop = false;
        })
  in
  let handles = Array.mapi (fun i w -> Domain.spawn (fun () -> worker_loop w (i + 1))) workers in
  { size; workers; handles; alive = true }

let size t = t.size

let run ?limit t f =
  if not t.alive then invalid_arg "Pool.run: pool has been shut down";
  let limit =
    match limit with
    | None -> t.size
    | Some l ->
      if l < 1 || l > t.size then invalid_arg "Pool.run: limit out of [1, size]";
      l
  in
  (* Workers [limit - 1 ..] stay parked: a job that only occupies [k]
     indexes of an oversized shared pool pays wakeup/join cost for [k]
     workers, not [size]. *)
  for i = 0 to limit - 2 do
    let w = t.workers.(i) in
    Mutex.lock w.mutex;
    w.busy <- true;
    w.job <- Some f;
    Condition.broadcast w.cond;
    Mutex.unlock w.mutex
  done;
  let own_failure = try f 0; None with e -> Some e in
  let first_failure = ref own_failure in
  for i = 0 to limit - 2 do
    let w = t.workers.(i) in
    Mutex.lock w.mutex;
    while w.busy do
      Condition.wait w.cond w.mutex
    done;
    (match w.failed with
    | Some e ->
      if Option.is_none !first_failure then first_failure := Some e;
      w.failed <- None
    | None -> ());
    Mutex.unlock w.mutex
  done;
  match !first_failure with Some e -> raise e | None -> ()

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Array.iter
      (fun w ->
        Mutex.lock w.mutex;
        w.stop <- true;
        Condition.broadcast w.cond;
        Mutex.unlock w.mutex)
      t.workers;
    Array.iter Domain.join t.handles;
    t.handles <- [||]
  end
