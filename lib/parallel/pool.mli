(** A reusable pool of worker domains.

    Spawning a domain costs far more than a mutex round-trip, so the
    color-synchronous sweeps of {!Par_gibbs} — thousands of barriers per
    inference — need domains that are spawned once and fed many batches.
    [create] spawns [size - 1] workers (the calling domain is worker 0,
    so a pool of size [n] computes with [n] domains while only [n - 1]
    are parked between batches); [run] is a synchronous fork–join batch;
    [shutdown] joins the workers.

    Work assignment is deterministic: [run t f] executes [f d] for every
    [d] in [[0, size)], always binding index [d] to the same worker, so
    a caller that keys per-worker PRNG streams by index gets reproducible
    results for a fixed pool size (scheduling may interleave the work
    differently between runs, but no observable state depends on the
    interleaving as long as the [f d] touch disjoint data). *)

type t

val create : int -> t
(** [create n] spawns a pool of size [max 1 n]. *)

val size : t -> int

val run : ?limit:int -> t -> (int -> unit) -> unit
(** [run t f] executes [f 0 .. f (size - 1)] concurrently ([f 0] on the
    calling domain) and returns when all are finished.  If any [f d]
    raised, the first such exception (lowest worker index, caller first)
    is re-raised after the join — the batch still completes on every
    other worker.  Raises [Invalid_argument] after {!shutdown}.

    [?limit] restricts the batch to [f 0 .. f (limit - 1)]: workers
    [limit ..] stay parked and pay no wakeup/join cost, so a job that
    only occupies [k < size] indexes of an oversized shared pool should
    pass [~limit:k].  Defaults to [size]; raises [Invalid_argument]
    outside [[1, size]]. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware's useful domain
    count, the natural default pool size. *)
