type span = { lo : int; hi : int }

let length s = s.hi - s.lo

let total_length spans = Array.fold_left (fun acc s -> acc + length s) 0 spans

let spans ?cost ~workers n =
  if workers < 1 then invalid_arg "Range.spans: workers must be >= 1";
  if n < 0 then invalid_arg "Range.spans: n must be >= 0";
  let cost =
    match cost with None -> fun _ -> 1 | Some f -> fun i -> max 0 (f i)
  in
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + cost i
  done;
  let total = !total in
  let out = Array.make workers { lo = 0; hi = 0 } in
  let i = ref 0 and acc = ref 0 in
  for w = 0 to workers - 1 do
    let lo = !i in
    (* Close the span once the cost prefix reaches the next equal-share
       boundary; the last worker absorbs whatever is left (including any
       run of zero-cost items). *)
    let target = (w + 1) * total / workers in
    while !i < n && (w = workers - 1 || !acc < target) do
      acc := !acc + cost !i;
      incr i
    done;
    out.(w) <- { lo; hi = !i }
  done;
  out
