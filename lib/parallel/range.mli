(** Cost-balanced contiguous range scheduling for the async sampler.

    The color-synchronous sampler slices each color class across domains
    ({!Partition.slices}); the asynchronous sampler instead gives every
    logical worker one {e contiguous} span of the compiled kernel's packed
    query array, so a worker's sweep walks adjacent CSR rows — the layout
    that makes an epoch of repeated range sweeps cache-resident.  Because
    variable degrees are skewed (a few hub variables touch many factors),
    equal-{e count} spans would load-imbalance a free-running epoch; spans
    are therefore balanced by a caller-supplied per-item cost (for Gibbs,
    the literal-scan work of one conditional).

    Deterministic: [spans] is a pure function of [(n, workers, cost)]. *)

type span = { lo : int; hi : int }
(** Half-open index interval [\[lo, hi)].  May be empty ([lo = hi]). *)

val spans : ?cost:(int -> int) -> workers:int -> int -> span array
(** [spans ~cost ~workers n] partitions [\[0, n)] into exactly [workers]
    contiguous, disjoint, ascending spans whose summed costs are
    near-equal (each span closes once its prefix reaches the next
    [total / workers] boundary; the last span absorbs the remainder).
    [cost] defaults to uniform ([fun _ -> 1]); negative costs are
    clamped to 0.  Raises [Invalid_argument] when [workers < 1] or
    [n < 0]. *)

val length : span -> int

val total_length : span array -> int
(** Sum of span lengths — [n] when the spans partition [\[0, n)]. *)
