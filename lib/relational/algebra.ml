let select pred r = Relation.filter pred r

let select_eq r col v =
  let idx = Schema.column_index (Relation.schema r) col in
  select (fun tup -> Value.equal tup.(idx) v) r

let project r cols =
  let schema = Relation.schema r in
  let idxs = Array.of_list (List.map (Schema.column_index schema) cols) in
  let out = Relation.create ~name:(Relation.name r) (Schema.project schema cols) in
  Relation.iter (fun tup c -> Relation.insert ~count:c out (Tuple.project tup idxs)) r;
  out

let rename r mapping =
  let out =
    Relation.create ~name:(Relation.name r) (Schema.rename (Relation.schema r) mapping)
  in
  Relation.iter (fun tup c -> Relation.insert ~count:c out tup) r;
  out

let product a b =
  let schema = Schema.concat (Relation.schema a) (Relation.schema b) in
  let out = Relation.create ~name:(Relation.name a ^ "*" ^ Relation.name b) schema in
  Relation.iter
    (fun ta ca ->
      Relation.iter
        (fun tb cb -> Relation.insert ~count:(ca * cb) out (Tuple.concat ta tb))
        b)
    a;
  out

(* Columns of [b] that are not join keys, as (position, column) pairs. *)
let residual_columns schema_b shared =
  let cols = Schema.columns schema_b in
  let keep = ref [] in
  Array.iteri (fun i c -> if not (List.mem c.Schema.name shared) then keep := (i, c) :: !keep) cols;
  List.rev !keep

let natural_join a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let shared = List.filter (fun n -> Schema.mem sb n) (Schema.names sa) in
  if shared = [] then product a b
  else begin
    let key_a = Array.of_list (List.map (Schema.column_index sa) shared) in
    let key_b = Array.of_list (List.map (Schema.column_index sb) shared) in
    let residual = residual_columns sb shared in
    let out_schema =
      Schema.concat sa
        (Schema.make
           (List.map (fun (_, c) -> (c.Schema.name, c.Schema.ty)) residual))
    in
    let out =
      Relation.create ~name:(Relation.name a ^ "|x|" ^ Relation.name b) out_schema
    in
    (* Probe the persistent index (built once per (relation, key columns) and
       maintained by inserts/removes) instead of a throwaway one per join.
       Counted buckets carry each match's multiplicity, and the residual
       projection of each [b] tuple is memoized per key, so repeated key
       hits pay it once.  Columnar relations are probed on encoded keys
       through the store's sorted runs; only residual columns decode. *)
    let probe =
      match Relation.columnar b with
      | Some cs ->
        fun key ->
          (match Column_store.encode_key cs key_b key with
          | None -> []
          | Some key_ids ->
            let ms = ref [] in
            Column_store.iter_key cs key_b key_ids (fun ids n ->
                let extra =
                  Array.of_list
                    (List.map (fun (i, _) -> Column_store.dict_value cs i ids.(i)) residual)
                in
                ms := (extra, n) :: !ms);
            !ms)
      | None ->
        let index = Relation.get_index b key_b in
        fun key ->
          (match Hashtbl.find_opt index key with
          | None -> []
          | Some bucket ->
            Tuple.Hashtbl.fold
              (fun tb cb acc ->
                let extra = Array.of_list (List.map (fun (i, _) -> tb.(i)) residual) in
                (extra, cb) :: acc)
              bucket [])
    in
    let probe_cache : (Tuple.t, (Tuple.t * int) list) Hashtbl.t = Hashtbl.create 64 in
    let matches_for key =
      match Hashtbl.find_opt probe_cache key with
      | Some ms -> ms
      | None ->
        let ms = probe key in
        Hashtbl.replace probe_cache key ms;
        ms
    in
    Relation.iter
      (fun ta ca ->
        List.iter
          (fun (extra, cb) -> Relation.insert ~count:(ca * cb) out (Tuple.concat ta extra))
          (matches_for (Tuple.project ta key_a)))
      a;
    out
  end

let equi_join a b pairs =
  let sa = Relation.schema a and sb = Relation.schema b in
  let key_a = Array.of_list (List.map (fun (ca, _) -> Schema.column_index sa ca) pairs) in
  let key_b = Array.of_list (List.map (fun (_, cb) -> Schema.column_index sb cb) pairs) in
  let disambiguate name = if Schema.mem sa name then Relation.name b ^ "." ^ name else name in
  let sb_renamed =
    Schema.make
      (Array.to_list
         (Array.map
            (fun c -> (disambiguate c.Schema.name, c.Schema.ty))
            (Schema.columns sb)))
  in
  let out =
    Relation.create
      ~name:(Relation.name a ^ "|x|" ^ Relation.name b)
      (Schema.concat sa sb_renamed)
  in
  (* Cached persistent index plus per-key memoized (tuple, count) matches,
     as in [natural_join]; columnar [b] probes encoded keys instead. *)
  let probe =
    match Relation.columnar b with
    | Some cs ->
      fun key ->
        (match Column_store.encode_key cs key_b key with
        | None -> []
        | Some key_ids ->
          let ms = ref [] in
          Column_store.iter_key cs key_b key_ids (fun ids n ->
              ms := (Column_store.decode cs ids, n) :: !ms);
          !ms)
    | None ->
      let index = Relation.get_index b key_b in
      fun key ->
        (match Hashtbl.find_opt index key with
        | None -> []
        | Some bucket -> Tuple.Hashtbl.fold (fun tb cb acc -> (tb, cb) :: acc) bucket [])
  in
  let probe_cache : (Tuple.t, (Tuple.t * int) list) Hashtbl.t = Hashtbl.create 64 in
  let matches_for key =
    match Hashtbl.find_opt probe_cache key with
    | Some ms -> ms
    | None ->
      let ms = probe key in
      Hashtbl.replace probe_cache key ms;
      ms
  in
  Relation.iter
    (fun ta ca ->
      List.iter
        (fun (tb, cb) -> Relation.insert ~count:(ca * cb) out (Tuple.concat ta tb))
        (matches_for (Tuple.project ta key_a)))
    a;
  out

let union a b =
  assert (Schema.equal (Relation.schema a) (Relation.schema b));
  let out = Relation.copy a in
  Relation.iter (fun tup c -> Relation.insert ~count:c out tup) b;
  out

let difference a b =
  assert (Schema.equal (Relation.schema a) (Relation.schema b));
  Relation.filter (fun tup -> not (Relation.mem b tup)) a

let intersect a b =
  assert (Schema.equal (Relation.schema a) (Relation.schema b));
  Relation.filter (fun tup -> Relation.mem b tup) a

let distinct r =
  let out = Relation.create ~name:(Relation.name r) (Relation.schema r) in
  Relation.iter (fun tup _ -> Relation.insert out tup) r;
  out

type aggregate = Count | Sum of string | Min of string | Max of string | Avg of string

let aggregate r ~group_by agg ~output =
  let schema = Relation.schema r in
  let key_idx = Array.of_list (List.map (Schema.column_index schema) group_by) in
  let agg_idx = function
    | Count -> -1
    | Sum c | Min c | Max c | Avg c -> Schema.column_index schema c
  in
  let vi = agg_idx agg in
  let groups : (Tuple.t, Value.t list) Hashtbl.t = Hashtbl.create 64 in
  Relation.iter
    (fun tup _ ->
      let key = Tuple.project tup key_idx in
      let v = if vi < 0 then Value.Null else tup.(vi) in
      let existing = try Hashtbl.find groups key with Not_found -> [] in
      Hashtbl.replace groups key (v :: existing))
    r;
  let out_ty =
    match agg with
    | Count -> Value.TInt
    | Avg _ -> Value.TFloat
    | Sum c | Min c | Max c -> Schema.column_ty schema c
  in
  let out_schema =
    Schema.make
      (List.map (fun n -> (n, Schema.column_ty schema n)) group_by @ [ (output, out_ty) ])
  in
  let out = Relation.create ~name:(Relation.name r ^ "/agg") out_schema in
  let floats vs = List.map Value.as_float vs in
  Hashtbl.iter
    (fun key vs ->
      let result =
        match agg with
        | Count -> Value.Int (List.length vs)
        | Sum _ ->
          (match vs with
          | Value.Int _ :: _ ->
            Value.Int (List.fold_left (fun acc v -> acc + Value.as_int v) 0 vs)
          | _ -> Value.Float (List.fold_left ( +. ) 0.0 (floats vs)))
        | Min _ -> List.fold_left (fun acc v -> if Value.compare v acc < 0 then v else acc) (List.hd vs) vs
        | Max _ -> List.fold_left (fun acc v -> if Value.compare v acc > 0 then v else acc) (List.hd vs) vs
        | Avg _ ->
          let fs = floats vs in
          Value.Float (List.fold_left ( +. ) 0.0 fs /. float_of_int (List.length fs))
      in
      Relation.insert out (Tuple.concat key [| result |]))
    groups;
  out

let map_rows r schema f =
  let out = Relation.create ~name:(Relation.name r ^ "/map") schema in
  Relation.iter (fun tup c -> Relation.insert ~count:c out (f tup)) r;
  out

let flat_map_rows r schema f =
  let out = Relation.create ~name:(Relation.name r ^ "/flat_map") schema in
  Relation.iter (fun tup c -> List.iter (fun t' -> Relation.insert ~count:c out t') (f tup)) r;
  out
