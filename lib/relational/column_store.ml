(* Columnar, dictionary-encoded storage: per-column append-only value
   dictionaries, a sorted run of flat int-id column vectors, and a mutable
   delta tail merged into the run on demand.  See column_store.mli for the
   layout contract.

   Everything here must stay marshal-safe (no closures, no custom blocks
   beyond stdlib hashtables): checkpoints snapshot whole engines with
   [Marshal], columnar relations included. *)

module Crc32 = Dd_util.Crc32

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let hash_ids a =
  let h = ref 0 in
  for i = 0 to Array.length a - 1 do
    h := (!h * 486187739) + a.(i)
  done;
  !h land max_int

(* Encoded-tuple hashtable: specialized equality and a cheap multiplicative
   hash over int arrays.  The polymorphic [Hashtbl.hash] walks the array
   generically and dominates probe cost at scale; this is the hot-path
   replacement.  (Functorial hashtables are plain records underneath, so
   these stay marshal-safe.) *)
module IH = Hashtbl.Make (struct
  type t = int array

  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i = n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let hash = hash_ids
end)

(* Open-addressing int -> id map, the dictionary fast path for [Value.Int]
   keys (the dominant column type in KBC workloads: doc/mention/entity
   ids).  Dictionaries are append-only and ids are >= 0, so empty slots
   are marked with value -1, linear probing needs no tombstones, and
   every operation is allocation-free — unlike the bucket cons the
   stdlib hashtable pays per binding, which at 10^7 distinct keys both
   costs allocation and feeds the major GC. *)
module Imap = struct
  type t = {
    mutable keys : int array;
    mutable vals : int array; (* aligned with [keys]; -1 = empty slot *)
    mutable mask : int; (* capacity - 1; capacity is a power of two *)
    mutable used : int;
  }

  let create () =
    { keys = Array.make 16 0; vals = Array.make 16 (-1); mask = 15; used = 0 }

  let length t = t.used
  let slot_hash k = (k * 0x2545F4914F6CDD1D) land max_int

  let find t k =
    let mask = t.mask in
    let i = ref (slot_hash k land mask) in
    let res = ref (-1) in
    let probing = ref true in
    while !probing do
      let v = t.vals.(!i) in
      if v < 0 then probing := false
      else if t.keys.(!i) = k then begin
        res := v;
        probing := false
      end
      else i := (!i + 1) land mask
    done;
    !res

  let place keys vals mask k v =
    let i = ref (slot_hash k land mask) in
    while vals.(!i) >= 0 do
      i := (!i + 1) land mask
    done;
    keys.(!i) <- k;
    vals.(!i) <- v

  let grow t =
    let cap = 2 * Array.length t.keys in
    let keys = Array.make cap 0 and vals = Array.make cap (-1) in
    let mask = cap - 1 in
    for i = 0 to Array.length t.keys - 1 do
      if t.vals.(i) >= 0 then place keys vals mask t.keys.(i) t.vals.(i)
    done;
    t.keys <- keys;
    t.vals <- vals;
    t.mask <- mask

  (* Keys are never re-added: callers [find] first. *)
  let add t k v =
    if 2 * (t.used + 1) > Array.length t.keys then grow t;
    place t.keys t.vals t.mask k v;
    t.used <- t.used + 1

  let copy t =
    { keys = Array.copy t.keys; vals = Array.copy t.vals; mask = t.mask; used = t.used }
end

type dict = {
  mutable dvals : Value.t array; (* id -> value; first [dlen] slots live *)
  mutable dlen : int;
  dids : int VH.t; (* value -> id, non-[Int] values only *)
  dints : Imap.t; (* Int value -> id *)
}

type tail_entry = {
  base : int; (* multiplicity in the sorted run; 0 = not a run row *)
  mutable delta : int; (* live count = base + delta; entry dropped at 0 *)
}

type index = {
  key_cols : int array;
  mutable perm : int array; (* run rows sorted by (key projection, row) *)
  mutable perm_rows : int; (* run length when [perm] was built; -1 = stale *)
  (* Single-column keys only: [offsets.(k) .. offsets.(k+1))] is the perm
     range carrying key id [k], built by a counting sort over the dense
     dictionary — probes become two array loads instead of a binary search.
     [[||]] for multi-column keys (those fall back to binary search). *)
  mutable offsets : int array;
  (* key ids -> tail-resident tuples with base = 0 carrying that key.  Run
     rows overridden by the tail (base > 0) are filtered during the range
     walk instead, so the two probe phases never yield the same tuple. *)
  tails : int array list ref IH.t;
}

type t = {
  cs_schema : Schema.t;
  cs_arity : int;
  dicts : dict array;
  mutable cols : int array array; (* [cs_arity] vectors of length [rlen] *)
  mutable counts : int array;
  mutable rlen : int;
  tail : tail_entry IH.t;
  (* Number of tail entries with base > 0, i.e. run rows whose multiplicity
     the tail overrides.  When 0 — the common state right after a bulk load
     or a compaction — run walks skip the per-row tail lookup entirely. *)
  mutable run_overrides : int;
  (* Two-probe Bloom bitset over the run's encoded rows (~16 bits/row, 32
     bits used per int slot), rebuilt on every compaction.  A negative
     answer proves a tuple is not in the run, so inserting a fresh tuple —
     the dominant mutation while deriving — skips the binary search; a
     false positive just falls back to it.  [[||]] iff the run is empty. *)
  mutable run_filter : int array;
  indexes : index IH.t;
  mutable card : int;
  mutable total : int;
}

let create schema =
  let arity = Schema.arity schema in
  {
    cs_schema = schema;
    cs_arity = arity;
    dicts =
      Array.init arity (fun _ ->
          { dvals = [||]; dlen = 0; dids = VH.create 64; dints = Imap.create () });
    cols = Array.make arity [||];
    counts = [||];
    rlen = 0;
    tail = IH.create 64;
    run_overrides = 0;
    run_filter = [||];
    indexes = IH.create 4;
    card = 0;
    total = 0;
  }

let schema t = t.cs_schema
let arity t = t.cs_arity
let cardinality t = t.card
let total_count t = t.total
let run_rows t = t.rlen
let tail_size t = IH.length t.tail

(* --- dictionaries ------------------------------------------------------- *)

let dict_append d v =
  let id = d.dlen in
  if id >= Array.length d.dvals then begin
    let cap = max 8 (2 * Array.length d.dvals) in
    let fresh = Array.make cap Value.Null in
    Array.blit d.dvals 0 fresh 0 id;
    d.dvals <- fresh
  end;
  d.dvals.(id) <- v;
  d.dlen <- id + 1;
  id

let intern d v =
  match v with
  | Value.Int k ->
    let id = Imap.find d.dints k in
    if id >= 0 then id
    else begin
      let id = dict_append d v in
      Imap.add d.dints k id;
      id
    end
  | _ -> (
    match VH.find_opt d.dids v with
    | Some id -> id
    | None ->
      let id = dict_append d v in
      VH.replace d.dids v id;
      id)

(* Non-interning lookup: the id, or -1 when the value was never seen. *)
let dict_find_raw d v =
  match v with
  | Value.Int k -> Imap.find d.dints k
  | _ -> ( match VH.find_opt d.dids v with Some id -> id | None -> -1)

let dict_size t c = t.dicts.(c).dlen

let dict_value t c id =
  let d = t.dicts.(c) in
  if id < 0 || id >= d.dlen then
    invalid_arg (Printf.sprintf "Column_store.dict_value: id %d/%d" id d.dlen);
  d.dvals.(id)

let encode_value t c v =
  let id = dict_find_raw t.dicts.(c) v in
  if id >= 0 then Some id else None

let encode_tuple t tup =
  let n = Array.length tup in
  if n <> t.cs_arity then None
  else begin
    let ids = Array.make n 0 in
    let ok = ref true in
    let c = ref 0 in
    while !ok && !c < n do
      let id = dict_find_raw t.dicts.(!c) tup.(!c) in
      if id >= 0 then ids.(!c) <- id else ok := false;
      incr c
    done;
    if !ok then Some ids else None
  end

let encode_key t key_cols vals =
  let n = Array.length key_cols in
  let ids = Array.make n 0 in
  let ok = ref true in
  let k = ref 0 in
  while !ok && !k < n do
    let id = dict_find_raw t.dicts.(key_cols.(!k)) vals.(!k) in
    if id >= 0 then ids.(!k) <- id else ok := false;
    incr k
  done;
  if !ok then Some ids else None

let decode t ids = Array.mapi (fun c id -> dict_value t c id) ids

(* --- run primitives ----------------------------------------------------- *)

let cmp_ids a b =
  let n = Array.length a in
  let rec go i =
    if i = n then 0
    else
      let c = compare (a.(i) : int) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* Lexicographic compare of run row [row] against an encoded tuple. *)
let cmp_row_ids t row ids =
  let rec go c =
    if c = t.cs_arity then 0
    else
      let x = t.cols.(c).(row) and y = ids.(c) in
      if x < y then -1 else if x > y then 1 else go (c + 1)
  in
  go 0

let cmp_rows t a b =
  let rec go c =
    if c = t.cs_arity then 0
    else
      let x = t.cols.(c).(a) and y = t.cols.(c).(b) in
      if x < y then -1 else if x > y then 1 else go (c + 1)
  in
  go 0

(* Binary search for an encoded tuple among the (unique, sorted) run rows. *)
let find_run t ids =
  let lo = ref 0 and hi = ref t.rlen and found = ref (-1) in
  while !found < 0 && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = cmp_row_ids t mid ids in
    if c = 0 then found := mid else if c < 0 then lo := mid + 1 else hi := mid
  done;
  !found

let filter_add f mask h =
  let set b = f.(b lsr 5) <- f.(b lsr 5) lor (1 lsl (b land 31)) in
  set (h land mask);
  set (h * 0x9e3779b1 land mask)

let filter_mem f mask h =
  let get b = f.(b lsr 5) land (1 lsl (b land 31)) <> 0 in
  get (h land mask) && get (h * 0x9e3779b1 land mask)

let rebuild_filter t =
  if t.rlen = 0 then t.run_filter <- [||]
  else begin
    let rec pow2 n = if n >= 16 * t.rlen then n else pow2 (2 * n) in
    let nbits = pow2 1024 in
    let f = Array.make (nbits / 32) 0 in
    let mask = nbits - 1 in
    let scratch = Array.make t.cs_arity 0 in
    for row = 0 to t.rlen - 1 do
      for c = 0 to t.cs_arity - 1 do
        scratch.(c) <- t.cols.(c).(row)
      done;
      filter_add f mask (hash_ids scratch)
    done;
    t.run_filter <- f
  end

let base_of t ids =
  if t.rlen = 0 then 0
  else if
    Array.length t.run_filter > 0
    && not
         (filter_mem t.run_filter
            ((Array.length t.run_filter * 32) - 1)
            (hash_ids ids))
  then 0
  else match find_run t ids with -1 -> 0 | row -> t.counts.(row)

let decode_row t row =
  Array.init t.cs_arity (fun c -> t.dicts.(c).dvals.(t.cols.(c).(row)))

(* --- per-index tail buckets --------------------------------------------- *)

let project_ids ids key_cols = Array.map (fun c -> ids.(c)) key_cols

let index_tail_add idx ids =
  let key = project_ids ids idx.key_cols in
  match IH.find_opt idx.tails key with
  | Some l -> l := ids :: !l
  | None -> IH.replace idx.tails key (ref [ ids ])

let index_tail_remove idx ids =
  let key = project_ids ids idx.key_cols in
  match IH.find_opt idx.tails key with
  | None -> ()
  | Some l -> (
    match List.filter (fun o -> cmp_ids o ids <> 0) !l with
    | [] -> IH.remove idx.tails key
    | rest -> l := rest)

let tails_add t ids = IH.iter (fun _ idx -> index_tail_add idx ids) t.indexes

let tails_remove t ids =
  IH.iter (fun _ idx -> index_tail_remove idx ids) t.indexes

(* --- compaction --------------------------------------------------------- *)

let compact t =
  let nt = IH.length t.tail in
  if nt > 0 && t.cs_arity > 0 then begin
    (* Gather the tail into packed column vectors so sorting and merging
       touch flat int arrays, not boxed (ids, entry) pairs. *)
    let tcols = Array.init t.cs_arity (fun _ -> Array.make nt 0) in
    let tnet = Array.make nt 0 in
    let j = ref 0 in
    IH.iter
      (fun ids e ->
        for c = 0 to t.cs_arity - 1 do
          tcols.(c).(!j) <- ids.(c)
        done;
        tnet.(!j) <- e.base + e.delta;
        incr j)
      t.tail;
    (* Sort a permutation of the tail id-lexicographically.  Dictionary ids
       are dense, so an LSD radix over the column domains needs no
       comparisons; fall back to a comparison sort when the dictionaries
       vastly outnumber the tail (the counting arrays would dominate). *)
    let dict_span =
      Array.fold_left (fun acc d -> acc + d.dlen) 0 t.dicts
    in
    let perm =
      if dict_span <= 8 * nt then begin
        let src = ref (Array.init nt (fun k -> k)) in
        let dst = ref (Array.make nt 0) in
        for c = t.cs_arity - 1 downto 0 do
          let col = tcols.(c) in
          let dlen = t.dicts.(c).dlen in
          let counts = Array.make (dlen + 1) 0 in
          for k = 0 to nt - 1 do
            counts.(col.(k) + 1) <- counts.(col.(k) + 1) + 1
          done;
          for d = 1 to dlen do
            counts.(d) <- counts.(d) + counts.(d - 1)
          done;
          let s = !src and d = !dst in
          for k = 0 to nt - 1 do
            let row = s.(k) in
            let key = col.(row) in
            d.(counts.(key)) <- row;
            counts.(key) <- counts.(key) + 1
          done;
          src := d;
          dst := s
        done;
        !src
      end
      else begin
        let perm = Array.init nt (fun k -> k) in
        let cmp a b =
          let rec go c =
            if c = t.cs_arity then 0
            else
              let x = tcols.(c).(a) and y = tcols.(c).(b) in
              if x < y then -1 else if x > y then 1 else go (c + 1)
          in
          go 0
        in
        Array.sort cmp perm;
        perm
      end
    in
    let cmp_run_tail row k =
      let rec go c =
        if c = t.cs_arity then 0
        else
          let x = t.cols.(c).(row) and y = tcols.(c).(k) in
          if x < y then -1 else if x > y then 1 else go (c + 1)
      in
      go 0
    in
    (* The filter grows incrementally when it still has headroom for the
       merged run; otherwise it is rebuilt (resized) after the merge. *)
    let incr_filter =
      Array.length t.run_filter > 0
      && Array.length t.run_filter * 32 >= 16 * (t.rlen + nt)
    in
    let fmask = (Array.length t.run_filter * 32) - 1 in
    let hash_tail k =
      let h = ref 0 in
      for c = 0 to t.cs_arity - 1 do
        h := (!h * 486187739) + tcols.(c).(k)
      done;
      !h land max_int
    in
    let cap = t.rlen + nt in
    let out_cols = Array.init t.cs_arity (fun _ -> Array.make (max cap 1) 0) in
    let out_counts = Array.make (max cap 1) 0 in
    let out = ref 0 in
    let emit_run row =
      for c = 0 to t.cs_arity - 1 do
        out_cols.(c).(!out) <- t.cols.(c).(row)
      done;
      out_counts.(!out) <- t.counts.(row);
      incr out
    in
    let emit_tail k =
      if tnet.(k) > 0 then begin
        for c = 0 to t.cs_arity - 1 do
          out_cols.(c).(!out) <- tcols.(c).(k)
        done;
        out_counts.(!out) <- tnet.(k);
        if incr_filter then filter_add t.run_filter fmask (hash_tail k);
        incr out
      end
    in
    let i = ref 0 and j = ref 0 in
    while !i < t.rlen && !j < nt do
      let k = perm.(!j) in
      let c = cmp_run_tail !i k in
      if c < 0 then begin
        emit_run !i;
        incr i
      end
      else if c > 0 then begin
        emit_tail k;
        incr j
      end
      else begin
        (* tail entry overrides this run row *)
        emit_tail k;
        incr i;
        incr j
      end
    done;
    while !i < t.rlen do
      emit_run !i;
      incr i
    done;
    while !j < nt do
      emit_tail perm.(!j);
      incr j
    done;
    let n = !out in
    t.cols <- Array.map (fun col -> Array.sub col 0 n) out_cols;
    t.counts <- Array.sub out_counts 0 n;
    t.rlen <- n;
    IH.reset t.tail;
    t.run_overrides <- 0;
    if not incr_filter then rebuild_filter t;
    IH.iter
      (fun _ idx ->
        idx.perm_rows <- -1;
        IH.reset idx.tails)
      t.indexes
  end

(* Factor-2 run growth: total merge work stays O(n) across a load and the
   tail hashtable is bounded by the run's row count. *)
let tail_threshold t = max 1024 t.rlen

let maybe_compact t =
  if IH.length t.tail > tail_threshold t then compact t

(* --- mutation ----------------------------------------------------------- *)

(* Single mutation funnel: set the live multiplicity of [ids] to
   [f prev] (clamped at 0), notifying [notify prev] before any change.
   Returns the previous multiplicity. *)
let change ?notify t ids ~f =
  let entry = IH.find_opt t.tail ids in
  let e =
    match entry with
    | Some e -> e
    | None -> { base = base_of t ids; delta = 0 }
  in
  let prev = e.base + e.delta in
  let target = max 0 (f prev) in
  (match notify with None -> () | Some g -> g prev);
  if target <> prev then begin
    t.total <- t.total + target - prev;
    if prev = 0 && target > 0 then t.card <- t.card + 1
    else if prev > 0 && target = 0 then t.card <- t.card - 1;
    let ndelta = target - e.base in
    if ndelta = 0 then begin
      (* back to the run's own multiplicity: drop the tail entry *)
      if entry <> None then begin
        IH.remove t.tail ids;
        if e.base = 0 then tails_remove t ids
        else t.run_overrides <- t.run_overrides - 1
      end
    end
    else begin
      e.delta <- ndelta;
      if entry = None then begin
        let key = Array.copy ids in
        IH.replace t.tail key e;
        if e.base = 0 then tails_add t key
        else t.run_overrides <- t.run_overrides + 1
      end
    end;
    maybe_compact t
  end;
  prev

let encode_intern t tup =
  let n = t.cs_arity in
  let ids = Array.make n 0 in
  for c = 0 to n - 1 do
    ids.(c) <- intern t.dicts.(c) tup.(c)
  done;
  ids

(* [change] specialized to "add [count] derivations" — the grounding hot
   path — so no per-call closure is built.  Takes ownership of [ids]
   (callers pass a freshly encoded array, never a scratch buffer). *)
let add_ids ?notify t ids count =
  let entry = IH.find_opt t.tail ids in
  let e =
    match entry with
    | Some e -> e
    | None -> { base = base_of t ids; delta = 0 }
  in
  let prev = e.base + e.delta in
  (match notify with None -> () | Some g -> g prev);
  t.total <- t.total + count;
  if prev = 0 then t.card <- t.card + 1;
  e.delta <- e.delta + count;
  (match entry with
  | None ->
    IH.replace t.tail ids e;
    if e.base = 0 then tails_add t ids
    else t.run_overrides <- t.run_overrides + 1;
    maybe_compact t
  | Some _ ->
    if e.delta = 0 then begin
      (* back to the run's own multiplicity (the tuple had been removed
         below it): drop the override *)
      IH.remove t.tail ids;
      if e.base = 0 then tails_remove t ids
      else t.run_overrides <- t.run_overrides - 1
    end);
  prev

let insert_prev ?(count = 1) ?notify t tup =
  let ids = encode_intern t tup in
  add_ids ?notify t ids count

let insert ?count ?notify t tup = ignore (insert_prev ?count ?notify t tup)

let remove ?(count = 1) ?notify t tup =
  match encode_tuple t tup with
  | None -> 0
  | Some ids ->
    let prev = change ?notify t ids ~f:(fun prev -> prev - min count prev) in
    min count prev

let delete_all ?notify t tup =
  match encode_tuple t tup with
  | None -> ()
  | Some ids -> ignore (change ?notify t ids ~f:(fun _ -> 0))

let restore_count t tup target =
  if target <= 0 then
    match encode_tuple t tup with
    | None -> ()
    | Some ids -> ignore (change t ids ~f:(fun _ -> 0))
  else
    let ids = encode_intern t tup in
    ignore (change t ids ~f:(fun _ -> target))

let count t tup =
  match encode_tuple t tup with
  | None -> 0
  | Some ids -> (
    match IH.find_opt t.tail ids with
    | Some e -> e.base + e.delta
    | None -> base_of t ids)

let mem t tup = count t tup > 0

(* --- iteration ---------------------------------------------------------- *)

let sorted_tail t =
  IH.fold (fun ids e acc -> (ids, e.base + e.delta) :: acc) t.tail []
  |> List.filter (fun (_, n) -> n > 0)
  |> List.sort (fun (a, _) (b, _) -> cmp_ids a b)

(* The ids arrays handed to [iter_ids]/[iter_key] callbacks are either a
   reused scratch buffer (run rows) or the table's own tail keys: valid only
   for the duration of the call, never to be mutated or retained (see the
   .mli contract). *)
let iter_ids t f =
  let tail_n = IH.length t.tail in
  let scratch = Array.make t.cs_arity 0 in
  if tail_n = 0 || t.run_overrides = 0 then
    (* no run row is overridden by the tail: skip the per-row lookup *)
    for row = 0 to t.rlen - 1 do
      for c = 0 to t.cs_arity - 1 do
        scratch.(c) <- t.cols.(c).(row)
      done;
      f scratch t.counts.(row)
    done
  else
    for row = 0 to t.rlen - 1 do
      for c = 0 to t.cs_arity - 1 do
        scratch.(c) <- t.cols.(c).(row)
      done;
      if not (IH.mem t.tail scratch) then f scratch t.counts.(row)
    done;
  if tail_n > 0 then List.iter (fun (ids, n) -> f ids n) (sorted_tail t)

let iter f t =
  let tail_n = IH.length t.tail in
  if tail_n = 0 || t.run_overrides = 0 then
    for row = 0 to t.rlen - 1 do
      f (decode_row t row) t.counts.(row)
    done
  else begin
    let scratch = Array.make t.cs_arity 0 in
    for row = 0 to t.rlen - 1 do
      for c = 0 to t.cs_arity - 1 do
        scratch.(c) <- t.cols.(c).(row)
      done;
      if not (IH.mem t.tail scratch) then f (decode_row t row) t.counts.(row)
    done
  end;
  if tail_n > 0 then List.iter (fun (ids, n) -> f (decode t ids) n) (sorted_tail t)

let fold f t init =
  let acc = ref init in
  iter (fun tup n -> acc := f tup n !acc) t;
  !acc

let clear ?notify t =
  (match notify with None -> () | Some f -> iter f t);
  t.cols <- Array.make t.cs_arity [||];
  t.counts <- [||];
  t.rlen <- 0;
  IH.reset t.tail;
  t.run_overrides <- 0;
  t.run_filter <- [||];
  IH.reset t.indexes;
  t.card <- 0;
  t.total <- 0

let copy t =
  {
    cs_schema = t.cs_schema;
    cs_arity = t.cs_arity;
    dicts =
      Array.map
        (fun d ->
          {
            dvals = Array.copy d.dvals;
            dlen = d.dlen;
            dids = VH.copy d.dids;
            dints = Imap.copy d.dints;
          })
        t.dicts;
    cols = Array.map Array.copy t.cols;
    counts = Array.copy t.counts;
    rlen = t.rlen;
    tail =
      (let fresh = IH.create (max 64 (IH.length t.tail)) in
       IH.iter
         (fun ids e ->
           IH.replace fresh (Array.copy ids) { base = e.base; delta = e.delta })
         t.tail;
       fresh);
    run_overrides = t.run_overrides;
    run_filter = Array.copy t.run_filter;
    indexes = IH.create 4;
    card = t.card;
    total = t.total;
  }

(* --- keyed probes ------------------------------------------------------- *)

let cmp_row_key t idx row key_ids =
  let n = Array.length idx.key_cols in
  let rec go k =
    if k = n then 0
    else
      let x = t.cols.(idx.key_cols.(k)).(row) and y = key_ids.(k) in
      if x < y then -1 else if x > y then 1 else go (k + 1)
  in
  go 0

let refresh_perm t idx =
  if idx.perm_rows <> t.rlen then begin
    if Array.length idx.key_cols = 1 then begin
      (* Dictionary ids are dense, so a stable counting sort builds both the
         permutation and the per-key ranges in O(rows + dict) — row-order
         scatter preserves the (key, row) tie-break of the comparison sort. *)
      let col = t.cols.(idx.key_cols.(0)) in
      let nk = t.dicts.(idx.key_cols.(0)).dlen in
      let offsets = Array.make (nk + 1) 0 in
      for row = 0 to t.rlen - 1 do
        offsets.(col.(row) + 1) <- offsets.(col.(row) + 1) + 1
      done;
      for k = 1 to nk do
        offsets.(k) <- offsets.(k) + offsets.(k - 1)
      done;
      let cursor = Array.copy offsets in
      let perm = Array.make t.rlen 0 in
      for row = 0 to t.rlen - 1 do
        let k = col.(row) in
        perm.(cursor.(k)) <- row;
        cursor.(k) <- cursor.(k) + 1
      done;
      idx.perm <- perm;
      idx.offsets <- offsets
    end
    else begin
      let perm = Array.init t.rlen (fun i -> i) in
      let cmp a b =
        let n = Array.length idx.key_cols in
        let rec go k =
          if k = n then compare (a : int) b
          else
            let x = t.cols.(idx.key_cols.(k)).(a)
            and y = t.cols.(idx.key_cols.(k)).(b) in
            if x < y then -1 else if x > y then 1 else go (k + 1)
        in
        go 0
      in
      Array.sort cmp perm;
      idx.perm <- perm
    end;
    idx.perm_rows <- t.rlen
  end

let get_or_create_index t key_cols =
  match IH.find_opt t.indexes key_cols with
  | Some idx -> idx
  | None ->
    let idx =
      {
        key_cols = Array.copy key_cols;
        perm = [||];
        perm_rows = -1;
        offsets = [||];
        tails = IH.create 16;
      }
    in
    (* adopt tail-only entries already present *)
    IH.iter (fun ids e -> if e.base = 0 then index_tail_add idx ids) t.tail;
    IH.replace t.indexes idx.key_cols idx;
    idx

(* Lower/upper bound of [key_ids] in the key-sorted permutation. *)
let equal_range t idx key_ids =
  if Array.length idx.key_cols = 1 then begin
    (* Counting-sorted index: direct range lookup.  A key id interned after
       the perm was built cannot appear in the (unchanged) run. *)
    let k = key_ids.(0) in
    if k + 1 < Array.length idx.offsets then (idx.offsets.(k), idx.offsets.(k + 1))
    else (0, 0)
  end
  else begin
  let lo = ref 0 and hi = ref t.rlen in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp_row_key t idx idx.perm.(mid) key_ids < 0 then lo := mid + 1
    else hi := mid
  done;
  let first = !lo in
  let lo = ref first and hi = ref t.rlen in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp_row_key t idx idx.perm.(mid) key_ids <= 0 then lo := mid + 1
    else hi := mid
  done;
  (first, !lo)
  end

let iter_key t key_cols key_ids f =
  let idx = get_or_create_index t key_cols in
  refresh_perm t idx;
  let lo, hi = equal_range t idx key_ids in
  let tail_n = IH.length t.tail in
  let scratch = Array.make t.cs_arity 0 in
  if tail_n = 0 || t.run_overrides = 0 then
    for k = lo to hi - 1 do
      let row = idx.perm.(k) in
      for c = 0 to t.cs_arity - 1 do
        scratch.(c) <- t.cols.(c).(row)
      done;
      f scratch t.counts.(row)
    done
  else
    for k = lo to hi - 1 do
      let row = idx.perm.(k) in
      for c = 0 to t.cs_arity - 1 do
        scratch.(c) <- t.cols.(c).(row)
      done;
      match IH.find_opt t.tail scratch with
      | Some e -> if e.base + e.delta > 0 then f scratch (e.base + e.delta)
      | None -> f scratch t.counts.(row)
    done;
  if tail_n > 0 then
    match IH.find_opt idx.tails key_ids with
    | None -> ()
    | Some l ->
      List.iter
        (fun ids ->
          match IH.find_opt t.tail ids with
          | Some e when e.base = 0 && e.delta > 0 -> f ids e.delta
          | _ -> ())
        !l

(* --- audit -------------------------------------------------------------- *)

let audit t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let check_dicts () =
    let rec go c =
      if c = t.cs_arity then Ok ()
      else begin
        let d = t.dicts.(c) in
        if d.dlen > Array.length d.dvals then
          err "column %d: dict length %d exceeds capacity" c d.dlen
        else begin
          let bad = ref None in
          for id = 0 to d.dlen - 1 do
            if !bad = None && dict_find_raw d d.dvals.(id) <> id then
              bad := Some id
          done;
          if VH.length d.dids + Imap.length d.dints <> d.dlen then
            err "column %d: dict maps have %d entries for %d ids" c
              (VH.length d.dids + Imap.length d.dints)
              d.dlen
          else
            match !bad with
            | Some id -> err "column %d: id %d not a bijection" c id
            | None -> go (c + 1)
        end
      end
    in
    go 0
  in
  let check_run () =
    let bad = ref None in
    for row = 0 to t.rlen - 1 do
      if !bad = None then begin
        if t.counts.(row) <= 0 then
          bad := Some (Printf.sprintf "run row %d: count %d" row t.counts.(row));
        for c = 0 to t.cs_arity - 1 do
          let id = t.cols.(c).(row) in
          if id < 0 || id >= t.dicts.(c).dlen then
            bad := Some (Printf.sprintf "run row %d col %d: id %d out of dict" row c id)
        done;
        if row > 0 && cmp_rows t (row - 1) row >= 0 then
          bad := Some (Printf.sprintf "run rows %d,%d not strictly sorted" (row - 1) row)
      end
    done;
    match !bad with Some m -> Error m | None -> Ok ()
  in
  let check_tail () =
    IH.fold
      (fun ids e acc ->
        Result.bind acc (fun () ->
            if Array.length ids <> t.cs_arity then err "tail entry arity mismatch"
            else if e.delta = 0 then err "tail entry with zero delta"
            else if e.base + e.delta < 0 then err "tail entry with negative net"
            else if base_of t ids <> e.base then
              err "tail entry base %d disagrees with run" e.base
            else Ok ()))
      t.tail (Ok ())
  in
  let check_overrides () =
    let n = IH.fold (fun _ e acc -> if e.base > 0 then acc + 1 else acc) t.tail 0 in
    if n <> t.run_overrides then
      err "run_overrides %d, counted %d" t.run_overrides n
    else Ok ()
  in
  let check_filter () =
    if t.rlen = 0 then
      if Array.length t.run_filter = 0 then Ok ()
      else err "run filter non-empty for empty run"
    else if Array.length t.run_filter = 0 then err "run filter missing"
    else begin
      (* the filter may over-approximate but must never miss a run row *)
      let mask = (Array.length t.run_filter * 32) - 1 in
      let scratch = Array.make t.cs_arity 0 in
      let missing = ref (-1) in
      for row = 0 to t.rlen - 1 do
        if !missing < 0 then begin
          for c = 0 to t.cs_arity - 1 do
            scratch.(c) <- t.cols.(c).(row)
          done;
          if not (filter_mem t.run_filter mask (hash_ids scratch)) then
            missing := row
        end
      done;
      if !missing >= 0 then err "run row %d missing from filter" !missing
      else Ok ()
    end
  in
  let check_totals () =
    let card = ref 0 and total = ref 0 in
    iter_ids t (fun _ n ->
        incr card;
        total := !total + n);
    if !card <> t.card then err "cardinality %d, counted %d" t.card !card
    else if !total <> t.total then err "total %d, counted %d" t.total !total
    else Ok ()
  in
  Result.bind (check_dicts ()) (fun () ->
      Result.bind (check_run ()) (fun () ->
          Result.bind (check_tail ()) (fun () ->
              Result.bind (check_overrides ()) (fun () ->
                  Result.bind (check_filter ()) check_totals))))

(* --- serialization ------------------------------------------------------ *)

let magic = "ddcols 1\n"

let add_int buf n = Buffer.add_int64_le buf (Int64.of_int n)

let add_value buf v =
  match (v : Value.t) with
  | Value.Null -> Buffer.add_char buf '\000'
  | Value.Bool b ->
    Buffer.add_char buf '\001';
    Buffer.add_char buf (if b then '\001' else '\000')
  | Value.Int n ->
    Buffer.add_char buf '\002';
    add_int buf n
  | Value.Float f ->
    Buffer.add_char buf '\003';
    Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Value.Str s ->
    Buffer.add_char buf '\004';
    add_int buf (String.length s);
    Buffer.add_string buf s

let to_bytes t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  add_int buf t.cs_arity;
  Array.iter
    (fun d ->
      add_int buf d.dlen;
      for id = 0 to d.dlen - 1 do
        add_value buf d.dvals.(id)
      done)
    t.dicts;
  add_int buf t.rlen;
  for row = 0 to t.rlen - 1 do
    add_int buf t.counts.(row)
  done;
  Array.iter
    (fun col ->
      for row = 0 to t.rlen - 1 do
        add_int buf col.(row)
      done)
    t.cols;
  let tail = IH.fold (fun ids e acc -> (ids, e) :: acc) t.tail [] in
  let tail = List.sort (fun (a, _) (b, _) -> cmp_ids a b) tail in
  add_int buf (List.length tail);
  List.iter
    (fun (ids, e) ->
      Array.iter (fun id -> add_int buf id) ids;
      add_int buf e.base;
      add_int buf e.delta)
    tail;
  add_int buf t.card;
  add_int buf t.total;
  let body = Buffer.contents buf in
  body ^ Crc32.to_hex (Crc32.string body)

let of_bytes schema s =
  let err m = Error ("Column_store.of_bytes: " ^ m) in
  let n = String.length s in
  if n < String.length magic + 8 then err "truncated"
  else begin
    let body = String.sub s 0 (n - 8) in
    let crc = String.sub s (n - 8) 8 in
    if Crc32.to_hex (Crc32.string body) <> crc then err "CRC mismatch"
    else if String.sub s 0 (String.length magic) <> magic then err "bad magic"
    else begin
      let pos = ref (String.length magic) in
      let bad = ref None in
      let fail m = if !bad = None then bad := Some m in
      let read_int () =
        if !pos + 8 > String.length body then begin
          fail "truncated int";
          0
        end
        else begin
          let v = Int64.to_int (String.get_int64_le body !pos) in
          pos := !pos + 8;
          v
        end
      in
      let read_value () =
        if !pos >= String.length body then begin
          fail "truncated value";
          Value.Null
        end
        else begin
          let tag = body.[!pos] in
          incr pos;
          match tag with
          | '\000' -> Value.Null
          | '\001' ->
            let b = !pos < String.length body && body.[!pos] = '\001' in
            incr pos;
            Value.Bool b
          | '\002' -> Value.Int (read_int ())
          | '\003' ->
            let bits = read_int () in
            Value.Float (Int64.float_of_bits (Int64.of_int bits))
          | '\004' ->
            let len = read_int () in
            if len < 0 || !pos + len > String.length body then begin
              fail "truncated string";
              Value.Null
            end
            else begin
              let v = Value.Str (String.sub body !pos len) in
              pos := !pos + len;
              v
            end
          | _ ->
            fail "unknown value tag";
            Value.Null
        end
      in
      let ar = read_int () in
      if ar <> Schema.arity schema then
        err
          (Printf.sprintf "arity %d does not match schema arity %d" ar
             (Schema.arity schema))
      else begin
        let t = create schema in
        for c = 0 to ar - 1 do
          let dlen = read_int () in
          if dlen < 0 then fail "negative dict length"
          else
            for _ = 1 to dlen do
              if !bad = None then ignore (intern t.dicts.(c) (read_value ()))
            done
        done;
        let rlen = read_int () in
        if rlen < 0 then fail "negative run length";
        if !bad = None then begin
          t.rlen <- rlen;
          t.counts <- Array.init rlen (fun _ -> read_int ());
          t.cols <-
            Array.init ar (fun _ -> Array.init rlen (fun _ -> read_int ()));
          rebuild_filter t
        end;
        let ntail = read_int () in
        if ntail < 0 then fail "negative tail length";
        if !bad = None then
          for _ = 1 to ntail do
            if !bad = None then begin
              let ids = Array.init ar (fun _ -> read_int ()) in
              let base = read_int () in
              let delta = read_int () in
              IH.replace t.tail ids { base; delta };
              if base > 0 then t.run_overrides <- t.run_overrides + 1
            end
          done;
        t.card <- read_int ();
        t.total <- read_int ();
        match !bad with
        | Some m -> err m
        | None ->
          if !pos <> String.length body then err "trailing bytes"
          else begin
            match audit t with
            | Error m -> err ("audit failed: " ^ m)
            | Ok () -> Ok t
          end
      end
    end
  end

(* --- repair ------------------------------------------------------------- *)

(* The store splits into a content plane (dictionary values, run columns +
   multiplicities, tail entries) and derived planes that are pure functions
   of it (dictionary maps, the Bloom run filter, cached indexes, the
   override/cardinality/total accounting).  [repair] recomputes every
   derived plane from the content and re-audits: damage confined to a
   derived plane heals in place, while content damage still fails the
   re-audit — the caller's cue to rebuild from a reference or reground. *)
let repair t =
  Array.iteri
    (fun c d ->
      let fresh =
        { dvals = d.dvals; dlen = d.dlen; dids = VH.create 64; dints = Imap.create () }
      in
      for id = 0 to d.dlen - 1 do
        match fresh.dvals.(id) with
        | Value.Int k -> if Imap.find fresh.dints k < 0 then Imap.add fresh.dints k id
        | v -> if VH.find_opt fresh.dids v = None then VH.replace fresh.dids v id
      done;
      t.dicts.(c) <- fresh)
    t.dicts;
  rebuild_filter t;
  IH.reset t.indexes;
  t.run_overrides <-
    IH.fold (fun _ e acc -> if e.base > 0 then acc + 1 else acc) t.tail 0;
  let card = ref 0 and total = ref 0 in
  iter_ids t (fun _ n ->
      incr card;
      total := !total + n);
  t.card <- !card;
  t.total <- !total;
  audit t

let rebuild t iter =
  Array.iteri
    (fun c _ ->
      t.dicts.(c) <- { dvals = [||]; dlen = 0; dids = VH.create 64; dints = Imap.create () })
    t.dicts;
  t.cols <- Array.make t.cs_arity [||];
  t.counts <- [||];
  t.rlen <- 0;
  IH.reset t.tail;
  t.run_overrides <- 0;
  t.run_filter <- [||];
  IH.reset t.indexes;
  t.card <- 0;
  t.total <- 0;
  iter (fun tup count -> insert ~count t tup);
  compact t

(* Test-only damage hooks: simulate in-memory corruption of a derived
   plane (repairable) or of run content (not repairable in place). *)

let unsafe_corrupt_filter t =
  if Array.length t.run_filter > 0 then Array.fill t.run_filter 0 (Array.length t.run_filter) 0
  else t.run_filter <- [| 0 |]

let unsafe_corrupt_accounting t = t.card <- t.card + 1

let unsafe_corrupt_run t =
  if t.rlen = 0 then invalid_arg "Column_store.unsafe_corrupt_run: empty run";
  t.counts.(0) <- -t.counts.(0)

let pp fmt t =
  Format.fprintf fmt "@[<v>columnar{run=%d tail=%d card=%d total=%d}@]" t.rlen
    (IH.length t.tail) t.card t.total
