(** Columnar, dictionary-encoded tuple storage (VLog-style).

    A store holds one relation's bag of tuples in three planes:

    - {b Dictionaries}: one per column, mapping each distinct [Value.t] to a
      dense int id.  Dictionaries are append-only — an id, once assigned,
      never changes and never points at a different value, even across
      {!clear} — so int-id join plans stay valid across incremental deltas
      and ids can be compared for equality without decoding.
    - {b Sorted run}: the compacted bulk of the store, as flat per-column
      [int array] vectors plus a multiplicity vector, with rows unique and
      sorted id-lexicographically.  Probes over the run binary-search a
      per-index-key sorted permutation.
    - {b Delta tail}: a small mutable hashtable absorbing {!insert} /
      {!remove} / {!restore_count} between compactions.  Each entry records
      the tuple's run multiplicity ([base]) and the pending signed change
      ([delta]); the live multiplicity is [base + delta].  When the tail
      outgrows a fraction of the run it is merged into a fresh run
      ({!compact}), amortizing mutations to O(log run) each.

    Multiplicities, journal notification and iteration contracts mirror
    {!Relation}; this module is the columnar backend behind it. *)

type t

val create : Schema.t -> t

val schema : t -> Schema.t

val arity : t -> int

val cardinality : t -> int
(** Number of distinct live tuples. O(1). *)

val total_count : t -> int
(** Sum of live multiplicities. O(1). *)

val run_rows : t -> int
(** Rows in the compacted sorted run (including rows a tail entry has
    overridden). *)

val tail_size : t -> int
(** Live delta-tail entries. *)

val mem : t -> Tuple.t -> bool

val count : t -> Tuple.t -> int

val insert : ?count:int -> ?notify:(int -> unit) -> t -> Tuple.t -> unit
(** Add [count] (default 1) derivations.  [notify] is called with the
    previous multiplicity immediately before the store changes (the journal
    hook).  Interns any new column values. *)

val insert_prev : ?count:int -> ?notify:(int -> unit) -> t -> Tuple.t -> int
(** Like {!insert} but returns the tuple's previous multiplicity, saving
    the membership probe callers would otherwise pay before inserting. *)

val remove : ?count:int -> ?notify:(int -> unit) -> t -> Tuple.t -> int
(** Subtract up to [count] derivations; returns how many were removed.
    Dictionary ids stay interned even when the tuple disappears. *)

val delete_all : ?notify:(int -> unit) -> t -> Tuple.t -> unit

val restore_count : t -> Tuple.t -> int -> unit
(** Force a tuple's multiplicity to exactly [n] ([n <= 0] removes it),
    never notifying — the undo-log replay primitive. *)

val clear : ?notify:(Tuple.t -> int -> unit) -> t -> unit
(** Drop all tuples ([notify] sees each live tuple and its count first).
    Dictionaries are retained: id stability survives a re-derivation
    cycle (DRed's recursive-stratum recompute clears and refills). *)

val iter : (Tuple.t -> int -> unit) -> t -> unit
(** Live tuples with multiplicities: run rows in sorted order (minus
    tail-overridden ones), then tail entries in sorted id order —
    deterministic for a given store state. *)

val fold : (Tuple.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

val copy : t -> t

val compact : t -> unit
(** Merge the delta tail into the sorted run now.  Also triggered
    automatically when the tail outgrows its threshold. *)

(** {2 Int-id plane}

    Probes work entirely on ids; values are decoded only where a consumer
    (a plan's bind step, a join's output) actually materializes them. *)

val encode_tuple : t -> Tuple.t -> int array option
(** Ids for an existing tuple's values; [None] if any value was never
    interned (the tuple cannot be live) or the arity mismatches. *)

val encode_value : t -> int -> Value.t -> int option
(** Id of a value in column [col]'s dictionary, if interned. *)

val encode_key : t -> int array -> Value.t array -> int array option
(** [encode_key t key_cols vals] encodes [vals.(k)] in column
    [key_cols.(k)]'s dictionary; [None] if any value is unknown. *)

val dict_value : t -> int -> int -> Value.t
(** [dict_value t col id] decodes an id. Raises [Invalid_argument] on an
    out-of-range id. *)

val dict_size : t -> int -> int

val decode : t -> int array -> Tuple.t

val iter_ids : t -> (int array -> int -> unit) -> unit
(** Like {!iter} but yields encoded rows with live multiplicities.  The ids
    array passed to the callback is a buffer the store reuses (or owns): it
    is valid only for the duration of the callback and must not be mutated
    or retained — [Array.copy] it to keep it. *)

val iter_key : t -> int array -> int array -> (int array -> int -> unit) -> unit
(** [iter_key t key_cols key_ids f] yields every live encoded row whose
    projection on [key_cols] equals [key_ids]: a binary-searched range of
    the per-key sorted permutation over the run, then the key's delta-tail
    bucket.  Registers (and lazily refreshes) the index for [key_cols] on
    first use.  The store must not be mutated during iteration, and the
    ids arrays obey the same no-retention rule as {!iter_ids}. *)

(** {2 Audit and serialization} *)

val audit : t -> (unit, string) result
(** Deep structural audit: dictionary bijectivity, run sortedness and
    count positivity, tail/base consistency, cardinality and total-count
    accounting. *)

val to_bytes : t -> string
(** Canonical CRC-32-gated binary image of dictionaries, run and tail.
    Two stores with identical logical state and identical physical layout
    encode to identical bytes; {!of_bytes} followed by {!to_bytes} is the
    identity on the image. *)

val of_bytes : Schema.t -> string -> (t, string) result
(** Decode {!to_bytes} output against the owning relation's schema,
    verifying the CRC, re-running {!audit}, and rebuilding lookup
    structures. *)

(** {2 Repair} *)

val repair : t -> (unit, string) result
(** Recompute every derived plane — dictionary lookup maps, the Bloom run
    filter, cached key indexes, override/cardinality/total accounting —
    from the content plane (dictionary values, run columns, tail), then
    re-{!audit}.  Damage confined to a derived plane heals in place
    ([Ok ()]); content damage still fails the re-audit, which is the
    caller's cue to {!rebuild} from a reference or reground from scratch. *)

val rebuild : t -> ((Tuple.t -> int -> unit) -> unit) -> unit
(** [rebuild t iter] discards the store's entire contents and reloads it
    from [iter] (an iterator over counted reference tuples, e.g.
    {!Relation.iter} applied to a row-backend mirror), then compacts.
    The store object's identity is preserved — holders of [t] see the
    rebuilt contents — but dictionary ids are reassigned. *)

(** {2 Test-only damage hooks}

    Simulated memory corruption for scrub/repair tests: [filter] and
    [accounting] damage derived planes ({!repair} heals them), while
    [run] damages content (audit fails until {!rebuild}). *)

val unsafe_corrupt_filter : t -> unit

val unsafe_corrupt_accounting : t -> unit

val unsafe_corrupt_run : t -> unit
(** Raises [Invalid_argument] when the run is empty. *)

val pp : Format.formatter -> t -> unit
