type t = {
  tables : (string, Relation.t) Hashtbl.t;
  mutable backend : Relation.backend;
}

let create ?(backend = Relation.Row) () = { tables = Hashtbl.create 16; backend }

let backend t = t.backend

let create_table t name schema =
  if Hashtbl.mem t.tables name then
    invalid_arg ("Database.create_table: table exists: " ^ name);
  let r = Relation.create ~backend:t.backend ~name schema in
  Hashtbl.replace t.tables name r;
  r

let register t r = Hashtbl.replace t.tables (Relation.name r) r

let drop_table t name = Hashtbl.remove t.tables name

let find t name = Hashtbl.find t.tables name

let find_opt t name = Hashtbl.find_opt t.tables name

let mem t name = Hashtbl.mem t.tables name

let table_names t =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [])

let insert_rows t name rows =
  let r = find t name in
  List.iter (fun row -> Relation.insert r row) rows

let convert_all t backend =
  t.backend <- backend;
  List.iter
    (fun name ->
      let r = find t name in
      if Relation.backend r <> backend then
        Hashtbl.replace t.tables name (Relation.convert backend r))
    (table_names t)

let copy t =
  let fresh = create ~backend:t.backend () in
  Hashtbl.iter (fun name r -> Hashtbl.replace fresh.tables name (Relation.copy r)) t.tables;
  fresh

let validate t =
  List.fold_left
    (fun acc name -> Result.bind acc (fun () -> Relation.validate (find t name)))
    (Ok ()) (table_names t)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun name ->
      let r = find t name in
      Format.fprintf fmt "%s: %d tuples@," name (Relation.cardinality r))
    (table_names t);
  Format.fprintf fmt "@]"
