(** A database: a mutable catalog of named relations. *)

type t

val create : ?backend:Relation.backend -> unit -> t
(** [backend] (default {!Relation.Row}) is the storage backend given to
    tables made with {!create_table}. *)

val backend : t -> Relation.backend
(** The backend new tables are created with. *)

val create_table : t -> string -> Schema.t -> Relation.t
(** Registers and returns an empty relation stored with the database's
    backend.  Raises [Invalid_argument] if the name is taken. *)

val register : t -> Relation.t -> unit
(** Register an existing relation under its own name (replacing any previous
    binding). *)

val drop_table : t -> string -> unit

val find : t -> string -> Relation.t
(** Raises [Not_found]. *)

val find_opt : t -> string -> Relation.t option

val mem : t -> string -> bool

val table_names : t -> string list
(** Sorted list of registered names. *)

val insert_rows : t -> string -> Tuple.t list -> unit

val convert_all : t -> Relation.backend -> unit
(** Set the database's backend and convert every registered table to it
    (tables already on that backend are left untouched; journal hooks on
    converted tables are dropped). *)

val copy : t -> t
(** Deep copy: relations are copied too.  Backends are preserved. *)

val validate : t -> (unit, string) result
(** {!Relation.validate} over every table (first failure wins). *)

val pp : Format.formatter -> t -> unit
